package spmspv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Client speaks the spmspv-serve HTTP API and implements the same
// Executor shape as the in-process Store — Do for one multiply, Run
// for a program — so algorithm code written against an Executor (see
// ProgramBFS) is transport-agnostic: hand it a Store to run locally,
// a Client to run against a server, and it cannot tell the
// difference, down to the *WireError values failures produce.
type Client struct {
	base string
	hc   *http.Client
	// wire is the preferred mult/program wire form (ContentTypeBinary
	// by default); jsonOnly latches true the first time a server
	// rejects the binary form, so every later call goes straight to
	// JSON instead of re-paying a failed round trip per request.
	wire     string
	jsonOnly atomic.Bool
	// timeout, when positive, bounds every request that arrives without
	// its own deadline (see WithTimeout).
	timeout time.Duration
}

// defaultHTTPClient is the pooled transport shared by every Client
// that does not bring its own *http.Client. The per-host idle pool is
// sized for a coordinator holding persistent links to a handful of
// shard servers under concurrent scatter traffic — net/http's default
// of 2 idle connections per host would re-dial on every parallel
// fan-out.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
	},
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithWire sets the wire form the client offers on /v1/mult and
// /v1/program: ContentTypeBinary (the default — with an automatic,
// sticky fallback to JSON when the server does not speak it) or
// ContentTypeJSON to pin the JSON form outright.
func WithWire(contentType string) ClientOption {
	return func(c *Client) {
		if contentType == ContentTypeJSON {
			c.wire = ContentTypeJSON
		} else {
			c.wire = ContentTypeBinary
		}
	}
}

// WithTimeout bounds every call that arrives without its own deadline:
// each request runs under a context.WithTimeout of d, so a hung server
// costs at most d instead of blocking the caller forever. Calls made
// through DoContext/RunContext with an earlier deadline keep theirs.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://localhost:8090").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   defaultHTTPClient,
		wire: ContentTypeBinary,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// reqContext applies the client timeout to a context that has no
// deadline of its own.
func (c *Client) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.timeout)
		}
	}
	return ctx, func() {}
}

// useBinary reports whether the next mult/program call should attempt
// the binary wire form.
func (c *Client) useBinary() bool {
	return c.wire == ContentTypeBinary && !c.jsonOnly.Load()
}

// roundTrip POSTs/GETs and decodes the JSON reply into out. A non-2xx
// status is decoded through errOf, which extracts the wire error from
// whatever envelope the endpoint uses.
func (c *Client) roundTrip(ctx context.Context, method, path string, body io.Reader, contentType string, out any, errOf func([]byte) *WireError) error {
	ctx, cancel := c.reqContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Pin the JSON reply explicitly: a server whose default wire is
	// binary (spmspv-serve -wire binary) would otherwise answer a
	// preference-free request in a form this path cannot decode.
	req.Header.Set("Accept", ContentTypeJSON)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("spmspv: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("spmspv: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		if we := errOf(data); we != nil {
			return we
		}
		return fmt.Errorf("spmspv: %s %s: HTTP %d: %s", method, path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("spmspv: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// envelopeError extracts the {"error": {...}} envelope of the matrix-
// management endpoints.
func envelopeError(data []byte) *WireError {
	var body errorBody
	if json.Unmarshal(data, &body) == nil && body.Err != nil {
		return body.Err
	}
	return nil
}

// binaryRoundTrip POSTs the binary envelope enc writes and decodes the
// reply by its Content-Type — binary through dec, JSON through
// encoding/json. downgrade=true means the server does not speak the
// binary form — 406/415, an old JSON-only server answering
// 400/bad_request because it cannot parse the envelope, or a reply in
// no recognizable form — and the caller should retry as JSON; both
// endpoints are pure computation, so the retry is safe.
func binaryRoundTrip[T any](ctx context.Context, c *Client, path string, enc func(io.Writer) error, dec func(io.Reader) (*T, error), errOf func(*T) *WireError) (out *T, downgrade bool, err error) {
	var buf bytes.Buffer
	if err := enc(&buf); err != nil {
		return nil, false, err
	}
	ctx, cancel := c.reqContext(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &buf)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set("Accept", ContentTypeBinary+", "+ContentTypeJSON)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("spmspv: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotAcceptable || resp.StatusCode == http.StatusUnsupportedMediaType {
		io.Copy(io.Discard, resp.Body)
		return nil, true, nil
	}
	if mediaType(resp.Header.Get("Content-Type")) == ContentTypeBinary {
		out, err := dec(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("spmspv: decoding POST %s response: %w", path, err)
		}
		return out, false, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("spmspv: reading POST %s response: %w", path, err)
	}
	var v T
	if json.Unmarshal(data, &v) == nil {
		if we := errOf(&v); we != nil {
			if we.Code == CodeBadRequest && resp.StatusCode == http.StatusBadRequest {
				return nil, true, nil // old server: could not parse the envelope at all
			}
			return &v, false, nil
		}
		if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
			return &v, false, nil
		}
	}
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		return nil, true, nil // 2xx in no form we recognize — fall back to JSON
	}
	return nil, false, fmt.Errorf("spmspv: POST %s: HTTP %d: %s", path, resp.StatusCode, data)
}

// Do executes one multiply request on the server (POST /v1/mult),
// negotiating the binary wire form first (see WithWire).
func (c *Client) Do(req *Request) (*Response, error) {
	return c.DoContext(context.Background(), req)
}

// DoContext is Do under a caller-supplied context: the request is
// abandoned — connection torn down, caller unblocked — the moment the
// context is done. The sharded coordinator's per-attempt retry
// deadlines ride this.
func (c *Client) DoContext(ctx context.Context, req *Request) (*Response, error) {
	if c.useBinary() {
		resp, downgrade, err := binaryRoundTrip(ctx, c, "/v1/mult",
			func(w io.Writer) error { return EncodeRequestBinary(w, req) },
			DecodeResponseBinary,
			func(r *Response) *WireError { return r.Err })
		if !downgrade {
			if err != nil {
				return nil, err
			}
			if resp.Err != nil {
				return nil, resp.Err
			}
			return resp, nil
		}
		c.jsonOnly.Store(true)
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("spmspv: encoding request: %w", err)
	}
	var resp Response
	err = c.roundTrip(ctx, http.MethodPost, "/v1/mult", bytes.NewReader(data), "application/json", &resp,
		func(data []byte) *WireError {
			var r Response
			if json.Unmarshal(data, &r) == nil && r.Err != nil {
				return r.Err
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	return &resp, nil
}

// Run executes a program on the server (POST /v1/program),
// negotiating the binary wire form first (see WithWire).
func (c *Client) Run(p *Program) (*ProgramResponse, error) {
	return c.RunContext(context.Background(), p)
}

// RunContext is Run under a caller-supplied context (see DoContext).
func (c *Client) RunContext(ctx context.Context, p *Program) (*ProgramResponse, error) {
	if c.useBinary() {
		resp, downgrade, err := binaryRoundTrip(ctx, c, "/v1/program",
			func(w io.Writer) error { return EncodeProgramBinary(w, p) },
			DecodeProgramResponseBinary,
			func(r *ProgramResponse) *WireError { return r.Err })
		if !downgrade {
			if err != nil {
				return nil, err
			}
			if resp.Err != nil {
				return nil, resp.Err
			}
			return resp, nil
		}
		c.jsonOnly.Store(true)
	}
	data, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("spmspv: encoding program: %w", err)
	}
	var resp ProgramResponse
	err = c.roundTrip(ctx, http.MethodPost, "/v1/program", bytes.NewReader(data), "application/json", &resp,
		func(data []byte) *WireError {
			var r ProgramResponse
			if json.Unmarshal(data, &r) == nil && r.Err != nil {
				return r.Err
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	return &resp, nil
}

// PutMatrix uploads a matrix under name (POST /v1/matrices/{name}),
// shipped in the compact binary wire form.
func (c *Client) PutMatrix(name string, a *Matrix) (*StoreStat, error) {
	var buf bytes.Buffer
	if err := EncodeMatrixBinary(&buf, a); err != nil {
		return nil, err
	}
	var stat StoreStat
	err := c.roundTrip(context.Background(), http.MethodPost, "/v1/matrices/"+name, &buf, "application/octet-stream", &stat, envelopeError)
	if err != nil {
		return nil, err
	}
	return &stat, nil
}

// Matrices lists the server's registered matrices with their serving
// counters (GET /v1/matrices).
func (c *Client) Matrices() ([]StoreStat, error) {
	var stats []StoreStat
	if err := c.roundTrip(context.Background(), http.MethodGet, "/v1/matrices", nil, "", &stats, envelopeError); err != nil {
		return nil, err
	}
	return stats, nil
}

// Matrix reports one registered matrix (GET /v1/matrices/{name}).
func (c *Client) Matrix(name string) (*StoreStat, error) {
	var stat StoreStat
	if err := c.roundTrip(context.Background(), http.MethodGet, "/v1/matrices/"+name, nil, "", &stat, envelopeError); err != nil {
		return nil, err
	}
	return &stat, nil
}

// DeleteMatrix unregisters a matrix (DELETE /v1/matrices/{name}).
func (c *Client) DeleteMatrix(name string) error {
	return c.roundTrip(context.Background(), http.MethodDelete, "/v1/matrices/"+name, nil, "", nil, envelopeError)
}

// BFS runs a whole breadth-first search from source on the named
// server-side matrix as one program round trip (see ProgramBFS); the
// matrix's dimension is fetched from the registry first.
func (c *Client) BFS(matrix string, source Index) (*BFSResult, error) {
	stat, err := c.Matrix(matrix)
	if err != nil {
		return nil, err
	}
	return ProgramBFS(c, matrix, stat.Cols, source, 0)
}

// PutProgram registers a stored procedure on the server
// (PUT /v1/programs/{name}): the program ships once — SPPG binary when
// the client speaks binary, JSON otherwise — is compiled server-side,
// and every later Invoke carries only the bindings.
func (c *Client) PutProgram(name string, p *Program) (*ProgramStat, error) {
	var buf bytes.Buffer
	contentType := ContentTypeJSON
	if c.useBinary() {
		contentType = ContentTypeBinary
		if err := EncodeProgramBinary(&buf, p); err != nil {
			return nil, err
		}
	} else if err := json.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("spmspv: encoding program: %w", err)
	}
	var stat ProgramStat
	err := c.roundTrip(context.Background(), http.MethodPut, "/v1/programs/"+name, &buf, contentType, &stat, envelopeError)
	if err != nil {
		return nil, err
	}
	return &stat, nil
}

// Programs lists the server's stored procedures with their per-program
// invoke counters (GET /v1/programs).
func (c *Client) Programs() ([]ProgramStat, error) {
	var stats []ProgramStat
	if err := c.roundTrip(context.Background(), http.MethodGet, "/v1/programs", nil, "", &stats, envelopeError); err != nil {
		return nil, err
	}
	return stats, nil
}

// GetProgram fetches a stored procedure's source form
// (GET /v1/programs/{name}).
func (c *Client) GetProgram(name string) (*Program, error) {
	var p Program
	if err := c.roundTrip(context.Background(), http.MethodGet, "/v1/programs/"+name, nil, "", &p, envelopeError); err != nil {
		return nil, err
	}
	return &p, nil
}

// DeleteProgram unregisters a stored procedure
// (DELETE /v1/programs/{name}).
func (c *Client) DeleteProgram(name string) error {
	return c.roundTrip(context.Background(), http.MethodDelete, "/v1/programs/"+name, nil, "", nil, envelopeError)
}

// Invoke runs a stored procedure by name with only the bindings on the
// wire (POST /v1/programs/{name}/invoke), negotiating the binary wire
// form first (see WithWire).
func (c *Client) Invoke(name string, inv *InvokeRequest) (*ProgramResponse, error) {
	return c.InvokeContext(context.Background(), name, inv)
}

// InvokeContext is Invoke under a caller-supplied context (see
// DoContext).
func (c *Client) InvokeContext(ctx context.Context, name string, inv *InvokeRequest) (*ProgramResponse, error) {
	if inv == nil {
		inv = &InvokeRequest{}
	}
	path := "/v1/programs/" + name + "/invoke"
	if c.useBinary() {
		resp, downgrade, err := binaryRoundTrip(ctx, c, path,
			func(w io.Writer) error { return EncodeInvokeRequestBinary(w, inv) },
			DecodeProgramResponseBinary,
			func(r *ProgramResponse) *WireError { return r.Err })
		if !downgrade {
			if err != nil {
				return nil, err
			}
			if resp.Err != nil {
				return nil, resp.Err
			}
			return resp, nil
		}
		c.jsonOnly.Store(true)
	}
	data, err := json.Marshal(inv)
	if err != nil {
		return nil, fmt.Errorf("spmspv: encoding invoke request: %w", err)
	}
	var resp ProgramResponse
	err = c.roundTrip(ctx, http.MethodPost, path, bytes.NewReader(data), "application/json", &resp,
		func(data []byte) *WireError {
			var r ProgramResponse
			if json.Unmarshal(data, &r) == nil && r.Err != nil {
				return r.Err
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	return &resp, nil
}
