// Replication benchmarks. BenchmarkReplicatedDo prices the read path
// as the replica count grows: reads always land on ONE replica per
// band (the preferred alive one), so R=2/R=3 must cost within noise of
// R=1 — replication buys fault absorption with memory, not read
// latency. BenchmarkReplicaOverhead is the CI gate's form of the same
// measurement: one benchmark name, the replica count injected through
// SPMSPV_BENCH_REPLICAS, so cmd/benchcmp (which matches series by
// name) can compare an R=1 run against an R=2 run and enforce the
// ≤1.10x read-path bound.
package spmspv_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

// newReplicatedBench builds a 2-band × r-replica in-process
// coordinator preloaded with the serving benchmark matrix.
func newReplicatedBench(b *testing.B, a *spmspv.Matrix, r int) *spmspv.ShardedStore {
	b.Helper()
	ss, err := spmspv.NewLocalShardedStore(2,
		[]spmspv.Option{spmspv.WithEngineOptions(engineOptions(0))},
		spmspv.WithReplication(r))
	if err != nil {
		b.Fatal(err)
	}
	if err := ss.Put("g", a); err != nil {
		b.Fatal(err)
	}
	return ss
}

func benchReplicatedDo(b *testing.B, ss *spmspv.ShardedStore, a *spmspv.Matrix) {
	rng := rand.New(rand.NewSource(7))
	const nVecs = 64
	reqs := make([]*spmspv.Request, nVecs)
	for i := range reqs {
		reqs[i] = &spmspv.Request{
			Matrix: "g",
			X:      testutil.RandomVector(rng, a.NumCols, 16, true),
			Desc:   spmspv.Desc{Semiring: "arithmetic"},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if _, err := ss.Do(reqs[i%nVecs]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicatedDo(b *testing.B) {
	a := spmspv.ErdosRenyi(1<<14, 8, 99)
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas%d", r), func(b *testing.B) {
			benchReplicatedDo(b, newReplicatedBench(b, a, r), a)
		})
	}
}

func BenchmarkReplicaOverhead(b *testing.B) {
	r := 1
	if s := os.Getenv("SPMSPV_BENCH_REPLICAS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			b.Fatalf("SPMSPV_BENCH_REPLICAS=%q: want a positive integer", s)
		}
		r = v
	}
	a := spmspv.ErdosRenyi(1<<14, 8, 99)
	benchReplicatedDo(b, newReplicatedBench(b, a, r), a)
}
