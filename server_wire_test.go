// Tests for the binary wire envelopes and the serving surface's
// content negotiation: envelope round trips for all four message
// types, the {JSON, binary} client × {JSON, binary} server matrix over
// httptest for /v1/mult and /v1/program, the 406 path, the server
// default wire knob, and the client's sticky JSON fallback against an
// old JSON-only server.
package spmspv_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/testutil"
)

// TestWireEnvelopeRoundTrips pins that every message type survives the
// binary envelope byte-exactly: vectors, bitmap payloads, nil mask
// slots, error envelopes, and program refs.
func TestWireEnvelopeRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := testutil.RandomVector(rng, 120, 15, true)
	x2 := testutil.RandomVector(rng, 120, 9, true)
	mask := randomMask(rng, 140, 0.3)

	t.Run("request", func(t *testing.T) {
		reqs := map[string]*spmspv.Request{
			"single": {Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic", Mask: mask}},
			"batchWithNilMaskSlot": {
				Matrix: "g",
				Xs:     []*spmspv.Vector{x, x2},
				// One real mask, one nil slot: Validate requires
				// len(Masks) == len(Xs), so nil slots must survive.
				Desc: spmspv.Desc{Semiring: "boolean", Masks: []*spmspv.BitVector{mask, nil}, Complement: true},
			},
			"noVectors": {Matrix: "g", Desc: spmspv.Desc{Semiring: "arithmetic"}},
		}
		for name, req := range reqs {
			var buf bytes.Buffer
			if err := spmspv.EncodeRequestBinary(&buf, req); err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			got, err := spmspv.DecodeRequestBinary(&buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(got, req) {
				t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, req)
			}
		}
	})

	t.Run("response", func(t *testing.T) {
		resps := map[string]*spmspv.Response{
			"list":    {Y: x, OutputRep: "list"},
			"batch":   {Ys: []*spmspv.Vector{x, x2}, OutputRep: "list"},
			"bitmap":  {YBits: mask, OutputRep: "bitmap"},
			"bitmaps": {YsBits: []*spmspv.BitVector{mask, nil}, OutputRep: "bitmap"},
			"error":   {Err: &spmspv.WireError{Code: spmspv.CodeUnknownMatrix, Message: "nope"}},
		}
		for name, resp := range resps {
			var buf bytes.Buffer
			if err := spmspv.EncodeResponseBinary(&buf, resp); err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			got, err := spmspv.DecodeResponseBinary(&buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(got, resp) {
				t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, resp)
			}
		}
	})

	t.Run("program", func(t *testing.T) {
		p := &spmspv.Program{
			Matrix:      "g",
			StopOnEmpty: true,
			Ops: []spmspv.ProgramOp{
				{Op: "input", X: x},
				{XRef: "$0", Desc: spmspv.Desc{Semiring: "bfs", Mask: mask, Complement: true}, Emit: true},
				{Op: "union", XRef: "$0", YRef: "$1"},
			},
		}
		var buf bytes.Buffer
		if err := spmspv.EncodeProgramBinary(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := spmspv.DecodeProgramBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("program round trip mismatch\n got %+v\nwant %+v", got, p)
		}
		// Encoding must not mutate the caller's program: the op list is
		// copied before its vector fields are stripped into sections.
		if p.Ops[0].X == nil || p.Ops[1].Desc.Mask == nil {
			t.Error("EncodeProgramBinary stripped the caller's op payloads")
		}
	})

	t.Run("programResponse", func(t *testing.T) {
		resps := map[string]*spmspv.ProgramResponse{
			"results": {Results: []spmspv.ProgramResult{{Op: 1, Y: x}, {Op: 4, Y: x2}}, Steps: 5},
			"error":   {Err: &spmspv.WireError{Code: spmspv.CodeInvalidRequest, Message: "op 2: bad ref"}},
		}
		for name, resp := range resps {
			var buf bytes.Buffer
			if err := spmspv.EncodeProgramResponseBinary(&buf, resp); err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			got, err := spmspv.DecodeProgramResponseBinary(&buf)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(got, resp) {
				t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", name, got, resp)
			}
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		var buf bytes.Buffer
		if err := spmspv.EncodeRequestBinary(&buf, &spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}); err != nil {
			t.Fatal(err)
		}
		whole := buf.Bytes()
		if _, err := spmspv.DecodeResponseBinary(bytes.NewReader(whole)); err == nil {
			t.Error("decoding a request as a response succeeded")
		}
		if _, err := spmspv.DecodeRequestBinary(bytes.NewReader(whole[:len(whole)/2])); err == nil {
			t.Error("decoding a truncated envelope succeeded")
		}
		if _, err := spmspv.DecodeRequestBinary(bytes.NewReader(nil)); err == nil {
			t.Error("decoding an empty stream succeeded")
		}
	})
}

// postRaw POSTs body with explicit Content-Type/Accept headers and
// returns the raw reply.
func postRaw(t *testing.T, url, contentType, accept string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeWireNegotiationMatrix exercises {JSON, binary} request
// encodings × {JSON, binary, wildcard} Accept headers against both
// negotiating endpoints, including the mixed case where a binary
// request asks for a JSON response.
func TestServeWireNegotiationMatrix(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	ts := httptest.NewServer(spmspv.NewServer(st))
	t.Cleanup(ts.Close)
	x := testutil.RandomVector(rng, a.NumCols, 25, true)
	want := baselines.Reference(a, x, spmspv.Arithmetic)
	req := &spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}

	jsonBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var binBuf bytes.Buffer
	if err := spmspv.EncodeRequestBinary(&binBuf, req); err != nil {
		t.Fatal(err)
	}
	binBody := binBuf.Bytes()

	cases := []struct {
		name        string
		body        []byte
		contentType string
		accept      string
		wantCT      string
	}{
		{"jsonToJSON", jsonBody, spmspv.ContentTypeJSON, spmspv.ContentTypeJSON, spmspv.ContentTypeJSON},
		{"jsonToBinary", jsonBody, spmspv.ContentTypeJSON, spmspv.ContentTypeBinary, spmspv.ContentTypeBinary},
		{"binaryToBinary", binBody, spmspv.ContentTypeBinary, spmspv.ContentTypeBinary, spmspv.ContentTypeBinary},
		// The mixed case: a binary request explicitly asking for JSON.
		{"binaryToJSON", binBody, spmspv.ContentTypeBinary, spmspv.ContentTypeJSON, spmspv.ContentTypeJSON},
		// No Accept at all → server default (JSON).
		{"jsonDefault", jsonBody, spmspv.ContentTypeJSON, "", spmspv.ContentTypeJSON},
		{"binaryDefault", binBody, spmspv.ContentTypeBinary, "", spmspv.ContentTypeJSON},
		// Wildcard → server default; q-params must not confuse parsing.
		{"wildcard", binBody, spmspv.ContentTypeBinary, "*/*", spmspv.ContentTypeJSON},
		{"qParams", binBody, spmspv.ContentTypeBinary, spmspv.ContentTypeBinary + ";q=0.9, */*;q=0.1", spmspv.ContentTypeBinary},
		// q=0 means "not acceptable" (RFC 9110): a type refused that way
		// is excluded even when listed first…
		{"qZeroJSON", binBody, spmspv.ContentTypeBinary, spmspv.ContentTypeJSON + ";q=0, " + spmspv.ContentTypeBinary, spmspv.ContentTypeBinary},
		// …and a wildcard may not resurrect it: the server default
		// (JSON) is refused here, so the wildcard yields binary.
		{"qZeroWildcard", binBody, spmspv.ContentTypeBinary, spmspv.ContentTypeJSON + ";q=0, */*", spmspv.ContentTypeBinary},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postRaw(t, ts.URL+"/v1/mult", tc.contentType, tc.accept, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
				t.Fatalf("Content-Type %q, want %q", ct, tc.wantCT)
			}
			var out *spmspv.Response
			if tc.wantCT == spmspv.ContentTypeBinary {
				out, err = spmspv.DecodeResponseBinary(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
			} else {
				out = &spmspv.Response{}
				if err := json.Unmarshal(data, out); err != nil {
					t.Fatal(err)
				}
			}
			if out.Err != nil {
				t.Fatalf("wire error: %v", out.Err)
			}
			if !out.Y.EqualValues(want, 1e-9) {
				t.Error("negotiated result differs from reference")
			}
		})
	}

	// Unsatisfiable Accept → 406 with the structured code; refusing
	// every producible type with q=0 is just as unsatisfiable.
	t.Run("notAcceptable", func(t *testing.T) {
		for _, accept := range []string{
			"text/html",
			spmspv.ContentTypeJSON + ";q=0",
			spmspv.ContentTypeJSON + ";q=0, " + spmspv.ContentTypeBinary + ";q=0.0, */*",
		} {
			resp, _ := postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeJSON, accept, jsonBody)
			if resp.StatusCode != http.StatusNotAcceptable {
				t.Fatalf("Accept %q: HTTP %d, want 406", accept, resp.StatusCode)
			}
		}
		resp, data := postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeJSON, "text/html", jsonBody)
		if resp.StatusCode != http.StatusNotAcceptable {
			t.Fatalf("HTTP %d, want 406", resp.StatusCode)
		}
		var out spmspv.Response
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Err == nil || out.Err.Code != spmspv.CodeNotAcceptable {
			t.Fatalf("error envelope %+v, want code %q", out.Err, spmspv.CodeNotAcceptable)
		}
	})

	// A ~40-byte binary request whose mask section claims a huge bitmap
	// dimension must come back 400 immediately — the decoder rejects the
	// dimension before materializing O(n) storage from it, so a hostile
	// header cannot force a multi-GiB allocation server-side.
	t.Run("hostileMaskDim", func(t *testing.T) {
		var buf bytes.Buffer
		header := []byte(`{"matrix":"g","desc":{"semiring":"arithmetic"}}` + "\n")
		buf.WriteString("SPRQ")
		le := func(n uint32) {
			var w [4]byte
			w[0], w[1], w[2], w[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
			buf.Write(w[:])
		}
		le(1) // envelope version
		le(uint32(len(header)))
		buf.Write(header)
		le(1)                   // one section
		buf.Write([]byte{2})    // role 2: desc.mask (bitmap-typed)
		le(0)                   // idx
		buf.Write([]byte{1})    // present
		buf.WriteString("SPVB") // hostile SPVB bitmap frame follows
		le(1)                   // vector version
		buf.Write([]byte{2})    // kind 2: bitmap
		var w8 [8]byte
		for i, n := 0, uint64(1)<<30; i < 8; i++ {
			w8[i] = byte(n >> (8 * i))
		}
		buf.Write(w8[:])           // n = 2^30, far past the decode limit
		buf.Write(make([]byte, 8)) // nset = 0
		buf.Write([]byte{0})       // no values — and no words delivered
		resp, data := postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeBinary, spmspv.ContentTypeJSON, buf.Bytes())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var out spmspv.Response
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Err == nil || out.Err.Code != spmspv.CodeBadRequest || !strings.Contains(out.Err.Message, "decode limit") {
			t.Fatalf("error envelope %+v, want bad_request mentioning the decode limit", out.Err)
		}
	})

	// A corrupt binary envelope is a 400 bad_request, answered in the
	// negotiated (binary) form, and must not hang or panic the server.
	t.Run("corruptBinary", func(t *testing.T) {
		resp, data := postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeBinary, spmspv.ContentTypeBinary, binBody[:len(binBody)-5])
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
		out, err := spmspv.DecodeResponseBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if out.Err == nil || out.Err.Code != spmspv.CodeBadRequest {
			t.Fatalf("error envelope %+v, want code %q", out.Err, spmspv.CodeBadRequest)
		}
	})

	// The program endpoint negotiates identically; run the BFS program
	// both ways and compare.
	t.Run("program", func(t *testing.T) {
		prog := &spmspv.Program{
			Matrix: "g",
			Ops: []spmspv.ProgramOp{
				{Op: "input", X: x},
				{XRef: "$0", Desc: spmspv.Desc{Semiring: "arithmetic"}, Emit: true},
			},
		}
		progJSON, err := json.Marshal(prog)
		if err != nil {
			t.Fatal(err)
		}
		var progBin bytes.Buffer
		if err := spmspv.EncodeProgramBinary(&progBin, prog); err != nil {
			t.Fatal(err)
		}

		resp, data := postRaw(t, ts.URL+"/v1/program", spmspv.ContentTypeBinary, spmspv.ContentTypeBinary, progBin.Bytes())
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary program: HTTP %d: %s", resp.StatusCode, data)
		}
		binOut, err := spmspv.DecodeProgramResponseBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}

		resp, data = postRaw(t, ts.URL+"/v1/program", spmspv.ContentTypeJSON, spmspv.ContentTypeJSON, progJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("json program: HTTP %d: %s", resp.StatusCode, data)
		}
		var jsonOut spmspv.ProgramResponse
		if err := json.Unmarshal(data, &jsonOut); err != nil {
			t.Fatal(err)
		}

		if len(binOut.Results) != 1 || len(jsonOut.Results) != 1 {
			t.Fatalf("results: binary %d, json %d", len(binOut.Results), len(jsonOut.Results))
		}
		if !binOut.Results[0].Y.EqualValues(jsonOut.Results[0].Y, 0) {
			t.Error("binary and JSON program results differ")
		}
		if !binOut.Results[0].Y.EqualValues(want, 1e-9) {
			t.Error("program result differs from reference")
		}
	})
}

// TestServeDefaultWireBinary pins WithDefaultWire: a preference-free
// request gets a binary response, while an explicit JSON Accept still
// overrides the default.
func TestServeDefaultWireBinary(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	ts := httptest.NewServer(spmspv.NewServer(st, spmspv.WithDefaultWire(spmspv.ContentTypeBinary)))
	t.Cleanup(ts.Close)
	x := testutil.RandomVector(rng, a.NumCols, 10, true)
	body, err := json.Marshal(&spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeJSON, "", body)
	if ct := resp.Header.Get("Content-Type"); ct != spmspv.ContentTypeBinary {
		t.Fatalf("default wire Content-Type %q, want binary", ct)
	}
	if _, err := spmspv.DecodeResponseBinary(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	resp, _ = postRaw(t, ts.URL+"/v1/mult", spmspv.ContentTypeJSON, spmspv.ContentTypeJSON, body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, spmspv.ContentTypeJSON) {
		t.Fatalf("explicit JSON Accept got Content-Type %q", ct)
	}
}

// TestClientWireFallback simulates an old JSON-only server — it 400s
// anything it cannot JSON-decode, exactly like the pre-negotiation
// handler — and checks the client falls back to JSON, succeeds, and
// latches the downgrade so binary is attempted only once.
func TestClientWireFallback(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	x := testutil.RandomVector(rng, a.NumCols, 12, true)
	want := baselines.Reference(a, x, spmspv.Arithmetic)

	var binaryAttempts atomic.Int64
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.Header.Get("Content-Type") == spmspv.ContentTypeBinary {
			binaryAttempts.Add(1)
		}
		req, err := spmspv.DecodeRequest(body)
		if err != nil {
			w.Header().Set("Content-Type", spmspv.ContentTypeJSON)
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(&spmspv.Response{Err: &spmspv.WireError{
				Code: spmspv.CodeBadRequest, Message: err.Error()}})
			return
		}
		resp, err := st.Do(req)
		if err != nil {
			w.Header().Set("Content-Type", spmspv.ContentTypeJSON)
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(&spmspv.Response{Err: spmspv.AsWireError(err)})
			return
		}
		w.Header().Set("Content-Type", spmspv.ContentTypeJSON)
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(old.Close)

	c := spmspv.NewClient(old.URL)
	for i := 0; i < 3; i++ {
		got, err := c.Do(&spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !got.Y.EqualValues(want, 1e-9) {
			t.Fatalf("call %d: wrong result through fallback", i)
		}
	}
	if n := binaryAttempts.Load(); n != 1 {
		t.Errorf("binary attempted %d times, want 1 (sticky downgrade)", n)
	}

	// A client pinned to JSON never attempts binary at all.
	binaryAttempts.Store(0)
	cj := spmspv.NewClient(old.URL, spmspv.WithWire(spmspv.ContentTypeJSON))
	if _, err := cj.Do(&spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}); err != nil {
		t.Fatal(err)
	}
	if n := binaryAttempts.Load(); n != 0 {
		t.Errorf("JSON-pinned client attempted binary %d times", n)
	}
}

// TestClientBinaryEndToEnd runs the full Client↔Server BFS with the
// binary wire active and checks errors still carry their codes.
func TestClientBinaryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := testutil.RandomCSC(rng, 150, 150, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(spmspv.NewServer(st))
	t.Cleanup(ts.Close)
	c := spmspv.NewClient(ts.URL, spmspv.WithWire(spmspv.ContentTypeBinary))

	got, err := c.BFS("g", 3)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	compareBFS(t, "binary wire", got, spmspv.BFS(mu, 3))

	x := testutil.RandomVector(rng, a.NumCols, 8, true)
	_, err = c.Do(&spmspv.Request{Matrix: "missing", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if we := spmspv.AsWireError(err); err == nil || we.Code != spmspv.CodeUnknownMatrix {
		t.Fatalf("binary error round trip: %v", err)
	}
}
