package spmspv

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spmspv/internal/cluster"
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// ShardBackend is the surface the shard coordinator drives on each
// shard replica: an Executor that also manages named matrices. Both
// *Store (in-process shards) and *Client (remote spmspv-serve shards
// over the binary wire) satisfy it, so a coordinator mixes local and
// remote backends freely. A backend that additionally implements
//
//	Health(ctx context.Context) (*HealthStatus, error)
//
// (as *Store and *Client both do) is health-probed by the membership
// layer; one without it is assumed alive until serving calls say
// otherwise.
type ShardBackend interface {
	Executor
	PutMatrix(name string, a *Matrix) (*StoreStat, error)
	DeleteMatrix(name string) error
	Matrix(name string) (*StoreStat, error)
}

// healthProber is the optional probe surface of a ShardBackend: the
// membership layer's periodic liveness check (GET /v1/health for
// remote workers).
type healthProber interface {
	Health(ctx context.Context) (*HealthStatus, error)
}

// contextExecutor is the optional cancellable form of Executor. When a
// backend offers it (*Store and *Client both do), the coordinator runs
// each shard attempt under its per-attempt timeout, so a hung shard is
// abandoned and retried instead of stalling the whole scatter.
type contextExecutor interface {
	DoContext(ctx context.Context, req *Request) (*Response, error)
	RunContext(ctx context.Context, p *Program) (*ProgramResponse, error)
}

// ShardedStore distributes named matrices across replicated shard
// groups by row range and serves multiplies as parallel
// scatter/gather — the paper's row-split decomposition
// (sparse.RowSplit's PieceBounds, CombBLAS's 1D distribution) promoted
// from an intra-process trick to the unit of service. Put slices an
// uploaded matrix with sparse.RowSlice and uploads band w's piece to
// EVERY replica of group w; Do and Run fan each multiply out on the
// internal/par executor, every band computing its row range of y
// against the full x, and because row ranges are disjoint the gather
// is a pure concatenation — no merge semiring, no accumulation pass.
// Transposed multiplies are the one shape this decomposition cannot
// serve (row pieces of A are column pieces of Aᵀ, whose partial
// products overlap and would need a semiring merge); they are rejected
// with invalid_request.
//
// Replication (WithReplication, NewReplicatedShardedStore) sits UNDER
// the retry loop: the backends of one band form a
// cluster.ReplicaGroup, tracked by a health-checked
// cluster.Membership. Reads pick the preferred alive replica and fail
// over to the next replica within the same dispatch round on transport
// error or health-flagged death, so killing one replica of an R≥2
// group costs a failover (counted) and ZERO retry rounds — only a band
// whose replicas ALL fail falls back to the bounded retry/backoff
// below. The membership view is epoch-versioned: one scatter routes
// every shard call against one consistent snapshot of the fleet.
//
// A ShardedStore is an Executor and a ServingStore: Client code,
// Store.Run programs, internal/algorithms and the HTTP Server all work
// against it unchanged, coalescing included.
//
// Shard calls that fail retryably on every replica — transport faults,
// server-side internal errors, unknown_matrix from a worker that
// rebooted and is re-preloading — are requeued in bounded backoff
// rounds (see WithShardRetries), so a whole-group death mid-BFS
// degrades to a retried round, not a failed request.
type ShardedStore struct {
	groups  [][]ShardBackend       // band → replicas
	labels  [][]string             // parallel to groups
	rgroups []cluster.ReplicaGroup // band → member ids
	flat    []ShardBackend         // members in id order
	members *cluster.Membership
	exec    *par.Executor

	attempts      int           // tries per shard call, ≥ 1
	backoff       time.Duration // sleep before the first retry round, doubling
	timeout       time.Duration // per-attempt deadline for cancellable backends
	replication   int           // group size NewShardedStore folds a flat backend list into
	probeInterval time.Duration // background probe period (0 = passive membership)
	probeTimeout  time.Duration // per-probe deadline
	flatLabels    []string      // WithShardLabels input, regrouped at construction

	mu   sync.RWMutex
	mats map[string]*shardedMatrix

	// programs is the coordinator-side stored-procedure registry (see
	// programs.go): programs compile and loop on the coordinator, and
	// only the mult ops scatter.
	programs programRegistry

	replStats [][]*perf.ServeStats // per (band, replica) serving counters
}

// shardedMatrix is the coordinator's registry entry: the global shape
// and the row bounds assigning band w rows [bounds[w], bounds[w+1]).
type shardedMatrix struct {
	rows, cols Index
	nnz        int64
	bounds     []Index
	stats      *perf.ServeStats
}

// ShardOption configures NewShardedStore.
type ShardOption func(*ShardedStore)

// WithShardRetries sets how many times one shard call is retried after
// every replica of its group failed retryably (default 2, so 3 rounds
// total). 0 disables retry. In-round replica failover is NOT a retry
// and is always on; this bounds the rounds a fully-failed group burns.
func WithShardRetries(n int) ShardOption {
	return func(ss *ShardedStore) {
		if n < 0 {
			n = 0
		}
		ss.attempts = n + 1
	}
}

// WithShardBackoff sets the sleep before the first retry round
// (default 20ms); each further round doubles it. The sleep runs on the
// coordinating goroutine, never inside executor workers.
func WithShardBackoff(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.backoff = d }
}

// WithShardTimeout bounds each shard attempt (default 30s) for
// backends that support cancellation; attempts that outlive it are
// abandoned and count as retryable failures. Zero disables the
// per-attempt deadline.
func WithShardTimeout(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.timeout = d }
}

// WithReplication folds NewShardedStore's flat backend list into
// groups of r consecutive backends, each group serving one row band as
// r identical replicas (default 1: every backend its own band). The
// backend count must be a multiple of r.
func WithReplication(r int) ShardOption {
	return func(ss *ShardedStore) {
		if r < 1 {
			r = 1
		}
		ss.replication = r
	}
}

// WithProbeInterval sets the period of the membership layer's
// background health probe (GET /v1/health against probe-capable
// backends). Zero — the default — runs the membership passively: no
// probe goroutine, member states driven by serving-call outcomes and
// explicit ProbeNow calls. spmspv-serve coordinators enable it via
// -probe-interval.
func WithProbeInterval(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.probeInterval = d }
}

// WithProbeTimeout bounds each health probe (default 2s).
func WithProbeTimeout(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.probeTimeout = d }
}

// WithShardLabels names the backends for ShardStats reporting (e.g.
// their URLs), in the same flat band-major order as the backend list.
// Unlabeled replicas report as "shard/w/r".
func WithShardLabels(labels []string) ShardOption {
	return func(ss *ShardedStore) {
		ss.flatLabels = labels
	}
}

// NewShardedStore returns a coordinator over the given backends,
// grouped into row bands of WithReplication(r) consecutive replicas
// each (one band per backend by default). The band count — and so the
// row decomposition of every matrix served — is fixed at construction.
func NewShardedStore(backends []ShardBackend, opts ...ShardOption) (*ShardedStore, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("spmspv: sharded store needs at least one backend")
	}
	scratch := &ShardedStore{replication: 1}
	for _, o := range opts {
		o(scratch)
	}
	r := scratch.replication
	if len(backends)%r != 0 {
		return nil, fmt.Errorf("spmspv: %d backends do not fold into replica groups of %d", len(backends), r)
	}
	groups := make([][]ShardBackend, len(backends)/r)
	for w := range groups {
		groups[w] = backends[w*r : (w+1)*r]
	}
	return NewReplicatedShardedStore(groups, opts...)
}

// NewReplicatedShardedStore returns a coordinator over explicit
// replica groups: groups[w] lists the backends holding identical
// copies of row band w (group sizes may differ, matching the
// "a|b,c" CLI form). Every group needs at least one backend.
func NewReplicatedShardedStore(groups [][]ShardBackend, opts ...ShardOption) (*ShardedStore, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("spmspv: sharded store needs at least one replica group")
	}
	sizes := make([]int, len(groups))
	nmembers := 0
	for w, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("spmspv: replica group %d is empty", w)
		}
		sizes[w] = len(g)
		nmembers += len(g)
	}
	ss := &ShardedStore{
		groups:       groups,
		rgroups:      cluster.GroupsOf(sizes),
		flat:         make([]ShardBackend, 0, nmembers),
		exec:         par.Default(),
		attempts:     3,
		backoff:      20 * time.Millisecond,
		timeout:      30 * time.Second,
		replication:  1,
		probeTimeout: 2 * time.Second,
		mats:         map[string]*shardedMatrix{},
		labels:       make([][]string, len(groups)),
		replStats:    make([][]*perf.ServeStats, len(groups)),
	}
	for w, g := range groups {
		ss.flat = append(ss.flat, g...)
		ss.labels[w] = make([]string, len(g))
		ss.replStats[w] = make([]*perf.ServeStats, len(g))
		for r := range g {
			ss.labels[w][r] = fmt.Sprintf("shard/%d/%d", w, r)
			ss.replStats[w][r] = &perf.ServeStats{}
		}
	}
	for _, o := range opts {
		o(ss)
	}
	if ss.flatLabels != nil {
		i := 0
		for w := range ss.labels {
			for r := range ss.labels[w] {
				if i < len(ss.flatLabels) && ss.flatLabels[i] != "" {
					ss.labels[w][r] = ss.flatLabels[i]
				}
				i++
			}
		}
	}
	ss.members = cluster.New(nmembers, ss.probeMember, cluster.Config{
		Interval: ss.probeInterval,
		Timeout:  ss.probeTimeout,
	})
	if ss.probeInterval > 0 {
		ss.members.Start()
	}
	return ss, nil
}

// NewLocalShardedStore is the in-process form: n fresh *Store bands
// (each with WithReplication(r) replica Stores, each built with
// storeOpts) behind one coordinator — the single-box configuration the
// shard benchmarks measure, and a drop-in *Store replacement for
// testing the scatter/gather and failover paths without sockets.
func NewLocalShardedStore(n int, storeOpts []Option, opts ...ShardOption) (*ShardedStore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("spmspv: sharded store needs at least one shard, got %d", n)
	}
	scratch := &ShardedStore{replication: 1}
	for _, o := range opts {
		o(scratch)
	}
	r := scratch.replication
	backends := make([]ShardBackend, n*r)
	labels := make([]string, n*r)
	for i := range backends {
		backends[i] = NewStore(storeOpts...)
		labels[i] = fmt.Sprintf("local/%d/%d", i/r, i%r)
	}
	return NewShardedStore(backends, append([]ShardOption{WithShardLabels(labels)}, opts...)...)
}

// probeMember is the membership layer's Prober: member i's backend is
// health-checked through its optional Health method; backends without
// one (custom in-process implementations) count as healthy.
func (ss *ShardedStore) probeMember(ctx context.Context, i int) error {
	hp, ok := ss.flat[i].(healthProber)
	if !ok {
		return nil
	}
	_, err := hp.Health(ctx)
	return err
}

// ProbeNow runs one synchronous membership probe round — every
// replica's health endpoint checked in parallel — independent of the
// background probe loop. Useful for tests and for operators who want a
// fresh view before reading ShardStats.
func (ss *ShardedStore) ProbeNow(ctx context.Context) {
	ss.members.ProbeAll(ctx)
}

// MemberEpoch reports the membership view version; it increments on
// every member state transition.
func (ss *ShardedStore) MemberEpoch() uint64 { return ss.members.Epoch() }

// Close stops the background membership prober (if one was started).
// Serving through a closed coordinator keeps working; member states
// just stop refreshing on their own.
func (ss *ShardedStore) Close() { ss.members.Stop() }

// Shards reports the number of row bands (replica groups).
func (ss *ShardedStore) Shards() int { return len(ss.groups) }

// Replicas reports band w's replica count.
func (ss *ShardedStore) Replicas(w int) int { return len(ss.groups[w]) }

// ShardStat is one shard replica's coordinator-side serving counters
// and membership state: every scatter call issued to the replica lands
// in Serve (failed-over calls under Serve.Failovers, requeue rounds
// under Serve.Retries), and the membership layer contributes the
// health-state fields.
type ShardStat struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	// State is the membership classification: alive, suspect or dead.
	State string `json:"state"`
	// MemberEpoch is the membership view version at snapshot time; it
	// increments on every member state transition anywhere in the
	// fleet.
	MemberEpoch uint64 `json:"member_epoch"`
	// ProbeFailures counts the replica's failed health probes plus
	// failed serving calls — the membership layer's failure feed.
	ProbeFailures int64              `json:"probe_failures"`
	Serve         perf.ServeSnapshot `json:"serve"`
}

// ShardStats reports the per-replica counters in band-major order (so
// with replication 1 the index is the shard index, as before).
func (ss *ShardedStore) ShardStats() []ShardStat {
	epoch := ss.members.Epoch()
	out := make([]ShardStat, 0, len(ss.flat))
	for w := range ss.groups {
		for r := range ss.groups[w] {
			info := ss.members.Info(ss.rgroups[w].Members[r])
			out = append(out, ShardStat{
				Shard:         w,
				Replica:       r,
				Addr:          ss.labels[w][r],
				State:         info.State.String(),
				MemberEpoch:   epoch,
				ProbeFailures: info.Failures,
				Serve:         ss.replStats[w][r].Snapshot(),
			})
		}
	}
	return out
}

// Put slices a into len(groups) row-range pieces and uploads band w's
// piece to EVERY replica of group w under the same name — empty pieces
// (more bands than rows) are simply not uploaded. A failed upload
// rolls back the pieces that landed, so a failed Put leaves no
// stragglers. Replica uploads run in parallel on the executor.
func (ss *ShardedStore) Put(name string, a *Matrix) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	if a == nil {
		return fmt.Errorf("spmspv: Put with nil matrix")
	}
	if err := a.Validate(); err != nil {
		return err
	}
	n := len(ss.groups)
	bounds := sparse.PieceBounds(a.NumRows, n)

	// Slice once per band, then fan each piece out to all its replicas.
	pieces := make([]*Matrix, n)
	ss.exec.Run(n, n, func(_, w int) {
		if lo, hi := bounds[w], bounds[w+1]; hi > lo {
			pieces[w] = sparse.RowSlice(a, lo, hi)
		}
	}, nil)

	type upload struct {
		w, r int
		err  error
	}
	var ups []*upload
	for w := range ss.groups {
		if pieces[w] == nil {
			continue
		}
		for r := range ss.groups[w] {
			ups = append(ups, &upload{w: w, r: r})
		}
	}
	if len(ups) > 0 {
		ss.exec.Run(len(ups), len(ups), func(_, q int) {
			u := ups[q]
			_, u.err = ss.groups[u.w][u.r].PutMatrix(name, pieces[u.w])
			ss.reportOutcome(u.w, u.r, u.err)
		}, nil)
	}
	for _, u := range ups {
		if u.err != nil {
			for _, v := range ups {
				if v.err == nil {
					ss.groups[v.w][v.r].DeleteMatrix(name)
				}
			}
			return wireErrorf(CodeInternal, "uploading shard %d replica %d (%s) of %q: %v",
				u.w, u.r, ss.labels[u.w][u.r], name, u.err)
		}
	}
	ss.mu.Lock()
	ss.mats[name] = &shardedMatrix{
		rows: a.NumRows, cols: a.NumCols, nnz: a.NNZ(),
		bounds: bounds, stats: &perf.ServeStats{},
	}
	ss.mu.Unlock()
	return nil
}

// reportOutcome feeds one serving-call outcome to the membership state
// machine — the passive half of health checking, so even a coordinator
// with no probe loop flags members from the traffic it serves. Only
// transport-ish failures count against health: a deterministic
// validation error says nothing about liveness.
func (ss *ShardedStore) reportOutcome(w, r int, err error) {
	m := ss.rgroups[w].Members[r]
	switch {
	case err == nil:
		ss.members.ReportSuccess(m)
	case retryableShardErr(err):
		ss.members.ReportFailure(m)
	}
}

// Delete unregisters a matrix and best-effort removes its pieces from
// every replica; it reports whether the name was registered.
func (ss *ShardedStore) Delete(name string) bool {
	ss.mu.Lock()
	sm, ok := ss.mats[name]
	delete(ss.mats, name)
	ss.mu.Unlock()
	if !ok {
		return false
	}
	n := len(ss.flat)
	ss.exec.Run(n, n, func(_, i int) {
		if w, _ := ss.bandOf(i); sm.bounds[w+1] > sm.bounds[w] {
			ss.flat[i].DeleteMatrix(name)
		}
	}, nil)
	return true
}

// bandOf maps a flat member id back to its (band, replica) position.
func (ss *ShardedStore) bandOf(member int) (w, r int) {
	for w := range ss.rgroups {
		ms := ss.rgroups[w].Members
		if member >= ms[0] && member <= ms[len(ms)-1] {
			return w, member - ms[0]
		}
	}
	return -1, -1
}

// List returns the registered names in sorted order.
func (ss *ShardedStore) List() []string {
	ss.mu.RLock()
	names := make([]string, 0, len(ss.mats))
	for name := range ss.mats {
		names = append(names, name)
	}
	ss.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats reports one matrix's registry entry. Built is true once the
// coordinator has served at least one multiply against it — the
// sharded analogue of "the engine exists" — since the per-shard engine
// builds happen inside the shards.
func (ss *ShardedStore) Stats(name string) (StoreStat, error) {
	ss.mu.RLock()
	sm := ss.mats[name]
	ss.mu.RUnlock()
	if sm == nil {
		if name == "" {
			return StoreStat{}, wireErrorf(CodeInvalidRequest, "request names no matrix")
		}
		return StoreStat{}, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name)
	}
	return ss.statOf(name, sm), nil
}

func (ss *ShardedStore) statOf(name string, sm *shardedMatrix) StoreStat {
	snap := sm.stats.Snapshot()
	return StoreStat{
		Name: name, Rows: sm.rows, Cols: sm.cols, NNZ: sm.nnz,
		Built: snap.Requests > snap.Failures,
		Serve: snap,
	}
}

// StatsAll reports every registered matrix, sorted by name.
func (ss *ShardedStore) StatsAll() []StoreStat {
	ss.mu.RLock()
	stats := make([]StoreStat, 0, len(ss.mats))
	for name, sm := range ss.mats {
		stats = append(stats, ss.statOf(name, sm))
	}
	ss.mu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// lookup resolves a name to its registry entry, falling back to
// discovery for matrices the shards already hold (see discover).
func (ss *ShardedStore) lookup(name string) (*shardedMatrix, error) {
	if name == "" {
		return nil, wireErrorf(CodeInvalidRequest, "request names no matrix")
	}
	ss.mu.RLock()
	sm := ss.mats[name]
	ss.mu.RUnlock()
	if sm != nil {
		return sm, nil
	}
	if err := validStoreName(name); err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	return ss.discover(name)
}

// discover reconstructs the registry entry for a matrix the shards
// already hold — the -shard-of deployment, where worker w preloads its
// own row slice and the coordinator boots with an empty registry. Each
// band is probed through its replicas in membership-preference order
// (see probeBand) rather than the PR 8 one-shot probe, so a band with
// one suspect member still resolves through a healthy replica, and a
// worker rebooted mid-discovery is retried on the next lookup. The
// per-band row counts must reproduce PieceBounds of the summed total
// (bands whose piece is empty hold nothing), which pins the
// decomposition before any multiply is served against it.
func (ss *ShardedStore) discover(name string) (*shardedMatrix, error) {
	n := len(ss.groups)
	view := ss.members.View()
	stats := make([]*StoreStat, n)
	errs := make([]error, n)
	ss.exec.Run(n, n, func(_, w int) {
		stats[w], errs[w] = ss.probeBand(w, name, view)
	}, nil)
	var rows Index
	cols := Index(-1)
	var nnz int64
	found := false
	for w := 0; w < n; w++ {
		if errs[w] != nil {
			if AsWireError(errs[w]).Code == CodeUnknownMatrix {
				continue // legitimately absent iff its piece is empty, checked below
			}
			return nil, wireErrorf(CodeInternal, "probing shard %d for %q: %v", w, name, errs[w])
		}
		found = true
		rows += stats[w].Rows
		nnz += stats[w].NNZ
		if cols >= 0 && stats[w].Cols != cols {
			return nil, wireErrorf(CodeInternal,
				"shards disagree on %q's width: %d vs %d", name, cols, stats[w].Cols)
		}
		cols = stats[w].Cols
	}
	if !found {
		return nil, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered on any shard", name)
	}
	bounds := sparse.PieceBounds(rows, n)
	for w := 0; w < n; w++ {
		var got Index
		if errs[w] == nil {
			got = stats[w].Rows
		}
		if want := bounds[w+1] - bounds[w]; got != want {
			return nil, wireErrorf(CodeInternal,
				"shard %d holds %d rows of %q, want %d of a %d-row %d-way row split",
				w, got, name, want, rows, n)
		}
	}
	sm := &shardedMatrix{rows: rows, cols: cols, nnz: nnz, bounds: bounds, stats: &perf.ServeStats{}}
	ss.mu.Lock()
	if cur, ok := ss.mats[name]; ok {
		sm = cur // lost a discovery race; keep the established entry
	} else {
		ss.mats[name] = sm
	}
	ss.mu.Unlock()
	return sm, nil
}

// probeBand asks band w's replicas for their piece of name in
// membership-preference order: the first replica holding the piece
// answers. A replica that answers unknown_matrix is healthy (it spoke)
// but lacks the piece — a later replica may still hold it (a worker
// that rebooted without its preload does not hide a sibling's copy).
// Only when every replica failed transport-wise does the band report a
// probe failure.
func (ss *ShardedStore) probeBand(w int, name string, view cluster.View) (*StoreStat, error) {
	g := ss.rgroups[w]
	var lastErr error
	unknown := false
	for _, r := range g.Order(view) {
		stat, err := ss.groups[w][r].Matrix(name)
		if err == nil {
			ss.members.ReportSuccess(g.Members[r])
			return stat, nil
		}
		if AsWireError(err).Code == CodeUnknownMatrix {
			ss.members.ReportSuccess(g.Members[r])
			unknown = true
			continue
		}
		ss.reportOutcome(w, r, err)
		lastErr = err
	}
	if lastErr != nil {
		return nil, lastErr
	}
	if unknown {
		return nil, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name)
	}
	return nil, wireErrorf(CodeInternal, "shard %d has no probeable replicas", w)
}

// shardCall is one band's slice of a scatter: the per-band request
// (masks sliced to the band's row range) and, once dispatched, its
// response or error.
type shardCall struct {
	band int
	req  *Request
	resp *Response
	err  error
}

// retryableShardErr classifies shard-call failures. Transport faults
// and server-side internal errors are retryable (the shard may be
// restarting), and so is unknown_matrix — a rebooted -shard-of worker
// that re-preloaded its slice answers the retry. Validation errors are
// deterministic: retrying cannot change them, so they fail the request
// immediately (and failing over to a replica holding the identical
// piece cannot change them either).
func retryableShardErr(err error) bool {
	var we *WireError
	if !errors.As(err, &we) {
		return true
	}
	switch we.Code {
	case CodeInternal, CodeUnknownMatrix:
		return true
	}
	return false
}

// call issues one shard-replica request, under the per-attempt timeout
// when the backend supports cancellation. In-process stores skip the
// context: they cannot hang on a transport, so the deadline timer
// would be pure per-call overhead on the hot path.
func (ss *ShardedStore) call(w, r int, req *Request) (*Response, error) {
	b := ss.groups[w][r]
	if _, local := b.(*Store); !local && ss.timeout > 0 {
		if ce, ok := b.(contextExecutor); ok {
			ctx, cancel := context.WithTimeout(context.Background(), ss.timeout)
			defer cancel()
			return ce.DoContext(ctx, req)
		}
	}
	return b.Do(req)
}

// tryReplicas executes one dispatch round for one band call: the
// band's replicas are walked in the view's read-preference order
// (alive → suspect → dead), failing over to the next replica WITHIN
// this round on any retryable error. Each abandonment counts one
// failover on the abandoned replica's counters and on the matrix's;
// membership is fed every outcome. The call only remains failed — and
// so eligible for a retry round — when every replica failed.
func (ss *ShardedStore) tryReplicas(c *shardCall, view cluster.View, stats *perf.ServeStats) {
	g := ss.rgroups[c.band]
	order := g.Order(view)
	var lastErr error
	for k, r := range order {
		t := time.Now()
		resp, err := ss.call(c.band, r, c.req)
		rs := ss.replStats[c.band][r]
		rs.Observe(time.Since(t), err != nil)
		ss.reportOutcome(c.band, r, err)
		if err == nil {
			c.resp, c.err = resp, nil
			return
		}
		if !retryableShardErr(err) {
			c.err = err
			return
		}
		if k < len(order)-1 {
			rs.ObserveFailovers(1)
			stats.ObserveFailovers(1)
		}
		lastErr = err
	}
	c.err = lastErr
}

// dispatch executes every band call in parallel on the executor — one
// replica-failover round per call per dispatch round — then requeues
// calls whose whole group failed retryably in bounded backoff rounds.
// The first round routes every call against one consistent membership
// view (taken here, at scatter start); each retry round refreshes the
// view, so a replica flagged dead between rounds is deprioritized. The
// backoff sleep runs here, on the coordinating goroutine, so executor
// workers are never parked under a timer. A non-retryable failure, or
// a call still failing after the attempt budget, fails the whole
// scatter with the shard identified in the error.
func (ss *ShardedStore) dispatch(calls []*shardCall, stats *perf.ServeStats) error {
	pending := calls
	backoff := ss.backoff
	view := ss.members.View()
	for attempt := 1; ; attempt++ {
		one := func(c *shardCall) { ss.tryReplicas(c, view, stats) }
		if len(pending) == 1 {
			// A single band needs no fan-out; keep the one-shard
			// configuration's dispatch cost at a plain call.
			one(pending[0])
		} else {
			ss.exec.Run(len(pending), len(pending), func(_, q int) {
				one(pending[q])
			}, nil)
		}
		var retry []*shardCall
		for _, c := range pending {
			if c.err == nil {
				continue
			}
			if attempt >= ss.attempts || !retryableShardErr(c.err) {
				we := AsWireError(c.err)
				return wireErrorf(we.Code, "shard %d (%s): %s",
					c.band, ss.labels[c.band][0], we.Message)
			}
			retry = append(retry, c)
		}
		if len(retry) == 0 {
			return nil
		}
		for _, c := range retry {
			for r := range ss.replStats[c.band] {
				ss.replStats[c.band][r].ObserveRetries(1)
			}
		}
		stats.ObserveRetries(len(retry))
		time.Sleep(backoff)
		backoff *= 2
		view = ss.members.View()
		pending = retry
	}
}

// doSharded validates req against the matrix's global shape, scatters
// it across the bands owning nonempty row ranges, and gathers the
// row-disjoint results by concatenation (list form) or offset bitmap
// merge (bitmap form).
func (ss *ShardedStore) doSharded(sm *shardedMatrix, name string, req *Request) (*Response, error) {
	if err := req.Validate(sm.rows, sm.cols); err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	if req.Desc.Transpose {
		return nil, wireErrorf(CodeInvalidRequest,
			"transpose multiply cannot be served by a row-sharded matrix: "+
				"row pieces of A are column pieces of Aᵀ, whose partial products overlap")
	}

	calls := make([]*shardCall, 0, len(ss.groups))
	for w := range ss.groups {
		lo, hi := sm.bounds[w], sm.bounds[w+1]
		if hi <= lo {
			continue
		}
		d := req.Desc
		if d.Mask != nil {
			d.Mask = d.Mask.Slice(lo, hi)
		}
		if d.Masks != nil {
			ms := make([]*BitVector, len(d.Masks))
			for q, mk := range d.Masks {
				if mk != nil {
					ms[q] = mk.Slice(lo, hi)
				}
			}
			d.Masks = ms
		}
		calls = append(calls, &shardCall{
			band: w,
			req:  &Request{Matrix: name, X: req.X, Xs: req.Xs, Desc: d},
		})
	}

	wantBits := req.Desc.Output == OutputBitmap
	rep := OutputList
	if wantBits {
		rep = OutputBitmap
	}
	if len(calls) == 0 { // zero-row matrix: nothing to scatter
		return emptyShardResponse(req, wantBits, rep), nil
	}

	if err := ss.dispatch(calls, sm.stats); err != nil {
		return nil, err
	}

	// Single nonempty band owning every row: its response IS the
	// global answer — pass it through with no gather copy, so the
	// 1-shard configuration costs dispatch alone over a direct Store.
	if len(calls) == 1 && sm.bounds[calls[0].band] == 0 && sm.bounds[calls[0].band+1] == sm.rows {
		return calls[0].resp, nil
	}
	return ss.gather(sm, req, calls, wantBits, rep)
}

// emptyShardResponse answers a scatter with no nonempty pieces: the
// correctly-shaped all-empty result.
func emptyShardResponse(req *Request, wantBits bool, rep OutputMode) *Response {
	resp := &Response{OutputRep: rep.String()}
	switch {
	case req.X != nil && wantBits:
		resp.YBits = sparse.NewBitVec(0)
	case req.X != nil:
		resp.Y = sparse.NewSpVec(0, 0)
	case wantBits:
		resp.YsBits = make([]*BitVector, len(req.Xs))
		for q := range resp.YsBits {
			resp.YsBits[q] = sparse.NewBitVec(0)
		}
	default:
		resp.Ys = make([]*Vector, len(req.Xs))
		for q := range resp.Ys {
			resp.Ys[q] = sparse.NewSpVec(0, 0)
		}
	}
	return resp
}

// gather concatenates the bands' row-disjoint results into the global
// response. List outputs append with the band's row offset (values
// are NOT shifted — they carry whatever the semiring computed, e.g.
// global parent ids under select2nd); bitmap outputs merge by OrAt.
// Because calls are in ascending band order and row ranges are
// disjoint, a concatenation of sorted pieces is itself sorted.
func (ss *ShardedStore) gather(sm *shardedMatrix, req *Request, calls []*shardCall, wantBits bool, rep OutputMode) (*Response, error) {
	resp := &Response{OutputRep: rep.String()}
	width := 1
	if req.Xs != nil {
		width = len(req.Xs)
	}
	for slot := 0; slot < width; slot++ {
		if wantBits {
			yb := sparse.NewBitVec(sm.rows)
			for _, c := range calls {
				pb := c.resp.YBits
				if req.Xs != nil {
					pb = c.resp.YsBits[slot]
				}
				if pb == nil {
					return nil, wireErrorf(CodeInternal,
						"shard %d answered without a bitmap payload", c.band)
				}
				yb.OrAt(pb, sm.bounds[c.band])
			}
			if req.X != nil {
				resp.YBits = yb
			} else {
				resp.YsBits = append(resp.YsBits, yb)
			}
			continue
		}
		nnz := 0
		for _, c := range calls {
			py := c.resp.Y
			if req.Xs != nil {
				py = c.resp.Ys[slot]
			}
			if py == nil {
				return nil, wireErrorf(CodeInternal,
					"shard %d answered without a list payload", c.band)
			}
			nnz += py.NNZ()
		}
		y := sparse.NewSpVec(sm.rows, nnz)
		sorted := true
		for _, c := range calls {
			py := c.resp.Y
			if req.Xs != nil {
				py = c.resp.Ys[slot]
			}
			off := sm.bounds[c.band]
			for k, i := range py.Ind {
				y.Append(i+off, py.Val[k])
			}
			if !py.Sorted {
				sorted = false
			}
		}
		y.Sorted = sorted
		if req.X != nil {
			resp.Y = y
		} else {
			resp.Ys = append(resp.Ys, y)
		}
	}
	return resp, nil
}

// Do executes a wire request as a scatter/gather across the shards —
// the coordinator's Executor implementation, answer-identical to the
// single-process Store.Do for every request shape a row decomposition
// can serve.
func (ss *ShardedStore) Do(req *Request) (*Response, error) {
	if req == nil {
		return nil, wireErrorf(CodeBadRequest, "nil request")
	}
	sm, err := ss.lookup(req.Matrix)
	if err != nil {
		return nil, err
	}
	t := time.Now()
	resp, err := ss.doSharded(sm, req.Matrix, req)
	sm.stats.Observe(time.Since(t), err != nil)
	return resp, err
}

// DoContext is Do with a pre-flight context check (the per-shard
// attempts carry their own deadlines).
func (ss *ShardedStore) DoContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return ss.Do(req)
}

// Run executes a program with every mult op scattered across the
// shards — the interpreter (op refs, masks-from-frontiers,
// StopOnEmpty) is the same code path the single-process Store runs, so
// program semantics cannot drift between the two.
func (ss *ShardedStore) Run(p *Program) (*ProgramResponse, error) {
	return runProgramOps(p, ss.progMult())
}

// progMult returns the coordinator's program-multiply hook: each op is
// one scattered request across the shards.
func (ss *ShardedStore) progMult() progMultFunc {
	return func(k int, name string, xf *Frontier, d Desc) (*Frontier, error) {
		sm, err := ss.lookup(name)
		if err != nil {
			return nil, err
		}
		// Op outputs travel as lists regardless of the op's output mode:
		// the interpreter's frontiers are list-authoritative (a later
		// mask_ref derives the bitmap lazily, content-identical to an
		// engine-native one), and "richest native representation" is an
		// in-process concept the wire cannot ship.
		d.Output = OutputList
		req := &Request{Matrix: name, X: xf.List(), Desc: d}
		t := time.Now()
		resp, err := ss.doSharded(sm, name, req)
		sm.stats.Observe(time.Since(t), err != nil)
		if err != nil {
			we := AsWireError(err)
			return nil, wireErrorf(we.Code, "op %d: %s", k, we.Message)
		}
		return NewFrontier(resp.Y), nil
	}
}

// RunContext is Run with a pre-flight context check (see DoContext).
func (ss *ShardedStore) RunContext(ctx context.Context, p *Program) (*ProgramResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return ss.Run(p)
}

// resolveMult reports the global shape requests are validated against
// and the matrix's coordinator-side counters — the serving layer's
// pre-validation hook.
func (ss *ShardedStore) resolveMult(name string) (Index, Index, *perf.ServeStats, error) {
	sm, err := ss.lookup(name)
	if err != nil {
		return 0, 0, nil, err
	}
	return sm.rows, sm.cols, sm.stats, nil
}

// multBatch executes one coalesced flush as a single batched scatter:
// the whole window rides one request per band, so coalescing amortizes
// the per-shard dispatch exactly as it amortizes the engine's sizing
// pass in-process.
func (ss *ShardedStore) multBatch(name string, xs []*Vector, masks []*BitVector, d Desc) ([]*Vector, error) {
	sm, err := ss.lookup(name)
	if err != nil {
		return nil, err
	}
	hasMask := false
	for _, mk := range masks {
		if mk != nil {
			hasMask = true
			break
		}
	}
	req := &Request{Matrix: name, Xs: xs, Desc: Desc{
		Semiring:  d.Semiring,
		Transpose: d.Transpose,
		Output:    OutputList,
	}}
	if hasMask {
		req.Desc.Masks = masks
		req.Desc.Complement = d.Complement
	}
	resp, err := ss.doSharded(sm, name, req)
	if err != nil {
		return nil, err
	}
	sm.stats.ObserveBatch(len(xs))
	return resp.Ys, nil
}

// health reports the coordinator's liveness summary for GET /v1/health.
func (ss *ShardedStore) health() HealthStatus {
	ss.mu.RLock()
	n := len(ss.mats)
	ss.mu.RUnlock()
	maxR := 0
	for _, g := range ss.groups {
		if len(g) > maxR {
			maxR = len(g)
		}
	}
	return HealthStatus{
		Engine:      "coordinator",
		Matrices:    n,
		Programs:    len(ss.programs.list()),
		Shards:      len(ss.groups),
		Replicas:    maxR,
		MemberEpoch: ss.members.Epoch(),
	}
}
