package spmspv

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// ShardBackend is the surface the shard coordinator drives on each
// shard: an Executor that also manages named matrices. Both *Store
// (in-process shards) and *Client (remote spmspv-serve shards over the
// binary wire) satisfy it, so a coordinator mixes local and remote
// backends freely.
type ShardBackend interface {
	Executor
	PutMatrix(name string, a *Matrix) (*StoreStat, error)
	DeleteMatrix(name string) error
	Matrix(name string) (*StoreStat, error)
}

// contextExecutor is the optional cancellable form of Executor. When a
// backend offers it (*Store and *Client both do), the coordinator runs
// each shard attempt under its per-attempt timeout, so a hung shard is
// abandoned and retried instead of stalling the whole scatter.
type contextExecutor interface {
	DoContext(ctx context.Context, req *Request) (*Response, error)
	RunContext(ctx context.Context, p *Program) (*ProgramResponse, error)
}

// ShardedStore distributes named matrices across shard backends by row
// range and serves multiplies as parallel scatter/gather — the
// paper's row-split decomposition (sparse.RowSplit's PieceBounds,
// CombBLAS's 1D distribution) promoted from an intra-process trick to
// the unit of service. Put slices an uploaded matrix with
// sparse.RowSlice and uploads piece w to backend w; Do and Run fan each
// multiply out on the internal/par executor, every shard computing its
// row range of y against the full x, and because row ranges are
// disjoint the gather is a pure concatenation — no merge semiring, no
// accumulation pass. Transposed multiplies are the one shape this
// decomposition cannot serve (row pieces of A are column pieces of Aᵀ,
// whose partial products overlap and would need a semiring merge); they
// are rejected with invalid_request.
//
// A ShardedStore is an Executor and a ServingStore: Client code,
// Store.Run programs, internal/algorithms and the HTTP Server all work
// against it unchanged, coalescing included.
//
// Shard calls that fail retryably — transport faults, server-side
// internal errors, unknown_matrix from a worker that rebooted and is
// re-preloading — are requeued in bounded backoff rounds (see
// WithShardRetries), so a shard death mid-BFS degrades to a retried
// round, not a failed request.
type ShardedStore struct {
	backends []ShardBackend
	labels   []string
	exec     *par.Executor

	attempts int           // tries per shard call, ≥ 1
	backoff  time.Duration // sleep before the first retry round, doubling
	timeout  time.Duration // per-attempt deadline for cancellable backends

	mu   sync.RWMutex
	mats map[string]*shardedMatrix

	// programs is the coordinator-side stored-procedure registry (see
	// programs.go): programs compile and loop on the coordinator, and
	// only the mult ops scatter.
	programs programRegistry

	shardStats []*perf.ServeStats
}

// shardedMatrix is the coordinator's registry entry: the global shape
// and the row bounds assigning piece w rows [bounds[w], bounds[w+1]).
type shardedMatrix struct {
	rows, cols Index
	nnz        int64
	bounds     []Index
	stats      *perf.ServeStats
}

// ShardOption configures NewShardedStore.
type ShardOption func(*ShardedStore)

// WithShardRetries sets how many times one shard call is retried after
// a retryable failure (default 2, so 3 attempts total). 0 disables
// retry.
func WithShardRetries(n int) ShardOption {
	return func(ss *ShardedStore) {
		if n < 0 {
			n = 0
		}
		ss.attempts = n + 1
	}
}

// WithShardBackoff sets the sleep before the first retry round
// (default 20ms); each further round doubles it. The sleep runs on the
// coordinating goroutine, never inside executor workers.
func WithShardBackoff(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.backoff = d }
}

// WithShardTimeout bounds each shard attempt (default 30s) for
// backends that support cancellation; attempts that outlive it are
// abandoned and count as retryable failures. Zero disables the
// per-attempt deadline.
func WithShardTimeout(d time.Duration) ShardOption {
	return func(ss *ShardedStore) { ss.timeout = d }
}

// WithShardLabels names the backends for ShardStats reporting (e.g.
// their URLs). Unlabeled shards report as "shard/i".
func WithShardLabels(labels []string) ShardOption {
	return func(ss *ShardedStore) {
		copy(ss.labels, labels)
	}
}

// NewShardedStore returns a coordinator over the given backends. The
// shard count — and so the row decomposition of every matrix it serves
// — is fixed at construction.
func NewShardedStore(backends []ShardBackend, opts ...ShardOption) (*ShardedStore, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("spmspv: sharded store needs at least one backend")
	}
	ss := &ShardedStore{
		backends:   backends,
		labels:     make([]string, len(backends)),
		exec:       par.Default(),
		attempts:   3,
		backoff:    20 * time.Millisecond,
		timeout:    30 * time.Second,
		mats:       map[string]*shardedMatrix{},
		shardStats: make([]*perf.ServeStats, len(backends)),
	}
	for w := range ss.labels {
		ss.labels[w] = fmt.Sprintf("shard/%d", w)
		ss.shardStats[w] = &perf.ServeStats{}
	}
	for _, o := range opts {
		o(ss)
	}
	return ss, nil
}

// NewLocalShardedStore is the in-process form: n fresh *Store shards
// (each built with storeOpts) behind one coordinator — the single-box
// configuration the shard benchmarks measure, and a drop-in *Store
// replacement for testing the scatter/gather path without sockets.
func NewLocalShardedStore(n int, storeOpts []Option, opts ...ShardOption) (*ShardedStore, error) {
	if n <= 0 {
		return nil, fmt.Errorf("spmspv: sharded store needs at least one shard, got %d", n)
	}
	backends := make([]ShardBackend, n)
	labels := make([]string, n)
	for w := range backends {
		backends[w] = NewStore(storeOpts...)
		labels[w] = fmt.Sprintf("local/%d", w)
	}
	return NewShardedStore(backends, append([]ShardOption{WithShardLabels(labels)}, opts...)...)
}

// Shards reports the number of shard backends.
func (ss *ShardedStore) Shards() int { return len(ss.backends) }

// ShardStat is one shard backend's coordinator-side serving counters:
// every scatter call issued to the shard lands here, with retried
// calls counted under Serve.Retries.
type ShardStat struct {
	Shard int                `json:"shard"`
	Addr  string             `json:"addr"`
	Serve perf.ServeSnapshot `json:"serve"`
}

// ShardStats reports the per-shard counters, in shard order.
func (ss *ShardedStore) ShardStats() []ShardStat {
	out := make([]ShardStat, len(ss.backends))
	for w := range out {
		out[w] = ShardStat{Shard: w, Addr: ss.labels[w], Serve: ss.shardStats[w].Snapshot()}
	}
	return out
}

// Put slices a into len(backends) row-range pieces and uploads piece w
// to backend w under the same name — empty pieces (more shards than
// rows) are simply not uploaded. A failed upload rolls back the pieces
// that landed, so a failed Put leaves no stragglers.
func (ss *ShardedStore) Put(name string, a *Matrix) error {
	if err := validStoreName(name); err != nil {
		return err
	}
	if a == nil {
		return fmt.Errorf("spmspv: Put with nil matrix")
	}
	if err := a.Validate(); err != nil {
		return err
	}
	n := len(ss.backends)
	bounds := sparse.PieceBounds(a.NumRows, n)
	errs := make([]error, n)
	ss.exec.Run(n, n, func(_, w int) {
		lo, hi := bounds[w], bounds[w+1]
		if hi <= lo {
			return
		}
		_, errs[w] = ss.backends[w].PutMatrix(name, sparse.RowSlice(a, lo, hi))
	}, nil)
	for w, err := range errs {
		if err != nil {
			for v := range ss.backends {
				if bounds[v+1] > bounds[v] && errs[v] == nil {
					ss.backends[v].DeleteMatrix(name)
				}
			}
			return wireErrorf(CodeInternal, "uploading shard %d of %q: %v", w, name, err)
		}
	}
	ss.mu.Lock()
	ss.mats[name] = &shardedMatrix{
		rows: a.NumRows, cols: a.NumCols, nnz: a.NNZ(),
		bounds: bounds, stats: &perf.ServeStats{},
	}
	ss.mu.Unlock()
	return nil
}

// Delete unregisters a matrix and best-effort removes its pieces from
// the shards; it reports whether the name was registered.
func (ss *ShardedStore) Delete(name string) bool {
	ss.mu.Lock()
	sm, ok := ss.mats[name]
	delete(ss.mats, name)
	ss.mu.Unlock()
	if !ok {
		return false
	}
	n := len(ss.backends)
	ss.exec.Run(n, n, func(_, w int) {
		if sm.bounds[w+1] > sm.bounds[w] {
			ss.backends[w].DeleteMatrix(name)
		}
	}, nil)
	return true
}

// List returns the registered names in sorted order.
func (ss *ShardedStore) List() []string {
	ss.mu.RLock()
	names := make([]string, 0, len(ss.mats))
	for name := range ss.mats {
		names = append(names, name)
	}
	ss.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Stats reports one matrix's registry entry. Built is true once the
// coordinator has served at least one multiply against it — the
// sharded analogue of "the engine exists" — since the per-shard engine
// builds happen inside the shards.
func (ss *ShardedStore) Stats(name string) (StoreStat, error) {
	ss.mu.RLock()
	sm := ss.mats[name]
	ss.mu.RUnlock()
	if sm == nil {
		if name == "" {
			return StoreStat{}, wireErrorf(CodeInvalidRequest, "request names no matrix")
		}
		return StoreStat{}, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name)
	}
	return ss.statOf(name, sm), nil
}

func (ss *ShardedStore) statOf(name string, sm *shardedMatrix) StoreStat {
	snap := sm.stats.Snapshot()
	return StoreStat{
		Name: name, Rows: sm.rows, Cols: sm.cols, NNZ: sm.nnz,
		Built: snap.Requests > snap.Failures,
		Serve: snap,
	}
}

// StatsAll reports every registered matrix, sorted by name.
func (ss *ShardedStore) StatsAll() []StoreStat {
	ss.mu.RLock()
	stats := make([]StoreStat, 0, len(ss.mats))
	for name, sm := range ss.mats {
		stats = append(stats, ss.statOf(name, sm))
	}
	ss.mu.RUnlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// lookup resolves a name to its registry entry, falling back to
// discovery for matrices the shards already hold (see discover).
func (ss *ShardedStore) lookup(name string) (*shardedMatrix, error) {
	if name == "" {
		return nil, wireErrorf(CodeInvalidRequest, "request names no matrix")
	}
	ss.mu.RLock()
	sm := ss.mats[name]
	ss.mu.RUnlock()
	if sm != nil {
		return sm, nil
	}
	if err := validStoreName(name); err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	return ss.discover(name)
}

// discover reconstructs the registry entry for a matrix the shards
// already hold — the -shard-of deployment, where worker w preloads its
// own row slice and the coordinator boots with an empty registry. The
// per-shard row counts must reproduce PieceBounds of the summed total
// (workers whose piece is empty hold nothing), which pins the
// decomposition before any multiply is served against it.
func (ss *ShardedStore) discover(name string) (*shardedMatrix, error) {
	n := len(ss.backends)
	stats := make([]*StoreStat, n)
	errs := make([]error, n)
	ss.exec.Run(n, n, func(_, w int) {
		stats[w], errs[w] = ss.backends[w].Matrix(name)
	}, nil)
	var rows Index
	cols := Index(-1)
	var nnz int64
	found := false
	for w := 0; w < n; w++ {
		if errs[w] != nil {
			if AsWireError(errs[w]).Code == CodeUnknownMatrix {
				continue // legitimately absent iff its piece is empty, checked below
			}
			return nil, wireErrorf(CodeInternal, "probing shard %d for %q: %v", w, name, errs[w])
		}
		found = true
		rows += stats[w].Rows
		nnz += stats[w].NNZ
		if cols >= 0 && stats[w].Cols != cols {
			return nil, wireErrorf(CodeInternal,
				"shards disagree on %q's width: %d vs %d", name, cols, stats[w].Cols)
		}
		cols = stats[w].Cols
	}
	if !found {
		return nil, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered on any shard", name)
	}
	bounds := sparse.PieceBounds(rows, n)
	for w := 0; w < n; w++ {
		var got Index
		if errs[w] == nil {
			got = stats[w].Rows
		}
		if want := bounds[w+1] - bounds[w]; got != want {
			return nil, wireErrorf(CodeInternal,
				"shard %d holds %d rows of %q, want %d of a %d-row %d-way row split",
				w, got, name, want, rows, n)
		}
	}
	sm := &shardedMatrix{rows: rows, cols: cols, nnz: nnz, bounds: bounds, stats: &perf.ServeStats{}}
	ss.mu.Lock()
	if cur, ok := ss.mats[name]; ok {
		sm = cur // lost a discovery race; keep the established entry
	} else {
		ss.mats[name] = sm
	}
	ss.mu.Unlock()
	return sm, nil
}

// shardCall is one shard's slice of a scatter: the per-shard request
// (masks sliced to the shard's row range) and, once dispatched, its
// response or error.
type shardCall struct {
	w    int
	req  *Request
	resp *Response
	err  error
}

// retryableShardErr classifies shard-call failures. Transport faults
// and server-side internal errors are retryable (the shard may be
// restarting), and so is unknown_matrix — a rebooted -shard-of worker
// that re-preloaded its slice answers the retry. Validation errors are
// deterministic: retrying cannot change them, so they fail the request
// immediately.
func retryableShardErr(err error) bool {
	var we *WireError
	if !errors.As(err, &we) {
		return true
	}
	switch we.Code {
	case CodeInternal, CodeUnknownMatrix:
		return true
	}
	return false
}

// call issues one shard request, under the per-attempt timeout when
// the backend supports cancellation. In-process stores skip the
// context: they cannot hang on a transport, so the deadline timer
// would be pure per-call overhead on the hot path.
func (ss *ShardedStore) call(w int, req *Request) (*Response, error) {
	b := ss.backends[w]
	if _, local := b.(*Store); !local && ss.timeout > 0 {
		if ce, ok := b.(contextExecutor); ok {
			ctx, cancel := context.WithTimeout(context.Background(), ss.timeout)
			defer cancel()
			return ce.DoContext(ctx, req)
		}
	}
	return b.Do(req)
}

// dispatch executes every call in parallel on the executor — one
// attempt per call per round — then requeues the retryable failures in
// bounded backoff rounds. The backoff sleep runs here, on the
// coordinating goroutine, so executor workers are never parked under a
// timer. A non-retryable failure, or a call still failing after the
// attempt budget, fails the whole scatter with the shard identified in
// the error.
func (ss *ShardedStore) dispatch(calls []*shardCall, stats *perf.ServeStats) error {
	pending := calls
	backoff := ss.backoff
	for attempt := 1; ; attempt++ {
		one := func(c *shardCall) {
			t := time.Now()
			c.resp, c.err = ss.call(c.w, c.req)
			ss.shardStats[c.w].Observe(time.Since(t), c.err != nil)
		}
		if len(pending) == 1 {
			// A single shard needs no fan-out; keep the one-shard
			// configuration's dispatch cost at a plain call.
			one(pending[0])
		} else {
			ss.exec.Run(len(pending), len(pending), func(_, q int) {
				one(pending[q])
			}, nil)
		}
		var retry []*shardCall
		for _, c := range pending {
			if c.err == nil {
				continue
			}
			if attempt >= ss.attempts || !retryableShardErr(c.err) {
				we := AsWireError(c.err)
				return wireErrorf(we.Code, "shard %d (%s): %s", c.w, ss.labels[c.w], we.Message)
			}
			retry = append(retry, c)
		}
		if len(retry) == 0 {
			return nil
		}
		for _, c := range retry {
			ss.shardStats[c.w].ObserveRetries(1)
		}
		stats.ObserveRetries(len(retry))
		time.Sleep(backoff)
		backoff *= 2
		pending = retry
	}
}

// doSharded validates req against the matrix's global shape, scatters
// it across the shards owning nonempty row ranges, and gathers the
// row-disjoint results by concatenation (list form) or offset bitmap
// merge (bitmap form).
func (ss *ShardedStore) doSharded(sm *shardedMatrix, name string, req *Request) (*Response, error) {
	if err := req.Validate(sm.rows, sm.cols); err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	if req.Desc.Transpose {
		return nil, wireErrorf(CodeInvalidRequest,
			"transpose multiply cannot be served by a row-sharded matrix: "+
				"row pieces of A are column pieces of Aᵀ, whose partial products overlap")
	}

	calls := make([]*shardCall, 0, len(ss.backends))
	for w := range ss.backends {
		lo, hi := sm.bounds[w], sm.bounds[w+1]
		if hi <= lo {
			continue
		}
		d := req.Desc
		if d.Mask != nil {
			d.Mask = d.Mask.Slice(lo, hi)
		}
		if d.Masks != nil {
			ms := make([]*BitVector, len(d.Masks))
			for q, mk := range d.Masks {
				if mk != nil {
					ms[q] = mk.Slice(lo, hi)
				}
			}
			d.Masks = ms
		}
		calls = append(calls, &shardCall{
			w:   w,
			req: &Request{Matrix: name, X: req.X, Xs: req.Xs, Desc: d},
		})
	}

	wantBits := req.Desc.Output == OutputBitmap
	rep := OutputList
	if wantBits {
		rep = OutputBitmap
	}
	if len(calls) == 0 { // zero-row matrix: nothing to scatter
		return emptyShardResponse(req, wantBits, rep), nil
	}

	if err := ss.dispatch(calls, sm.stats); err != nil {
		return nil, err
	}

	// Single nonempty shard owning every row: its response IS the
	// global answer — pass it through with no gather copy, so the
	// 1-shard configuration costs dispatch alone over a direct Store.
	if len(calls) == 1 && sm.bounds[calls[0].w] == 0 && sm.bounds[calls[0].w+1] == sm.rows {
		return calls[0].resp, nil
	}
	return ss.gather(sm, req, calls, wantBits, rep)
}

// emptyShardResponse answers a scatter with no nonempty pieces: the
// correctly-shaped all-empty result.
func emptyShardResponse(req *Request, wantBits bool, rep OutputMode) *Response {
	resp := &Response{OutputRep: rep.String()}
	switch {
	case req.X != nil && wantBits:
		resp.YBits = sparse.NewBitVec(0)
	case req.X != nil:
		resp.Y = sparse.NewSpVec(0, 0)
	case wantBits:
		resp.YsBits = make([]*BitVector, len(req.Xs))
		for q := range resp.YsBits {
			resp.YsBits[q] = sparse.NewBitVec(0)
		}
	default:
		resp.Ys = make([]*Vector, len(req.Xs))
		for q := range resp.Ys {
			resp.Ys[q] = sparse.NewSpVec(0, 0)
		}
	}
	return resp
}

// gather concatenates the shards' row-disjoint results into the global
// response. List outputs append with the shard's row offset (values
// are NOT shifted — they carry whatever the semiring computed, e.g.
// global parent ids under select2nd); bitmap outputs merge by OrAt.
// Because calls are in ascending shard order and row ranges are
// disjoint, a concatenation of sorted pieces is itself sorted.
func (ss *ShardedStore) gather(sm *shardedMatrix, req *Request, calls []*shardCall, wantBits bool, rep OutputMode) (*Response, error) {
	resp := &Response{OutputRep: rep.String()}
	width := 1
	if req.Xs != nil {
		width = len(req.Xs)
	}
	for slot := 0; slot < width; slot++ {
		if wantBits {
			yb := sparse.NewBitVec(sm.rows)
			for _, c := range calls {
				pb := c.resp.YBits
				if req.Xs != nil {
					pb = c.resp.YsBits[slot]
				}
				if pb == nil {
					return nil, wireErrorf(CodeInternal,
						"shard %d answered without a bitmap payload", c.w)
				}
				yb.OrAt(pb, sm.bounds[c.w])
			}
			if req.X != nil {
				resp.YBits = yb
			} else {
				resp.YsBits = append(resp.YsBits, yb)
			}
			continue
		}
		nnz := 0
		for _, c := range calls {
			py := c.resp.Y
			if req.Xs != nil {
				py = c.resp.Ys[slot]
			}
			if py == nil {
				return nil, wireErrorf(CodeInternal,
					"shard %d answered without a list payload", c.w)
			}
			nnz += py.NNZ()
		}
		y := sparse.NewSpVec(sm.rows, nnz)
		sorted := true
		for _, c := range calls {
			py := c.resp.Y
			if req.Xs != nil {
				py = c.resp.Ys[slot]
			}
			off := sm.bounds[c.w]
			for k, i := range py.Ind {
				y.Append(i+off, py.Val[k])
			}
			if !py.Sorted {
				sorted = false
			}
		}
		y.Sorted = sorted
		if req.X != nil {
			resp.Y = y
		} else {
			resp.Ys = append(resp.Ys, y)
		}
	}
	return resp, nil
}

// Do executes a wire request as a scatter/gather across the shards —
// the coordinator's Executor implementation, answer-identical to the
// single-process Store.Do for every request shape a row decomposition
// can serve.
func (ss *ShardedStore) Do(req *Request) (*Response, error) {
	if req == nil {
		return nil, wireErrorf(CodeBadRequest, "nil request")
	}
	sm, err := ss.lookup(req.Matrix)
	if err != nil {
		return nil, err
	}
	t := time.Now()
	resp, err := ss.doSharded(sm, req.Matrix, req)
	sm.stats.Observe(time.Since(t), err != nil)
	return resp, err
}

// DoContext is Do with a pre-flight context check (the per-shard
// attempts carry their own deadlines).
func (ss *ShardedStore) DoContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return ss.Do(req)
}

// Run executes a program with every mult op scattered across the
// shards — the interpreter (op refs, masks-from-frontiers,
// StopOnEmpty) is the same code path the single-process Store runs, so
// program semantics cannot drift between the two.
func (ss *ShardedStore) Run(p *Program) (*ProgramResponse, error) {
	return runProgramOps(p, ss.progMult())
}

// progMult returns the coordinator's program-multiply hook: each op is
// one scattered request across the shards.
func (ss *ShardedStore) progMult() progMultFunc {
	return func(k int, name string, xf *Frontier, d Desc) (*Frontier, error) {
		sm, err := ss.lookup(name)
		if err != nil {
			return nil, err
		}
		// Op outputs travel as lists regardless of the op's output mode:
		// the interpreter's frontiers are list-authoritative (a later
		// mask_ref derives the bitmap lazily, content-identical to an
		// engine-native one), and "richest native representation" is an
		// in-process concept the wire cannot ship.
		d.Output = OutputList
		req := &Request{Matrix: name, X: xf.List(), Desc: d}
		t := time.Now()
		resp, err := ss.doSharded(sm, name, req)
		sm.stats.Observe(time.Since(t), err != nil)
		if err != nil {
			we := AsWireError(err)
			return nil, wireErrorf(we.Code, "op %d: %s", k, we.Message)
		}
		return NewFrontier(resp.Y), nil
	}
}

// RunContext is Run with a pre-flight context check (see DoContext).
func (ss *ShardedStore) RunContext(ctx context.Context, p *Program) (*ProgramResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, wireErrorf(CodeInternal, "%v", err)
	}
	return ss.Run(p)
}

// resolveMult reports the global shape requests are validated against
// and the matrix's coordinator-side counters — the serving layer's
// pre-validation hook.
func (ss *ShardedStore) resolveMult(name string) (Index, Index, *perf.ServeStats, error) {
	sm, err := ss.lookup(name)
	if err != nil {
		return 0, 0, nil, err
	}
	return sm.rows, sm.cols, sm.stats, nil
}

// multBatch executes one coalesced flush as a single batched scatter:
// the whole window rides one request per shard, so coalescing
// amortizes the per-shard dispatch exactly as it amortizes the
// engine's sizing pass in-process.
func (ss *ShardedStore) multBatch(name string, xs []*Vector, masks []*BitVector, d Desc) ([]*Vector, error) {
	sm, err := ss.lookup(name)
	if err != nil {
		return nil, err
	}
	hasMask := false
	for _, mk := range masks {
		if mk != nil {
			hasMask = true
			break
		}
	}
	req := &Request{Matrix: name, Xs: xs, Desc: Desc{
		Semiring:  d.Semiring,
		Transpose: d.Transpose,
		Output:    OutputList,
	}}
	if hasMask {
		req.Desc.Masks = masks
		req.Desc.Complement = d.Complement
	}
	resp, err := ss.doSharded(sm, name, req)
	if err != nil {
		return nil, err
	}
	sm.stats.ObserveBatch(len(xs))
	return resp.Ys, nil
}
