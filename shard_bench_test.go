// BenchmarkShardedDo measures the scatter/gather coordinator against
// direct Store.Do on the serving benchmark matrix. The "direct" series
// is the single-box baseline; "shards1" prices the coordinator's
// dispatch layer alone (the single-shard passthrough must stay within
// ~15% of direct); "shards2"/"shards4" show how row-split fan-out
// scales when every shard computes its own row range of y in parallel.
// CI uploads BENCH_shard.json so cmd/benchcmp gates the coordinator
// overhead like every other hot path.
package spmspv_test

import (
	"fmt"
	"math/rand"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

func BenchmarkShardedDo(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := spmspv.ErdosRenyi(1<<14, 8, 99)

	const nVecs = 64
	reqs := make([]*spmspv.Request, nVecs)
	for i := range reqs {
		reqs[i] = &spmspv.Request{
			Matrix: "g",
			X:      testutil.RandomVector(rng, a.NumCols, 16, true),
			Desc:   spmspv.Desc{Semiring: "arithmetic"},
		}
	}

	run := func(b *testing.B, exec spmspv.Executor) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; b.Loop(); i++ {
			if _, err := exec.Do(reqs[i%nVecs]); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("direct", func(b *testing.B) {
		st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(0)))
		if err := st.Put("g", a); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Load("g"); err != nil {
			b.Fatal(err)
		}
		run(b, st)
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) {
			ss, err := spmspv.NewLocalShardedStore(n,
				[]spmspv.Option{spmspv.WithEngineOptions(engineOptions(0))})
			if err != nil {
				b.Fatal(err)
			}
			if err := ss.Put("g", a); err != nil {
				b.Fatal(err)
			}
			run(b, ss)
		})
	}
}
