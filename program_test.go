// Tests for the multi-op Program wire contract: structural
// validation, op semantics (mult chains over refs, union, indices,
// mask_ref, stop_on_empty), and the in-process executor on the store.
package spmspv_test

import (
	"encoding/json"
	"math/rand"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/testutil"
)

func TestProgramValidate(t *testing.T) {
	x := testutil.VectorWithIndices(10, 3)
	mult := func(xref string) spmspv.ProgramOp {
		return spmspv.ProgramOp{XRef: xref, Desc: spmspv.Desc{Semiring: "arithmetic"}}
	}
	cases := map[string]*spmspv.Program{
		"empty":         {},
		"forwardRef":    {Ops: []spmspv.ProgramOp{mult("$1"), {Op: "input", X: x}}},
		"selfRef":       {Ops: []spmspv.ProgramOp{mult("$0")}},
		"badRef":        {Ops: []spmspv.ProgramOp{mult("zero")}},
		"unknownOp":     {Ops: []spmspv.ProgramOp{{Op: "teleport", X: x}}},
		"noInput":       {Ops: []spmspv.ProgramOp{{Desc: spmspv.Desc{Semiring: "arithmetic"}}}},
		"bothInputs":    {Ops: []spmspv.ProgramOp{{X: x, XRef: "$0", Desc: spmspv.Desc{Semiring: "arithmetic"}}}},
		"noSemiring":    {Ops: []spmspv.ProgramOp{{X: x}}},
		"badSemiring":   {Ops: []spmspv.ProgramOp{{X: x, Desc: spmspv.Desc{Semiring: "rings-of-power"}}}},
		"accumOp":       {Ops: []spmspv.ProgramOp{{X: x, Desc: spmspv.Desc{Semiring: "arithmetic", Accum: true}}}},
		"inputNoX":      {Ops: []spmspv.ProgramOp{{Op: "input"}}},
		"unionOneRef":   {Ops: []spmspv.ProgramOp{{Op: "input", X: x}, {Op: "union", XRef: "$0"}}},
		"indicesNoRef":  {Ops: []spmspv.ProgramOp{{Op: "indices"}}},
		"complementRaw": {Ops: []spmspv.ProgramOp{{X: x, Desc: spmspv.Desc{Semiring: "arithmetic", Complement: true}}}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}

	good := &spmspv.Program{Ops: []spmspv.ProgramOp{
		{Op: "input", X: x},
		{XRef: "$0", MaskRef: "$0", Desc: spmspv.Desc{Complement: true, Semiring: "bfs"}, Emit: true},
		{Op: "union", XRef: "$0", YRef: "$1"},
		{Op: "indices", XRef: "$1"},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("well-formed program rejected: %v", err)
	}
	// The wire form round-trips.
	data, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := spmspv.DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Validate(); err != nil {
		t.Errorf("decoded program rejected: %v", err)
	}
}

// TestProgramMultChain pins ref semantics: y = A·(A·x) through two
// chained mult ops equals the sequential reference applied twice.
func TestProgramMultChain(t *testing.T) {
	// Chaining needs a square matrix.
	rng := rand.New(rand.NewSource(41))
	sq := testutil.RandomCSC(rng, 80, 80, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put("sq", sq); err != nil {
		t.Fatal(err)
	}
	x := testutil.RandomVector(rng, sq.NumCols, 25, true)

	resp, err := st.Run(&spmspv.Program{
		Matrix: "sq",
		Ops: []spmspv.ProgramOp{
			{Op: "input", X: x},
			{XRef: "$0", Desc: spmspv.Desc{Semiring: "arithmetic"}},
			{XRef: "$1", Desc: spmspv.Desc{Semiring: "arithmetic"}, Emit: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Steps != 3 || len(resp.Results) != 1 || resp.Results[0].Op != 2 {
		t.Fatalf("resp = steps %d, results %v", resp.Steps, resp.Results)
	}
	want := baselines.Reference(sq, baselines.Reference(sq, x, spmspv.Arithmetic), spmspv.Arithmetic)
	if !resp.Results[0].Y.EqualValues(want, 1e-9) {
		t.Error("chained mult differs from reference A·(A·x)")
	}
}

// TestProgramUnionAndIndices pins the two non-mult op kinds.
func TestProgramUnionAndIndices(t *testing.T) {
	st, _, _ := storeWithMatrix(t, "g")
	xa := testutil.VectorWithIndices(10, 1, 3, 5)
	xb := testutil.VectorWithIndices(10, 3, 7)

	resp, err := st.Run(&spmspv.Program{Ops: []spmspv.ProgramOp{
		{Op: "input", X: xa},
		{Op: "input", X: xb},
		{Op: "union", XRef: "$0", YRef: "$1", Emit: true},
		{Op: "indices", XRef: "$2", Emit: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	union, indices := resp.Results[0].Y, resp.Results[1].Y
	wantInd := []spmspv.Index{1, 3, 5, 7}
	if union.NNZ() != len(wantInd) {
		t.Fatalf("union nnz = %d, want %d", union.NNZ(), len(wantInd))
	}
	for k, i := range wantInd {
		if union.Ind[k] != i {
			t.Errorf("union.Ind[%d] = %d, want %d", k, union.Ind[k], i)
		}
		if indices.Ind[k] != i || indices.Val[k] != float64(i) {
			t.Errorf("indices[%d] = (%d, %g), want (%d, %g)", k, indices.Ind[k], indices.Val[k], i, float64(i))
		}
	}
	// Overlapping entry 3 combined with +: both inputs carry value 1.
	if union.Val[1] != 2 {
		t.Errorf("union value at overlap = %g, want 2", union.Val[1])
	}
}

// TestProgramStopOnEmpty pins early termination: ops after an empty
// mult output do not execute and are absent from the results.
func TestProgramStopOnEmpty(t *testing.T) {
	st, _, _ := storeWithMatrix(t, "g")
	// A 5-vertex square matrix with a single edge 0→1: the second hop
	// from vertex 1 is empty.
	tr := spmspv.NewTriples(5, 5, 1)
	tr.Append(1, 0, 1)
	sq, err := spmspv.NewMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("edge", sq); err != nil {
		t.Fatal(err)
	}

	x := testutil.VectorWithIndices(5, 0)
	resp, err := st.Run(&spmspv.Program{
		Matrix:      "edge",
		StopOnEmpty: true,
		Ops: []spmspv.ProgramOp{
			{Op: "input", X: x},
			{XRef: "$0", Desc: spmspv.Desc{Semiring: "arithmetic"}, Emit: true}, // → {1}
			{XRef: "$1", Desc: spmspv.Desc{Semiring: "arithmetic"}, Emit: true}, // → {} stops
			{XRef: "$2", Desc: spmspv.Desc{Semiring: "arithmetic"}, Emit: true}, // never runs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", resp.Steps)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Y.NNZ() != 1 || resp.Results[1].Y.NNZ() != 0 {
		t.Errorf("hop sizes = %d, %d; want 1, 0", resp.Results[0].Y.NNZ(), resp.Results[1].Y.NNZ())
	}
}

// TestProgramErrors pins execution-time failures: unknown matrices and
// dimension mismatches come back as coded wire errors, not panics.
func TestProgramErrors(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")

	_, err := st.Run(&spmspv.Program{Matrix: "nope", Ops: []spmspv.ProgramOp{
		{X: testutil.RandomVector(rng, a.NumCols, 5, true), Desc: spmspv.Desc{Semiring: "arithmetic"}},
	}})
	if we := spmspv.AsWireError(err); err == nil || we.Code != spmspv.CodeUnknownMatrix {
		t.Errorf("unknown matrix: err %v", err)
	}

	_, err = st.Run(&spmspv.Program{Matrix: "g", Ops: []spmspv.ProgramOp{
		{X: testutil.RandomVector(rng, a.NumCols+7, 5, true), Desc: spmspv.Desc{Semiring: "arithmetic"}},
	}})
	if we := spmspv.AsWireError(err); err == nil || we.Code != spmspv.CodeInvalidRequest {
		t.Errorf("dimension mismatch: err %v", err)
	}

	// Structural failure: reported before anything executes.
	_, err = st.Run(&spmspv.Program{Matrix: "g", Ops: []spmspv.ProgramOp{
		{XRef: "$4", Desc: spmspv.Desc{Semiring: "arithmetic"}},
	}})
	if we := spmspv.AsWireError(err); err == nil || we.Code != spmspv.CodeInvalidRequest {
		t.Errorf("forward ref: err %v", err)
	}
}

// TestProgramBFSInProcess runs the unrolled-BFS program against the
// Store executor on every registered engine and compares with the
// in-process BFS — the transport-agnostic half of the e2e BFS test
// (server_test.go drives the same program through Client/httptest).
func TestProgramBFSInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := testutil.RandomCSC(rng, 150, 150, 3)
	for _, alg := range spmspv.Algorithms() {
		st := spmspv.NewStore(spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2)))
		if err := st.Put("g", a); err != nil {
			t.Fatal(err)
		}
		mu, err := st.Load("g")
		if err != nil {
			t.Fatal(err)
		}
		want := spmspv.BFS(mu, 0)
		got, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		compareBFS(t, alg.String(), got, want)
	}
}

// compareBFS fails the test unless two BFS results are identical.
func compareBFS(t *testing.T, label string, got, want *spmspv.BFSResult) {
	t.Helper()
	if len(got.Levels) != len(want.Levels) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.Levels), len(want.Levels))
	}
	for v := range want.Levels {
		if got.Levels[v] != want.Levels[v] {
			t.Fatalf("%s: level[%d] = %d, want %d", label, v, got.Levels[v], want.Levels[v])
		}
		if got.Parents[v] != want.Parents[v] {
			t.Fatalf("%s: parent[%d] = %d, want %d", label, v, got.Parents[v], want.Parents[v])
		}
	}
	if len(got.FrontierSizes) != len(want.FrontierSizes) {
		t.Fatalf("%s: frontier sizes %v, want %v", label, got.FrontierSizes, want.FrontierSizes)
	}
	for k := range want.FrontierSizes {
		if got.FrontierSizes[k] != want.FrontierSizes[k] {
			t.Fatalf("%s: frontier sizes %v, want %v", label, got.FrontierSizes, want.FrontierSizes)
		}
	}
}
