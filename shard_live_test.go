// TestLiveShardedServe drives a REAL sharded deployment — one
// spmspv-serve coordinator scattered over spmspv-serve shard workers on
// separate TCP listeners — through the Client: upload (the coordinator
// row-slices across the workers), BFS-as-one-program, per-shard
// counters on GET /v1/shards, delete (propagated to every worker). It
// is skipped unless SPMSPV_COORD_URL points at a coordinator; CI boots
// two workers plus a coordinator and runs exactly this test, covering
// the -shards/-shard-of flag plumbing and the remote scatter path that
// in-process tests cannot see.
//
//	spmspv-serve -addr 127.0.0.1:18091 &
//	spmspv-serve -addr 127.0.0.1:18092 &
//	spmspv-serve -addr 127.0.0.1:18090 -shards http://127.0.0.1:18091,http://127.0.0.1:18092 &
//	SPMSPV_COORD_URL=http://127.0.0.1:18090 go test -run TestLiveShardedServe .
package spmspv_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"

	spmspv "spmspv"
)

func TestLiveShardedServe(t *testing.T) {
	url := os.Getenv("SPMSPV_COORD_URL")
	if url == "" {
		t.Skip("SPMSPV_COORD_URL not set; run against a live sharded coordinator to enable")
	}
	const name = "live-sharded-grid"
	c := spmspv.NewClient(url)

	a := spmspv.Grid2D(24, 24)
	if _, err := c.PutMatrix(name, a); err != nil {
		t.Fatalf("uploading to %s: %v", url, err)
	}
	defer func() {
		if err := c.DeleteMatrix(name); err != nil {
			t.Errorf("cleanup delete: %v", err)
		}
	}()

	stat, err := c.Matrix(name)
	if err != nil {
		t.Fatal(err)
	}
	if stat.NNZ != a.NNZ() {
		t.Errorf("uploaded nnz %d, want %d", stat.NNZ, a.NNZ())
	}

	// Whole multi-level BFS in one program round trip, versus the
	// in-process result on the identical matrix. The coordinator fans
	// every level out across the workers; the parents must still be
	// identical to the single-box search.
	mu, err := spmspv.NewMultiplier(a)
	if err != nil {
		t.Fatal(err)
	}
	want := spmspv.BFS(mu, 0)
	got, err := c.BFS(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareBFS(t, "live-sharded", got, want)
	if len(want.FrontierSizes) < 10 {
		t.Fatalf("grid BFS only had %d levels; test graph too easy", len(want.FrontierSizes))
	}

	// Every worker saw scatter traffic: the per-shard counters on the
	// coordinator must account for at least one request per BFS level
	// on each nonempty shard.
	resp, err := http.Get(url + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/shards: HTTP %d", resp.StatusCode)
	}
	var shards []spmspv.ShardStat
	if err := json.NewDecoder(resp.Body).Decode(&shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) < 2 {
		t.Fatalf("coordinator reports %d shards, want >= 2", len(shards))
	}
	levels := int64(len(want.FrontierSizes))
	for _, sh := range shards {
		if sh.Serve.Requests < levels {
			t.Errorf("shard %d (%s): %d requests < %d BFS levels",
				sh.Shard, sh.Addr, sh.Serve.Requests, levels)
		}
	}

	// The matrix-level counters aggregate the same traffic.
	stat, err = c.Matrix(name)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Serve.Requests < levels {
		t.Errorf("served requests %d < BFS levels %d", stat.Serve.Requests, levels)
	}

	// Stored procedures on the coordinator: register the loop BFS once,
	// then invoke it by name over TCP in BOTH wire forms — only the
	// seed rides per call, the loop runs coordinator-side with every
	// body op scattered across the workers.
	progStat, err := c.PutProgram("live-bfs", spmspv.BFSProgram(name, int(a.NumCols), nil))
	if err != nil {
		t.Fatalf("registering program: %v", err)
	}
	if progStat.Name != "live-bfs" {
		t.Fatalf("put program stat = %+v", progStat)
	}
	defer func() {
		if err := c.DeleteProgram("live-bfs"); err != nil {
			t.Errorf("cleanup program delete: %v", err)
		}
	}()
	seed := spmspv.NewVector(a.NumCols, 1)
	seed.Append(0, 0)
	for _, wire := range []string{spmspv.ContentTypeBinary, spmspv.ContentTypeJSON} {
		cw := spmspv.NewClient(url, spmspv.WithWire(wire))
		resp, err := cw.Invoke("live-bfs", &spmspv.InvokeRequest{
			Args: map[string]*spmspv.Vector{"seed": seed},
		})
		if err != nil {
			t.Fatalf("invoke (%s): %v", wire, err)
		}
		inv, err := spmspv.DecodeBFSProgramResponse(resp, a.NumCols, 0, int(a.NumCols))
		if err != nil {
			t.Fatalf("decoding invoke response (%s): %v", wire, err)
		}
		compareBFS(t, "live-invoke/"+wire, inv, want)
	}
	progs, err := c.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].Serve.Requests < 2 {
		t.Errorf("program list = %+v, want one entry with >= 2 invokes", progs)
	}
	fmt.Println("live sharded serve: OK,", len(shards), "shards,", stat.Serve.Requests, "requests,",
		progs[0].Serve.Requests, "invokes")
}
