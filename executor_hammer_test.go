// TestSharedExecutorHammer is the -race contract of the persistent
// work-stealing executor: many Multipliers (bucket and hybrid, all on
// the stealing schedule) share the process-wide worker pool from
// separate goroutines while a coalescing server pushes batched
// multiplies through the same pool — the worst-case mix of nested
// fork-joins, concurrent Run barriers and slot-pinned workspace
// churn. Every result is checked against the sequential reference, so
// a lost task, double-executed chunk or cross-job stat write shows up
// as a wrong answer even when the race detector is off.
package spmspv_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/testutil"
)

func TestSharedExecutorHammer(t *testing.T) {
	const (
		n          = 500
		engines    = 3
		goroutines = 4
		iters      = 25
	)
	rng := rand.New(rand.NewSource(123))
	a := testutil.RandomCSC(rng, n, n, 6)

	opt := engineOptions(4)
	opt.MergeSched = spmspv.SchedStealing

	type testCase struct {
		x    *spmspv.Vector
		want *spmspv.Vector
	}
	cases := make([]testCase, 6)
	for i := range cases {
		x := testutil.RandomVector(rng, n, 15+i*60, true)
		cases[i] = testCase{x: x, want: baselines.Reference(a, x, spmspv.Arithmetic)}
	}

	// The server side: a coalescing batcher over the same matrix, whose
	// batched multiplies run on the same shared executor.
	st := spmspv.NewStore(spmspv.WithEngineOptions(opt))
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	srv := spmspv.NewServer(st,
		spmspv.WithBatchSize(4),
		spmspv.WithBatchWindow(100*time.Microsecond),
	)
	bodies := make([][]byte, len(cases))
	for i, tc := range cases {
		data, err := json.Marshal(&spmspv.Request{
			Matrix: "g",
			X:      tc.x,
			Desc:   spmspv.Desc{Semiring: "arithmetic"},
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}

	var wg sync.WaitGroup
	errs := make(chan string, engines*goroutines+goroutines)

	// Direct engine callers: `engines` independent Multipliers, each
	// hammered by `goroutines` goroutines, all sharing the default pool.
	for e := 0; e < engines; e++ {
		alg := spmspv.Bucket
		if e%2 == 1 {
			alg = spmspv.Hybrid
		}
		mu := spmspv.NewWithAlgorithm(a, alg, opt)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				y := spmspv.NewVector(0, 0)
				for it := 0; it < iters; it++ {
					tc := &cases[(seed+it)%len(cases)]
					mu.MultiplyInto(tc.x, y, spmspv.Arithmetic)
					if !y.EqualValues(tc.want, 1e-9) {
						errs <- "direct multiply diverged from reference under shared executor"
						return
					}
				}
			}(e*goroutines + g)
		}
	}

	// Server callers: concurrent requests that the batcher coalesces
	// into MultBatch calls on the same executor.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (seed + it) % len(cases)
				r := httptest.NewRequest(http.MethodPost, "/v1/mult", bytes.NewReader(bodies[i]))
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					errs <- "server multiply failed under shared executor: " + w.Body.String()
					return
				}
				var resp spmspv.Response
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- "bad server response: " + err.Error()
					return
				}
				if !resp.Y.EqualValues(cases[i].want, 1e-9) {
					errs <- "coalesced server multiply diverged from reference"
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
