// BenchmarkServeWire isolates the two serving-path levers this repo's
// binary wire work added, as INDEPENDENT dimensions: the wire format
// (JSON vs the SPVB-section binary envelope) and the pooled/streaming
// encode buffers (sync.Pool'd bufio writers + header scratch vs fresh
// allocations per message). Each request runs the direct, uncoalesced
// handler path so the numbers attribute to encode/decode, not
// batching; allocs/op is reported so the pooling lever is visible even
// where ns/op is noise-bound. EXPERIMENTS.md records the grid; CI
// uploads BENCH_wire.json and cmd/benchcmp gates regressions.
package spmspv_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

func BenchmarkServeWire(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := spmspv.ErdosRenyi(1<<14, 8, 99)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(4)))
	if err := st.Put("g", a); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Load("g"); err != nil {
		b.Fatal(err)
	}
	// Window 0 disables coalescing: every request takes the direct
	// path, so ns/op and allocs/op attribute to the wire codecs.
	srv := spmspv.NewServer(st, spmspv.WithBatchWindow(0))

	const nBodies = 64
	jsonBodies := make([][]byte, nBodies)
	binBodies := make([][]byte, nBodies)
	for i := range jsonBodies {
		req := &spmspv.Request{
			Matrix: "g",
			X:      testutil.RandomVector(rng, a.NumCols, 16, true),
			Desc:   spmspv.Desc{Semiring: "arithmetic"},
		}
		data, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		jsonBodies[i] = data
		var buf bytes.Buffer
		if err := spmspv.EncodeRequestBinary(&buf, req); err != nil {
			b.Fatal(err)
		}
		binBodies[i] = buf.Bytes()
	}

	for _, wire := range []struct {
		name   string
		bodies [][]byte
		accept string
	}{
		{"json", jsonBodies, spmspv.ContentTypeJSON},
		{"binary", binBodies, spmspv.ContentTypeBinary},
	} {
		for _, pooled := range []bool{false, true} {
			b.Run(fmt.Sprintf("wire=%s/pool=%v", wire.name, pooled), func(b *testing.B) {
				spmspv.SetWireBufferPooling(pooled)
				defer spmspv.SetWireBufferPooling(true)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := httptest.NewRequest(http.MethodPost, "/v1/mult",
						bytes.NewReader(wire.bodies[i%nBodies]))
					r.Header.Set("Accept", wire.accept)
					w := httptest.NewRecorder()
					srv.ServeHTTP(w, r)
					if w.Code != http.StatusOK {
						b.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
					}
				}
			})
		}
	}
}

// BenchmarkVectorWireEncode pins the codec-only cost of one response
// vector in each wire form — the per-section price everything above is
// built from. ~128-nnz outputs match the serving benchmarks' regime.
func BenchmarkVectorWireEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	y := testutil.RandomVector(rng, 1<<14, 128, true)
	var buf bytes.Buffer
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := json.NewEncoder(&buf).Encode(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := spmspv.EncodeVectorBinary(&buf, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
