// Tests for the HTTP serving surface: the end-to-end BFS through
// Client against an httptest server on every registered engine, the
// request-coalescing batcher's correctness and counters, matrix
// upload/management round trips, and the wire error paths.
package spmspv_test

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/testutil"
)

// serveClient boots an httptest server over a fresh store and returns
// a Client pointed at it plus the server's base URL.
func serveClient(t *testing.T, st *spmspv.Store, opts ...spmspv.ServerOption) (*spmspv.Client, string) {
	t.Helper()
	ts := httptest.NewServer(spmspv.NewServer(st, opts...))
	t.Cleanup(ts.Close)
	return spmspv.NewClient(ts.URL, spmspv.WithHTTPClient(ts.Client())), ts.URL
}

// TestServeBFSEndToEnd uploads a matrix through the Client, runs a
// whole multi-level BFS as ONE program round trip, and compares with
// the in-process BFS — on every registered engine.
func TestServeBFSEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := testutil.RandomCSC(rng, 200, 200, 3)
	for _, alg := range spmspv.Algorithms() {
		st := spmspv.NewStore(spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2)))
		c, _ := serveClient(t, st)

		stat, err := c.PutMatrix("g", a)
		if err != nil {
			t.Fatalf("%v: PutMatrix: %v", alg, err)
		}
		if stat.Rows != a.NumRows || stat.NNZ != a.NNZ() {
			t.Fatalf("%v: uploaded stat %+v", alg, stat)
		}

		mu, err := st.Load("g")
		if err != nil {
			t.Fatal(err)
		}
		want := spmspv.BFS(mu, 5)
		got, err := c.BFS("g", 5)
		if err != nil {
			t.Fatalf("%v: client BFS: %v", alg, err)
		}
		compareBFS(t, alg.String(), got, want)
	}
}

// TestServeMatrixManagement covers upload, list, get, delete and their
// error envelopes over HTTP.
func TestServeMatrixManagement(t *testing.T) {
	st, a, _ := storeWithMatrix(t, "seed")
	c, _ := serveClient(t, st)

	if _, err := c.PutMatrix("extra", a); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[0].Name != "extra" || stats[1].Name != "seed" {
		t.Fatalf("Matrices = %+v", stats)
	}
	if _, err := c.Matrix("seed"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteMatrix("extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteMatrix("extra"); err == nil {
		t.Error("second delete succeeded")
	} else if we := spmspv.AsWireError(err); we.Code != spmspv.CodeUnknownMatrix {
		t.Errorf("second delete: code %q", we.Code)
	}
	if _, err := c.Matrix("gone"); err == nil {
		t.Error("Matrix on unknown name succeeded")
	}
}

// TestServeMultAndErrors covers the single-multiply endpoint: results
// match the in-process Do, and each failure class carries its wire
// code end to end.
func TestServeMultAndErrors(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	c, baseURL := serveClient(t, st)
	x := testutil.RandomVector(rng, a.NumCols, 30, true)

	req := &spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}
	got, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	want := baselines.Reference(a, x, spmspv.Arithmetic)
	if !got.Y.EqualValues(want, 1e-9) {
		t.Error("served multiply differs from reference")
	}
	if got.OutputRep != "list" {
		t.Errorf("OutputRep = %q, want list", got.OutputRep)
	}

	cases := map[string]struct {
		req  *spmspv.Request
		code string
	}{
		"unknownMatrix": {&spmspv.Request{Matrix: "nope", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}, spmspv.CodeUnknownMatrix},
		"noMatrix":      {&spmspv.Request{X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}, spmspv.CodeInvalidRequest},
		"badDims":       {&spmspv.Request{Matrix: "g", X: testutil.RandomVector(rng, a.NumCols+3, 5, true), Desc: spmspv.Desc{Semiring: "arithmetic"}}, spmspv.CodeInvalidRequest},
		"noSemiring":    {&spmspv.Request{Matrix: "g", X: x}, spmspv.CodeInvalidRequest},
	}
	for name, tc := range cases {
		_, err := c.Do(tc.req)
		if err == nil {
			t.Errorf("%s: succeeded", name)
			continue
		}
		if we := spmspv.AsWireError(err); we.Code != tc.code {
			t.Errorf("%s: code %q, want %q", name, we.Code, tc.code)
		}
	}

	// Malformed JSON comes back as bad_request, not a hung connection
	// or an HTML error page.
	resp, err := http.Post(baseURL+"/v1/mult", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d", resp.StatusCode)
	}
}

// TestServeCoalescing fires concurrent single-vector requests at a
// server with a large batching window and checks that (a) every
// response equals the sequential reference for its own input — slots
// are not mixed up — and (b) the batcher actually coalesced.
func TestServeCoalescing(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	srv := spmspv.NewServer(st,
		spmspv.WithBatchWindow(5e6), // 5ms: plenty for all goroutines to gather
		spmspv.WithBatchSize(4),
	)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := spmspv.NewClient(ts.URL, spmspv.WithHTTPClient(ts.Client()))
	if _, err := st.Load("g"); err != nil {
		t.Fatal(err)
	}

	const requests = 16
	xs := make([]*spmspv.Vector, requests)
	masks := make([]*spmspv.BitVector, requests)
	for i := range xs {
		xs[i] = testutil.RandomVector(rng, a.NumCols, 20, true)
		if i%3 == 0 {
			masks[i] = randomMask(rng, a.NumRows, 0.4)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, requests)
	got := make([]*spmspv.Response, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Do(&spmspv.Request{
				Matrix: "g",
				X:      xs[i],
				Desc:   spmspv.Desc{Semiring: "arithmetic", Mask: masks[i]},
			})
		}(i)
	}
	wg.Wait()

	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want := baselines.Reference(a, xs[i], spmspv.Arithmetic)
		if masks[i] != nil {
			want = maskedOracle(a, xs[i], spmspv.Arithmetic, masks[i], false)
		}
		if !got[i].Y.EqualValues(want, 1e-9) {
			t.Errorf("request %d: coalesced result differs from its own reference", i)
		}
	}

	coalesced, batches := srv.BatcherStats()
	if coalesced == 0 || batches == 0 {
		t.Errorf("no coalescing happened across %d concurrent requests (coalesced=%d batches=%d)",
			requests, coalesced, batches)
	}
	t.Logf("coalesced %d of %d requests into %d batches", coalesced, requests, batches)
}

// TestServeCoalescingBypass pins that non-coalescable requests (batch,
// accumulate, bitmap output) still execute correctly through the
// direct path on a coalescing server.
func TestServeCoalescingBypass(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	c, _ := serveClient(t, st, spmspv.WithBatchWindow(5e6), spmspv.WithBatchSize(4))

	x := testutil.RandomVector(rng, a.NumCols, 20, true)
	want := baselines.Reference(a, x, spmspv.Arithmetic)

	// Batch request.
	resp, err := c.Do(&spmspv.Request{
		Matrix: "g",
		Xs:     []*spmspv.Vector{x, x},
		Desc:   spmspv.Desc{Semiring: "arithmetic"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Ys) != 2 || !resp.Ys[0].EqualValues(want, 1e-9) || !resp.Ys[1].EqualValues(want, 1e-9) {
		t.Error("batch request through coalescing server wrong")
	}

	// Bitmap-output request.
	resp, err = c.Do(&spmspv.Request{
		Matrix: "g",
		X:      x,
		Desc:   spmspv.Desc{Semiring: "arithmetic", Output: spmspv.OutputBitmap},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OutputRep != "bitmap" || resp.YBits == nil {
		t.Fatalf("bitmap request: rep %q, bits %v", resp.OutputRep, resp.YBits != nil)
	}
	if resp.YBits.Count() != want.NNZ() {
		t.Errorf("bitmap support %d, want %d", resp.YBits.Count(), want.NNZ())
	}
}

// TestServeProgramHTTP runs a program through the HTTP endpoint and
// checks Store/Client symmetry: the same program against the same
// store gives byte-identical results either way.
func TestServeProgramHTTP(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sq := testutil.RandomCSC(rng, 90, 90, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put("sq", sq); err != nil {
		t.Fatal(err)
	}
	c, _ := serveClient(t, st)

	prog := &spmspv.Program{
		Matrix: "sq",
		Ops: []spmspv.ProgramOp{
			{Op: "input", X: testutil.RandomVector(rng, sq.NumCols, 12, true)},
			{XRef: "$0", Desc: spmspv.Desc{Semiring: "minplus"}, Emit: true},
			{Op: "indices", XRef: "$1"},
			{XRef: "$2", MaskRef: "$1", Desc: spmspv.Desc{Complement: true, Semiring: "minplus"}, Emit: true},
		},
	}
	local, err := st.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if local.Steps != remote.Steps || len(local.Results) != len(remote.Results) {
		t.Fatalf("local %d/%d vs remote %d/%d", local.Steps, len(local.Results), remote.Steps, len(remote.Results))
	}
	for k := range local.Results {
		if !local.Results[k].Y.EqualValues(remote.Results[k].Y, 0) {
			t.Errorf("result %d differs between Store.Run and Client.Run", k)
		}
	}
}
