// Connected components by min-label propagation over SpMSpV, one of
// the paper's motivating graph algorithms (§I, ref [5]).
//
//	go run ./examples/components
package main

import (
	"fmt"

	spmspv "spmspv"
)

func main() {
	// Build a graph with a known component structure: three disjoint
	// communities — a mesh, a ring, and a star — plus isolated
	// vertices.
	const n = 2400
	t := spmspv.NewTriples(n, n, 4*n)

	// Community 1: 0..799, a 20×40 grid (as explicit edges).
	rows, cols := 20, 40
	id := func(r, c int) spmspv.Index { return spmspv.Index(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.AppendSymmetric(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				t.AppendSymmetric(id(r, c), id(r+1, c), 1)
			}
		}
	}
	// Community 2: 800..1599, a ring.
	for i := spmspv.Index(800); i < 1599; i++ {
		t.AppendSymmetric(i, i+1, 1)
	}
	t.AppendSymmetric(1599, 800, 1)
	// Community 3: 1600..2399 minus the last 100, a star around 1600.
	for i := spmspv.Index(1601); i < 2300; i++ {
		t.AppendSymmetric(1600, i, 1)
	}
	// 2300..2399 isolated.

	a, err := spmspv.NewMatrix(t)
	if err != nil {
		panic(err)
	}

	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	labels := spmspv.ConnectedComponents(mu)

	sizes := map[spmspv.Index]int{}
	for _, l := range labels {
		sizes[l]++
	}
	fmt.Printf("graph: %v\n", a)
	fmt.Printf("components found: %d (expect 3 communities + 100 isolated = 103)\n\n", len(sizes))
	fmt.Println("non-trivial components (root: size):")
	for root, size := range sizes {
		if size > 1 {
			fmt.Printf("  %6d: %d vertices\n", root, size)
		}
	}
}
