// Local clustering: Andersen–Chung–Lang personalized-PageRank push with
// a sweep cut, one SpMSpV per push round (paper §I, ref [9]).
//
//	go run ./examples/localcluster
package main

import (
	"fmt"

	spmspv "spmspv"
)

func main() {
	// A planted-community graph: four 200-vertex blobs, densely
	// connected inside, sparsely connected across.
	const blocks, per = 4, 200
	n := spmspv.Index(blocks * per)
	cfg := spmspv.DefaultRMAT(0)
	_ = cfg
	t := spmspv.NewTriples(n, n, 12*int(n))
	seedRNG := func(a, b, k int) (spmspv.Index, spmspv.Index) {
		// Deterministic pseudo-random pair inside/between blocks.
		h := uint32(a*2654435761) ^ uint32(b*40503) ^ uint32(k*97)
		u := spmspv.Index(a*per + int(h%per))
		h = h*1664525 + 1013904223
		v := spmspv.Index(b*per + int(h%per))
		return u, v
	}
	for blk := 0; blk < blocks; blk++ {
		for k := 0; k < 6*per; k++ { // dense inside
			u, v := seedRNG(blk, blk, k)
			if u != v {
				t.AppendSymmetric(u, v, 1)
			}
		}
	}
	for blk := 0; blk+1 < blocks; blk++ { // sparse bridges
		for k := 0; k < 4; k++ {
			u, v := seedRNG(blk, blk+1, k)
			t.AppendSymmetric(u, v, 1)
		}
	}
	t.SumDuplicates(func(a, b float64) float64 { return 1 })
	a, err := spmspv.NewMatrix(t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %v (4 planted communities of %d)\n\n", a, per)

	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	seed := spmspv.Index(per + 7) // inside community 1
	res := spmspv.LocalCluster(mu, seed, spmspv.ACLOptions{Alpha: 0.15, Epsilon: 1e-7})

	fmt.Printf("seed vertex %d (community 1)\n", seed)
	fmt.Printf("push rounds: %d, actives per round: %v\n", res.Rounds, res.ActiveCounts)
	fmt.Printf("cluster size: %d, conductance: %.4f\n", len(res.Cluster), res.Conductance)

	perBlock := map[int]int{}
	for _, v := range res.Cluster {
		perBlock[int(v)/per]++
	}
	fmt.Println("cluster membership by community:")
	for blk := 0; blk < blocks; blk++ {
		fmt.Printf("  community %d: %d vertices\n", blk, perBlock[blk])
	}
}
