// Quickstart: build a small sparse matrix, multiply it by a sparse
// vector over two semirings, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	spmspv "spmspv"
)

func main() {
	// The 8×8 worked example from Fig. 1 of the paper, with letters
	// a..t replaced by 1..20.
	t := spmspv.NewTriples(8, 8, 20)
	type e struct {
		row, col spmspv.Index
		val      float64
	}
	for _, en := range []e{
		{1, 0, 1}, {3, 0, 2}, {7, 0, 3},
		{0, 1, 4},
		{0, 2, 5}, {3, 2, 6}, {5, 2, 7}, {6, 2, 8},
		{0, 3, 9}, {6, 3, 10}, {7, 3, 11},
		{1, 4, 12}, {3, 4, 13}, {6, 4, 14}, {7, 4, 15},
		{2, 5, 16}, {4, 5, 17},
		{1, 6, 18},
		{0, 7, 19}, {4, 7, 20},
	} {
		t.Append(en.row, en.col, en.val)
	}
	a, err := spmspv.NewMatrix(t)
	if err != nil {
		panic(err)
	}
	fmt.Println("matrix:", a)

	// x has nonzeros at indices 2, 5, 7 — exactly the paper's example.
	x := spmspv.NewVector(8, 3)
	x.Append(2, 2)
	x.Append(5, 3)
	x.Append(7, 5)

	// The default engine is the paper's SpMSpV-bucket algorithm.
	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}

	// Mult is the one descriptor-driven multiply: the input rides in a
	// Frontier, the result lands in an output Frontier, and every
	// capability (mask, accumulate, transpose, output representation)
	// is a Desc field. The zero Desc is a plain multiply.
	xf := spmspv.NewFrontier(x)
	yf := mu.NewOutputFrontier()
	mu.Mult(xf, yf, spmspv.Arithmetic, spmspv.Desc{})
	y := yf.List()
	fmt.Println("\ny = A·x over (+, ×):")
	for k, i := range y.Ind {
		fmt.Printf("  y[%d] = %g\n", i, y.Val[k])
	}

	// The same multiplication over the tropical semiring computes
	// single-step shortest-path relaxations instead — and a semiring
	// can be named through the descriptor, exactly as a network request
	// would carry it.
	mu.Mult(xf, yf, spmspv.Semiring{}, spmspv.Desc{Semiring: "minplus"})
	y = yf.List()
	fmt.Println("\ny = A·x over (min, +):")
	for k, i := range y.Ind {
		fmt.Printf("  y[%d] = %g\n", i, y.Val[k])
	}

	// Work counters show the multiplication did work proportional to
	// the touched matrix entries — the paper's work-efficiency claim.
	c := mu.Counters()
	fmt.Printf("\nwork counters: %v\n", c.String())
}
