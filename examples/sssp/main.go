// Single-source shortest paths over the tropical (min, +) semiring:
// data-driven label correction where each round is one SpMSpV — the
// same frontier-shrinking pattern as the paper's other applications.
//
//	go run ./examples/sssp [-n 5000]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"

	spmspv "spmspv"
)

func main() {
	n := flag.Int("n", 5000, "vertex count")
	flag.Parse()

	// Weighted random digraph with a planted path so some long
	// distances exist.
	rng := rand.New(rand.NewSource(3))
	t := spmspv.NewTriples(spmspv.Index(*n), spmspv.Index(*n), 6**n)
	for k := 0; k < 5**n; k++ {
		u := spmspv.Index(rng.Intn(*n))
		v := spmspv.Index(rng.Intn(*n))
		if u != v {
			// A(v, u) = weight of edge u→v.
			t.Append(v, u, 0.1+rng.Float64())
		}
	}
	for i := 0; i+1 < *n; i += 1000 {
		t.Append(spmspv.Index(i+1000-1), spmspv.Index(i), 0.01)
	}
	a, err := spmspv.NewMatrix(t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %v\n", a)

	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	dist := spmspv.SSSP(mu, 0)

	reached, maxDist, sum := 0, 0.0, 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			sum += d
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("reached %d/%d vertices\n", reached, *n)
	fmt.Printf("max distance %.3f, mean distance %.3f\n", maxDist, sum/float64(reached))
	fmt.Println("\nsample distances:")
	for _, v := range []int{1, 100, 999, *n / 2, *n - 1} {
		if v < *n {
			fmt.Printf("  dist[%5d] = %.4f\n", v, dist[v])
		}
	}
}
