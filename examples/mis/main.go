// Maximal independent set via Luby's algorithm in SpMSpV rounds, one
// of the paper's motivating applications (§I, ref [4]).
//
//	go run ./examples/mis [-rows 60] [-cols 60]
package main

import (
	"flag"
	"fmt"

	spmspv "spmspv"
)

func main() {
	rows := flag.Int("rows", 60, "mesh rows")
	cols := flag.Int("cols", 60, "mesh cols")
	flag.Parse()

	a := spmspv.TriangularMesh(*rows, *cols, 7)
	fmt.Printf("graph: %v\n", a)

	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	inSet := spmspv.MaximalIndependentSet(mu, 42)

	count := 0
	for _, in := range inSet {
		if in {
			count++
		}
	}
	n := *rows * *cols
	fmt.Printf("MIS size: %d of %d vertices (%.1f%%)\n", count, n, 100*float64(count)/float64(n))

	// Independence check, inline: no edge may connect two set members.
	violations := 0
	for j := spmspv.Index(0); j < a.NumCols; j++ {
		if !inSet[j] {
			continue
		}
		rows, _ := a.Col(j)
		for _, i := range rows {
			if i != j && inSet[i] {
				violations++
			}
		}
	}
	fmt.Printf("independence violations: %d\n", violations)

	// Render a corner of the mesh: '#' = in set.
	fmt.Println("\ntop-left 20×40 corner of the mesh ('#' in set):")
	for r := 0; r < 20 && r < *rows; r++ {
		line := make([]byte, 0, 40)
		for c := 0; c < 40 && c < *cols; c++ {
			if inSet[r**cols+c] {
				line = append(line, '#')
			} else {
				line = append(line, '.')
			}
		}
		fmt.Printf("  %s\n", line)
	}
}
