// BFS: run breadth-first search on a scale-free graph with every
// SpMSpV engine and compare their per-call work — the experiment behind
// Figs. 4 and 5 of the paper, at example scale.
//
//	go run ./examples/bfs [-scale 14] [-threads 4]
package main

import (
	"flag"
	"fmt"
	"time"

	spmspv "spmspv"
)

func main() {
	scale := flag.Int("scale", 14, "log2 of vertex count")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	flag.Parse()

	// An R-MAT graph comparable to the paper's ljournal-2008 (social
	// network, low diameter, power-law degrees).
	cfg := spmspv.DefaultRMAT(*scale)
	cfg.EdgeFactor = 15
	a := spmspv.RMAT(cfg, 104)
	stats := spmspv.ComputeStats("rmat", a, 0)
	fmt.Printf("graph: n=%d nnz=%d avg-degree=%.1f pseudo-diameter=%d\n\n",
		stats.Vertices, stats.Edges, stats.AvgDegree, stats.PseudoDiameter)

	algos := []spmspv.Algorithm{
		spmspv.Bucket, spmspv.CombBLASSPA, spmspv.CombBLASHeap, spmspv.GraphMat,
	}
	fmt.Printf("%-15s %12s %12s %14s %12s\n", "algorithm", "time", "reached", "frontier-max", "total-work")
	for _, alg := range algos {
		mu, err := spmspv.NewMultiplier(a, spmspv.WithAlgorithm(alg),
			spmspv.WithThreads(*threads), spmspv.WithSortOutput(true))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res := spmspv.BFS(mu, 0)
		elapsed := time.Since(start)

		reached, maxFrontier := 0, 0
		for _, l := range res.Levels {
			if l >= 0 {
				reached++
			}
		}
		for _, f := range res.FrontierSizes {
			if f > maxFrontier {
				maxFrontier = f
			}
		}
		fmt.Printf("%-15s %12v %12d %14d %12d\n",
			alg, elapsed.Round(time.Microsecond), reached, maxFrontier, mu.Counters().Work())
	}

	// Show the frontier evolution — the sparse-to-dense-to-sparse wave
	// that makes SpMSpV (not SpMV) the right primitive.
	mu, err := spmspv.NewMultiplier(a, spmspv.WithThreads(*threads), spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	res := spmspv.BFS(mu, 0)
	fmt.Println("\nBFS frontier sizes by level:")
	for lvl, f := range res.FrontierSizes {
		fmt.Printf("  level %2d: nnz(x) = %d\n", lvl, f)
	}
}
