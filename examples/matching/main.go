// Bipartite maximal matching via SpMSpV propose/accept rounds, the
// matching application the paper cites in §I (ref [6]).
//
//	go run ./examples/matching [-rows 3000] [-cols 3000] [-edges 12000]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	spmspv "spmspv"
)

func main() {
	nr := flag.Int("rows", 3000, "row-side vertices")
	nc := flag.Int("cols", 3000, "column-side vertices")
	edges := flag.Int("edges", 12000, "edges (before dedup)")
	flag.Parse()

	rng := rand.New(rand.NewSource(11))
	t := spmspv.NewTriples(spmspv.Index(*nr), spmspv.Index(*nc), *edges)
	for e := 0; e < *edges; e++ {
		t.Append(spmspv.Index(rng.Intn(*nr)), spmspv.Index(rng.Intn(*nc)), 1)
	}
	t.SumDuplicates(func(a, b float64) float64 { return 1 })
	a, err := spmspv.NewMatrix(t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bipartite graph: %d rows, %d cols, %d edges\n", *nr, *nc, a.NNZ())

	mu, err := spmspv.NewMultiplier(a, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	rowMate, colMate := spmspv.MaximalMatching(mu)

	size := 0
	for _, j := range rowMate {
		if j >= 0 {
			size++
		}
	}
	fmt.Printf("maximal matching size: %d\n", size)

	// Verify maximality: no edge joins two unmatched endpoints.
	violations := 0
	for j := spmspv.Index(0); j < a.NumCols; j++ {
		if colMate[j] >= 0 {
			continue
		}
		rows, _ := a.Col(j)
		for _, i := range rows {
			if rowMate[i] < 0 {
				violations++
			}
		}
	}
	fmt.Printf("maximality violations: %d\n", violations)

	fmt.Println("\nsample matched pairs (col → row):")
	shown := 0
	for j := spmspv.Index(0); j < a.NumCols && shown < 8; j++ {
		if colMate[j] >= 0 {
			fmt.Printf("  %6d → %6d\n", j, colMate[j])
			shown++
		}
	}
}
