// PageRank: data-driven PageRank on a web-like graph, showing the
// shrinking active set that motivates SpMSpV over SpMV (paper §I:
// "SpMSpV allows marking vertices inactive ... as soon as its value
// converges").
//
//	go run ./examples/pagerank [-scale 13]
package main

import (
	"flag"
	"fmt"
	"sort"

	spmspv "spmspv"
)

func main() {
	scale := flag.Int("scale", 13, "log2 of vertex count")
	flag.Parse()

	// A directed web-like graph (R-MAT without symmetrization).
	cfg := spmspv.DefaultRMAT(*scale)
	cfg.Symmetric = false
	cfg.EdgeFactor = 8
	a := spmspv.RMAT(cfg, 102)
	fmt.Printf("graph: %v\n\n", a)

	norm := spmspv.NormalizeColumns(a)
	mu, err := spmspv.NewMultiplier(norm, spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}
	res := spmspv.PageRank(mu, spmspv.PageRankOptions{Damping: 0.85, Tol: 1e-10})

	fmt.Printf("converged in %d iterations; active set per iteration:\n", res.Iterations)
	for it, n := range res.ActiveCounts {
		bar := n * 50 / res.ActiveCounts[0]
		fmt.Printf("  iter %2d: %7d active %s\n", it, n, bars(bar))
	}

	// Top 10 vertices by rank.
	type vr struct {
		v spmspv.Index
		r float64
	}
	ranked := make([]vr, len(res.Ranks))
	for v, r := range res.Ranks {
		ranked[v] = vr{spmspv.Index(v), r}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
	fmt.Println("\ntop 10 vertices by PageRank:")
	for _, x := range ranked[:10] {
		fmt.Printf("  vertex %6d: %.6f\n", x.v, x.r)
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
