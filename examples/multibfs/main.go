// MultiBFS: run k breadth-first searches through ONE batched SpMSpV
// engine and compare against k sequential single-source runs — the
// batched multi-frontier workload enabled by Multiplier.MultBatch
// (the Estimate pass and engine setup are shared across the k
// frontiers of every level). The masked variant (MultiBFSMasked)
// additionally pushes each search's visited filter into the batch and
// emits every slot's output bitmap natively.
//
//	go run ./examples/multibfs [-scale 14] [-k 8] [-threads 4] [-engine bucket|hybrid]
package main

import (
	"flag"
	"fmt"
	"time"

	spmspv "spmspv"
)

func main() {
	scale := flag.Int("scale", 14, "log2 of vertex count")
	k := flag.Int("k", 8, "number of BFS sources")
	threads := flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	engName := flag.String("engine", "bucket", "engine for the batched run (bucket, hybrid, ...)")
	flag.Parse()

	cfg := spmspv.DefaultRMAT(*scale)
	cfg.EdgeFactor = 15
	a := spmspv.RMAT(cfg, 104)
	fmt.Printf("graph: n=%d nnz=%d\n", a.NumCols, a.NNZ())

	alg, ok := spmspv.ParseAlgorithm(*engName)
	if !ok {
		fmt.Printf("unknown engine %q\n", *engName)
		return
	}
	mu, err := spmspv.NewMultiplier(a, spmspv.WithAlgorithm(alg),
		spmspv.WithThreads(*threads), spmspv.WithSortOutput(true))
	if err != nil {
		panic(err)
	}

	sources := spmspv.SpreadSources(a.NumCols, 0, *k)

	// Batched: all live frontiers of a level go through one
	// MultiplyBatch call.
	start := time.Now()
	res := spmspv.MultiBFS(mu, sources)
	batched := time.Since(start)

	// Masked batched: every search's visited filter pushed into the
	// batched multiply, outputs pipelined with natively emitted bitmaps.
	start = time.Now()
	masked := spmspv.MultiBFSMasked(mu, sources)
	maskedTime := time.Since(start)

	// Sequential baseline: the same searches one by one.
	start = time.Now()
	singles := make([]*spmspv.BFSResult, len(sources))
	for i, src := range sources {
		singles[i] = spmspv.BFS(mu, src)
	}
	sequential := time.Since(start)

	fmt.Printf("\n%-28s %12s\n", "mode", "time")
	fmt.Printf("%-28s %12v\n", fmt.Sprintf("%d sequential BFS runs", *k), sequential)
	fmt.Printf("%-28s %12v  (%.2fx)\n", "batched MultiBFS", batched,
		float64(sequential)/float64(batched))
	fmt.Printf("%-28s %12v  (%.2fx)\n", "batched MultiBFSMasked", maskedTime,
		float64(sequential)/float64(maskedTime))

	fmt.Printf("\n%-10s %10s %8s\n", "source", "reached", "depth")
	for s, src := range sources {
		reached := 0
		depth := int32(0)
		for _, l := range res.Levels[s] {
			if l >= 0 {
				reached++
				if l > depth {
					depth = l
				}
			}
		}
		// Sanity: batched trees (plain and masked) must match the
		// sequential ones.
		for v, l := range singles[s].Levels {
			if res.Levels[s][v] != l || masked.Levels[s][v] != l {
				fmt.Printf("MISMATCH at source %d vertex %d\n", src, v)
				return
			}
		}
		fmt.Printf("%-10d %10d %8d\n", src, reached, depth)
	}
}
