package spmspv_test

import (
	"math/rand"
	"sync"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/engine"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// TestConcurrentMultiplySharedMultiplier hammers ONE shared Multiplier
// from many goroutines — plain, masked and left multiplies interleaved
// — and checks every result against the sequential reference. Run
// under -race this is the concurrency contract of the engine layer:
// per-call workspaces are pooled, counters aggregate race-free, and
// the lazily-built transpose engine is constructed exactly once.
func TestConcurrentMultiplySharedMultiplier(t *testing.T) {
	const (
		n          = 600
		goroutines = 12
		iters      = 30
	)
	rng := rand.New(rand.NewSource(42))
	a := testutil.RandomCSC(rng, n, n, 6)
	at := a.Transpose()

	for _, alg := range spmspv.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			// Parallel subtests must not share the outer rng: give each
			// its own deterministically seeded source.
			rng := rand.New(rand.NewSource(42 + int64(alg)))
			mu := spmspv.NewWithAlgorithm(a, alg, spmspv.Options{Threads: 2, SortOutput: true})

			// Pre-build inputs and expected outputs serially so the
			// parallel phase races only the multiplier.
			type testCase struct {
				x          *spmspv.Vector
				mask       *spmspv.BitVector
				want       *spmspv.Vector // plain product
				wantMasked *spmspv.Vector // mask-filtered product
				wantLeft   *spmspv.Vector // transpose product
			}
			cases := make([]testCase, 8)
			for i := range cases {
				x := testutil.RandomVector(rng, n, 20+i*40, true)
				maskSrc := spmspv.NewVector(n, n/3)
				for v := spmspv.Index(0); v < n; v += 3 {
					maskSrc.Append(v, 1)
				}
				mask := sparse.NewBitVec(n)
				mask.SetFrom(maskSrc)
				want := baselines.Reference(a, x, spmspv.Arithmetic)
				cases[i] = testCase{
					x:          x,
					mask:       mask,
					want:       want,
					wantMasked: sparse.Filter(want, func(j spmspv.Index, _ float64) bool { return mask.Test(j) }),
					wantLeft:   baselines.Reference(at, x, spmspv.Arithmetic),
				}
			}

			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					y := spmspv.NewVector(0, 0)
					for it := 0; it < iters; it++ {
						tc := &cases[(g+it)%len(cases)]
						switch it % 3 {
						case 0:
							mu.MultiplyInto(tc.x, y, spmspv.Arithmetic)
							if !y.EqualValues(tc.want, 1e-9) {
								errs <- "plain multiply diverged from reference under concurrency"
								return
							}
						case 1:
							mu.MultiplyMasked(tc.x, y, spmspv.Arithmetic, tc.mask, false)
							if !y.EqualValues(tc.wantMasked, 1e-9) {
								errs <- "masked multiply diverged from reference under concurrency"
								return
							}
						case 2:
							yl := mu.MultiplyLeft(tc.x, spmspv.Arithmetic)
							if !yl.EqualValues(tc.wantLeft, 1e-9) {
								errs <- "left multiply diverged from reference under concurrency"
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if mu.Counters().Work() == 0 {
				t.Error("no work aggregated across concurrent calls")
			}
		})
	}
}

// TestAllAlgorithmsConstructThroughRegistry checks the acceptance
// criterion of the engine-registry refactor: every Algorithm constant
// is registered with internal/engine and constructs a working engine
// bound to the registered Table I name.
func TestAllAlgorithmsConstructThroughRegistry(t *testing.T) {
	regs := engine.Registered()
	if len(regs) != 6 {
		t.Fatalf("registry holds %d algorithms, want 6", len(regs))
	}
	rng := rand.New(rand.NewSource(7))
	a := testutil.RandomCSC(rng, 200, 200, 4)
	x := testutil.RandomVector(rng, 200, 40, true)
	want := baselines.Reference(a, x, spmspv.Arithmetic)
	names := map[spmspv.Algorithm]string{
		spmspv.Bucket:       "SpMSpV-bucket",
		spmspv.CombBLASSPA:  "CombBLAS-SPA",
		spmspv.CombBLASHeap: "CombBLAS-heap",
		spmspv.GraphMat:     "GraphMat",
		spmspv.SortBased:    "SpMSpV-sort",
		spmspv.Hybrid:       "Hybrid",
	}
	for _, alg := range regs {
		eng, err := engine.New(a, alg, engine.Options{Threads: 2, SortOutput: true})
		if err != nil {
			t.Fatalf("engine.New(%v): %v", alg, err)
		}
		if eng.Name() != names[alg] {
			t.Errorf("registry name for %v = %q, want %q", alg, eng.Name(), names[alg])
		}
		y := spmspv.NewVector(0, 0)
		eng.Multiply(x, y, spmspv.Arithmetic)
		if !y.EqualValues(want, 1e-9) {
			t.Errorf("%v: registry-constructed engine mismatch vs reference", alg)
		}
	}
}

// TestMultiplyAccumInto exercises the allocation-reusing accumulate:
// repeated calls must agree with the allocating MultiplyAccum and reuse
// the caller's output storage once it has grown.
func TestMultiplyAccumInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := testutil.RandomCSC(rng, 300, 300, 5)
	mu := spmspv.New(a, spmspv.Options{Threads: 2, SortOutput: true})

	accum := testutil.RandomVector(rng, 300, 50, true)
	y := spmspv.NewVector(0, 0)
	for trial := 0; trial < 10; trial++ {
		x := testutil.RandomVector(rng, 300, 30+trial*20, true)
		want := mu.MultiplyAccum(x, accum, spmspv.Arithmetic)
		mu.MultiplyAccumInto(x, accum, y, spmspv.Arithmetic)
		if !y.EqualValues(want, 1e-12) {
			t.Fatalf("trial %d: MultiplyAccumInto differs from MultiplyAccum", trial)
		}
		if err := y.Validate(); err != nil {
			t.Fatal(err)
		}
	}

	// Steady state: with capacity established, the into-variant must not
	// replace the caller's slices.
	mu.MultiplyAccumInto(accum, accum, y, spmspv.Arithmetic)
	indBefore := &y.Ind[:1][0]
	mu.MultiplyAccumInto(accum, accum, y, spmspv.Arithmetic)
	if indBefore != &y.Ind[:1][0] {
		t.Error("MultiplyAccumInto reallocated the output despite sufficient capacity")
	}
}
