package spmspv_test

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

// randomIntCSC generates a random m×n matrix with small integer
// values. Integer-valued operands make arithmetic-semiring sums exact
// in float64 regardless of accumulation order, so sharded results can
// be compared bit-for-bit even against engines whose merge order is
// not stable under row renumbering (the heap engine's tie order
// depends on its insertion history).
func randomIntCSC(t *testing.T, rng *rand.Rand, m, n spmspv.Index, avgDeg int) *spmspv.Matrix {
	t.Helper()
	tr := spmspv.NewTriples(m, n, int(n)*avgDeg)
	for j := spmspv.Index(0); j < n; j++ {
		for e := 0; e < avgDeg; e++ {
			tr.Append(spmspv.Index(rng.Intn(int(m))), j, float64(rng.Intn(8)+1))
		}
	}
	a, err := spmspv.NewMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// randomIntVector generates a sorted sparse vector with small integer
// values (see randomIntCSC).
func randomIntVector(rng *rand.Rand, n spmspv.Index, f int) *spmspv.Vector {
	v := testutil.RandomVector(rng, n, f, true)
	for k := range v.Val {
		v.Val[k] = float64(rng.Intn(8) + 1)
	}
	return v
}

// newLocalSharded builds an n-shard in-process coordinator with fast
// test-friendly retry settings.
func newLocalSharded(t *testing.T, n int, opts ...spmspv.Option) *spmspv.ShardedStore {
	t.Helper()
	ss, err := spmspv.NewLocalShardedStore(n, opts,
		spmspv.WithShardBackoff(time.Millisecond),
		spmspv.WithShardTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// sameVector fails unless two list-form vectors are bit-identical:
// dimension, entry order, indices and float values.
func sameVector(t *testing.T, label string, got, want *spmspv.Vector) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil vector (got %v, want %v)", label, got, want)
	}
	if got.N != want.N || got.NNZ() != want.NNZ() {
		t.Fatalf("%s: shape (n=%d,nnz=%d), want (n=%d,nnz=%d)", label, got.N, got.NNZ(), want.N, want.NNZ())
	}
	for k := range want.Ind {
		if got.Ind[k] != want.Ind[k] || got.Val[k] != want.Val[k] {
			t.Fatalf("%s: entry %d = (%d,%g), want (%d,%g)",
				label, k, got.Ind[k], got.Val[k], want.Ind[k], want.Val[k])
		}
	}
}

// TestShardedDoMatchesStore pins the tentpole property: a sharded Do is
// bit-identical to the unsharded Store.Do — across every registered
// engine, shard counts beyond the row count included, for plain,
// masked, complemented, bitmap-output and batched requests.
func TestShardedDoMatchesStore(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomIntCSC(t, rng, 120, 120, 4)
	for _, alg := range spmspv.Algorithms() {
		opts := []spmspv.Option{spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2))}
		st := spmspv.NewStore(opts...)
		if err := st.Put("g", a); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 7, 200} {
			ss := newLocalSharded(t, shards, opts...)
			if err := ss.Put("g", a); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 8; trial++ {
				x := randomIntVector(rng, a.NumCols, 1+rng.Intn(30))
				desc := spmspv.Desc{Semiring: "arithmetic"}
				switch trial % 4 {
				case 1:
					desc.Mask = randomMask(rng, a.NumRows, 0.5)
				case 2:
					desc.Mask = randomMask(rng, a.NumRows, 0.3)
					desc.Complement = true
				case 3:
					desc.Output = spmspv.OutputBitmap
				}
				req := &spmspv.Request{Matrix: "g", X: x, Desc: desc}
				want, err := st.Do(req)
				if err != nil {
					t.Fatalf("%v: store: %v", alg, err)
				}
				got, err := ss.Do(req)
				if err != nil {
					t.Fatalf("%v shards=%d: sharded: %v", alg, shards, err)
				}
				if desc.Output == spmspv.OutputBitmap {
					if got.YBits == nil || want.YBits == nil {
						t.Fatalf("%v shards=%d: missing bitmap payload", alg, shards)
					}
					if got.YBits.N != want.YBits.N || got.YBits.Count() != want.YBits.Count() {
						t.Fatalf("%v shards=%d: bitmap shape differs", alg, shards)
					}
					for i := spmspv.Index(0); i < want.YBits.N; i++ {
						gv, gok := got.YBits.Get(i)
						wv, wok := want.YBits.Get(i)
						if gok != wok || gv != wv {
							t.Fatalf("%v shards=%d: bitmap[%d] = (%g,%v), want (%g,%v)",
								alg, shards, i, gv, gok, wv, wok)
						}
					}
				} else {
					sameVector(t, alg.String(), got.Y, want.Y)
				}
			}
			// Batched request: one Xs scatter, per-slot masks included.
			xs := make([]*spmspv.Vector, 5)
			masks := make([]*spmspv.BitVector, 5)
			for q := range xs {
				xs[q] = randomIntVector(rng, a.NumCols, 1+rng.Intn(20))
				if q%2 == 1 {
					masks[q] = randomMask(rng, a.NumRows, 0.5)
				}
			}
			breq := &spmspv.Request{Matrix: "g", Xs: xs,
				Desc: spmspv.Desc{Semiring: "arithmetic", Masks: masks}}
			want, err := st.Do(breq)
			if err != nil {
				t.Fatalf("%v: store batch: %v", alg, err)
			}
			got, err := ss.Do(breq)
			if err != nil {
				t.Fatalf("%v shards=%d: sharded batch: %v", alg, shards, err)
			}
			for q := range xs {
				sameVector(t, alg.String()+"/batch", got.Ys[q], want.Ys[q])
			}
		}
	}
}

// TestShardedProgramBFS runs whole BFS programs through the
// coordinator on every engine and compares with the unsharded run —
// parents vector and all.
func TestShardedProgramBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := testutil.RandomCSC(rng, 150, 150, 3)
	for _, alg := range spmspv.Algorithms() {
		opts := []spmspv.Option{spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(engineOptions(2))}
		st := spmspv.NewStore(opts...)
		if err := st.Put("g", a); err != nil {
			t.Fatal(err)
		}
		want, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 5} {
			ss := newLocalSharded(t, shards, opts...)
			if err := ss.Put("g", a); err != nil {
				t.Fatal(err)
			}
			got, err := spmspv.ProgramBFS(ss, "g", a.NumCols, 0, 0)
			if err != nil {
				t.Fatalf("%v shards=%d: %v", alg, shards, err)
			}
			compareBFS(t, alg.String(), got, want)
		}
	}
}

// TestShardedTransposeRejected pins the documented limitation: row
// pieces of A are column pieces of Aᵀ, so a transposed multiply cannot
// be gathered by concatenation and must fail loudly, not silently
// wrongly.
func TestShardedTransposeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := testutil.RandomCSC(rng, 40, 30, 3)
	ss := newLocalSharded(t, 2, spmspv.WithEngineOptions(engineOptions(1)))
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}
	x := testutil.RandomVector(rng, a.NumRows, 5, true)
	_, err := ss.Do(&spmspv.Request{Matrix: "g", X: x,
		Desc: spmspv.Desc{Semiring: "arithmetic", Transpose: true}})
	we := spmspv.AsWireError(err)
	if err == nil || we.Code != spmspv.CodeInvalidRequest {
		t.Fatalf("transposed sharded multiply: got %v, want %s", err, spmspv.CodeInvalidRequest)
	}
}

// TestShardedDiscovery covers the -shard-of deployment: workers
// preload their own row slices, the coordinator boots with an empty
// registry and reconstructs the decomposition from the shards' shapes
// on first touch. A shard holding the wrong row count must fail
// discovery rather than serve a garbled gather.
func TestShardedDiscovery(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randomIntCSC(t, rng, 101, 101, 4)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(1))}
	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}

	// Simulate worker preloads: each backend gets its slice directly.
	backends := make([]spmspv.ShardBackend, 3)
	bounds := spmspv.PieceBounds(a.NumRows, 3)
	for w := range backends {
		bs := spmspv.NewStore(opts...)
		if err := bs.Put("g", spmspv.RowSlice(a, bounds[w], bounds[w+1])); err != nil {
			t.Fatal(err)
		}
		backends[w] = bs
	}
	ss, err := spmspv.NewShardedStore(backends)
	if err != nil {
		t.Fatal(err)
	}
	x := randomIntVector(rng, a.NumCols, 12)
	req := &spmspv.Request{Matrix: "g", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}}
	want, err := st.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ss.Do(req)
	if err != nil {
		t.Fatalf("discovered sharded Do: %v", err)
	}
	sameVector(t, "discovered", got.Y, want.Y)
	if stat, err := ss.Stats("g"); err != nil || stat.Rows != a.NumRows || stat.Cols != a.NumCols {
		t.Fatalf("discovered entry: %+v, %v", stat, err)
	}

	// A mis-sliced worker (wrong row count for its position) must fail.
	bad := spmspv.NewStore(opts...)
	if err := bad.Put("h", spmspv.RowSlice(a, 0, 10)); err != nil {
		t.Fatal(err)
	}
	other := spmspv.NewStore(opts...)
	if err := other.Put("h", spmspv.RowSlice(a, 10, 30)); err != nil {
		t.Fatal(err)
	}
	ss2, err := spmspv.NewShardedStore([]spmspv.ShardBackend{bad, other})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ss2.Do(&spmspv.Request{Matrix: "h", X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if we := spmspv.AsWireError(err); err == nil || we.Code != spmspv.CodeInternal {
		t.Fatalf("mis-sliced discovery: got %v, want %s", err, spmspv.CodeInternal)
	}
}

// flakyBackend wraps a ShardBackend and fails Do calls while `down` is
// set — the shard-death stand-in. It deliberately does NOT implement
// DoContext, so the coordinator exercises the plain-Do fallback path.
type flakyBackend struct {
	inner spmspv.ShardBackend
	down  atomic.Bool
	calls atomic.Int64
}

func (f *flakyBackend) Do(req *spmspv.Request) (*spmspv.Response, error) {
	f.calls.Add(1)
	if f.down.Load() {
		return nil, &spmspv.WireError{Code: spmspv.CodeInternal, Message: "shard killed (injected)"}
	}
	return f.inner.Do(req)
}

func (f *flakyBackend) Run(p *spmspv.Program) (*spmspv.ProgramResponse, error) {
	return f.inner.Run(p)
}

func (f *flakyBackend) PutMatrix(name string, a *spmspv.Matrix) (*spmspv.StoreStat, error) {
	return f.inner.PutMatrix(name, a)
}

func (f *flakyBackend) DeleteMatrix(name string) error { return f.inner.DeleteMatrix(name) }

func (f *flakyBackend) Matrix(name string) (*spmspv.StoreStat, error) { return f.inner.Matrix(name) }

// TestShardedFaultInjection kills one shard mid-BFS and brings it back
// while the coordinator is retrying: the run must complete with a
// parents vector identical to the unsharded one, and the retry
// counters must show the requeue actually happened. With the shard
// left dead, the run must fail with the shard identified.
func TestShardedFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := testutil.RandomCSC(rng, 160, 160, 3)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	want, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	flaky := &flakyBackend{inner: spmspv.NewStore(opts...)}
	backends := []spmspv.ShardBackend{spmspv.NewStore(opts...), flaky, spmspv.NewStore(opts...)}
	ss, err := spmspv.NewShardedStore(backends,
		spmspv.WithShardRetries(4), spmspv.WithShardBackoff(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}

	// Kill the middle shard after its first few calls, revive it a
	// couple of backoff rounds later — the worker-reboot scenario.
	flaky.down.Store(true)
	revive := time.AfterFunc(12*time.Millisecond, func() { flaky.down.Store(false) })
	defer revive.Stop()

	got, err := spmspv.ProgramBFS(ss, "g", a.NumCols, 0, 0)
	if err != nil {
		t.Fatalf("BFS across shard death: %v", err)
	}
	compareBFS(t, "fault-injected", got, want)

	stats := ss.ShardStats()
	if stats[1].Serve.Retries == 0 {
		t.Fatalf("shard 1 reports no retries after injected death: %+v", stats[1])
	}
	if stat, err := ss.Stats("g"); err != nil || stat.Serve.Retries == 0 {
		t.Fatalf("matrix counters report no retries: %+v, %v", stat, err)
	}

	// Leave it dead: the attempt budget must run out and fail loudly.
	flaky.down.Store(true)
	_, err = ss.Do(&spmspv.Request{Matrix: "g",
		X:    testutil.RandomVector(rng, a.NumCols, 8, true),
		Desc: spmspv.Desc{Semiring: "arithmetic"}})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("dead shard: got %v, want an error naming shard 1", err)
	}
}

// TestShardedServerCoalescing drives concurrent HTTP mults through a
// Server over a sharded backend: every answer must match the unsharded
// store, and the coalescing counters must show batches formed — the
// whole window riding one scatter per shard.
func TestShardedServerCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randomIntCSC(t, rng, 90, 90, 4)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	ss := newLocalSharded(t, 2, opts...)
	if err := ss.Put("g", a); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(spmspv.NewServer(ss,
		spmspv.WithBatchWindow(20*time.Millisecond), spmspv.WithBatchSize(8)))
	defer srv.Close()
	client := spmspv.NewClient(srv.URL)

	const conc = 16
	xs := make([]*spmspv.Vector, conc)
	wants := make([]*spmspv.Vector, conc)
	for q := range xs {
		xs[q] = randomIntVector(rng, a.NumCols, 1+rng.Intn(16))
		want, err := st.Do(&spmspv.Request{Matrix: "g", X: xs[q], Desc: spmspv.Desc{Semiring: "arithmetic"}})
		if err != nil {
			t.Fatal(err)
		}
		wants[q] = want.Y
	}
	var wg sync.WaitGroup
	errs := make([]error, conc)
	gots := make([]*spmspv.Response, conc)
	for q := 0; q < conc; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			gots[q], errs[q] = client.Do(&spmspv.Request{Matrix: "g", X: xs[q],
				Desc: spmspv.Desc{Semiring: "arithmetic"}})
		}(q)
	}
	wg.Wait()
	for q := 0; q < conc; q++ {
		if errs[q] != nil {
			t.Fatalf("slot %d: %v", q, errs[q])
		}
		sameVector(t, "coalesced", gots[q].Y, wants[q])
	}
	stat, err := ss.Stats("g")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Serve.Coalesced == 0 || stat.Serve.Batches == 0 {
		t.Fatalf("no coalescing over the sharded backend: %+v", stat.Serve)
	}
}

// TestShardedHTTPBackends runs the full wire topology in-process: two
// shard servers over TCP-less httptest, a coordinator driving them
// through Clients, and BFS + delete through the coordinator's own HTTP
// surface — the 2-box deployment of the README quickstart.
func TestShardedHTTPBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := testutil.RandomCSC(rng, 130, 130, 3)
	opts := []spmspv.Option{spmspv.WithEngineOptions(engineOptions(2))}

	st := spmspv.NewStore(opts...)
	if err := st.Put("g", a); err != nil {
		t.Fatal(err)
	}
	want, err := spmspv.ProgramBFS(st, "g", a.NumCols, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	var workers []*httptest.Server
	var backends []spmspv.ShardBackend
	for w := 0; w < 2; w++ {
		wsrv := httptest.NewServer(spmspv.NewServer(spmspv.NewStore(opts...)))
		defer wsrv.Close()
		workers = append(workers, wsrv)
		backends = append(backends, spmspv.NewClient(wsrv.URL, spmspv.WithTimeout(10*time.Second)))
	}
	ss, err := spmspv.NewShardedStore(backends,
		spmspv.WithShardLabels([]string{workers[0].URL, workers[1].URL}))
	if err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(spmspv.NewServer(ss))
	defer coord.Close()
	client := spmspv.NewClient(coord.URL)

	if _, err := client.PutMatrix("g", a); err != nil {
		t.Fatal(err)
	}
	got, err := client.BFS("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	compareBFS(t, "http-sharded", got, want)

	// The shards' piece shapes must reproduce the decomposition.
	bounds := spmspv.PieceBounds(a.NumRows, 2)
	for w, b := range backends {
		stat, err := b.Matrix("g")
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if stat.Rows != bounds[w+1]-bounds[w] || stat.Cols != a.NumCols {
			t.Fatalf("worker %d holds %dx%d, want %dx%d",
				w, stat.Rows, stat.Cols, bounds[w+1]-bounds[w], a.NumCols)
		}
	}

	// GET /v1/shards on the coordinator; plain servers refuse it.
	resp, err := http.Get(coord.URL + "/v1/shards")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/shards: %v, %v", resp.Status, err)
	}
	resp.Body.Close()

	// Delete through the coordinator removes the pieces from workers.
	if err := client.DeleteMatrix("g"); err != nil {
		t.Fatal(err)
	}
	for w, b := range backends {
		if _, err := b.Matrix("g"); err == nil {
			t.Fatalf("worker %d still holds the deleted matrix", w)
		}
	}
}

// TestClientTimeout pins the hung-server behavior: a client with
// WithTimeout must abandon a stalled request promptly, and a DoContext
// whose context is already done must not block at all.
func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer hung.Close()
	defer close(release)

	c := spmspv.NewClient(hung.URL, spmspv.WithTimeout(80*time.Millisecond))
	req := &spmspv.Request{Matrix: "g",
		X:    spmspv.NewVector(4, 0),
		Desc: spmspv.Desc{Semiring: "arithmetic"}}
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("Do against a hung server returned without error")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Do blocked %v despite an 80ms timeout", el)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c2 := spmspv.NewClient(hung.URL)
	if _, err := c2.DoContext(ctx, req); err == nil {
		t.Fatal("DoContext with a canceled context returned without error")
	}
	if _, err := c2.RunContext(ctx, &spmspv.Program{}); err == nil {
		t.Fatal("RunContext with a canceled context returned without error")
	}
}

// TestRowSliceMultiplyEquivalence pins the decomposition identity the
// whole design rests on, at the engine level: multiplying each RowSlice
// piece by the full x reproduces exactly that row range of the whole
// multiply, on every registered engine.
func TestRowSliceMultiplyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := randomIntCSC(t, rng, 97, 80, 4)
	x := randomIntVector(rng, a.NumCols, 20)
	for _, alg := range spmspv.Algorithms() {
		opts := engineOptions(2)
		whole, err := spmspv.NewMultiplier(a, spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		want, err := whole.Do(&spmspv.Request{X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 5} {
			bounds := spmspv.PieceBounds(a.NumRows, p)
			re := spmspv.NewVector(a.NumRows, want.Y.NNZ())
			for w := 0; w < p; w++ {
				lo, hi := bounds[w], bounds[w+1]
				if hi <= lo {
					continue
				}
				piece, err := spmspv.NewMultiplier(spmspv.RowSlice(a, lo, hi),
					spmspv.WithAlgorithm(alg), spmspv.WithEngineOptions(opts))
				if err != nil {
					t.Fatal(err)
				}
				part, err := piece.Do(&spmspv.Request{X: x, Desc: spmspv.Desc{Semiring: "arithmetic"}})
				if err != nil {
					t.Fatal(err)
				}
				for k, i := range part.Y.Ind {
					re.Append(i+lo, part.Y.Val[k])
				}
			}
			re.Sorted = true
			sameVector(t, alg.String(), re, want.Y)
		}
	}
}
