package spmspv

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"spmspv/internal/algorithms"
	"spmspv/internal/engine"
	"spmspv/internal/graphgen"
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"

	// The engine implementations register themselves with the
	// internal/engine registry from init; importing them is what makes
	// every Algorithm constructible through NewWithAlgorithm. hybrid is
	// additionally imported by name for the calibration-cache helpers.
	"spmspv/internal/hybrid"

	_ "spmspv/internal/baselines"
	_ "spmspv/internal/core"
)

// Core data types, aliased from the implementation packages so the
// whole public surface lives in one import.
type (
	// Index is the row/column index type (int32).
	Index = sparse.Index
	// Triples is a coordinate-format matrix under construction.
	Triples = sparse.Triples
	// Matrix is a CSC sparse matrix.
	Matrix = sparse.CSC
	// Vector is a list-format sparse vector.
	Vector = sparse.SpVec
	// BitVector is a bitmap-format sparse vector (GraphBLAS mask).
	BitVector = sparse.BitVec
	// Semiring is the algebraic structure multiplication runs over.
	Semiring = semiring.Semiring
	// Options configures engine construction (thread count, plus the
	// bucket engine's knobs: buckets per thread, sorted output, merge
	// scheduling...).
	Options = engine.Options
	// Counters are the deterministic work counters every engine
	// reports (see EXPERIMENTS.md).
	Counters = perf.Counters
	// Stats summarizes a matrix (vertices, edges, pseudo-diameter).
	Stats = sparse.Stats
	// Frontier is a sparse vector carried in whichever representation
	// the consuming engine prefers (list or bitmap), with the bitmap
	// materialized lazily at most once and shared across consumers.
	// Frontiers are also the engines' output format (Mult): output-
	// capable engines emit list and bitmap in one pass.
	Frontier = sparse.Frontier
	// Rep identifies a frontier representation (list or bitmap).
	Rep = engine.Rep
	// Desc is the GraphBLAS-style descriptor that parameterizes Mult
	// and MultBatch: mask + complement, accumulate, transpose (left
	// multiplication), requested output representation, batch width and
	// semiring name in one JSON-serializable value — the wire contract
	// of a multiply request (see Request).
	Desc = engine.Desc
	// OutputMode is a Desc's output-representation request.
	OutputMode = engine.OutputMode
	// BFSResult is the output of the matrix-based BFS.
	BFSResult = algorithms.BFSResult
	// MultiBFSResult is the output of the batched multi-source BFS.
	MultiBFSResult = algorithms.MultiBFSResult
	// PageRankResult is the output of the data-driven PageRank.
	PageRankResult = algorithms.PageRankResult
	// PageRankOptions configures PageRank.
	PageRankOptions = algorithms.PageRankOptions
)

// The predefined semirings.
var (
	// Arithmetic is (+, ×): ordinary multiplication.
	Arithmetic = semiring.Arithmetic
	// MinPlus is (min, +): shortest-path relaxation.
	MinPlus = semiring.MinPlus
	// MaxPlus is (max, +): longest/critical paths.
	MaxPlus = semiring.MaxPlus
	// BoolOrAnd is (∨, ∧): reachability.
	BoolOrAnd = semiring.BoolOrAnd
	// MinSelect2nd is (min, select2nd): BFS parent assignment.
	MinSelect2nd = semiring.MinSelect2nd
	// MaxSelect2nd is (max, select2nd): max-label propagation.
	MaxSelect2nd = semiring.MaxSelect2nd
	// MinSelect1st is (min, select1st): pull edge attributes.
	MinSelect1st = semiring.MinSelect1st
)

// The bucket engine's Step-2 merge schedules (Options.MergeSched).
const (
	// SchedDynamic claims buckets via an atomic counter (the paper's
	// default, §III-A).
	SchedDynamic = engine.SchedDynamic
	// SchedStatic assigns contiguous bucket ranges up front.
	SchedStatic = engine.SchedStatic
	// SchedStealing runs the merge on the persistent work-stealing
	// executor with entry-weighted initial shares (see internal/par).
	SchedStealing = engine.SchedStealing
)

// The OutputMode values a Desc can request (see engine.OutputMode).
const (
	// OutputAuto asks for the richest representation the engine emits
	// natively (list+bitmap for the output-capable engines).
	OutputAuto = engine.OutputAuto
	// OutputList asks for the list only; the bitmap stays lazy.
	OutputList = engine.OutputList
	// OutputBitmap guarantees a materialized bitmap on return.
	OutputBitmap = engine.OutputBitmap
)

// SetExecutorWorkers resizes the process-wide persistent executor that
// every parallel region runs on (see internal/par): n is the number of
// long-lived pool workers backing fork-join calls beyond the caller
// itself (the default is GOMAXPROCS-1), and n ≤ 0 forces every
// parallel region inline on its calling goroutine. Call it at startup,
// before parallel work begins. Serving hosts use it (-par-workers on
// spmspv-serve) to cap total multiply fan-out independently of
// per-call Options.Threads.
func SetExecutorWorkers(n int) { par.SetDefaultWorkers(n) }

// ParseSemiring resolves a semiring name — a short alias
// ("arithmetic", "minplus", "maxplus", "boolean", "bfs", ...) or a
// predefined semiring's canonical Name — to its Semiring, matched
// case-insensitively. This is the decoder behind Desc.Semiring: wire
// requests name their semiring because function values do not
// serialize.
func ParseSemiring(name string) (Semiring, bool) { return semiring.ByName(name) }

// SemiringNames returns every short alias ParseSemiring accepts — the
// list the CLIs print in their -semiring help.
func SemiringNames() []string { return semiring.Names() }

// NewTriples returns an empty m×n coordinate list with capacity nnzCap.
func NewTriples(m, n Index, nnzCap int) *Triples { return sparse.NewTriples(m, n, nnzCap) }

// NewMatrix compiles triples into CSC form, summing duplicates.
func NewMatrix(t *Triples) (*Matrix, error) { return sparse.NewCSCFromTriples(t) }

// NewVector returns an empty sparse vector of dimension n.
func NewVector(n Index, nnzCap int) *Vector { return sparse.NewSpVec(n, nnzCap) }

// ReadMatrixMarket parses a Matrix Market coordinate file.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) {
	t, err := sparse.ReadMatrixMarket(r)
	if err != nil {
		return nil, err
	}
	return sparse.NewCSCFromTriples(t)
}

// WriteMatrixMarket writes a matrix in Matrix Market format.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return sparse.WriteMatrixMarket(w, a) }

// ReadVector / WriteVector handle the simple "index value" text format.
func ReadVector(r io.Reader) (*Vector, error)  { return sparse.ReadVector(r) }
func WriteVector(w io.Writer, v *Vector) error { return sparse.WriteVector(w, v) }

// DecodeVector reads a vector in any supported encoding — the SPVB
// binary frame, JSON, or the "index value" text form — sniffed from
// the leading bytes, mirroring DecodeMatrix. CLI and file paths use it
// so either wire encoding works without a flag.
func DecodeVector(r io.Reader) (*Vector, error) { return sparse.DecodeVector(r) }

// EncodeVectorBinary writes v as the framed SPVB binary form — the
// compact encoding the binary serving wire carries vectors in.
func EncodeVectorBinary(w io.Writer, v *Vector) error { return sparse.EncodeVectorBinary(w, v) }

// ComputeStats derives Table IV-style statistics for an adjacency
// matrix (pseudo-diameter via double-sweep BFS from source).
func ComputeStats(name string, a *Matrix, source Index) Stats {
	return sparse.ComputeStats(name, a, source)
}

// Algorithm selects the SpMSpV engine. Engines are constructed through
// the internal/engine registry, where each implementation registers
// itself; String() reports the registered Table I name.
type Algorithm = engine.Algorithm

const (
	// Bucket is the paper's SpMSpV-bucket algorithm (default; the only
	// work-efficient, synchronization-avoiding choice).
	Bucket = engine.Bucket
	// CombBLASSPA is the row-split, fully-initialized-SPA baseline.
	CombBLASSPA = engine.CombBLASSPA
	// CombBLASHeap is the row-split heap-merge baseline.
	CombBLASHeap = engine.CombBLASHeap
	// GraphMat is the matrix-driven, bitvector-input baseline.
	GraphMat = engine.GraphMat
	// SortBased is the gather–radix-sort–reduce baseline.
	SortBased = engine.SortBased
	// Hybrid switches per call between the vector-driven bucket
	// algorithm and the matrix-driven GraphMat algorithm on input
	// density (paper §V). The switch point is Options.HybridThreshold;
	// zero calibrates it from probe multiplies at construction.
	Hybrid = engine.Hybrid
)

// Algorithms returns the registered algorithm identifiers in ascending
// order — everything constructible through NewWithAlgorithm.
func Algorithms() []Algorithm { return engine.Registered() }

// ParseAlgorithm resolves an algorithm name — a registered name
// matched case-insensitively ("CombBLAS-SPA", "graphmat", ...) or a
// registered short CLI alias ("bucket", "sort", "hybrid") — to its
// Algorithm. Names and aliases both live in the engine registry (one
// Register call per engine is the single source of truth), so anything
// registered is reachable here without touching this function. An
// unknown name returns (0, false); callers must check ok rather than
// use the zero Algorithm, which happens to be Bucket.
func ParseAlgorithm(name string) (Algorithm, bool) { return engine.Parse(name) }

// EngineNames returns every engine name ParseAlgorithm accepts, in a
// stable order: the registered short CLI aliases first, then the
// registered Table I names (lowercased) that are not already covered
// by an alias. CLIs derive their -engine/-algorithm help strings from
// this, so a newly registered engine shows up without touching any
// flag text.
func EngineNames() []string { return engine.Names() }

// DefaultCalibrationCachePath returns the conventional on-disk
// location for the Hybrid engine's calibrated-threshold cache
// (Options.CalibrationCache), or "" when the platform reports no user
// cache directory.
func DefaultCalibrationCachePath() string { return hybrid.DefaultCachePath() }

// FrontierOutputStats reports the process-wide count of list→bitmap
// conversions performed on engine-produced output frontiers (the
// conversions native output emission avoids) and the count of outputs
// whose bitmap was emitted natively. See also Counters'
// OutputConversions, the per-engine attribution of the same events.
func FrontierOutputStats() (outputConversions, nativeOutputs int64) {
	return sparse.FrontierOutputStats()
}

// ResetFrontierStats zeroes the process-wide frontier conversion and
// output instrumentation.
func ResetFrontierStats() { sparse.ResetFrontierConversions() }

// Multiplier is a reusable SpMSpV engine bound to one matrix. Reuse
// across calls is the intended pattern — iterative graph algorithms
// call Mult thousands of times and all buffers are recycled, per the
// paper's preallocation strategy (§III-A).
//
// A Multiplier is safe for concurrent use by multiple goroutines: the
// underlying engines pool their per-call workspaces, the lazily-built
// transpose engine and the per-shape plans are constructed exactly
// once, and work counters are aggregated race-free. Parallelism also
// exists inside each call, so a single caller still saturates the
// machine.
type Multiplier struct {
	a   *Matrix
	eng engine.Engine
	alg Algorithm
	opt Options

	// plans caches one compiled engine.Plan per descriptor shape: the
	// capability negotiation (which optional engine extensions exist,
	// how to degrade) runs once per shape, not once per call.
	plans sync.Map // engine.Shape → *engine.Plan

	leftOnce sync.Once
	left     *Multiplier // lazily built Aᵀ engine for Desc.Transpose

	accumPool sync.Pool // *Vector scratch for MultiplyAccumInto
}

// Option configures NewMultiplier. Options compose left to right;
// WithEngineOptions replaces the whole engine-options struct, so apply
// it before the field-level options it would otherwise overwrite.
type Option func(*multiplierConfig)

type multiplierConfig struct {
	alg Algorithm
	opt Options
}

// WithAlgorithm selects the SpMSpV engine (default Bucket).
func WithAlgorithm(alg Algorithm) Option {
	return func(c *multiplierConfig) { c.alg = alg }
}

// WithEngineOptions replaces the engine-construction options wholesale
// — the escape hatch for the long tail of bucket-engine knobs
// (staging, scheduling, the ∞-sentinel ablation...).
func WithEngineOptions(opt Options) Option {
	return func(c *multiplierConfig) { c.opt = opt }
}

// WithThreads sets the worker thread count (≤ 0 means GOMAXPROCS).
func WithThreads(n int) Option {
	return func(c *multiplierConfig) { c.opt.Threads = n }
}

// WithSortOutput selects whether results carry strictly increasing
// indices.
func WithSortOutput(sorted bool) Option {
	return func(c *multiplierConfig) { c.opt.SortOutput = sorted }
}

// WithHybridThreshold pins the Hybrid engine's direction-switch
// threshold (zero calibrates at construction, negative pins the
// vector-driven side).
func WithHybridThreshold(th float64) Option {
	return func(c *multiplierConfig) { c.opt.HybridThreshold = th }
}

// WithCalibrationCache sets the on-disk calibrated-threshold cache the
// Hybrid engine consults at construction; recalibrate forces the probe
// multiplies to re-run even on a cache hit.
func WithCalibrationCache(path string, recalibrate bool) Option {
	return func(c *multiplierConfig) {
		c.opt.CalibrationCache = path
		c.opt.Recalibrate = recalibrate
	}
}

// NewMultiplier returns a multiplier for a, configured by functional
// options. Unlike the deprecated NewWithAlgorithm — whose documented
// wart was a SILENT fallback to the Bucket engine when the requested
// algorithm had no registered constructor — construction reports
// failure: an unregistered algorithm (usually a missing import of the
// implementing package) or a nil matrix is an error, not a different
// engine than the one asked for.
func NewMultiplier(a *Matrix, opts ...Option) (*Multiplier, error) {
	if a == nil {
		return nil, errors.New("spmspv: NewMultiplier with nil matrix")
	}
	cfg := multiplierConfig{alg: Bucket}
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := engine.New(a, cfg.alg, cfg.opt)
	if err != nil {
		return nil, fmt.Errorf("spmspv: constructing engine: %w", err)
	}
	return &Multiplier{a: a, eng: eng, alg: cfg.alg, opt: cfg.opt}, nil
}

// New returns a bucket-algorithm multiplier for a with the given
// options.
//
// Deprecated: use NewMultiplier(a, WithEngineOptions(opt)).
func New(a *Matrix, opt Options) *Multiplier {
	return NewWithAlgorithm(a, Bucket, opt)
}

// NewWithAlgorithm returns a multiplier running the selected algorithm,
// constructed through the engine registry. threads ≤ 0 means
// GOMAXPROCS; for the row-split baselines the matrix partitioning is
// performed here, at construction ("preprocessing"), as in the
// original systems.
//
// Fallback contract: an Algorithm value with no registered constructor
// SILENTLY falls back to the Bucket engine — the returned multiplier
// reports Algorithm() == Bucket, which is how callers detect that the
// fallback fired. Use ParseAlgorithm to validate names before
// construction.
//
// Deprecated: use NewMultiplier(a, WithAlgorithm(alg),
// WithEngineOptions(opt)), which reports an unregistered algorithm as
// an error instead of silently constructing a different engine.
func NewWithAlgorithm(a *Matrix, alg Algorithm, opt Options) *Multiplier {
	m, err := NewMultiplier(a, WithAlgorithm(alg), WithEngineOptions(opt))
	if err != nil {
		m, err = NewMultiplier(a, WithEngineOptions(opt))
		if err != nil {
			// The bucket engine is always registered via this package's
			// core import; reaching here means a broken build.
			panic(err)
		}
	}
	return m
}

// Mult is the single descriptor-driven multiply: y ← ⟨op(A)·x, mask⟩
// over sr, where every capability is a Desc field instead of a method —
// op(A) is Aᵀ under d.Transpose (paper §II-A left multiplication), the
// mask is pushed into the engine's merge step (§V), d.Accum switches
// overwrite to y ← y ⊕ product, and d.Output selects the result
// representation. The zero Desc is a plain multiply with the engine's
// richest native output.
//
// Capability negotiation runs off the hot path: the plan for each
// descriptor shape — which optional engine interfaces exist and how to
// degrade — is compiled once per Multiplier and cached, so steady-state
// calls perform no type assertions. A zero-valued sr resolves
// d.Semiring by name (the wire form); an explicit sr always wins.
//
// Mult panics on an inconsistent descriptor (Complement without a
// mask, an unresolvable semiring) exactly as the slice-length checks
// panic: these are programming errors, not runtime conditions. Network
// servers validate with Desc.Validate / Request first.
func (m *Multiplier) Mult(x, y *Frontier, sr Semiring, d Desc) {
	if d.Transpose {
		d.Transpose = false
		m.transposed().Mult(x, y, sr, d)
		return
	}
	sr = resolveSemiring(sr, d)
	m.planFor(d.Shape()).Mult(x, y, sr, d)
}

// MultBatch is Mult over a batch: ys[q] ← ⟨op(A)·xs[q], mask_q⟩ for
// every q, with per-slot masks from d.Masks (or d.Mask shared).
// Engines with a native batch path amortize their per-call setup
// across the slots (the bucket engine shares one Estimate/sizing pass
// and emits every slot's output bitmap from the batched Step 3; the
// hybrid engine routes each slot by its own density). Results are
// always exactly those of the equivalent loop of Mult calls.
func (m *Multiplier) MultBatch(xs, ys []*Frontier, sr Semiring, d Desc) {
	if d.Transpose {
		d.Transpose = false
		m.transposed().MultBatch(xs, ys, sr, d)
		return
	}
	sr = resolveSemiring(sr, d)
	m.planFor(d.Shape()).MultBatch(xs, ys, sr, d)
}

// Plan returns the multiplier's cached compiled plan for a descriptor
// shape — the handle loop-heavy callers can hold to make the per-call
// overhead of Mult (one map load) disappear entirely.
func (m *Multiplier) Plan(d Desc) *engine.Plan { return m.planFor(d.Shape()) }

// planFor returns the cached plan for shape s, compiling it on first
// use.
func (m *Multiplier) planFor(s engine.Shape) *engine.Plan {
	if p, ok := m.plans.Load(s); ok {
		return p.(*engine.Plan)
	}
	p, _ := m.plans.LoadOrStore(s, engine.CompilePlan(m.eng, s))
	return p.(*engine.Plan)
}

// transposed returns the multiplier bound to Aᵀ with the same algorithm
// and options, building it exactly once — concurrent first callers
// block until it is ready.
func (m *Multiplier) transposed() *Multiplier {
	m.leftOnce.Do(func() {
		m.left = NewWithAlgorithm(m.a.Transpose(), m.alg, m.opt)
	})
	return m.left
}

// resolveSemiring applies the precedence rule: an explicit semiring
// argument wins; a zero-valued argument falls back to the descriptor's
// semiring name.
func resolveSemiring(sr Semiring, d Desc) Semiring {
	if sr.Add != nil || sr.Mul != nil {
		return sr
	}
	if d.Semiring == "" {
		panic("spmspv: Mult requires a semiring (pass one, or name one in Desc.Semiring)")
	}
	named, ok := semiring.ByName(d.Semiring)
	if !ok {
		panic(fmt.Sprintf("spmspv: unknown semiring %q in Desc", d.Semiring))
	}
	return named
}

// Multiply computes and returns y ← A·x over sr.
//
// Deprecated: use Mult with a zero Desc (or MultiplyInto when only a
// list vector is wanted); Multiply remains for one-shot callers.
func (m *Multiplier) Multiply(x *Vector, sr Semiring) *Vector {
	y := sparse.NewSpVec(0, 0)
	m.eng.Multiply(x, y, sr)
	return y
}

// MultiplyInto computes y ← A·x over sr, reusing y's storage.
//
// Deprecated: use Mult with a zero Desc. MultiplyInto is the bare
// list-vector primitive underneath it and stays as the thin back-compat
// wrapper.
func (m *Multiplier) MultiplyInto(x, y *Vector, sr Semiring) {
	m.eng.Multiply(x, y, sr)
}

// NewFrontier wraps a list-format vector as a Frontier. Feed it to
// MultiplyFrontierInto (possibly across several multipliers) so that a
// bitmap-preferring engine's list→bitmap conversion runs at most once
// per frontier instead of once per call.
func NewFrontier(x *Vector) *Frontier { return sparse.NewFrontier(x) }

// NewOutputFrontier returns an empty frontier of dimension n with
// private list storage, ready to receive a result from
// MultiplyFrontier. Frontier pipelines (see BFS) keep two of these and
// swap them, allocating nothing per iteration.
func NewOutputFrontier(n Index) *Frontier { return sparse.NewOutputFrontier(n) }

// NewOutputFrontier returns an output frontier sized for this
// multiplier's results (the matrix's row dimension).
func (m *Multiplier) NewOutputFrontier() *Frontier {
	return sparse.NewOutputFrontier(m.a.NumRows)
}

// MultiplyFrontierInto computes y ← A·x over sr reading whichever
// representation of the frontier this multiplier's engine prefers —
// the list for the vector-driven engines, the shared lazily-built
// bitmap for GraphMat (and the Hybrid engine's matrix-driven calls).
// Engines without frontier support read the list.
//
// Deprecated: use Mult with Desc{Output: OutputList} and read the
// output frontier's List.
func (m *Multiplier) MultiplyFrontierInto(x *Frontier, y *Vector, sr Semiring) {
	if fe, ok := m.eng.(engine.FrontierEngine); ok {
		fe.MultiplyFrontier(x, y, sr)
		return
	}
	m.eng.Multiply(x.List(), y, sr)
}

// MultiplyFrontier computes y ← A·x over sr with frontier-form output:
// the result lands in the output frontier's list, and engines with
// native output support (Bucket, GraphMat, Hybrid) emit the bitmap
// representation in the same pass.
//
// Deprecated: use Mult with a zero Desc — identical semantics through
// the cached plan.
func (m *Multiplier) MultiplyFrontier(x, y *Frontier, sr Semiring) {
	m.Mult(x, y, sr, Desc{})
}

// MultiplyFrontierMasked computes y ← ⟨A·x, mask⟩ with frontier-form
// output: the mask is pushed into the engine's merge/accumulate step
// and the surviving result is emitted exactly as in MultiplyFrontier.
//
// Deprecated: use Mult with Desc{Mask: mask, Complement: complement}.
func (m *Multiplier) MultiplyFrontierMasked(x, y *Frontier, sr Semiring, mask *BitVector, complement bool) {
	m.Mult(x, y, sr, Desc{Mask: mask, Complement: complement})
}

// OutputRep reports the representation this multiplier's engine emits
// natively into output frontiers: "bitmap" means MultiplyFrontier
// populates list and bitmap in one pass, "list" means the bitmap is
// built lazily (and counted) if demanded.
func (m *Multiplier) OutputRep() engine.Rep { return engine.OutputRepOf(m.eng) }

// MultiplyBatch computes ys[q] ← A·xs[q] for a batch of input vectors
// over sr, reusing the ys' storage (len(xs) must equal len(ys), and
// the ys must be pairwise distinct). Engines with a native batch path
// — the Bucket engine shares one Estimate/bucket-sizing pass across
// the batch; the Hybrid engine routes each frontier by density — run
// it; every other engine runs an equivalent loop of Multiply calls.
// Results are always exactly those of the loop.
//
// Deprecated: use MultBatch with a zero Desc (wrap the vectors with
// NewFrontier / NewOutputFrontier).
func (m *Multiplier) MultiplyBatch(xs, ys []*Vector, sr Semiring) {
	engine.MultiplyBatch(m.eng, xs, ys, sr)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩ with the mask pushed down
// into the engine's merge/accumulate step — every registered engine
// (Bucket, the four baselines and Hybrid) implements the masked
// extension, so masked graph algorithms compare all of them. An
// unregistered engine without mask support would get a plain product
// filtered afterwards.
//
// Deprecated: use Mult with Desc{Mask: mask, Complement: complement}.
func (m *Multiplier) MultiplyMasked(x, y *Vector, sr Semiring, mask *BitVector, complement bool) {
	if bm, ok := m.eng.(engine.MaskedEngine); ok {
		bm.MultiplyMasked(x, y, sr, mask, complement)
		return
	}
	m.eng.Multiply(x, y, sr)
	sparse.FilterMaskInPlace(y, mask, complement)
}

// MultiplyLeft computes the row-vector product yᵀ ← xᵀ·A, the "left
// multiplication" of paper §II-A ("the algorithms we present can be
// trivially adopted to the left multiplication case"): it equals Aᵀ·x,
// so an engine bound to the cached transpose runs the same algorithm.
// The transpose and its engine are built exactly once, on first use —
// concurrent first callers block until it is ready — and reused.
//
// Deprecated: use Mult with Desc{Transpose: true}.
func (m *Multiplier) MultiplyLeft(x *Vector, sr Semiring) *Vector {
	return m.transposed().Multiply(x, sr)
}

// MultiplyAccum computes y ← accum ⊕ (A·x) where ⊕ is the semiring's
// Add — the GraphBLAS accumulate pattern. accum is not modified.
//
// Deprecated: use Mult with Desc{Accum: true} — the output frontier's
// prior contents are the accumulator.
func (m *Multiplier) MultiplyAccum(x, accum *Vector, sr Semiring) *Vector {
	y := sparse.NewSpVec(0, 0)
	m.MultiplyAccumInto(x, accum, y, sr)
	return y
}

// MultiplyAccumInto computes y ← accum ⊕ (A·x) reusing y's storage —
// the accumulate for iterative callers (y must not alias accum or x).
// The intermediate product is drawn from an internal pool; with
// Options.SortOutput set and a sorted accum the union is a linear
// merge, so a steady-state loop of calls allocates only when the
// output outgrows y's capacity (unsorted inputs fall back to a
// map-based union).
//
// Deprecated: use Mult with Desc{Accum: true}.
func (m *Multiplier) MultiplyAccumInto(x, accum, y *Vector, sr Semiring) {
	prod, _ := m.accumPool.Get().(*Vector)
	if prod == nil {
		prod = sparse.NewSpVec(0, 0)
	}
	m.eng.Multiply(x, prod, sr)
	sparse.EwiseAddInto(y, prod, accum, sr.Add)
	m.accumPool.Put(prod)
}

// Algorithm reports which engine this multiplier runs.
func (m *Multiplier) Algorithm() Algorithm { return m.alg }

// Matrix returns the bound matrix.
func (m *Multiplier) Matrix() *Matrix { return m.a }

// Counters returns the work performed since the last ResetCounters —
// the quantities behind the paper's work-efficiency analysis.
func (m *Multiplier) Counters() Counters { return m.eng.Counters() }

// ResetCounters zeroes the work counters.
func (m *Multiplier) ResetCounters() { m.eng.ResetCounters() }

// Multiply is the one-shot convenience: y ← A·x with the bucket
// algorithm over the arithmetic semiring.
func Multiply(a *Matrix, x *Vector, opt Options) *Vector {
	return New(a, opt).Multiply(x, Arithmetic)
}

// BFS runs a breadth-first search from source over the multiplier's
// matrix (columns are out-neighbor lists) and returns parents, levels
// and per-level frontier sizes.
func BFS(m *Multiplier, source Index) *BFSResult {
	return algorithms.BFS(m.eng, m.a.NumCols, source, false)
}

// BFSMasked runs BFS with the visited-set filter pushed into the
// multiply as an output mask (paper §V's GraphBLAS masking) and the
// levels pipelined through output frontiers: each level's result is
// fed back as the next input, with zero list→bitmap conversions when
// the engine emits output bitmaps natively. Results are identical to
// BFS; every registered engine is supported.
func BFSMasked(m *Multiplier, source Index) *BFSResult {
	return algorithms.BFSMasked(m.eng, m.a.NumCols, source)
}

// MultiBFS runs one breadth-first search per source concurrently,
// expanding all live frontiers of a level through one batched multiply
// (see Multiplier.MultiplyBatch). The trees are identical to running
// BFS per source; the batch amortizes per-call engine setup across the
// sources.
func MultiBFS(m *Multiplier, sources []Index) *MultiBFSResult {
	return algorithms.MultiBFS(m.eng, m.a.NumCols, sources, false)
}

// MultiBFSMasked is MultiBFS with every search's visited filter pushed
// into the batched multiply as a per-slot output mask and the levels
// pipelined through output frontiers — the multi-source form of
// BFSMasked. With a batch-output engine (bucket, hybrid) every slot's
// output bitmap is emitted natively by the batched Step 3, so a
// direction-optimized multi-source pipeline performs zero list→bitmap
// output conversions. Trees are identical to running BFS per source.
func MultiBFSMasked(m *Multiplier, sources []Index) *MultiBFSResult {
	return algorithms.MultiBFSMasked(m.eng, m.a.NumCols, sources)
}

// SpreadSources picks k BFS roots spread evenly across the vertex
// range starting at base — the default source selection for MultiBFS
// workloads.
func SpreadSources(n, base Index, k int) []Index {
	return algorithms.SpreadSources(n, base, k)
}

// PageRank runs the data-driven PageRank on a multiplier bound to a
// column-normalized matrix (see NormalizeColumns).
func PageRank(m *Multiplier, opt PageRankOptions) *PageRankResult {
	return algorithms.PageRank(m.eng, m.a.NumCols, opt)
}

// NormalizeColumns returns a copy of a with columns scaled to sum to 1.
func NormalizeColumns(a *Matrix) *Matrix { return algorithms.NormalizeColumns(a) }

// ConnectedComponents labels every vertex of an undirected graph with
// its component's minimum vertex id.
func ConnectedComponents(m *Multiplier) []Index {
	return algorithms.ConnectedComponents(m.eng, m.a.NumCols)
}

// MaximalIndependentSet computes a maximal independent set of an
// undirected graph with Luby's algorithm (deterministic given seed).
// Self-loops are ignored: when the matrix has diagonal entries, a
// stripped copy is multiplied instead (Luby's rounds require a simple
// graph).
func MaximalIndependentSet(m *Multiplier, seed int64) []bool {
	eng := m.eng
	if m.a.HasSelfLoops() {
		eng = NewWithAlgorithm(sparse.StripSelfLoops(m.a), m.alg, m.opt).eng
	}
	return algorithms.MaximalIndependentSet(eng, m.a.NumCols, seed)
}

// SSSP computes single-source shortest path distances over non-negative
// edge weights (A(i,j) is the weight of edge j→i); unreachable vertices
// get +Inf.
func SSSP(m *Multiplier, source Index) []float64 {
	return algorithms.SSSP(m.eng, m.a.NumCols, source)
}

// Local clustering and matching (paper §I motivating applications).

type (
	// ACLOptions configures Andersen–Chung–Lang local clustering.
	ACLOptions = algorithms.ACLOptions
	// ACLResult is the PPR vector plus the sweep-cut cluster.
	ACLResult = algorithms.ACLResult
)

// LocalCluster runs the ACL push algorithm from seed on the
// multiplier's (undirected) graph and returns the sweep-cut cluster.
func LocalCluster(m *Multiplier, seed Index, opt ACLOptions) *ACLResult {
	return algorithms.ACL(m.eng, algorithms.Degrees(m.a), seed, opt)
}

// MultiCluster runs the ACL push algorithm from k seeds in lockstep,
// expanding all live push frontiers of a round through one batched
// multiply (see Multiplier.MultiplyBatch). Results are identical to
// running LocalCluster per seed; the batch amortizes per-call engine
// setup across the seeds' small push frontiers.
func MultiCluster(m *Multiplier, seeds []Index, opt ACLOptions) []*ACLResult {
	return algorithms.MultiCluster(m.eng, algorithms.Degrees(m.a), seeds, opt)
}

// MaximalMatching computes a maximal matching of the bipartite graph
// whose adjacency is the multiplier's matrix (rows and columns are the
// two vertex sides). The transposed engine needed for the backward
// rounds is built internally with the same algorithm and options.
func MaximalMatching(m *Multiplier) (rowMate, colMate []Index) {
	mt := NewWithAlgorithm(m.a.Transpose(), m.alg, m.opt)
	return algorithms.MaximalMatching(m.eng, mt.eng, m.a.NumRows, m.a.NumCols)
}

// Element-wise vector operations (GraphBLAS-style combinators).

// EwiseAdd returns the element-wise union of a and b (nil add means +).
func EwiseAdd(a, b *Vector, add func(x, y float64) float64) *Vector {
	return sparse.EwiseAdd(a, b, add)
}

// EwiseMult returns the element-wise intersection (nil mul means ×).
func EwiseMult(a, b *Vector, mul func(x, y float64) float64) *Vector {
	return sparse.EwiseMult(a, b, mul)
}

// Filter keeps the entries satisfying the predicate.
func Filter(v *Vector, keep func(i Index, val float64) bool) *Vector {
	return sparse.Filter(v, keep)
}

// Reduce folds all stored values of v.
func Reduce(v *Vector, init float64, combine func(acc, val float64) float64) float64 {
	return sparse.Reduce(v, init, combine)
}

// Graph generators (the Table IV stand-in suite; see internal/graphgen).

// ErdosRenyi samples a directed G(n, d/n) adjacency matrix.
func ErdosRenyi(n Index, d float64, seed int64) *Matrix { return graphgen.ErdosRenyi(n, d, seed) }

// RMATConfig parameterizes the scale-free R-MAT generator.
type RMATConfig = graphgen.RMATConfig

// DefaultRMAT returns the Graph500 parameterization at a scale.
func DefaultRMAT(scale int) RMATConfig { return graphgen.DefaultRMAT(scale) }

// RMAT generates a scale-free graph.
func RMAT(cfg RMATConfig, seed int64) *Matrix { return graphgen.RMAT(cfg, seed) }

// Grid2D generates a 5-point-stencil lattice (high-diameter regime).
func Grid2D(rows, cols int) *Matrix { return graphgen.Grid2D(rows, cols) }

// TriangularMesh generates a triangulated lattice; jitterSeed != 0
// randomizes diagonal orientation.
func TriangularMesh(rows, cols int, jitterSeed int64) *Matrix {
	return graphgen.TriangularMesh(rows, cols, jitterSeed)
}

// RGG generates a random geometric graph on the unit square.
func RGG(n Index, radius float64, seed int64) *Matrix { return graphgen.RGG(n, radius, seed) }

// NewBitVector returns an all-zero mask of dimension n.
func NewBitVector(n Index) *BitVector { return sparse.NewBitVec(n) }

// Matrix manipulation utilities.

// RowSlice extracts global rows [lo, hi) of a as a standalone matrix
// with local row ids (global − lo) — the unit of distribution of the
// sharded serving layer. Piece w of an n-way row split is
// RowSlice(a, PieceBounds(a.NumRows, n)[w], PieceBounds(a.NumRows, n)[w+1]).
func RowSlice(a *Matrix, lo, hi Index) *Matrix { return sparse.RowSlice(a, lo, hi) }

// PieceBounds returns the n+1 row bounds of the canonical n-way row
// decomposition of an m-row matrix — the same split RowSplit uses
// intra-process and ShardedStore uses across shards, so a worker can
// compute which rows it owns without talking to the coordinator.
func PieceBounds(m Index, n int) []Index { return sparse.PieceBounds(m, n) }

// PermuteRows returns P·A (row i moves to perm[i]).
func PermuteRows(a *Matrix, perm []Index) (*Matrix, error) { return sparse.PermuteRows(a, perm) }

// PermuteCols returns A·Pᵀ (column j moves to perm[j]).
func PermuteCols(a *Matrix, perm []Index) (*Matrix, error) { return sparse.PermuteCols(a, perm) }

// PermuteSymmetric returns P·A·Pᵀ (vertex relabeling).
func PermuteSymmetric(a *Matrix, perm []Index) (*Matrix, error) {
	return sparse.PermuteSymmetric(a, perm)
}

// ExtractColumns returns the submatrix of the selected columns.
func ExtractColumns(a *Matrix, cols []Index) (*Matrix, error) { return sparse.ExtractColumns(a, cols) }

// ExtractSubmatrix returns A(r0:r1, c0:c1) with local indices.
func ExtractSubmatrix(a *Matrix, r0, r1, c0, c1 Index) (*Matrix, error) {
	return sparse.ExtractSubmatrix(a, r0, r1, c0, c1)
}

// StripSelfLoops returns a copy without diagonal entries (a itself when
// none exist).
func StripSelfLoops(a *Matrix) *Matrix { return sparse.StripSelfLoops(a) }
