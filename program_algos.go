package spmspv

import (
	"fmt"
)

// bfsSeed builds the one-entry BFS seed vector: the frontier value IS
// the vertex id, so the (min, select2nd) semiring propagates parents.
func bfsSeed(n, source Index) *Vector {
	x := NewVector(n, 1)
	x.Append(source, float64(source))
	return x
}

// BFSProgram builds the constant-size loop-based masked-BFS program:
// one input op plus one loop whose body is the level step — a
// complemented-mask (min, select2nd) multiply against the visited set,
// a union extending the visited set, and an indices op forming the
// next frontier — with the frontier and visited set as loop-carried
// values and an until_empty exit. maxLevels (≥ 1) bounds the loop; the
// graph's true depth decides how many iterations actually run, so the
// program is the same handful of ops for a 10-vertex ring or a
// 10^6-vertex path graph.
//
// seed is the start frontier (see bfsSeed); a nil seed produces the
// stored-procedure form whose input binds to the invoke argument
// "seed", so a registered BFS program serves any source vertex.
func BFSProgram(matrix string, maxLevels int, seed *Vector) *Program {
	input := ProgramOp{Op: "input", X: seed}
	if seed == nil {
		input.Param = "seed"
	}
	return &Program{Matrix: matrix, Ops: []ProgramOp{
		input, // $0: frontier = visited = seed
		{
			Op:         "loop",
			Carry:      []string{ref(0), ref(0)}, // ^0 frontier, ^1 visited
			MaxIters:   maxLevels,
			Update:     []string{ref(2), ref(1)},
			UntilEmpty: ref(0),
			Body: []ProgramOp{
				{ // $0: next level's discoveries
					XRef:    carryRef(0),
					MaskRef: carryRef(1),
					Desc:    Desc{Complement: true, Semiring: "bfs"},
					Emit:    true,
				},
				{Op: "union", XRef: carryRef(1), YRef: ref(0)}, // $1: visited ∪ y
				{Op: "indices", XRef: ref(0)},                  // $2: next frontier
			},
		},
	}}
}

// bfsFromLevels folds the per-level discovery vectors (each mult op's
// output, in execution order) into a BFSResult, mirroring exactly what
// algorithms.BFS records in-process: FrontierSizes counts nnz(x) per
// multiply performed, and each discovered vertex's value is its parent.
// exhausted reports that the program ran out of ops/iterations, which
// is only an error if no empty level proved termination.
func bfsFromLevels(n, source Index, levels []*Vector, exhausted bool, maxLevels int) (*BFSResult, error) {
	res := &BFSResult{
		Parents: make([]Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	res.FrontierSizes = append(res.FrontierSizes, 1)
	level := int32(0)
	done := false
	for _, y := range levels {
		if y == nil {
			return nil, fmt.Errorf("spmspv: program response missing a BFS level vector")
		}
		level++
		for k, i := range y.Ind {
			res.Levels[i] = level
			res.Parents[i] = Index(y.Val[k])
		}
		if y.NNZ() == 0 {
			done = true
			break
		}
		res.FrontierSizes = append(res.FrontierSizes, y.NNZ())
	}
	if !done && exhausted {
		return nil, fmt.Errorf("spmspv: BFS did not terminate within %d levels (raise maxLevels)", maxLevels)
	}
	return res, nil
}

// ProgramBFS runs the multi-level masked BFS as ONE round trip using
// the constant-size loop program (see BFSProgram): the level loop
// executes server-side, and only the per-level discovery vectors come
// back. maxLevels bounds the iteration (≤ 0 means n, the worst case —
// a path graph); the until_empty exit stops it at the true BFS depth.
//
// ex is any Executor — a Client for a remote server, a Store for the
// in-process form — and the result is identical to algorithms.BFS on
// the same matrix.
func ProgramBFS(ex Executor, matrix string, n Index, source Index, maxLevels int) (*BFSResult, error) {
	if source < 0 || source >= n {
		return nil, fmt.Errorf("spmspv: BFS source %d out of range [0,%d)", source, n)
	}
	if maxLevels <= 0 {
		maxLevels = int(n)
	}
	resp, err := ex.Run(BFSProgram(matrix, maxLevels, bfsSeed(n, source)))
	if err != nil {
		return nil, err
	}
	return DecodeBFSProgramResponse(resp, n, source, maxLevels)
}

// DecodeBFSProgramResponse folds a BFSProgram response — per-iteration
// emissions of body op 0 — into a BFSResult. Shared by ProgramBFS and
// the stored-procedure invoke path.
func DecodeBFSProgramResponse(resp *ProgramResponse, n, source Index, maxLevels int) (*BFSResult, error) {
	var levels []*Vector
	for _, r := range resp.Results {
		if r.Iter > 0 && r.BodyOp == 0 {
			levels = append(levels, r.Y)
		}
	}
	return bfsFromLevels(n, source, levels, true, maxLevels)
}

// ProgramBFSUnrolled is the straight-line ancestor of ProgramBFS: the
// same masked level step unrolled maxLevels times with "$k" refs and a
// StopOnEmpty early exit, so a worst-case unroll costs only the levels
// the graph has — but the program itself is O(maxLevels) ops where the
// loop form is O(1). Kept as the test oracle for the loop construct
// (identical results, op for op) and as the wire-bytes baseline in the
// EXPERIMENTS.md comparison.
func ProgramBFSUnrolled(ex Executor, matrix string, n Index, source Index, maxLevels int) (*BFSResult, error) {
	if source < 0 || source >= n {
		return nil, fmt.Errorf("spmspv: BFS source %d out of range [0,%d)", source, n)
	}
	if maxLevels <= 0 {
		maxLevels = int(n)
	}

	prog := &Program{Matrix: matrix, StopOnEmpty: true}
	prog.Ops = append(prog.Ops, ProgramOp{Op: "input", X: bfsSeed(n, source)}) // $0
	frontier, visited := 0, 0
	var multOps []int
	for level := 0; level < maxLevels; level++ {
		prog.Ops = append(prog.Ops, ProgramOp{
			XRef:    ref(frontier),
			MaskRef: ref(visited),
			Desc:    Desc{Complement: true, Semiring: "bfs"},
			Emit:    true,
		})
		y := len(prog.Ops) - 1
		multOps = append(multOps, y)
		prog.Ops = append(prog.Ops, ProgramOp{Op: "union", XRef: ref(visited), YRef: ref(y)})
		visited = len(prog.Ops) - 1
		prog.Ops = append(prog.Ops, ProgramOp{Op: "indices", XRef: ref(y)})
		frontier = len(prog.Ops) - 1
	}

	resp, err := ex.Run(prog)
	if err != nil {
		return nil, err
	}
	emitted := make(map[int]*Vector, len(resp.Results))
	for _, r := range resp.Results {
		emitted[r.Op] = r.Y
	}
	var levels []*Vector
	for _, opIdx := range multOps {
		if opIdx >= resp.Steps {
			break
		}
		y, ok := emitted[opIdx]
		if !ok {
			return nil, fmt.Errorf("spmspv: program response missing emitted op %d", opIdx)
		}
		levels = append(levels, y)
	}
	return bfsFromLevels(n, source, levels, resp.Steps == len(prog.Ops), maxLevels)
}

// pageRankDefaults mirrors algorithms.PageRankOptions' defaults.
func pageRankDefaults(opt PageRankOptions) PageRankOptions {
	if opt.Damping == 0 {
		opt.Damping = 0.85
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 100
	}
	return opt
}

// PageRankProgram builds the server-side data-driven PageRank power
// iteration as a loop program over the scalar ops: each iteration
// multiplies the active delta frontier through the column-normalized
// matrix, scales by the damping factor, accumulates into the rank
// vector, prunes converged vertices below the tolerance (the paper's
// "mark vertices inactive as soon as their value converges"), and
// reduces the surviving frontier to an nnz register whose until_below
// exit (< 1, i.e. empty) is the convergence test — all without a
// single client round trip per iteration.
//
// seed is the initial delta vector, (1−α)/n at every vertex (see
// ProgramPageRank); a nil seed produces the stored-procedure form
// binding the invoke argument "seed" and the scalar bindings "damping"
// and "tol", so one registered program serves any (α, tol) pair.
func PageRankProgram(matrix string, opt PageRankOptions, seed *Vector) *Program {
	opt = pageRankDefaults(opt)
	input := ProgramOp{Op: "input", X: seed}
	scale := ProgramOp{Op: "scale", XRef: ref(0)}
	prune := ProgramOp{Op: "prune", XRef: ref(1)}
	if seed == nil {
		input.Param = "seed"
		scale.AlphaRef = "damping"
		prune.AlphaRef = "tol"
	} else {
		damping, tol := opt.Damping, opt.Tol
		scale.Alpha = &damping
		prune.Alpha = &tol
	}
	return &Program{Matrix: matrix, Ops: []ProgramOp{
		input, // $0: delta₀ = (1−α)/n everywhere
		{
			Op:         "loop",
			Emit:       true,                     // final carry 0 = the rank vector
			Carry:      []string{ref(0), ref(0)}, // ^0 ranks, ^1 delta
			MaxIters:   opt.MaxIter,
			Update:     []string{ref(2), ref(3)},
			UntilBelow: ref(4), // exit once the frontier is empty
			Threshold:  1,
			Body: []ProgramOp{
				{XRef: carryRef(1), Desc: Desc{Semiring: "arithmetic", Output: OutputList}}, // $0: y = Â·Δ
				scale, // $1: dv = α·y
				{Op: "union", XRef: carryRef(0), YRef: ref(1)}, // $2: ranks += dv
				prune, // $3: Δ' = {|dv| > tol}
				{Op: "reduce", Reduce: "nnz", XRef: ref(3), Emit: true}, // $4: |Δ'|
			},
		},
	}}
}

// PageRankSeed builds delta₀: (1−α)/n at every vertex. The explicit
// dense-over-support start is what makes the first iteration touch
// every column exactly as the in-process iteration does.
func PageRankSeed(n Index, damping float64) *Vector {
	x := NewVector(n, int(n))
	init := (1 - damping) / float64(n)
	for i := Index(0); i < n; i++ {
		x.Append(i, init)
	}
	return x
}

// DecodePageRankProgramResponse folds a PageRankProgram response into a
// PageRankResult: the per-iteration nnz registers reconstruct
// ActiveCounts (the count fed into iteration k is the count surviving
// iteration k-1, with nnz(delta₀) = n first), and the loop's final
// rank vector is scattered dense and L1-normalized exactly as
// algorithms.PageRank does on return.
func DecodePageRankProgramResponse(resp *ProgramResponse, n Index) (*PageRankResult, error) {
	res := &PageRankResult{Ranks: make([]float64, n)}
	var ranks *Vector
	counts := []int{int(n)}
	for _, r := range resp.Results {
		switch {
		case r.Iter > 0 && r.Scalar != nil:
			counts = append(counts, int(*r.Scalar))
		case r.Iter == 0 && r.Y != nil:
			ranks = r.Y
		}
	}
	if ranks == nil {
		return nil, fmt.Errorf("spmspv: program response missing the rank vector")
	}
	res.Iterations = len(counts) - 1
	res.ActiveCounts = counts[:len(counts)-1]
	for k, i := range ranks.Ind {
		res.Ranks[i] = ranks.Val[k]
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if sum > 0 {
		for i := range res.Ranks {
			res.Ranks[i] /= sum
		}
	}
	return res, nil
}

// ProgramPageRank runs the data-driven PageRank iteration entirely
// server-side as ONE round trip (see PageRankProgram): only delta₀
// goes up and the converged rank vector comes back, versus one
// multiply round trip per iteration for a client-driven loop. matrix
// must name a column-normalized adjacency matrix (see
// algorithms.NormalizeColumns); the result is identical to
// algorithms.PageRank with the same options on the same matrix.
func ProgramPageRank(ex Executor, matrix string, n Index, opt PageRankOptions) (*PageRankResult, error) {
	opt = pageRankDefaults(opt)
	if n == 0 {
		return &PageRankResult{Ranks: []float64{}}, nil
	}
	resp, err := ex.Run(PageRankProgram(matrix, opt, PageRankSeed(n, opt.Damping)))
	if err != nil {
		return nil, err
	}
	return DecodePageRankProgramResponse(resp, n)
}
