// BenchmarkServeCoalesce measures the serving path's request
// coalescing: concurrent single-vector mult requests against one
// matrix, pushed through the full HTTP handler (decode, validate,
// batcher, encode) at batching windows of 1, 4 and 8 requests.
// Window 1 disables coalescing — every request executes alone — so
// the sweep isolates what the shared MultBatch (one bucket
// Estimate/sizing pass per batch instead of per request) buys at the
// service level. EXPERIMENTS.md records the trajectory; CI uploads
// the JSON so cmd/benchcmp gates serving-path regressions like the
// multiply path.
package spmspv_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	spmspv "spmspv"
	"spmspv/internal/testutil"
)

func BenchmarkServeCoalesce(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := spmspv.ErdosRenyi(1<<14, 8, 99)

	// Pre-marshaled request bodies with distinct frontiers, so the
	// benchmark measures serving, not JSON construction — in both wire
	// forms, so the json-vs-binary split is measured on the identical
	// request stream.
	const nBodies = 64
	bodies := make([][]byte, nBodies)
	binBodies := make([][]byte, nBodies)
	// Sparse frontiers (the BFS-round regime): per-call engine setup —
	// the bucket Estimate/sizing pass, workspace checkout — is the
	// dominant cost there, which is exactly what coalescing amortizes.
	for i := range bodies {
		req := &spmspv.Request{
			Matrix: "g",
			X:      testutil.RandomVector(rng, a.NumCols, 16, true),
			Desc:   spmspv.Desc{Semiring: "arithmetic"},
		}
		data, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = data
		var buf bytes.Buffer
		if err := spmspv.EncodeRequestBinary(&buf, req); err != nil {
			b.Fatal(err)
		}
		binBodies[i] = buf.Bytes()
	}

	type dim struct {
		name   string
		batch  int
		bodies [][]byte
		accept string
	}
	var dims []dim
	for _, batch := range []int{1, 4, 8} {
		// The original names stay JSON, so the CI artifact series is
		// continuous; the -binary twins measure the negotiated wire on
		// the same batch sweep.
		dims = append(dims,
			dim{fmt.Sprintf("batch%d", batch), batch, bodies, spmspv.ContentTypeJSON},
			dim{fmt.Sprintf("batch%d-binary", batch), batch, binBodies, spmspv.ContentTypeBinary},
		)
	}

	for _, d := range dims {
		batch, reqBodies, accept := d.batch, d.bodies, d.accept
		b.Run(d.name, func(b *testing.B) {
			// A multi-threaded engine, as a serving host would run: the
			// per-call parallel-section spawn/join is then the dominant
			// per-request setup, and it is paid once per coalesced batch
			// instead of once per request.
			st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(4)))
			if err := st.Put("g", a); err != nil {
				b.Fatal(err)
			}
			if _, err := st.Load("g"); err != nil {
				b.Fatal(err)
			}
			// A short window: concurrent submissions gather within
			// microseconds, while stragglers (the drain at the end of the
			// run) pay at most 100µs before flushing alone.
			srv := spmspv.NewServer(st,
				spmspv.WithBatchSize(batch),
				spmspv.WithBatchWindow(100*time.Microsecond),
			)

			// 8-way concurrent callers regardless of GOMAXPROCS: request
			// concurrency is what fills batching windows, and a serving
			// host is I/O-concurrent even when compute-serial.
			b.SetParallelism(8)
			b.ReportAllocs()
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(worker.Add(1)) * 7919
				for pb.Next() {
					i++
					r := httptest.NewRequest(http.MethodPost, "/v1/mult",
						bytes.NewReader(reqBodies[i%nBodies]))
					r.Header.Set("Accept", accept)
					w := httptest.NewRecorder()
					srv.ServeHTTP(w, r)
					if w.Code != http.StatusOK {
						b.Errorf("HTTP %d: %s", w.Code, w.Body.String())
						return
					}
				}
			})
			b.StopTimer()

			coalesced, batches := srv.BatcherStats()
			if n := int64(b.N); n > 0 {
				b.ReportMetric(float64(coalesced)/float64(n), "coalesced/op")
				_ = batches
			}
		})
	}
}
