package spmspv_test

import (
	"bytes"
	"math"
	"testing"

	spmspv "spmspv"
)

func exampleMatrix(t *testing.T) *spmspv.Matrix {
	t.Helper()
	tr := spmspv.NewTriples(4, 4, 5)
	tr.Append(1, 0, 2)
	tr.Append(2, 0, 3)
	tr.Append(0, 1, 4)
	tr.Append(3, 2, 5)
	tr.Append(3, 3, 6)
	a, err := spmspv.NewMatrix(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPublicAPIQuickstart(t *testing.T) {
	a := exampleMatrix(t)
	x := spmspv.NewVector(4, 2)
	x.Append(0, 10)
	x.Append(2, 1)

	y := spmspv.Multiply(a, x, spmspv.Options{SortOutput: true})
	// y = 10·col0 + 1·col2 = {1: 20, 2: 30, 3: 5}.
	if y.NNZ() != 3 {
		t.Fatalf("nnz(y) = %d, want 3", y.NNZ())
	}
	want := map[spmspv.Index]float64{1: 20, 2: 30, 3: 5}
	for k, i := range y.Ind {
		if y.Val[k] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y.Val[k], want[i])
		}
	}
}

func TestAllAlgorithmsAgreeViaFacade(t *testing.T) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(9), 5)
	x := spmspv.NewVector(a.NumCols, 10)
	for i := spmspv.Index(0); i < 10; i++ {
		x.Append(i*40, float64(i+1))
	}
	algos := []spmspv.Algorithm{
		spmspv.Bucket, spmspv.CombBLASSPA, spmspv.CombBLASHeap,
		spmspv.GraphMat, spmspv.SortBased,
	}
	ref := spmspv.NewWithAlgorithm(a, spmspv.Bucket, spmspv.Options{Threads: 1, SortOutput: true}).
		Multiply(x, spmspv.Arithmetic)
	for _, alg := range algos {
		mu := spmspv.NewWithAlgorithm(a, alg, spmspv.Options{Threads: 4, SortOutput: true})
		if got := mu.Algorithm(); got != alg {
			t.Errorf("Algorithm() = %v, want %v", got, alg)
		}
		y := mu.Multiply(x, spmspv.Arithmetic)
		if !y.EqualValues(ref, 1e-9) {
			t.Errorf("%v disagrees with reference", alg)
		}
		if mu.Counters().Work() == 0 {
			t.Errorf("%v reported no work", alg)
		}
		mu.ResetCounters()
		if mu.Counters().Work() != 0 {
			t.Errorf("%v: ResetCounters did not zero", alg)
		}
	}
}

func TestFacadeMultiplyInto(t *testing.T) {
	a := exampleMatrix(t)
	mu := spmspv.New(a, spmspv.Options{SortOutput: true})
	x := spmspv.NewVector(4, 1)
	x.Append(1, 2)
	y := spmspv.NewVector(0, 0)
	mu.MultiplyInto(x, y, spmspv.Arithmetic)
	if y.NNZ() != 1 || y.Ind[0] != 0 || y.Val[0] != 8 {
		t.Errorf("y = %v %v", y.Ind, y.Val)
	}
	if mu.Matrix() != a {
		t.Error("Matrix() did not return the bound matrix")
	}
}

func TestFacadeMaskedMultiply(t *testing.T) {
	a := exampleMatrix(t)
	x := spmspv.NewVector(4, 1)
	x.Append(0, 1) // y would be {1:2, 2:3}
	mask := spmspv.NewBitVector(4)
	mv := spmspv.NewVector(4, 1)
	mv.Append(1, 1)
	mask.SetFrom(mv)

	for _, alg := range []spmspv.Algorithm{spmspv.Bucket, spmspv.GraphMat} {
		mu := spmspv.NewWithAlgorithm(a, alg, spmspv.Options{SortOutput: true})
		y := spmspv.NewVector(0, 0)
		mu.MultiplyMasked(x, y, spmspv.Arithmetic, mask, false)
		if y.NNZ() != 1 || y.Ind[0] != 1 {
			t.Errorf("%v: masked result %v %v, want {1:2}", alg, y.Ind, y.Val)
		}
		mu.MultiplyMasked(x, y, spmspv.Arithmetic, mask, true)
		if y.NNZ() != 1 || y.Ind[0] != 2 {
			t.Errorf("%v: complement-masked result %v %v, want {2:3}", alg, y.Ind, y.Val)
		}
	}
}

func TestFacadeGraphAlgorithms(t *testing.T) {
	g := spmspv.TriangularMesh(16, 16, 3)
	mu := spmspv.New(g, spmspv.Options{SortOutput: true})

	res := spmspv.BFS(mu, 0)
	if res.Levels[0] != 0 || res.Parents[0] != 0 {
		t.Error("BFS source bookkeeping wrong")
	}
	reached := 0
	for _, l := range res.Levels {
		if l >= 0 {
			reached++
		}
	}
	if reached != int(g.NumCols) {
		t.Errorf("BFS reached %d of %d on a connected mesh", reached, g.NumCols)
	}

	labels := spmspv.ConnectedComponents(mu)
	for _, l := range labels {
		if l != 0 {
			t.Fatal("connected mesh should have a single component rooted at 0")
		}
	}

	mis := spmspv.MaximalIndependentSet(mu, 1)
	if len(mis) != int(g.NumCols) {
		t.Fatal("MIS result wrong length")
	}

	dist := spmspv.SSSP(mu, 0)
	if dist[0] != 0 || math.IsInf(dist[len(dist)-1], 1) {
		t.Error("SSSP distances wrong on connected mesh")
	}

	norm := spmspv.NormalizeColumns(g)
	pr := spmspv.PageRank(spmspv.New(norm, spmspv.Options{}), spmspv.PageRankOptions{})
	var sum float64
	for _, r := range pr.Ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank does not sum to 1: %g", sum)
	}
}

func TestFacadeIO(t *testing.T) {
	a := exampleMatrix(t)
	var buf bytes.Buffer
	if err := spmspv.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := spmspv.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a) {
		t.Error("matrix I/O round trip failed")
	}

	v := spmspv.NewVector(9, 2)
	v.Append(4, 1.25)
	v.Append(8, -3)
	buf.Reset()
	if err := spmspv.WriteVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	vback, err := spmspv.ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !vback.EqualValues(v, 0) {
		t.Error("vector I/O round trip failed")
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g := spmspv.ErdosRenyi(256, 4, 1); g.NumCols != 256 {
		t.Error("ErdosRenyi dimension")
	}
	if g := spmspv.Grid2D(8, 8); g.NNZ() == 0 {
		t.Error("Grid2D empty")
	}
	if g := spmspv.RGG(256, 0.15, 2); g.NNZ() == 0 {
		t.Error("RGG empty")
	}
	s := spmspv.ComputeStats("grid", spmspv.Grid2D(8, 8), 0)
	if s.PseudoDiameter != 14 {
		t.Errorf("8x8 grid pseudo-diameter = %d, want 14", s.PseudoDiameter)
	}
}

func TestMultiplyLeft(t *testing.T) {
	a := exampleMatrix(t)
	mu := spmspv.New(a, spmspv.Options{SortOutput: true})
	// xᵀ·A with x = e_3 picks out row 3 of A: entries at cols 2 and 3.
	x := spmspv.NewVector(4, 1)
	x.Append(3, 1)
	y := mu.MultiplyLeft(x, spmspv.Arithmetic)
	if y.NNZ() != 2 || y.Ind[0] != 2 || y.Val[0] != 5 || y.Ind[1] != 3 || y.Val[1] != 6 {
		t.Errorf("left product = %v %v", y.Ind, y.Val)
	}
	// Second call reuses the cached transpose engine.
	y2 := mu.MultiplyLeft(x, spmspv.Arithmetic)
	if !y2.EqualValues(y, 0) {
		t.Error("cached left engine gave a different result")
	}
}

func TestMultiplyAccum(t *testing.T) {
	a := exampleMatrix(t)
	mu := spmspv.New(a, spmspv.Options{SortOutput: true})
	x := spmspv.NewVector(4, 1)
	x.Append(0, 1) // A·x = {1:2, 2:3}
	accum := spmspv.NewVector(4, 2)
	accum.Append(1, 10)
	accum.Append(3, 7)
	y := mu.MultiplyAccum(x, accum, spmspv.Arithmetic)
	want := spmspv.NewVector(4, 3)
	want.Append(1, 12)
	want.Append(2, 3)
	want.Append(3, 7)
	if !y.EqualValues(want, 0) {
		t.Errorf("accum product = %v %v", y.Ind, y.Val)
	}
	if accum.NNZ() != 2 {
		t.Error("accum input was modified")
	}
}

func TestFacadePermutations(t *testing.T) {
	a := exampleMatrix(t)
	perm := []spmspv.Index{3, 2, 1, 0}
	pa, err := spmspv.PermuteRows(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if pa.At(2, 0) != 2 { // (1,0)=2 moves to row perm[1]... no: (2,0)=3? check (1,0)=2→row 2
		t.Errorf("permuted entry: %g", pa.At(2, 0))
	}
	if _, err := spmspv.PermuteCols(a, perm); err != nil {
		t.Fatal(err)
	}
	if _, err := spmspv.PermuteSymmetric(a, perm); err != nil {
		t.Fatal(err)
	}
	sub, err := spmspv.ExtractColumns(a, []spmspv.Index{1})
	if err != nil || sub.NumCols != 1 {
		t.Fatalf("extract: %v", err)
	}
	if _, err := spmspv.ExtractSubmatrix(a, 0, 2, 0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[spmspv.Algorithm]string{
		spmspv.Bucket:       "SpMSpV-bucket",
		spmspv.CombBLASSPA:  "CombBLAS-SPA",
		spmspv.CombBLASHeap: "CombBLAS-heap",
		spmspv.GraphMat:     "GraphMat",
		spmspv.SortBased:    "SpMSpV-sort",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), want)
		}
	}
	if spmspv.Algorithm(99).String() != "unknown" {
		t.Error("unknown algorithm name")
	}
}
