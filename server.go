package spmspv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// Server is the HTTP transport over a Store — the spmspv-serve
// surface. It mounts:
//
//	POST   /v1/matrices/{name}   upload a matrix (Matrix Market, JSON
//	                             or binary wire form, sniffed)
//	GET    /v1/matrices          list matrices with serving counters
//	GET    /v1/matrices/{name}   one matrix's entry
//	DELETE /v1/matrices/{name}   unregister
//	POST   /v1/mult              execute one Request
//	POST   /v1/program           execute one Program
//
// Concurrent single-vector mult requests against the same matrix (and
// a compatible descriptor) are coalesced into one MultBatch through a
// bounded batching window: the first request in a window waits at most
// BatchWindow for company, and a window flushes early the moment
// BatchSize requests have gathered — so the bucket engine's one
// Estimate/sizing pass (and workspace checkout) is amortized across
// the batch exactly as in the multi-source algorithms, invisible to
// each caller. Requests whose descriptor cannot ride a batch
// (accumulate, per-slot masks, bitmap responses) execute directly.
type Server struct {
	store    ServingStore
	mux      *http.ServeMux
	window   time.Duration
	maxBatch int
	maxBody  int64
	wire     string   // response form when the client expresses no preference
	batchers sync.Map // batch key (string) → *multBatcher
	start    time.Time
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithBatchWindow bounds how long the first request of a coalescing
// window waits for company (default 500µs). Zero disables coalescing.
func WithBatchWindow(d time.Duration) ServerOption {
	return func(s *Server) { s.window = d }
}

// WithBatchSize caps how many requests one MultBatch flush carries
// (default 8); a full window flushes immediately. Values ≤ 1 disable
// coalescing.
func WithBatchSize(n int) ServerOption {
	return func(s *Server) { s.maxBatch = n }
}

// WithMaxBodyBytes caps request body sizes (default 1 GiB — matrix
// uploads are the big ones).
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) { s.maxBody = n }
}

// WithDefaultWire sets the response wire form used when a client
// expresses no preference — no Accept header, or "*/*". Must be
// ContentTypeJSON (the default, so unversioned clients keep working)
// or ContentTypeBinary. A client's explicit Accept always overrides
// this.
func WithDefaultWire(contentType string) ServerOption {
	return func(s *Server) {
		if contentType == ContentTypeBinary {
			s.wire = ContentTypeBinary
		} else {
			s.wire = ContentTypeJSON
		}
	}
}

// ServingStore is the storage/execution backend a Server fronts: the
// single-process *Store or the sharded *ShardedStore coordinator. The
// unexported methods — the pre-validation shapes the coalescing path
// needs and the batch-flush execution hook — keep implementations
// inside this package; everything HTTP-visible rides the exported
// surface.
type ServingStore interface {
	Executor
	Put(name string, a *Matrix) error
	Delete(name string) bool
	Stats(name string) (StoreStat, error)
	StatsAll() []StoreStat

	// The stored-procedure registry surface (see programs.go): both
	// backends embed the same programRegistry, differing only in the
	// mult hook invocations execute under.
	PutProgram(name string, p *Program) (*ProgramStat, error)
	GetProgram(name string) (*Program, error)
	DeleteProgram(name string) bool
	Programs() []ProgramStat
	Invoke(name string, inv *InvokeRequest) (*ProgramResponse, error)

	resolveMult(name string) (nrows, ncols Index, stats *perf.ServeStats, err error)
	multBatch(name string, xs []*Vector, masks []*BitVector, d Desc) ([]*Vector, error)
	health() HealthStatus
}

// NewServer returns the HTTP handler serving st — a *Store for one
// box, a *ShardedStore to coordinate a fleet.
func NewServer(st ServingStore, opts ...ServerOption) *Server {
	s := &Server{
		store:    st,
		window:   500 * time.Microsecond,
		maxBatch: 8,
		maxBody:  1 << 30,
		wire:     ContentTypeJSON,
		start:    time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/matrices/{name}", s.handlePutMatrix)
	s.mux.HandleFunc("GET /v1/matrices", s.handleListMatrices)
	s.mux.HandleFunc("GET /v1/matrices/{name}", s.handleGetMatrix)
	s.mux.HandleFunc("DELETE /v1/matrices/{name}", s.handleDeleteMatrix)
	s.mux.HandleFunc("POST /v1/mult", s.handleMult)
	s.mux.HandleFunc("POST /v1/program", s.handleProgram)
	s.mux.HandleFunc("PUT /v1/programs/{name}", s.handlePutProgram)
	s.mux.HandleFunc("GET /v1/programs", s.handleListPrograms)
	s.mux.HandleFunc("GET /v1/programs/{name}", s.handleGetProgram)
	s.mux.HandleFunc("DELETE /v1/programs/{name}", s.handleDeleteProgram)
	s.mux.HandleFunc("POST /v1/programs/{name}/invoke", s.handleInvoke)
	s.mux.HandleFunc("GET /v1/shards", s.handleShards)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	return s
}

// handleHealth serves the liveness probe: registry sizes, engine
// identity and uptime, in the negotiated wire form (JSON or the SPHL
// binary frame). It must stay cheap — the membership layer polls it at
// the probe interval against every worker.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	wire, ok := s.acceptedWire(r)
	if !ok {
		writeError(w, wireErrorf(CodeNotAcceptable,
			"no supported type in Accept %q (offer %s or %s)",
			r.Header.Get("Accept"), ContentTypeJSON, ContentTypeBinary))
		return
	}
	h := s.store.health()
	h.Status = "ok"
	h.UptimeNS = time.Since(s.start).Nanoseconds()
	if wire == ContentTypeBinary {
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		EncodeHealthBinary(w, &h)
		return
	}
	writeJSON(w, http.StatusOK, &h)
}

// handleShards reports the coordinator's per-shard counters; a
// single-process server answers invalid_request.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.store.(interface{ ShardStats() []ShardStat })
	if !ok {
		writeError(w, wireErrorf(CodeInvalidRequest, "server is not a shard coordinator"))
		return
	}
	writeJSON(w, http.StatusOK, ss.ShardStats())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusOf maps wire error codes to HTTP statuses.
func statusOf(we *WireError) int {
	switch we.Code {
	case CodeUnknownMatrix, CodeUnknownProgram:
		return http.StatusNotFound
	case CodeBadRequest, CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeNotAcceptable:
		return http.StatusNotAcceptable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the error envelope of the matrix-management endpoints
// (mult and program responses carry the error inline instead).
type errorBody struct {
	Err *WireError `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	we := AsWireError(err)
	writeJSON(w, statusOf(we), errorBody{Err: we})
}

func (s *Server) handlePutMatrix(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Reject a bad name before paying for the body: uploads run to a
	// GiB, name validation is microseconds.
	if err := validStoreName(name); err != nil {
		writeError(w, wireErrorf(CodeInvalidRequest, "%v", err))
		return
	}
	a, err := sparse.DecodeMatrix(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		writeError(w, wireErrorf(CodeBadRequest, "decoding matrix: %v", err))
		return
	}
	if err := s.store.Put(name, a); err != nil {
		writeError(w, wireErrorf(CodeInvalidRequest, "%v", err))
		return
	}
	stat, err := s.store.Stats(name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, stat)
}

func (s *Server) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.StatsAll())
}

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	stat, err := s.store.Stats(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, stat)
}

func (s *Server) handleDeleteMatrix(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.Delete(name) {
		writeError(w, wireErrorf(CodeUnknownMatrix, "matrix %q is not registered", name))
		return
	}
	// Evict the matrix's batchers so churn (upload → serve → delete)
	// does not accumulate idle batcher entries forever. A batcher
	// holding in-flight requests still flushes — the timer closure
	// keeps it alive — and simply reports the matrix unknown.
	prefix := name + "|"
	s.batchers.Range(func(key, _ any) bool {
		if strings.HasPrefix(key.(string), prefix) {
			s.batchers.Delete(key)
		}
		return true
	})
	w.WriteHeader(http.StatusNoContent)
}

// acceptedWire negotiates the response wire form from the Accept
// header: the first supported type in listed order wins, "*/*" (and
// "application/*") selects the server default, an absent header
// selects the default, and a header naming no producible type at all
// fails negotiation (406). An element with an explicit q=0 weight is
// "not acceptable" per RFC 9110 — it is excluded rather than offered,
// including from what a wildcard may select.
func (s *Server) acceptedWire(r *http.Request) (string, bool) {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return s.wire, true
	}
	wildcard := false
	var jsonRefused, binRefused bool
	for _, part := range strings.Split(accept, ",") {
		mt, qZero := acceptElem(part)
		switch mt {
		case ContentTypeJSON:
			if qZero {
				jsonRefused = true
				continue
			}
			return ContentTypeJSON, true
		case ContentTypeBinary:
			if qZero {
				binRefused = true
				continue
			}
			return ContentTypeBinary, true
		case "*/*", "application/*":
			if !qZero {
				wildcard = true
			}
		}
	}
	if wildcard {
		if s.wire == ContentTypeBinary && !binRefused {
			return ContentTypeBinary, true
		}
		if !jsonRefused {
			return ContentTypeJSON, true
		}
		if !binRefused {
			return ContentTypeBinary, true
		}
	}
	return "", false
}

// acceptElem splits one Accept element into its media type and whether
// it carries an explicit q=0 weight (in any of its RFC forms: q=0,
// q=0., q=0.000). A malformed q parameter is ignored, leaving the
// element acceptable.
func acceptElem(part string) (mt string, qZero bool) {
	params := strings.Split(part, ";")
	mt = strings.ToLower(strings.TrimSpace(params[0]))
	for _, p := range params[1:] {
		p = strings.TrimSpace(p)
		if len(p) < 2 || (p[0] != 'q' && p[0] != 'Q') || p[1] != '=' {
			continue
		}
		if q, err := strconv.ParseFloat(strings.TrimSpace(p[2:]), 64); err == nil && q == 0 {
			qZero = true
		}
	}
	return mt, qZero
}

// mediaType extracts the lowercase media type from one Accept /
// Content-Type element, dropping parameters (";q=0.9", "; charset=…").
func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// reqReaderPool recycles the buffered readers the mult/program
// handlers sniff and decode request bodies through, subject to the
// same knob as the encode pools (SetWireBufferPooling).
var reqReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 16<<10) }}

func getReqReader(r io.Reader) *bufio.Reader {
	if !WireBufferPoolingEnabled() {
		return bufio.NewReaderSize(r, 16<<10)
	}
	br := reqReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putReqReader(br *bufio.Reader) {
	if WireBufferPoolingEnabled() {
		br.Reset(nil)
		reqReaderPool.Put(br)
	}
}

// writeWire streams v to the client in the negotiated wire form. The
// binary encoders write through a pooled buffered writer straight onto
// the response — no intermediate per-response []byte — and the JSON
// encoder streams likewise.
func writeWire(w http.ResponseWriter, status int, wire string, v any) {
	if wire != ContentTypeBinary {
		writeJSON(w, status, v)
		return
	}
	w.Header().Set("Content-Type", ContentTypeBinary)
	w.WriteHeader(status)
	switch t := v.(type) {
	case *Response:
		EncodeResponseBinary(w, t)
	case *ProgramResponse:
		EncodeProgramResponseBinary(w, t)
	case *Program:
		EncodeProgramBinary(w, t)
	default:
		// Only the two message types above negotiate binary; falling
		// here is a programming error, not a client one.
		json.NewEncoder(w).Encode(v)
	}
}

func (s *Server) handleMult(w http.ResponseWriter, r *http.Request) {
	wire, ok := s.acceptedWire(r)
	if !ok {
		writeMultError(w, ContentTypeJSON, wireErrorf(CodeNotAcceptable,
			"no supported type in Accept %q (offer %s or %s)",
			r.Header.Get("Accept"), ContentTypeJSON, ContentTypeBinary))
		return
	}
	br := getReqReader(http.MaxBytesReader(w, r.Body, s.maxBody))
	req, err := decodeWireRequest(br)
	putReqReader(br)
	if err != nil {
		writeMultError(w, wire, wireErrorf(CodeBadRequest, "%v", err))
		return
	}
	resp, err := s.do(req)
	if err != nil {
		writeMultError(w, wire, err)
		return
	}
	writeWire(w, http.StatusOK, wire, resp)
}

// decodeWireRequest sniffs the body's encoding — the SPRQ envelope
// magic or JSON — and decodes accordingly, so the endpoint accepts
// both forms without a flag, exactly like the matrix upload endpoint.
func decodeWireRequest(br *bufio.Reader) (*Request, error) {
	head, _ := br.Peek(4)
	if string(head) == requestMagic {
		return DecodeRequestBinary(br)
	}
	var req Request
	if err := json.NewDecoder(br).Decode(&req); err != nil {
		return nil, fmt.Errorf("spmspv: decoding request: %w", err)
	}
	return &req, nil
}

// writeMultError writes a mult failure as a Response carrying the
// structured wire error, in the negotiated wire form.
func writeMultError(w http.ResponseWriter, wire string, err error) {
	we := AsWireError(err)
	writeWire(w, statusOf(we), wire, &Response{Err: we})
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	wire, ok := s.acceptedWire(r)
	if !ok {
		writeProgramError(w, ContentTypeJSON, wireErrorf(CodeNotAcceptable,
			"no supported type in Accept %q (offer %s or %s)",
			r.Header.Get("Accept"), ContentTypeJSON, ContentTypeBinary))
		return
	}
	br := getReqReader(http.MaxBytesReader(w, r.Body, s.maxBody))
	p, err := decodeWireProgram(br)
	putReqReader(br)
	if err != nil {
		writeProgramError(w, wire, wireErrorf(CodeBadRequest, "%v", err))
		return
	}
	resp, err := s.store.Run(p)
	if err != nil {
		writeProgramError(w, wire, err)
		return
	}
	writeWire(w, http.StatusOK, wire, resp)
}

// decodeWireProgram sniffs the SPPG envelope magic vs JSON.
func decodeWireProgram(br *bufio.Reader) (*Program, error) {
	head, _ := br.Peek(4)
	if string(head) == programMagic {
		return DecodeProgramBinary(br)
	}
	var p Program
	if err := json.NewDecoder(br).Decode(&p); err != nil {
		return nil, fmt.Errorf("spmspv: decoding program: %w", err)
	}
	return &p, nil
}

func writeProgramError(w http.ResponseWriter, wire string, err error) {
	we := AsWireError(err)
	writeWire(w, statusOf(we), wire, &ProgramResponse{Err: we})
}

// handlePutProgram registers a stored procedure: the body (SPPG or
// JSON, sniffed) is validated AND compiled here, once, so warm invoke
// traffic runs zero program compilations. 201 answers with the
// program's registry stat.
func (s *Server) handlePutProgram(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validRegistryName("program", name); err != nil {
		writeError(w, wireErrorf(CodeInvalidRequest, "%v", err))
		return
	}
	br := getReqReader(http.MaxBytesReader(w, r.Body, s.maxBody))
	p, err := decodeWireProgram(br)
	putReqReader(br)
	if err != nil {
		writeError(w, wireErrorf(CodeBadRequest, "%v", err))
		return
	}
	stat, err := s.store.PutProgram(name, p)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, stat)
}

func (s *Server) handleListPrograms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Programs())
}

// handleGetProgram serves a stored procedure's source form back, in
// the negotiated wire encoding (SPPG or JSON).
func (s *Server) handleGetProgram(w http.ResponseWriter, r *http.Request) {
	wire, ok := s.acceptedWire(r)
	if !ok {
		writeError(w, wireErrorf(CodeNotAcceptable,
			"no supported type in Accept %q (offer %s or %s)",
			r.Header.Get("Accept"), ContentTypeJSON, ContentTypeBinary))
		return
	}
	p, err := s.store.GetProgram(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeWire(w, http.StatusOK, wire, p)
}

func (s *Server) handleDeleteProgram(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.DeleteProgram(name) {
		writeError(w, wireErrorf(CodeUnknownProgram, "program %q is not registered", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleInvoke runs a stored procedure with the request's bindings —
// the warm path the registry exists for: no program on the wire, no
// validation or compilation server-side, just seed vectors in and
// emitted results out, in the negotiated wire form.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	wire, ok := s.acceptedWire(r)
	if !ok {
		writeProgramError(w, ContentTypeJSON, wireErrorf(CodeNotAcceptable,
			"no supported type in Accept %q (offer %s or %s)",
			r.Header.Get("Accept"), ContentTypeJSON, ContentTypeBinary))
		return
	}
	br := getReqReader(http.MaxBytesReader(w, r.Body, s.maxBody))
	inv, err := decodeWireInvoke(br)
	putReqReader(br)
	if err != nil {
		writeProgramError(w, wire, wireErrorf(CodeBadRequest, "%v", err))
		return
	}
	resp, err := s.store.Invoke(r.PathValue("name"), inv)
	if err != nil {
		writeProgramError(w, wire, err)
		return
	}
	writeWire(w, http.StatusOK, wire, resp)
}

// decodeWireInvoke sniffs the SPIV envelope magic vs JSON; an empty
// body is a legitimate invoke with no bindings (a program of literal
// inputs).
func decodeWireInvoke(br *bufio.Reader) (*InvokeRequest, error) {
	head, _ := br.Peek(4)
	if len(head) == 0 {
		return &InvokeRequest{}, nil
	}
	if string(head) == invokeMagic {
		return DecodeInvokeRequestBinary(br)
	}
	var inv InvokeRequest
	if err := json.NewDecoder(br).Decode(&inv); err != nil {
		return nil, fmt.Errorf("spmspv: decoding invoke request: %w", err)
	}
	return &inv, nil
}

// do routes one request: through the coalescing batcher when it
// qualifies, directly through the store otherwise.
func (s *Server) do(req *Request) (*Response, error) {
	if !s.coalescable(req) {
		return s.store.Do(req)
	}
	return s.doCoalesced(req)
}

// coalescable reports whether a request may ride a shared MultBatch:
// single-vector, list-form response, no accumulate (an accumulator
// cannot be shared), with any mask becoming a per-slot batch mask.
func (s *Server) coalescable(req *Request) bool {
	return s.maxBatch > 1 && s.window > 0 &&
		req.X != nil && !req.Desc.Accum && req.Desc.Masks == nil &&
		req.Desc.Output != OutputBitmap
}

// doCoalesced validates the request immediately (so malformed requests
// fail fast and cannot poison a batch), then submits it to the batcher
// for its (matrix, descriptor-compatibility) key.
func (s *Server) doCoalesced(req *Request) (*Response, error) {
	nrows, ncols, stats, err := s.store.resolveMult(req.Matrix)
	if err != nil {
		return nil, err
	}
	t := time.Now()
	if err := req.Validate(nrows, ncols); err != nil {
		stats.Observe(time.Since(t), true)
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	sr, _ := ParseSemiring(req.Desc.Semiring)
	key := fmt.Sprintf("%s|%s|t=%v|c=%v", req.Matrix, strings.ToLower(sr.Name),
		req.Desc.Transpose, req.Desc.Complement)
	bi, _ := s.batchers.LoadOrStore(key, &multBatcher{server: s, matrix: req.Matrix})
	b := bi.(*multBatcher)

	out := b.submit(req.X, req.Desc)
	stats.Observe(time.Since(t), out.err != nil)
	if out.err != nil {
		return nil, out.err
	}
	return &Response{Y: out.y, OutputRep: OutputList.String()}, nil
}

// multBatcher coalesces validated single-vector requests that share a
// batch key into MultBatch flushes. The first pending request arms a
// window timer; reaching the server's batch size flushes immediately.
type multBatcher struct {
	server *Server
	matrix string

	mu      sync.Mutex
	pending []*pendingMult
}

type pendingMult struct {
	x    *Vector
	desc Desc
	done chan batchOut
}

type batchOut struct {
	y   *Vector
	err error
}

// submit enqueues one request and blocks until its slot's result.
func (b *multBatcher) submit(x *Vector, d Desc) batchOut {
	p := &pendingMult{x: x, desc: d, done: make(chan batchOut, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, p)
	n := len(b.pending)
	if n >= b.server.maxBatch {
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		b.flush(batch)
	} else {
		if n == 1 {
			time.AfterFunc(b.server.window, b.flushWindow)
		}
		b.mu.Unlock()
	}
	return <-p.done
}

// flushWindow fires when a window timer expires: it takes whatever has
// gathered (possibly nothing, if a size-triggered flush beat it).
func (b *multBatcher) flushWindow() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// flush executes one gathered batch through the store's multBatch hook
// and delivers each slot's result. The backend resolves the matrix per
// flush, so a matrix replaced in the store between windows is picked
// up; over a sharded backend the whole window rides one scatter.
func (b *multBatcher) flush(batch []*pendingMult) {
	defer func() {
		if r := recover(); r != nil {
			for _, p := range batch {
				p.done <- batchOut{err: wireErrorf(CodeInternal, "batched multiply: %v", r)}
			}
		}
	}()
	xs := make([]*Vector, len(batch))
	masks := make([]*BitVector, len(batch))
	for q, p := range batch {
		xs[q] = p.x
		masks[q] = p.desc.Mask
	}
	ys, err := b.server.store.multBatch(b.matrix, xs, masks, batch[0].desc)
	if err != nil {
		for _, p := range batch {
			p.done <- batchOut{err: err}
		}
		return
	}
	for q, p := range batch {
		p.done <- batchOut{y: ys[q]}
	}
}

// BatcherStats reports process-level coalescing totals summed over
// every matrix: how many requests rode shared batches and how many
// flushes were issued. (Per-matrix splits live on the StoreStats.)
func (s *Server) BatcherStats() (coalesced, batches int64) {
	for _, stat := range s.store.StatsAll() {
		coalesced += stat.Serve.Coalesced
		batches += stat.Serve.Batches
	}
	return
}
