// TestLiveServe drives a REAL spmspv-serve process — not an httptest
// handler — through the Client: upload, BFS-as-one-program, counters,
// delete, once per wire form. It needs a running server and is skipped
// unless SPMSPV_SERVE_URL points at one; CI boots `spmspv-serve` and
// runs exactly this test against it, covering the binary's flag
// plumbing, the real TCP transport and graceful lifecycle that
// in-process tests cannot see.
//
//	spmspv-serve -addr 127.0.0.1:18090 &
//	SPMSPV_SERVE_URL=http://127.0.0.1:18090 go test -run TestLiveServe .
package spmspv_test

import (
	"os"
	"testing"

	spmspv "spmspv"
)

func TestLiveServe(t *testing.T) {
	url := os.Getenv("SPMSPV_SERVE_URL")
	if url == "" {
		t.Skip("SPMSPV_SERVE_URL not set; run against a live spmspv-serve to enable")
	}
	// Once per wire form: the JSON run pins the compatibility path an
	// unversioned client sees, the binary run the negotiated fast path.
	for _, wire := range []string{"json", "binary"} {
		t.Run(wire, func(t *testing.T) {
			ct := spmspv.ContentTypeJSON
			if wire == "binary" {
				ct = spmspv.ContentTypeBinary
			}
			liveServeOnce(t, url, "live-test-grid-"+wire, spmspv.NewClient(url, spmspv.WithWire(ct)))
		})
	}
}

func liveServeOnce(t *testing.T, url, name string, c *spmspv.Client) {
	// The server may have preloaded matrices; the test uploads its own
	// so it is self-contained.
	a := spmspv.Grid2D(24, 24)
	if _, err := c.PutMatrix(name, a); err != nil {
		t.Fatalf("uploading to %s: %v", url, err)
	}
	defer func() {
		if err := c.DeleteMatrix(name); err != nil {
			t.Errorf("cleanup delete: %v", err)
		}
	}()

	stats, err := c.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range stats {
		if s.Name == name {
			found = true
			if s.NNZ != a.NNZ() {
				t.Errorf("uploaded nnz %d, want %d", s.NNZ, a.NNZ())
			}
		}
	}
	if !found {
		t.Fatalf("uploaded matrix missing from %v", stats)
	}

	// Whole multi-level BFS in one program round trip, versus the
	// in-process result on the identical matrix.
	mu, err := spmspv.NewMultiplier(a)
	if err != nil {
		t.Fatal(err)
	}
	want := spmspv.BFS(mu, 0)
	got, err := c.BFS(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareBFS(t, "live", got, want)

	// The grid's diameter means a real multi-level search ran.
	if len(want.FrontierSizes) < 10 {
		t.Fatalf("grid BFS only had %d levels; test graph too easy", len(want.FrontierSizes))
	}

	// The serving counters saw the program's multiplies.
	stat, err := c.Matrix(name)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Serve.Requests < int64(len(want.FrontierSizes)) {
		t.Errorf("served requests %d < BFS levels %d", stat.Serve.Requests, len(want.FrontierSizes))
	}
}
