// Command graphgen generates the synthetic test graphs of the Table IV
// stand-in suite and writes them as Matrix Market files.
//
// Usage:
//
//	graphgen -list
//	graphgen -problem rmat-ljournal -scale 16 -out ljournal.mtx
//	graphgen -problem all -scale 12 -outdir ./graphs
//
// Every generated file is accompanied by a stats line (vertices, edges,
// average degree, pseudo-diameter) matching Table IV's columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spmspv/internal/graphgen"
	"spmspv/internal/sparse"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available problems and exit")
		problem = flag.String("problem", "", "problem name from -list, or 'all'")
		scale   = flag.Int("scale", 14, "log2 of vertex count")
		out     = flag.String("out", "", "output .mtx path (single problem)")
		outdir  = flag.String("outdir", ".", "output directory (with -problem all)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-20s %-14s %s\n", "NAME", "STANDS IN FOR", "CLASS", "DESCRIPTION")
		for _, p := range graphgen.Problems() {
			fmt.Printf("%-20s %-20s %-14s %s\n", p.Name, p.PaperName, p.Class, p.Description)
		}
		return
	}
	if *problem == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *problem == "all" {
		for _, p := range graphgen.Problems() {
			path := filepath.Join(*outdir, fmt.Sprintf("%s-s%d.mtx", p.Name, *scale))
			emit(p, *scale, path)
		}
		return
	}
	p, ok := graphgen.FindProblem(*problem)
	if !ok {
		fmt.Fprintf(os.Stderr, "graphgen: unknown problem %q (try -list)\n", *problem)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-s%d.mtx", p.Name, *scale)
	}
	emit(p, *scale, path)
}

func emit(p graphgen.Problem, scale int, path string) {
	a := p.Build(scale)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := sparse.WriteMatrixMarket(f, a); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	s := sparse.ComputeStats(p.Name, a, 0)
	fmt.Printf("%s: n=%d nnz=%d avg-degree=%.2f pseudo-diameter=%d → %s\n",
		p.Name, s.Vertices, s.Edges, s.AvgDegree, s.PseudoDiameter, path)
}
