// Command spmspv-serve serves the SpMSpV engine layer over HTTP: a
// matrix registry with one cached, shared engine per matrix, the
// single-multiply endpoint with request coalescing, and the multi-op
// program endpoint that runs whole frontier loops (a BFS, a k-step
// walk) server-side.
//
// Usage:
//
//	spmspv-serve -addr :8090 -preload web=graph.mtx -preload rmat=r.spmb \
//	             [-engine hybrid] [-threads 4] [-par-workers 8] [-batch-window 500us] [-batch-size 8]
//
// Sharded serving: -shards promotes the process to a scatter/gather
// coordinator over row-range shard backends — either N fresh
// in-process stores (-shards 3) or remote spmspv-serve workers
// (-shards http://h1:8090,http://h2:8090). Uploads are row-sliced
// across the backends and every multiply fans out in parallel, each
// shard computing its row range of y; GET /v1/shards reports
// per-replica counters and health states. -shard-of i/n runs a worker
// that preloads only its own row slice, so a coordinator pointed at
// the workers discovers the decomposition without re-uploading:
//
//	spmspv-serve -addr :8091 -shard-of 0/2 -preload web=graph.mtx &
//	spmspv-serve -addr :8092 -shard-of 1/2 -preload web=graph.mtx &
//	spmspv-serve -addr :8090 -shards http://localhost:8091,http://localhost:8092
//
// Replication: each row band may be served by a group of identical
// replicas. -replicas R folds the backend list into groups of R
// consecutive backends; "|" inside the -shards URL list groups
// replicas explicitly (and allows ragged groups):
//
//	spmspv-serve -addr :8090 -replicas 2 -shards 4           # 2 bands × 2 replicas, in-process
//	spmspv-serve -addr :8090 -shards "http://a:1|http://a:2,http://b:1|http://b:2"
//
// Uploads fan every band's piece to all of its replicas; reads pick
// the preferred alive replica and fail over WITHIN the same dispatch
// round when one dies, so killing one replica of an R≥2 group costs a
// counted failover and zero retry rounds. The coordinator
// health-checks workers over GET /v1/health at -probe-interval,
// classifying each alive → suspect → dead; /v1/shards reports the
// states, and serving traffic feeds the same state machine even with
// probing disabled.
//
// Preloaded matrices accept Matrix Market, JSON-wire or binary-wire
// files (sniffed); more matrices can be uploaded at runtime:
//
//	curl -X POST --data-binary @graph.mtx localhost:8090/v1/matrices/web
//	curl localhost:8090/v1/matrices
//	curl -X POST -d '{"matrix":"web","x":{"N":4,"Ind":[0],"Val":[1],"Sorted":true},
//	                  "desc":{"semiring":"arithmetic"}}' localhost:8090/v1/mult
//
// Concurrent single-vector requests against the same matrix coalesce
// into batched multiplies (bounded by -batch-window / -batch-size);
// per-matrix request, coalescing and latency counters are reported on
// GET /v1/matrices and logged at shutdown. SIGINT/SIGTERM drain
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	spmspv "spmspv"
)

// preloads collects repeated -preload name=path flags.
type preloads []struct{ name, path string }

func (p *preloads) String() string { return fmt.Sprint(*p) }

func (p *preloads) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var pre preloads
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		engName    = flag.String("engine", "bucket", strings.Join(spmspv.EngineNames(), ", "))
		threads    = flag.Int("threads", 0, "worker threads per multiply (0 = GOMAXPROCS)")
		parWorkers = flag.Int("par-workers", -1,
			"process-wide executor pool workers shared by all multiplies (-1 = default GOMAXPROCS-1, 0 = run every multiply inline)")
		window = flag.Duration("batch-window", 500*time.Microsecond,
			"how long the first request of a coalescing window waits for company (0 disables)")
		batch = flag.Int("batch-size", 8, "max requests per coalesced MultBatch (≤1 disables)")
		wire  = flag.String("wire", "json",
			"default response wire form (json, binary) when a request has no Accept preference")
		cachePath = flag.String("calibration-cache", spmspv.DefaultCalibrationCachePath(),
			"hybrid threshold cache file (empty disables persistence)")
		recalibrate = flag.Bool("recalibrate", false,
			"re-run hybrid threshold calibration even on a cache hit")
		maxBitmap = flag.Int64("max-bitmap-dim", 0,
			"largest bitmap (mask) dimension request decoding will materialize (0 = built-in default)")
		shards = flag.String("shards", "",
			"serve as a shard coordinator: an integer N for N in-process shards, or comma-separated worker base URLs ('|' groups replicas of one band)")
		shardOf = flag.String("shard-of", "",
			"serve as shard worker i of n (\"i/n\"): preloads are row-sliced to this worker's piece")
		shardRetries = flag.Int("shard-retries", 2,
			"retries per failed shard call before the request fails (coordinator mode)")
		shardTimeout = flag.Duration("shard-timeout", 30*time.Second,
			"per-attempt deadline for one shard call (coordinator mode, 0 disables)")
		replicas = flag.Int("replicas", 1,
			"replicas per row band: folds the -shards backend list into groups of this size (coordinator mode)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second,
			"background health-probe period against shard workers (coordinator mode, 0 disables probing)")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second,
			"per-probe deadline for one worker health check (coordinator mode)")
	)
	flag.Var(&pre, "preload", "name=path matrix to load at boot (repeatable)")
	flag.Parse()

	alg, ok := spmspv.ParseAlgorithm(*engName)
	if !ok {
		log.Fatalf("spmspv-serve: unknown engine %q (have: %s)", *engName, strings.Join(spmspv.EngineNames(), ", "))
	}
	if *maxBitmap != 0 {
		spmspv.SetMaxBitmapDim(*maxBitmap)
	}
	if *parWorkers >= 0 {
		spmspv.SetExecutorWorkers(*parWorkers)
	}
	var defaultWire string
	switch *wire {
	case "json":
		defaultWire = spmspv.ContentTypeJSON
	case "binary":
		defaultWire = spmspv.ContentTypeBinary
	default:
		log.Fatalf("spmspv-serve: unknown wire form %q (want json or binary)", *wire)
	}

	if *shards != "" && *shardOf != "" {
		log.Fatalf("spmspv-serve: -shards (coordinator) and -shard-of (worker) are mutually exclusive")
	}
	storeOpts := []spmspv.Option{
		spmspv.WithAlgorithm(alg),
		spmspv.WithThreads(*threads),
		spmspv.WithSortOutput(true),
		spmspv.WithCalibrationCache(*cachePath, *recalibrate),
	}

	var backend spmspv.ServingStore
	switch {
	case *shards != "":
		ss, err := buildCoordinator(*shards, storeOpts, coordConfig{
			retries:       *shardRetries,
			timeout:       *shardTimeout,
			replicas:      *replicas,
			probeInterval: *probeInterval,
			probeTimeout:  *probeTimeout,
		})
		if err != nil {
			log.Fatalf("spmspv-serve: %v", err)
		}
		defer ss.Close()
		for _, p := range pre {
			a, err := spmspv.ReadMatrixFile(p.path)
			if err != nil {
				log.Fatalf("spmspv-serve: preloading %s: %v", p.name, err)
			}
			if err := ss.Put(p.name, a); err != nil {
				log.Fatalf("spmspv-serve: sharding %s: %v", p.name, err)
			}
			log.Printf("spmspv-serve: preloaded %s across %d shards (%dx%d, %d nnz)",
				p.name, ss.Shards(), a.NumRows, a.NumCols, a.NNZ())
		}
		backend = ss
	default:
		store := spmspv.NewStore(storeOpts...)
		piece, npieces, err := parseShardOf(*shardOf)
		if err != nil {
			log.Fatalf("spmspv-serve: %v", err)
		}
		for _, p := range pre {
			if npieces > 0 {
				// Worker mode: register only this worker's row slice, so a
				// coordinator discovers the decomposition instead of
				// re-uploading it.
				a, err := spmspv.ReadMatrixFile(p.path)
				if err != nil {
					log.Fatalf("spmspv-serve: preloading %s: %v", p.name, err)
				}
				bounds := spmspv.PieceBounds(a.NumRows, npieces)
				lo, hi := bounds[piece], bounds[piece+1]
				if hi <= lo {
					log.Printf("spmspv-serve: %s piece %d/%d is empty, not registered", p.name, piece, npieces)
					continue
				}
				if err := store.Put(p.name, spmspv.RowSlice(a, lo, hi)); err != nil {
					log.Fatalf("spmspv-serve: preloading %s: %v", p.name, err)
				}
			} else if err := store.PutFile(p.name, p.path); err != nil {
				log.Fatalf("spmspv-serve: preloading %s: %v", p.name, err)
			}
			// Build the engine (and any hybrid calibration) at boot rather
			// than on the first request.
			mu, err := store.Load(p.name)
			if err != nil {
				log.Fatalf("spmspv-serve: building engine for %s: %v", p.name, err)
			}
			log.Printf("spmspv-serve: preloaded %s: %s (engine %s)", p.name, mu.Matrix(), alg)
		}
		backend = store
	}

	srv := spmspv.NewServer(backend,
		spmspv.WithBatchWindow(*window),
		spmspv.WithBatchSize(*batch),
		spmspv.WithDefaultWire(defaultWire),
	)
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spmspv-serve: listening on %s (engine %s, batch window %v, batch size %d)",
			*addr, alg, *window, *batch)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("spmspv-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("spmspv-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("spmspv-serve: shutdown: %v", err)
		}
	}

	for _, stat := range backend.StatsAll() {
		s := stat.Serve
		log.Printf("spmspv-serve: %s: %d requests (%d failed), %d coalesced in %d batches, avg %v max %v",
			stat.Name, s.Requests, s.Failures, s.Coalesced, s.Batches,
			time.Duration(s.AvgLatencyNS), time.Duration(s.MaxLatencyNS))
	}
	for _, stat := range backend.Programs() {
		s := stat.Serve
		log.Printf("spmspv-serve: program %s (%d ops): %d invokes (%d failed), avg %v max %v",
			stat.Name, stat.Ops, s.Requests, s.Failures,
			time.Duration(s.AvgLatencyNS), time.Duration(s.MaxLatencyNS))
	}
	if ss, ok := backend.(*spmspv.ShardedStore); ok {
		for _, st := range ss.ShardStats() {
			s := st.Serve
			log.Printf("spmspv-serve: shard %d replica %d (%s, %s, epoch %d): %d requests (%d failed), %d retries, %d failovers, %d probe failures, avg %v max %v",
				st.Shard, st.Replica, st.Addr, st.State, st.MemberEpoch,
				s.Requests, s.Failures, s.Retries, s.Failovers, st.ProbeFailures,
				time.Duration(s.AvgLatencyNS), time.Duration(s.MaxLatencyNS))
		}
	}
}

// coordConfig carries the coordinator-mode flags into buildCoordinator.
type coordConfig struct {
	retries       int
	timeout       time.Duration
	replicas      int
	probeInterval time.Duration
	probeTimeout  time.Duration
}

// buildCoordinator interprets the -shards flag: a bare integer N spins
// up N in-process bands (-replicas stores each); anything else is a
// comma-separated list of worker base URLs reached over HTTP, where
// "|" groups the replicas of one band (a flat list folds into groups
// of -replicas consecutive URLs).
func buildCoordinator(spec string, storeOpts []spmspv.Option, cfg coordConfig) (*spmspv.ShardedStore, error) {
	shardOpts := []spmspv.ShardOption{
		spmspv.WithShardRetries(cfg.retries),
		spmspv.WithShardTimeout(cfg.timeout),
		spmspv.WithReplication(cfg.replicas),
		spmspv.WithProbeInterval(cfg.probeInterval),
		spmspv.WithProbeTimeout(cfg.probeTimeout),
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-shards %d: want at least one shard", n)
		}
		return spmspv.NewLocalShardedStore(n, storeOpts, shardOpts...)
	}
	if strings.Contains(spec, "|") {
		// Explicit replica groups: bands split on ",", replicas on "|".
		var groups [][]spmspv.ShardBackend
		var labels []string
		for _, band := range strings.Split(spec, ",") {
			var g []spmspv.ShardBackend
			for _, u := range strings.Split(band, "|") {
				u = strings.TrimSpace(u)
				if u == "" {
					continue
				}
				g = append(g, spmspv.NewClient(u, spmspv.WithTimeout(cfg.timeout)))
				labels = append(labels, u)
			}
			if len(g) > 0 {
				groups = append(groups, g)
			}
		}
		if len(groups) == 0 {
			return nil, fmt.Errorf("-shards %q: no worker URLs", spec)
		}
		return spmspv.NewReplicatedShardedStore(groups,
			append(shardOpts, spmspv.WithShardLabels(labels))...)
	}
	urls := strings.Split(spec, ",")
	backends := make([]spmspv.ShardBackend, 0, len(urls))
	labels := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		backends = append(backends, spmspv.NewClient(u, spmspv.WithTimeout(cfg.timeout)))
		labels = append(labels, u)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("-shards %q: no worker URLs", spec)
	}
	return spmspv.NewShardedStore(backends, append(shardOpts, spmspv.WithShardLabels(labels))...)
}

// parseShardOf parses the -shard-of "i/n" worker spec. An empty spec
// returns npieces 0 (not a shard worker).
func parseShardOf(spec string) (piece, npieces int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard-of %q: want i/n", spec)
	}
	piece, err = strconv.Atoi(strings.TrimSpace(is))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard-of %q: %v", spec, err)
	}
	npieces, err = strconv.Atoi(strings.TrimSpace(ns))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard-of %q: %v", spec, err)
	}
	if npieces < 1 || piece < 0 || piece >= npieces {
		return 0, 0, fmt.Errorf("-shard-of %q: want 0 <= i < n", spec)
	}
	return piece, npieces, nil
}
