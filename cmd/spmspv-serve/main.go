// Command spmspv-serve serves the SpMSpV engine layer over HTTP: a
// matrix registry with one cached, shared engine per matrix, the
// single-multiply endpoint with request coalescing, and the multi-op
// program endpoint that runs whole frontier loops (a BFS, a k-step
// walk) server-side.
//
// Usage:
//
//	spmspv-serve -addr :8090 -preload web=graph.mtx -preload rmat=r.spmb \
//	             [-engine hybrid] [-threads 4] [-par-workers 8] [-batch-window 500us] [-batch-size 8]
//
// Preloaded matrices accept Matrix Market, JSON-wire or binary-wire
// files (sniffed); more matrices can be uploaded at runtime:
//
//	curl -X POST --data-binary @graph.mtx localhost:8090/v1/matrices/web
//	curl localhost:8090/v1/matrices
//	curl -X POST -d '{"matrix":"web","x":{"N":4,"Ind":[0],"Val":[1],"Sorted":true},
//	                  "desc":{"semiring":"arithmetic"}}' localhost:8090/v1/mult
//
// Concurrent single-vector requests against the same matrix coalesce
// into batched multiplies (bounded by -batch-window / -batch-size);
// per-matrix request, coalescing and latency counters are reported on
// GET /v1/matrices and logged at shutdown. SIGINT/SIGTERM drain
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	spmspv "spmspv"
)

// preloads collects repeated -preload name=path flags.
type preloads []struct{ name, path string }

func (p *preloads) String() string { return fmt.Sprint(*p) }

func (p *preloads) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var pre preloads
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		engName    = flag.String("engine", "bucket", strings.Join(spmspv.EngineNames(), ", "))
		threads    = flag.Int("threads", 0, "worker threads per multiply (0 = GOMAXPROCS)")
		parWorkers = flag.Int("par-workers", -1,
			"process-wide executor pool workers shared by all multiplies (-1 = default GOMAXPROCS-1, 0 = run every multiply inline)")
		window = flag.Duration("batch-window", 500*time.Microsecond,
			"how long the first request of a coalescing window waits for company (0 disables)")
		batch = flag.Int("batch-size", 8, "max requests per coalesced MultBatch (≤1 disables)")
		wire  = flag.String("wire", "json",
			"default response wire form (json, binary) when a request has no Accept preference")
		cachePath = flag.String("calibration-cache", spmspv.DefaultCalibrationCachePath(),
			"hybrid threshold cache file (empty disables persistence)")
		recalibrate = flag.Bool("recalibrate", false,
			"re-run hybrid threshold calibration even on a cache hit")
		maxBitmap = flag.Int64("max-bitmap-dim", 0,
			"largest bitmap (mask) dimension request decoding will materialize (0 = built-in default)")
	)
	flag.Var(&pre, "preload", "name=path matrix to load at boot (repeatable)")
	flag.Parse()

	alg, ok := spmspv.ParseAlgorithm(*engName)
	if !ok {
		log.Fatalf("spmspv-serve: unknown engine %q (have: %s)", *engName, strings.Join(spmspv.EngineNames(), ", "))
	}
	if *maxBitmap != 0 {
		spmspv.SetMaxBitmapDim(*maxBitmap)
	}
	if *parWorkers >= 0 {
		spmspv.SetExecutorWorkers(*parWorkers)
	}
	var defaultWire string
	switch *wire {
	case "json":
		defaultWire = spmspv.ContentTypeJSON
	case "binary":
		defaultWire = spmspv.ContentTypeBinary
	default:
		log.Fatalf("spmspv-serve: unknown wire form %q (want json or binary)", *wire)
	}

	store := spmspv.NewStore(
		spmspv.WithAlgorithm(alg),
		spmspv.WithThreads(*threads),
		spmspv.WithSortOutput(true),
		spmspv.WithCalibrationCache(*cachePath, *recalibrate),
	)
	for _, p := range pre {
		if err := store.PutFile(p.name, p.path); err != nil {
			log.Fatalf("spmspv-serve: preloading %s: %v", p.name, err)
		}
		// Build the engine (and any hybrid calibration) at boot rather
		// than on the first request.
		mu, err := store.Load(p.name)
		if err != nil {
			log.Fatalf("spmspv-serve: building engine for %s: %v", p.name, err)
		}
		log.Printf("spmspv-serve: preloaded %s: %s (engine %s)", p.name, mu.Matrix(), alg)
	}

	srv := spmspv.NewServer(store,
		spmspv.WithBatchWindow(*window),
		spmspv.WithBatchSize(*batch),
		spmspv.WithDefaultWire(defaultWire),
	)
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("spmspv-serve: listening on %s (engine %s, batch window %v, batch size %d)",
			*addr, alg, *window, *batch)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("spmspv-serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("spmspv-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("spmspv-serve: shutdown: %v", err)
		}
	}

	for _, stat := range store.StatsAll() {
		s := stat.Serve
		log.Printf("spmspv-serve: %s: %d requests (%d failed), %d coalesced in %d batches, avg %v max %v",
			stat.Name, s.Requests, s.Failures, s.Coalesced, s.Batches,
			time.Duration(s.AvgLatencyNS), time.Duration(s.MaxLatencyNS))
	}
}
