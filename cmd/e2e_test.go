// End-to-end tests for the command-line tools: each binary is built
// once into a temp dir and exercised on real files, validating the
// plumbing (flags, I/O formats, exit codes) that unit tests cannot see.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every command once per test binary invocation.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"spmspv", "spmspv-bench", "graphgen", "graphalgo"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./"+tool)
		cmd.Dir = mustSelfDir(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, b)
		}
	}
	return dir
}

// mustSelfDir returns the cmd/ directory containing this test file.
func mustSelfDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout: %s\nstderr: %s",
			filepath.Base(bin), args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries; skipped in -short")
	}
	bins := buildTools(t)
	work := t.TempDir()

	// 1. graphgen -list names all 11 Table IV stand-ins.
	out, _ := run(t, filepath.Join(bins, "graphgen"), "-list")
	if !strings.Contains(out, "rmat-ljournal") || !strings.Contains(out, "rgg") {
		t.Fatalf("graphgen -list output missing problems:\n%s", out)
	}

	// 2. graphgen writes a Matrix Market file with stats.
	mtx := filepath.Join(work, "g.mtx")
	out, _ = run(t, filepath.Join(bins, "graphgen"),
		"-problem", "grid5-g3circuit", "-scale", "8", "-out", mtx)
	if !strings.Contains(out, "pseudo-diameter") {
		t.Fatalf("graphgen stats missing:\n%s", out)
	}
	if fi, err := os.Stat(mtx); err != nil || fi.Size() == 0 {
		t.Fatalf("matrix file not written: %v", err)
	}

	// 3. spmspv multiplies the generated matrix by a vector.
	vec := filepath.Join(work, "x.txt")
	if err := os.WriteFile(vec, []byte("256 2\n0 1.0\n100 2.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	yPath := filepath.Join(work, "y.txt")
	_, stderr := run(t, filepath.Join(bins, "spmspv"),
		"-matrix", mtx, "-vector", vec, "-out", yPath, "-algorithm", "bucket")
	if !strings.Contains(stderr, "SpMSpV-bucket") {
		t.Fatalf("spmspv summary missing:\n%s", stderr)
	}
	y, err := os.ReadFile(yPath)
	if err != nil || len(y) == 0 {
		t.Fatalf("result vector not written: %v", err)
	}
	// Engines must agree on the same input.
	yPath2 := filepath.Join(work, "y2.txt")
	run(t, filepath.Join(bins, "spmspv"),
		"-matrix", mtx, "-vector", vec, "-out", yPath2, "-algorithm", "combblas-heap")
	y2, err := os.ReadFile(yPath2)
	if err != nil {
		t.Fatal(err)
	}
	if string(y) != string(y2) {
		t.Error("bucket and heap CLI runs disagree")
	}

	// 4. graphalgo runs BFS and components on the same file.
	out, _ = run(t, filepath.Join(bins, "graphalgo"),
		"-matrix", mtx, "-algo", "bfs", "-source", "0")
	if !strings.Contains(out, "reached 256 of 256") {
		t.Fatalf("graphalgo bfs output:\n%s", out)
	}
	out, _ = run(t, filepath.Join(bins, "graphalgo"), "-matrix", mtx, "-algo", "components")
	if !strings.Contains(out, "1 components") {
		t.Fatalf("graphalgo components output:\n%s", out)
	}

	// 5. spmspv-bench runs a small experiment end to end.
	out, _ = run(t, filepath.Join(bins, "spmspv-bench"),
		"-experiment", "table4", "-scale", "8", "-threads", "1,2", "-reps", "1")
	if !strings.Contains(out, "Table IV") || !strings.Contains(out, "rmat-ljournal") {
		t.Fatalf("spmspv-bench table4 output:\n%s", out)
	}
}
