// Command spmspv multiplies a Matrix Market matrix by a sparse vector
// and writes the result: y ← A·x.
//
// Usage:
//
//	spmspv -matrix A.mtx -vector x.txt [-algorithm bucket] [-threads 4] \
//	       [-semiring arithmetic] [-out y.txt]
//
// The vector file format is a "n nnz" header line followed by
// "index value" lines (0-based). With -out omitted the result goes to
// stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	spmspv "spmspv"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "Matrix Market file (required)")
		vectorPath = flag.String("vector", "", "sparse vector file (required)")
		outPath    = flag.String("out", "", "output path (default stdout)")
		algName    = flag.String("algorithm", "bucket", strings.Join(spmspv.EngineNames(), ", "))
		srName     = flag.String("semiring", "arithmetic", strings.Join(spmspv.SemiringNames(), ", "))
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		cachePath  = flag.String("calibration-cache", spmspv.DefaultCalibrationCachePath(),
			"hybrid threshold cache file (empty disables persistence)")
		recalibrate = flag.Bool("recalibrate", false,
			"re-run hybrid threshold calibration even on a cache hit")
	)
	flag.Parse()
	if *matrixPath == "" || *vectorPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	alg, ok := spmspv.ParseAlgorithm(*algName)
	if !ok {
		fatal("unknown algorithm %q (have: %s)", *algName, strings.Join(spmspv.EngineNames(), ", "))
	}
	sr, ok := spmspv.ParseSemiring(*srName)
	if !ok {
		fatal("unknown semiring %q (have: %s)", *srName, strings.Join(spmspv.SemiringNames(), ", "))
	}

	// The matrix goes through the serving layer's store: one loader
	// (Matrix Market, JSON-wire or binary-wire files all work) and one
	// file→matrix→engine setup path shared with graphalgo and
	// spmspv-serve.
	st := spmspv.NewStore(
		spmspv.WithAlgorithm(alg),
		spmspv.WithThreads(*threads),
		spmspv.WithSortOutput(true),
		spmspv.WithCalibrationCache(*cachePath, *recalibrate),
	)
	if err := st.PutFile("matrix", *matrixPath); err != nil {
		fatal("reading matrix: %v", err)
	}
	mu, err := st.Load("matrix")
	if err != nil {
		fatal("%v", err)
	}
	a := mu.Matrix()

	vf, err := os.Open(*vectorPath)
	if err != nil {
		fatal("%v", err)
	}
	defer vf.Close()
	// DecodeVector sniffs the encoding — binary SPVB, JSON, or the
	// "index value" text form — so any wire dump works as input.
	x, err := spmspv.DecodeVector(vf)
	if err != nil {
		fatal("reading vector: %v", err)
	}
	if x.N != a.NumCols {
		fatal("dimension mismatch: matrix is %dx%d, vector has dimension %d",
			a.NumRows, a.NumCols, x.N)
	}
	// One descriptor-driven multiply; the result is read from the
	// output frontier's list.
	yf := spmspv.NewOutputFrontier(a.NumRows)
	mu.Mult(spmspv.NewFrontier(x), yf, sr, spmspv.Desc{Output: spmspv.OutputList})
	y := yf.List()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		out = f
	}
	if err := spmspv.WriteVector(out, y); err != nil {
		fatal("writing result: %v", err)
	}
	fmt.Fprintf(os.Stderr, "spmspv: %s × x (nnz=%d) → y (nnz=%d) using %s over %s\n",
		a.String(), x.NNZ(), y.NNZ(), alg, sr.Name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spmspv: "+format+"\n", args...)
	os.Exit(1)
}
