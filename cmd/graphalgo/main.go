// Command graphalgo runs the SpMSpV-based graph algorithms on a Matrix
// Market adjacency matrix.
//
// Usage:
//
//	graphalgo -matrix graph.mtx -algo bfs -source 0
//	graphalgo -matrix graph.mtx -algo bfsmasked -source 0
//	graphalgo -matrix graph.mtx -algo multibfs -sources 0,7,42
//	graphalgo -matrix graph.mtx -algo multibfsmasked -sources 0,7,42
//	graphalgo -matrix graph.mtx -algo components
//	graphalgo -matrix graph.mtx -algo pagerank
//	graphalgo -matrix graph.mtx -algo mis
//	graphalgo -matrix graph.mtx -algo sssp -source 0
//	graphalgo -matrix graph.mtx -algo cluster -source 0
//	graphalgo -matrix graph.mtx -algo multicluster -sources 0,7,42
//
// The SpMSpV engine is selectable with -engine, as in the paper's
// comparisons; the accepted names for -algo and -engine are derived
// from the algorithm table and the engine registry, so newly
// registered algorithms and engines appear in the help automatically.
// multibfs and multicluster run all their searches/seeds through the
// engine's batched multiply; bfsmasked pushes the visited filter into
// the multiply and pipelines each level's output frontier back as the
// next input.
//
// The hybrid engine's calibrated switch threshold is cached on disk
// per matrix fingerprint (-calibration-cache, default under the user
// cache dir); -recalibrate forces the probe multiplies to re-run.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	spmspv "spmspv"
)

// runCtx hands one algorithm runner everything main resolved.
type runCtx struct {
	st      *spmspv.Store
	mu      *spmspv.Multiplier
	a       *spmspv.Matrix
	alg     spmspv.Algorithm
	source  spmspv.Index
	sources []spmspv.Index
	topK    int
}

// algoEntry pairs an -algo name with its runner; the table is the
// single source of the dispatch, the flag help, and whether the
// algorithm consumes the -sources list.
type algoEntry struct {
	name         string
	run          func(*runCtx)
	needsSources bool
}

var algoTable = []algoEntry{
	{name: "bfs", run: runBFS},
	{name: "bfsmasked", run: runBFSMasked},
	{name: "multibfs", run: runMultiBFS, needsSources: true},
	{name: "multibfsmasked", run: runMultiBFSMasked, needsSources: true},
	{name: "components", run: runComponents},
	{name: "pagerank", run: runPageRank},
	{name: "mis", run: runMIS},
	{name: "sssp", run: runSSSP},
	{name: "cluster", run: runCluster},
	{name: "multicluster", run: runMultiCluster, needsSources: true},
}

func algoNames() string {
	names := make([]string, len(algoTable))
	for i, e := range algoTable {
		names[i] = e.name
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		matrixPath = flag.String("matrix", "", "Matrix Market adjacency file (required)")
		algo       = flag.String("algo", "bfs", algoNames())
		engName    = flag.String("engine", "bucket", strings.Join(spmspv.EngineNames(), ", "))
		source     = flag.Int("source", 0, "source/seed vertex (bfs, bfsmasked, sssp, cluster)")
		sourcesStr = flag.String("sources", "", "comma-separated source vertices (multibfs, multicluster); empty = 4 spread from -source")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		topK       = flag.Int("top", 10, "entries to print for ranked outputs")
		cachePath  = flag.String("calibration-cache", spmspv.DefaultCalibrationCachePath(),
			"hybrid threshold cache file (empty disables persistence)")
		recalibrate = flag.Bool("recalibrate", false,
			"re-run hybrid threshold calibration even on a cache hit")
	)
	flag.Parse()
	if *matrixPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	alg, ok := spmspv.ParseAlgorithm(*engName)
	if !ok {
		fatal("unknown engine %q (have: %s)", *engName, strings.Join(spmspv.EngineNames(), ", "))
	}

	// Matrix loading and engine setup go through the serving layer's
	// store — the same loader (Matrix Market, JSON-wire or binary-wire
	// files) and lazily-cached file→matrix→engine path as cmd/spmspv
	// and spmspv-serve.
	st := spmspv.NewStore(
		spmspv.WithAlgorithm(alg),
		spmspv.WithThreads(*threads),
		spmspv.WithSortOutput(true),
		spmspv.WithCalibrationCache(*cachePath, *recalibrate),
	)
	if err := st.PutFile("graph", *matrixPath); err != nil {
		fatal("reading matrix: %v", err)
	}
	mu, err := st.Load("graph")
	if err != nil {
		fatal("%v", err)
	}
	a := mu.Matrix()
	if a.NumRows != a.NumCols {
		fatal("adjacency matrix must be square, got %dx%d", a.NumRows, a.NumCols)
	}
	fmt.Fprintf(os.Stderr, "graphalgo: %s, engine=%s\n", a.String(), alg)

	ctx := &runCtx{
		st:     st,
		mu:     mu,
		a:      a,
		alg:    alg,
		source: spmspv.Index(*source),
		topK:   *topK,
	}
	for _, e := range algoTable {
		if e.name != *algo {
			continue
		}
		if *sourcesStr != "" || e.needsSources {
			srcs, err := parseSources(*sourcesStr, ctx.source, a.NumCols)
			if err != nil {
				fatal("%v", err)
			}
			ctx.sources = srcs
		}
		e.run(ctx)
		return
	}
	fatal("unknown algorithm %q (have: %s)", *algo, algoNames())
}

func runBFS(ctx *runCtx) {
	printBFS(spmspv.BFS(ctx.mu, ctx.source), ctx.a.NumCols)
}

func runBFSMasked(ctx *runCtx) {
	printBFS(spmspv.BFSMasked(ctx.mu, ctx.source), ctx.a.NumCols)
	outConv, native := spmspv.FrontierOutputStats()
	fmt.Printf("output frontiers: %d native bitmaps, %d deferred conversions\n", native, outConv)
}

func printBFS(res *spmspv.BFSResult, n spmspv.Index) {
	reached := 0
	maxLevel := int32(0)
	for _, l := range res.Levels {
		if l >= 0 {
			reached++
			if l > maxLevel {
				maxLevel = l
			}
		}
	}
	fmt.Printf("reached %d of %d vertices, eccentricity %d\n", reached, n, maxLevel)
	fmt.Println("frontier sizes:", res.FrontierSizes)
}

func runMultiBFS(ctx *runCtx) {
	printMultiBFS(ctx, spmspv.MultiBFS(ctx.mu, ctx.sources))
}

func runMultiBFSMasked(ctx *runCtx) {
	printMultiBFS(ctx, spmspv.MultiBFSMasked(ctx.mu, ctx.sources))
	outConv, native := spmspv.FrontierOutputStats()
	fmt.Printf("output frontiers: %d native bitmaps, %d deferred conversions\n", native, outConv)
}

func printMultiBFS(ctx *runCtx, res *spmspv.MultiBFSResult) {
	for s, src := range ctx.sources {
		reached := 0
		maxLevel := int32(0)
		for _, l := range res.Levels[s] {
			if l >= 0 {
				reached++
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		fmt.Printf("source %d: reached %d of %d vertices, eccentricity %d, frontier sizes %v\n",
			src, reached, ctx.a.NumCols, maxLevel, res.FrontierSizes[s])
	}
}

func runComponents(ctx *runCtx) {
	labels := spmspv.ConnectedComponents(ctx.mu)
	sizes := map[spmspv.Index]int{}
	for _, l := range labels {
		sizes[l]++
	}
	fmt.Printf("%d components\n", len(sizes))
	type comp struct {
		root spmspv.Index
		size int
	}
	all := make([]comp, 0, len(sizes))
	for r, s := range sizes {
		all = append(all, comp{r, s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].size > all[j].size })
	for k, c := range all {
		if k >= ctx.topK {
			break
		}
		fmt.Printf("  component %d: %d vertices\n", c.root, c.size)
	}
}

func runPageRank(ctx *runCtx) {
	if err := ctx.st.Put("graph-norm", spmspv.NormalizeColumns(ctx.a)); err != nil {
		fatal("%v", err)
	}
	numu, err := ctx.st.Load("graph-norm")
	if err != nil {
		fatal("%v", err)
	}
	res := spmspv.PageRank(numu, spmspv.PageRankOptions{})
	fmt.Printf("converged in %d iterations\n", res.Iterations)
	type vr struct {
		v spmspv.Index
		r float64
	}
	ranked := make([]vr, len(res.Ranks))
	for v, r := range res.Ranks {
		ranked[v] = vr{spmspv.Index(v), r}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
	for k := 0; k < ctx.topK && k < len(ranked); k++ {
		fmt.Printf("  vertex %d: %.6g\n", ranked[k].v, ranked[k].r)
	}
}

func runMIS(ctx *runCtx) {
	inSet := spmspv.MaximalIndependentSet(ctx.mu, 42)
	count := 0
	for _, in := range inSet {
		if in {
			count++
		}
	}
	fmt.Printf("maximal independent set: %d of %d vertices\n", count, ctx.a.NumCols)
}

func runSSSP(ctx *runCtx) {
	dist := spmspv.SSSP(ctx.mu, ctx.source)
	reached, maxD := 0, 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) {
			reached++
			if d > maxD {
				maxD = d
			}
		}
	}
	fmt.Printf("reached %d of %d vertices, max distance %g\n", reached, ctx.a.NumCols, maxD)
}

func runCluster(ctx *runCtx) {
	res := spmspv.LocalCluster(ctx.mu, ctx.source, spmspv.ACLOptions{})
	printCluster(fmt.Sprintf("seed %d", ctx.source), res, ctx.topK)
}

func runMultiCluster(ctx *runCtx) {
	results := spmspv.MultiCluster(ctx.mu, ctx.sources, spmspv.ACLOptions{})
	for s, res := range results {
		printCluster(fmt.Sprintf("seed %d", ctx.sources[s]), res, ctx.topK)
	}
}

func printCluster(label string, res *spmspv.ACLResult, topK int) {
	fmt.Printf("%s: cluster of %d vertices, conductance %.4f, %d push rounds\n",
		label, len(res.Cluster), res.Conductance, res.Rounds)
	for k, v := range res.Cluster {
		if k >= topK {
			break
		}
		fmt.Printf("  %d\n", v)
	}
}

// parseSources resolves the -sources list; empty means 4 sources
// spread across the vertex range starting at base.
func parseSources(s string, base, n spmspv.Index) ([]spmspv.Index, error) {
	if s == "" {
		return spmspv.SpreadSources(n, base, 4), nil
	}
	var srcs []spmspv.Index
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || spmspv.Index(v) >= n {
			return nil, fmt.Errorf("bad source %q (graph has %d vertices)", part, n)
		}
		srcs = append(srcs, spmspv.Index(v))
	}
	return srcs, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphalgo: "+format+"\n", args...)
	os.Exit(1)
}
