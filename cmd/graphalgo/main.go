// Command graphalgo runs the SpMSpV-based graph algorithms on a Matrix
// Market adjacency matrix.
//
// Usage:
//
//	graphalgo -matrix graph.mtx -algo bfs -source 0
//	graphalgo -matrix graph.mtx -algo multibfs -sources 0,7,42
//	graphalgo -matrix graph.mtx -algo components
//	graphalgo -matrix graph.mtx -algo pagerank
//	graphalgo -matrix graph.mtx -algo mis
//	graphalgo -matrix graph.mtx -algo sssp -source 0
//	graphalgo -matrix graph.mtx -algo cluster -source 0
//
// The SpMSpV engine is selectable with -engine (bucket, combblas-spa,
// combblas-heap, graphmat, sort, hybrid), as in the paper's
// comparisons; multibfs runs all its searches through the engine's
// batched multiply.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	spmspv "spmspv"
)

func main() {
	var (
		matrixPath = flag.String("matrix", "", "Matrix Market adjacency file (required)")
		algo       = flag.String("algo", "bfs", "bfs, multibfs, components, pagerank, mis, sssp, cluster")
		engName    = flag.String("engine", "bucket", "bucket, combblas-spa, combblas-heap, graphmat, sort, hybrid")
		source     = flag.Int("source", 0, "source/seed vertex (bfs, sssp, cluster)")
		sourcesStr = flag.String("sources", "", "comma-separated source vertices (multibfs); empty = 4 spread from -source")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		topK       = flag.Int("top", 10, "entries to print for ranked outputs")
	)
	flag.Parse()
	if *matrixPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	alg, ok := spmspv.ParseAlgorithm(*engName)
	if !ok {
		fatal("unknown engine %q", *engName)
	}

	f, err := os.Open(*matrixPath)
	if err != nil {
		fatal("%v", err)
	}
	a, err := spmspv.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fatal("reading matrix: %v", err)
	}
	if a.NumRows != a.NumCols {
		fatal("adjacency matrix must be square, got %dx%d", a.NumRows, a.NumCols)
	}
	fmt.Fprintf(os.Stderr, "graphalgo: %s, engine=%s\n", a.String(), alg)

	opt := spmspv.Options{Threads: *threads, SortOutput: true}
	mu := spmspv.NewWithAlgorithm(a, alg, opt)
	src := spmspv.Index(*source)

	switch *algo {
	case "bfs":
		res := spmspv.BFS(mu, src)
		reached := 0
		maxLevel := int32(0)
		for _, l := range res.Levels {
			if l >= 0 {
				reached++
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		fmt.Printf("reached %d of %d vertices, eccentricity %d\n", reached, a.NumCols, maxLevel)
		fmt.Println("frontier sizes:", res.FrontierSizes)
	case "multibfs":
		sources, err := parseSources(*sourcesStr, spmspv.Index(*source), a.NumCols)
		if err != nil {
			fatal("%v", err)
		}
		res := spmspv.MultiBFS(mu, sources)
		for s, src := range sources {
			reached := 0
			maxLevel := int32(0)
			for _, l := range res.Levels[s] {
				if l >= 0 {
					reached++
					if l > maxLevel {
						maxLevel = l
					}
				}
			}
			fmt.Printf("source %d: reached %d of %d vertices, eccentricity %d, frontier sizes %v\n",
				src, reached, a.NumCols, maxLevel, res.FrontierSizes[s])
		}
	case "components":
		labels := spmspv.ConnectedComponents(mu)
		sizes := map[spmspv.Index]int{}
		for _, l := range labels {
			sizes[l]++
		}
		fmt.Printf("%d components\n", len(sizes))
		type comp struct {
			root spmspv.Index
			size int
		}
		all := make([]comp, 0, len(sizes))
		for r, s := range sizes {
			all = append(all, comp{r, s})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].size > all[j].size })
		for k, c := range all {
			if k >= *topK {
				break
			}
			fmt.Printf("  component %d: %d vertices\n", c.root, c.size)
		}
	case "pagerank":
		norm := spmspv.NormalizeColumns(a)
		res := spmspv.PageRank(spmspv.NewWithAlgorithm(norm, alg, opt), spmspv.PageRankOptions{})
		fmt.Printf("converged in %d iterations\n", res.Iterations)
		type vr struct {
			v spmspv.Index
			r float64
		}
		ranked := make([]vr, len(res.Ranks))
		for v, r := range res.Ranks {
			ranked[v] = vr{spmspv.Index(v), r}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
		for k := 0; k < *topK && k < len(ranked); k++ {
			fmt.Printf("  vertex %d: %.6g\n", ranked[k].v, ranked[k].r)
		}
	case "mis":
		inSet := spmspv.MaximalIndependentSet(mu, 42)
		count := 0
		for _, in := range inSet {
			if in {
				count++
			}
		}
		fmt.Printf("maximal independent set: %d of %d vertices\n", count, a.NumCols)
	case "sssp":
		dist := spmspv.SSSP(mu, src)
		reached, maxD := 0, 0.0
		for _, d := range dist {
			if !math.IsInf(d, 1) {
				reached++
				if d > maxD {
					maxD = d
				}
			}
		}
		fmt.Printf("reached %d of %d vertices, max distance %g\n", reached, a.NumCols, maxD)
	case "cluster":
		res := spmspv.LocalCluster(mu, src, spmspv.ACLOptions{})
		fmt.Printf("cluster of %d vertices, conductance %.4f, %d push rounds\n",
			len(res.Cluster), res.Conductance, res.Rounds)
		for k, v := range res.Cluster {
			if k >= *topK {
				break
			}
			fmt.Printf("  %d\n", v)
		}
	default:
		fatal("unknown algorithm %q", *algo)
	}
}

// parseSources resolves the -sources list; empty means 4 sources
// spread across the vertex range starting at base.
func parseSources(s string, base, n spmspv.Index) ([]spmspv.Index, error) {
	if s == "" {
		return spmspv.SpreadSources(n, base, 4), nil
	}
	var srcs []spmspv.Index
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 || spmspv.Index(v) >= n {
			return nil, fmt.Errorf("bad source %q (graph has %d vertices)", part, n)
		}
		srcs = append(srcs, spmspv.Index(v))
	}
	return srcs, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphalgo: "+format+"\n", args...)
	os.Exit(1)
}
