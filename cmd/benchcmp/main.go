// Command benchcmp compares two benchmark runs captured as
// `go test -json` output and reports per-benchmark ns/op deltas, in
// the spirit of benchstat reduced to what CI needs: a table, a
// threshold, and an exit code.
//
// Usage:
//
//	benchcmp -old prev/BENCH.json -new BENCH.json [-threshold 10] [-fail]
//
// Benchmarks appearing in only one file are reported but never
// regressions. With -fail the exit code is 1 when any benchmark's
// ns/op regressed by more than -threshold percent; without it the tool
// only prints (CI turns the output into annotations), because
// single-rep benchmark numbers on shared runners are noisy enough that
// a hard gate would flake.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of test2json's output events we read.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a benchmark result line: name, iteration count,
// ns/op. Extra custom metrics on the same line are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// parse reads a `go test -json` file and returns mean ns/op per
// benchmark name (averaging duplicate runs of the same name).
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Concatenate every output event's text first: test2json splits a
	// benchmark result across events (the padded name, then the
	// "N ... ns/op" tail), so results only form complete lines after
	// reassembly.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain-text bench output interleaved in the file.
			text.Write(line)
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	sums := map[string]float64{}
	counts := map[string]int{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		sums[m[1]] += ns
		counts[m[1]]++
	}
	for name := range sums {
		sums[name] /= float64(counts[name])
	}
	return sums, nil
}

func main() {
	var (
		oldPath   = flag.String("old", "", "previous run's go test -json output (required)")
		newPath   = flag.String("new", "", "current run's go test -json output (required)")
		threshold = flag.Float64("threshold", 10, "regression threshold in percent")
		failFlag  = flag.Bool("fail", false, "exit 1 when a regression exceeds the threshold")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldNs, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	newNs, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNs))
	for name := range newNs {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	fmt.Printf("%-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nv := newNs[name]
		ov, ok := oldNs[name]
		if !ok {
			fmt.Printf("%-64s %14s %14.0f %9s\n", name, "-", nv, "new")
			continue
		}
		delta := (nv - ov) / ov * 100
		marker := ""
		if delta > *threshold {
			marker = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-64s %14.0f %14.0f %+8.1f%%%s\n", name, ov, nv, delta, marker)
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-64s %14.0f %14s %9s\n", name, oldNs[name], "-", "gone")
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%% ns/op\n", regressions, *threshold)
		if *failFlag {
			os.Exit(1)
		}
	}
}
