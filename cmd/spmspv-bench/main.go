// Command spmspv-bench regenerates the tables and figures of the
// paper's evaluation section (§IV) on synthetic stand-ins for the
// Table IV matrix suite.
//
// Usage:
//
//	spmspv-bench -experiment fig3 -scale 14 -threads 1,2,4,8 -reps 3
//	spmspv-bench -experiment all
//
// Experiments: table3 (platform), table4 (test suite), tables12
// (measured work classification), fig2 (sorted vs unsorted), fig3
// (runtime vs nnz(x)), fig4 (BFS strong scaling, full suite), fig5
// (KNL-analogue subset), fig6 (step breakdown), ablation (§III-A/B
// design choices), masked and hybrid (§V extensions), batch (batched
// multi-frontier multiply), scaling (Step-2 scheduler comparison:
// static vs dynamic vs work-stealing, with idle/steal counters), or
// all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spmspv/internal/bench"
	"spmspv/internal/sparse"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table3, table4, tables12, fig2, fig3, fig4, fig5, fig6, ablation, masked, hybrid, batch, scaling, all)")
		scale      = flag.Int("scale", 14, "log2 of stand-in graph vertex counts")
		threads    = flag.String("threads", "1,2,4,8", "comma-separated thread counts to sweep")
		reps       = flag.Int("reps", 3, "timed repetitions per measurement")
		source     = flag.Int("source", 0, "BFS source vertex")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Reps = *reps
	cfg.Source = sparse.Index(*source)
	cfg.Threads = cfg.Threads[:0]
	for _, part := range strings.Split(*threads, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			fmt.Fprintf(os.Stderr, "spmspv-bench: bad thread count %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, t)
	}

	type runner struct {
		name string
		run  func()
	}
	w := os.Stdout
	runners := []runner{
		{"table3", func() { bench.Platform(w, cfg) }},
		{"table4", func() { bench.Table4(w, cfg) }},
		{"tables12", func() { bench.Tables12(w, cfg) }},
		{"fig2", func() { bench.Fig2(w, cfg) }},
		{"fig3", func() { bench.Fig3(w, cfg) }},
		{"fig4", func() { bench.Fig4(w, cfg) }},
		{"fig5", func() { bench.Fig5(w, cfg) }},
		{"fig6", func() { bench.Fig6(w, cfg) }},
		{"ablation", func() { bench.Ablation(w, cfg) }},
		{"masked", func() { bench.Masked(w, cfg) }},
		{"hybrid", func() { bench.Hybrid(w, cfg) }},
		{"batch", func() { bench.Batch(w, cfg) }},
		{"scaling", func() { bench.Scaling(w, cfg) }},
		{"spmv", func() { bench.SpMVCrossover(w, cfg) }},
	}

	if *experiment == "all" {
		for _, r := range runners {
			fmt.Fprintf(w, "==== %s ====\n\n", r.name)
			r.run()
		}
		return
	}
	for _, r := range runners {
		if r.name == *experiment {
			r.run()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "spmspv-bench: unknown experiment %q\n", *experiment)
	os.Exit(2)
}
