package spmspv_test

import (
	"math/rand"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/baselines"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// engineOptions builds construction options that avoid hybrid
// calibration probes (a fixed threshold keeps the property tests fast
// and deterministic) and never touch the on-disk calibration cache.
func engineOptions(threads int) spmspv.Options {
	return spmspv.Options{Threads: threads, SortOutput: true, HybridThreshold: 0.25}
}

// maskedOracle computes ⟨A·x, mask⟩ through the sequential reference.
func maskedOracle(a *spmspv.Matrix, x *spmspv.Vector, sr spmspv.Semiring, mask *spmspv.BitVector, complement bool) *spmspv.Vector {
	want := baselines.Reference(a, x, sr)
	sparse.FilterMaskInPlace(want, mask, complement)
	return want
}

func randomMask(rng *rand.Rand, m spmspv.Index, density float64) *spmspv.BitVector {
	sel := spmspv.NewVector(m, 0)
	for i := spmspv.Index(0); i < m; i++ {
		if rng.Float64() < density {
			sel.Append(i, 1)
		}
	}
	mask := spmspv.NewBitVector(m)
	mask.SetFrom(sel)
	return mask
}

// checkBitmapMirrorsList fails the test when a frontier claiming a
// materialized bitmap does not mirror its list exactly.
func checkBitmapMirrorsList(t *testing.T, f *spmspv.Frontier, label string) {
	t.Helper()
	if !f.HasBits() {
		return
	}
	bits := f.Bits()
	if bits.Count() != f.NNZ() {
		t.Fatalf("%s: bitmap count %d != list nnz %d", label, bits.Count(), f.NNZ())
	}
	l := f.List()
	for k, i := range l.Ind {
		v, ok := bits.Get(i)
		if !ok || v != l.Val[k] {
			t.Fatalf("%s: bitmap[%d] = (%v,%v), list has %g", label, i, v, ok, l.Val[k])
		}
	}
}

// TestMultiplyFrontierMatchesMultiply pins the tentpole property:
// frontier-output multiplication is the same function as plain
// multiplication, for every registered engine, and any natively
// emitted bitmap mirrors the list exactly.
func TestMultiplyFrontierMatchesMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	semirings := []spmspv.Semiring{spmspv.Arithmetic, spmspv.MinSelect2nd, spmspv.MinPlus}
	for trial := 0; trial < 6; trial++ {
		m := spmspv.Index(rng.Intn(900) + 60)
		n := spmspv.Index(rng.Intn(900) + 60)
		a := testutil.RandomCSC(rng, m, n, float64(rng.Intn(8))+1)
		// Sweep input density across the hybrid switch point.
		f := rng.Intn(int(n)) + 1
		x := testutil.RandomVector(rng, n, f, trial%2 == 0)
		sr := semirings[trial%len(semirings)]
		want := baselines.Reference(a, x, sr)

		for _, alg := range spmspv.Algorithms() {
			mu := spmspv.NewWithAlgorithm(a, alg, engineOptions(1+trial%4))
			plain := mu.Multiply(x, sr)
			if !plain.EqualValues(want, 1e-9) {
				t.Fatalf("trial %d %v: Multiply diverged from oracle", trial, alg)
			}
			xf := spmspv.NewFrontier(x)
			yf := spmspv.NewOutputFrontier(m)
			mu.MultiplyFrontier(xf, yf, sr)
			if !yf.List().EqualValues(want, 1e-9) {
				t.Fatalf("trial %d %v: MultiplyFrontier diverged from Multiply", trial, alg)
			}
			checkBitmapMirrorsList(t, yf, alg.String())
			// Reuse the same output frontier (the pipeline pattern).
			mu.MultiplyFrontier(xf, yf, sr)
			if !yf.List().EqualValues(want, 1e-9) {
				t.Fatalf("trial %d %v: reused output frontier diverged", trial, alg)
			}
			checkBitmapMirrorsList(t, yf, alg.String()+" (reused)")
		}
	}
}

// TestMultiplyMaskedMatchesOracle pins every registered engine's
// masked multiply — including the four baselines' new mask pushdown —
// against the sequential oracle with the mask applied after the fact,
// for both mask polarities, through the list and the frontier-output
// paths.
func TestMultiplyMaskedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	semirings := []spmspv.Semiring{spmspv.Arithmetic, spmspv.MinSelect2nd}
	for trial := 0; trial < 6; trial++ {
		m := spmspv.Index(rng.Intn(700) + 50)
		n := spmspv.Index(rng.Intn(700) + 50)
		a := testutil.RandomCSC(rng, m, n, float64(rng.Intn(6))+1)
		x := testutil.RandomVector(rng, n, rng.Intn(int(n))+1, trial%2 == 0)
		sr := semirings[trial%len(semirings)]
		mask := randomMask(rng, m, 0.4)
		complement := trial%2 == 1
		want := maskedOracle(a, x, sr, mask, complement)

		for _, alg := range spmspv.Algorithms() {
			mu := spmspv.NewWithAlgorithm(a, alg, engineOptions(1+trial%4))
			y := spmspv.NewVector(0, 0)
			mu.MultiplyMasked(x, y, sr, mask, complement)
			if !y.EqualValues(want, 1e-9) {
				t.Fatalf("trial %d %v: MultiplyMasked diverged from oracle (complement=%v)",
					trial, alg, complement)
			}
			xf := spmspv.NewFrontier(x)
			yf := spmspv.NewOutputFrontier(m)
			mu.MultiplyFrontierMasked(xf, yf, sr, mask, complement)
			if !yf.List().EqualValues(want, 1e-9) {
				t.Fatalf("trial %d %v: MultiplyFrontierMasked diverged from oracle", trial, alg)
			}
			checkBitmapMirrorsList(t, yf, alg.String()+" (masked)")
		}
	}
}

// TestMaskedBFSAllEngines is the acceptance check that masked BFS runs
// on all registered engines (bucket, the four baselines, hybrid) and
// produces the same search as plain BFS.
func TestMaskedBFSAllEngines(t *testing.T) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(10), 42)
	algos := spmspv.Algorithms()
	if len(algos) < 6 {
		t.Fatalf("expected ≥ 6 registered engines, have %d", len(algos))
	}
	ref := spmspv.BFS(spmspv.NewWithAlgorithm(a, spmspv.Bucket, engineOptions(1)), 0)
	for _, alg := range algos {
		mu := spmspv.NewWithAlgorithm(a, alg, engineOptions(2))
		got := spmspv.BFSMasked(mu, 0)
		for v := range ref.Levels {
			if got.Levels[v] != ref.Levels[v] {
				t.Fatalf("%v: masked BFS level[%d] = %d, plain = %d",
					alg, v, got.Levels[v], ref.Levels[v])
			}
		}
		for v, p := range got.Parents {
			if ref.Levels[v] > 0 {
				if p < 0 || got.Levels[p] != got.Levels[v]-1 || a.At(spmspv.Index(v), p) == 0 {
					t.Fatalf("%v: bad masked BFS parent %d for vertex %d", alg, p, v)
				}
			}
		}
	}
}

// TestBFSPipelineZeroOutputConversions is the acceptance criterion for
// the output layer: a scale-14 R-MAT BFS driven through the masked
// frontier pipeline on the direction-switching hybrid engine performs
// ZERO list→bitmap output conversions — every dense level's
// matrix-driven input bitmap was emitted natively by the previous
// level's output pass.
func TestBFSPipelineZeroOutputConversions(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-14 graph in -short mode")
	}
	a := spmspv.RMAT(spmspv.DefaultRMAT(14), 3)
	// A low fixed threshold guarantees the dense middle levels take the
	// matrix-driven side (no calibration probes, no cache I/O).
	opt := spmspv.Options{SortOutput: true, HybridThreshold: 0.02}
	mu := spmspv.NewWithAlgorithm(a, spmspv.Hybrid, opt)

	ref := spmspv.BFS(spmspv.NewWithAlgorithm(a, spmspv.Bucket, engineOptions(1)), 0)

	spmspv.ResetFrontierStats()
	mu.ResetCounters()
	got := spmspv.BFSMasked(mu, 0)
	c := mu.Counters()

	if c.DirectionSwitches == 0 {
		t.Fatal("no level took the matrix-driven side; the test exercises nothing")
	}
	if c.OutputConversions != 0 {
		t.Fatalf("frontier pipeline performed %d output conversions, want 0", c.OutputConversions)
	}
	outConv, native := spmspv.FrontierOutputStats()
	if outConv != 0 {
		t.Fatalf("process-wide output conversions = %d, want 0", outConv)
	}
	if native == 0 {
		t.Fatal("no native output bitmaps emitted")
	}
	for v := range ref.Levels {
		if got.Levels[v] != ref.Levels[v] {
			t.Fatalf("pipeline BFS level[%d] = %d, plain = %d", v, got.Levels[v], ref.Levels[v])
		}
	}

	// The multi-source batch path: MultiBFSMasked expands all searches
	// through batched masked multiplies, and the batched Step 3 (bucket
	// side) plus GraphMat's per-piece copy (matrix-driven slots) emit
	// every slot's output bitmap natively — the whole k-wide
	// direction-optimized pipeline performs zero output conversions too.
	sources := spmspv.SpreadSources(a.NumCols, 0, 4)
	spmspv.ResetFrontierStats()
	mu.ResetCounters()
	multi := spmspv.MultiBFSMasked(mu, sources)
	c = mu.Counters()
	if c.DirectionSwitches == 0 {
		t.Fatal("no batch slot took the matrix-driven side; the multi-source test exercises nothing")
	}
	if c.OutputConversions != 0 {
		t.Fatalf("multi-source pipeline performed %d output conversions, want 0", c.OutputConversions)
	}
	if outConv, native = spmspv.FrontierOutputStats(); outConv != 0 {
		t.Fatalf("multi-source process-wide output conversions = %d, want 0", outConv)
	} else if native == 0 {
		t.Fatal("multi-source run emitted no native output bitmaps")
	}
	for s, src := range sources {
		srcRef := spmspv.BFS(spmspv.NewWithAlgorithm(a, spmspv.Bucket, engineOptions(1)), src)
		for v := range srcRef.Levels {
			if multi.Levels[s][v] != srcRef.Levels[v] {
				t.Fatalf("multi-source pipeline source %d: level[%d] = %d, plain = %d",
					src, v, multi.Levels[s][v], srcRef.Levels[v])
			}
		}
	}
}

// TestMultiBFSMaskedAllEngines checks the masked multi-source BFS —
// batched per-slot masks through MultBatch — against plain BFS on
// every registered engine (engines without native batch/mask support
// run through the plan's degradation paths).
func TestMultiBFSMaskedAllEngines(t *testing.T) {
	a := spmspv.RMAT(spmspv.DefaultRMAT(10), 13)
	sources := []spmspv.Index{0, 5, a.NumCols / 2}
	refs := make([]*spmspv.BFSResult, len(sources))
	for s, src := range sources {
		refs[s] = spmspv.BFS(spmspv.NewWithAlgorithm(a, spmspv.Bucket, engineOptions(1)), src)
	}
	for _, alg := range spmspv.Algorithms() {
		mu := spmspv.NewWithAlgorithm(a, alg, engineOptions(2))
		got := spmspv.MultiBFSMasked(mu, sources)
		for s := range sources {
			for v := range refs[s].Levels {
				if got.Levels[s][v] != refs[s].Levels[v] {
					t.Fatalf("%v source %d: level[%d] = %d, want %d",
						alg, sources[s], v, got.Levels[s][v], refs[s].Levels[v])
				}
			}
		}
	}
}

// TestConcurrentMultiplyFrontier hammers the frontier-output path of
// every registered engine from multiple goroutines sharing one
// multiplier (run under -race in CI).
func TestConcurrentMultiplyFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := testutil.RandomCSC(rng, 400, 400, 4)
	x := testutil.RandomVector(rng, 400, 120, false)
	want := baselines.Reference(a, x, spmspv.Arithmetic)
	mask := randomMask(rng, 400, 0.5)
	wantMasked := maskedOracle(a, x, spmspv.Arithmetic, mask, true)

	for _, alg := range spmspv.Algorithms() {
		mu := spmspv.NewWithAlgorithm(a, alg, engineOptions(2))
		done := make(chan error, 8)
		for g := 0; g < 8; g++ {
			g := g
			go func() {
				for it := 0; it < 10; it++ {
					xf := spmspv.NewFrontier(x)
					yf := spmspv.NewOutputFrontier(400)
					if (g+it)%2 == 0 {
						mu.MultiplyFrontier(xf, yf, spmspv.Arithmetic)
						if !yf.List().EqualValues(want, 1e-9) {
							done <- errMismatch
							return
						}
					} else {
						mu.MultiplyFrontierMasked(xf, yf, spmspv.Arithmetic, mask, true)
						if !yf.List().EqualValues(wantMasked, 1e-9) {
							done <- errMismatch
							return
						}
					}
				}
				done <- nil
			}()
		}
		for g := 0; g < 8; g++ {
			if err := <-done; err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
		}
	}
}

// TestEngineNamesCoverRegistry pins the derived CLI help source: every
// name EngineNames returns parses, and every registered engine is
// reachable by at least one returned name.
func TestEngineNamesCoverRegistry(t *testing.T) {
	names := spmspv.EngineNames()
	reachable := map[spmspv.Algorithm]bool{}
	for _, name := range names {
		alg, ok := spmspv.ParseAlgorithm(name)
		if !ok {
			t.Fatalf("EngineNames lists %q but ParseAlgorithm rejects it", name)
		}
		reachable[alg] = true
	}
	for _, alg := range spmspv.Algorithms() {
		if !reachable[alg] {
			t.Fatalf("registered engine %v unreachable from EngineNames %v", alg, names)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent frontier multiply diverged" }
