// Tests for the serving-layer matrix store: registry semantics, the
// shared-multiplier cache (zero plan compilations on warm repeat
// traffic), the multi-format file loader, and a concurrent
// Put/Load/Delete/Do hammer for -race.
package spmspv_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/engine"
	"spmspv/internal/testutil"
)

func storeWithMatrix(t *testing.T, name string) (*spmspv.Store, *spmspv.Matrix, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(93))
	a := testutil.RandomCSC(rng, 120, 100, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put(name, a); err != nil {
		t.Fatal(err)
	}
	return st, a, rng
}

func TestStoreRegistrySemantics(t *testing.T) {
	st, a, _ := storeWithMatrix(t, "g")

	if got := st.List(); len(got) != 1 || got[0] != "g" {
		t.Fatalf("List = %v, want [g]", got)
	}
	stat, err := st.Stats("g")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Built {
		t.Error("Stats reports Built before any Load")
	}
	if stat.Rows != a.NumRows || stat.Cols != a.NumCols || stat.NNZ != a.NNZ() {
		t.Errorf("Stats shape = %d×%d nnz=%d, want %d×%d nnz=%d",
			stat.Rows, stat.Cols, stat.NNZ, a.NumRows, a.NumCols, a.NNZ())
	}

	mu1, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	mu2, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if mu1 != mu2 {
		t.Error("second Load returned a different Multiplier (engine cache broken)")
	}
	if stat, _ = st.Stats("g"); !stat.Built {
		t.Error("Stats reports not Built after Load")
	}

	if _, err := st.Load("nope"); err == nil {
		t.Error("Load of unregistered name succeeded")
	} else if we := spmspv.AsWireError(err); we.Code != spmspv.CodeUnknownMatrix {
		t.Errorf("Load of unregistered name: code %q, want %q", we.Code, spmspv.CodeUnknownMatrix)
	}

	if !st.Delete("g") {
		t.Error("Delete of registered name reported false")
	}
	if st.Delete("g") {
		t.Error("second Delete reported true")
	}
	if _, err := st.Load("g"); err == nil {
		t.Error("Load after Delete succeeded")
	}

	for _, bad := range []string{"", "a/b", "..", "sp ace", "p|ipe", "x\n"} {
		if err := st.Put(bad, a); err == nil {
			t.Errorf("Put accepted invalid name %q", bad)
		}
	}
}

// TestStorePlanCacheReuse pins the point of the per-matrix cache: once
// a matrix's multiplier is warm, repeat requests — second Loads,
// repeat Do calls of the same shape — perform ZERO new plan
// compilations (and construct no new engine).
func TestStorePlanCacheReuse(t *testing.T) {
	st, a, rng := storeWithMatrix(t, "g")
	req := &spmspv.Request{
		Matrix: "g",
		X:      testutil.RandomVector(rng, a.NumCols, 30, true),
		Desc:   spmspv.Desc{Semiring: "arithmetic"},
	}

	// Warm: build the engine and compile the request shape's plan.
	if _, err := st.Do(req); err != nil {
		t.Fatal(err)
	}

	before := engine.PlanCompilations()
	if _, err := st.Load("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Do(req); err != nil {
			t.Fatal(err)
		}
	}
	if after := engine.PlanCompilations(); after != before {
		t.Errorf("warm store compiled %d new plans on repeat traffic, want 0", after-before)
	}

	stat, _ := st.Stats("g")
	if stat.Serve.Requests != 6 {
		t.Errorf("Serve.Requests = %d, want 6", stat.Serve.Requests)
	}
}

// TestStorePutFileFormats exercises the shared loader on all three
// on-disk encodings.
func TestStorePutFileFormats(t *testing.T) {
	st, a, _ := storeWithMatrix(t, "orig")
	dir := t.TempDir()

	write := func(name string, enc func(f *os.File) error) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mm := write("a.mtx", func(f *os.File) error { return spmspv.WriteMatrixMarket(f, a) })
	js := write("a.json", func(f *os.File) error { return spmspv.EncodeMatrixJSON(f, a) })
	bin := write("a.spmb", func(f *os.File) error { return spmspv.EncodeMatrixBinary(f, a) })

	for name, path := range map[string]string{"mm": mm, "json": js, "bin": bin} {
		if err := st.PutFile(name, path); err != nil {
			t.Fatalf("PutFile(%s): %v", name, err)
		}
		stat, err := st.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if stat.Rows != a.NumRows || stat.Cols != a.NumCols || stat.NNZ != a.NNZ() {
			t.Errorf("%s: loaded %d×%d nnz=%d, want %d×%d nnz=%d",
				name, stat.Rows, stat.Cols, stat.NNZ, a.NumRows, a.NumCols, a.NNZ())
		}
	}

	if err := st.PutFile("missing", filepath.Join(dir, "nope.mtx")); err == nil {
		t.Error("PutFile of a missing path succeeded")
	}
}

// TestStoreConcurrentHammer mixes Put, Load, Delete, Stats, List and
// Do from many goroutines — the registry's concurrency contract under
// -race.
func TestStoreConcurrentHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := testutil.RandomCSC(rng, 90, 80, 4)
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(2)))
	if err := st.Put("stable", a); err != nil {
		t.Fatal(err)
	}

	xs := make([]*spmspv.Vector, 8)
	for i := range xs {
		xs[i] = testutil.RandomVector(rng, a.NumCols, 20, true)
	}

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 40; it++ {
				switch (w + it) % 5 {
				case 0:
					// Churn a private name plus contend on a shared one.
					name := []string{"churn-a", "churn-b", "churn-c"}[(w+it)%3]
					if err := st.Put(name, a); err != nil {
						t.Error(err)
					}
				case 1:
					st.Delete([]string{"churn-a", "churn-b", "churn-c"}[it%3])
				case 2:
					if _, err := st.Load("stable"); err != nil {
						t.Error(err)
					}
				case 3:
					st.List()
					st.StatsAll()
				default:
					resp, err := st.Do(&spmspv.Request{
						Matrix: "stable",
						X:      xs[(w+it)%len(xs)],
						Desc:   spmspv.Desc{Semiring: "arithmetic"},
					})
					if err != nil {
						t.Error(err)
					} else if resp.Y == nil {
						t.Error("Do returned no Y")
					}
				}
			}
		}(w)
	}
	wg.Wait()

	stat, err := st.Stats("stable")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Serve.Requests == 0 || stat.Serve.Failures != 0 {
		t.Errorf("hammer counters: %+v", stat.Serve)
	}
}
