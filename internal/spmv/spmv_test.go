package spmv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

func denseOracle(a *sparse.CSC, x []float64) []float64 {
	y := make([]float64, a.NumRows)
	for j := sparse.Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			y[i] += vals[k] * x[j]
		}
	}
	return y
}

func closeSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestSimpleMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := testutil.RandomCSC(rng, 200, 150, 4)
	x := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 200)
	Simple(a, x, y)
	if !closeSlices(y, denseOracle(a, x), 1e-12) {
		t.Error("Simple disagrees with oracle")
	}
}

func TestRowSplitMatchesSimple(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := sparse.Index(r.Intn(300) + 1)
		n := sparse.Index(r.Intn(300) + 1)
		a := testutil.RandomCSC(r, m, n, 3)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]float64, m)
		Simple(a, x, want)
		for _, threads := range []int{1, 4} {
			rs := NewRowSplit(a, threads)
			got := make([]float64, m)
			rs.Multiply(x, got)
			if !closeSlices(got, want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBinnedMatchesSimple(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := sparse.Index(r.Intn(300) + 1)
		n := sparse.Index(r.Intn(300) + 1)
		a := testutil.RandomCSC(r, m, n, 3)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := make([]float64, m)
		Simple(a, x, want)
		for _, threads := range []int{1, 3} {
			for _, bpt := range []int{1, 4} {
				b := NewBinned(a, threads, bpt)
				got := make([]float64, m)
				b.Multiply(x, got)
				if !closeSlices(got, want, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBinnedReuse(t *testing.T) {
	// The bin layout is static; repeated multiplies with different
	// vectors must be independent.
	rng := rand.New(rand.NewSource(3))
	a := testutil.RandomCSC(rng, 500, 500, 5)
	b := NewBinned(a, 4, 4)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 500)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, 500)
		Simple(a, x, want)
		got := make([]float64, 500)
		b.Multiply(x, got)
		if !closeSlices(got, want, 1e-9) {
			t.Fatalf("trial %d: binned reuse broke correctness", trial)
		}
	}
}

func TestBinnedCountersTouchAllNonzeros(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := testutil.RandomCSC(rng, 400, 400, 6)
	b := NewBinned(a, 2, 4)
	x := make([]float64, 400)
	y := make([]float64, 400)
	b.Multiply(x, y)
	// SpMV touches every nonzero regardless of x — the contrast with
	// SpMSpV that §III-C draws.
	if got := b.Counters().MatrixTouched; got != a.NNZ() {
		t.Errorf("touched %d, want all %d nonzeros", got, a.NNZ())
	}
}

func TestBinnedTinyMatrices(t *testing.T) {
	tr := sparse.NewTriples(1, 1, 1)
	tr.Append(0, 0, 3)
	a, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinned(a, 8, 4) // more bins requested than rows
	y := make([]float64, 1)
	b.Multiply([]float64{2}, y)
	if y[0] != 6 {
		t.Errorf("y = %v", y)
	}
}
