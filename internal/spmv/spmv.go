// Package spmv implements sparse matrix × dense vector multiplication,
// including the binning-based SpMV of Buono et al. (the paper's
// ref [19]) that §III-C contrasts with SpMSpV-bucket.
//
// The contrast matters for two reasons. First, the paper argues that
// data-driven graph algorithms should use SpMSpV even when frontiers
// get dense, because SpMSpV can deactivate converged vertices; a real
// SpMV implementation makes that trade-off measurable (the spmv
// crossover experiment). Second, §III-C explains exactly which parts of
// the bucket algorithm exist only because of input sparsity: SpMV's
// destination bins are static ("the destination buckets are trivially
// defined"), it needs no ESTIMATE-BUCKETS pass and no SPA. The Binned
// implementation makes that difference concrete — its bin layout is
// computed once at construction and reused for every multiply.
package spmv

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// Simple is the textbook sequential CSC SpMV: y += A(:,j)·x(j) column
// by column. It is the oracle for the parallel variants.
func Simple(a *sparse.CSC, x []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := sparse.Index(0); j < a.NumCols; j++ {
		xv := x[j]
		if xv == 0 {
			continue
		}
		rows, vals := a.Col(j)
		for k, i := range rows {
			y[i] += vals[k] * xv
		}
	}
}

// RowSplit is the transpose-based parallel SpMV: the matrix is stored
// row-major (as the CSC of Aᵀ) and each thread computes a contiguous
// block of output rows independently — the SpMV analogue of the
// CombBLAS row-split scheme, with no write conflicts by construction.
type RowSplit struct {
	at *sparse.CSC // Aᵀ in CSC form = A in CSR form
	t  int

	// PerWorker holds one work counter per thread.
	PerWorker []perf.Counters
}

// NewRowSplit builds the row-major structure for t threads.
func NewRowSplit(a *sparse.CSC, t int) *RowSplit {
	t = par.Threads(t)
	return &RowSplit{at: a.Transpose(), t: t, PerWorker: make([]perf.Counters, t)}
}

// Multiply computes the dense product y = A·x.
func (r *RowSplit) Multiply(x []float64, y []float64) {
	m := int(r.at.NumCols) // rows of A
	par.ForStatic(r.t, m, func(w, lo, hi int) {
		ctr := &r.PerWorker[w]
		var touched int64
		for i := lo; i < hi; i++ {
			cols, vals := r.at.Col(sparse.Index(i))
			var acc float64
			for k, j := range cols {
				acc += vals[k] * x[j]
			}
			y[i] = acc
			touched += int64(len(cols))
		}
		ctr.MatrixTouched += touched
		ctr.OutputWritten += int64(hi - lo)
	})
}

// Counters aggregates per-worker work.
func (r *RowSplit) Counters() perf.Counters { return perf.MergeAll(r.PerWorker) }

// Binned is the binning-based SpMV of the paper's ref [19]: matrix
// nonzeros are partitioned into row-range bins once at construction
// (reordered into bin-major order so every multiply streams them
// linearly); each multiply scales the prepared entries by x and reduces
// each bin into its dense output block.
//
// Compare with SpMSpV-bucket (§III-C): because every nonzero
// participates, there is no per-call estimate pass, no SPA, and the
// output is dense — the machinery the bucket algorithm adds exists
// precisely to cope with input- and output-sparsity.
type Binned struct {
	m, n  sparse.Index
	nbins int
	t     int
	// binStart[b] delimits bin b's entries; entries are stored
	// bin-major: (row, col-position) pairs plus the matrix value.
	binStart []int64
	rows     []sparse.Index
	cols     []sparse.Index
	vals     []float64

	// PerWorker holds one work counter per thread.
	PerWorker []perf.Counters
}

// NewBinned builds the static bin layout: binsPerThread×t row-range
// bins (4 per thread by default, mirroring the bucket algorithm's
// nb = 4t).
func NewBinned(a *sparse.CSC, t, binsPerThread int) *Binned {
	t = par.Threads(t)
	if binsPerThread <= 0 {
		binsPerThread = 4
	}
	nbins := binsPerThread * t
	if int64(nbins) > int64(a.NumRows) && a.NumRows > 0 {
		nbins = int(a.NumRows)
	}
	if nbins < 1 {
		nbins = 1
	}
	b := &Binned{
		m:         a.NumRows,
		n:         a.NumCols,
		nbins:     nbins,
		t:         t,
		binStart:  make([]int64, nbins+1),
		rows:      make([]sparse.Index, a.NNZ()),
		cols:      make([]sparse.Index, a.NNZ()),
		vals:      make([]float64, a.NNZ()),
		PerWorker: make([]perf.Counters, t),
	}
	// Static destination bins: count, prefix, scatter — done once.
	counts := make([]int64, nbins)
	for _, i := range a.RowIdx {
		counts[b.binOf(i)]++
	}
	var sum int64
	for k, c := range counts {
		b.binStart[k] = sum
		counts[k] = sum
		sum += c
	}
	b.binStart[nbins] = sum
	for j := sparse.Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			p := counts[b.binOf(i)]
			counts[b.binOf(i)]++
			b.rows[p] = i
			b.cols[p] = j
			b.vals[p] = vals[k]
		}
	}
	return b
}

func (b *Binned) binOf(i sparse.Index) int {
	return int(int64(i) * int64(b.nbins) / int64(b.m))
}

// Multiply computes the dense product y = A·x: bins are processed in
// parallel with dynamic scheduling; each bin's row range is private to
// one worker at a time, so there are no write conflicts.
func (b *Binned) Multiply(x []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	par.ForDynamic(b.t, b.nbins, 1, func(w, blo, bhi int) {
		ctr := &b.PerWorker[w]
		var touched int64
		for bin := blo; bin < bhi; bin++ {
			lo, hi := b.binStart[bin], b.binStart[bin+1]
			for k := lo; k < hi; k++ {
				y[b.rows[k]] += b.vals[k] * x[b.cols[k]]
			}
			touched += hi - lo
		}
		ctr.MatrixTouched += touched
	}, nil)
}

// Counters aggregates per-worker work.
func (b *Binned) Counters() perf.Counters { return perf.MergeAll(b.PerWorker) }
