// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation section (§IV). It provides the
// engine registry, BFS frontier capture for vector-sparsity sweeps,
// strong-scaling runners, and plain-text table/series formatters whose
// rows mirror what the paper plots.
//
// Wall-clock numbers depend on the host; the harness therefore reports,
// next to every timing, the aggregated work counters of perf.Counters,
// which reproduce the paper's work-efficiency comparisons exactly on
// any machine (see DESIGN.md §2 for the substitution rationale).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"spmspv/internal/algorithms"
	"spmspv/internal/core"
	"spmspv/internal/engine"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"

	// Keep the baselines registered with the engine registry —
	// registrySpec's engine.New depends on it. (The Hybrid engine
	// registers through this package's direct internal/hybrid import in
	// ablation.go.)
	_ "spmspv/internal/baselines"
)

// Engine is the uniform handle the harness drives: a named SpMSpV
// implementation with work counters — internal/engine's contract.
type Engine = engine.Engine

// EngineSpec names an algorithm and builds an instance bound to a
// matrix and thread count. Construction cost (row-splitting, workspace
// allocation) is setup, excluded from timings — as in the paper, which
// pre-splits matrices for CombBLAS/GraphMat and preallocates buckets for
// SpMSpV-bucket (§III-A).
type EngineSpec struct {
	Name  string
	Build func(a *sparse.CSC, threads int) Engine
}

// registrySpec builds an EngineSpec that constructs alg through the
// engine registry with the harness's standard options.
func registrySpec(alg engine.Algorithm) EngineSpec {
	return EngineSpec{Name: alg.String(), Build: func(a *sparse.CSC, t int) Engine {
		e, err := engine.New(a, alg, engine.Options{Threads: t, SortOutput: true})
		if err != nil {
			panic(err) // all algorithms register via this package's imports
		}
		return e
	}}
}

// AllEngines returns the four algorithms of the paper's comparison
// (Fig. 3/4), bucket first, each constructed through the engine
// registry.
func AllEngines() []EngineSpec {
	return []EngineSpec{
		registrySpec(engine.Bucket),
		registrySpec(engine.CombBLASSPA),
		registrySpec(engine.CombBLASHeap),
		registrySpec(engine.GraphMat),
	}
}

// BucketEngine returns just the paper's algorithm (for Figs. 2 and 6).
func BucketEngine(opt core.Options) EngineSpec {
	name := "SpMSpV-bucket"
	if !opt.SortOutput {
		name += "-unsorted"
	}
	return EngineSpec{Name: name, Build: func(a *sparse.CSC, t int) Engine {
		o := opt
		o.Threads = t
		e, err := engine.New(a, engine.Bucket, o)
		if err != nil {
			panic(err)
		}
		return e
	}}
}

// CaptureFrontiers runs a BFS from source with the bucket engine and
// returns every frontier vector — the replay workload of Fig. 3, whose
// sparse vectors "represent frontiers in a BFS" (paper §IV-C).
func CaptureFrontiers(a *sparse.CSC, source sparse.Index) []*sparse.SpVec {
	eng := core.NewMultiplier(a, core.Options{SortOutput: true})
	res := algorithms.BFS(eng, a.NumCols, source, true)
	return res.Frontiers
}

// FrontierWithNNZ picks from frontiers the one whose nnz is closest to
// the target (for the paper's "nnz(x) = 10K / 2.5M" selections).
func FrontierWithNNZ(frontiers []*sparse.SpVec, target int) *sparse.SpVec {
	var best *sparse.SpVec
	bestDiff := int(^uint(0) >> 1)
	for _, fr := range frontiers {
		diff := fr.NNZ() - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = fr
		}
	}
	return best
}

// Measurement is one timed SpMSpV configuration.
type Measurement struct {
	Engine   string
	Threads  int
	NNZX     int
	NNZY     int
	Elapsed  time.Duration // per multiply (averaged over reps)
	Work     perf.Counters // per multiply (averaged over reps)
	Steps    perf.StepTimes
	HasSteps bool
}

// TimeMultiply measures one engine on one vector: reps repetitions
// after one untimed warmup, reporting average latency and per-call work.
func TimeMultiply(spec EngineSpec, a *sparse.CSC, x *sparse.SpVec, threads, reps int) Measurement {
	eng := spec.Build(a, threads)
	y := sparse.NewSpVec(0, 0)
	eng.Multiply(x, y, semiring.Arithmetic) // warmup; also sizes buffers
	eng.ResetCounters()
	start := time.Now()
	for r := 0; r < reps; r++ {
		eng.Multiply(x, y, semiring.Arithmetic)
	}
	elapsed := time.Since(start) / time.Duration(reps)
	work := eng.Counters()
	divideCounters(&work, int64(reps))

	m := Measurement{
		Engine:  spec.Name,
		Threads: threads,
		NNZX:    x.NNZ(),
		NNZY:    y.NNZ(),
		Elapsed: elapsed,
		Work:    work,
	}
	if bm, ok := eng.(*core.Multiplier); ok {
		m.Steps = bm.Steps()
		m.HasSteps = true
	}
	return m
}

// TimeBFS measures the total SpMSpV time of a full BFS ("we only report
// the runtime of SpMSpVs in all iterations omitting other costs of the
// BFS", paper §IV-D): the frontiers are captured once, then replayed
// against the engine under timing.
func TimeBFS(spec EngineSpec, a *sparse.CSC, frontiers []*sparse.SpVec, threads, reps int) Measurement {
	eng := spec.Build(a, threads)
	y := sparse.NewSpVec(0, 0)
	// Warmup pass over all frontiers.
	for _, x := range frontiers {
		eng.Multiply(x, y, semiring.MinSelect2nd)
	}
	eng.ResetCounters()
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, x := range frontiers {
			eng.Multiply(x, y, semiring.MinSelect2nd)
		}
	}
	elapsed := time.Since(start) / time.Duration(reps)
	work := eng.Counters()
	divideCounters(&work, int64(reps))
	var nnzx int
	for _, x := range frontiers {
		nnzx += x.NNZ()
	}
	return Measurement{
		Engine:  spec.Name,
		Threads: threads,
		NNZX:    nnzx,
		Elapsed: elapsed,
		Work:    work,
	}
}

func divideCounters(c *perf.Counters, n int64) {
	if n <= 1 {
		return
	}
	c.XScanned /= n
	c.ColumnsProbed /= n
	c.MatrixTouched /= n
	c.SPAInit /= n
	c.SPAUpdates /= n
	c.BucketWrites /= n
	c.HeapOps /= n
	c.SortedElems /= n
	c.OutputWritten /= n
	c.SyncEvents /= n
	c.DirectionSwitches /= n
	c.FrontierConversions /= n
	c.OutputConversions /= n
	c.ChunkClaims /= n
	c.Steals /= n
	c.IdleNs /= n
}

// Table accumulates rows and renders fixed-width plain text.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ms formats a duration in fractional milliseconds, the unit of every
// figure in the paper.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// Speedup formats base/cur as "N.NNx".
func Speedup(base, cur time.Duration) string {
	if cur <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(cur))
}
