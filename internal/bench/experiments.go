package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"spmspv/internal/algorithms"
	"spmspv/internal/core"
	"spmspv/internal/engine"
	"spmspv/internal/graphgen"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// sortEngine returns the SpMSpV-sort baseline spec (Table I's fifth
// algorithm, evaluated in the Tables I/II work-measurement experiment).
func sortEngine() EngineSpec {
	return registrySpec(engine.SortBased)
}

// Config holds the shared experiment parameters.
type Config struct {
	// Scale is log2 of the stand-in graph vertex counts. The paper's
	// matrices have 0.4M-16.8M vertices; laptop-scale defaults keep the
	// suite's full-run time in minutes.
	Scale int
	// Threads is the list of thread counts to sweep (the paper sweeps
	// 1..24 on Ivy Bridge and 1..64 on KNL).
	Threads []int
	// Reps is the number of timed repetitions per measurement.
	Reps int
	// Source is the BFS source vertex ("the same source vertex is used
	// ... by all four algorithms", §IV-D).
	Source sparse.Index
}

// DefaultConfig mirrors the paper's sweep shape at laptop scale.
func DefaultConfig() Config {
	return Config{Scale: 14, Threads: []int{1, 2, 4, 8}, Reps: 3, Source: 0}
}

// ljournal returns the stand-in for ljournal-2008, the matrix the paper
// uses for Figs. 2, 3 and 6.
func ljournal(scale int) *sparse.CSC {
	p, _ := graphgen.FindProblem("rmat-ljournal")
	return p.Build(scale)
}

// shuffled returns an unsorted copy of x (for the unsorted-variant arm
// of Fig. 2).
func shuffled(x *sparse.SpVec, seed int64) *sparse.SpVec {
	c := x.Clone()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(c.NNZ(), func(i, j int) {
		c.Ind[i], c.Ind[j] = c.Ind[j], c.Ind[i]
		c.Val[i], c.Val[j] = c.Val[j], c.Val[i]
	})
	c.Sorted = false
	return c
}

// Fig2 reproduces Figure 2: runtime of the SpMSpV-bucket algorithm with
// and without sorted input/output vectors, at a sparse and a dense
// frontier, across thread counts. The paper's nnz(x) of 10K and 2.5M on
// a 5.36M-vertex graph are scaled to the same fractions of the stand-in
// (≈0.2% and ≈47% of n).
func Fig2(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := int(a.NumCols)
	frontiers := CaptureFrontiers(a, cfg.Source)
	for _, target := range []int{n / 500, n * 47 / 100} {
		x := FrontierWithNNZ(frontiers, target)
		if x == nil {
			fmt.Fprintf(w, "fig2: no frontier near nnz=%d\n", target)
			continue
		}
		xu := shuffled(x, 1)
		tbl := NewTable(
			fmt.Sprintf("Fig 2: SpMSpV-bucket sorted vs unsorted, %s stand-in, nnz(x)=%d", "ljournal-2008", x.NNZ()),
			"threads", "sorted(ms)", "unsorted(ms)", "sorted speedup", "unsorted speedup")
		var baseS, baseU time.Duration
		for _, t := range cfg.Threads {
			ms := TimeMultiply(BucketEngine(core.Options{SortOutput: true}), a, x, t, cfg.Reps)
			mu := TimeMultiply(BucketEngine(core.Options{SortOutput: false}), a, xu, t, cfg.Reps)
			if t == cfg.Threads[0] {
				baseS, baseU = ms.Elapsed, mu.Elapsed
			}
			tbl.AddRow(fmt.Sprint(t), Ms(ms.Elapsed), Ms(mu.Elapsed),
				Speedup(baseS, ms.Elapsed), Speedup(baseU, mu.Elapsed))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// Fig3 reproduces Figure 3: runtime of the four SpMSpV algorithms as a
// function of nnz(x), where the vectors are the frontiers of a BFS on
// the ljournal stand-in, at 1 thread and at the largest configured
// thread count.
func Fig3(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	frontiers := CaptureFrontiers(a, cfg.Source)
	tmax := cfg.Threads[len(cfg.Threads)-1]
	for _, threads := range []int{1, tmax} {
		tbl := NewTable(
			fmt.Sprintf("Fig 3: SpMSpV time vs nnz(x), ljournal-2008 stand-in, %d thread(s)", threads),
			"nnz(x)", "bucket(ms)", "CombBLAS-SPA(ms)", "CombBLAS-heap(ms)", "GraphMat(ms)",
			"SPA/bucket", "heap/bucket", "GrM/bucket")
		for _, x := range frontiers {
			times := make([]time.Duration, 0, 4)
			for _, spec := range AllEngines() {
				m := TimeMultiply(spec, a, x, threads, cfg.Reps)
				times = append(times, m.Elapsed)
			}
			tbl.AddRow(fmt.Sprint(x.NNZ()),
				Ms(times[0]), Ms(times[1]), Ms(times[2]), Ms(times[3]),
				Speedup(times[1], times[0]), Speedup(times[2], times[0]), Speedup(times[3], times[0]))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// Fig4 reproduces Figure 4: strong scaling of the four algorithms when
// used inside BFS, across the Table IV problem suite ("we only report
// the runtime of SpMSpVs in all iterations").
func Fig4(w io.Writer, cfg Config) {
	fig45(w, cfg, "Fig 4", graphgen.Problems(), AllEngines())
}

// Fig5 reproduces Figure 5: the same BFS scaling on the manycore
// (KNL-analogue) configuration — the four scale-free graphs of the
// paper's Fig. 5, without GraphMat ("we were unable to run GraphMat on
// KNL"). The thread sweep should be set wider by the caller (the paper
// uses up to 64); work counters substitute for physical cores beyond
// the host's count (see DESIGN.md).
func Fig5(w io.Writer, cfg Config) {
	names := map[string]bool{
		"rmat-ljournal": true, "rmat-webgoogle": true,
		"rmat-wikipedia": true, "rmat-wbedu": true,
	}
	var probs []graphgen.Problem
	for _, p := range graphgen.Problems() {
		if names[p.Name] {
			probs = append(probs, p)
		}
	}
	fig45(w, cfg, "Fig 5 (KNL analogue)", probs, AllEngines()[:3])
}

func fig45(w io.Writer, cfg Config, figName string, probs []graphgen.Problem, specs []EngineSpec) {
	for _, p := range probs {
		a := p.Build(cfg.Scale)
		frontiers := CaptureFrontiers(a, cfg.Source)
		headers := []string{"threads"}
		for _, s := range specs {
			headers = append(headers, s.Name+"(ms)")
		}
		for _, s := range specs {
			headers = append(headers, s.Name+" work")
		}
		tbl := NewTable(
			fmt.Sprintf("%s: BFS SpMSpV time, %s (stand-in for %s, %s, n=%d, nnz=%d, levels=%d)",
				figName, p.Name, p.PaperName, p.Class, a.NumCols, a.NNZ(), len(frontiers)),
			headers...)
		for _, t := range cfg.Threads {
			row := []string{fmt.Sprint(t)}
			var works []string
			for _, spec := range specs {
				m := TimeBFS(spec, a, frontiers, t, cfg.Reps)
				row = append(row, Ms(m.Elapsed))
				works = append(works, fmt.Sprint(m.Work.Work()))
			}
			row = append(row, works...)
			tbl.AddRow(row...)
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// Fig6 reproduces Figure 6: the per-step breakdown (estimate buckets /
// bucketing / SPA-merge / output) of the SpMSpV-bucket algorithm across
// thread counts at three frontier densities. The paper's nnz(x) of 200,
// 10K and 2.5M on 5.36M vertices become the same fractions of the
// stand-in.
func Fig6(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	frontiers := CaptureFrontiers(a, cfg.Source)
	for _, x := range distinctByNNZ(frontiers, 3) {
		tbl := NewTable(
			fmt.Sprintf("Fig 6: SpMSpV-bucket step breakdown, nnz(x)=%d", x.NNZ()),
			"threads", "estimate(ms)", "bucketing(ms)", "SPA-merge(ms)", "output(ms)", "total(ms)")
		for _, t := range cfg.Threads {
			spec := BucketEngine(core.Options{SortOutput: true})
			eng := spec.Build(a, t).(*core.Multiplier)
			y := sparse.NewSpVec(0, 0)
			eng.Multiply(x, y, semiring.Arithmetic) // warmup
			var acc perf.StepTimes
			for r := 0; r < cfg.Reps; r++ {
				eng.Multiply(x, y, semiring.Arithmetic)
				acc.Add(eng.Steps())
			}
			acc.Scale(cfg.Reps)
			tbl.AddRow(fmt.Sprint(t), Ms(acc.Estimate), Ms(acc.Bucket), Ms(acc.Merge),
				Ms(acc.Output), Ms(acc.Total()))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// Table4 reproduces Table IV: the test problem suite with vertex/edge
// counts and pseudo-diameters, side by side with the originals' numbers
// from the paper.
func Table4(w io.Writer, cfg Config) {
	paper := map[string][3]string{
		"amazon0312":         {"0.40M", "3.20M", "21"},
		"web-Google":         {"0.92M", "5.11M", "16"},
		"wikipedia-20070206": {"3.56M", "45.03M", "14"},
		"ljournal-2008":      {"5.36M", "79.02M", "34"},
		"wb-edu":             {"9.85M", "57.16M", "38"},
		"dielFilterV3real":   {"1.10M", "89.31M", "84"},
		"G3_circuit":         {"1.56M", "7.66M", "514"},
		"hugetric-00020":     {"7.12M", "21.36M", "3662"},
		"hugetrace-00020":    {"16.00M", "48.00M", "5633"},
		"delaunay_n24":       {"16.77M", "100.66M", "1718"},
		"rgg_n_2_24_s0":      {"16.77M", "165.10M", "3069"},
	}
	tbl := NewTable(
		fmt.Sprintf("Table IV: test problems (stand-ins generated at scale %d)", cfg.Scale),
		"class", "stand-in", "paper matrix", "n", "nnz", "avg deg", "pseudo-diam",
		"paper n", "paper nnz", "paper diam")
	for _, p := range graphgen.Problems() {
		a := p.Build(cfg.Scale)
		s := sparse.ComputeStats(p.Name, a, cfg.Source)
		pp := paper[p.PaperName]
		tbl.AddRow(p.Class.String(), p.Name, p.PaperName,
			fmt.Sprint(s.Vertices), fmt.Sprint(s.Edges),
			fmt.Sprintf("%.1f", s.AvgDegree), fmt.Sprint(s.PseudoDiameter),
			pp[0], pp[1], pp[2])
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}

// Tables12 reproduces the classifications of Tables I and II with
// measured work counters instead of asymptotic formulas: for an
// Erdős–Rényi matrix and a fixed sparse input, it reports each
// algorithm's input-scan, column-probe, matrix, SPA-initialization and
// sorting work at two thread counts. A work-efficient algorithm's
// totals stay flat as t grows; the row-split baselines' x-scan grows
// linearly and GraphMat's probes stay pinned at nzc.
func Tables12(w io.Writer, cfg Config) {
	n := sparse.Index(1) << cfg.Scale
	d := 8.0
	a := graphgen.ErdosRenyi(n, d, 42)
	for _, f := range []int{64, int(n) / 64, int(n) / 4} {
		x := randomFrontier(n, f, 7)
		tbl := NewTable(
			fmt.Sprintf("Tables I/II (measured): ER n=%d d=%.0f, nnz(x)=%d — per-multiply work", n, d, f),
			"algorithm", "t", "x-scanned", "col-probes", "matrix", "SPA-init", "SPA-upd",
			"bucket-wr", "heap-ops", "sorted", "total")
		for _, spec := range append(AllEngines(), sortEngine()) {
			for _, t := range []int{1, cfg.Threads[len(cfg.Threads)-1]} {
				m := TimeMultiply(spec, a, x, t, 1)
				c := m.Work
				tbl.AddRow(spec.Name, fmt.Sprint(t),
					fmt.Sprint(c.XScanned), fmt.Sprint(c.ColumnsProbed), fmt.Sprint(c.MatrixTouched),
					fmt.Sprint(c.SPAInit), fmt.Sprint(c.SPAUpdates), fmt.Sprint(c.BucketWrites),
					fmt.Sprint(c.HeapOps), fmt.Sprint(c.SortedElems), fmt.Sprint(c.Work()))
			}
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// Platform prints the host configuration next to the paper's Table III
// platforms, documenting the hardware substitution.
func Platform(w io.Writer, cfg Config) {
	tbl := NewTable("Table III: evaluated platform (substitution for Edison/Cori)",
		"property", "this host", "paper: Edison (Ivy Bridge)", "paper: Cori (KNL)")
	tbl.AddRow("cores", fmt.Sprint(runtime.NumCPU()), "2×12", "64")
	tbl.AddRow("GOMAXPROCS", fmt.Sprint(runtime.GOMAXPROCS(0)), "-", "-")
	tbl.AddRow("arch", runtime.GOARCH, "x86-64", "x86-64 (KNL)")
	tbl.AddRow("os", runtime.GOOS, "Cray XC30", "Cray XC40")
	tbl.AddRow("toolchain", runtime.Version(), "gcc 5.3.0 -O3", "gcc 5.3.0 -O3")
	tbl.Render(w)
	fmt.Fprintln(w, `
Scaling beyond the host's physical cores is evaluated with the work
counters (perf.Counters): work-efficiency — the paper's central claim —
is a property of total work versus thread count and is machine
independent. Wall-clock strong-scaling curves require the original core
counts and are reported for the thread counts the host actually has.`)
}

// distinctByNNZ picks up to k frontiers with distinct sizes spanning
// the sparsity range: the sparsest, the densest, and evenly spaced
// picks in between (by rank).
func distinctByNNZ(frontiers []*sparse.SpVec, k int) []*sparse.SpVec {
	uniq := map[int]*sparse.SpVec{}
	for _, fr := range frontiers {
		if _, ok := uniq[fr.NNZ()]; !ok {
			uniq[fr.NNZ()] = fr
		}
	}
	sizes := make([]int, 0, len(uniq))
	for s := range uniq {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	if len(sizes) <= k {
		out := make([]*sparse.SpVec, 0, len(sizes))
		for _, s := range sizes {
			out = append(out, uniq[s])
		}
		return out
	}
	out := make([]*sparse.SpVec, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, uniq[sizes[i*(len(sizes)-1)/(k-1)]])
	}
	return out
}

func randomFrontier(n sparse.Index, f int, seed int64) *sparse.SpVec {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(int(n))[:f]
	x := sparse.NewSpVec(n, f)
	for _, i := range perm {
		x.Append(sparse.Index(i), rng.Float64()+0.5)
	}
	x.Sort()
	return x
}

// Masked compares BFS with the visited-set mask pushed into the merge
// step (the §V GraphBLAS extension) against plain BFS with post-hoc
// filtering.
func Masked(w io.Writer, cfg Config) {
	tbl := NewTable("Extension: masked SpMSpV in BFS (paper §V future work)",
		"graph", "threads", "plain BFS(ms)", "masked BFS(ms)", "masked/plain")
	for _, name := range []string{"rmat-ljournal", "grid5-g3circuit"} {
		p, _ := graphgen.FindProblem(name)
		a := p.Build(cfg.Scale)
		for _, t := range cfg.Threads {
			opt := core.Options{Threads: t, SortOutput: true}
			engPlain := core.NewMultiplier(a, opt)
			engMasked := core.NewMultiplier(a, opt)
			// Warmup.
			algorithms.BFS(engPlain, a.NumCols, cfg.Source, false)
			algorithms.BFSMasked(engMasked, a.NumCols, cfg.Source)

			start := time.Now()
			for r := 0; r < cfg.Reps; r++ {
				algorithms.BFS(engPlain, a.NumCols, cfg.Source, false)
			}
			plain := time.Since(start) / time.Duration(cfg.Reps)
			start = time.Now()
			for r := 0; r < cfg.Reps; r++ {
				algorithms.BFSMasked(engMasked, a.NumCols, cfg.Source)
			}
			masked := time.Since(start) / time.Duration(cfg.Reps)
			ratio := float64(masked) / float64(plain)
			tbl.AddRow(name, fmt.Sprint(t), Ms(plain), Ms(masked), fmt.Sprintf("%.2f", ratio))
		}
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}
