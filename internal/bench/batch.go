package bench

import (
	"fmt"
	"io"
	"time"

	"spmspv/internal/algorithms"
	"spmspv/internal/core"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MultiSources picks k BFS roots spread across the vertex range,
// starting at base (the multi-source analogue of Config.Source).
func MultiSources(n sparse.Index, base sparse.Index, k int) []sparse.Index {
	return algorithms.SpreadSources(n, base, k)
}

// CaptureMultiFrontiers runs a batched multi-source BFS from the
// given roots with the bucket engine and returns every round's
// frontier batch — the replay workload of the batched-multiply
// benchmark, the multi-frontier analogue of CaptureFrontiers.
func CaptureMultiFrontiers(a *sparse.CSC, sources []sparse.Index) [][]*sparse.SpVec {
	eng := core.NewMultiplier(a, core.Options{SortOutput: true})
	res := algorithms.MultiBFS(eng, a.NumCols, sources, true)
	return res.Batches
}

// Batch evaluates the batched multi-frontier multiply: the frontier
// batches of a k-source BFS on the ljournal stand-in are replayed
// through the bucket engine at several batch granularities — size 1 is
// the loop-of-Multiply baseline, size k feeds each round's whole batch
// to one MultiplyBatch call. The shared Estimate/bucket-sizing pass is
// what the larger granularities amortize; the win concentrates in the
// sparse ramp-up rounds, so those are also reported separately.
func Batch(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := a.NumCols
	const k = 8
	sources := MultiSources(n, cfg.Source, k)
	batches := CaptureMultiFrontiers(a, sources)
	tmax := cfg.Threads[len(cfg.Threads)-1]

	// The sparse rounds: frontiers below 1/256 of the vertex count,
	// where per-call setup rivals the O(df) work.
	sparseCut := SparseRoundCut(n)
	sparseBatches := FilterSparseBatches(batches, sparseCut)

	for _, arm := range []struct {
		name    string
		batches [][]*sparse.SpVec
	}{
		{fmt.Sprintf("all rounds (%d)", len(batches)), batches},
		{fmt.Sprintf("sparse rounds nnz≤%d (%d)", sparseCut, len(sparseBatches)), sparseBatches},
	} {
		if len(arm.batches) == 0 {
			continue
		}
		total := CountFrontiers(arm.batches)
		tbl := NewTable(
			fmt.Sprintf("Batched multiply: %d-source BFS replay, ljournal stand-in, %s, %d frontiers, t=%d",
				k, arm.name, total, tmax),
			"batch size", "time/frontier(µs)", "vs size 1")
		var base time.Duration
		for _, bs := range []int{1, 2, 4, 8} {
			per := timeBatchReplay(a, arm.batches, bs, tmax, cfg.Reps)
			if bs == 1 {
				base = per
			}
			tbl.AddRow(fmt.Sprint(bs),
				fmt.Sprintf("%.2f", float64(per.Nanoseconds())/1e3),
				Speedup(base, per))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// SparseRoundCut is the nnz(x) bound below which a frontier counts as
// "sparse" in the batch sweeps: 1/256 of the vertex count, the regime
// where per-call setup rivals the O(df) work.
func SparseRoundCut(n sparse.Index) int { return int(n) / 256 }

// FilterSparseBatches keeps, per round, the frontiers with nnz ≤ cut,
// dropping rounds left empty — one definition of the "sparse rounds"
// arm shared by the experiment table and BenchmarkBatchMultiply.
func FilterSparseBatches(batches [][]*sparse.SpVec, cut int) [][]*sparse.SpVec {
	var out [][]*sparse.SpVec
	for _, batch := range batches {
		var sb []*sparse.SpVec
		for _, x := range batch {
			if x.NNZ() <= cut {
				sb = append(sb, x)
			}
		}
		if len(sb) > 0 {
			out = append(out, sb)
		}
	}
	return out
}

// CountFrontiers returns the total frontier count across rounds.
func CountFrontiers(batches [][]*sparse.SpVec) int {
	total := 0
	for _, batch := range batches {
		total += len(batch)
	}
	return total
}

// ReplayBatches runs one replay pass of the frontier batches through
// the engine's batched multiply, chunked to batchSize; ys is reused
// scratch with at least max-round-width entries. The BFS semiring
// matches the workload the batches came from.
func ReplayBatches(eng *core.Multiplier, batches [][]*sparse.SpVec, batchSize int, ys []*sparse.SpVec) {
	for _, batch := range batches {
		for lo := 0; lo < len(batch); lo += batchSize {
			hi := lo + batchSize
			if hi > len(batch) {
				hi = len(batch)
			}
			eng.MultiplyBatch(batch[lo:hi], ys[:hi-lo], semiring.MinSelect2nd)
		}
	}
}

// ReplayScratch allocates the ys scratch ReplayBatches needs.
func ReplayScratch(batches [][]*sparse.SpVec) []*sparse.SpVec {
	maxK := 0
	for _, batch := range batches {
		if len(batch) > maxK {
			maxK = len(batch)
		}
	}
	ys := make([]*sparse.SpVec, maxK)
	for q := range ys {
		ys[q] = sparse.NewSpVec(0, 0)
	}
	return ys
}

// timeBatchReplay replays the frontier batches, chunked to the given
// batch size, through one bucket engine and returns the average time
// per frontier.
func timeBatchReplay(a *sparse.CSC, batches [][]*sparse.SpVec, batchSize, threads, reps int) time.Duration {
	eng := core.NewMultiplier(a, core.Options{Threads: threads, SortOutput: true})
	ys := ReplayScratch(batches)
	ReplayBatches(eng, batches, batchSize, ys) // warmup: sizes pooled buffers
	start := time.Now()
	for r := 0; r < reps; r++ {
		ReplayBatches(eng, batches, batchSize, ys)
	}
	return time.Since(start) / time.Duration(reps*CountFrontiers(batches))
}
