package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/hybrid"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

func TestAllEnginesBuildAndAgree(t *testing.T) {
	a := graphgen.ErdosRenyi(500, 4, 3)
	x := sparse.NewSpVec(500, 20)
	for i := sparse.Index(0); i < 20; i++ {
		x.Append(i*25, 1)
	}
	var results []*sparse.SpVec
	for _, spec := range append(AllEngines(), sortEngine()) {
		eng := spec.Build(a, 3)
		if eng.Name() == "" {
			t.Errorf("engine with empty name")
		}
		y := sparse.NewSpVec(0, 0)
		eng.Multiply(x, y, semiring.Arithmetic)
		results = append(results, y.Clone())
		if eng.Counters().Work() == 0 {
			t.Errorf("%s: no work recorded", spec.Name)
		}
		eng.ResetCounters()
		if eng.Counters().Work() != 0 {
			t.Errorf("%s: reset failed", spec.Name)
		}
	}
	for i := 1; i < len(results); i++ {
		if !results[i].EqualValues(results[0], 1e-9) {
			t.Errorf("engine %d disagrees with engine 0", i)
		}
	}
}

func TestCaptureFrontiersCoverGraph(t *testing.T) {
	a := graphgen.Grid2D(12, 12)
	frontiers := CaptureFrontiers(a, 0)
	if len(frontiers) == 0 {
		t.Fatal("no frontiers captured")
	}
	total := 0
	for _, fr := range frontiers {
		total += fr.NNZ()
	}
	if total != 144 {
		t.Errorf("frontiers covered %d vertices, want 144", total)
	}
	// Frontier sizes must follow the BFS wave: first is the source.
	if frontiers[0].NNZ() != 1 {
		t.Errorf("first frontier nnz = %d", frontiers[0].NNZ())
	}
}

func TestFrontierWithNNZ(t *testing.T) {
	mk := func(nnz int) *sparse.SpVec {
		v := sparse.NewSpVec(1000, nnz)
		for i := 0; i < nnz; i++ {
			v.Append(sparse.Index(i), 1)
		}
		return v
	}
	frontiers := []*sparse.SpVec{mk(1), mk(10), mk(100)}
	if got := FrontierWithNNZ(frontiers, 12); got.NNZ() != 10 {
		t.Errorf("picked nnz=%d, want 10", got.NNZ())
	}
	if got := FrontierWithNNZ(frontiers, 1000); got.NNZ() != 100 {
		t.Errorf("picked nnz=%d, want 100", got.NNZ())
	}
	if got := FrontierWithNNZ(nil, 5); got != nil {
		t.Error("empty frontier list should give nil")
	}
}

func TestTimeMultiplyAndTimeBFS(t *testing.T) {
	a := graphgen.ErdosRenyi(400, 4, 5)
	x := sparse.NewSpVec(400, 5)
	for i := sparse.Index(0); i < 5; i++ {
		x.Append(i*80, 1)
	}
	m := TimeMultiply(AllEngines()[0], a, x, 2, 2)
	if m.Elapsed <= 0 || m.Engine != "SpMSpV-bucket" || m.NNZX != 5 {
		t.Errorf("measurement: %+v", m)
	}
	if !m.HasSteps {
		t.Error("bucket engine should report step times")
	}

	frontiers := CaptureFrontiers(a, 0)
	mb := TimeBFS(AllEngines()[1], a, frontiers, 2, 1)
	if mb.Elapsed <= 0 || mb.Engine != "CombBLAS-SPA" {
		t.Errorf("bfs measurement: %+v", mb)
	}
}

func TestHybridSpecUsesRegisteredEngine(t *testing.T) {
	a := graphgen.ErdosRenyi(1000, 4, 7)
	eng := HybridSpec(0.1).Build(a, 2)
	h, ok := eng.(*hybrid.Engine)
	if !ok {
		t.Fatalf("HybridSpec built a %T, want the registered *hybrid.Engine", eng)
	}
	if h.Threshold() != 0.1 {
		t.Errorf("threshold = %g, want 0.1", h.Threshold())
	}
	y := sparse.NewSpVec(0, 0)

	denseX := sparse.NewSpVec(1000, 500)
	for i := sparse.Index(0); i < 500; i++ {
		denseX.Append(i*2, 1)
	}
	h.Multiply(denseX, y, semiring.Arithmetic)
	if h.Switches() != 1 {
		t.Error("dense input should use the matrix-driven side")
	}
	// Both paths give the same answer.
	y2 := sparse.NewSpVec(0, 0)
	core.NewMultiplier(a, core.Options{SortOutput: true}).Multiply(denseX, y2, semiring.Arithmetic)
	if !y.EqualValues(y2, 1e-9) {
		t.Error("hybrid result differs from bucket result")
	}

	// Threshold 0 asks the registry path for calibration.
	cal := HybridSpec(0).Build(a, 2).(*hybrid.Engine)
	if !cal.Calibrated() {
		t.Error("HybridSpec(0) should build a calibrated engine")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "col-a", "b")
	tbl.AddRow("1", "22222")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "col-a") {
		t.Errorf("render output: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d: %q", len(lines), out)
	}
	// Aligned columns: header and rows start at the same offset.
	if !strings.HasPrefix(lines[1], "  col-a") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.500" {
		t.Errorf("Ms = %q", got)
	}
	if got := Speedup(2*time.Second, time.Second); got != "2.00x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 0); got != "-" {
		t.Errorf("Speedup(0) = %q", got)
	}
}

func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	// Every experiment must run end-to-end at a tiny scale and produce
	// non-empty output.
	cfg := Config{Scale: 8, Threads: []int{1, 2}, Reps: 1, Source: 0}
	experiments := map[string]func(){}
	var buf bytes.Buffer
	experiments["fig2"] = func() { Fig2(&buf, cfg) }
	experiments["fig3"] = func() { Fig3(&buf, cfg) }
	experiments["fig6"] = func() { Fig6(&buf, cfg) }
	experiments["table4"] = func() { Table4(&buf, cfg) }
	experiments["tables12"] = func() { Tables12(&buf, cfg) }
	experiments["platform"] = func() { Platform(&buf, cfg) }
	experiments["ablation"] = func() { Ablation(&buf, cfg) }
	experiments["masked"] = func() { Masked(&buf, cfg) }
	experiments["hybrid"] = func() { Hybrid(&buf, cfg) }
	experiments["batch"] = func() { Batch(&buf, cfg) }
	experiments["spmv"] = func() { SpMVCrossover(&buf, cfg) }
	for name, run := range experiments {
		buf.Reset()
		run()
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}
