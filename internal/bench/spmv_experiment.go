package bench

import (
	"fmt"
	"io"

	"spmspv/internal/core"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/spmv"
	"time"
)

// SpMVCrossover quantifies §III-C's comparison between SpMSpV-bucket
// and the binning-based SpMV of Buono et al. (paper ref [19]): as the
// input vector densifies, the sparse algorithm's per-selected-column
// overheads meet the dense algorithm's fixed O(nnz) cost. The
// experiment sweeps nnz(x)/n and reports both runtimes and the ratio —
// the crossover bolsters the paper's §V remark that switching to a
// matrix(/dense)-driven formulation eventually pays.
func SpMVCrossover(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := a.NumCols
	tmax := cfg.Threads[len(cfg.Threads)-1]

	tbl := NewTable(
		fmt.Sprintf("§III-C: SpMSpV-bucket vs binned SpMV (ref [19]), ljournal stand-in, t=%d", tmax),
		"nnz(x)/n", "nnz(x)", "SpMSpV(ms)", "binned SpMV(ms)", "SpMSpV/SpMV")

	binned := spmv.NewBinned(a, tmax, 4)
	bucket := core.NewMultiplier(a, core.Options{Threads: tmax, SortOutput: true})
	dense := make([]float64, n)
	yDense := make([]float64, a.NumRows)
	y := sparse.NewSpVec(0, 0)

	for _, perMille := range []int{1, 10, 50, 100, 250, 500, 1000} {
		f := int(int64(n) * int64(perMille) / 1000)
		if f < 1 {
			f = 1
		}
		x := randomFrontier(n, f, int64(perMille))
		for i := range dense {
			dense[i] = 0
		}
		for k, i := range x.Ind {
			dense[i] = x.Val[k]
		}

		bucket.Multiply(x, y, semiring.Arithmetic) // warmup
		start := time.Now()
		for r := 0; r < cfg.Reps; r++ {
			bucket.Multiply(x, y, semiring.Arithmetic)
		}
		sparseTime := time.Since(start) / time.Duration(cfg.Reps)

		binned.Multiply(dense, yDense) // warmup
		start = time.Now()
		for r := 0; r < cfg.Reps; r++ {
			binned.Multiply(dense, yDense)
		}
		denseTime := time.Since(start) / time.Duration(cfg.Reps)

		tbl.AddRow(fmt.Sprintf("%.3f", float64(perMille)/1000), fmt.Sprint(f),
			Ms(sparseTime), Ms(denseTime),
			fmt.Sprintf("%.2f", float64(sparseTime)/float64(denseTime)))
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}
