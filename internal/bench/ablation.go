package bench

import (
	"fmt"
	"io"

	"spmspv/internal/core"
	"spmspv/internal/engine"
	"spmspv/internal/graphgen"
	"spmspv/internal/hybrid"
	"spmspv/internal/sparse"
)

// Ablation sweeps the design choices the paper calls out in §III-A:
// buckets per thread (load balancing), the thread-private staging
// buffer (cache efficiency), dynamic versus static merge scheduling,
// the ∞-sentinel versus epoch-tag merge, and the even versus
// nonzero-weighted Step-1 split (§III-B). Each variant is timed on the
// ljournal stand-in at a sparse and a dense frontier.
func Ablation(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := int(a.NumCols)
	frontiers := CaptureFrontiers(a, cfg.Source)
	tmax := cfg.Threads[len(cfg.Threads)-1]

	variants := []struct {
		name string
		opt  core.Options
	}{
		{"default (4 buckets/thread)", core.Options{SortOutput: true}},
		{"1 bucket/thread", core.Options{SortOutput: true, BucketsPerThread: 1}},
		{"2 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 2}},
		{"8 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 8}},
		{"16 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 16}},
		{"staging buffer 32", core.Options{SortOutput: true, StagingEntries: 32}},
		{"staging buffer 256", core.Options{SortOutput: true, StagingEntries: 256}},
		{"static merge sched", core.Options{SortOutput: true, MergeSched: core.SchedStatic}},
		{"∞-sentinel merge", core.Options{SortOutput: true, UseInfSentinel: true}},
		{"even x split", core.Options{SortOutput: true, SplitEvenly: true}},
		{"unsorted output", core.Options{SortOutput: false}},
	}

	for _, target := range []int{n / 500, n * 47 / 100} {
		x := FrontierWithNNZ(frontiers, target)
		if x == nil {
			continue
		}
		tbl := NewTable(
			fmt.Sprintf("Ablation (§III-A/B design choices): ljournal stand-in, nnz(x)=%d, t=%d",
				x.NNZ(), tmax),
			"variant", "time(ms)", "vs default", "sync events")
		var base Measurement
		for i, v := range variants {
			m := TimeMultiply(BucketEngine(v.opt), a, x, tmax, cfg.Reps)
			if i == 0 {
				base = m
			}
			tbl.AddRow(v.name, Ms(m.Elapsed), Speedup(base.Elapsed, m.Elapsed),
				fmt.Sprint(m.Work.SyncEvents))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// HybridSpec builds the registered Hybrid engine (internal/hybrid) at
// a fixed switch threshold; threshold 0 asks for construction-time
// calibration, exactly as the registry constructor does.
func HybridSpec(threshold float64) EngineSpec {
	return EngineSpec{Name: "Hybrid", Build: func(a *sparse.CSC, t int) Engine {
		if threshold == 0 {
			e, err := engine.New(a, engine.Hybrid, engine.Options{Threads: t, SortOutput: true})
			if err != nil {
				panic(err)
			}
			return e
		}
		return hybrid.NewWithThreshold(a, engine.Options{Threads: t, SortOutput: true}, threshold)
	}}
}

// Hybrid evaluates the §V direction-switch extension with the
// registered Hybrid engine: BFS SpMSpV time for bucket-only,
// GraphMat-only, the calibrated hybrid, and a threshold sweep.
// Matrix-driven call counts come from the engines'
// DirectionSwitches counter.
func Hybrid(w io.Writer, cfg Config) {
	p, _ := graphgen.FindProblem("rmat-ljournal")
	a := p.Build(cfg.Scale)
	frontiers := CaptureFrontiers(a, cfg.Source)
	tmax := cfg.Threads[len(cfg.Threads)-1]

	tbl := NewTable(
		fmt.Sprintf("Extension (§V): hybrid vector/matrix-driven switch, BFS on ljournal stand-in, t=%d", tmax),
		"engine", "threshold", "BFS SpMSpV(ms)", "matrix-driven calls")
	bucketSpec := AllEngines()[0]
	m := TimeBFS(bucketSpec, a, frontiers, tmax, cfg.Reps)
	tbl.AddRow("bucket only", "-", Ms(m.Elapsed), "0")
	gm := AllEngines()[3]
	m = TimeBFS(gm, a, frontiers, tmax, cfg.Reps)
	tbl.AddRow("GraphMat only", "-", Ms(m.Elapsed), fmt.Sprint(len(frontiers)))

	calibrated := HybridSpec(0)
	eng := calibrated.Build(a, tmax).(*hybrid.Engine)
	fixed := HybridSpec(eng.Threshold()) // reuse the learned threshold across reps
	m = TimeBFS(fixed, a, frontiers, tmax, cfg.Reps)
	tbl.AddRow("hybrid (calibrated)", fmt.Sprintf("%.4f", eng.Threshold()),
		Ms(m.Elapsed), fmt.Sprint(m.Work.DirectionSwitches))

	for _, th := range []float64{0.01, 0.05, 0.1, 0.25} {
		m := TimeBFS(HybridSpec(th), a, frontiers, tmax, cfg.Reps)
		tbl.AddRow("hybrid", fmt.Sprintf("%.2f", th), Ms(m.Elapsed),
			fmt.Sprint(m.Work.DirectionSwitches))
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}
