package bench

import (
	"fmt"
	"io"

	"spmspv/internal/baselines"
	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Ablation sweeps the design choices the paper calls out in §III-A:
// buckets per thread (load balancing), the thread-private staging
// buffer (cache efficiency), dynamic versus static merge scheduling,
// the ∞-sentinel versus epoch-tag merge, and the even versus
// nonzero-weighted Step-1 split (§III-B). Each variant is timed on the
// ljournal stand-in at a sparse and a dense frontier.
func Ablation(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := int(a.NumCols)
	frontiers := CaptureFrontiers(a, cfg.Source)
	tmax := cfg.Threads[len(cfg.Threads)-1]

	variants := []struct {
		name string
		opt  core.Options
	}{
		{"default (4 buckets/thread)", core.Options{SortOutput: true}},
		{"1 bucket/thread", core.Options{SortOutput: true, BucketsPerThread: 1}},
		{"2 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 2}},
		{"8 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 8}},
		{"16 buckets/thread", core.Options{SortOutput: true, BucketsPerThread: 16}},
		{"staging buffer 32", core.Options{SortOutput: true, StagingEntries: 32}},
		{"staging buffer 256", core.Options{SortOutput: true, StagingEntries: 256}},
		{"static merge sched", core.Options{SortOutput: true, MergeSched: core.SchedStatic}},
		{"∞-sentinel merge", core.Options{SortOutput: true, UseInfSentinel: true}},
		{"even x split", core.Options{SortOutput: true, SplitEvenly: true}},
		{"unsorted output", core.Options{SortOutput: false}},
	}

	for _, target := range []int{n / 500, n * 47 / 100} {
		x := FrontierWithNNZ(frontiers, target)
		if x == nil {
			continue
		}
		tbl := NewTable(
			fmt.Sprintf("Ablation (§III-A/B design choices): ljournal stand-in, nnz(x)=%d, t=%d",
				x.NNZ(), tmax),
			"variant", "time(ms)", "vs default", "sync events")
		var base Measurement
		for i, v := range variants {
			m := TimeMultiply(BucketEngine(v.opt), a, x, tmax, cfg.Reps)
			if i == 0 {
				base = m
			}
			tbl.AddRow(v.name, Ms(m.Elapsed), Speedup(base.Elapsed, m.Elapsed),
				fmt.Sprint(m.Work.SyncEvents))
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}

// HybridEngine picks per call between the vector-driven bucket
// algorithm and the matrix-driven GraphMat algorithm based on input
// density — the switch the paper names as future work in §V ("we will
// investigate when and if it is beneficial to switch to a matrix-driven
// algorithm"). The threshold is the fraction of columns that must be
// active before the matrix-driven side is used.
type HybridEngine struct {
	bucket    *core.Multiplier
	matrix    *baselines.GraphMat
	threshold float64
	n         sparse.Index
	switches  int64
}

// NewHybridEngine builds both sides; threshold is the nnz(x)/n fraction
// above which the matrix-driven algorithm runs.
func NewHybridEngine(a *sparse.CSC, threads int, threshold float64) *HybridEngine {
	return &HybridEngine{
		bucket:    core.NewMultiplier(a, core.Options{Threads: threads, SortOutput: true}),
		matrix:    baselines.NewGraphMat(a, threads),
		threshold: threshold,
		n:         a.NumCols,
	}
}

// Multiply dispatches on input density.
func (h *HybridEngine) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	if float64(x.NNZ()) >= h.threshold*float64(h.n) {
		h.switches++
		h.matrix.Multiply(x, y, sr)
		return
	}
	h.bucket.Multiply(x, y, sr)
}

// Counters merges both sides' work.
func (h *HybridEngine) Counters() perf.Counters {
	c := h.bucket.Counters()
	mc := h.matrix.Counters()
	c.Merge(&mc)
	return c
}

// ResetCounters zeroes both sides.
func (h *HybridEngine) ResetCounters() {
	h.bucket.ResetCounters()
	h.matrix.ResetCounters()
	h.switches = 0
}

// Switches reports how many calls took the matrix-driven path.
func (h *HybridEngine) Switches() int64 { return h.switches }

// Name identifies the engine in tables.
func (h *HybridEngine) Name() string { return "Hybrid" }

// Hybrid evaluates the §V direction-switch extension: BFS SpMSpV time
// for bucket-only, GraphMat-only and the hybrid at several thresholds.
func Hybrid(w io.Writer, cfg Config) {
	p, _ := graphgen.FindProblem("rmat-ljournal")
	a := p.Build(cfg.Scale)
	frontiers := CaptureFrontiers(a, cfg.Source)
	tmax := cfg.Threads[len(cfg.Threads)-1]

	tbl := NewTable(
		fmt.Sprintf("Extension (§V): hybrid vector/matrix-driven switch, BFS on ljournal stand-in, t=%d", tmax),
		"engine", "threshold", "BFS SpMSpV(ms)", "matrix-driven calls")
	bucketSpec := AllEngines()[0]
	m := TimeBFS(bucketSpec, a, frontiers, tmax, cfg.Reps)
	tbl.AddRow("bucket only", "-", Ms(m.Elapsed), "0")
	gm := AllEngines()[3]
	m = TimeBFS(gm, a, frontiers, tmax, cfg.Reps)
	tbl.AddRow("GraphMat only", "-", Ms(m.Elapsed), fmt.Sprint(len(frontiers)))

	for _, th := range []float64{0.01, 0.05, 0.1, 0.25} {
		spec := EngineSpec{Name: "Hybrid", Build: func(a *sparse.CSC, t int) Engine {
			return NewHybridEngine(a, t, th)
		}}
		eng := spec.Build(a, tmax).(*HybridEngine)
		y := sparse.NewSpVec(0, 0)
		for _, x := range frontiers {
			eng.Multiply(x, y, semiring.MinSelect2nd)
		}
		switches := eng.Switches()
		m := TimeBFS(spec, a, frontiers, tmax, cfg.Reps)
		tbl.AddRow("hybrid", fmt.Sprintf("%.2f", th), Ms(m.Elapsed), fmt.Sprint(switches))
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}
