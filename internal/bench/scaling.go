package bench

import (
	"fmt"
	"io"

	"spmspv/internal/core"
)

// Scaling sweeps thread counts on the skewed power-law (RMAT) stand-in
// and compares the three Step-2 schedules side by side — static
// (contiguous bucket ranges), dynamic (the paper's atomic-counter
// claims) and stealing (the persistent work-stealing executor with
// entry-weighted initial shares) — at a sparse and a dense frontier.
// Alongside per-multiply latency it reports the scheduler's own
// footprint from perf.Counters: chunk claims and steals per multiply,
// dynamic sync events, and the per-thread idle fraction measured at the
// executor's join barriers (time a slot spent finished while the
// slowest slot still ran, as a percent of threads × wall time). A
// skewed frontier is exactly where static splits lose: its idle% grows
// with t while stealing converts that idle time into steals.
func Scaling(w io.Writer, cfg Config) {
	a := ljournal(cfg.Scale)
	n := int(a.NumCols)
	frontiers := CaptureFrontiers(a, cfg.Source)
	scheds := []struct {
		name  string
		sched core.Sched
	}{
		{"static", core.SchedStatic},
		{"dynamic", core.SchedDynamic},
		{"stealing", core.SchedStealing},
	}
	for _, target := range []int{n / 100, n / 4} {
		x := FrontierWithNNZ(frontiers, target)
		if x == nil {
			fmt.Fprintf(w, "scaling: no frontier near nnz=%d\n", target)
			continue
		}
		tbl := NewTable(
			fmt.Sprintf("Scaling: Step-2 schedules on rmat-ljournal stand-in (power-law), nnz(x)=%d", x.NNZ()),
			"threads", "sched", "ns/op", "claims/op", "steals/op", "sync/op", "idle%/thread")
		for _, t := range cfg.Threads {
			for _, s := range scheds {
				opt := core.Options{SortOutput: true, MergeSched: s.sched}
				m := TimeMultiply(BucketEngine(opt), a, x, t, cfg.Reps)
				idle := "-"
				if t > 0 && m.Elapsed > 0 {
					idle = fmt.Sprintf("%.1f",
						100*float64(m.Work.IdleNs)/float64(int64(t)*m.Elapsed.Nanoseconds()))
				}
				tbl.AddRow(fmt.Sprint(t), s.name,
					fmt.Sprint(m.Elapsed.Nanoseconds()),
					fmt.Sprint(m.Work.ChunkClaims),
					fmt.Sprint(m.Work.Steals),
					fmt.Sprint(m.Work.SyncEvents),
					idle)
			}
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}
}
