// Package perf provides deterministic work counters and per-step timers
// for SpMSpV algorithms.
//
// The paper's central claim is about work-efficiency: the total work
// performed by all threads should stay proportional to the number of
// required arithmetic operations as the thread count grows. Wall-clock
// time on a machine with few cores cannot demonstrate that, but the work
// quantities of Table I/II of the paper can be measured exactly. Every
// algorithm in this repository feeds one Counters value per worker, and
// the harness aggregates them to reproduce the paper's who-wins shapes
// deterministically.
package perf

import (
	"fmt"
	"time"
)

// Counters accumulates the work quantities of one or more SpMSpV
// invocations. Each worker owns a private Counters value (no sharing, no
// atomics); callers aggregate with Merge after the parallel section.
//
// The fields correspond directly to the cost terms in Tables I and II of
// the paper:
//
//   - XScanned: input-vector nonzeros examined, counting re-scans. The
//     row-split algorithms scan all of x once per thread, so this term
//     grows as O(t·f) — the paper's work-inefficiency.
//   - ColumnsProbed: matrix column lookups, including probes of columns
//     that turn out to be irrelevant. Matrix-driven algorithms probe all
//     nzc columns, producing the O(nzc) floor of GraphMat in Fig. 3.
//   - MatrixTouched: matrix nonzeros read (the df term).
//   - SPAInit: sparse-accumulator slots initialized. CombBLAS-SPA
//     initializes the entire SPA (O(m) total), the bucket algorithm only
//     the slots it will use (O(nnz(y))).
//   - BucketWrites: entries staged into buckets (bucket algorithm only).
//   - SPAUpdates: accumulations into a SPA slot.
//   - HeapOps: heap pushes+pops (CombBLAS-heap only).
//   - SortedElements: elements that passed through a sorting routine.
//   - OutputWritten: entries written to the output vector.
//   - SyncEvents: synchronization points (barriers, atomic fetch-adds
//     for dynamic scheduling).
type Counters struct {
	XScanned      int64
	ColumnsProbed int64
	MatrixTouched int64
	SPAInit       int64
	SPAUpdates    int64
	BucketWrites  int64
	HeapOps       int64
	SortedElems   int64
	OutputWritten int64
	SyncEvents    int64

	// DirectionSwitches counts hybrid-engine calls routed to the
	// matrix-driven side (paper §V's direction switch). A routing
	// statistic, not a work term: excluded from Work.
	DirectionSwitches int64
	// FrontierConversions counts list→bitmap frontier
	// materializations performed on behalf of the engine. The O(f)
	// scatter cost itself is charged to XScanned; this field tracks
	// how often the conversion could not be shared.
	FrontierConversions int64
	// OutputConversions counts the subset of FrontierConversions whose
	// frontier was produced by an engine output pass (MultiplyInto) —
	// the conversions the output-representation layer exists to
	// eliminate. An engine that emits its output bitmap natively while
	// writing the list keeps this at zero for every consumer of that
	// output; a frontier pipeline (BFS feeding each level's output back
	// as the next input) reports 0 here on its dense phases.
	OutputConversions int64

	// Scheduling statistics from the work-stealing executor, excluded
	// from Work like the routing stats. ChunkClaims counts chunks a
	// worker popped from its own deque and Steals chunks it took from a
	// sibling's; ChunkClaims+Steals summed over workers equals the
	// number of chunks scheduled (deterministic), while the split
	// between them and IdleNs — nanoseconds spent waiting at join
	// barriers after the worker's last chunk — depend on runtime timing.
	ChunkClaims int64
	Steals      int64
	IdleNs      int64
}

// Merge adds o into c.
func (c *Counters) Merge(o *Counters) {
	c.XScanned += o.XScanned
	c.ColumnsProbed += o.ColumnsProbed
	c.MatrixTouched += o.MatrixTouched
	c.SPAInit += o.SPAInit
	c.SPAUpdates += o.SPAUpdates
	c.BucketWrites += o.BucketWrites
	c.HeapOps += o.HeapOps
	c.SortedElems += o.SortedElems
	c.OutputWritten += o.OutputWritten
	c.SyncEvents += o.SyncEvents
	c.DirectionSwitches += o.DirectionSwitches
	c.FrontierConversions += o.FrontierConversions
	c.OutputConversions += o.OutputConversions
	c.ChunkClaims += o.ChunkClaims
	c.Steals += o.Steals
	c.IdleNs += o.IdleNs
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// Work returns the total work proxy: the sum of all counted work
// quantities. For a work-efficient algorithm, Work stays O(df)
// independent of the number of threads. The routing statistics
// (DirectionSwitches, FrontierConversions, OutputConversions) are not
// work and are excluded.
func (c Counters) Work() int64 {
	return c.XScanned + c.ColumnsProbed + c.MatrixTouched + c.SPAInit +
		c.SPAUpdates + c.BucketWrites + c.HeapOps + c.SortedElems +
		c.OutputWritten + c.SyncEvents
}

// String formats the counters as a compact single-line summary.
func (c Counters) String() string {
	return fmt.Sprintf(
		"xscan=%d probes=%d mat=%d spainit=%d spaupd=%d bucket=%d heap=%d sort=%d out=%d sync=%d switch=%d conv=%d outconv=%d claims=%d steals=%d idlens=%d work=%d",
		c.XScanned, c.ColumnsProbed, c.MatrixTouched, c.SPAInit, c.SPAUpdates,
		c.BucketWrites, c.HeapOps, c.SortedElems, c.OutputWritten, c.SyncEvents,
		c.DirectionSwitches, c.FrontierConversions, c.OutputConversions,
		c.ChunkClaims, c.Steals, c.IdleNs, c.Work())
}

// MergeAll aggregates a slice of per-worker counters into one.
func MergeAll(per []Counters) Counters {
	var out Counters
	for i := range per {
		out.Merge(&per[i])
	}
	return out
}

// StepTimes records the wall-clock duration of each phase of the
// SpMSpV-bucket algorithm, reproducing the breakdown of Fig. 6.
type StepTimes struct {
	Estimate time.Duration // Alg. 2 preprocessing (ESTIMATE-BUCKETS)
	Bucket   time.Duration // Step 1: gather scaled columns into buckets
	Merge    time.Duration // Step 2: per-bucket SPA merge
	Output   time.Duration // Step 3: concatenate into y
	Sort     time.Duration // optional per-bucket uind sorting
}

// Total returns the sum of all step durations.
func (s StepTimes) Total() time.Duration {
	return s.Estimate + s.Bucket + s.Merge + s.Output + s.Sort
}

// Add accumulates o into s (for averaging over repeated runs).
func (s *StepTimes) Add(o StepTimes) {
	s.Estimate += o.Estimate
	s.Bucket += o.Bucket
	s.Merge += o.Merge
	s.Output += o.Output
	s.Sort += o.Sort
}

// Scale divides every step by n (average of n runs). n <= 0 is a no-op.
func (s *StepTimes) Scale(n int) {
	if n <= 0 {
		return
	}
	d := time.Duration(n)
	s.Estimate /= d
	s.Bucket /= d
	s.Merge /= d
	s.Output /= d
	s.Sort /= d
}

func (s StepTimes) String() string {
	return fmt.Sprintf("estimate=%v bucket=%v merge=%v output=%v sort=%v total=%v",
		s.Estimate, s.Bucket, s.Merge, s.Output, s.Sort, s.Total())
}

// Timer is a minimal helper for measuring phases without polluting call
// sites with time.Now bookkeeping.
type Timer struct{ start time.Time }

// Start begins (or restarts) the timer.
func (t *Timer) Start() { t.start = time.Now() }

// Lap returns the elapsed duration and restarts the timer.
func (t *Timer) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(t.start)
	t.start = now
	return d
}
