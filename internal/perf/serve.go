package perf

import (
	"sync/atomic"
	"time"
)

// ServeStats accumulates per-matrix request and latency counters for
// the serving layer: every multiply served against one registered
// matrix — direct, coalesced into a shared batch, or issued by a
// program op — lands here. All fields are atomics, so one ServeStats
// value is shared by every concurrent handler touching the matrix with
// no lock on the request path.
type ServeStats struct {
	requests  atomic.Int64
	failures  atomic.Int64
	coalesced atomic.Int64
	batches   atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	latencyNS atomic.Int64
	maxLatNS  atomic.Int64
}

// Observe records one served request and its wall-clock latency.
func (s *ServeStats) Observe(d time.Duration, failed bool) {
	s.requests.Add(1)
	if failed {
		s.failures.Add(1)
	}
	ns := d.Nanoseconds()
	s.latencyNS.Add(ns)
	for {
		cur := s.maxLatNS.Load()
		if ns <= cur || s.maxLatNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveBatch records one coalesced MultBatch flush covering the
// given number of single-vector requests. Flushes of one slot are the
// degenerate "window expired with no company" case and are not counted
// as coalescing.
func (s *ServeStats) ObserveBatch(slots int) {
	if slots > 1 {
		s.batches.Add(1)
		s.coalesced.Add(int64(slots))
	}
}

// ObserveRetries records n retried calls — the sharded coordinator's
// requeue rounds land here, one count per shard call re-issued after a
// retryable failure.
func (s *ServeStats) ObserveRetries(n int) {
	if n > 0 {
		s.retries.Add(int64(n))
	}
}

// ObserveFailovers records n in-round replica failovers — a shard call
// abandoning one replica and moving to the next inside the same
// dispatch round. On the matrix's counters it measures how often
// replication absorbed a fault without burning a retry round; on a
// replica's counters it measures how often traffic failed over AWAY
// from that replica.
func (s *ServeStats) ObserveFailovers(n int) {
	if n > 0 {
		s.failovers.Add(int64(n))
	}
}

// ServeSnapshot is the JSON-ready reading of a ServeStats.
type ServeSnapshot struct {
	// Requests is the number of multiplies served (mult endpoint hits
	// plus program mult ops).
	Requests int64 `json:"requests"`
	// Failures is the subset of Requests that returned an error.
	Failures int64 `json:"failures"`
	// Coalesced is the number of requests that rode a shared MultBatch
	// instead of executing alone.
	Coalesced int64 `json:"coalesced"`
	// Batches is the number of multi-slot MultBatch flushes issued.
	Batches int64 `json:"batches"`
	// Retries is the number of calls re-issued after a retryable
	// failure (the sharded coordinator's requeue rounds).
	Retries int64 `json:"retries,omitempty"`
	// Failovers is the number of in-round replica failovers (replicated
	// shard groups absorbing a fault without a retry round).
	Failovers int64 `json:"failovers,omitempty"`
	// AvgLatencyNS / MaxLatencyNS summarize request wall-clock latency.
	AvgLatencyNS int64 `json:"avg_latency_ns"`
	MaxLatencyNS int64 `json:"max_latency_ns"`
}

// Snapshot reads the counters. The fields are loaded individually, so
// a snapshot taken during traffic is approximate (but each counter is
// exact).
func (s *ServeStats) Snapshot() ServeSnapshot {
	snap := ServeSnapshot{
		Requests:     s.requests.Load(),
		Failures:     s.failures.Load(),
		Coalesced:    s.coalesced.Load(),
		Batches:      s.batches.Load(),
		Retries:      s.retries.Load(),
		Failovers:    s.failovers.Load(),
		MaxLatencyNS: s.maxLatNS.Load(),
	}
	if snap.Requests > 0 {
		snap.AvgLatencyNS = s.latencyNS.Load() / snap.Requests
	}
	return snap
}
