package perf

import (
	"strings"
	"testing"
	"time"
)

func TestCountersMerge(t *testing.T) {
	a := Counters{XScanned: 1, MatrixTouched: 2, SPAInit: 3}
	b := Counters{XScanned: 10, SPAUpdates: 5, SyncEvents: 7}
	a.Merge(&b)
	if a.XScanned != 11 || a.MatrixTouched != 2 || a.SPAUpdates != 5 || a.SyncEvents != 7 {
		t.Errorf("merge result: %+v", a)
	}
	if a.Work() != 11+2+3+5+7 {
		t.Errorf("work = %d", a.Work())
	}
	a.Reset()
	if a.Work() != 0 {
		t.Error("reset did not zero counters")
	}
}

func TestMergeAll(t *testing.T) {
	per := []Counters{{XScanned: 1}, {XScanned: 2}, {XScanned: 4}}
	if got := MergeAll(per); got.XScanned != 7 {
		t.Errorf("MergeAll = %+v", got)
	}
	if got := MergeAll(nil); got.Work() != 0 {
		t.Errorf("MergeAll(nil) = %+v", got)
	}
}

func TestCountersString(t *testing.T) {
	c := Counters{XScanned: 3}
	if s := c.String(); !strings.Contains(s, "xscan=3") {
		t.Errorf("String() = %q", s)
	}
}

func TestStepTimes(t *testing.T) {
	s := StepTimes{Estimate: time.Millisecond, Merge: 3 * time.Millisecond}
	if s.Total() != 4*time.Millisecond {
		t.Errorf("total = %v", s.Total())
	}
	s.Add(StepTimes{Estimate: time.Millisecond, Output: 2 * time.Millisecond})
	if s.Estimate != 2*time.Millisecond || s.Output != 2*time.Millisecond {
		t.Errorf("add result: %+v", s)
	}
	s.Scale(2)
	if s.Estimate != time.Millisecond || s.Output != time.Millisecond {
		t.Errorf("scale result: %+v", s)
	}
	s.Scale(0) // no-op
	if s.Estimate != time.Millisecond {
		t.Error("Scale(0) should be a no-op")
	}
	if !strings.Contains(s.String(), "estimate=") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Start()
	time.Sleep(time.Millisecond)
	d1 := tm.Lap()
	if d1 <= 0 {
		t.Error("lap duration not positive")
	}
	d2 := tm.Lap()
	if d2 < 0 || d2 > d1+time.Second {
		t.Errorf("second lap suspicious: %v", d2)
	}
}
