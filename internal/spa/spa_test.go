package spa

import (
	"math/rand"
	"sort"
	"testing"

	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

func TestEpochAccumulate(t *testing.T) {
	s := NewEpoch(10)
	s.Clear()
	if !s.Accumulate(3, 2, semiring.Arithmetic) {
		t.Error("first touch should return true")
	}
	if s.Accumulate(3, 5, semiring.Arithmetic) {
		t.Error("second touch should return false")
	}
	if s.Val[3] != 7 {
		t.Errorf("Val[3] = %g, want 7", s.Val[3])
	}
	if len(s.Touched) != 1 || s.Touched[0] != 3 {
		t.Errorf("Touched = %v", s.Touched)
	}
	if !s.Occupied(3) || s.Occupied(4) {
		t.Error("occupancy wrong")
	}
}

func TestEpochClearIsO1(t *testing.T) {
	s := NewEpoch(10)
	s.Clear()
	s.Accumulate(5, 1, semiring.Arithmetic)
	s.Clear()
	if s.Occupied(5) {
		t.Error("slot survived Clear")
	}
	if len(s.Touched) != 0 {
		t.Error("touched list survived Clear")
	}
	// A fresh accumulate after Clear starts from scratch, not from the
	// stale value.
	s.Accumulate(5, 3, semiring.Arithmetic)
	if s.Val[5] != 3 {
		t.Errorf("Val[5] = %g, want 3 (stale value leaked)", s.Val[5])
	}
}

func TestEpochWraparound(t *testing.T) {
	s := NewEpoch(4)
	// Force epoch to the brink of wraparound.
	s.epoch = ^uint32(0) - 1
	s.Clear() // epoch = max
	s.Accumulate(1, 9, semiring.Arithmetic)
	s.Clear() // wraps: tags wiped, epoch = 1
	if s.Occupied(1) {
		t.Error("slot survived wraparound Clear")
	}
}

func TestFullInitCost(t *testing.T) {
	s := NewFull(100)
	if n := s.Init(0); n != 200 {
		t.Errorf("Init reported %d slots, want 200 (values + flags)", n)
	}
	s.Accumulate(7, 3, semiring.Arithmetic)
	s.Accumulate(7, 4, semiring.Arithmetic)
	if s.Val[7] != 7 {
		t.Errorf("Val[7] = %g", s.Val[7])
	}
	if len(s.Touched) != 1 {
		t.Errorf("Touched = %v", s.Touched)
	}
	// Init with a MinPlus zero leaves slots at +Inf so Accumulate-by-Add
	// still works.
	s.Init(semiring.MinPlus.Zero)
	s.Accumulate(2, 5, semiring.MinPlus)
	if s.Val[2] != 5 {
		t.Errorf("min-plus accumulate after init: %g", s.Val[2])
	}
}

func TestKWayMergerAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m := NewKWayMerger(8)
		want := map[sparse.Index]float64{}
		nseg := rng.Intn(10)
		for s := 0; s < nseg; s++ {
			segLen := rng.Intn(20)
			rows := make([]sparse.Index, segLen)
			vals := make([]float64, segLen)
			prev := sparse.Index(0)
			for k := 0; k < segLen; k++ {
				prev += sparse.Index(rng.Intn(5) + 1)
				rows[k] = prev
				vals[k] = rng.Float64()
			}
			x := rng.Float64() + 0.5
			m.AddSegment(rows, vals, x)
			for k := range rows {
				want[rows[k]] += vals[k] * x
			}
		}
		var gotRows []sparse.Index
		got := map[sparse.Index]float64{}
		m.Merge(semiring.Arithmetic, func(row sparse.Index, val float64) {
			gotRows = append(gotRows, row)
			got[row] = val
		})
		if !sort.SliceIsSorted(gotRows, func(i, j int) bool { return gotRows[i] < gotRows[j] }) {
			t.Fatalf("trial %d: merge output not sorted: %v", trial, gotRows)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d unique rows, want %d", trial, len(got), len(want))
		}
		for r, v := range want {
			if diff := got[r] - v; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("trial %d row %d: got %g want %g", trial, r, got[r], v)
			}
		}
		if nseg > 0 && len(want) > 0 && m.Ops() == 0 {
			t.Error("no heap ops recorded")
		}
	}
}

func TestKWayMergerReset(t *testing.T) {
	m := NewKWayMerger(4)
	m.AddSegment([]sparse.Index{1, 2}, []float64{1, 1}, 1)
	m.Merge(semiring.Arithmetic, func(sparse.Index, float64) {})
	m.Reset()
	count := 0
	m.Merge(semiring.Arithmetic, func(sparse.Index, float64) { count++ })
	if count != 0 {
		t.Error("segments survived Reset")
	}
}

func TestKWayMergerEmptySegments(t *testing.T) {
	m := NewKWayMerger(4)
	m.AddSegment(nil, nil, 1)
	m.AddSegment([]sparse.Index{}, []float64{}, 2)
	count := 0
	m.Merge(semiring.Arithmetic, func(sparse.Index, float64) { count++ })
	if count != 0 {
		t.Errorf("empty segments emitted %d rows", count)
	}
}
