package spa

import (
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// segment is one scaled matrix column being merged: rows[pos:] remain,
// every emitted value is Mul(vals[k], x) under the semiring.
type segment struct {
	rows []sparse.Index
	vals []float64
	x    float64
	pos  int32
}

// KWayMerger merges f sorted column segments with a binary heap — the
// CombBLAS-heap merging strategy of Table I, with O(df·lg f) sequential
// complexity. The heap is keyed by the segment's current row id.
type KWayMerger struct {
	segs []segment
	heap []int32 // indices into segs, heap-ordered by current row
	ops  int64   // heap push/pop/sift operations performed
}

// NewKWayMerger returns a merger with capacity hints.
func NewKWayMerger(segCap int) *KWayMerger {
	return &KWayMerger{
		segs: make([]segment, 0, segCap),
		heap: make([]int32, 0, segCap),
	}
}

// Reset discards all segments, keeping capacity.
func (m *KWayMerger) Reset() {
	m.segs = m.segs[:0]
	m.heap = m.heap[:0]
	m.ops = 0
}

// AddSegment registers one column's (sorted) rows and values, scaled by
// the input-vector entry x. Empty segments are ignored.
func (m *KWayMerger) AddSegment(rows []sparse.Index, vals []float64, x float64) {
	if len(rows) == 0 {
		return
	}
	m.segs = append(m.segs, segment{rows: rows, vals: vals, x: x})
}

// Ops returns the number of heap operations performed by the last Merge.
func (m *KWayMerger) Ops() int64 { return m.ops }

func (m *KWayMerger) rowOf(s int32) sparse.Index {
	seg := &m.segs[s]
	return seg.rows[seg.pos]
}

// less orders the heap by current row, breaking ties by segment
// insertion index. The tie-break pins equal-row accumulation to
// column order — the same order the SPA engines add in — so results
// are bit-identical across thread counts and row splits instead of
// depending on heap shape.
func (m *KWayMerger) less(a, b int32) bool {
	ra, rb := m.rowOf(a), m.rowOf(b)
	if ra != rb {
		return ra < rb
	}
	return a < b
}

func (m *KWayMerger) siftUp(i int) {
	h := m.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
		m.ops++
	}
}

func (m *KWayMerger) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.less(h[l], h[small]) {
			small = l
		}
		if r < n && m.less(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
		m.ops++
	}
}

// Merge emits the merged, row-sorted stream: emit is called once per
// unique row with the semiring-Add-combined value. The ops counter
// accumulates heap work for the HeapOps perf counter. (Unlike the
// bucket engine's kernels, the heap merge keeps the func-valued
// operations: its per-entry cost is dominated by heap sifts, which is
// the point of the baseline.)
func (m *KWayMerger) Merge(sr semiring.Semiring, emit func(row sparse.Index, val float64)) {
	m.heap = m.heap[:0]
	for s := range m.segs {
		m.heap = append(m.heap, int32(s))
		m.siftUp(len(m.heap) - 1)
		m.ops++
	}
	mul := sr.Mul
	add := sr.Add
	for len(m.heap) > 0 {
		top := m.heap[0]
		seg := &m.segs[top]
		row := seg.rows[seg.pos]
		acc := mul(seg.vals[seg.pos], seg.x)
		m.advance()
		// Drain every further occurrence of this row.
		for len(m.heap) > 0 {
			t := m.heap[0]
			s := &m.segs[t]
			if s.rows[s.pos] != row {
				break
			}
			acc = add(acc, mul(s.vals[s.pos], s.x))
			m.advance()
		}
		emit(row, acc)
	}
}

// advance moves the top segment's cursor forward, removing it from the
// heap when exhausted, and restores the heap invariant.
func (m *KWayMerger) advance() {
	top := m.heap[0]
	seg := &m.segs[top]
	seg.pos++
	m.ops++
	if int(seg.pos) >= len(seg.rows) {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
	}
	if len(m.heap) > 0 {
		m.siftDown(0)
	}
}
