// Package spa implements sparse accumulators (SPAs) and the k-way heap
// merger — the merging data structures classified in Tables I and II of
// the paper.
//
// A SPA (Gilbert, Moler & Schreiber; paper ref [17]) is "a dense vector
// of numerical values and a list of indices that refer to nonzero
// entries in the dense vector". The paper distinguishes SPAs by their
// initialization discipline: full initialization costs O(m) per multiply
// and breaks the lower bound; partial initialization (only slots that
// will be touched) costs O(nnz(y)) and is work-efficient. Epoch
// implements partial initialization in O(1) amortized per call via
// generation tags; Full models the CombBLAS-SPA discipline.
package spa

import (
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Epoch is a partially-initialized SPA: a slot is considered absent
// unless its tag equals the current epoch, so "clearing" the SPA is a
// single counter increment. Occupied slots record their index in Touched
// for O(nnz) extraction.
type Epoch struct {
	Val     []float64
	tag     []uint32
	epoch   uint32
	Touched []sparse.Index
}

// NewEpoch returns a SPA over index space [0, n).
func NewEpoch(n sparse.Index) *Epoch {
	return &Epoch{
		Val: make([]float64, n),
		tag: make([]uint32, n),
	}
}

// Clear resets the SPA in O(1) (amortized: a full tag wipe happens only
// on 32-bit epoch wraparound) and empties the touched list.
func (s *Epoch) Clear() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.tag {
			s.tag[i] = 0
		}
		s.epoch = 1
	}
	s.Touched = s.Touched[:0]
}

// Accumulate folds v into slot i under the semiring's Add, initializing
// the slot on first touch. It returns true when the touch was the first
// for this epoch (a new output nonzero).
func (s *Epoch) Accumulate(i sparse.Index, v float64, sr semiring.Semiring) bool {
	if s.tag[i] != s.epoch {
		s.tag[i] = s.epoch
		s.Val[i] = v
		s.Touched = append(s.Touched, i)
		return true
	}
	s.Val[i] = sr.Add(s.Val[i], v)
	return false
}

// Occupied reports whether slot i holds a value in the current epoch.
func (s *Epoch) Occupied(i sparse.Index) bool { return s.tag[i] == s.epoch }

// Full is a fully-initialized SPA modeling the CombBLAS-SPA discipline:
// Init wipes every slot to the semiring zero, costing O(n) per multiply
// regardless of how sparse the inputs are. This is deliberately
// inefficient — it exists to reproduce the baseline's work profile.
type Full struct {
	Val      []float64
	occupied []bool
	Touched  []sparse.Index
}

// NewFull returns a full-initialization SPA over [0, n).
func NewFull(n sparse.Index) *Full {
	return &Full{
		Val:      make([]float64, n),
		occupied: make([]bool, n),
	}
}

// Init wipes the entire SPA to zero. Returns the number of slots
// initialized (= n), which callers feed into the SPAInit work counter.
func (s *Full) Init(zero float64) int64 {
	for i := range s.Val {
		s.Val[i] = zero
	}
	for i := range s.occupied {
		s.occupied[i] = false
	}
	s.Touched = s.Touched[:0]
	return int64(len(s.Val)) * 2
}

// Accumulate folds v into slot i, returning true on first touch.
func (s *Full) Accumulate(i sparse.Index, v float64, sr semiring.Semiring) bool {
	first := !s.occupied[i]
	if first {
		s.occupied[i] = true
		s.Touched = append(s.Touched, i)
	}
	s.Val[i] = sr.Add(s.Val[i], v)
	return first
}
