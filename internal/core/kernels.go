package core

import (
	"math"

	"spmspv/internal/par"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Specialized inner loops for Steps 1 and 2.
//
// The scatter and merge loops run once per matrix nonzero touched — the
// df term that dominates every multiply. Each is dispatched once per
// call on the semiring's operation tags to a hand-monomorphized loop
// whose Add/Mul is an inlined expression, so all predefined semirings
// (arithmetic, the tropical pair, boolean, the select variants) execute
// with no per-nonzero function-pointer calls; only user-defined
// semirings (AddCustom/MulCustom) take the func-valued loop, paying
// exactly the indirect call every semiring paid before specialization.
// This generalizes the previous one-off IsArithmetic fast path.
//
// The loops are spelled out per operation rather than written once as a
// generic function over semiring.Adder/Muler because gc does not
// devirtualize dictionary-based method calls in non-inlined generic
// instantiations: a generic-over-op loop of this size compiles to one
// shape instantiation that calls Add/Mul through the dictionary — an
// indirect call per nonzero, the very cost being removed. (The generic
// op types still pay off for helpers small enough to inline, e.g. the
// spa accumulators.)

// bucketStep implements Step 1 of Algorithm 1 with direct writes: each
// chunk re-scans its x range and scatters (row, MULT(x(j), A(i,j)))
// pairs through the chunk's precomputed cursors. No synchronization is
// needed because the cursor ranges are disjoint by construction, and
// because the cursors — not the executing worker — determine where
// entries land, any worker may claim or steal any chunk.
func bucketStep(a *sparse.CSC, x *sparse.SpVec, sr semiring.Semiring, ws *Workspace, ex *par.Executor, t, nc, nb int, shift uint) {
	ex.ForChunks(t, nc, nil, func(w, c int) {
		lo, hi := ws.ranges[c][0], ws.ranges[c][1]
		if lo >= hi {
			return
		}
		cur := ws.boffset[c*nb : (c+1)*nb]
		ctr := &ws.Counters[w]
		written := scatterRange(a, x, sr, ws, cur, lo, hi, shift)
		ctr.XScanned += int64(hi - lo)
		ctr.MatrixTouched += written
		ctr.BucketWrites += written
	}, &ws.sched)
}

// scatterRange scatters the x entries in [lo, hi) through the cursor
// row cur, dispatching once on the semiring's Mul tag; it returns the
// number of matrix entries written. Shared by the single-call Step 1
// and the batched multiply (which invokes it once per per-worker
// per-frontier segment with cur sliced to that frontier's cursors).
func scatterRange(a *sparse.CSC, x *sparse.SpVec, sr semiring.Semiring, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	switch sr.MulKind {
	case semiring.MulTimes:
		return scatterTimes(a, x, ws, cur, lo, hi, shift)
	case semiring.MulPlus:
		return scatterPlus(a, x, ws, cur, lo, hi, shift)
	case semiring.MulSelect2nd:
		return scatterSelect2nd(a, x, ws, cur, lo, hi, shift)
	case semiring.MulSelect1st:
		return scatterSelect1st(a, x, ws, cur, lo, hi, shift)
	case semiring.MulAnd:
		return scatterAnd(a, x, ws, cur, lo, hi, shift)
	default:
		return scatterFunc(sr.Mul, a, x, ws, cur, lo, hi, shift)
	}
}

func scatterTimes(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j, xv := x.Ind[k], x.Val[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: vals[e] * xv}
		}
		written += int64(len(rows))
	}
	return written
}

func scatterPlus(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j, xv := x.Ind[k], x.Val[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: vals[e] + xv}
		}
		written += int64(len(rows))
	}
	return written
}

// scatterSelect2nd propagates x(j) unchanged, so the column's values
// are never read — BFS's frontier expansion touches only row indices.
func scatterSelect2nd(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j, xv := x.Ind[k], x.Val[k]
		rows, _ := a.Col(j)
		for _, i := range rows {
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: xv}
		}
		written += int64(len(rows))
	}
	return written
}

func scatterSelect1st(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j := x.Ind[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: vals[e]}
		}
		written += int64(len(rows))
	}
	return written
}

func scatterAnd(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j, xv := x.Ind[k], x.Val[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			v := 0.0
			if vals[e] != 0 && xv != 0 {
				v = 1
			}
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: v}
		}
		written += int64(len(rows))
	}
	return written
}

func scatterFunc(mul func(a, b float64) float64, a *sparse.CSC, x *sparse.SpVec, ws *Workspace, cur []int64, lo, hi int, shift uint) int64 {
	var written int64
	for k := lo; k < hi; k++ {
		j, xv := x.Ind[k], x.Val[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			b := i >> shift
			p := cur[b]
			cur[b]++
			ws.entries[p] = sparse.Entry{Ind: i, Val: mul(vals[e], xv)}
		}
		written += int64(len(rows))
	}
	return written
}

// bucketStepStaged is bucketStep with the paper's cache-locality
// optimization: writes stream into a small per-(worker,bucket) staging
// buffer (sized to stay L1/L2 resident) and are copied to the bucket
// only when the buffer fills. This ablation path (off by default) keeps
// the func-valued Mul; the flush bookkeeping, not the multiply,
// dominates its inner loop.
func bucketStepStaged(a *sparse.CSC, x *sparse.SpVec, sr semiring.Semiring, ws *Workspace, ex *par.Executor, t, nc, nb int, shift uint, stage int) {
	ws.ensureStaging(t, nb, stage)
	mul := sr.Mul
	// The staging slab is per executing worker (one slot owns it for the
	// chunk's whole run and drains it before the chunk ends); the write
	// cursors are per chunk, as in the direct path.
	ex.ForChunks(t, nc, nil, func(w, c int) {
		lo, hi := ws.ranges[c][0], ws.ranges[c][1]
		if lo >= hi {
			return
		}
		cur := ws.boffset[c*nb : (c+1)*nb]
		slab := ws.staging[w*nb*stage : (w+1)*nb*stage]
		fill := ws.stagingCount[w*nb : (w+1)*nb]
		for b := range fill {
			fill[b] = 0
		}
		ctr := &ws.Counters[w]
		var written int64
		flush := func(b int64) {
			n := int64(fill[b])
			copy(ws.entries[cur[b]:cur[b]+n], slab[b*int64(stage):b*int64(stage)+n])
			cur[b] += n
			fill[b] = 0
		}
		for k := lo; k < hi; k++ {
			j, xv := x.Ind[k], x.Val[k]
			rows, vals := a.Col(j)
			for e, i := range rows {
				b := int64(i >> shift)
				if int(fill[b]) == stage {
					flush(b)
				}
				slab[b*int64(stage)+int64(fill[b])] = sparse.Entry{Ind: i, Val: mul(vals[e], xv)}
				fill[b]++
			}
			written += int64(len(rows))
		}
		for b := int64(0); b < int64(nb); b++ {
			if fill[b] > 0 {
				flush(b)
			}
		}
		ctr.XScanned += int64(hi - lo)
		ctr.MatrixTouched += written
		ctr.BucketWrites += written
	}, &ws.sched)
}

// mergeStep implements Step 2 of Algorithm 1: every bucket is merged
// independently through the SPA, producing the bucket's unique indices.
// mask, when non-nil, drops entries whose row is excluded (masked
// SpMSpV, the GraphBLAS extension of paper §V); maskComplement inverts
// the test.
func mergeStep(sr semiring.Semiring, ws *Workspace, ex *par.Executor, t, nb int, opt Options, mask *sparse.BitVec, maskComplement bool) {
	epoch := ws.nextEpoch()
	body := func(w, b int) {
		lo, hi := ws.bucketStart[b], ws.bucketStart[b+1]
		if lo == hi {
			ws.uindCount[b] = 0
			return
		}
		ents := ws.entries[lo:hi]
		u := ws.uind[lo:lo]
		ctr := &ws.Counters[w]
		switch {
		case mask != nil:
			u = mergeMasked(sr, ws, ents, u, epoch, mask, maskComplement)
		case opt.UseInfSentinel:
			// Paper-faithful two-pass merge (Algorithm 1 lines 11-18):
			// mark first, then accumulate, using ∞ as the
			// "uninitialized" sentinel. Ablation path; func-valued Add.
			add := sr.Add
			inf := math.Inf(1)
			for _, e := range ents {
				ws.spaVal[e.Ind] = inf
			}
			ctr.SPAInit += int64(len(ents))
			for _, e := range ents {
				if ws.spaVal[e.Ind] == inf {
					ws.spaVal[e.Ind] = e.Val
					u = append(u, e.Ind)
				} else {
					ws.spaVal[e.Ind] = add(ws.spaVal[e.Ind], e.Val)
				}
			}
		default:
			u = mergeEpoch(sr, ws, ents, u, epoch)
		}
		ws.uindCount[b] = int64(len(u))
		if !opt.UseInfSentinel {
			ctr.SPAInit += int64(len(u))
		}
		ctr.SPAUpdates += int64(len(ents)) - int64(len(u))
		if opt.SortOutput {
			ws.scratch[w] = radix.SortIndices(u, ws.scratch[w])
			ctr.SortedElems += int64(len(u))
		}
	}
	switch opt.MergeSched {
	case SchedDynamic:
		for w := 0; w < t; w++ {
			ws.sync[w] = 0
		}
		par.ForDynamic(t, nb, 1, func(w, lo, hi int) {
			for b := lo; b < hi; b++ {
				body(w, b)
			}
		}, ws.sync)
		for w := 0; w < t; w++ {
			ws.Counters[w].SyncEvents += ws.sync[w]
		}
	case SchedStealing:
		// Stealable buckets with initial shares weighted by entry count
		// (bucketStart is exactly that cumulative weight array): heavy
		// buckets cluster on few workers up front, and whoever drains
		// their share first steals from the stragglers.
		ex.ForChunks(t, nb, ws.bucketStart[:nb+1], func(w, b int) {
			body(w, b)
		}, &ws.sched)
	default:
		par.ForStatic(t, nb, func(w, lo, hi int) {
			for b := lo; b < hi; b++ {
				body(w, b)
			}
		})
	}
}

// mergeEpoch is the one-pass epoch-tag merge: a tag mismatch plays the
// role of the ∞ sentinel with no false positives. Dispatches on the
// semiring's Add tag to a loop with the collision combine inlined.
func mergeEpoch(sr semiring.Semiring, ws *Workspace, ents []sparse.Entry, u []sparse.Index, epoch uint32) []sparse.Index {
	switch sr.AddKind {
	case semiring.AddPlus:
		for _, e := range ents {
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else {
				ws.spaVal[e.Ind] += e.Val
			}
		}
	case semiring.AddMin:
		for _, e := range ents {
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if !(ws.spaVal[e.Ind] < e.Val) {
				ws.spaVal[e.Ind] = e.Val
			}
		}
	case semiring.AddMax:
		for _, e := range ents {
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if !(ws.spaVal[e.Ind] > e.Val) {
				ws.spaVal[e.Ind] = e.Val
			}
		}
	case semiring.AddOr:
		for _, e := range ents {
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if ws.spaVal[e.Ind] != 0 || e.Val != 0 {
				ws.spaVal[e.Ind] = 1
			} else {
				ws.spaVal[e.Ind] = 0
			}
		}
	default:
		add := sr.Add
		for _, e := range ents {
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else {
				ws.spaVal[e.Ind] = add(ws.spaVal[e.Ind], e.Val)
			}
		}
	}
	return u
}

// mergeMasked is mergeEpoch with the mask test pushed into the loop
// (the §V mask-pushdown); same per-Add specialization — BFS's masked
// (min, select2nd) expansion runs call-free.
func mergeMasked(sr semiring.Semiring, ws *Workspace, ents []sparse.Entry, u []sparse.Index, epoch uint32, mask *sparse.BitVec, complement bool) []sparse.Index {
	switch sr.AddKind {
	case semiring.AddPlus:
		for _, e := range ents {
			if mask.Test(e.Ind) == complement {
				continue
			}
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else {
				ws.spaVal[e.Ind] += e.Val
			}
		}
	case semiring.AddMin:
		for _, e := range ents {
			if mask.Test(e.Ind) == complement {
				continue
			}
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if !(ws.spaVal[e.Ind] < e.Val) {
				ws.spaVal[e.Ind] = e.Val
			}
		}
	case semiring.AddMax:
		for _, e := range ents {
			if mask.Test(e.Ind) == complement {
				continue
			}
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if !(ws.spaVal[e.Ind] > e.Val) {
				ws.spaVal[e.Ind] = e.Val
			}
		}
	case semiring.AddOr:
		for _, e := range ents {
			if mask.Test(e.Ind) == complement {
				continue
			}
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else if ws.spaVal[e.Ind] != 0 || e.Val != 0 {
				ws.spaVal[e.Ind] = 1
			} else {
				ws.spaVal[e.Ind] = 0
			}
		}
	default:
		add := sr.Add
		for _, e := range ents {
			if mask.Test(e.Ind) == complement {
				continue
			}
			if ws.spaTag[e.Ind] != epoch {
				ws.spaTag[e.Ind] = epoch
				ws.spaVal[e.Ind] = e.Val
				u = append(u, e.Ind)
			} else {
				ws.spaVal[e.Ind] = add(ws.spaVal[e.Ind], e.Val)
			}
		}
	}
	return u
}
