package core

import (
	"fmt"

	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MultiplyBatch computes ys[q] ← A·xs[q] for a batch of input vectors
// in one pass of the bucket algorithm, sharing what a loop of Multiply
// calls pays per frontier: one workspace checkout, one
// Estimate/bucket-sizing pass and cursor prefix over the concatenated
// inputs, one scatter and one merge parallel region, one counter
// retirement. The per-frontier marginal cost approaches the pure O(df)
// work term, which is why batching wins exactly in the sparse-frontier
// regime (multi-source BFS ramp-up) where fixed costs rival the work.
//
// Frontiers stay logically separate throughout: the bucket space is
// subdivided per frontier (bucket id q·nb + rowbucket), the merge
// processes all frontiers of one row range on one worker under
// distinct SPA epochs, and each output vector is concatenated
// independently. Results are exactly those of the equivalent Multiply
// loop.
//
// len(xs) must equal len(ys); the ys must be pairwise distinct and not
// alias any x. The ablation-only options UseInfSentinel and
// StagingEntries apply to single multiplies only: multi-frontier
// segments always use the epoch-tag merge and the direct-write
// scatter. Every other option (threads, buckets, sorting, scheduling,
// SplitEvenly) behaves as in Multiply.
func (mu *Multiplier) MultiplyBatch(xs, ys []*sparse.SpVec, sr semiring.Semiring) {
	mu.multiplyBatchLists(xs, ys, sr, nil, false, nil)
}

// MultiplyBatchInto computes ys[q] ← A·xs[q] into the output frontiers
// through the batched bucket algorithm, emitting every slot's output
// bitmap natively: the batched Step 3's per-(frontier, bucket) copy
// scatters each bucket's unique indices into the slot's bitmap as it
// writes the list — the batch analogue of MultiplyInto, so multi-source
// frontier pipelines pay zero list→bitmap output conversions.
func (mu *Multiplier) MultiplyBatchInto(xs, ys []*sparse.Frontier, sr semiring.Semiring) {
	mu.multiplyBatchFrontiers(xs, ys, sr, nil, false)
}

// MultiplyBatchIntoMasked computes ys[q] ← ⟨A·xs[q], masks[q]⟩ into the
// output frontiers (nil mask slots run unmasked): each slot's mask is
// pushed into that frontier's segment of the batched merge, and the
// surviving results are emitted list+bitmap in one pass exactly as in
// MultiplyBatchInto.
func (mu *Multiplier) MultiplyBatchIntoMasked(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
	mu.multiplyBatchFrontiers(xs, ys, sr, masks, complement)
}

func (mu *Multiplier) multiplyBatchFrontiers(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("core: batch with %d inputs but %d outputs", len(xs), len(ys)))
	}
	xl := make([]*sparse.SpVec, len(xs))
	yl := make([]*sparse.SpVec, len(ys))
	ob := make([]*sparse.BitVec, len(ys))
	for q := range xs {
		xl[q] = xs[q].List()
		yl[q] = ys[q].BeginOutput()
		ob[q] = ys[q].OutputBits(mu.A.NumRows)
	}
	mu.multiplyBatchLists(xl, yl, sr, masks, complement, ob)
	for q := range ys {
		ys[q].FinishOutput(true)
	}
}

// multiplyBatchLists is the shared batched entry point: per-frontier
// masks (nil slots unmasked) ride into the merge step and per-frontier
// output bitmaps (nil means list only) into Step 3.
func (mu *Multiplier) multiplyBatchLists(xs, ys []*sparse.SpVec, sr semiring.Semiring, masks []*sparse.BitVec, complement bool, outBits []*sparse.BitVec) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("core: MultiplyBatch with %d inputs but %d outputs", len(xs), len(ys)))
	}
	if masks != nil && len(masks) != len(xs) {
		panic(fmt.Sprintf("core: batch with %d inputs but %d masks", len(xs), len(masks)))
	}
	if len(xs) == 0 {
		return
	}
	ws, slot := mu.ws.Get()

	// Optional per-frontier side arrays are sliced alongside the batch.
	subMasks := func(lo, hi int) []*sparse.BitVec {
		if masks == nil {
			return nil
		}
		return masks[lo:hi]
	}
	subBits := func(lo, hi int) []*sparse.BitVec {
		if outBits == nil {
			return nil
		}
		return outBits[lo:hi]
	}

	// Segment the batch so one segment's bucket storage stays within
	// the single-call bound (≈ nnz(A) entries, the paper's §III-A
	// preallocation ceiling). Sparse frontiers — whose per-frontier df
	// is tiny — batch by the dozens under the budget, which is exactly
	// where the shared Estimate pass pays; a run of dense frontiers
	// degrades gracefully toward singleton segments instead of
	// streaming a k·nnz(A) working set through memory for no
	// amortization gain.
	budget := mu.A.NNZ()
	if budget < 1 {
		budget = 1
	}
	lo := 0
	var acc int64
	for q := range xs {
		w := frontierWork(mu.A, xs[q])
		if q > lo && acc+w > budget {
			runBatchSegment(mu.A, xs[lo:q], ys[lo:q], sr, ws, mu.Opt, subMasks(lo, q), complement, subBits(lo, q))
			lo, acc = q, 0
		}
		acc += w
	}
	runBatchSegment(mu.A, xs[lo:], ys[lo:], sr, ws, mu.Opt, subMasks(lo, len(xs)), complement, subBits(lo, len(xs)))
	mu.retire(ws, slot)
}

// frontierWork returns the number of matrix entries frontier x selects
// (its df term), the quantity that sizes its bucket storage.
func frontierWork(a *sparse.CSC, x *sparse.SpVec) int64 {
	var w int64
	for _, j := range x.Ind {
		w += a.ColLen(j)
	}
	return w
}

// runBatchSegment multiplies one budget-bounded segment through the
// shared workspace; singleton segments take the single-call path.
func runBatchSegment(a *sparse.CSC, xs, ys []*sparse.SpVec, sr semiring.Semiring, ws *Workspace, opt Options, masks []*sparse.BitVec, complement bool, outBits []*sparse.BitVec) {
	if len(xs) == 1 {
		var mk, ob *sparse.BitVec
		if masks != nil {
			mk = masks[0]
		}
		if outBits != nil {
			ob = outBits[0]
		}
		multiply(a, xs[0], ys[0], sr, ws, opt, mk, complement, ob)
		return
	}
	multiplyBatch(a, xs, ys, sr, ws, opt, masks, complement, outBits)
}

func multiplyBatch(a *sparse.CSC, xs, ys []*sparse.SpVec, sr semiring.Semiring, ws *Workspace, opt Options, masks []*sparse.BitVec, complement bool, outBits []*sparse.BitVec) {
	opt = opt.WithDefaults()
	m := a.NumRows
	k := len(xs)

	// Concatenate the inputs; batchOff[q] marks frontier q's start.
	var totalF int64
	for _, x := range xs {
		totalF += int64(x.NNZ())
	}
	ws.ensureBatch(totalF, k)
	off := int64(0)
	for q, x := range xs {
		ws.batchOff[q] = off
		copy(ws.batchInd[off:], x.Ind)
		copy(ws.batchVal[off:], x.Val)
		off += int64(x.NNZ())
	}
	ws.batchOff[k] = off

	for _, y := range ys {
		y.Reset(m)
	}
	if totalF == 0 || m == 0 {
		ws.Steps = perf.StepTimes{}
		return
	}
	xAll := &sparse.SpVec{N: a.NumCols, Ind: ws.batchInd[:totalF], Val: ws.batchVal[:totalF]}

	// Thread count and bucket geometry exactly as in the single-call
	// path, but with the batch's total nonzeros as f and the bucket
	// space replicated per frontier: full bucket id = q·nb + (i >>
	// shift), so every (frontier, row-range) pair owns a disjoint slot.
	t := opt.Threads
	if int64(t) > totalF {
		t = int(totalF)
	}
	nbReq := opt.BucketsPerThread * t
	shift := uint(0)
	for int64(m) > int64(nbReq)<<shift {
		shift++
	}
	nb := int((int64(m) + (int64(1) << shift) - 1) >> shift)
	if nb < 1 {
		nb = 1
	}
	NB := k * nb
	nc := stepChunks(t, int(totalF))
	ws.ensure(m, t, NB, nc)
	ex := opt.Exec()

	var timer perf.Timer
	timer.Start()

	// One split over the concatenated entries into ~8 stealable chunks
	// per worker (weighted by column nonzeros by default, the §III-B
	// fix; by entry count under SplitEvenly), crossing frontier
	// boundaries freely.
	if opt.SplitEvenly {
		ws.ranges = par.EvenRangesInto(int(totalF), nc, ws.ranges)
	} else {
		ws.xcum = a.CumulativeColWeights(xAll.Ind, ws.xcum)
		ws.ranges = par.SplitByWeightInto(ws.xcum, nc, ws.ranges)
	}

	// Estimate (Algorithm 2) for the whole batch: count per (chunk,
	// frontier, bucket) insertions in one pass.
	clear(ws.boffset[:nc*NB])
	ex.ForChunks(t, nc, nil, func(w, c int) {
		lo, hi := ws.ranges[c][0], ws.ranges[c][1]
		if lo >= hi {
			return
		}
		ctr := &ws.Counters[w]
		var touched int64
		for q, k2 := frontierAt(ws.batchOff, lo), lo; k2 < hi; {
			for k2 >= int(ws.batchOff[q+1]) {
				q++
			}
			segHi := hi
			if int(ws.batchOff[q+1]) < segHi {
				segHi = int(ws.batchOff[q+1])
			}
			row := ws.boffset[c*NB+q*nb : c*NB+(q+1)*nb]
			for ; k2 < segHi; k2++ {
				rows, _ := a.Col(xAll.Ind[k2])
				for _, i := range rows {
					row[i>>shift]++
				}
				touched += int64(len(rows))
			}
		}
		ctr.XScanned += int64(hi - lo)
		ctr.MatrixTouched += touched
	}, &ws.sched)

	// Two-level exclusive prefix: bucket-major, chunk-minor, over the
	// full (frontier, bucket) space.
	var total int64
	for bq := 0; bq < NB; bq++ {
		ws.bucketStart[bq] = total
		for c := 0; c < nc; c++ {
			idx := c*NB + bq
			cnt := ws.boffset[idx]
			ws.boffset[idx] = total
			total += cnt
		}
	}
	ws.bucketStart[NB] = total
	ws.ensureEntries(total)
	ws.ensureUval(total)
	ws.Steps.Estimate = timer.Lap()

	// Step 1 for the whole batch: each chunk scatters its per-frontier
	// segments through the chunk's cursor rows, reusing the
	// monomorphized kernels.
	ex.ForChunks(t, nc, nil, func(w, c int) {
		lo, hi := ws.ranges[c][0], ws.ranges[c][1]
		if lo >= hi {
			return
		}
		ctr := &ws.Counters[w]
		var written int64
		for q, k2 := frontierAt(ws.batchOff, lo), lo; k2 < hi; {
			for k2 >= int(ws.batchOff[q+1]) {
				q++
			}
			segHi := hi
			if int(ws.batchOff[q+1]) < segHi {
				segHi = int(ws.batchOff[q+1])
			}
			cur := ws.boffset[c*NB+q*nb : c*NB+(q+1)*nb]
			written += scatterRange(a, xAll, sr, ws, cur, k2, segHi, shift)
			k2 = segHi
		}
		ctr.XScanned += int64(hi - lo)
		ctr.MatrixTouched += written
		ctr.BucketWrites += written
	}, &ws.sched)
	ws.Steps.Bucket = timer.Lap()

	// Step 2: merge. All k frontiers of one row-range bucket run on the
	// same worker (the row range — hence the SPA slots — is what must
	// not be shared), under k distinct epochs; unique values are copied
	// out to uval immediately because the next frontier reuses the same
	// SPA rows before the output step runs. A slot with a mask takes the
	// masked merge — the same §V pushdown as the single-call path,
	// applied per frontier segment.
	base := ws.epochBlock(uint32(k))
	mergeBody := func(w, b int) {
		ctr := &ws.Counters[w]
		for q := 0; q < k; q++ {
			bq := q*nb + b
			lo, hi := ws.bucketStart[bq], ws.bucketStart[bq+1]
			if lo == hi {
				ws.uindCount[bq] = 0
				continue
			}
			ents := ws.entries[lo:hi]
			u := ws.uind[lo:lo]
			if masks != nil && masks[q] != nil {
				u = mergeMasked(sr, ws, ents, u, base+uint32(q), masks[q], complement)
			} else {
				u = mergeEpoch(sr, ws, ents, u, base+uint32(q))
			}
			ws.uindCount[bq] = int64(len(u))
			ctr.SPAInit += int64(len(u))
			ctr.SPAUpdates += int64(len(ents)) - int64(len(u))
			if opt.SortOutput {
				ws.scratch[w] = radix.SortIndices(u, ws.scratch[w])
				ctr.SortedElems += int64(len(u))
			}
			uval := ws.uval[lo : lo+int64(len(u))]
			for i, ind := range u {
				uval[i] = ws.spaVal[ind]
			}
		}
	}
	switch opt.MergeSched {
	case SchedDynamic:
		for w := 0; w < t; w++ {
			ws.sync[w] = 0
		}
		par.ForDynamic(t, nb, 1, func(w, lo, hi int) {
			for b := lo; b < hi; b++ {
				mergeBody(w, b)
			}
		}, ws.sync)
		for w := 0; w < t; w++ {
			ws.Counters[w].SyncEvents += ws.sync[w]
		}
	case SchedStealing:
		ex.ForChunks(t, nb, nil, mergeBody, &ws.sched)
	default:
		par.ForStatic(t, nb, func(w, lo, hi int) {
			for b := lo; b < hi; b++ {
				mergeBody(w, b)
			}
		})
	}
	ws.Steps.Merge = timer.Lap()
	ws.Steps.Sort = 0

	// Step 3 per frontier: prefix each frontier's unique counts and
	// copy every bucket's (index, value) pairs to its final offset.
	for q := 0; q < k; q++ {
		var nnzY int64
		for b := 0; b < nb; b++ {
			bq := q*nb + b
			ws.uindOffset[bq] = nnzY
			nnzY += ws.uindCount[bq]
		}
		y := ys[q]
		if int64(cap(y.Ind)) < nnzY {
			y.Ind = make([]sparse.Index, nnzY)
			y.Val = make([]float64, nnzY)
		} else {
			y.Ind = y.Ind[:nnzY]
			y.Val = y.Val[:nnzY]
		}
		y.Sorted = opt.SortOutput || nnzY == 0
	}
	ex.ForChunks(t, NB, nil, func(w, bq int) {
		cnt := ws.uindCount[bq]
		if cnt == 0 {
			return
		}
		q := bq / nb
		y := ys[q]
		off := ws.uindOffset[bq]
		start := ws.bucketStart[bq]
		copy(y.Ind[off:off+cnt], ws.uind[start:start+cnt])
		copy(y.Val[off:off+cnt], ws.uval[start:start+cnt])
		if outBits != nil && outBits[q] != nil {
			// Native bitmap emission, batched: bucket bq owns the
			// row range [b·2^shift, (b+1)·2^shift) of frontier q,
			// so SetRangeFrom's boundary-word atomics make the
			// concurrent per-slot fill race-free exactly as in the
			// single-call Step 3.
			bLo := sparse.Index(bq%nb) << shift
			outBits[q].SetRangeFrom(y.Ind[off:off+cnt], y.Val[off:off+cnt],
				bLo, bLo+(sparse.Index(1)<<shift))
		}
		ws.Counters[w].OutputWritten += cnt
	}, &ws.sched)
	ws.Steps.Output = timer.Lap()
	ws.foldSched(t)
}

// frontierAt returns the frontier owning concatenated position pos.
func frontierAt(off []int64, pos int) int {
	q := 0
	for pos >= int(off[q+1]) {
		q++
	}
	return q
}
