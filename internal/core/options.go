// Package core implements SpMSpV-bucket, the work-efficient parallel
// sparse matrix–sparse vector multiplication algorithm of Azad & Buluç
// (IPDPS 2017) — the primary contribution of the paper this repository
// reproduces.
//
// The algorithm computes y ← A·x over a semiring in three steps plus a
// preprocessing pass:
//
//	Estimate (Algorithm 2): each thread counts how many scaled matrix
//	  entries it will write into each bucket, so that Step 1 can run
//	  without any synchronization.
//	Step 1 (bucketing): the columns A(:,j) with x(j) ≠ 0 are scaled by
//	  x(j) and scattered into nb buckets by row id (bucket ⌊i·nb/m⌋),
//	  each thread writing through private, precomputed cursors.
//	Step 2 (merge): each bucket — a disjoint row range — is merged
//	  independently with a partially-initialized sparse accumulator,
//	  recording the unique row indices it produced.
//	Step 3 (output): a prefix sum over per-bucket unique counts places
//	  every bucket's results at its final offset in y without locks.
//
// Total work is O(df) for an Erdős–Rényi G(n, d/n) matrix and an input
// with f nonzeros, matching the problem's lower bound; the parallel
// depth is O(df/t) for t ≤ f threads.
package core

import "spmspv/internal/engine"

// Sched re-exports engine.Sched; the option set lives in
// internal/engine so that every registered algorithm shares one
// construction signature.
type Sched = engine.Sched

const (
	// SchedDynamic claims buckets via an atomic counter (the paper's
	// default, §III-A).
	SchedDynamic = engine.SchedDynamic
	// SchedStatic assigns contiguous bucket ranges up front.
	SchedStatic = engine.SchedStatic
	// SchedStealing runs Step 2 on the work-stealing executor with
	// entry-weighted initial shares.
	SchedStealing = engine.SchedStealing
)

// Options re-exports engine.Options, which documents each knob. The
// zero value asks for the paper's defaults.
type Options = engine.Options
