// Package core implements SpMSpV-bucket, the work-efficient parallel
// sparse matrix–sparse vector multiplication algorithm of Azad & Buluç
// (IPDPS 2017) — the primary contribution of the paper this repository
// reproduces.
//
// The algorithm computes y ← A·x over a semiring in three steps plus a
// preprocessing pass:
//
//	Estimate (Algorithm 2): each thread counts how many scaled matrix
//	  entries it will write into each bucket, so that Step 1 can run
//	  without any synchronization.
//	Step 1 (bucketing): the columns A(:,j) with x(j) ≠ 0 are scaled by
//	  x(j) and scattered into nb buckets by row id (bucket ⌊i·nb/m⌋),
//	  each thread writing through private, precomputed cursors.
//	Step 2 (merge): each bucket — a disjoint row range — is merged
//	  independently with a partially-initialized sparse accumulator,
//	  recording the unique row indices it produced.
//	Step 3 (output): a prefix sum over per-bucket unique counts places
//	  every bucket's results at its final offset in y without locks.
//
// Total work is O(df) for an Erdős–Rényi G(n, d/n) matrix and an input
// with f nonzeros, matching the problem's lower bound; the parallel
// depth is O(df/t) for t ≤ f threads.
package core

import "spmspv/internal/par"

// Sched selects how Step 2 distributes buckets over threads.
type Sched int

const (
	// SchedDynamic claims buckets via an atomic counter (OpenMP
	// "schedule(dynamic)"), the paper's choice for load balance on
	// skewed matrices (§III-A).
	SchedDynamic Sched = iota
	// SchedStatic assigns contiguous bucket ranges up front. Exposed for
	// the scheduling ablation benchmark.
	SchedStatic
)

// Options configures the SpMSpV-bucket algorithm. The zero value asks
// for the paper's defaults: GOMAXPROCS threads, 4 buckets per thread,
// epoch-tag merging, dynamic bucket scheduling, and the nonzero-balanced
// Step-1 split.
type Options struct {
	// Threads is the number of worker threads t; ≤ 0 means GOMAXPROCS.
	// Following the paper's analysis the effective t never exceeds
	// nnz(x).
	Threads int

	// BucketsPerThread sets nb = BucketsPerThread·t. The paper uses 4
	// ("we use 4t buckets when using t threads", §III-A); 0 means 4.
	BucketsPerThread int

	// SortOutput produces y with strictly increasing indices by radix
	// sorting each bucket's unique indices. Because buckets partition
	// the row space in order, per-bucket sorting yields a globally
	// sorted vector (paper Fig. 1, "sorted uind").
	SortOutput bool

	// StagingEntries, when positive, routes Step-1 writes through a
	// small per-(thread,bucket) staging buffer that is flushed to the
	// bucket when full — the paper's cache-locality optimization ("a
	// thread first fills its private buffer … and copies data from the
	// private buffer to buckets when the local buffer is full",
	// §III-A). Zero writes directly.
	StagingEntries int

	// UseInfSentinel switches Step 2 to the paper-faithful two-pass
	// merge that marks first touches with ∞ (Algorithm 1, lines 11-18)
	// instead of the default one-pass epoch-tag merge. The sentinel
	// variant cannot distinguish a stored +Inf from an uninitialized
	// slot, exactly as in the paper; it exists for fidelity comparisons.
	UseInfSentinel bool

	// MergeSched selects dynamic (default) or static scheduling of
	// buckets in Step 2.
	MergeSched Sched

	// SplitEvenly disables the nonzero-weighted Step-1 work split. By
	// default work is split "based on nonzeros, as opposed to [entries],
	// of x" — the paper's §III-B fix that bounds the span on skewed
	// matrices. Setting SplitEvenly gives each thread an equal count of
	// x entries instead.
	SplitEvenly bool
}

// withDefaults resolves zero values to the paper's defaults.
func (o Options) withDefaults() Options {
	o.Threads = par.Threads(o.Threads)
	if o.BucketsPerThread <= 0 {
		o.BucketsPerThread = 4
	}
	return o
}
