package core

import (
	"sync"

	"spmspv/internal/engine"
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Multiplier binds a matrix, slot-pinned reusable workspaces and
// options into the uniform Multiply(x, y, sr) shape that the baselines
// also implement, so graph algorithms and the benchmark harness can
// treat all SpMSpV engines interchangeably.
//
// A Multiplier is safe for concurrent use: each Multiply claims a
// workspace slot from a fixed GOMAXPROCS-sized par.Slots set — one
// goroutine keeps the paper's single-preallocation behavior (§III-A)
// and always gets the same warm workspace back; up to GOMAXPROCS
// concurrent callers each pin a slot, and only callers beyond that
// spill to a sync.Pool overflow — and work counters are aggregated
// race-free when the workspace is returned.
type Multiplier struct {
	A   *sparse.CSC
	Opt Options

	ws *par.Slots[Workspace]

	mu       sync.Mutex
	counters perf.Counters // aggregate of all retired calls
	steps    perf.StepTimes
}

// NewMultiplier returns a bucket-algorithm multiplier for a; workspaces
// are pre-sized for the matrix when their slot is first claimed.
func NewMultiplier(a *sparse.CSC, opt Options) *Multiplier {
	mu := &Multiplier{A: a, Opt: opt}
	mu.ws = par.NewSlots(par.Threads(0), func() *Workspace { return NewWorkspace(a.NumRows, 0) })
	return mu
}

// Multiply computes y ← A·x over sr with the SpMSpV-bucket algorithm.
func (mu *Multiplier) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	ws, slot := mu.ws.Get()
	Multiply(mu.A, x, y, sr, ws, mu.Opt)
	mu.retire(ws, slot)
}

// MultiplyMasked computes the masked product (see MultiplyMasked).
func (mu *Multiplier) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	ws, slot := mu.ws.Get()
	MultiplyMasked(mu.A, x, y, sr, mask, complement, ws, mu.Opt)
	mu.retire(ws, slot)
}

// PreferredRep reports the list input representation the vector-driven
// bucket algorithm scans natively.
func (mu *Multiplier) PreferredRep() engine.Rep { return engine.RepList }

// MultiplyFrontier computes y ← A·x reading the frontier's list
// representation (always present; no conversion ever runs).
func (mu *Multiplier) MultiplyFrontier(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring) {
	mu.Multiply(x.List(), y, sr)
}

// OutputRep reports that MultiplyInto emits list and bitmap in one
// pass: Step 3's per-bucket concatenation scatters each bucket's
// unique indices into the output bitmap as it writes them to the list.
func (mu *Multiplier) OutputRep() engine.Rep { return engine.RepBitmap }

// MultiplyInto computes y ← A·x into the output frontier, emitting the
// bitmap representation natively during the output step — a consumer
// that prefers the bitmap (a hybrid engine's next dense level) reads
// it with zero conversions.
func (mu *Multiplier) MultiplyInto(x, y *sparse.Frontier, sr semiring.Semiring) {
	ws, slot := mu.ws.Get()
	list := y.BeginOutput()
	bits := y.OutputBits(mu.A.NumRows)
	native := multiply(mu.A, x.List(), list, sr, ws, mu.Opt, nil, false, bits)
	y.FinishOutput(native)
	mu.retire(ws, slot)
}

// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output
// frontier: the mask is pushed into the merge step (bucket entries it
// kills never reach the SPA output) and the surviving result is
// emitted list+bitmap in one pass.
func (mu *Multiplier) MultiplyIntoMasked(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	ws, slot := mu.ws.Get()
	list := y.BeginOutput()
	bits := y.OutputBits(mu.A.NumRows)
	native := multiply(mu.A, x.List(), list, sr, ws, mu.Opt, mask, complement, bits)
	y.FinishOutput(native)
	mu.retire(ws, slot)
}

// Compile-time checks: the bucket multiplier implements every optional
// engine extension.
var (
	_ engine.MaskedEngine       = (*Multiplier)(nil)
	_ engine.FrontierEngine     = (*Multiplier)(nil)
	_ engine.BatchEngine        = (*Multiplier)(nil)
	_ engine.MaskedOutputEngine = (*Multiplier)(nil)
	_ engine.BatchOutputEngine  = (*Multiplier)(nil)
)

// retire folds the workspace's per-call work into the multiplier's
// aggregate counters under the lock, zeroes it, and releases the
// workspace's slot (or returns an overflow workspace to the pool).
func (mu *Multiplier) retire(ws *Workspace, slot int) {
	c := ws.TotalCounters()
	ws.ResetCounters()
	mu.mu.Lock()
	mu.counters.Merge(&c)
	mu.steps = ws.Steps
	mu.mu.Unlock()
	mu.ws.Put(ws, slot)
}

// Counters aggregates the work performed since the last ResetCounters.
func (mu *Multiplier) Counters() perf.Counters {
	mu.mu.Lock()
	defer mu.mu.Unlock()
	return mu.counters
}

// ResetCounters zeroes the accumulated work counters.
func (mu *Multiplier) ResetCounters() {
	mu.mu.Lock()
	defer mu.mu.Unlock()
	mu.counters.Reset()
}

// Steps returns the per-phase timing breakdown of the most recently
// retired call (meaningful when calls are not racing each other).
func (mu *Multiplier) Steps() perf.StepTimes {
	mu.mu.Lock()
	defer mu.mu.Unlock()
	return mu.steps
}

// Name identifies the algorithm in benchmark tables.
func (mu *Multiplier) Name() string { return "SpMSpV-bucket" }
