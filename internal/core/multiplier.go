package core

import (
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Multiplier binds a matrix, a reusable workspace and options into the
// uniform Multiply(x, y, sr) shape that the baselines also implement, so
// graph algorithms and the benchmark harness can treat all SpMSpV
// engines interchangeably.
type Multiplier struct {
	A   *sparse.CSC
	WS  *Workspace
	Opt Options
}

// NewMultiplier returns a bucket-algorithm multiplier for a with a fresh
// workspace pre-sized for the matrix.
func NewMultiplier(a *sparse.CSC, opt Options) *Multiplier {
	return &Multiplier{
		A:   a,
		WS:  NewWorkspace(a.NumRows, 0),
		Opt: opt,
	}
}

// Multiply computes y ← A·x over sr with the SpMSpV-bucket algorithm.
func (mu *Multiplier) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	Multiply(mu.A, x, y, sr, mu.WS, mu.Opt)
}

// MultiplyMasked computes the masked product (see MultiplyMasked).
func (mu *Multiplier) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	MultiplyMasked(mu.A, x, y, sr, mask, complement, mu.WS, mu.Opt)
}

// Counters aggregates the work performed since the last ResetCounters.
func (mu *Multiplier) Counters() perf.Counters { return mu.WS.TotalCounters() }

// ResetCounters zeroes the accumulated work counters.
func (mu *Multiplier) ResetCounters() { mu.WS.ResetCounters() }

// Steps returns the per-phase timing breakdown of the most recent call.
func (mu *Multiplier) Steps() perf.StepTimes { return mu.WS.Steps }

// Name identifies the algorithm in benchmark tables.
func (mu *Multiplier) Name() string { return "SpMSpV-bucket" }
