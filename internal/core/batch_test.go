package core

import (
	"math/rand"
	"testing"

	"spmspv/internal/baselines"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// TestMultiplyBatchMatchesLoop drives the batched multiply across
// shapes, semirings, thread counts and batch compositions (including
// empty and duplicate-free/duplicated frontiers) and checks every
// output against both a loop of single multiplies and the sequential
// reference.
func TestMultiplyBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		m, n sparse.Index
		d    float64
	}{
		{1, 1, 1},
		{40, 90, 3},
		{700, 700, 5},
		{64, 1024, 2},
	}
	srs := []semiring.Semiring{semiring.Arithmetic, semiring.MinPlus, semiring.MinSelect2nd}
	for _, sh := range shapes {
		a := testutil.RandomCSC(rng, sh.m, sh.n, sh.d)
		for _, threads := range []int{1, 3} {
			mu := NewMultiplier(a, Options{Threads: threads, SortOutput: true})
			for _, k := range []int{2, 3, 8} {
				xs := make([]*sparse.SpVec, k)
				ys := make([]*sparse.SpVec, k)
				want := make([]*sparse.SpVec, k)
				for _, sr := range srs {
					for q := 0; q < k; q++ {
						f := rng.Intn(int(sh.n)) // may be 0
						if q == 1 {
							f = 0 // force an empty frontier in every batch
						}
						xs[q] = testutil.RandomVector(rng, sh.n, f, true)
						ys[q] = sparse.NewSpVec(0, 0)
						want[q] = baselines.Reference(a, xs[q], sr)
					}
					mu.MultiplyBatch(xs, ys, sr)
					for q := 0; q < k; q++ {
						if !ys[q].EqualValues(want[q], 1e-9) {
							t.Fatalf("%dx%d t=%d k=%d sr=%s frontier %d: batch result differs from reference",
								sh.m, sh.n, threads, k, sr.Name, q)
						}
						if err := ys[q].Validate(); err != nil {
							t.Fatalf("frontier %d: invalid output: %v", q, err)
						}
						loop := sparse.NewSpVec(0, 0)
						mu.Multiply(xs[q], loop, sr)
						if !ys[q].EqualValues(loop, 1e-9) {
							t.Fatalf("frontier %d: batch differs from loop-of-Multiply", q)
						}
					}
				}
			}
		}
	}
}

// TestMultiplyBatchAllEmpty checks the degenerate all-empty batch.
func TestMultiplyBatchAllEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := testutil.RandomCSC(rng, 50, 50, 3)
	mu := NewMultiplier(a, Options{Threads: 2, SortOutput: true})
	xs := []*sparse.SpVec{sparse.NewSpVec(50, 0), sparse.NewSpVec(50, 0)}
	ys := []*sparse.SpVec{sparse.NewSpVec(0, 0), sparse.NewSpVec(0, 0)}
	mu.MultiplyBatch(xs, ys, semiring.Arithmetic)
	for q, y := range ys {
		if y.NNZ() != 0 || y.N != 50 {
			t.Errorf("frontier %d: got %v, want empty of dimension 50", q, y)
		}
	}
}

// TestMultiplyBatchCounters checks that the batch path records the
// same deterministic work the loop path does for the shared terms.
func TestMultiplyBatchCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := testutil.RandomCSC(rng, 300, 300, 4)
	xs := make([]*sparse.SpVec, 4)
	ys := make([]*sparse.SpVec, 4)
	for q := range xs {
		xs[q] = testutil.RandomVector(rng, 300, 10+20*q, true)
		ys[q] = sparse.NewSpVec(0, 0)
	}

	loop := NewMultiplier(a, Options{Threads: 2, SortOutput: true})
	for q := range xs {
		loop.Multiply(xs[q], ys[q], semiring.Arithmetic)
	}
	wantC := loop.Counters()

	batch := NewMultiplier(a, Options{Threads: 2, SortOutput: true})
	batch.MultiplyBatch(xs, ys, semiring.Arithmetic)
	gotC := batch.Counters()

	// Input scans, matrix touches, bucket writes, SPA work and output
	// are identical by construction; only SyncEvents (scheduling) may
	// differ.
	if gotC.XScanned != wantC.XScanned || gotC.MatrixTouched != wantC.MatrixTouched ||
		gotC.BucketWrites != wantC.BucketWrites || gotC.SPAInit != wantC.SPAInit ||
		gotC.SPAUpdates != wantC.SPAUpdates || gotC.OutputWritten != wantC.OutputWritten {
		t.Errorf("batch counters differ from loop:\n batch %s\n loop  %s", gotC, wantC)
	}
}
