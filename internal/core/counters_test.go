package core

import (
	"math/rand"
	"sync"
	"testing"

	"spmspv/internal/baselines"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestExactCounterValues pins the work counters to hand-computed values
// on the Fig. 1 matrix, so the Tables I/II experiment rests on counters
// with verified semantics.
func TestExactCounterValues(t *testing.T) {
	a := paperMatrix(t)
	// x selects columns 2 (4 entries), 5 (2 entries), 7 (2 entries).
	x := sparse.NewSpVec(8, 3)
	x.Append(2, 2)
	x.Append(5, 3)
	x.Append(7, 5)

	ws := NewWorkspace(8, 0)
	y := sparse.NewSpVec(0, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: 1, SortOutput: false})
	c := ws.TotalCounters()

	const df = 8 // total selected entries: 4 + 2 + 2
	if c.XScanned != 6 {
		// Both the estimate pass and the bucket pass scan the 3 input
		// nonzeros (the paper's two passes over x).
		t.Errorf("XScanned = %d, want 6", c.XScanned)
	}
	if c.MatrixTouched != 2*df {
		// Estimate + scatter each touch all df entries (§III-B: "both
		// access df nonzero entries").
		t.Errorf("MatrixTouched = %d, want %d", c.MatrixTouched, 2*df)
	}
	if c.BucketWrites != df {
		t.Errorf("BucketWrites = %d, want %d", c.BucketWrites, df)
	}
	// nnz(y) = 6 unique rows; SPA initializes exactly the unique slots.
	if c.SPAInit != 6 {
		t.Errorf("SPAInit = %d, want 6", c.SPAInit)
	}
	if c.SPAUpdates != df-6 {
		t.Errorf("SPAUpdates = %d, want %d", c.SPAUpdates, df-6)
	}
	if c.OutputWritten != 6 {
		t.Errorf("OutputWritten = %d, want 6", c.OutputWritten)
	}
	if c.SortedElems != 0 {
		t.Errorf("SortedElems = %d, want 0 for unsorted output", c.SortedElems)
	}

	// The ∞-sentinel variant initializes per entry, not per unique slot.
	ws2 := NewWorkspace(8, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws2, Options{Threads: 1, UseInfSentinel: true})
	if c2 := ws2.TotalCounters(); c2.SPAInit != df {
		t.Errorf("sentinel SPAInit = %d, want %d", c2.SPAInit, df)
	}
}

// TestSteadyStateAllocationConstant verifies the paper's §III-A memory
// strategy end to end: after the first call sizes every buffer, a
// multiply allocates only a constant handful of objects (closure
// headers for the parallel sections) — crucially, the count must not
// scale with the input or the matrix. Buckets, SPA, Boffset, uind and
// sort scratch are all reused.
func TestSteadyStateAllocationConstant(t *testing.T) {
	rng := newRand(31)
	a := testutil.RandomCSC(rng, 4000, 4000, 8)
	small := testutil.RandomVector(rng, 4000, 20, true)
	large := testutil.RandomVector(rng, 4000, 3000, true)
	ws := NewWorkspace(0, 0)
	y := sparse.NewSpVec(0, 0)
	opt := Options{Threads: 1, SortOutput: true}
	// Size all buffers with the largest workload first.
	Multiply(a, large, y, semiring.Arithmetic, ws, opt)

	allocSmall := testing.AllocsPerRun(20, func() {
		Multiply(a, small, y, semiring.Arithmetic, ws, opt)
	})
	allocLarge := testing.AllocsPerRun(20, func() {
		Multiply(a, large, y, semiring.Arithmetic, ws, opt)
	})
	if allocSmall > 8 || allocLarge > 8 {
		t.Errorf("steady-state multiply allocates %.1f / %.1f objects/op, want ≤ 8 fixed",
			allocSmall, allocLarge)
	}
	if allocLarge > allocSmall {
		t.Errorf("allocations scale with input: %.1f (f=20) vs %.1f (f=3000)",
			allocSmall, allocLarge)
	}
}

// TestConcurrentMultipliers runs independent Multiplier instances (each
// with a private workspace) from concurrent goroutines — the supported
// way to parallelize across multiplications — and checks isolation.
func TestConcurrentMultipliers(t *testing.T) {
	rngSeeds := []int64{1, 2, 3, 4}
	a := testutil.RandomCSC(newRand(11), 800, 800, 5)
	want := make([]*sparse.SpVec, len(rngSeeds))
	xs := make([]*sparse.SpVec, len(rngSeeds))
	for k, seed := range rngSeeds {
		xs[k] = testutil.RandomVector(newRand(seed), 800, 100+10*k, true)
		want[k] = baselines.Reference(a, xs[k], semiring.Arithmetic)
	}
	var wg sync.WaitGroup
	errs := make([]string, len(rngSeeds))
	for k := range rngSeeds {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			mu := NewMultiplier(a, Options{Threads: 2, SortOutput: true})
			y := sparse.NewSpVec(0, 0)
			for rep := 0; rep < 20; rep++ {
				mu.Multiply(xs[k], y, semiring.Arithmetic)
				if !y.EqualValues(want[k], 1e-9) {
					errs[k] = "result mismatch under concurrency"
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for k, e := range errs {
		if e != "" {
			t.Errorf("goroutine %d: %s", k, e)
		}
	}
}
