package core

import (
	"fmt"
	"math/rand"
	"testing"

	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// schedVariants are the three Step-2 schedules under comparison.
func schedVariants() []struct {
	name  string
	sched Sched
} {
	return []struct {
		name  string
		sched Sched
	}{
		{"static", SchedStatic},
		{"dynamic", SchedDynamic},
		{"stealing", SchedStealing},
	}
}

// TestSchedulesBitIdentical pins the chunk-identity invariant that makes
// work stealing safe to enable: because the (bucket-major, chunk-minor)
// cursor prefix fixes every entry's slot from the chunk id alone —
// never from which worker executes the chunk — the stealing schedule
// must produce outputs BIT-identical (not merely numerically close) to
// the static and dynamic schedules, for single multiplies, masked
// multiplies and the batched path, across thread counts.
func TestSchedulesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := testutil.RandomCSC(rng, 700, 700, 6)
	mask := sparse.NewBitVec(700)
	maskSrc := sparse.NewSpVec(700, 0)
	for v := sparse.Index(0); v < 700; v += 3 {
		maskSrc.Append(v, 1)
	}
	mask.SetFrom(maskSrc)

	xs := make([]*sparse.SpVec, 4)
	for i := range xs {
		xs[i] = testutil.RandomVector(rng, 700, 10+i*120, true)
	}

	for _, threads := range []int{1, 2, 4, 7} {
		for _, x := range xs {
			var ref, refMasked *sparse.SpVec
			var refBatch []*sparse.SpVec
			for _, sv := range schedVariants() {
				opt := Options{Threads: threads, SortOutput: true, MergeSched: sv.sched}
				ws := NewWorkspace(0, 0)
				y := sparse.NewSpVec(0, 0)
				Multiply(a, x, y, semiring.Arithmetic, ws, opt)
				ym := sparse.NewSpVec(0, 0)
				MultiplyMasked(a, x, ym, semiring.Arithmetic, mask, false, ws, opt)
				mu := NewMultiplier(a, opt)
				ys := make([]*sparse.SpVec, len(xs))
				for q := range ys {
					ys[q] = sparse.NewSpVec(0, 0)
				}
				mu.MultiplyBatch(xs, ys, semiring.Arithmetic)
				if sv.sched == SchedStatic {
					ref, refMasked, refBatch = y, ym, ys
					continue
				}
				requireBitIdentical(t, fmt.Sprintf("t=%d f=%d %s vs static", threads, x.NNZ(), sv.name), ref, y)
				requireBitIdentical(t, fmt.Sprintf("t=%d f=%d %s vs static (masked)", threads, x.NNZ(), sv.name), refMasked, ym)
				for q := range ys {
					requireBitIdentical(t, fmt.Sprintf("t=%d f=%d %s vs static (batch slot %d)", threads, x.NNZ(), sv.name, q), refBatch[q], ys[q])
				}
			}
		}
	}
}

func requireBitIdentical(t *testing.T, label string, want, got *sparse.SpVec) {
	t.Helper()
	if got.NNZ() != want.NNZ() {
		t.Fatalf("%s: nnz %d, want %d", label, got.NNZ(), want.NNZ())
	}
	for k := range want.Ind {
		if got.Ind[k] != want.Ind[k] || got.Val[k] != want.Val[k] {
			t.Fatalf("%s: entry %d = (%d, %x), want (%d, %x)",
				label, k, got.Ind[k], got.Val[k], want.Ind[k], want.Val[k])
		}
	}
}

// TestWorkCountersDeterministicAtFixedThreads pins that the
// deterministic work counters — everything Work() sums, plus the
// claims+steals total — are identical across repeated runs at a fixed
// thread count under every schedule, even though which worker claims
// which chunk (and hence the claims/steals split and idle time) is
// scheduling-dependent.
func TestWorkCountersDeterministicAtFixedThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := testutil.RandomCSC(rng, 800, 800, 5)
	x := testutil.RandomVector(rng, 800, 150, true)

	for _, sv := range schedVariants() {
		for _, threads := range []int{1, 4} {
			opt := Options{Threads: threads, SortOutput: true, MergeSched: sv.sched}
			type snapshot struct {
				work         int64
				claimsPlus   int64
				xs, mt, bw   int64
				spaI, spaU   int64
				sorted, outW int64
			}
			take := func() snapshot {
				mu := NewMultiplier(a, opt)
				mu.Multiply(x, sparse.NewSpVec(0, 0), semiring.Arithmetic)
				c := mu.Counters()
				return snapshot{
					work:       c.Work(),
					claimsPlus: c.ChunkClaims + c.Steals,
					xs:         c.XScanned, mt: c.MatrixTouched, bw: c.BucketWrites,
					spaI: c.SPAInit, spaU: c.SPAUpdates,
					sorted: c.SortedElems, outW: c.OutputWritten,
				}
			}
			first := take()
			for run := 1; run < 4; run++ {
				if got := take(); got != first {
					t.Fatalf("%s t=%d: run %d counters %+v differ from first run %+v",
						sv.name, threads, run, got, first)
				}
			}
		}
	}
}
