package core

import (
	"math/rand"
	"testing"

	"spmspv/internal/baselines"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// FuzzMultiplyMatchesReference drives the bucket algorithm with
// fuzzer-chosen shapes, densities, thread counts and option bits, and
// checks the result against the sequential oracle. The fuzzer explores
// the configuration space (bucket-count rounding, range splitting,
// staging flushes) far beyond the hand-picked test matrix.
func FuzzMultiplyMatchesReference(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(100), uint8(4), uint8(2), uint8(0))
	f.Add(int64(2), uint16(1), uint16(1), uint8(1), uint8(1), uint8(7))
	f.Add(int64(3), uint16(3000), uint16(17), uint8(30), uint8(8), uint8(3))
	f.Add(int64(4), uint16(17), uint16(3000), uint8(2), uint8(16), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, m16, n16 uint16, deg, threads, bits uint8) {
		m := sparse.Index(m16%4000 + 1)
		n := sparse.Index(n16%4000 + 1)
		d := float64(deg%32) + 0.5
		tcount := int(threads%16) + 1

		rng := rand.New(rand.NewSource(seed))
		a := testutil.RandomCSC(rng, m, n, d)
		f64 := rng.Intn(int(n) + 1)
		x := testutil.RandomVector(rng, n, f64, bits&1 != 0)

		opt := Options{
			Threads:        tcount,
			SortOutput:     bits&2 != 0,
			UseInfSentinel: bits&4 != 0,
			SplitEvenly:    bits&8 != 0,
		}
		if bits&16 != 0 {
			opt.StagingEntries = 8
		}
		if bits&32 != 0 {
			opt.BucketsPerThread = 1
		}
		if bits&64 != 0 {
			opt.MergeSched = SchedStatic
		}

		ws := NewWorkspace(0, 0)
		y := sparse.NewSpVec(0, 0)
		Multiply(a, x, y, semiring.Arithmetic, ws, opt)
		want := baselines.Reference(a, x, semiring.Arithmetic)
		if !y.EqualValues(want, 1e-9) {
			t.Fatalf("mismatch: m=%d n=%d d=%g f=%d opts=%+v", m, n, d, f64, opt)
		}
		if opt.SortOutput {
			if err := y.Validate(); err != nil {
				t.Fatalf("invalid sorted output: %v", err)
			}
		}
		// Reuse the same workspace once more to catch state leaks.
		Multiply(a, x, y, semiring.Arithmetic, ws, opt)
		if !y.EqualValues(want, 1e-9) {
			t.Fatal("second call with reused workspace diverged")
		}
	})
}
