package core

import (
	"math/rand"
	"testing"

	"spmspv/internal/baselines"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// FuzzMultiplyMatchesReference drives the bucket algorithm with
// fuzzer-chosen shapes, densities, thread counts and option bits, and
// checks the result against the sequential oracle. The fuzzer explores
// the configuration space (bucket-count rounding, range splitting,
// staging flushes) far beyond the hand-picked test matrix.
func FuzzMultiplyMatchesReference(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(100), uint8(4), uint8(2), uint8(0))
	f.Add(int64(2), uint16(1), uint16(1), uint8(1), uint8(1), uint8(7))
	f.Add(int64(3), uint16(3000), uint16(17), uint8(30), uint8(8), uint8(3))
	f.Add(int64(4), uint16(17), uint16(3000), uint8(2), uint8(16), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, m16, n16 uint16, deg, threads, bits uint8) {
		m := sparse.Index(m16%4000 + 1)
		n := sparse.Index(n16%4000 + 1)
		d := float64(deg%32) + 0.5
		tcount := int(threads%16) + 1

		rng := rand.New(rand.NewSource(seed))
		a := testutil.RandomCSC(rng, m, n, d)
		f64 := rng.Intn(int(n) + 1)
		x := testutil.RandomVector(rng, n, f64, bits&1 != 0)

		opt := Options{
			Threads:        tcount,
			SortOutput:     bits&2 != 0,
			UseInfSentinel: bits&4 != 0,
			SplitEvenly:    bits&8 != 0,
		}
		if bits&16 != 0 {
			opt.StagingEntries = 8
		}
		if bits&32 != 0 {
			opt.BucketsPerThread = 1
		}
		if bits&64 != 0 {
			opt.MergeSched = SchedStatic
		}

		ws := NewWorkspace(0, 0)
		y := sparse.NewSpVec(0, 0)
		Multiply(a, x, y, semiring.Arithmetic, ws, opt)
		want := baselines.Reference(a, x, semiring.Arithmetic)
		if !y.EqualValues(want, 1e-9) {
			t.Fatalf("mismatch: m=%d n=%d d=%g f=%d opts=%+v", m, n, d, f64, opt)
		}
		if opt.SortOutput {
			if err := y.Validate(); err != nil {
				t.Fatalf("invalid sorted output: %v", err)
			}
		}
		// Reuse the same workspace once more to catch state leaks.
		Multiply(a, x, y, semiring.Arithmetic, ws, opt)
		if !y.EqualValues(want, 1e-9) {
			t.Fatal("second call with reused workspace diverged")
		}
	})
}

// FuzzMultiplyMaskedOutputMatchesReference extends the fuzz harness to
// masked frontier outputs: the mask-pushdown merge plus the native
// list+bitmap output pass must equal the oracle with the mask applied
// after the fact, and the emitted bitmap must mirror the list, across
// fuzzer-chosen shapes, mask densities and polarities.
func FuzzMultiplyMaskedOutputMatchesReference(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(100), uint8(4), uint8(2), uint8(0), uint8(128))
	f.Add(int64(2), uint16(1), uint16(1), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(3), uint16(3000), uint16(17), uint8(30), uint8(8), uint8(2), uint8(255))
	f.Add(int64(5), uint16(64), uint16(2000), uint8(9), uint8(5), uint8(3), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, m16, n16 uint16, deg, threads, bits, maskDen uint8) {
		m := sparse.Index(m16%4000 + 1)
		n := sparse.Index(n16%4000 + 1)
		d := float64(deg%32) + 0.5
		tcount := int(threads%16) + 1

		rng := rand.New(rand.NewSource(seed))
		a := testutil.RandomCSC(rng, m, n, d)
		x := testutil.RandomVector(rng, n, rng.Intn(int(n)+1), bits&1 != 0)

		sel := sparse.NewSpVec(m, 0)
		den := float64(maskDen) / 255
		for i := sparse.Index(0); i < m; i++ {
			if rng.Float64() < den {
				sel.Append(i, 1)
			}
		}
		mask := sparse.NewBitVec(m)
		mask.SetFrom(sel)
		complement := bits&2 != 0

		opt := Options{Threads: tcount, SortOutput: bits&4 != 0}
		mu := NewMultiplier(a, opt)

		want := baselines.Reference(a, x, semiring.Arithmetic)
		sparse.FilterMaskInPlace(want, mask, complement)

		// Masked list path.
		y := sparse.NewSpVec(0, 0)
		mu.MultiplyMasked(x, y, semiring.Arithmetic, mask, complement)
		if !y.EqualValues(want, 1e-9) {
			t.Fatalf("MultiplyMasked mismatch: m=%d n=%d d=%g complement=%v", m, n, d, complement)
		}

		// Masked frontier-output path, run twice through the same
		// output frontier to catch stale bitmap state.
		xf := sparse.NewFrontier(x)
		yf := sparse.NewOutputFrontier(m)
		for round := 0; round < 2; round++ {
			mu.MultiplyIntoMasked(xf, yf, semiring.Arithmetic, mask, complement)
			if !yf.List().EqualValues(want, 1e-9) {
				t.Fatalf("round %d: MultiplyIntoMasked mismatch", round)
			}
			if yf.HasBits() {
				bv := yf.Bits()
				if bv.Count() != yf.NNZ() {
					t.Fatalf("round %d: bitmap count %d != nnz %d", round, bv.Count(), yf.NNZ())
				}
				l := yf.List()
				for k, i := range l.Ind {
					if v, ok := bv.Get(i); !ok || v != l.Val[k] {
						t.Fatalf("round %d: bitmap[%d] = (%v,%v), list %g", round, i, v, ok, l.Val[k])
					}
				}
			}
		}
	})
}
