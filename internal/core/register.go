package core

import (
	"spmspv/internal/engine"
	"spmspv/internal/sparse"
)

// The bucket engine registers itself under engine.Bucket; importing
// this package is what makes the default algorithm constructible
// through the registry.
func init() {
	engine.Register(engine.Bucket, "SpMSpV-bucket",
		func(a *sparse.CSC, opt engine.Options) engine.Engine {
			return NewMultiplier(a, opt)
		})
}
