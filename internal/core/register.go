package core

import (
	"spmspv/internal/engine"
	"spmspv/internal/sparse"
)

// The bucket engine registers itself under engine.Bucket — with the
// short CLI alias "bucket" — so importing this package is what makes
// the default algorithm constructible through the registry and
// nameable through engine.Parse.
func init() {
	engine.Register(engine.Bucket, "SpMSpV-bucket",
		func(a *sparse.CSC, opt engine.Options) engine.Engine {
			return NewMultiplier(a, opt)
		}, "bucket")
}
