package core

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Multiply computes y ← A·x over the semiring sr using the
// SpMSpV-bucket algorithm (Algorithms 1 and 2 of the paper). x may be
// sorted or unsorted; duplicate indices in x contribute additively. y is
// reset and filled; it comes out sorted iff opt.SortOutput is set. ws
// must not be shared with concurrent calls.
func Multiply(a *sparse.CSC, x *sparse.SpVec, y *sparse.SpVec, sr semiring.Semiring, ws *Workspace, opt Options) {
	multiply(a, x, y, sr, ws, opt, nil, false, nil)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩: entries of A·x whose row is
// not admitted by the mask are dropped during the merge step rather than
// after the fact. With complement set, rows present in the mask are the
// ones dropped — the pattern BFS uses to exclude already-visited
// vertices. Masked SpMSpV is listed as upcoming GraphBLAS work in the
// paper's §V; this implements the mask-pushdown the paper anticipates.
func MultiplyMasked(a *sparse.CSC, x *sparse.SpVec, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool, ws *Workspace, opt Options) {
	multiply(a, x, y, sr, ws, opt, mask, complement, nil)
}

// multiply is the shared implementation. outBits, when non-nil, is an
// output bitmap the final output step populates natively alongside y
// (one pass emits both representations — see Multiplier.MultiplyInto);
// multiply reports whether it did so (always, when outBits is non-nil).
func multiply(a *sparse.CSC, x *sparse.SpVec, y *sparse.SpVec, sr semiring.Semiring, ws *Workspace, opt Options, mask *sparse.BitVec, maskComplement bool, outBits *sparse.BitVec) bool {
	opt = opt.WithDefaults()
	m := a.NumRows
	y.Reset(m)
	y.Sorted = true
	f := x.NNZ()
	if f == 0 || m == 0 {
		ws.Steps = perf.StepTimes{}
		return outBits != nil
	}

	// The paper's parallel analysis assumes t ≤ f; more threads than
	// input nonzeros cannot be given distinct Step-1 work.
	t := opt.Threads
	if t > f {
		t = f
	}
	// Bucket mapping: the paper assigns row i to bucket ⌊i·nb/m⌋. We
	// round the rows-per-bucket up to a power of two so the mapping is
	// a shift (i >> bucketShift) instead of two 64-bit divisions per
	// matrix nonzero — same contiguous row ranges, ≤ the requested
	// bucket count, measurably faster Steps 1 and 2.
	nbReq := opt.BucketsPerThread * t
	shift := uint(0)
	for int64(m) > int64(nbReq)<<shift {
		shift++
	}
	nb := int((int64(m) + (int64(1) << shift) - 1) >> shift)
	if nb < 1 {
		nb = 1
	}
	// Over-decompose the input split into ~8 stealable chunks per worker
	// (one chunk when t = 1): each chunk owns a private cursor row, so
	// any executor worker can run any chunk and stealing rebalances
	// skewed frontiers without changing the bucket layout.
	nc := stepChunks(t, f)
	ws.ensure(m, t, nb, nc)
	ex := opt.Exec()

	var timer perf.Timer
	timer.Start()

	// Partition the f input nonzeros among nc chunks. The default
	// weights each x entry by its column's nonzero count — the §III-B
	// fix that keeps the span low when a few columns are huge.
	if opt.SplitEvenly {
		ws.ranges = par.EvenRangesInto(f, nc, ws.ranges)
	} else {
		ws.xcum = a.CumulativeColWeights(x.Ind, ws.xcum)
		ws.ranges = par.SplitByWeightInto(ws.xcum, nc, ws.ranges)
	}

	// Preprocessing (Algorithm 2, ESTIMATE-BUCKETS): count per
	// (chunk, bucket) insertions.
	estimateBuckets(a, x, ws, ex, t, nc, nb, shift)

	// Two-level exclusive prefix turns counts into private write
	// cursors: bucket-major, chunk-minor, so entries of one bucket are
	// contiguous and each chunk's slice of each bucket is disjoint —
	// the bucket layout is therefore identical no matter which worker
	// executes which chunk.
	var total int64
	for b := 0; b < nb; b++ {
		ws.bucketStart[b] = total
		for c := 0; c < nc; c++ {
			idx := c*nb + b
			cnt := ws.boffset[idx]
			ws.boffset[idx] = total
			total += cnt
		}
	}
	ws.bucketStart[nb] = total
	ws.ensureEntries(total)
	ws.Steps.Estimate = timer.Lap()

	// Step 1: scatter scaled columns into buckets, lock-free.
	if opt.StagingEntries > 0 {
		bucketStepStaged(a, x, sr, ws, ex, t, nc, nb, shift, opt.StagingEntries)
	} else {
		bucketStep(a, x, sr, ws, ex, t, nc, nb, shift)
	}
	ws.Steps.Bucket = timer.Lap()

	// Step 2: merge each bucket independently via the SPA.
	mergeStep(sr, ws, ex, t, nb, opt, mask, maskComplement)
	ws.Steps.Merge = timer.Lap()
	ws.Steps.Sort = 0 // folded into Merge; reported separately only by instrumented runs

	// Step 3: concatenate buckets into y through a prefix sum of unique
	// counts ("using prefix sum on the master thread", Algorithm 1).
	outputStep(y, outBits, ws, ex, t, nb, shift, opt)
	ws.Steps.Output = timer.Lap()
	ws.foldSched(t)
	return outBits != nil
}

// estimateBuckets implements Algorithm 2: each chunk's share of x is
// scanned — by whichever worker claims or steals the chunk — counting
// how many entries of the selected columns fall into each bucket.
func estimateBuckets(a *sparse.CSC, x *sparse.SpVec, ws *Workspace, ex *par.Executor, t, nc, nb int, shift uint) {
	// Zero every chunk's counter row up front: chunks whose x range is
	// empty are never invoked, and a stale count from a previous call
	// would reserve bucket slots that nobody fills.
	clear(ws.boffset[:nc*nb])
	ex.ForChunks(t, nc, nil, func(w, c int) {
		lo, hi := ws.ranges[c][0], ws.ranges[c][1]
		if lo >= hi {
			return
		}
		row := ws.boffset[c*nb : (c+1)*nb]
		ctr := &ws.Counters[w]
		var touched int64
		for k := lo; k < hi; k++ {
			rows, _ := a.Col(x.Ind[k])
			for _, i := range rows {
				row[i>>shift]++
			}
			touched += int64(len(rows))
		}
		ctr.XScanned += int64(hi - lo)
		ctr.MatrixTouched += touched
	}, &ws.sched)
}

// The bucketStep, bucketStepStaged and mergeStep hot loops live in
// kernels.go, monomorphized over the semiring's tagged operations.

// outputStep implements Step 3 of Algorithm 1: per-bucket unique counts
// are prefix-summed on the master thread, then every bucket copies its
// (index, SPA value) pairs to its final offset in y in parallel. When
// outBits is non-nil the same per-bucket pass scatters the bucket's
// entries into the output bitmap — buckets own disjoint row ranges
// [b·2^shift, (b+1)·2^shift), so SetRangeFrom's boundary-word atomics
// make the concurrent fill race-free at any alignment.
func outputStep(y *sparse.SpVec, outBits *sparse.BitVec, ws *Workspace, ex *par.Executor, t, nb int, shift uint, opt Options) {
	var nnzY int64
	for b := 0; b < nb; b++ {
		ws.uindOffset[b] = nnzY
		nnzY += ws.uindCount[b]
	}
	ws.uindOffset[nb] = nnzY

	if int64(cap(y.Ind)) < nnzY {
		y.Ind = make([]sparse.Index, nnzY)
		y.Val = make([]float64, nnzY)
	} else {
		y.Ind = y.Ind[:nnzY]
		y.Val = y.Val[:nnzY]
	}
	// Stealable per-bucket copies with initial shares weighted by each
	// bucket's output count (uindOffset is exactly that cumulative
	// weight array).
	ex.ForChunks(t, nb, ws.uindOffset[:nb+1], func(w, b int) {
		ctr := &ws.Counters[w]
		off := ws.uindOffset[b]
		start := ws.bucketStart[b]
		u := ws.uind[start : start+ws.uindCount[b]]
		for i, ind := range u {
			y.Ind[off+int64(i)] = ind
			y.Val[off+int64(i)] = ws.spaVal[ind]
		}
		if outBits != nil && len(u) > 0 {
			bLo := sparse.Index(b) << shift
			outBits.SetRangeFrom(y.Ind[off:off+int64(len(u))], y.Val[off:off+int64(len(u))],
				bLo, bLo+(sparse.Index(1)<<shift))
		}
		ctr.OutputWritten += int64(len(u))
	}, &ws.sched)
	// Buckets cover increasing row ranges; per-bucket sorted uind makes
	// the concatenation globally sorted.
	y.Sorted = opt.SortOutput
}
