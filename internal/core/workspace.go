package core

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/sparse"
)

// Workspace holds every buffer the SpMSpV-bucket algorithm needs, so
// that repeated multiplications — the common case in iterative graph
// algorithms like BFS — allocate nothing ("we allocate enough memory for
// all buckets and for the SPA in advance and pass them to the
// SpMSpV-bucket algorithm", paper §III-A).
//
// A Workspace may be reused across calls with different matrices,
// vectors, thread counts and options; every buffer grows on demand and
// never shrinks. It must not be shared by concurrent Multiply calls.
type Workspace struct {
	// Per-(chunk,bucket) write cursors: boffset[c·nb+b] is where Step-1
	// chunk c writes its next entry for bucket b (Algorithm 2's Boffset
	// after the prefix-sum pass). Chunks over-decompose the input split
	// ~8 per worker so the executor can steal them; at t = 1 there is
	// exactly one chunk.
	boffset []int64
	// bucketStart[b] is the first entry slot of bucket b; length nb+1.
	bucketStart []int64
	// entries is the bucket storage: bucket b occupies
	// entries[bucketStart[b]:bucketStart[b+1]]. Total size is at most
	// nnz(A) (paper §III-A), reached only when x selects every column.
	entries []sparse.Entry
	// uind stores each bucket's unique indices in the bucket's own slot
	// range (unique count ≤ entry count, so the same offsets fit).
	uind []sparse.Index
	// uindCount[b] / uindOffset[b]: per-bucket unique counts and their
	// exclusive prefix (the Step-3 offsets of Algorithm 1, line 20).
	uindCount  []int64
	uindOffset []int64

	// SPA: values plus epoch tags for O(1) partial initialization. Slot
	// i is live iff spaTag[i] == epoch.
	spaVal []float64
	spaTag []uint32
	epoch  uint32

	// xcum holds cumulative column weights for the nonzero-balanced
	// split; ranges the resulting per-chunk x ranges.
	xcum   []int64
	ranges [][2]int

	// Batched-multiply buffers: the concatenation of the batch's input
	// vectors (batchInd/batchVal) with frontier boundaries batchOff
	// (length k+1), and uval — per-bucket unique values copied out of
	// the SPA at merge time, because successive frontiers of a batch
	// reuse the same SPA row range before the output step runs.
	batchInd []sparse.Index
	batchVal []float64
	batchOff []int64
	uval     []float64

	// staging is the optional per-worker Step-1 staging slab
	// (StagingEntries × nb entries each) with fill counts.
	staging      []sparse.Entry
	stagingCount []int32

	// scratch is per-worker radix-sort scratch for SortOutput.
	scratch [][]sparse.Index

	// sync collects per-worker dynamic-scheduling events before they are
	// merged into Counters.
	sync []int64

	// sched accumulates the executor's per-slot scheduling stats (chunk
	// claims, steals, join-barrier idle time) across the call's parallel
	// regions; foldSched merges them into Counters before retirement.
	sched par.JobStats

	// Counters accumulates per-worker work counters across calls; reset
	// with ResetCounters. Steps holds the per-phase wall-clock times of
	// the most recent call (Fig. 6's breakdown).
	Counters []perf.Counters
	Steps    perf.StepTimes
}

// NewWorkspace returns an empty workspace; buffers are allocated on
// first use. Providing m and nnz capacity hints up front avoids growth
// reallocations during the first call.
func NewWorkspace(m sparse.Index, nnzCap int64) *Workspace {
	ws := &Workspace{}
	if m > 0 {
		ws.spaVal = make([]float64, m)
		ws.spaTag = make([]uint32, m)
	}
	if nnzCap > 0 {
		ws.entries = make([]sparse.Entry, nnzCap)
		ws.uind = make([]sparse.Index, nnzCap)
	}
	return ws
}

// ResetCounters zeroes the accumulated per-worker counters.
func (ws *Workspace) ResetCounters() {
	for i := range ws.Counters {
		ws.Counters[i].Reset()
	}
}

// TotalCounters aggregates the per-worker counters.
func (ws *Workspace) TotalCounters() perf.Counters {
	return perf.MergeAll(ws.Counters)
}

// ensure grows the workspace for an m-row matrix, t workers, nb buckets
// and nc Step-1 chunks.
func (ws *Workspace) ensure(m sparse.Index, t, nb, nc int) {
	if len(ws.spaVal) < int(m) {
		ws.spaVal = make([]float64, m)
		ws.spaTag = make([]uint32, m)
		ws.epoch = 0
	}
	if len(ws.boffset) < nc*nb {
		ws.boffset = make([]int64, nc*nb)
	}
	if len(ws.bucketStart) < nb+1 {
		ws.bucketStart = make([]int64, nb+1)
		ws.uindCount = make([]int64, nb)
		ws.uindOffset = make([]int64, nb+1)
	}
	if len(ws.Counters) < t {
		old := ws.Counters
		ws.Counters = make([]perf.Counters, t)
		copy(ws.Counters, old)
	}
	if len(ws.sync) < t {
		ws.sync = make([]int64, t)
	}
	ws.sched.Ensure(t)
	if len(ws.scratch) < t {
		old := ws.scratch
		ws.scratch = make([][]sparse.Index, t)
		copy(ws.scratch, old)
	}
}

// foldSched merges the executor's accumulated scheduling stats into the
// per-worker counters and clears them for the next call.
func (ws *Workspace) foldSched(t int) {
	for w := 0; w < t && w < len(ws.sched.Claims); w++ {
		ws.Counters[w].ChunkClaims += ws.sched.Claims[w]
		ws.Counters[w].Steals += ws.sched.Steals[w]
		ws.Counters[w].IdleNs += ws.sched.IdleNs[w]
	}
	ws.sched.Reset()
}

// stepChunks returns the Step-1 over-decomposition: ~chunksPerWorker
// chunks per worker so the executor can steal them, clamped to the f
// splittable input nonzeros, and exactly one chunk when t == 1 so the
// serial path carries no scheduling machinery at all.
func stepChunks(t, f int) int {
	if t <= 1 {
		return 1
	}
	nc := t * chunksPerWorker
	if nc > f {
		nc = f
	}
	return nc
}

// chunksPerWorker is the Step-1 over-decomposition factor — the paper
// over-decomposes into buckets at 4-8 per thread for the same reason:
// enough pieces that stealing can rebalance a skewed split, few enough
// that per-chunk cursor rows stay cheap.
const chunksPerWorker = 8

// ensureEntries grows the bucket and uind storage to hold total entries.
func (ws *Workspace) ensureEntries(total int64) {
	if int64(len(ws.entries)) < total {
		ws.entries = make([]sparse.Entry, total)
		ws.uind = make([]sparse.Index, total)
	}
}

// ensureStaging grows the staging slab for t workers × nb buckets × cap
// entries each.
func (ws *Workspace) ensureStaging(t, nb, capEntries int) {
	need := t * nb * capEntries
	if len(ws.staging) < need {
		ws.staging = make([]sparse.Entry, need)
	}
	if len(ws.stagingCount) < t*nb {
		ws.stagingCount = make([]int32, t*nb)
	}
}

// nextEpoch advances the SPA epoch, handling 32-bit wraparound by wiping
// the tags (amortized O(1) per call).
func (ws *Workspace) nextEpoch() uint32 {
	ws.epoch++
	if ws.epoch == 0 {
		for i := range ws.spaTag {
			ws.spaTag[i] = 0
		}
		ws.epoch = 1
	}
	return ws.epoch
}

// epochBlock reserves k consecutive SPA epochs (one per frontier of a
// batch) and returns the first, wiping the tags on 32-bit wraparound
// exactly as nextEpoch does.
func (ws *Workspace) epochBlock(k uint32) uint32 {
	if ws.epoch > ^uint32(0)-k {
		for i := range ws.spaTag {
			ws.spaTag[i] = 0
		}
		ws.epoch = 0
	}
	base := ws.epoch + 1
	ws.epoch += k
	return base
}

// ensureBatch grows the batch concatenation buffers for totalF entries
// across k frontiers, and the unique-value buffer alongside uind.
func (ws *Workspace) ensureBatch(totalF int64, k int) {
	if int64(cap(ws.batchInd)) < totalF {
		ws.batchInd = make([]sparse.Index, totalF)
		ws.batchVal = make([]float64, totalF)
	}
	if len(ws.batchOff) < k+1 {
		ws.batchOff = make([]int64, k+1)
	}
}

// ensureUval grows the per-bucket unique-value buffer to match the
// entry storage (unique count ≤ entry count, so the same offsets fit).
func (ws *Workspace) ensureUval(total int64) {
	if int64(len(ws.uval)) < total {
		ws.uval = make([]float64, total)
	}
}
