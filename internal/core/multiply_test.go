package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spmspv/internal/baselines"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// paperMatrix reconstructs the 8×8 worked example of the paper's
// Fig. 1. Letters a..t map to values 1..20:
//
//	col0: a(1), b(3), c(7)        col4: l(1), m(3), n(6), o(7)
//	col1: d(0)                    col5: p(2), q(4)
//	col2: e(0), f(3), g(5), h(6)  col6: r(1)
//	col3: i(0), j(6), k(7)        col7: s(0), t(4)
func paperMatrix(t *testing.T) *sparse.CSC {
	t.Helper()
	tr := sparse.NewTriples(8, 8, 20)
	entries := []struct {
		row, col sparse.Index
		letter   float64
	}{
		{1, 0, 1}, {3, 0, 2}, {7, 0, 3}, // a b c
		{0, 1, 4},                                  // d
		{0, 2, 5}, {3, 2, 6}, {5, 2, 7}, {6, 2, 8}, // e f g h
		{0, 3, 9}, {6, 3, 10}, {7, 3, 11}, // i j k
		{1, 4, 12}, {3, 4, 13}, {6, 4, 14}, {7, 4, 15}, // l m n o
		{2, 5, 16}, {4, 5, 17}, // p q
		{1, 6, 18},             // r
		{0, 7, 19}, {4, 7, 20}, // s t
	}
	for _, e := range entries {
		tr.Append(e.row, e.col, e.letter)
	}
	a, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatalf("building Fig. 1 matrix: %v", err)
	}
	return a
}

// optionMatrix enumerates the algorithm variants every correctness test
// should cover.
func optionMatrix() map[string]Options {
	return map[string]Options{
		"default":        {Threads: 4},
		"sorted":         {Threads: 4, SortOutput: true},
		"1thread":        {Threads: 1, SortOutput: true},
		"manybuckets":    {Threads: 4, BucketsPerThread: 8, SortOutput: true},
		"onebucket":      {Threads: 1, BucketsPerThread: 1, SortOutput: true},
		"sentinel":       {Threads: 4, UseInfSentinel: true, SortOutput: true},
		"staged":         {Threads: 4, StagingEntries: 4, SortOutput: true},
		"static":         {Threads: 4, MergeSched: SchedStatic, SortOutput: true},
		"stealing":       {Threads: 4, MergeSched: SchedStealing, SortOutput: true},
		"evensplit":      {Threads: 4, SplitEvenly: true, SortOutput: true},
		"morethreads":    {Threads: 16, SortOutput: true},
		"stagedbig":      {Threads: 3, StagingEntries: 64, SortOutput: true},
		"combo-faithful": {Threads: 4, UseInfSentinel: true, StagingEntries: 8, SplitEvenly: true, SortOutput: true},
	}
}

func TestPaperWorkedExample(t *testing.T) {
	a := paperMatrix(t)
	// x has nonzeros at indices 2, 5, 7 as in Fig. 1.
	x := sparse.NewSpVec(8, 3)
	x.Append(2, 2)
	x.Append(5, 3)
	x.Append(7, 5)

	// y[0] = e·x2 + s·x7, y[2] = p·x5, y[3] = f·x2,
	// y[4] = q·x5 + t·x7, y[5] = g·x2, y[6] = h·x2.
	wantInd := []sparse.Index{0, 2, 3, 4, 5, 6}
	wantVal := []float64{5*2 + 19*5, 16 * 3, 6 * 2, 17*3 + 20*5, 7 * 2, 8 * 2}

	for name, opt := range optionMatrix() {
		opt := opt
		opt.SortOutput = true
		t.Run(name, func(t *testing.T) {
			ws := NewWorkspace(8, 0)
			y := sparse.NewSpVec(8, 0)
			Multiply(a, x, y, semiring.Arithmetic, ws, opt)
			if y.NNZ() != len(wantInd) {
				t.Fatalf("nnz(y) = %d, want %d (y=%v %v)", y.NNZ(), len(wantInd), y.Ind, y.Val)
			}
			for k := range wantInd {
				if y.Ind[k] != wantInd[k] || y.Val[k] != wantVal[k] {
					t.Errorf("y[%d] = (%d, %g), want (%d, %g)", k, y.Ind[k], y.Val[k], wantInd[k], wantVal[k])
				}
			}
		})
	}
}

func TestMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		m, n sparse.Index
		d    float64
	}{
		{1, 1, 1},
		{17, 31, 2.5},
		{100, 100, 4},
		{1000, 1000, 8},
		{64, 4096, 1.5}, // wide
		{4096, 64, 30},  // tall
	}
	for _, sh := range shapes {
		a := testutil.RandomCSC(rng, sh.m, sh.n, sh.d)
		for _, f := range []int{0, 1, 2, int(sh.n) / 3, int(sh.n)} {
			x := testutil.RandomVector(rng, sh.n, f, false)
			want := baselines.Reference(a, x, semiring.Arithmetic)
			for name, opt := range optionMatrix() {
				ws := NewWorkspace(0, 0)
				y := sparse.NewSpVec(0, 0)
				Multiply(a, x, y, semiring.Arithmetic, ws, opt)
				if !y.EqualValues(want, 1e-9) {
					t.Fatalf("%s: %dx%d d=%g f=%d: mismatch vs reference", name, sh.m, sh.n, sh.d, f)
				}
				if opt.SortOutput {
					if err := y.Validate(); err != nil {
						t.Fatalf("%s: sorted output invalid: %v", name, err)
					}
				}
			}
		}
	}
}

func TestSemirings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := testutil.RandomCSC(rng, 300, 300, 5)
	x := testutil.RandomVector(rng, 300, 40, true)
	rings := []semiring.Semiring{
		semiring.Arithmetic,
		semiring.MinPlus,
		semiring.MaxPlus,
		semiring.BoolOrAnd,
		semiring.MinSelect2nd,
		semiring.MaxSelect2nd,
		semiring.MinSelect1st,
	}
	for _, sr := range rings {
		want := baselines.Reference(a, x, sr)
		ws := NewWorkspace(300, 0)
		y := sparse.NewSpVec(0, 0)
		// Epoch merge handles the ±Inf identities of min/max semirings;
		// the ∞-sentinel variant cannot (documented paper fidelity
		// limitation), so only the default merge is exercised here.
		Multiply(a, x, y, sr, ws, Options{Threads: 4, SortOutput: true})
		if !y.EqualValues(want, 0) {
			t.Errorf("%s: mismatch vs reference", sr.Name)
		}
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	ws := NewWorkspace(0, 0)
	y := sparse.NewSpVec(0, 0)

	// Empty x.
	a := paperMatrix(t)
	x := sparse.NewSpVec(8, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{})
	if y.NNZ() != 0 || y.N != 8 {
		t.Errorf("empty x: got nnz=%d n=%d", y.NNZ(), y.N)
	}

	// x selecting only empty columns of a matrix with empty columns.
	tr := sparse.NewTriples(4, 4, 1)
	tr.Append(2, 1, 5)
	sparseA, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	x = testutil.VectorWithIndices(4, 0, 3)
	Multiply(sparseA, x, y, semiring.Arithmetic, ws, Options{Threads: 8})
	if y.NNZ() != 0 {
		t.Errorf("empty-column selection: got nnz=%d, want 0", y.NNZ())
	}

	// Duplicate indices in x accumulate.
	x = sparse.NewSpVec(8, 2)
	x.Append(2, 1)
	x.Append(2, 2)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: 2, SortOutput: true})
	want := baselines.Reference(a, x, semiring.Arithmetic)
	if !y.EqualValues(want, 1e-12) {
		t.Errorf("duplicate x indices: mismatch vs reference")
	}

	// Single row matrix: all entries land in one bucket.
	tr = sparse.NewTriples(1, 5, 5)
	for j := sparse.Index(0); j < 5; j++ {
		tr.Append(0, j, float64(j+1))
	}
	rowA, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	x = testutil.VectorWithIndices(5, 0, 2, 4)
	Multiply(rowA, x, y, semiring.Arithmetic, ws, Options{Threads: 4})
	if y.NNZ() != 1 || y.Ind[0] != 0 || y.Val[0] != 1+3+5 {
		t.Errorf("single-row: got %v %v", y.Ind, y.Val)
	}
}

func TestWorkspaceReuseAcrossMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := NewWorkspace(0, 0)
	y := sparse.NewSpVec(0, 0)
	// Reuse one workspace across matrices of different shapes and
	// thread counts; results must stay correct.
	for trial := 0; trial < 20; trial++ {
		m := sparse.Index(rng.Intn(500) + 1)
		n := sparse.Index(rng.Intn(500) + 1)
		a := testutil.RandomCSC(rng, m, n, 3)
		x := testutil.RandomVector(rng, n, rng.Intn(int(n)), false)
		opt := Options{Threads: rng.Intn(8) + 1, SortOutput: true}
		Multiply(a, x, y, semiring.Arithmetic, ws, opt)
		want := baselines.Reference(a, x, semiring.Arithmetic)
		if !y.EqualValues(want, 1e-9) {
			t.Fatalf("trial %d (%dx%d): workspace reuse broke correctness", trial, m, n)
		}
	}
}

func TestWorkspaceReuseWithSkewedSplits(t *testing.T) {
	// Regression test: SplitByWeight can hand some workers an empty x
	// range; those workers' Boffset rows were once left stale from the
	// previous call, leaking garbage bucket entries into the next
	// output. The trigger is a call with large per-worker counts
	// followed by a call whose weight distribution leaves workers idle.
	rng := rand.New(rand.NewSource(77))
	a := testutil.RandomCSC(rng, 2000, 2000, 6)
	ws := NewWorkspace(0, 0)
	y := sparse.NewSpVec(0, 0)
	opt := Options{Threads: 4, SortOutput: true}

	// Call 1: dense frontier fills many buckets with large counts.
	dense := testutil.RandomVector(rng, 2000, 1500, true)
	Multiply(a, dense, y, semiring.Arithmetic, ws, opt)

	// Call 2: tiny, weight-skewed frontier (fewer nonzeros than
	// threads, so ranges are empty for some workers).
	tiny := testutil.VectorWithIndices(2000, 3, 700, 1500)
	Multiply(a, tiny, y, semiring.Arithmetic, ws, opt)
	want := baselines.Reference(a, tiny, semiring.Arithmetic)
	if !y.EqualValues(want, 1e-9) {
		t.Fatal("stale Boffset rows leaked entries from the previous call")
	}

	// And strict determinism across repeated alternation.
	first := y.Clone()
	for i := 0; i < 5; i++ {
		Multiply(a, dense, y, semiring.Arithmetic, ws, opt)
		Multiply(a, tiny, y, semiring.Arithmetic, ws, opt)
		if !y.EqualValues(first, 0) {
			t.Fatalf("iteration %d: reuse not deterministic", i)
		}
	}
}

func TestMaskedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := testutil.RandomCSC(rng, 400, 400, 6)
	x := testutil.RandomVector(rng, 400, 80, true)
	// Mask admits even indices.
	maskVec := sparse.NewSpVec(400, 200)
	for i := sparse.Index(0); i < 400; i += 2 {
		maskVec.Append(i, 1)
	}
	mask := sparse.NewBitVec(400)
	mask.SetFrom(maskVec)

	full := baselines.Reference(a, x, semiring.Arithmetic)
	for _, complement := range []bool{false, true} {
		// Post-filtered expectation.
		want := sparse.NewSpVec(400, 0)
		for k, i := range full.Ind {
			keep := i%2 == 0
			if complement {
				keep = !keep
			}
			if keep {
				want.Append(i, full.Val[k])
			}
		}
		ws := NewWorkspace(400, 0)
		y := sparse.NewSpVec(0, 0)
		MultiplyMasked(a, x, y, semiring.Arithmetic, mask, complement, ws, Options{Threads: 4, SortOutput: true})
		if !y.EqualValues(want, 1e-9) {
			t.Errorf("complement=%v: masked multiply != post-filtered multiply", complement)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := testutil.RandomCSC(rng, 256, 256, 4)
	ws := NewWorkspace(256, 0)
	opt := Options{Threads: 4, SortOutput: true}

	// A(x + z) == Ax + Az over the arithmetic semiring.
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := testutil.RandomVector(r, 256, r.Intn(256), true)
		z := testutil.RandomVector(r, 256, r.Intn(256), true)

		sum := sparse.NewSpVec(256, x.NNZ()+z.NNZ())
		for k, i := range x.Ind {
			sum.Append(i, x.Val[k])
		}
		for k, i := range z.Ind {
			sum.Append(i, z.Val[k])
		}

		yx := sparse.NewSpVec(0, 0)
		yz := sparse.NewSpVec(0, 0)
		ysum := sparse.NewSpVec(0, 0)
		Multiply(a, x, yx, semiring.Arithmetic, ws, opt)
		Multiply(a, z, yz, semiring.Arithmetic, ws, opt)
		Multiply(a, sum, ysum, semiring.Arithmetic, ws, opt)

		lhs := ysum.ToDense()
		rhs := yx.ToDense()
		for k, i := range yz.Ind {
			rhs[i] += yz.Val[k]
		}
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPermutationEquivariance(t *testing.T) {
	// Relabeling rows of A permutes y identically: P·(A x) == (P·A) x.
	rng := rand.New(rand.NewSource(17))
	m, n := sparse.Index(128), sparse.Index(96)
	a := testutil.RandomCSC(rng, m, n, 3)
	perm := rng.Perm(int(m))

	tr := sparse.NewTriples(m, n, int(a.NNZ()))
	for j := sparse.Index(0); j < n; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			tr.Append(sparse.Index(perm[i]), j, vals[k])
		}
	}
	pa, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}

	x := testutil.RandomVector(rng, n, 30, true)
	ws := NewWorkspace(m, 0)
	y := sparse.NewSpVec(0, 0)
	py := sparse.NewSpVec(0, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: 4, SortOutput: true})
	Multiply(pa, x, py, semiring.Arithmetic, ws, Options{Threads: 4, SortOutput: true})

	want := sparse.NewSpVec(m, y.NNZ())
	for k, i := range y.Ind {
		want.Append(sparse.Index(perm[i]), y.Val[k])
	}
	if !py.EqualValues(want, 1e-12) {
		t.Error("permuting matrix rows did not permute the output identically")
	}
}

func TestStepTimesPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := testutil.RandomCSC(rng, 5000, 5000, 8)
	x := testutil.RandomVector(rng, 5000, 2000, true)
	ws := NewWorkspace(5000, 0)
	y := sparse.NewSpVec(0, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: 2, SortOutput: true})
	if ws.Steps.Total() <= 0 {
		t.Errorf("step times not recorded: %+v", ws.Steps)
	}
	if ws.Steps.Estimate <= 0 || ws.Steps.Merge <= 0 {
		t.Errorf("individual steps not recorded: %+v", ws.Steps)
	}
}

func TestCountersWorkEfficiency(t *testing.T) {
	// The defining property of the paper: total work of the bucket
	// algorithm is independent of thread count (within rounding), while
	// the input-scan work of CombBLAS-SPA grows linearly with t.
	rng := rand.New(rand.NewSource(29))
	a := testutil.RandomCSC(rng, 20000, 20000, 8)
	x := testutil.RandomVector(rng, 20000, 500, true)

	work := make(map[int]int64)
	for _, threads := range []int{1, 2, 4, 8} {
		ws := NewWorkspace(0, 0)
		y := sparse.NewSpVec(0, 0)
		Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: threads})
		c := ws.TotalCounters()
		work[threads] = c.XScanned + c.MatrixTouched + c.SPAInit + c.SPAUpdates + c.BucketWrites
	}
	base := work[1]
	for threads, w := range work {
		// Allow 5% slack for bucket-count-dependent rounding.
		if float64(w) > 1.05*float64(base) {
			t.Errorf("t=%d: total work %d exceeds 1.05× single-thread work %d — not work-efficient",
				threads, w, base)
		}
	}
}
