package core

import (
	"testing"

	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Threads < 1 {
		t.Errorf("default threads %d", o.Threads)
	}
	if o.BucketsPerThread != 4 {
		t.Errorf("default buckets/thread = %d, want 4 (paper §III-A)", o.BucketsPerThread)
	}
	o = Options{Threads: 3, BucketsPerThread: 7}.WithDefaults()
	if o.Threads != 3 || o.BucketsPerThread != 7 {
		t.Error("explicit options overridden")
	}
}

func TestThreadClampToNNZX(t *testing.T) {
	// The paper's analysis assumes t ≤ f; with f=2 and 16 requested
	// threads the multiply must still be correct and the per-worker
	// counters beyond the effective t stay untouched.
	rng := newRand(5)
	a := testutil.RandomCSC(rng, 300, 300, 4)
	x := testutil.VectorWithIndices(300, 10, 200)
	ws := NewWorkspace(0, 0)
	y := sparse.NewSpVec(0, 0)
	Multiply(a, x, y, semiring.Arithmetic, ws, Options{Threads: 16, SortOutput: true})
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	// Only workers 0 and 1 can have estimate/bucket work.
	for w := 2; w < len(ws.Counters); w++ {
		if ws.Counters[w].XScanned != 0 {
			t.Errorf("worker %d scanned x despite f=2", w)
		}
	}
}

func TestBucketCountNeverExceedsRequested(t *testing.T) {
	// The shift-rounded bucket count must stay within the requested
	// nb = BucketsPerThread·t (the paper's 4t) for a spread of shapes.
	for _, m := range []sparse.Index{1, 2, 5, 63, 64, 65, 1000, 16384, 100000} {
		for _, nbReq := range []int{1, 4, 16, 64} {
			shift := uint(0)
			for int64(m) > int64(nbReq)<<shift {
				shift++
			}
			nb := int((int64(m) + (int64(1) << shift) - 1) >> shift)
			if nb < 1 {
				nb = 1
			}
			if nb > nbReq && m > sparse.Index(nbReq) {
				t.Errorf("m=%d req=%d: nb=%d exceeds request", m, nbReq, nb)
			}
			// Mapping must cover exactly [0, nb).
			maxBucket := int((m - 1) >> shift)
			if m > 0 && maxBucket != nb-1 {
				t.Errorf("m=%d req=%d: max bucket %d != nb-1=%d", m, nbReq, maxBucket, nb-1)
			}
		}
	}
}

func TestSortedInputUnsortedInputSameResult(t *testing.T) {
	rng := newRand(7)
	a := testutil.RandomCSC(rng, 500, 500, 6)
	xs := testutil.RandomVector(rng, 500, 120, true)
	xu := xs.Clone()
	// Reverse the order of entries.
	for i, j := 0, xu.NNZ()-1; i < j; i, j = i+1, j-1 {
		xu.Ind[i], xu.Ind[j] = xu.Ind[j], xu.Ind[i]
		xu.Val[i], xu.Val[j] = xu.Val[j], xu.Val[i]
	}
	xu.Sorted = false

	ws := NewWorkspace(0, 0)
	ys := sparse.NewSpVec(0, 0)
	yu := sparse.NewSpVec(0, 0)
	Multiply(a, xs, ys, semiring.Arithmetic, ws, Options{Threads: 4, SortOutput: true})
	Multiply(a, xu, yu, semiring.Arithmetic, ws, Options{Threads: 4, SortOutput: true})
	if !ys.EqualValues(yu, 1e-12) {
		t.Error("input order changed the result")
	}
	// With SortOutput both outputs are identical element-wise.
	for k := range ys.Ind {
		if ys.Ind[k] != yu.Ind[k] {
			t.Fatal("sorted outputs differ in order")
		}
	}
}

func TestMultiplierAccessors(t *testing.T) {
	rng := newRand(9)
	a := testutil.RandomCSC(rng, 100, 100, 3)
	mu := NewMultiplier(a, Options{Threads: 2})
	if mu.Name() != "SpMSpV-bucket" {
		t.Error("name")
	}
	x := testutil.VectorWithIndices(100, 5)
	y := sparse.NewSpVec(0, 0)
	mu.Multiply(x, y, semiring.Arithmetic)
	if mu.Counters().Work() == 0 {
		t.Error("no work accumulated")
	}
	if mu.Steps().Total() < 0 {
		t.Error("negative step times")
	}
	mu.ResetCounters()
	if mu.Counters().Work() != 0 {
		t.Error("reset failed")
	}
}
