package semiring

import "testing"

// TestPredefinedSemiringsAreTagged guards the specialized-dispatch
// contract: every predefined semiring must carry non-custom op tags
// (otherwise the engines silently fall back to the func path), and the
// tag must agree with what the func actually computes.
func TestPredefinedSemiringsAreTagged(t *testing.T) {
	cases := []struct {
		sr  Semiring
		add AddOp
		mul MulOp
	}{
		{Arithmetic, AddPlus, MulTimes},
		{MinPlus, AddMin, MulPlus},
		{MaxPlus, AddMax, MulPlus},
		{BoolOrAnd, AddOr, MulAnd},
		{MinSelect2nd, AddMin, MulSelect2nd},
		{MaxSelect2nd, AddMax, MulSelect2nd},
		{MinSelect1st, AddMin, MulSelect1st},
	}
	for _, c := range cases {
		if c.sr.AddKind != c.add || c.sr.MulKind != c.mul {
			t.Errorf("%s: tags (%d,%d), want (%d,%d)",
				c.sr.Name, c.sr.AddKind, c.sr.MulKind, c.add, c.mul)
		}
	}

	// The tagged semantics must match the func fields on a value matrix.
	vals := []float64{-2, 0, 1, 3.5}
	for _, c := range cases {
		for _, a := range vals {
			for _, b := range vals {
				var wantAdd float64
				switch c.add {
				case AddPlus:
					wantAdd = a + b
				case AddMin:
					if a < b {
						wantAdd = a
					} else {
						wantAdd = b
					}
				case AddMax:
					if a > b {
						wantAdd = a
					} else {
						wantAdd = b
					}
				case AddOr:
					if a != 0 || b != 0 {
						wantAdd = 1
					}
				}
				if got := c.sr.Add(a, b); got != wantAdd {
					t.Errorf("%s: Add(%v,%v) = %v, tag %d implies %v",
						c.sr.Name, a, b, got, c.add, wantAdd)
				}
				var wantMul float64
				switch c.mul {
				case MulTimes:
					wantMul = a * b
				case MulPlus:
					wantMul = a + b
				case MulSelect2nd:
					wantMul = b
				case MulSelect1st:
					wantMul = a
				case MulAnd:
					if a != 0 && b != 0 {
						wantMul = 1
					}
				}
				if got := c.sr.Mul(a, b); got != wantMul {
					t.Errorf("%s: Mul(%v,%v) = %v, tag %d implies %v",
						c.sr.Name, a, b, got, c.mul, wantMul)
				}
			}
		}
	}

	var custom Semiring
	if custom.AddKind != AddCustom || custom.MulKind != MulCustom {
		t.Error("zero-value semiring must be tagged custom")
	}
	if custom.IsArithmetic() {
		t.Error("zero-value semiring must not claim the arithmetic fast path")
	}
}
