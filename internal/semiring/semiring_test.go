package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func all() []Semiring {
	return []Semiring{
		Arithmetic, MinPlus, MaxPlus, BoolOrAnd,
		MinSelect2nd, MaxSelect2nd, MinSelect1st,
	}
}

// sample draws a value from the semiring's natural domain.
func sample(sr Semiring, r *rand.Rand) float64 {
	if sr.Name == BoolOrAnd.Name {
		return float64(r.Intn(2))
	}
	return r.NormFloat64()
}

func TestZeroIsAdditiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sr := range all() {
		for trial := 0; trial < 100; trial++ {
			v := sample(sr, rng)
			if got := sr.Add(sr.Zero, v); got != v {
				t.Errorf("%s: Add(zero, %g) = %g", sr.Name, v, got)
			}
			if got := sr.Add(v, sr.Zero); got != v {
				t.Errorf("%s: Add(%g, zero) = %g", sr.Name, v, got)
			}
		}
	}
}

func TestAddAssociativeCommutative(t *testing.T) {
	for _, sr := range all() {
		sr := sr
		property := func(a, b, c float64) bool {
			if sr.Name == BoolOrAnd.Name {
				a, b, c = boolify(a), boolify(b), boolify(c)
			}
			if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
				return true
			}
			lhs := sr.Add(sr.Add(a, b), c)
			rhs := sr.Add(a, sr.Add(b, c))
			// Floating-point addition is not exactly associative; allow
			// relative tolerance for the arithmetic semiring.
			if !close(lhs, rhs) {
				return false
			}
			return close(sr.Add(a, b), sr.Add(b, a))
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", sr.Name, err)
		}
	}
}

func boolify(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestArithmeticFlag(t *testing.T) {
	if !Arithmetic.IsArithmetic() {
		t.Error("Arithmetic not flagged")
	}
	for _, sr := range all()[1:] {
		if sr.IsArithmetic() {
			t.Errorf("%s wrongly flagged arithmetic", sr.Name)
		}
	}
}

func TestSelectSemantics(t *testing.T) {
	if got := MinSelect2nd.Mul(99, 7); got != 7 {
		t.Errorf("select2nd took first arg: %g", got)
	}
	if got := MinSelect1st.Mul(99, 7); got != 99 {
		t.Errorf("select1st took second arg: %g", got)
	}
	if got := MinPlus.Mul(2, 3); got != 5 {
		t.Errorf("min-plus mul: %g", got)
	}
	if got := MinPlus.Add(2, 3); got != 2 {
		t.Errorf("min-plus add: %g", got)
	}
	if got := MaxPlus.Add(2, 3); got != 3 {
		t.Errorf("max-plus add: %g", got)
	}
}

func TestBooleanSemiring(t *testing.T) {
	cases := []struct{ a, b, or, and float64 }{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 1, 1},
		{2, 3, 1, 1}, // any nonzero is true
	}
	for _, c := range cases {
		if got := BoolOrAnd.Add(c.a, c.b); got != c.or {
			t.Errorf("or(%g,%g) = %g, want %g", c.a, c.b, got, c.or)
		}
		if got := BoolOrAnd.Mul(c.a, c.b); got != c.and {
			t.Errorf("and(%g,%g) = %g, want %g", c.a, c.b, got, c.and)
		}
	}
}
