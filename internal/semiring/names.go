package semiring

import "strings"

// The name table maps wire/CLI names to the predefined semirings. It is
// the single source of truth for every place a semiring is named rather
// than passed as a value: the spmspv CLI's -semiring flag, the
// descriptor's Semiring field, and the network request contract — a
// semiring is two function values, which do not serialize, so the wire
// speaks names and ByName is the decoder.
var named = []struct {
	alias string
	sr    Semiring
}{
	{"arithmetic", Arithmetic},
	{"minplus", MinPlus},
	{"maxplus", MaxPlus},
	{"boolean", BoolOrAnd},
	{"bfs", MinSelect2nd},
	{"maxselect2nd", MaxSelect2nd},
	{"minselect1st", MinSelect1st},
}

// ByName resolves a semiring name — a short alias ("arithmetic",
// "minplus", "maxplus", "boolean", "bfs", ...) or a predefined
// semiring's canonical Name ("tropical(min,+)"), matched
// case-insensitively — to its Semiring. Unknown names return
// (Semiring{}, false).
func ByName(name string) (Semiring, bool) {
	for _, e := range named {
		if strings.EqualFold(e.alias, name) || strings.EqualFold(e.sr.Name, name) {
			return e.sr, true
		}
	}
	return Semiring{}, false
}

// Names returns every short alias ByName accepts, in table order — the
// list CLIs print in their -semiring help.
func Names() []string {
	names := make([]string, len(named))
	for i, e := range named {
		names[i] = e.alias
	}
	return names
}
