// Package semiring defines the GraphBLAS-style algebraic semirings over
// which SpMSpV is computed.
//
// The paper presents SpMSpV with generic ADD and MULT operations (lines 7
// and 18 of Algorithm 1) because the GraphBLAS standard — for which
// SpMSpV is a core primitive — parameterizes the multiplication by a
// semiring. Graph algorithms pick semirings: BFS uses (min, select2nd),
// shortest paths use (min, +), plain linear algebra uses (+, ×).
//
// Values are float64 throughout; vertex identifiers stored in values are
// exact up to 2^53, far beyond the int32 index space of the matrices.
package semiring

import "math"

// Semiring bundles the additive and multiplicative operations of a
// GraphBLAS semiring together with the additive identity.
//
// The AddKind/MulKind tags classify the operations so hot loops can run
// a specialized kernel with no per-nonzero function-pointer calls (see
// ops.go). When a kernel recognizes a tag, the TAG wins and the func
// field is never called — a semiring whose tag and func disagree will
// compute different results in specialized and unspecialized engines.
// Set a non-custom tag only when the func computes exactly that
// operation; user-constructed semirings should leave the tags zero
// (AddCustom/MulCustom), which routes every engine through the func
// path.
type Semiring struct {
	// Name identifies the semiring in logs and tables.
	Name string
	// Zero is the additive identity: Add(Zero, v) == v for all v in the
	// semiring's domain. It is the initial value of a SPA slot.
	Zero float64
	// Add combines two partial results for the same output index.
	Add func(a, b float64) float64
	// Mul combines a matrix entry with an input-vector entry:
	// Mul(A(i,j), x(j)).
	Mul func(a, b float64) float64
	// AddKind tags Add for specialized dispatch; AddCustom means "only
	// the func is known".
	AddKind AddOp
	// MulKind tags Mul for specialized dispatch; MulCustom means "only
	// the func is known".
	MulKind MulOp
}

// IsArithmetic reports whether s is the standard (+, ×) semiring over
// float64, enabling specialized inner loops.
func (s Semiring) IsArithmetic() bool {
	return s.AddKind == AddPlus && s.MulKind == MulTimes
}

// Arithmetic is the standard (+, ×) semiring: ordinary sparse
// matrix-vector multiplication.
var Arithmetic = Semiring{
	Name:    "arithmetic(+,*)",
	Zero:    0,
	Add:     func(a, b float64) float64 { return a + b },
	Mul:     func(a, b float64) float64 { return a * b },
	AddKind: AddPlus,
	MulKind: MulTimes,
}

// MinPlus is the tropical semiring (min, +): one relaxation step of
// single-source shortest paths per SpMSpV.
var MinPlus = Semiring{
	Name:    "tropical(min,+)",
	Zero:    inf,
	Add:     minf,
	Mul:     func(a, b float64) float64 { return a + b },
	AddKind: AddMin,
	MulKind: MulPlus,
}

// MaxPlus is the (max, +) semiring, used e.g. for critical-path lengths.
var MaxPlus = Semiring{
	Name:    "maxplus(max,+)",
	Zero:    -inf,
	Add:     maxf,
	Mul:     func(a, b float64) float64 { return a + b },
	AddKind: AddMax,
	MulKind: MulPlus,
}

// BoolOrAnd is the boolean semiring (∨, ∧) embedded in float64 with 0 =
// false and nonzero = true: reachability without parent information.
var BoolOrAnd = Semiring{
	Name: "boolean(or,and)",
	Zero: 0,
	Add: func(a, b float64) float64 {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	},
	Mul: func(a, b float64) float64 {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	},
	AddKind: AddOr,
	MulKind: MulAnd,
}

// MinSelect2nd is the (min, select2nd) semiring: Mul ignores the matrix
// value and propagates the input-vector value. With x(j) holding the
// vertex id j, y = A·x computes for every discovered vertex the minimum
// parent id — the BFS frontier-expansion semiring of the paper's §I.
var MinSelect2nd = Semiring{
	Name:    "bfs(min,select2nd)",
	Zero:    inf,
	Add:     minf,
	Mul:     func(_, b float64) float64 { return b },
	AddKind: AddMin,
	MulKind: MulSelect2nd,
}

// MaxSelect2nd is (max, select2nd); used by label-propagation variants
// that keep the largest label.
var MaxSelect2nd = Semiring{
	Name:    "(max,select2nd)",
	Zero:    -inf,
	Add:     maxf,
	Mul:     func(_, b float64) float64 { return b },
	AddKind: AddMax,
	MulKind: MulSelect2nd,
}

// MinSelect1st is (min, select1st): Mul propagates the matrix value,
// ignoring x. Used to pull edge attributes of the frontier's incident
// edges.
var MinSelect1st = Semiring{
	Name:    "(min,select1st)",
	Zero:    inf,
	Add:     minf,
	Mul:     func(a, _ float64) float64 { return a },
	AddKind: AddMin,
	MulKind: MulSelect1st,
}

var inf = math.Inf(1)

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
