package semiring

// Operation tags for specialized kernel dispatch.
//
// The hot loops of every SpMSpV engine apply Add and Mul once per
// matrix nonzero. Calling through the Semiring's func fields costs an
// indirect call per nonzero — measurable on the bucket and merge inner
// loops. The enum tags below let a kernel dispatch ONCE per multiply to
// a loop specialized for the operation, with the combine inlined as a
// plain expression (see internal/core's kernels). The func-valued path
// remains as the fallback for user-defined semirings
// (AddCustom/MulCustom), which pay exactly the indirect-call cost every
// semiring paid before specialization.
//
// (The kernels are specialized by hand rather than written once as a
// generic function parameterized by an operation type: gc does not
// devirtualize dictionary-based method calls inside non-inlined generic
// instantiations, so a generic-over-op loop would still perform an
// indirect call per nonzero.)

// AddOp tags the additive operation of a semiring.
type AddOp uint8

const (
	// AddCustom marks a user-defined Add; kernels fall back to calling
	// the Add func field.
	AddCustom AddOp = iota
	// AddPlus is arithmetic +.
	AddPlus
	// AddMin is min(a, b).
	AddMin
	// AddMax is max(a, b).
	AddMax
	// AddOr is boolean ∨ over the 0/nonzero embedding.
	AddOr
)

// MulOp tags the multiplicative operation of a semiring.
type MulOp uint8

const (
	// MulCustom marks a user-defined Mul; kernels fall back to calling
	// the Mul func field.
	MulCustom MulOp = iota
	// MulTimes is arithmetic ×.
	MulTimes
	// MulPlus is arithmetic + (the tropical semirings' Mul).
	MulPlus
	// MulSelect2nd returns the second operand (the x value).
	MulSelect2nd
	// MulSelect1st returns the first operand (the matrix value).
	MulSelect1st
	// MulAnd is boolean ∧ over the 0/nonzero embedding.
	MulAnd
)
