package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a Matrix Market coordinate file — the format
// the University of Florida collection (paper Table IV) distributes —
// into a triple list. Supported qualifiers: real/integer/pattern and
// general/symmetric. Pattern entries get value 1; symmetric files are
// expanded to both triangles.
func ReadMatrixMarket(r io.Reader) (*Triples, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" {
		return nil, fmt.Errorf("mmio: bad banner %q", sc.Text())
	}
	if banner[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported format %q (only coordinate)", banner[2])
	}
	field, symmetry := banner[3], banner[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read size line.
	var m, n int64
	var nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("mmio: bad size line %q", line)
		}
		var err error
		if m, err = strconv.ParseInt(f[0], 10, 32); err != nil {
			return nil, fmt.Errorf("mmio: bad row count: %w", err)
		}
		if n, err = strconv.ParseInt(f[1], 10, 32); err != nil {
			return nil, fmt.Errorf("mmio: bad col count: %w", err)
		}
		if nnz, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return nil, fmt.Errorf("mmio: bad nnz count: %w", err)
		}
		break
	}

	t := NewTriples(Index(m), Index(n), int(nnz))
	read := int64(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("mmio: bad entry line %q", line)
		}
		i, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index: %w", err)
		}
		j, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad col index: %w", err)
		}
		v := 1.0
		if field != "pattern" {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("mmio: bad value: %w", err)
			}
		}
		if i < 1 || i > m || j < 1 || j > n {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %d×%d", i, j, m, n)
		}
		// Matrix Market is 1-based.
		if symmetry == "symmetric" {
			t.AppendSymmetric(Index(i-1), Index(j-1), v)
		} else {
			t.Append(Index(i-1), Index(j-1), v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("mmio: header promised %d entries, found %d", nnz, read)
	}
	return t, nil
}

// WriteMatrixMarket writes a CSC matrix as a general real coordinate
// Matrix Market file (1-based indices).
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		a.NumRows, a.NumCols, a.NNZ()); err != nil {
		return err
	}
	for j := Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadVector parses a sparse vector in a simple "index value" per line
// text format with a leading "n nnz" header (0-based indices).
func ReadVector(r io.Reader) (*SpVec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var v *SpVec
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if v == nil {
			if len(f) != 2 {
				return nil, fmt.Errorf("mmio: bad vector header %q", line)
			}
			n, err := strconv.ParseInt(f[0], 10, 32)
			if err != nil {
				return nil, err
			}
			nnz, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, err
			}
			v = NewSpVec(Index(n), int(nnz))
			continue
		}
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: bad vector entry %q", line)
		}
		i, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, err
		}
		x, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, err
		}
		v.Append(Index(i), x)
	}
	if v == nil {
		return nil, fmt.Errorf("mmio: empty vector input")
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, sc.Err()
}

// WriteVector writes a sparse vector in the format ReadVector accepts.
func WriteVector(w io.Writer, v *SpVec) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", v.N, v.NNZ()); err != nil {
		return err
	}
	for k, i := range v.Ind {
		if _, err := fmt.Fprintf(bw, "%d %.17g\n", i, v.Val[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
