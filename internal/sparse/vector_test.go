package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpVecAppendTracksSortedness(t *testing.T) {
	v := NewSpVec(10, 4)
	v.Append(1, 1)
	v.Append(5, 2)
	if !v.Sorted {
		t.Error("ascending appends should stay sorted")
	}
	v.Append(3, 3)
	if v.Sorted {
		t.Error("out-of-order append should clear Sorted")
	}
	v.Sort()
	if !v.Sorted || v.Ind[0] != 1 || v.Ind[1] != 3 || v.Ind[2] != 5 {
		t.Errorf("after sort: %v", v.Ind)
	}
	if v.Val[1] != 3 {
		t.Errorf("values not permuted with indices: %v", v.Val)
	}
}

func TestSpVecDenseRoundTrip(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Index(r.Intn(100) + 1)
		d := make([]float64, n)
		for i := range d {
			if r.Float64() < 0.3 {
				d[i] = r.Float64() + 0.1
			}
		}
		v := FromDense(d, 0)
		back := v.ToDense()
		for i := range d {
			if d[i] != back[i] {
				return false
			}
		}
		return v.Sorted
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpVecEqualValues(t *testing.T) {
	a := NewSpVec(10, 3)
	a.Append(1, 2)
	a.Append(5, 3)

	b := NewSpVec(10, 3)
	b.Append(5, 3)
	b.Append(1, 2)
	if !a.EqualValues(b, 0) {
		t.Error("order should not matter")
	}

	// Duplicates that sum to the same value are equal.
	c := NewSpVec(10, 3)
	c.Append(1, 1)
	c.Append(1, 1)
	c.Append(5, 3)
	if !a.EqualValues(c, 0) {
		t.Error("split duplicate entries should compare equal")
	}

	// Explicit zero equals structural zero.
	d := a.Clone()
	d.Append(7, 0)
	if !a.EqualValues(d, 0) {
		t.Error("explicit zero should equal absent entry")
	}

	e := a.Clone()
	e.Val[0] = 99
	if a.EqualValues(e, 0) {
		t.Error("different values compared equal")
	}

	f := a.Clone()
	f.N = 11
	if a.EqualValues(f, 0) {
		t.Error("different dimensions compared equal")
	}
}

func TestSpVecValidate(t *testing.T) {
	v := NewSpVec(5, 2)
	v.Append(4, 1)
	if err := v.Validate(); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	v.Ind[0] = 5
	if err := v.Validate(); err == nil {
		t.Error("out-of-range index accepted")
	}
	w := NewSpVec(5, 2)
	w.Append(2, 1)
	w.Append(2, 1)
	w.Sorted = true // lie: duplicate indices are not strictly increasing
	if err := w.Validate(); err == nil {
		t.Error("non-monotone 'sorted' vector accepted")
	}
}

func TestBitVecSetClearReuse(t *testing.T) {
	b := NewBitVec(200)
	x := NewSpVec(200, 3)
	x.Append(0, 1.5)
	x.Append(63, 2.5)
	x.Append(64, 3.5)
	b.SetFrom(x)
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	if v, ok := b.Get(63); !ok || v != 2.5 {
		t.Errorf("Get(63) = %g,%v", v, ok)
	}
	if _, ok := b.Get(1); ok {
		t.Error("Get(1) should be absent")
	}
	b.ClearFrom(x)
	if b.Count() != 0 {
		t.Fatalf("after clear: count = %d", b.Count())
	}
	for i := Index(0); i < 200; i++ {
		if b.Test(i) {
			t.Fatalf("bit %d still set after ClearFrom", i)
		}
	}
	// Reuse with different contents.
	y := NewSpVec(200, 2)
	y.Append(199, 7)
	y.Append(5, 8)
	b.SetFrom(y)
	if b.Count() != 2 || !b.Test(199) || !b.Test(5) || b.Test(63) {
		t.Error("bitvector reuse broken")
	}
}

func TestBitVecDuplicateSet(t *testing.T) {
	b := NewBitVec(10)
	x := NewSpVec(10, 2)
	x.Append(3, 1)
	x.Append(3, 2) // duplicate index: last value wins, count stays 1
	b.SetFrom(x)
	if b.Count() != 1 {
		t.Errorf("count = %d, want 1", b.Count())
	}
	if v, _ := b.Get(3); v != 2 {
		t.Errorf("value = %g, want 2 (last write wins)", v)
	}
	b.ClearFrom(x)
	if b.Count() != 0 {
		t.Errorf("count after clear = %d", b.Count())
	}
}
