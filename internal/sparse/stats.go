package sparse

import "fmt"

// Stats summarizes a matrix the way the paper's Table IV summarizes its
// test problems: vertices, edges and pseudo-diameter, plus degree
// information that determines SpMSpV work (d = average nonzeros per
// column).
type Stats struct {
	Name           string
	Vertices       Index
	Edges          int64
	AvgDegree      float64
	MaxDegree      int64
	NonemptyCols   Index
	PseudoDiameter int
}

// ComputeStats derives Table IV-style statistics for an adjacency
// matrix. The pseudo-diameter uses the standard double-sweep BFS bound
// starting from source (paper Table IV reports pseudo-diameters too).
func ComputeStats(name string, a *CSC, source Index) Stats {
	s := Stats{
		Name:         name,
		Vertices:     a.NumCols,
		Edges:        a.NNZ(),
		AvgDegree:    a.AverageDegree(),
		NonemptyCols: a.NZC(),
	}
	for j := Index(0); j < a.NumCols; j++ {
		if l := a.ColLen(j); l > s.MaxDegree {
			s.MaxDegree = l
		}
	}
	s.PseudoDiameter = PseudoDiameter(a, source)
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%-22s %10d %12d %8.1f %8d", s.Name, s.Vertices, s.Edges, s.AvgDegree, s.PseudoDiameter)
}

// BFSLevels runs a sequential queue-based BFS over the graph whose
// adjacency is given column-wise (neighbors of v are the row ids of
// column v) and returns the level of every vertex (-1 for unreached)
// together with the eccentricity of the source. This is the oracle
// against which the SpMSpV-based BFS is validated, and the building
// block of the pseudo-diameter estimate.
func BFSLevels(a *CSC, source Index) (levels []int32, ecc int, last Index) {
	n := a.NumCols
	levels = make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if source < 0 || source >= n {
		return levels, 0, source
	}
	queue := make([]Index, 0, n)
	queue = append(queue, source)
	levels[source] = 0
	last = source
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		lv := levels[v]
		rows, _ := a.Col(v)
		for _, u := range rows {
			if levels[u] < 0 {
				levels[u] = lv + 1
				queue = append(queue, u)
				last = u
			}
		}
	}
	return levels, int(levels[last]), last
}

// PseudoDiameter estimates the graph diameter with a double-sweep BFS:
// BFS from source, then BFS again from the farthest vertex found. The
// result lower-bounds the true diameter and is the quantity Table IV
// calls "pseudo diameter".
func PseudoDiameter(a *CSC, source Index) int {
	if a.NumCols == 0 {
		return 0
	}
	_, _, far := BFSLevels(a, source)
	_, ecc, _ := BFSLevels(a, far)
	return ecc
}

// DegreeHistogram returns counts of column degrees in power-of-two
// bins: bin k counts columns with degree in [2^k, 2^(k+1)). Bin 0 also
// includes degree-1 columns; empty columns are reported separately.
func DegreeHistogram(a *CSC) (bins []int64, empty int64) {
	for j := Index(0); j < a.NumCols; j++ {
		l := a.ColLen(j)
		if l == 0 {
			empty++
			continue
		}
		k := 0
		for v := l; v > 1; v >>= 1 {
			k++
		}
		for len(bins) <= k {
			bins = append(bins, 0)
		}
		bins[k]++
	}
	return bins, empty
}
