package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDCSCAuxIndexFuzz checks the open-addressing column index against
// a linear scan over JC for random hypersparse matrices — including
// column ids that hash-collide under the Fibonacci multiplier.
func TestDCSCAuxIndexFuzz(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(r.Intn(50) + 1)
		n := Index(r.Intn(100000) + 1) // hypersparse column space
		nnz := r.Intn(60)
		tr := NewTriples(m, n, nnz)
		for k := 0; k < nnz; k++ {
			tr.Append(Index(r.Intn(int(m))), Index(r.Intn(int(n))), 1)
		}
		a, err := NewCSCFromTriples(tr)
		if err != nil {
			return false
		}
		d := NewDCSCFromCSC(a)
		// Every stored column must be found at its JC position.
		for want, j := range d.JC {
			pos, ok := d.FindCol(j)
			if !ok || pos != want {
				return false
			}
		}
		// Probing random absent columns must miss.
		present := map[Index]bool{}
		for _, j := range d.JC {
			present[j] = true
		}
		for probe := 0; probe < 50; probe++ {
			j := Index(r.Intn(int(n)))
			if _, ok := d.FindCol(j); ok != present[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDCSCStatsMatchCSC(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 100, 100, 300)
	d := NewDCSCFromCSC(a)
	if d.NNZ() != a.NNZ() {
		t.Errorf("nnz %d vs %d", d.NNZ(), a.NNZ())
	}
	if d.NZC() != a.NZC() {
		t.Errorf("nzc %d vs %d", d.NZC(), a.NZC())
	}
}

func TestDCSCAllColumnsDense(t *testing.T) {
	// A fully dense column space exercises high load on the aux table.
	tr := NewTriples(4, 64, 64)
	for j := Index(0); j < 64; j++ {
		tr.Append(j%4, j, float64(j))
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDCSCFromCSC(a)
	for j := Index(0); j < 64; j++ {
		rows, vals := d.Col(j)
		if len(rows) != 1 || rows[0] != j%4 || vals[0] != float64(j) {
			t.Fatalf("col %d: %v %v", j, rows, vals)
		}
	}
}
