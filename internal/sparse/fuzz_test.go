package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the parser against malformed input: it
// must either return an error or produce triples that validate and
// survive a write/read round trip. Run the seeds with `go test`; extend
// the corpus with `go test -fuzz=FuzzReadMatrixMarket`.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 5.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix array real general\n2 2\n1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n% c\n\n1 2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is correct
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid triples: %v", verr)
		}
		a, err := NewCSCFromTriples(tr)
		if err != nil {
			t.Fatalf("validated triples failed to compile: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		tr2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		b, err := NewCSCFromTriples(tr2)
		if err != nil {
			t.Fatalf("round trip compile failed: %v", err)
		}
		if !a.Equal(b) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

// FuzzReadVector does the same for the vector text format.
func FuzzReadVector(f *testing.F) {
	f.Add("4 2\n0 1.5\n3 -2\n")
	f.Add("1 0\n")
	f.Add("")
	f.Add("4 1\n9 1.0\n")
	f.Add("4 1\nx y\n")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := ReadVector(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := v.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid vector: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		w, err := ReadVector(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !w.EqualValues(v, 0) {
			t.Fatal("round trip changed the vector")
		}
	})
}
