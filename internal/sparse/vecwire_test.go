package sparse

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomTestVec builds a random sorted sparse vector.
func randomTestVec(rng *rand.Rand, n Index, nnz int) *SpVec {
	perm := rng.Perm(int(n))
	if nnz > int(n) {
		nnz = int(n)
	}
	idx := append([]int(nil), perm[:nnz]...)
	v := NewSpVec(n, nnz)
	sortInts(idx)
	for _, i := range idx {
		v.Append(Index(i), rng.NormFloat64())
	}
	v.Sorted = true
	return v
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func TestVectorWireRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	unsorted := &SpVec{N: 50, Ind: []Index{9, 3, 9, 40}, Val: []float64{1, 2, 3, 4}}
	// A near-full vector carrying explicitly stored zeros (exact
	// cancellation): it would win the dense size race, but the dense
	// payload cannot distinguish a stored zero from absence, so it must
	// ride sparse and keep its nnz across the wire.
	withZeros := NewSpVec(9, 9)
	for i := 0; i < 9; i++ {
		withZeros.Append(Index(i), float64(i-3)) // entry 3 holds +0.0
	}
	withZeros.Val[5] = math.Copysign(0, -1) // and entry 5 holds -0.0
	cases := []*SpVec{
		randomTestVec(rng, 200, 17), // sparse payload
		randomTestVec(rng, 100, 90), // dense payload (nnz > 2n/3)
		NewSpVec(64, 0),             // empty
		NewSpVec(0, 0),              // zero-dimension
		unsorted,                    // duplicates, must stay sparse
		withZeros,                   // stored ±0, must stay sparse
		randomTestVec(rng, 1000, 999),
	}
	for _, v := range cases {
		var bb bytes.Buffer
		if err := EncodeVectorBinary(&bb, v); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeVectorBinary(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("%s: decoding binary form: %v", v, err)
		}
		if !got.EqualValues(v, 0) {
			t.Errorf("%s: binary round trip changed the vector", v)
		}
		if got.NNZ() != v.NNZ() {
			t.Errorf("%s: binary round trip changed nnz %d → %d", v, v.NNZ(), got.NNZ())
		}
		// The sniffing decoder routes the binary frame, the JSON form
		// (with leading whitespace) and the text form.
		sniffed, err := DecodeVector(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("%s: DecodeVector(binary): %v", v, err)
		}
		if !sniffed.EqualValues(v, 0) {
			t.Errorf("%s: DecodeVector(binary) changed the vector", v)
		}
	}
}

func TestDecodeVectorSniffsAllThreeForms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	v := randomTestVec(rng, 80, 12)

	var bin bytes.Buffer
	if err := EncodeVectorBinary(&bin, v); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := WriteVector(&txt, v); err != nil {
		t.Fatal(err)
	}
	jsonBody := []byte("\n  {\"N\": 80, \"Ind\": [2, 5], \"Val\": [1.5, -2], \"Sorted\": true}")

	for name, body := range map[string][]byte{
		"binary": bin.Bytes(),
		"text":   txt.Bytes(),
	} {
		got, err := DecodeVector(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("DecodeVector(%s): %v", name, err)
		}
		if !got.EqualValues(v, 0) {
			t.Errorf("DecodeVector(%s) changed the vector", name)
		}
	}
	got, err := DecodeVector(bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatalf("DecodeVector(json): %v", err)
	}
	if got.N != 80 || got.NNZ() != 2 || got.Ind[1] != 5 || got.Val[1] != -2 {
		t.Errorf("DecodeVector(json) = %s", got)
	}
}

func TestBitVecWireRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	valued := NewBitVec(130)
	valued.SetFrom(randomTestVec(rng, 130, 40))
	supportOnly := NewBitVec(200)
	zeros := NewSpVec(200, 3)
	zeros.Append(0, 0)
	zeros.Append(64, 0)
	zeros.Append(199, 0)
	supportOnly.SetFrom(zeros)
	empty := NewBitVec(77)

	for name, b := range map[string]*BitVec{
		"valued": valued, "supportOnly": supportOnly, "empty": empty,
	} {
		var bb bytes.Buffer
		if err := EncodeBitVecBinary(&bb, b); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBitVecBinary(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N != b.N || got.Count() != b.Count() {
			t.Fatalf("%s: round trip n=%d count=%d, want n=%d count=%d",
				name, got.N, got.Count(), b.N, b.Count())
		}
		for i := Index(0); i < b.N; i++ {
			gv, gok := got.Get(i)
			wv, wok := b.Get(i)
			if gok != wok || gv != wv {
				t.Fatalf("%s: entry %d: got (%v,%v), want (%v,%v)", name, i, gv, gok, wv, wok)
			}
		}
	}

	// A support-only bitmap frame carries no float payload at all:
	// header + words only.
	var bb bytes.Buffer
	if err := EncodeBitVecBinary(&bb, supportOnly); err != nil {
		t.Fatal(err)
	}
	wantLen := 4 + 4 + 1 + 8 + 8 + 1 + 8*len(supportOnly.Words)
	if bb.Len() != wantLen {
		t.Errorf("support-only bitmap frame is %d bytes, want %d (words only)", bb.Len(), wantLen)
	}
}

// TestVectorWireCrossDecode pins the payload-kind cross paths: a
// sparse frame decodes into a bitmap and a bitmap frame into a list.
func TestVectorWireCrossDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	v := randomTestVec(rng, 150, 20)

	var vb bytes.Buffer
	if err := EncodeVectorBinary(&vb, v); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBitVecBinary(bytes.NewReader(vb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != v.NNZ() {
		t.Fatalf("sparse→bitmap count %d, want %d", b.Count(), v.NNZ())
	}

	bm := NewBitVec(150)
	bm.SetFrom(v)
	var bbb bytes.Buffer
	if err := EncodeBitVecBinary(&bbb, bm); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeVectorBinary(bytes.NewReader(bbb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualValues(v, 0) {
		t.Error("bitmap→list decode changed the vector")
	}
}

func TestDecodeVectorRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	v := randomTestVec(rng, 90, 10)
	var bb bytes.Buffer
	if err := EncodeVectorBinary(&bb, v); err != nil {
		t.Fatal(err)
	}
	full := bb.Bytes()

	cases := map[string][]byte{
		"badMagic":      []byte("SPVX\x01\x00\x00\x00\x00"),
		"badVersion":    []byte("SPVB\x09\x00\x00\x00\x00"),
		"badKind":       []byte("SPVB\x01\x00\x00\x00\x07"),
		"truncatedHead": full[:7],
		"truncatedBody": full[:len(full)-5],
		"empty":         {},
	}
	for name, body := range cases {
		if _, err := DecodeVectorBinary(bytes.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
		if _, err := DecodeBitVecBinary(bytes.NewReader(body)); err == nil {
			t.Errorf("%s: bitmap-decoded without error", name)
		}
	}

	// JSON forms that must fail validation.
	for name, body := range map[string]string{
		"oobIndex":    `{"N": 4, "Ind": [9], "Val": [1], "Sorted": true}`,
		"lenMismatch": `{"N": 4, "Ind": [1, 2], "Val": [1]}`,
		"notSorted":   `{"N": 4, "Ind": [2, 1], "Val": [1, 1], "Sorted": true}`,
	} {
		if _, err := DecodeVector(strings.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeVectorBinaryRejectsHostileHeaders(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	v := randomTestVec(rng, 90, 10)
	encode := func() []byte {
		var b bytes.Buffer
		if err := EncodeVectorBinary(&b, v); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	// Frame layout: 4 magic + 4 version + 1 kind, then n int64, nnz int64.
	const nOff, nnzOff = 9, 17
	corrupt := func(off int, val uint64) []byte {
		data := encode()
		for i := 0; i < 8; i++ {
			data[off+i] = byte(val >> (8 * i))
		}
		return data
	}
	cases := map[string][]byte{
		"negativeNNZ": corrupt(nnzOff, ^uint64(0)),
		"lyingNNZ":    corrupt(nnzOff, 1<<40), // must error when the body runs dry
		"overflowDim": corrupt(nOff, 1<<32+10),
		"negativeDim": corrupt(nOff, ^uint64(3)),
	}
	for name, data := range cases {
		if _, err := DecodeVectorBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// A bitmap frame whose header count disagrees with the words, or
	// with bits set beyond the dimension, must be rejected.
	bm := NewBitVec(70)
	one := NewSpVec(70, 1)
	one.Append(3, 1.5)
	bm.SetFrom(one)
	var bb bytes.Buffer
	if err := EncodeBitVecBinary(&bb, bm); err != nil {
		t.Fatal(err)
	}
	data := bb.Bytes()
	// Bitmap layout: 9 header + n int64 + nset int64 + hasVals byte + words.
	lie := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(lie[17:], 5) // claim 5 set bits
	if _, err := DecodeBitVecBinary(bytes.NewReader(lie)); err == nil {
		t.Error("bitmap with lying set count decoded without error")
	}
	tail := append([]byte(nil), data...)
	tail[26+8] |= 0x80 // set a bit in word 1 beyond n=70 → bit 127
	if _, err := DecodeBitVecBinary(bytes.NewReader(tail)); err == nil {
		t.Error("bitmap with bits beyond the dimension decoded without error")
	}
}

// TestBitVecDecodeBoundsAllocation pins the decode-side bound on
// bitmap materialization: a tiny frame claiming a huge dimension is
// rejected before any O(n) allocation — on the bitmap payload itself
// and on the sparse→bitmap fallback, whose ~40-byte frame (nnz=0)
// backs the claimed dimension with no body bytes at all.
func TestBitVecDecodeBoundsAllocation(t *testing.T) {
	frame := func(kind uint8, n, second int64, flag uint8) []byte {
		var b bytes.Buffer
		b.WriteString(vectorMagic)
		var w [8]byte
		binary.LittleEndian.PutUint32(w[:4], vectorVersion)
		b.Write(w[:4])
		b.WriteByte(kind)
		binary.LittleEndian.PutUint64(w[:], uint64(n))
		b.Write(w[:])
		binary.LittleEndian.PutUint64(w[:], uint64(second))
		b.Write(w[:])
		b.WriteByte(flag)
		return b.Bytes()
	}
	huge := int64(1) << 30 // past the default decode limit, under maxWireDim

	hostile := frame(vecKindBitmap, huge, 0, 0)
	if _, err := DecodeBitVecBinary(bytes.NewReader(hostile)); err == nil || !strings.Contains(err.Error(), "decode limit") {
		t.Errorf("hostile bitmap header: err = %v, want decode-limit error", err)
	}
	if _, err := DecodeVectorBinary(bytes.NewReader(hostile)); err == nil {
		t.Error("hostile bitmap header decoded as a vector without error")
	}

	// A sparse frame with a huge dimension and nnz=0 is a legitimate
	// (if odd) list vector — but materializing it as a bitmap is an
	// O(n) allocation and must hit the same limit.
	sp := frame(vecKindSparse, huge, 0, 1)
	if _, err := DecodeVectorBinary(bytes.NewReader(sp)); err != nil {
		t.Errorf("sparse frame with huge dimension: list decode: %v", err)
	}
	if _, err := DecodeBitVecBinary(bytes.NewReader(sp)); err == nil || !strings.Contains(err.Error(), "decode limit") {
		t.Errorf("sparse→bitmap fallback: err = %v, want decode-limit error", err)
	}

	// The limit is a knob: lowering it rejects a bitmap the default
	// admits, and restoring the default re-admits it.
	bm := NewBitVec(130)
	one := NewSpVec(130, 1)
	one.Append(99, 2.5)
	bm.SetFrom(one)
	var bb bytes.Buffer
	if err := EncodeBitVecBinary(&bb, bm); err != nil {
		t.Fatal(err)
	}
	SetMaxBitVecDim(100)
	defer SetMaxBitVecDim(0)
	if _, err := DecodeBitVecBinary(bytes.NewReader(bb.Bytes())); err == nil {
		t.Error("decode under a lowered limit succeeded")
	}
	SetMaxBitVecDim(0)
	if _, err := DecodeBitVecBinary(bytes.NewReader(bb.Bytes())); err != nil {
		t.Errorf("decode after restoring the default limit: %v", err)
	}
}

// TestBitVecJSONRejectsHostileDimensions pins the same bound (and a
// negative-dimension check) on the JSON form, which decodes request
// masks on the serving path too.
func TestBitVecJSONRejectsHostileDimensions(t *testing.T) {
	var b BitVec
	if err := json.Unmarshal([]byte(`{"n": -1}`), &b); err == nil {
		t.Error("negative bitmap dimension unmarshaled without error")
	}
	if err := json.Unmarshal([]byte(`{"n": 1073741824}`), &b); err == nil {
		t.Error("huge bitmap dimension unmarshaled without error")
	}
	if err := json.Unmarshal([]byte(`{"n": 64, "ind": [3], "val": [1.5]}`), &b); err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Get(3); !ok || v != 1.5 || b.Count() != 1 {
		t.Errorf("well-formed bitmap JSON decoded to count=%d, entry 3 = (%v, %v)", b.Count(), v, ok)
	}
}

// FuzzVectorWire hardens the binary vector/frontier codec: arbitrary
// bytes must either be rejected or decode into a vector that validates
// and survives an encode/decode round trip — truncated and corrupt
// frames error, never panic. Mirrors the matrix wire tests.
func FuzzVectorWire(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	seed := func(v *SpVec) {
		var b bytes.Buffer
		if err := EncodeVectorBinary(&b, v); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	seed(randomTestVec(rng, 64, 9))  // sparse
	seed(randomTestVec(rng, 48, 40)) // dense
	seed(NewSpVec(10, 0))            // empty
	bm := NewBitVec(130)
	bm.SetFrom(randomTestVec(rng, 130, 33))
	var bb bytes.Buffer
	if err := EncodeBitVecBinary(&bb, bm); err != nil {
		f.Fatal(err)
	}
	f.Add(bb.Bytes()) // bitmap with values
	f.Add([]byte("SPVB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVectorBinary(bytes.NewReader(data))
		if err == nil {
			if verr := v.Validate(); verr != nil {
				t.Fatalf("decoder accepted invalid vector: %v", verr)
			}
			var out bytes.Buffer
			if err := EncodeVectorBinary(&out, v); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			w, err := DecodeVectorBinary(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			if !w.EqualValues(v, 0) {
				t.Fatal("round trip changed the vector")
			}
		}
		// The bitmap decoder must be equally panic-free on the same
		// input, whatever the payload kind claims.
		if b, err := DecodeBitVecBinary(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := EncodeBitVecBinary(&out, b); err != nil {
				t.Fatalf("bitmap re-encode failed: %v", err)
			}
			if _, err := DecodeBitVecBinary(bytes.NewReader(out.Bytes())); err != nil {
				t.Fatalf("bitmap round trip failed: %v", err)
			}
		}
	})
}
