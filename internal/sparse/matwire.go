package sparse

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Matrix wire encodings — the upload formats the spmspv-serve matrix
// registry accepts, so matrices can be shipped to a server instead of
// only preloaded from disk. Two encodings cover the two use cases:
//
//   - JSON: the compressed-sparse arrays verbatim ({"nrows", "ncols",
//     "colptr", "rowidx", "val"}), for hand-written requests and
//     cross-language clients. The layout is this package's CSC —
//     equivalently the CSR of Aᵀ — because that is what every engine
//     consumes without conversion.
//   - Binary: a little-endian framed dump of the same arrays, ~3×
//     smaller than JSON and decoded without any per-entry parsing —
//     the format the Go Client ships by default.
//
// DecodeMatrix sniffs the encoding (binary magic, JSON '{', Matrix
// Market '%') so one upload endpoint accepts all three on-disk forms.

// matrixWire is the JSON form of a CSC matrix.
type matrixWire struct {
	NumRows    Index     `json:"nrows"`
	NumCols    Index     `json:"ncols"`
	ColPtr     []int64   `json:"colptr"`
	RowIdx     []Index   `json:"rowidx"`
	Val        []float64 `json:"val"`
	SortedCols bool      `json:"sorted_cols,omitempty"`
}

// Validate checks the structural invariants of a CSC matrix — the
// checks a server runs on a decoded upload before binding engines to
// it: dimension sanity, a monotone column-pointer array that spans
// exactly the nonzero arrays, row ids in range, and (when SortedCols
// claims it) strictly increasing row ids within each column. A matrix
// that passes cannot make any engine's column scans read out of
// bounds.
func (a *CSC) Validate() error {
	if a.NumRows < 0 || a.NumCols < 0 {
		return fmt.Errorf("sparse: matrix with negative dimension %d×%d", a.NumRows, a.NumCols)
	}
	if len(a.ColPtr) != int(a.NumCols)+1 {
		return fmt.Errorf("sparse: colptr has %d entries, want ncols+1 = %d", len(a.ColPtr), a.NumCols+1)
	}
	if a.ColPtr[0] != 0 {
		return fmt.Errorf("sparse: colptr[0] = %d, want 0", a.ColPtr[0])
	}
	nnz := int64(len(a.RowIdx))
	if int64(len(a.Val)) != nnz {
		return fmt.Errorf("sparse: %d row ids but %d values", nnz, len(a.Val))
	}
	for j := Index(0); j < a.NumCols; j++ {
		if a.ColPtr[j+1] < a.ColPtr[j] {
			return fmt.Errorf("sparse: colptr decreases at column %d", j)
		}
	}
	if a.ColPtr[a.NumCols] != nnz {
		return fmt.Errorf("sparse: colptr ends at %d but matrix has %d nonzeros", a.ColPtr[a.NumCols], nnz)
	}
	for j := Index(0); j < a.NumCols; j++ {
		prev := Index(-1)
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			if i < 0 || i >= a.NumRows {
				return fmt.Errorf("sparse: row id %d out of range [0,%d) in column %d", i, a.NumRows, j)
			}
			if a.SortedCols && i <= prev {
				return fmt.Errorf("sparse: matrix marked sorted but column %d has row %d after %d", j, i, prev)
			}
			prev = i
		}
	}
	return nil
}

// EncodeMatrixJSON writes a as its JSON wire form.
func EncodeMatrixJSON(w io.Writer, a *CSC) error {
	return json.NewEncoder(w).Encode(matrixWire{
		NumRows:    a.NumRows,
		NumCols:    a.NumCols,
		ColPtr:     a.ColPtr,
		RowIdx:     a.RowIdx,
		Val:        a.Val,
		SortedCols: a.SortedCols,
	})
}

// DecodeMatrixJSON parses the JSON wire form and validates the result.
func DecodeMatrixJSON(r io.Reader) (*CSC, error) {
	var w matrixWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("sparse: decoding matrix JSON: %w", err)
	}
	a := &CSC{
		NumRows:    w.NumRows,
		NumCols:    w.NumCols,
		ColPtr:     w.ColPtr,
		RowIdx:     w.RowIdx,
		Val:        w.Val,
		SortedCols: w.SortedCols,
	}
	if a.ColPtr == nil {
		a.ColPtr = make([]int64, int(a.NumCols)+1)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// matrixMagic opens every binary matrix frame; matrixVersion is bumped
// on incompatible layout changes.
const (
	matrixMagic   = "SPMB"
	matrixVersion = 1
	// maxWireDim bounds the dimensions a binary header may claim:
	// Index is int32, so anything larger cannot round-trip (and a
	// silent truncation would decode a wrong-dimensioned matrix that
	// validates against the truncated bound).
	maxWireDim = int64(1)<<31 - 1
	// sliceChunk caps the array readers' up-front allocation; beyond it
	// storage grows with append as the stream actually delivers bytes,
	// so a corrupt (or hostile) header claiming absurd counts errors
	// out when the body runs dry instead of triggering a huge
	// allocation first.
	sliceChunk = 1 << 20
)

// EncodeMatrixBinary writes a as the framed little-endian binary form:
// magic, version, dimensions, nnz, the sorted flag, then the colptr /
// rowidx / val arrays back to back.
func EncodeMatrixBinary(w io.Writer, a *CSC) error {
	bw := getEncWriter(w)
	if err := encodeMatrix(bw, a); err != nil {
		putEncWriter(bw)
		return err
	}
	return putEncWriter(bw)
}

func encodeMatrix(bw *bufio.Writer, a *CSC) error {
	if _, err := bw.WriteString(matrixMagic); err != nil {
		return err
	}
	var sorted uint8
	if a.SortedCols {
		sorted = 1
	}
	header := []any{
		uint32(matrixVersion),
		int64(a.NumRows), int64(a.NumCols), a.NNZ(),
		sorted,
	}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var buf [8]byte
	for _, p := range a.ColPtr {
		binary.LittleEndian.PutUint64(buf[:], uint64(p))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, i := range a.RowIdx {
		binary.LittleEndian.PutUint32(buf[:4], uint32(i))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range a.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeMatrixBinary parses the framed binary form and validates the
// result.
func DecodeMatrixBinary(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading matrix magic: %w", err)
	}
	if string(magic[:]) != matrixMagic {
		return nil, fmt.Errorf("sparse: bad matrix magic %q", magic[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != matrixVersion {
		return nil, fmt.Errorf("sparse: unsupported matrix wire version %d", version)
	}
	var nrows, ncols, nnz int64
	var sorted uint8
	for _, p := range []any{&nrows, &ncols, &nnz, &sorted} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if nrows < 0 || ncols < 0 || nnz < 0 || nrows > maxWireDim || ncols > maxWireDim {
		return nil, fmt.Errorf("sparse: implausible matrix header %d×%d nnz=%d", nrows, ncols, nnz)
	}
	a := &CSC{
		NumRows:    Index(nrows),
		NumCols:    Index(ncols),
		SortedCols: sorted != 0,
	}
	var buf [8]byte
	var err error
	a.ColPtr, err = readChunked(make([]int64, 0, min(ncols+1, sliceChunk)), ncols+1, func() (int64, error) {
		_, e := io.ReadFull(br, buf[:8])
		return int64(binary.LittleEndian.Uint64(buf[:8])), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading colptr: %w", err)
	}
	a.RowIdx, err = readChunked(make([]Index, 0, min(nnz, sliceChunk)), nnz, func() (Index, error) {
		_, e := io.ReadFull(br, buf[:4])
		return Index(binary.LittleEndian.Uint32(buf[:4])), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading rowidx: %w", err)
	}
	a.Val, err = readChunked(make([]float64, 0, min(nnz, sliceChunk)), nnz, func() (float64, error) {
		_, e := io.ReadFull(br, buf[:8])
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading values: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// readChunked reads n values into dst, growing it chunk by chunk so
// memory tracks the bytes the stream actually delivered rather than
// the count the header claimed.
func readChunked[T any](dst []T, n int64, read func() (T, error)) ([]T, error) {
	for int64(len(dst)) < n {
		v, err := read()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// DecodeMatrix sniffs the encoding of r — the binary magic, a JSON
// object, or a Matrix Market banner/comment ('%') — and decodes
// accordingly. This is the single decoder behind the server's upload
// endpoint and the store's file loader, so every entry point accepts
// all three formats.
func DecodeMatrix(r io.Reader) (*CSC, error) {
	br := bufio.NewReader(r)
	for {
		head, err := br.Peek(4)
		if err != nil && len(head) == 0 {
			return nil, fmt.Errorf("sparse: sniffing matrix encoding: %w", err)
		}
		if len(head) > 0 && (head[0] == ' ' || head[0] == '\t' || head[0] == '\n' || head[0] == '\r') {
			br.ReadByte()
			continue
		}
		switch {
		case string(head) == matrixMagic:
			return DecodeMatrixBinary(br)
		case head[0] == '{':
			return DecodeMatrixJSON(br)
		case head[0] == '%':
			t, err := ReadMatrixMarket(br)
			if err != nil {
				return nil, err
			}
			return NewCSCFromTriples(t)
		default:
			return nil, fmt.Errorf("sparse: unrecognized matrix encoding (leading bytes %q)", head)
		}
	}
}
