package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, m, n Index, nnz int) *CSC {
	tr := NewTriples(m, n, nnz)
	for k := 0; k < nnz; k++ {
		tr.Append(Index(r.Intn(int(m))), Index(r.Intn(int(n))), r.Float64()+0.1)
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		panic(err)
	}
	return a
}

func randPerm(r *rand.Rand, n Index) []Index {
	p := make([]Index, n)
	for i, v := range r.Perm(int(n)) {
		p[i] = Index(v)
	}
	return p
}

func TestPermuteRowsEntries(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(r.Intn(40) + 1)
		n := Index(r.Intn(40) + 1)
		a := randomMatrix(r, m, n, 80)
		perm := randPerm(r, m)
		pa, err := PermuteRows(a, perm)
		if err != nil {
			return false
		}
		if !pa.SortedCols {
			return false
		}
		for j := Index(0); j < n; j++ {
			rows, vals := a.Col(j)
			for k, i := range rows {
				if pa.At(perm[i], j) != vals[k] {
					return false
				}
			}
		}
		return pa.NNZ() == a.NNZ()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPermuteColsEntries(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(r.Intn(40) + 1)
		n := Index(r.Intn(40) + 1)
		a := randomMatrix(r, m, n, 80)
		perm := randPerm(r, n)
		pa, err := PermuteCols(a, perm)
		if err != nil {
			return false
		}
		for j := Index(0); j < n; j++ {
			rows, vals := a.Col(j)
			for k, i := range rows {
				if pa.At(i, perm[j]) != vals[k] {
					return false
				}
			}
		}
		return pa.NNZ() == a.NNZ()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymmetricPreservesGraphStructure(t *testing.T) {
	// Vertex relabeling preserves degree multiset and diameter.
	rng := rand.New(rand.NewSource(5))
	tr := NewTriples(30, 30, 120)
	for i := Index(0); i+1 < 30; i++ {
		tr.AppendSymmetric(i, i+1, 1) // a path: diameter 29
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	perm := randPerm(rng, 30)
	pa, err := PermuteSymmetric(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	if got := PseudoDiameter(pa, perm[0]); got != 29 {
		t.Errorf("permuted path pseudo-diameter = %d, want 29", got)
	}
}

func TestPermutationValidation(t *testing.T) {
	a := randomMatrix(rand.New(rand.NewSource(1)), 4, 4, 6)
	cases := [][]Index{
		{0, 1, 2},     // wrong length
		{0, 1, 2, 4},  // out of range
		{0, 1, 1, 2},  // duplicate
		{-1, 0, 1, 2}, // negative
	}
	for _, perm := range cases {
		if _, err := PermuteRows(a, perm); err == nil {
			t.Errorf("perm %v accepted", perm)
		}
		if len(perm) == 4 {
			if _, err := PermuteCols(a, perm); err == nil {
				t.Errorf("col perm %v accepted", perm)
			}
		}
	}
	identity := []Index{0, 1, 2, 3}
	pa, err := PermuteRows(a, identity)
	if err != nil {
		t.Fatal(err)
	}
	if !pa.Equal(a) {
		t.Error("identity permutation changed the matrix")
	}
}

func TestExtractColumns(t *testing.T) {
	a := buildSmallCSC(t) // 4×3
	sub, err := ExtractColumns(a, []Index{2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols != 3 || sub.NumRows != 4 {
		t.Fatalf("dims %dx%d", sub.NumRows, sub.NumCols)
	}
	// Column 0 of sub = column 2 of a.
	wantRows, wantVals := a.Col(2)
	gotRows, gotVals := sub.Col(0)
	for k := range wantRows {
		if gotRows[k] != wantRows[k] || gotVals[k] != wantVals[k] {
			t.Error("extracted column mismatch")
		}
	}
	// Repeats allowed: col 2 of sub also equals col 2 of a.
	gotRows, _ = sub.Col(2)
	if len(gotRows) != len(wantRows) {
		t.Error("repeated extraction mismatch")
	}
	if _, err := ExtractColumns(a, []Index{5}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestExtractSubmatrix(t *testing.T) {
	a := buildSmallCSC(t) // entries (0,0)=1 (2,0)=2 (3,1)=3 (1,2)=4 (3,2)=5
	sub, err := ExtractSubmatrix(a, 1, 4, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows != 3 || sub.NumCols != 2 {
		t.Fatalf("dims %dx%d", sub.NumRows, sub.NumCols)
	}
	if sub.At(1, 0) != 2 { // global (2,0) → local (1,0)
		t.Errorf("At(1,0) = %g", sub.At(1, 0))
	}
	if sub.At(2, 1) != 3 { // global (3,1) → local (2,1)
		t.Errorf("At(2,1) = %g", sub.At(2, 1))
	}
	if sub.NNZ() != 2 {
		t.Errorf("nnz = %d, want 2", sub.NNZ())
	}
	if _, err := ExtractSubmatrix(a, 2, 1, 0, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := ExtractSubmatrix(a, 0, 99, 0, 1); err == nil {
		t.Error("oversized range accepted")
	}
}
