package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// randomTestCSC builds a small random matrix directly from triples.
func randomTestCSC(t *testing.T, rng *rand.Rand, m, n Index, nnz int) *CSC {
	t.Helper()
	tr := NewTriples(m, n, nnz)
	for k := 0; k < nnz; k++ {
		tr.Append(Index(rng.Intn(int(m))), Index(rng.Intn(int(n))), rng.NormFloat64())
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMatrixWireRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, a := range []*CSC{
		randomTestCSC(t, rng, 37, 23, 140),
		randomTestCSC(t, rng, 1, 1, 1),
		{NumRows: 4, NumCols: 3, ColPtr: []int64{0, 0, 0, 0}}, // empty
	} {
		var jb, bb bytes.Buffer
		if err := EncodeMatrixJSON(&jb, a); err != nil {
			t.Fatal(err)
		}
		if err := EncodeMatrixBinary(&bb, a); err != nil {
			t.Fatal(err)
		}
		fromJSON, err := DecodeMatrixJSON(bytes.NewReader(jb.Bytes()))
		if err != nil {
			t.Fatalf("decoding JSON form: %v", err)
		}
		fromBin, err := DecodeMatrixBinary(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("decoding binary form: %v", err)
		}
		if !a.Equal(fromJSON) {
			t.Errorf("%s: JSON round trip changed the matrix", a)
		}
		if !a.Equal(fromBin) {
			t.Errorf("%s: binary round trip changed the matrix", a)
		}
		// The sniffing decoder must route both (and a Matrix Market
		// body) correctly, including with leading whitespace.
		for name, body := range map[string][]byte{
			"json":   append([]byte("\n  "), jb.Bytes()...),
			"binary": bb.Bytes(),
		} {
			got, err := DecodeMatrix(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("DecodeMatrix(%s): %v", name, err)
			}
			if !a.Equal(got) {
				t.Errorf("DecodeMatrix(%s) changed the matrix", name)
			}
		}
	}
}

func TestDecodeMatrixSniffsMatrixMarket(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomTestCSC(t, rng, 20, 20, 60)
	var mm bytes.Buffer
	if err := WriteMatrixMarket(&mm, a); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMatrix(bytes.NewReader(mm.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows != got.NumRows || a.NumCols != got.NumCols || a.NNZ() != got.NNZ() {
		t.Fatalf("Matrix Market round trip: got %s, want %s", got, a)
	}
}

func TestDecodeMatrixRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "hello world",
		"empty":        "",
		"truncatedBin": "SPMB\x01\x00\x00\x00",
		"badJSON":      `{"nrows": 2, "ncols": 2, "colptr": [0, 1]}`, // colptr too short
		"oobRow":       `{"nrows": 2, "ncols": 1, "colptr": [0,1], "rowidx": [5], "val": [1]}`,
		"decreasing":   `{"nrows": 3, "ncols": 2, "colptr": [0,2,1], "rowidx": [0,1], "val": [1,1]}`,
		"valMismatch":  `{"nrows": 3, "ncols": 1, "colptr": [0,2], "rowidx": [0,1], "val": [1]}`,
	}
	for name, body := range cases {
		if _, err := DecodeMatrix(strings.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeMatrixBinaryRejectsHostileHeaders(t *testing.T) {
	encode := func() []byte {
		var b bytes.Buffer
		a := &CSC{NumRows: 1, NumCols: 1, ColPtr: []int64{0, 1}, RowIdx: []Index{0}, Val: []float64{1}}
		if err := EncodeMatrixBinary(&b, a); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	// Header layout: 4 magic + 4 version, then nrows/ncols/nnz int64s.
	const nrowsOff, ncolsOff, nnzOff = 8, 16, 24
	corrupt := func(off int, val uint64) []byte {
		data := encode()
		for i := 0; i < 8; i++ {
			data[off+i] = byte(val >> (8 * i))
		}
		return data
	}
	cases := map[string][]byte{
		// Negative nnz.
		"negativeNNZ": corrupt(nnzOff, ^uint64(0)),
		// nnz far beyond the body: must error when the stream runs dry,
		// with memory growth bounded by the delivered bytes.
		"lyingNNZ": corrupt(nnzOff, 1<<40),
		// Dimensions that cannot fit the int32 Index: rejecting beats
		// silently truncating into a wrong-but-valid matrix.
		"overflowRows": corrupt(nrowsOff, 1<<32+10),
		"overflowCols": corrupt(ncolsOff, 1<<40),
	}
	for name, data := range cases {
		if _, err := DecodeMatrixBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
