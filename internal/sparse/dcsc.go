package sparse

// DCSC is the Double-Compressed Sparse Columns format of Buluç & Gilbert
// (paper §II-C, ref [13]): only nonempty columns are represented. JC
// lists the nonzero column ids in increasing order, CP[k]..CP[k+1]
// delimits column JC[k]'s entries in IR/Num. Storage is O(nzc + nnz)
// versus CSC's O(n + nnz), which matters for hypersparse row-split
// pieces where most columns are empty.
//
// The aux open-addressing hash index restores expected-O(1) random
// column access ("DCSC can be augmented to support fast column indexing
// by building an auxiliary index array", §II-C) without the O(n) cost of
// a direct-mapped table.
type DCSC struct {
	NumRows, NumCols Index
	JC               []Index
	CP               []int64
	IR               []Index
	Num              []float64
	// RowOffset is the global row id of local row 0. Row-split pieces
	// store local row ids so each thread's private SPA can be sized to
	// its own row range.
	RowOffset Index

	// aux is an open-addressing (linear probing) table mapping column id
	// to position+1 in JC; 0 marks an empty slot. Length is a power of
	// two at least 2·nzc.
	aux     []int32
	auxMask uint32
}

// NewDCSCFromCSC compresses a CSC matrix into DCSC form and builds the
// auxiliary column index.
func NewDCSCFromCSC(a *CSC) *DCSC {
	d := &DCSC{NumRows: a.NumRows, NumCols: a.NumCols}
	for j := Index(0); j < a.NumCols; j++ {
		if a.ColPtr[j+1] == a.ColPtr[j] {
			continue
		}
		d.JC = append(d.JC, j)
		d.CP = append(d.CP, a.ColPtr[j])
	}
	d.CP = append(d.CP, a.NNZ())
	d.IR = a.RowIdx
	d.Num = a.Val
	d.buildAux()
	return d
}

// NNZ returns the number of stored nonzeros.
func (d *DCSC) NNZ() int64 { return int64(len(d.IR)) }

// NZC returns the number of nonempty columns.
func (d *DCSC) NZC() Index { return Index(len(d.JC)) }

// buildAux constructs the open-addressing column index.
func (d *DCSC) buildAux() {
	size := uint32(4)
	for size < uint32(2*len(d.JC)+1) {
		size <<= 1
	}
	d.aux = make([]int32, size)
	d.auxMask = size - 1
	for k, j := range d.JC {
		h := hashIndex(j) & d.auxMask
		for d.aux[h] != 0 {
			h = (h + 1) & d.auxMask
		}
		d.aux[h] = int32(k) + 1
	}
}

// hashIndex mixes a column id for the open-addressing table
// (Fibonacci hashing on the 32-bit golden ratio).
func hashIndex(j Index) uint32 {
	return uint32(j) * 2654435769
}

// FindCol returns the position of column j within JC, or ok=false when
// the column is empty. Expected O(1) via the auxiliary index.
func (d *DCSC) FindCol(j Index) (pos int, ok bool) {
	h := hashIndex(j) & d.auxMask
	for {
		slot := d.aux[h]
		if slot == 0 {
			return 0, false
		}
		if d.JC[slot-1] == j {
			return int(slot - 1), true
		}
		h = (h + 1) & d.auxMask
	}
}

// ColAt returns the local row ids and values of the column stored at
// position pos (as returned by FindCol), aliasing the matrix storage.
func (d *DCSC) ColAt(pos int) ([]Index, []float64) {
	lo, hi := d.CP[pos], d.CP[pos+1]
	return d.IR[lo:hi], d.Num[lo:hi]
}

// Col returns the entries of column j (empty slices when the column is
// empty), aliasing the matrix storage.
func (d *DCSC) Col(j Index) ([]Index, []float64) {
	pos, ok := d.FindCol(j)
	if !ok {
		return nil, nil
	}
	return d.ColAt(pos)
}

// RowSplit partitions a into p row-wise pieces in DCSC format, the
// preprocessing step of the CombBLAS and GraphMat baselines ("the BFS
// work advocated splitting the matrix row-wise to t pieces; each thread
// local m/t-by-n submatrix was then stored in the DCSC format", §II-E).
// Piece w covers global rows [w·m/p, (w+1)·m/p); row ids inside a piece
// are local (global − RowOffset). The split itself is considered
// algorithm setup and is excluded from multiply timings, exactly like
// the baselines' published implementations.
func RowSplit(a *CSC, p int) []*DCSC {
	if p < 1 {
		p = 1
	}
	m := a.NumRows
	bounds := PieceBounds(m, p)
	pieces := make([]*DCSC, p)
	for w := 0; w < p; w++ {
		pieces[w] = &DCSC{
			NumRows:   bounds[w+1] - bounds[w],
			NumCols:   a.NumCols,
			RowOffset: bounds[w],
		}
	}
	// Single pass over the matrix: for each column, route each entry to
	// its piece. Columns are visited in increasing order so each piece's
	// JC comes out sorted; entries within a column keep their (sorted)
	// row order.
	for j := Index(0); j < a.NumCols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			i := a.RowIdx[k]
			w := pieceOf(i, m, p)
			d := pieces[w]
			if len(d.JC) == 0 || d.JC[len(d.JC)-1] != j {
				d.JC = append(d.JC, j)
				d.CP = append(d.CP, int64(len(d.IR)))
			}
			d.IR = append(d.IR, i-d.RowOffset)
			d.Num = append(d.Num, a.Val[k])
		}
	}
	for _, d := range pieces {
		d.CP = append(d.CP, int64(len(d.IR)))
		d.buildAux()
	}
	return pieces
}

// pieceOf returns the row-split piece index owning global row i when an
// m-row matrix is split into p pieces: ⌊i·p/m⌋, the same mapping the
// bucket algorithm uses for destination buckets (line 5 of Algorithm 1).
func pieceOf(i, m Index, p int) int {
	return int(int64(i) * int64(p) / int64(m))
}

// PieceBounds returns the row boundaries consistent with pieceOf: piece
// w owns global rows [bounds[w], bounds[w+1]), where bounds[w] =
// ⌈w·m/p⌉. (Ceiling, not floor: ⌊i·p/m⌋ == w exactly for i in that
// range.)
func PieceBounds(m Index, p int) []Index {
	bounds := make([]Index, p+1)
	for w := 0; w <= p; w++ {
		bounds[w] = Index((int64(w)*int64(m) + int64(p) - 1) / int64(p))
	}
	return bounds
}
