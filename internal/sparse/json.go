package sparse

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// JSON wire forms for the vector types that ride in multiply request
// descriptors. SpVec marshals fine with the default encoding (all its
// fields are exported); BitVec's word array and cached set count are
// representation details, so it marshals as its logical content — the
// dimension plus the set (index, value) pairs — which is also far more
// compact for the sparse masks requests actually carry.

// bitVecWire is the JSON form of a BitVec.
type bitVecWire struct {
	N   Index     `json:"n"`
	Ind []Index   `json:"ind,omitempty"`
	Val []float64 `json:"val,omitempty"`
}

// MarshalJSON encodes the bitvector as {"n": dim, "ind": [...],
// "val": [...]} with the set positions in ascending order.
func (b *BitVec) MarshalJSON() ([]byte, error) {
	w := bitVecWire{N: b.N}
	for wi, word := range b.Words {
		for word != 0 {
			bit := word & (-word)
			i := Index(wi<<6) + Index(bits.TrailingZeros64(bit))
			w.Ind = append(w.Ind, i)
			w.Val = append(w.Val, b.Val[i])
			word &^= bit
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, rebuilding the word array and
// set count. Missing "val" entries default to zero values.
func (b *BitVec) UnmarshalJSON(data []byte) error {
	var w bitVecWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	// Validate the claimed dimension before NewBitVec materializes O(n)
	// storage from it: this decode runs on the serving path (request
	// masks), where n is attacker-controlled.
	if w.N < 0 {
		return fmt.Errorf("sparse: negative bitmap dimension %d", w.N)
	}
	if err := checkBitVecDim(int64(w.N)); err != nil {
		return err
	}
	x := &SpVec{N: w.N, Ind: w.Ind, Val: w.Val}
	if len(x.Val) < len(x.Ind) {
		pad := make([]float64, len(x.Ind))
		copy(pad, x.Val)
		x.Val = pad
	}
	if err := x.Validate(); err != nil {
		return err
	}
	fresh := NewBitVec(w.N)
	fresh.SetFrom(x)
	*b = *fresh
	return nil
}
