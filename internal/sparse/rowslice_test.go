package sparse

import (
	"math/rand"
	"testing"
)

func randomCSC(t *testing.T, rng *rand.Rand, m, n Index, nnz int) *CSC {
	t.Helper()
	tr := NewTriples(m, n, nnz)
	for k := 0; k < nnz; k++ {
		tr.Append(Index(rng.Intn(int(m))), Index(rng.Intn(int(n))), float64(rng.Intn(9)+1))
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestRowSliceMatchesExtract pins RowSlice to the established
// ExtractSubmatrix semantics on full-width row slabs, for sorted and
// unsorted column storage.
func TestRowSliceMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := Index(rng.Intn(100) + 1)
		n := Index(rng.Intn(100) + 1)
		a := randomCSC(t, rng, m, n, rng.Intn(400))
		if trial%2 == 1 {
			// Exercise the linear-scan path: shuffle each column's entries
			// and drop the sorted flag.
			a.SortedCols = false
			for j := Index(0); j < n; j++ {
				lo, hi := a.ColPtr[j], a.ColPtr[j+1]
				rng.Shuffle(int(hi-lo), func(x, y int) {
					a.RowIdx[lo+int64(x)], a.RowIdx[lo+int64(y)] = a.RowIdx[lo+int64(y)], a.RowIdx[lo+int64(x)]
					a.Val[lo+int64(x)], a.Val[lo+int64(y)] = a.Val[lo+int64(y)], a.Val[lo+int64(x)]
				})
			}
		}
		lo := Index(rng.Intn(int(m) + 1))
		hi := lo + Index(rng.Intn(int(m-lo)+1))
		got := RowSlice(a, lo, hi)
		want, err := ExtractSubmatrix(a, lo, hi, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows != want.NumRows || got.NumCols != want.NumCols || got.NNZ() != want.NNZ() {
			t.Fatalf("slice [%d,%d): got %v want %v", lo, hi, got, want)
		}
		for k := range got.RowIdx {
			if got.RowIdx[k] != want.RowIdx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("slice [%d,%d): entry %d = (%d,%g), want (%d,%g)",
					lo, hi, k, got.RowIdx[k], got.Val[k], want.RowIdx[k], want.Val[k])
			}
		}
		for j := range got.ColPtr {
			if got.ColPtr[j] != want.ColPtr[j] {
				t.Fatalf("slice [%d,%d): colptr[%d] = %d, want %d", lo, hi, j, got.ColPtr[j], want.ColPtr[j])
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("slice fails Validate: %v", err)
		}
	}
}

// TestRowSliceAgreesWithRowSplit pins the sharding decomposition to the
// baselines' intra-process one: piece w of RowSplit(a, p) holds exactly
// the entries of RowSlice(a, bounds[w], bounds[w+1]).
func TestRowSliceAgreesWithRowSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, p := range []int{1, 2, 3, 7} {
		a := randomCSC(t, rng, 53, 41, 300)
		pieces := RowSplit(a, p)
		bounds := PieceBounds(a.NumRows, p)
		for w, d := range pieces {
			s := RowSlice(a, bounds[w], bounds[w+1])
			if s.NumRows != d.NumRows || s.NNZ() != d.NNZ() {
				t.Fatalf("p=%d piece %d: slice %v vs split nnz=%d rows=%d", p, w, s, d.NNZ(), d.NumRows)
			}
			for j := Index(0); j < a.NumCols; j++ {
				sr, sv := s.Col(j)
				dr, dv := d.Col(j)
				if len(sr) != len(dr) {
					t.Fatalf("p=%d piece %d col %d: slice %d entries, split %d", p, w, j, len(sr), len(dr))
				}
				for k := range sr {
					if sr[k] != dr[k] || sv[k] != dv[k] {
						t.Fatalf("p=%d piece %d col %d entry %d: slice (%d,%g) split (%d,%g)",
							p, w, j, k, sr[k], sv[k], dr[k], dv[k])
					}
				}
			}
		}
	}
}

// TestRowSplitEdgeCases covers the degenerate decompositions the
// sharded layer must survive: more pieces than rows (empty pieces),
// single-row matrices, and a single piece.
func TestRowSplitEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	t.Run("more pieces than rows", func(t *testing.T) {
		a := randomCSC(t, rng, 3, 10, 20)
		pieces := RowSplit(a, 8)
		if len(pieces) != 8 {
			t.Fatalf("got %d pieces, want 8", len(pieces))
		}
		var nnz int64
		var rows Index
		empty := 0
		for _, d := range pieces {
			nnz += d.NNZ()
			rows += d.NumRows
			if d.NumRows == 0 {
				if d.NNZ() != 0 {
					t.Fatalf("empty-row piece holds %d entries", d.NNZ())
				}
				empty++
			}
		}
		if nnz != a.NNZ() || rows != a.NumRows {
			t.Fatalf("pieces cover nnz=%d rows=%d, want %d/%d", nnz, rows, a.NNZ(), a.NumRows)
		}
		if empty < 5 {
			t.Fatalf("8-way split of 3 rows produced only %d empty pieces", empty)
		}
		bounds := PieceBounds(a.NumRows, 8)
		for w, d := range pieces {
			if d.NumRows != bounds[w+1]-bounds[w] {
				t.Fatalf("piece %d rows %d, bounds say %d", w, d.NumRows, bounds[w+1]-bounds[w])
			}
			if s := RowSlice(a, bounds[w], bounds[w+1]); s.NNZ() != d.NNZ() {
				t.Fatalf("piece %d: slice nnz %d, split nnz %d", w, s.NNZ(), d.NNZ())
			}
		}
	})

	t.Run("single-row matrix", func(t *testing.T) {
		a := randomCSC(t, rng, 1, 12, 8)
		for _, p := range []int{1, 2, 5} {
			pieces := RowSplit(a, p)
			if got := pieces[0].NNZ(); got != a.NNZ() {
				t.Fatalf("p=%d: first piece holds %d of %d entries", p, got, a.NNZ())
			}
			for w := 1; w < p; w++ {
				if pieces[w].NumRows != 0 || pieces[w].NNZ() != 0 {
					t.Fatalf("p=%d piece %d not empty: rows=%d nnz=%d", p, w, pieces[w].NumRows, pieces[w].NNZ())
				}
			}
		}
	})

	t.Run("single piece is whole matrix", func(t *testing.T) {
		a := randomCSC(t, rng, 17, 9, 60)
		s := RowSlice(a, 0, a.NumRows)
		if !s.Equal(a) {
			t.Fatalf("RowSlice(a, 0, m) differs from a")
		}
	})

	t.Run("clamped and inverted ranges", func(t *testing.T) {
		a := randomCSC(t, rng, 10, 10, 30)
		if s := RowSlice(a, -5, 100); !s.Equal(a) {
			t.Fatalf("clamped full slice differs from a")
		}
		if s := RowSlice(a, 7, 3); s.NumRows != 0 || s.NNZ() != 0 {
			t.Fatalf("inverted range not empty: %v", s)
		}
	})
}

// TestBitVecSliceOrAt round-trips a bitvector through per-piece Slice
// and offset OrAt — the mask scatter and bitmap gather of the sharded
// serving path.
func TestBitVecSliceOrAt(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []Index{1, 63, 64, 65, 300} {
		b := NewBitVec(n)
		x := NewSpVec(n, 0)
		for i := Index(0); i < n; i++ {
			if rng.Intn(3) == 0 {
				x.Append(i, float64(i)+0.5)
			}
		}
		b.SetFrom(x)
		for _, p := range []int{1, 2, 3, 9} {
			bounds := PieceBounds(n, p)
			re := NewBitVec(n)
			total := 0
			for w := 0; w < p; w++ {
				piece := b.Slice(bounds[w], bounds[w+1])
				if piece.N != bounds[w+1]-bounds[w] {
					t.Fatalf("n=%d p=%d piece %d dim %d, want %d", n, p, w, piece.N, bounds[w+1]-bounds[w])
				}
				total += piece.Count()
				re.OrAt(piece, bounds[w])
			}
			if total != b.Count() {
				t.Fatalf("n=%d p=%d: pieces count %d, want %d", n, p, total, b.Count())
			}
			if re.Count() != b.Count() {
				t.Fatalf("n=%d p=%d: reassembled count %d, want %d", n, p, re.Count(), b.Count())
			}
			for i := Index(0); i < n; i++ {
				gv, gok := re.Get(i)
				wv, wok := b.Get(i)
				if gok != wok || gv != wv {
					t.Fatalf("n=%d p=%d row %d: got (%g,%v) want (%g,%v)", n, p, i, gv, gok, wv, wok)
				}
			}
		}
	}
}
