package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func vecOf(n Index, pairs ...float64) *SpVec {
	v := NewSpVec(n, len(pairs)/2)
	for k := 0; k+1 < len(pairs); k += 2 {
		v.Append(Index(pairs[k]), pairs[k+1])
	}
	return v
}

func TestEwiseAdd(t *testing.T) {
	a := vecOf(10, 1, 2, 5, 3)
	b := vecOf(10, 5, 4, 7, 1)
	out := EwiseAdd(a, b, nil)
	want := vecOf(10, 1, 2, 5, 7, 7, 1)
	if !out.EqualValues(want, 0) {
		t.Errorf("EwiseAdd = %v %v", out.Ind, out.Val)
	}
	if !out.Sorted {
		t.Error("EwiseAdd output not sorted")
	}
}

func TestEwiseAddCommutes(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := Index(r.Intn(100) + 1)
		a := randomVec(r, n)
		b := randomVec(r, n)
		ab := EwiseAdd(a, b, nil)
		ba := EwiseAdd(b, a, nil)
		return ab.EqualValues(ba, 1e-12)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomVec(r *rand.Rand, n Index) *SpVec {
	v := NewSpVec(n, 0)
	for i := Index(0); i < n; i++ {
		if r.Float64() < 0.3 {
			v.Append(i, r.NormFloat64())
		}
	}
	return v
}

func TestEwiseMult(t *testing.T) {
	a := vecOf(10, 1, 2, 5, 3, 8, 2)
	b := vecOf(10, 5, 4, 8, 0.5, 9, 9)
	out := EwiseMult(a, b, nil)
	want := vecOf(10, 5, 12, 8, 1)
	if !out.EqualValues(want, 1e-12) {
		t.Errorf("EwiseMult = %v %v", out.Ind, out.Val)
	}
}

func TestEwiseDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	EwiseAdd(NewSpVec(3, 0), NewSpVec(4, 0), nil)
}

func TestFilterAndMask(t *testing.T) {
	v := vecOf(10, 0, 1, 3, 2, 6, 3, 9, 4)
	even := Filter(v, func(i Index, _ float64) bool { return i%2 == 0 })
	if even.NNZ() != 2 || even.Ind[0] != 0 || even.Ind[1] != 6 {
		t.Errorf("Filter = %v", even.Ind)
	}
	if !even.Sorted {
		t.Error("filter should preserve sortedness")
	}

	mask := NewBitVec(10)
	mv := vecOf(10, 3, 1, 9, 1)
	mask.SetFrom(mv)
	kept := FilterMask(v, mask, false)
	if kept.NNZ() != 2 || kept.Ind[0] != 3 || kept.Ind[1] != 9 {
		t.Errorf("FilterMask = %v", kept.Ind)
	}
	dropped := FilterMask(v, mask, true)
	if dropped.NNZ() != 2 || dropped.Ind[0] != 0 || dropped.Ind[1] != 6 {
		t.Errorf("FilterMask complement = %v", dropped.Ind)
	}
}

func TestReduceAndScale(t *testing.T) {
	v := vecOf(10, 1, 2, 5, 3, 7, 4)
	sum := Reduce(v, 0, func(a, b float64) float64 { return a + b })
	if sum != 9 {
		t.Errorf("Reduce = %g", sum)
	}
	maxv := Reduce(v, v.Val[0], func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
	if maxv != 4 {
		t.Errorf("max Reduce = %g", maxv)
	}
	Scale(v, 2)
	if v.Val[0] != 4 || v.Val[2] != 8 {
		t.Errorf("Scale = %v", v.Val)
	}
}
