package sparse

import "fmt"

// PermuteRows returns P·A where P is the permutation taking row i to
// row perm[i]. Relabeling rows changes which bucket every entry lands
// in, so this is the tool behind the bucket-invariance property tests
// (the algorithm's result must be equivariant, paper §II-A's model
// places no constraints on row order).
func PermuteRows(a *CSC, perm []Index) (*CSC, error) {
	if len(perm) != int(a.NumRows) {
		return nil, fmt.Errorf("sparse: permutation length %d != rows %d", len(perm), a.NumRows)
	}
	if err := validatePermutation(perm); err != nil {
		return nil, err
	}
	out := &CSC{
		NumRows: a.NumRows,
		NumCols: a.NumCols,
		ColPtr:  append([]int64(nil), a.ColPtr...),
		RowIdx:  make([]Index, a.NNZ()),
		Val:     make([]float64, a.NNZ()),
	}
	for k, i := range a.RowIdx {
		out.RowIdx[k] = perm[i]
		out.Val[k] = a.Val[k]
	}
	// Restore sorted columns by re-sorting each column's entries.
	out.sortColumns()
	return out, nil
}

// PermuteCols returns A·Pᵀ, relabeling column j to perm[j].
func PermuteCols(a *CSC, perm []Index) (*CSC, error) {
	if len(perm) != int(a.NumCols) {
		return nil, fmt.Errorf("sparse: permutation length %d != cols %d", len(perm), a.NumCols)
	}
	if err := validatePermutation(perm); err != nil {
		return nil, err
	}
	out := &CSC{
		NumRows:    a.NumRows,
		NumCols:    a.NumCols,
		ColPtr:     make([]int64, a.NumCols+1),
		RowIdx:     make([]Index, a.NNZ()),
		Val:        make([]float64, a.NNZ()),
		SortedCols: a.SortedCols,
	}
	// Column j of the output is column inv[j] of the input.
	inv := make([]Index, len(perm))
	for j, pj := range perm {
		inv[pj] = Index(j)
	}
	var pos int64
	for j := Index(0); j < a.NumCols; j++ {
		src := inv[j]
		rows, vals := a.Col(src)
		out.ColPtr[j] = pos
		copy(out.RowIdx[pos:], rows)
		copy(out.Val[pos:], vals)
		pos += int64(len(rows))
	}
	out.ColPtr[a.NumCols] = pos
	return out, nil
}

// PermuteSymmetric returns P·A·Pᵀ — the simultaneous relabeling of an
// adjacency matrix's vertices.
func PermuteSymmetric(a *CSC, perm []Index) (*CSC, error) {
	pr, err := PermuteRows(a, perm)
	if err != nil {
		return nil, err
	}
	return PermuteCols(pr, perm)
}

func validatePermutation(perm []Index) error {
	seen := make([]bool, len(perm))
	for k, p := range perm {
		if p < 0 || int(p) >= len(perm) {
			return fmt.Errorf("sparse: permutation value %d out of range at %d", p, k)
		}
		if seen[p] {
			return fmt.Errorf("sparse: duplicate permutation value %d", p)
		}
		seen[p] = true
	}
	return nil
}

// sortColumns restores increasing row order within every column
// (insertion sort per column: post-permutation columns are small and
// nearly sorted is not guaranteed, but columns are short in the sparse
// regime this library targets).
func (a *CSC) sortColumns() {
	for j := Index(0); j < a.NumCols; j++ {
		lo, hi := a.ColPtr[j], a.ColPtr[j+1]
		for k := lo + 1; k < hi; k++ {
			ri, v := a.RowIdx[k], a.Val[k]
			p := k - 1
			for p >= lo && a.RowIdx[p] > ri {
				a.RowIdx[p+1] = a.RowIdx[p]
				a.Val[p+1] = a.Val[p]
				p--
			}
			a.RowIdx[p+1] = ri
			a.Val[p+1] = v
		}
	}
	a.SortedCols = true
}

// ExtractColumns returns the m×len(cols) submatrix keeping the selected
// columns in the given order (columns may repeat).
func ExtractColumns(a *CSC, cols []Index) (*CSC, error) {
	var nnz int64
	for _, j := range cols {
		if j < 0 || j >= a.NumCols {
			return nil, fmt.Errorf("sparse: column %d out of range", j)
		}
		nnz += a.ColLen(j)
	}
	out := &CSC{
		NumRows:    a.NumRows,
		NumCols:    Index(len(cols)),
		ColPtr:     make([]int64, len(cols)+1),
		RowIdx:     make([]Index, nnz),
		Val:        make([]float64, nnz),
		SortedCols: a.SortedCols,
	}
	var pos int64
	for k, j := range cols {
		rows, vals := a.Col(j)
		out.ColPtr[k] = pos
		copy(out.RowIdx[pos:], rows)
		copy(out.Val[pos:], vals)
		pos += int64(len(rows))
	}
	out.ColPtr[len(cols)] = pos
	return out, nil
}

// ExtractSubmatrix returns A(r0:r1, c0:c1) with local indices (the
// half-open ranges use global ids).
func ExtractSubmatrix(a *CSC, r0, r1, c0, c1 Index) (*CSC, error) {
	if r0 < 0 || r1 > a.NumRows || r0 > r1 || c0 < 0 || c1 > a.NumCols || c0 > c1 {
		return nil, fmt.Errorf("sparse: submatrix ranges [%d,%d)×[%d,%d) invalid for %d×%d",
			r0, r1, c0, c1, a.NumRows, a.NumCols)
	}
	out := &CSC{
		NumRows:    r1 - r0,
		NumCols:    c1 - c0,
		ColPtr:     make([]int64, c1-c0+1),
		SortedCols: a.SortedCols,
	}
	for j := c0; j < c1; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			if i >= r0 && i < r1 {
				out.RowIdx = append(out.RowIdx, i-r0)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.ColPtr[j-c0+1] = int64(len(out.RowIdx))
	}
	return out, nil
}
