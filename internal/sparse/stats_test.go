package sparse

import "testing"

// pathGraph builds the adjacency matrix of an n-vertex path.
func pathGraph(t *testing.T, n Index) *CSC {
	t.Helper()
	tr := NewTriples(n, n, 2*int(n))
	for i := Index(0); i+1 < n; i++ {
		tr.AppendSymmetric(i, i+1, 1)
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBFSLevelsPath(t *testing.T) {
	a := pathGraph(t, 10)
	levels, ecc, last := BFSLevels(a, 3)
	if levels[3] != 0 || levels[0] != 3 || levels[9] != 6 {
		t.Errorf("levels wrong: %v", levels)
	}
	if ecc != 6 || last != 9 {
		t.Errorf("ecc=%d last=%d, want 6, 9", ecc, last)
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	tr := NewTriples(5, 5, 2)
	tr.AppendSymmetric(0, 1, 1)
	// vertices 2,3,4 isolated
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	levels, _, _ := BFSLevels(a, 0)
	if levels[1] != 1 || levels[2] != -1 || levels[4] != -1 {
		t.Errorf("levels: %v", levels)
	}
}

func TestPseudoDiameterPath(t *testing.T) {
	a := pathGraph(t, 50)
	// Double sweep from any interior vertex finds the true diameter of a
	// path.
	if pd := PseudoDiameter(a, 25); pd != 49 {
		t.Errorf("pseudo-diameter = %d, want 49", pd)
	}
}

func TestComputeStats(t *testing.T) {
	a := pathGraph(t, 10)
	s := ComputeStats("path10", a, 0)
	if s.Vertices != 10 || s.Edges != 18 {
		t.Errorf("stats: %+v", s)
	}
	if s.MaxDegree != 2 || s.PseudoDiameter != 9 {
		t.Errorf("stats: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	tr := NewTriples(8, 4, 8)
	// col0: 1 entry, col1: 2, col2: 5, col3: empty
	tr.Append(0, 0, 1)
	tr.Append(0, 1, 1)
	tr.Append(1, 1, 1)
	for i := Index(0); i < 5; i++ {
		tr.Append(i, 2, 1)
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	bins, empty := DegreeHistogram(a)
	if empty != 1 {
		t.Errorf("empty = %d, want 1", empty)
	}
	// deg 1 → bin 0; deg 2 → bin 1; deg 5 → bin 2.
	if len(bins) != 3 || bins[0] != 1 || bins[1] != 1 || bins[2] != 1 {
		t.Errorf("bins = %v", bins)
	}
}
