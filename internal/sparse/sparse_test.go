package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSmallCSC(t *testing.T) *CSC {
	t.Helper()
	tr := NewTriples(4, 3, 6)
	tr.Append(0, 0, 1)
	tr.Append(2, 0, 2)
	tr.Append(3, 1, 3)
	tr.Append(1, 2, 4)
	tr.Append(3, 2, 5)
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTriplesValidate(t *testing.T) {
	tr := NewTriples(2, 2, 1)
	tr.Append(0, 0, 1)
	if err := tr.Validate(); err != nil {
		t.Errorf("valid triples rejected: %v", err)
	}
	tr.Append(2, 0, 1)
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range row accepted")
	}
	tr2 := NewTriples(2, 2, 1)
	tr2.Append(0, 5, 1)
	if err := tr2.Validate(); err == nil {
		t.Error("out-of-range col accepted")
	}
}

func TestTriplesSumDuplicates(t *testing.T) {
	tr := NewTriples(3, 3, 4)
	tr.Append(1, 1, 2)
	tr.Append(1, 1, 3)
	tr.Append(0, 2, 1)
	tr.Append(1, 1, 5)
	tr.SumDuplicates(nil)
	if tr.Len() != 2 {
		t.Fatalf("got %d triples, want 2", tr.Len())
	}
	// Sorted by (col, row): (1,1)=10 then (0,2)=1.
	if tr.Row[0] != 1 || tr.Col[0] != 1 || tr.Val[0] != 10 {
		t.Errorf("dup sum: got (%d,%d,%g)", tr.Row[0], tr.Col[0], tr.Val[0])
	}
}

func TestCSCBasics(t *testing.T) {
	a := buildSmallCSC(t)
	if a.NNZ() != 5 {
		t.Errorf("nnz = %d, want 5", a.NNZ())
	}
	if a.NZC() != 3 {
		t.Errorf("nzc = %d, want 3", a.NZC())
	}
	if got := a.At(2, 0); got != 2 {
		t.Errorf("At(2,0) = %g, want 2", got)
	}
	if got := a.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %g, want 0", got)
	}
	rows, vals := a.Col(2)
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 3 || vals[0] != 4 || vals[1] != 5 {
		t.Errorf("Col(2) = %v %v", rows, vals)
	}
	if !a.SortedCols {
		t.Error("CSC built from triples should have sorted columns")
	}
}

func TestCSCDuplicateSummation(t *testing.T) {
	tr := NewTriples(3, 3, 3)
	tr.Append(1, 1, 2)
	tr.Append(1, 1, 3)
	tr.Append(1, 1, -1)
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 1 || a.At(1, 1) != 4 {
		t.Errorf("duplicates not summed: nnz=%d val=%g", a.NNZ(), a.At(1, 1))
	}
}

func TestCSCEmptyMatrix(t *testing.T) {
	tr := NewTriples(0, 0, 0)
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 0 || a.NZC() != 0 {
		t.Error("empty matrix should have no entries")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Index(r.Intn(50) + 1)
		n := Index(r.Intn(50) + 1)
		tr := NewTriples(m, n, 100)
		for k := 0; k < 100; k++ {
			tr.Append(Index(r.Intn(int(m))), Index(r.Intn(int(n))), r.Float64())
		}
		a, err := NewCSCFromTriples(tr)
		if err != nil {
			return false
		}
		tt := a.Transpose().Transpose()
		return a.Equal(tt)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestTransposeEntries(t *testing.T) {
	a := buildSmallCSC(t)
	at := a.Transpose()
	if at.NumRows != a.NumCols || at.NumCols != a.NumRows {
		t.Fatalf("transpose dims %dx%d", at.NumRows, at.NumCols)
	}
	for j := Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			if got := at.At(j, i); got != vals[k] {
				t.Errorf("At^T(%d,%d) = %g, want %g", j, i, got, vals[k])
			}
		}
	}
}

func TestDCSCLookup(t *testing.T) {
	a := buildSmallCSC(t)
	d := NewDCSCFromCSC(a)
	if d.NZC() != 3 {
		t.Fatalf("nzc = %d, want 3", d.NZC())
	}
	for j := Index(0); j < a.NumCols; j++ {
		rows, vals := d.Col(j)
		wantRows, wantVals := a.Col(j)
		if len(rows) != len(wantRows) {
			t.Fatalf("col %d: len %d want %d", j, len(rows), len(wantRows))
		}
		for k := range rows {
			if rows[k] != wantRows[k] || vals[k] != wantVals[k] {
				t.Errorf("col %d entry %d mismatch", j, k)
			}
		}
	}
	if _, ok := d.FindCol(999); ok {
		t.Error("found nonexistent column")
	}
}

func TestDCSCSkipsEmptyColumns(t *testing.T) {
	tr := NewTriples(4, 100, 2)
	tr.Append(1, 3, 1)
	tr.Append(2, 97, 2)
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDCSCFromCSC(a)
	if d.NZC() != 2 {
		t.Errorf("nzc = %d, want 2", d.NZC())
	}
	if rows, _ := d.Col(50); rows != nil {
		t.Error("empty column returned entries")
	}
	if rows, _ := d.Col(97); len(rows) != 1 || rows[0] != 2 {
		t.Errorf("col 97 = %v", rows)
	}
}

func TestRowSplitConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := Index(rng.Intn(200) + 1)
		n := Index(rng.Intn(200) + 1)
		tr := NewTriples(m, n, 500)
		for k := 0; k < 500; k++ {
			tr.Append(Index(rng.Intn(int(m))), Index(rng.Intn(int(n))), rng.Float64())
		}
		a, err := NewCSCFromTriples(tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 7, 16} {
			pieces := RowSplit(a, p)
			var total int64
			for w, d := range pieces {
				total += d.NNZ()
				// Every local row must be within the piece's range.
				bounds := PieceBounds(m, p)
				for _, li := range d.IR {
					g := li + d.RowOffset
					if g < bounds[w] || g >= bounds[w+1] {
						t.Fatalf("p=%d piece %d: global row %d outside [%d,%d)",
							p, w, g, bounds[w], bounds[w+1])
					}
				}
			}
			if total != a.NNZ() {
				t.Fatalf("p=%d: pieces hold %d entries, matrix has %d", p, total, a.NNZ())
			}
			// Entry-level reconstruction.
			for j := Index(0); j < n; j++ {
				wantRows, wantVals := a.Col(j)
				var gotRows []Index
				var gotVals []float64
				for _, d := range pieces {
					rows, vals := d.Col(j)
					for k, li := range rows {
						gotRows = append(gotRows, li+d.RowOffset)
						gotVals = append(gotVals, vals[k])
					}
				}
				if len(gotRows) != len(wantRows) {
					t.Fatalf("p=%d col %d: %d entries, want %d", p, j, len(gotRows), len(wantRows))
				}
				for k := range wantRows {
					if gotRows[k] != wantRows[k] || gotVals[k] != wantVals[k] {
						t.Fatalf("p=%d col %d entry %d mismatch", p, j, k)
					}
				}
			}
		}
	}
}

func TestSelfLoops(t *testing.T) {
	tr := NewTriples(4, 4, 4)
	tr.Append(0, 0, 1)
	tr.Append(1, 0, 2)
	tr.Append(2, 2, 3)
	tr.Append(3, 2, 4)
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasSelfLoops() {
		t.Fatal("self loops not detected")
	}
	s := StripSelfLoops(a)
	if s.HasSelfLoops() {
		t.Fatal("strip left self loops")
	}
	if s.NNZ() != 2 || s.At(1, 0) != 2 || s.At(3, 2) != 4 {
		t.Errorf("stripped matrix wrong: nnz=%d", s.NNZ())
	}
	// ColPtr still consistent for empty and nonempty columns.
	if s.ColLen(0) != 1 || s.ColLen(1) != 0 || s.ColLen(2) != 1 || s.ColLen(3) != 0 {
		t.Error("column lengths wrong after strip")
	}
	// A loop-free matrix is returned unchanged (same object).
	if again := StripSelfLoops(s); again != s {
		t.Error("loop-free matrix should be returned as-is")
	}
}

func TestPieceBoundsMatchPieceOf(t *testing.T) {
	for _, m := range []Index{1, 2, 7, 10, 64, 101} {
		for _, p := range []int{1, 2, 3, 8, 13} {
			bounds := PieceBounds(m, p)
			if bounds[0] != 0 || bounds[p] != m {
				t.Fatalf("m=%d p=%d: bounds endpoints %v", m, p, bounds)
			}
			for i := Index(0); i < m; i++ {
				w := pieceOf(i, m, p)
				if i < bounds[w] || i >= bounds[w+1] {
					t.Errorf("m=%d p=%d: row %d assigned to piece %d but bounds [%d,%d)",
						m, p, i, w, bounds[w], bounds[w+1])
				}
			}
		}
	}
}
