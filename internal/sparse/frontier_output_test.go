package sparse

import (
	"sync"
	"testing"
)

// fillOutput runs a minimal native output pass: list written, bitmap
// scattered through SetRangeFrom over the full row range.
func fillOutput(f *Frontier, n Index, ind []Index, val []float64) {
	list := f.BeginOutput()
	bits := f.OutputBits(n)
	list.Reset(n)
	for k := range ind {
		list.Append(ind[k], val[k])
	}
	bits.SetRangeFrom(ind, val, 0, n)
	f.FinishOutput(true)
}

func TestFrontierNativeOutputBitmap(t *testing.T) {
	ResetFrontierConversions()
	f := NewOutputFrontier(200)
	fillOutput(f, 200, []Index{3, 64, 65, 199}, []float64{1, 2, 3, 4})

	if !f.HasBits() {
		t.Fatal("native output did not mark the bitmap valid")
	}
	if f.Materialize() {
		t.Fatal("Materialize converted despite a native output bitmap")
	}
	bits := f.Bits()
	if bits.Count() != 4 {
		t.Fatalf("bitmap count = %d, want 4", bits.Count())
	}
	for k, i := range []Index{3, 64, 65, 199} {
		v, ok := bits.Get(i)
		if !ok || v != float64(k+1) {
			t.Fatalf("bits.Get(%d) = %v,%v", i, v, ok)
		}
	}
	if conv, _ := FrontierConversions(); conv != 0 {
		t.Fatalf("native output still counted %d conversions", conv)
	}
	outConv, native := FrontierOutputStats()
	if outConv != 0 || native != 1 {
		t.Fatalf("output stats = (%d conv, %d native), want (0, 1)", outConv, native)
	}
}

func TestFrontierLazyOutputCountsOutputConversion(t *testing.T) {
	ResetFrontierConversions()
	f := NewOutputFrontier(100)
	list := f.BeginOutput()
	list.Reset(100)
	list.Append(7, 1)
	f.FinishOutput(false)

	if !f.IsOutput() {
		t.Fatal("frontier not marked as output")
	}
	if f.HasBits() {
		t.Fatal("lazy output claims a valid bitmap")
	}
	if !f.Materialize() {
		t.Fatal("Materialize did not convert")
	}
	outConv, native := FrontierOutputStats()
	if outConv != 1 || native != 0 {
		t.Fatalf("output stats = (%d conv, %d native), want (1, 0)", outConv, native)
	}
	// A caller-provided list clears the output provenance.
	f.SetList(NewSpVec(100, 0))
	if f.IsOutput() {
		t.Fatal("SetList kept the output mark")
	}
}

func TestFrontierUpdateValuesKeepsBitmap(t *testing.T) {
	f := NewOutputFrontier(64)
	fillOutput(f, 64, []Index{5, 9}, []float64{100, 200})
	f.UpdateValues(func(i Index, _ float64) float64 { return float64(i) })
	if !f.HasBits() {
		t.Fatal("UpdateValues dropped the bitmap")
	}
	if v, _ := f.Bits().Get(5); v != 5 {
		t.Fatalf("bitmap value not rewritten: got %g", v)
	}
	if f.List().Val[1] != 9 {
		t.Fatalf("list value not rewritten: got %g", f.List().Val[1])
	}
}

func TestFrontierRefineDropsBitmapAndFilters(t *testing.T) {
	f := NewOutputFrontier(64)
	fillOutput(f, 64, []Index{1, 2, 3}, []float64{1, 2, 3})
	f.Refine(func(i Index, v float64) (float64, bool) { return v * 10, i != 2 })
	if f.HasBits() {
		t.Fatal("Refine kept a bitmap for a shrunken support")
	}
	if f.NNZ() != 2 || f.List().Ind[1] != 3 || f.List().Val[1] != 30 {
		t.Fatalf("refined list wrong: %v %v", f.List().Ind, f.List().Val)
	}
	// The dropped bitmap must have been cleared from the OLD support:
	// re-materializing reflects only the refined entries.
	bits := f.Bits()
	if bits.Test(2) || bits.Count() != 2 {
		t.Fatalf("stale bit survived Refine (count=%d)", bits.Count())
	}
}

func TestBitVecSetRangeFromConcurrentBoundaries(t *testing.T) {
	// Two adjacent ranges sharing a 64-bit word: [0,70) and [70,200).
	// Concurrent fills must not lose bits in word 1 (rows 64..127).
	const n = 200
	for iter := 0; iter < 100; iter++ {
		b := NewBitVec(n)
		left := []Index{0, 63, 64, 69}
		right := []Index{70, 71, 127, 199}
		vals := []float64{1, 1, 1, 1}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); b.SetRangeFrom(left, vals, 0, 70) }()
		go func() { defer wg.Done(); b.SetRangeFrom(right, vals, 70, n) }()
		wg.Wait()
		for _, i := range append(append([]Index{}, left...), right...) {
			if !b.Test(i) {
				t.Fatalf("iter %d: bit %d lost", iter, i)
			}
		}
	}
}

func TestFrontierPoolGetOutputRecycles(t *testing.T) {
	p := NewFrontierPool(128)
	f := p.GetOutput()
	fillOutput(f, 128, []Index{10, 90}, []float64{1, 2})
	list := f.List()
	f.Release()

	g := p.GetOutput()
	if g.NNZ() != 0 {
		t.Fatal("recycled output frontier not empty")
	}
	if g.HasBits() {
		t.Fatal("recycled output frontier kept a valid bitmap")
	}
	// Bits were erased cheaply, not left set.
	if g.Bits().Count() != 0 {
		t.Fatalf("recycled bitmap has %d stale bits", g.Bits().Count())
	}
	_ = list // the list storage itself may or may not be the same object; behavior above is what matters
}
