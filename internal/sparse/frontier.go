package sparse

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Frontier is a sparse vector carried in whichever representation the
// consuming engine wants: the list format of paper §II-C (SpVec, the
// vector-driven algorithms' native input) or GraphMat's bitvector
// format (BitVec, the matrix-driven algorithm's native input). The
// list is authoritative; the bitmap is materialized lazily, once, on
// first demand, and then shared by every bitmap consumer of the same
// frontier — so a BFS level probed by both sides of a hybrid engine
// pays for at most one list→bitmap conversion, and callers that only
// ever feed list-format engines never pay for the bitmap at all.
//
// Reading a Frontier concurrently is safe — Materialize/Bits
// serialize the one-time conversion internally, so several engines
// (or one engine's concurrent calls) may share a frontier. Mutation
// (SetList, Release) requires exclusive access.
type Frontier struct {
	list *SpVec
	// mu serializes the lazy bitmap materialization; it is taken once
	// per Bits/Materialize call, never per entry.
	mu   sync.Mutex
	bits *BitVec
	// bitsValid marks that bits currently mirrors list. When a pooled
	// frontier is released, the set bits are erased in O(nnz) and the
	// flag cleared, so the O(n) bitmap allocation is reused without an
	// O(n) wipe.
	bitsValid bool
	home      *FrontierPool
}

// NewFrontier wraps a list-format vector as a frontier with no pool
// backing; the bitmap, if ever demanded, is allocated privately.
func NewFrontier(x *SpVec) *Frontier {
	if x == nil {
		panic("sparse: NewFrontier with nil vector")
	}
	return &Frontier{list: x}
}

// N returns the logical dimension.
func (f *Frontier) N() Index { return f.list.N }

// NNZ returns the number of stored entries.
func (f *Frontier) NNZ() int { return f.list.NNZ() }

// List returns the list-format representation (always present).
func (f *Frontier) List() *SpVec { return f.list }

// HasBits reports whether the bitmap representation is currently
// materialized, without triggering a conversion.
func (f *Frontier) HasBits() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bitsValid
}

// Materialize ensures the bitmap representation exists and reports
// whether a list→bitmap conversion actually ran — false means a
// previous consumer already paid for it. Engines use the return value
// to attribute the O(nnz) conversion cost in their work counters.
// Concurrent callers serialize on the frontier's lock; exactly one
// performs the conversion.
func (f *Frontier) Materialize() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bitsValid {
		return false
	}
	if f.bits == nil || f.bits.N < f.list.N {
		f.bits = NewBitVec(f.list.N)
	}
	f.bits.SetFrom(f.list)
	f.bitsValid = true
	frontierConversions.Add(1)
	frontierConvertedEntries.Add(int64(f.list.NNZ()))
	return true
}

// Bits returns the bitmap representation, materializing it on first
// use.
func (f *Frontier) Bits() *BitVec {
	f.Materialize()
	return f.bits
}

// SetList replaces the frontier's contents with a new list vector,
// erasing any stale bitmap state in O(nnz(old)) so the backing bitmap
// can be rebuilt (or never built) for the new contents.
func (f *Frontier) SetList(x *SpVec) {
	if x == nil {
		panic("sparse: Frontier.SetList with nil vector")
	}
	f.dropBits()
	f.list = x
}

// dropBits erases the materialized bitmap cheaply (O(nnz), not O(n)).
func (f *Frontier) dropBits() {
	if f.bitsValid {
		f.bits.ClearFrom(f.list)
		f.bitsValid = false
	}
}

// Release returns a pool-backed frontier to its home pool, erasing the
// bitmap in O(nnz). It is a no-op for frontiers built with NewFrontier.
// The frontier must not be used after Release.
func (f *Frontier) Release() {
	if f.home != nil {
		f.home.put(f)
	}
}

// FrontierPool recycles frontiers — most importantly their O(n)
// bitmaps — for one vector dimension, the per-matrix analogue of the
// engines' workspace pools: an engine (or algorithm) that wraps each
// incoming list vector in a pooled frontier pays one bitmap allocation
// per concurrent call ever, not one per call, and the erase on release
// is O(nnz) thanks to BitVec.ClearFrom. The pool is safe for
// concurrent use.
type FrontierPool struct {
	n    Index
	pool sync.Pool // *Frontier
}

// NewFrontierPool returns a pool of frontiers of dimension n.
func NewFrontierPool(n Index) *FrontierPool {
	p := &FrontierPool{n: n}
	p.pool.New = func() any {
		return &Frontier{bits: NewBitVec(n), home: p}
	}
	return p
}

// Wrap borrows a pooled frontier holding x. The vector's dimension
// must match the pool's.
func (p *FrontierPool) Wrap(x *SpVec) *Frontier {
	if x.N != p.n {
		panic(fmt.Sprintf("sparse: FrontierPool.Wrap dimension mismatch: pool %d, vector %d", p.n, x.N))
	}
	f := p.pool.Get().(*Frontier)
	f.list = x
	return f
}

// put erases the frontier's bitmap and returns it to the pool.
func (p *FrontierPool) put(f *Frontier) {
	f.dropBits()
	f.list = nil
	p.pool.Put(f)
}

// Process-wide conversion instrumentation: every list→bitmap
// materialization is counted, with the number of entries scattered.
// Benchmarks and tests read these to verify that frontier sharing
// actually eliminates conversions (e.g. that a hybrid engine's
// matrix-driven calls reuse one bitmap per level).
var (
	frontierConversions      atomic.Int64
	frontierConvertedEntries atomic.Int64
)

// FrontierConversions returns the process-wide count of list→bitmap
// conversions and the total entries converted since process start (or
// the last ResetFrontierConversions).
func FrontierConversions() (conversions, entries int64) {
	return frontierConversions.Load(), frontierConvertedEntries.Load()
}

// ResetFrontierConversions zeroes the conversion instrumentation.
func ResetFrontierConversions() {
	frontierConversions.Store(0)
	frontierConvertedEntries.Store(0)
}
