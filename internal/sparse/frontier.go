package sparse

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Frontier is a sparse vector carried in whichever representation the
// consuming engine wants: the list format of paper §II-C (SpVec, the
// vector-driven algorithms' native input) or GraphMat's bitvector
// format (BitVec, the matrix-driven algorithm's native input). The
// list is authoritative; the bitmap is materialized lazily, once, on
// first demand, and then shared by every bitmap consumer of the same
// frontier — so a BFS level probed by both sides of a hybrid engine
// pays for at most one list→bitmap conversion, and callers that only
// ever feed list-format engines never pay for the bitmap at all.
//
// A Frontier is also the engines' output format: an engine writes its
// result into a frontier through BeginOutput/OutputBits/FinishOutput
// (see engine.OutputEngine), populating the bitmap natively when its
// output pass already visits one — so a direction-optimized BFS feeding
// each level's output frontier back as the next input pays zero
// list→bitmap conversions on dense phases.
//
// Reading a Frontier concurrently is safe — Materialize/Bits
// serialize the one-time conversion internally, so several engines
// (or one engine's concurrent calls) may share a frontier. Mutation
// (SetList, BeginOutput, UpdateValues, Refine, Release) requires
// exclusive access.
type Frontier struct {
	list *SpVec
	// mu serializes the lazy bitmap materialization; it is taken once
	// per Bits/Materialize call, never per entry.
	mu   sync.Mutex
	bits *BitVec
	// bitsValid marks that bits currently mirrors list. When a pooled
	// frontier is released, the set bits are erased in O(nnz) and the
	// flag cleared, so the O(n) bitmap allocation is reused without an
	// O(n) wipe.
	bitsValid bool
	// isOutput marks a frontier whose current contents were produced by
	// an engine's output pass (BeginOutput ran). Materializing the
	// bitmap of such a frontier means the producing engine did NOT emit
	// it natively — the conversion the output layer exists to avoid —
	// so those conversions are counted separately (OutputConversions).
	isOutput bool
	// ownsList marks that list is private storage the frontier may keep
	// across pool cycles (output frontiers), as opposed to a borrowed
	// caller vector that must be dropped on release.
	ownsList bool
	home     *FrontierPool
}

// NewFrontier wraps a list-format vector as a frontier with no pool
// backing; the bitmap, if ever demanded, is allocated privately.
func NewFrontier(x *SpVec) *Frontier {
	if x == nil {
		panic("sparse: NewFrontier with nil vector")
	}
	return &Frontier{list: x}
}

// NewOutputFrontier returns an empty frontier of dimension n with
// private list storage, ready to receive an engine's result through
// BeginOutput/FinishOutput. The bitmap is allocated on first demand
// (by the engine's native output pass or a later consumer).
func NewOutputFrontier(n Index) *Frontier {
	return &Frontier{list: NewSpVec(n, 0), ownsList: true}
}

// N returns the logical dimension.
func (f *Frontier) N() Index { return f.list.N }

// NNZ returns the number of stored entries.
func (f *Frontier) NNZ() int { return f.list.NNZ() }

// List returns the list-format representation (always present).
func (f *Frontier) List() *SpVec { return f.list }

// HasBits reports whether the bitmap representation is currently
// materialized, without triggering a conversion.
func (f *Frontier) HasBits() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bitsValid
}

// Materialize ensures the bitmap representation exists and reports
// whether a list→bitmap conversion actually ran — false means a
// previous consumer already paid for it. Engines use the return value
// to attribute the O(nnz) conversion cost in their work counters.
// Concurrent callers serialize on the frontier's lock; exactly one
// performs the conversion.
func (f *Frontier) Materialize() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bitsValid {
		return false
	}
	if f.bits == nil || f.bits.N < f.list.N {
		f.bits = NewBitVec(f.list.N)
	}
	f.bits.SetFrom(f.list)
	f.bitsValid = true
	frontierConversions.Add(1)
	frontierConvertedEntries.Add(int64(f.list.NNZ()))
	if f.isOutput {
		// The producing engine did not emit the bitmap natively; this
		// is the conversion the output layer exists to eliminate.
		frontierOutputConversions.Add(1)
	}
	return true
}

// Bits returns the bitmap representation, materializing it on first
// use.
func (f *Frontier) Bits() *BitVec {
	f.Materialize()
	return f.bits
}

// IsOutput reports whether the frontier's current contents were
// produced by an engine output pass (BeginOutput ran and no SetList
// has replaced the contents since). Engines consult it when a
// Materialize they trigger should be attributed to the output layer's
// conversion counter.
func (f *Frontier) IsOutput() bool { return f.isOutput }

// SetList replaces the frontier's contents with a new list vector,
// erasing any stale bitmap state in O(nnz(old)) so the backing bitmap
// can be rebuilt (or never built) for the new contents.
func (f *Frontier) SetList(x *SpVec) {
	if x == nil {
		panic("sparse: Frontier.SetList with nil vector")
	}
	f.dropBits()
	f.list = x
	f.isOutput = false
	f.ownsList = false
}

// BeginOutput prepares the frontier to receive an engine's result and
// returns the list vector the engine fills (the engine resets it to
// the output dimension itself, exactly as it does a caller-supplied
// output vector). Any stale bitmap state is erased in O(nnz(old)).
// Engines that populate the bitmap while writing the list call
// OutputBits for the backing bitmap; every output ends with
// FinishOutput.
func (f *Frontier) BeginOutput() *SpVec {
	f.dropBits()
	if f.list == nil {
		f.list = NewSpVec(0, 0)
		f.ownsList = true
	}
	f.isOutput = true
	return f.list
}

// OutputBits returns the backing bitmap sized for an m-row output,
// growing it if needed, so a native output pass can set bits while it
// writes the list. Valid only between BeginOutput and FinishOutput;
// the returned bitmap is all-clear for the rows the output can touch.
func (f *Frontier) OutputBits(m Index) *BitVec {
	if f.bits == nil || f.bits.N < m {
		f.bits = NewBitVec(m)
	}
	return f.bits
}

// FinishOutput completes an output pass. bitsNative reports that the
// engine populated the bitmap (obtained from OutputBits) to mirror the
// list exactly — the frontier then serves bitmap consumers with no
// conversion ever. With bitsNative false the bitmap stays
// unmaterialized and is built lazily (and counted as an output
// conversion) only if a consumer demands it.
func (f *Frontier) FinishOutput(bitsNative bool) {
	if bitsNative {
		f.bits.setCount(f.list.NNZ())
		f.bitsValid = true
		frontierNativeOutputs.Add(1)
	}
}

// UpdateValues rewrites every stored value in place. The support is
// unchanged, so a natively-emitted (or previously materialized) bitmap
// stays valid — the pattern BFS uses to turn a level's output (values
// = parent ids) into the next input (values = the vertices' own ids)
// without dropping the bitmap.
func (f *Frontier) UpdateValues(fn func(i Index, v float64) float64) {
	for k, i := range f.list.Ind {
		v := fn(i, f.list.Val[k])
		f.list.Val[k] = v
		if f.bitsValid {
			f.bits.Val[i] = v
		}
	}
}

// Refine compacts the frontier's list in place, keeping only the
// entries for which fn returns true (with the returned value stored).
// The support may shrink, so any materialized bitmap is dropped in
// O(nnz(old)); use UpdateValues when every entry is kept.
func (f *Frontier) Refine(fn func(i Index, v float64) (float64, bool)) {
	f.dropBits()
	l := f.list
	w := 0
	for k, i := range l.Ind {
		if v, keep := fn(i, l.Val[k]); keep {
			l.Ind[w], l.Val[w] = i, v
			w++
		}
	}
	l.Ind = l.Ind[:w]
	l.Val = l.Val[:w]
}

// dropBits erases the materialized bitmap cheaply (O(nnz), not O(n)).
func (f *Frontier) dropBits() {
	if f.bitsValid {
		f.bits.ClearFrom(f.list)
		f.bitsValid = false
	}
}

// Release returns a pool-backed frontier to its home pool, erasing the
// bitmap in O(nnz). It is a no-op for frontiers built with NewFrontier.
// The frontier must not be used after Release.
func (f *Frontier) Release() {
	if f.home != nil {
		f.home.put(f)
	}
}

// FrontierPool recycles frontiers — most importantly their O(n)
// bitmaps — for one vector dimension, the per-matrix analogue of the
// engines' workspace pools: an engine (or algorithm) that wraps each
// incoming list vector in a pooled frontier pays one bitmap allocation
// per concurrent call ever, not one per call, and the erase on release
// is O(nnz) thanks to BitVec.ClearFrom. The pool is safe for
// concurrent use.
type FrontierPool struct {
	n    Index
	pool sync.Pool // *Frontier
}

// NewFrontierPool returns a pool of frontiers of dimension n.
func NewFrontierPool(n Index) *FrontierPool {
	p := &FrontierPool{n: n}
	p.pool.New = func() any {
		return &Frontier{bits: NewBitVec(n), home: p}
	}
	return p
}

// Wrap borrows a pooled frontier holding x. The vector's dimension
// must match the pool's.
func (p *FrontierPool) Wrap(x *SpVec) *Frontier {
	if x.N != p.n {
		panic(fmt.Sprintf("sparse: FrontierPool.Wrap dimension mismatch: pool %d, vector %d", p.n, x.N))
	}
	f := p.pool.Get().(*Frontier)
	f.list = x
	f.ownsList = false
	return f
}

// GetOutput borrows an empty pooled output frontier: its list storage
// is private (recycled with the frontier) and its bitmap comes
// pre-allocated at the pool's dimension, so a steady-state pipeline of
// MultiplyInto calls allocates nothing.
func (p *FrontierPool) GetOutput() *Frontier {
	f := p.pool.Get().(*Frontier)
	if f.list == nil {
		f.list = NewSpVec(p.n, 0)
	} else {
		f.list.Reset(p.n)
	}
	f.ownsList = true
	return f
}

// put erases the frontier's bitmap and returns it to the pool. Private
// (output) list storage rides along for reuse; borrowed lists are
// dropped.
func (p *FrontierPool) put(f *Frontier) {
	f.dropBits()
	if f.ownsList {
		f.list.Reset(p.n)
	} else {
		f.list = nil
	}
	f.isOutput = false
	p.pool.Put(f)
}

// Process-wide conversion instrumentation: every list→bitmap
// materialization is counted, with the number of entries scattered.
// Benchmarks and tests read these to verify that frontier sharing
// actually eliminates conversions (e.g. that a hybrid engine's
// matrix-driven calls reuse one bitmap per level).
var (
	frontierConversions       atomic.Int64
	frontierConvertedEntries  atomic.Int64
	frontierOutputConversions atomic.Int64
	frontierNativeOutputs     atomic.Int64
)

// FrontierConversions returns the process-wide count of list→bitmap
// conversions and the total entries converted since process start (or
// the last ResetFrontierConversions).
func FrontierConversions() (conversions, entries int64) {
	return frontierConversions.Load(), frontierConvertedEntries.Load()
}

// FrontierOutputStats returns the process-wide count of list→bitmap
// conversions performed on engine-produced output frontiers (the
// conversions the output layer failed to avoid) and the count of
// outputs whose bitmap was emitted natively by the producing engine's
// output pass (no conversion can ever run for those).
func FrontierOutputStats() (outputConversions, nativeOutputs int64) {
	return frontierOutputConversions.Load(), frontierNativeOutputs.Load()
}

// ResetFrontierConversions zeroes the conversion instrumentation.
func ResetFrontierConversions() {
	frontierConversions.Store(0)
	frontierConvertedEntries.Store(0)
	frontierOutputConversions.Store(0)
	frontierNativeOutputs.Store(0)
}
