package sparse

import (
	"math/bits"
	"sort"
)

// RowSlice extracts global rows [lo, hi) of a as a standalone CSC
// matrix with local row ids (global − lo) — the same row decomposition
// RowSplit performs for the intra-process baselines, promoted to a
// freestanding piece that can be uploaded, stored and multiplied on its
// own. Piece w of an nshards-way split is
//
//	RowSlice(a, PieceBounds(m, n)[w], PieceBounds(m, n)[w+1])
//
// so the sharded serving layer and the in-process row-split baselines
// agree on which rows every piece owns. Column order, intra-column row
// order and SortedCols are preserved; multiplying the piece by the full
// x yields exactly rows [lo, hi) of A·x, shifted to local ids — the
// property that makes the sharded gather a pure concat.
//
// When a has sorted columns, each column's row range is located by
// binary search, so a slice costs O(nzc·log(colLen) + nnz(piece))
// rather than a full O(nnz) scan per piece.
func RowSlice(a *CSC, lo, hi Index) *CSC {
	if lo < 0 {
		lo = 0
	}
	if hi > a.NumRows {
		hi = a.NumRows
	}
	if hi < lo {
		hi = lo
	}
	out := &CSC{
		NumRows:    hi - lo,
		NumCols:    a.NumCols,
		ColPtr:     make([]int64, a.NumCols+1),
		SortedCols: a.SortedCols,
	}
	for j := Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		if a.SortedCols {
			b := sort.Search(len(rows), func(k int) bool { return rows[k] >= lo })
			e := b + sort.Search(len(rows)-b, func(k int) bool { return rows[b+k] >= hi })
			for k := b; k < e; k++ {
				out.RowIdx = append(out.RowIdx, rows[k]-lo)
				out.Val = append(out.Val, vals[k])
			}
		} else {
			for k, i := range rows {
				if i >= lo && i < hi {
					out.RowIdx = append(out.RowIdx, i-lo)
					out.Val = append(out.Val, vals[k])
				}
			}
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	return out
}

// Slice extracts rows [lo, hi) of the bitvector as a standalone BitVec
// of dimension hi−lo with local ids — the mask form a row-range shard
// consumes: an output mask of the full matrix restricted to the rows
// the shard owns. Values ride along, so a valued mask slices exactly.
func (b *BitVec) Slice(lo, hi Index) *BitVec {
	if lo < 0 {
		lo = 0
	}
	if hi > b.N {
		hi = b.N
	}
	if hi < lo {
		hi = lo
	}
	out := NewBitVec(hi - lo)
	if hi == lo {
		return out
	}
	// Word-wise: visit only the set bits of the covered words instead of
	// testing every row in the range.
	loWord, hiWord := int(lo)>>6, int(hi-1)>>6
	for w := loWord; w <= hiWord; w++ {
		word := b.Words[w]
		for word != 0 {
			t := bits.TrailingZeros64(word)
			word &^= 1 << uint(t)
			i := Index(w<<6 + t)
			if i < lo || i >= hi {
				continue
			}
			li := i - lo
			out.Words[int(li)>>6] |= 1 << (uint(li) & 63)
			out.Val[li] = b.Val[i]
			out.nset++
		}
	}
	return out
}

// OrAt merges src's set bits (and values) into b at row offset off —
// the gather side of Slice: shard w's local-id output bitmap lands at
// its global row range with one call per shard. Offsets must keep
// src within b's dimension; entries already set in b are overwritten.
func (b *BitVec) OrAt(src *BitVec, off Index) {
	for w, word := range src.Words {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			word &^= 1 << uint(t)
			li := Index(w<<6 + t)
			i := off + li
			gw, gbit := int(i)>>6, uint(i)&63
			if b.Words[gw]&(1<<gbit) == 0 {
				b.nset++
			}
			b.Words[gw] |= 1 << gbit
			b.Val[i] = src.Val[li]
		}
	}
}
