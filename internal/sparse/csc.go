package sparse

import "fmt"

// CSC is a Compressed Sparse Columns matrix (paper §II-C): ColPtr holds
// the start of every column's nonzeros (length NumCols+1), RowIdx the
// row ids and Val the numerical values (length nnz each). Random access
// to the start of a column is O(1), which is what makes vector-driven
// SpMSpV possible.
type CSC struct {
	NumRows, NumCols Index
	ColPtr           []int64
	RowIdx           []Index
	Val              []float64
	// SortedCols records whether row ids within each column are sorted.
	// CSC does not require it (paper §II-C); the heap-merge baseline and
	// the sorted-output fast paths do.
	SortedCols bool
}

// NewCSCFromTriples compiles a triple list into CSC form, summing
// duplicate entries arithmetically. Row ids within each column come out
// sorted (a by-product of the two counting-sort passes), so SortedCols
// is always true for matrices built here.
func NewCSCFromTriples(t *Triples) (*CSC, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m, n := t.NumRows, t.NumCols
	nnz := t.Len()

	// Pass 1: counting sort by row so that the scatter-by-column pass
	// below emits each column's entries in increasing row order.
	rowCount := make([]int64, m+1)
	for _, i := range t.Row {
		rowCount[i+1]++
	}
	for i := Index(0); i < m; i++ {
		rowCount[i+1] += rowCount[i]
	}
	byRowCol := make([]Index, nnz)
	byRowRow := make([]Index, nnz)
	byRowVal := make([]float64, nnz)
	next := make([]int64, m)
	copy(next, rowCount[:m])
	for k := 0; k < nnz; k++ {
		p := next[t.Row[k]]
		next[t.Row[k]]++
		byRowRow[p] = t.Row[k]
		byRowCol[p] = t.Col[k]
		byRowVal[p] = t.Val[k]
	}

	// Pass 2: scatter by column, preserving row order within columns.
	a := &CSC{
		NumRows:    m,
		NumCols:    n,
		ColPtr:     make([]int64, n+1),
		RowIdx:     make([]Index, 0, nnz),
		Val:        make([]float64, 0, nnz),
		SortedCols: true,
	}
	colCount := make([]int64, n+1)
	for _, j := range byRowCol {
		colCount[j+1]++
	}
	for j := Index(0); j < n; j++ {
		colCount[j+1] += colCount[j]
	}
	rowOut := make([]Index, nnz)
	valOut := make([]float64, nnz)
	nextC := make([]int64, n)
	copy(nextC, colCount[:n])
	for k := 0; k < nnz; k++ {
		j := byRowCol[k]
		p := nextC[j]
		nextC[j]++
		rowOut[p] = byRowRow[k]
		valOut[p] = byRowVal[k]
	}

	// Compact duplicates (equal (row, col)) by summation; they are now
	// adjacent within each column.
	a.ColPtr[0] = 0
	for j := Index(0); j < n; j++ {
		lo, hi := colCount[j], colCount[j+1]
		for k := lo; k < hi; k++ {
			cur := int64(len(a.RowIdx))
			if cur > a.ColPtr[j] && a.RowIdx[cur-1] == rowOut[k] {
				a.Val[cur-1] += valOut[k]
				continue
			}
			a.RowIdx = append(a.RowIdx, rowOut[k])
			a.Val = append(a.Val, valOut[k])
		}
		a.ColPtr[j+1] = int64(len(a.RowIdx))
	}
	return a, nil
}

// NNZ returns the number of stored nonzeros.
func (a *CSC) NNZ() int64 { return int64(len(a.RowIdx)) }

// NZC returns the number of nonempty columns (the paper's nzc), the
// quantity that dominates matrix-driven algorithms for sparse inputs.
func (a *CSC) NZC() Index {
	var c Index
	for j := Index(0); j < a.NumCols; j++ {
		if a.ColPtr[j+1] > a.ColPtr[j] {
			c++
		}
	}
	return c
}

// ColLen returns the number of nonzeros in column j.
func (a *CSC) ColLen(j Index) int64 { return a.ColPtr[j+1] - a.ColPtr[j] }

// Col returns the row ids and values of column j, aliasing the matrix
// storage. Callers must not modify the returned slices.
func (a *CSC) Col(j Index) ([]Index, []float64) {
	lo, hi := a.ColPtr[j], a.ColPtr[j+1]
	return a.RowIdx[lo:hi], a.Val[lo:hi]
}

// At returns the value at (i, j), or 0 when the entry is absent. It is
// O(column length) and intended for tests and small examples only.
func (a *CSC) At(i, j Index) float64 {
	rows, vals := a.Col(j)
	for k, r := range rows {
		if r == i {
			return vals[k]
		}
	}
	return 0
}

// AverageDegree returns nnz/n, the d of the paper's Erdős–Rényi G(n, d/n)
// analysis.
func (a *CSC) AverageDegree() float64 {
	if a.NumCols == 0 {
		return 0
	}
	return float64(a.NNZ()) / float64(a.NumCols)
}

// Transpose returns Aᵀ in CSC form (equivalently, A in CSR form). Used
// for the "left multiplication" x′A of paper §II-A and by graph
// algorithms that need incoming rather than outgoing neighbors.
func (a *CSC) Transpose() *CSC {
	t := &CSC{
		NumRows:    a.NumCols,
		NumCols:    a.NumRows,
		ColPtr:     make([]int64, a.NumRows+1),
		RowIdx:     make([]Index, a.NNZ()),
		Val:        make([]float64, a.NNZ()),
		SortedCols: true,
	}
	for _, i := range a.RowIdx {
		t.ColPtr[i+1]++
	}
	for i := Index(0); i < a.NumRows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := make([]int64, a.NumRows)
	copy(next, t.ColPtr[:a.NumRows])
	// Columns scanned in increasing order keep each transposed column's
	// row ids (original column ids) sorted.
	for j := Index(0); j < a.NumCols; j++ {
		for k := a.ColPtr[j]; k < a.ColPtr[j+1]; k++ {
			i := a.RowIdx[k]
			p := next[i]
			next[i]++
			t.RowIdx[p] = j
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// HasSelfLoops reports whether any diagonal entry is present.
func (a *CSC) HasSelfLoops() bool {
	for j := Index(0); j < a.NumCols; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			if i == j {
				return true
			}
		}
	}
	return false
}

// StripSelfLoops returns a copy of a without diagonal entries, or a
// itself when there are none. Algorithms defined on simple graphs
// (maximal independent set in particular) use it to sanitize their
// input.
func StripSelfLoops(a *CSC) *CSC {
	if !a.HasSelfLoops() {
		return a
	}
	out := &CSC{
		NumRows:    a.NumRows,
		NumCols:    a.NumCols,
		ColPtr:     make([]int64, a.NumCols+1),
		RowIdx:     make([]Index, 0, a.NNZ()),
		Val:        make([]float64, 0, a.NNZ()),
		SortedCols: a.SortedCols,
	}
	for j := Index(0); j < a.NumCols; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			if i == j {
				continue
			}
			out.RowIdx = append(out.RowIdx, i)
			out.Val = append(out.Val, vals[k])
		}
		out.ColPtr[j+1] = int64(len(out.RowIdx))
	}
	return out
}

// CumulativeColWeights returns the exclusive cumulative column lengths
// restricted to the columns listed in cols: out[k] = total nonzeros in
// cols[0..k). It drives the nonzero-balanced work split of the paper's
// §III-B high-span fix.
func (a *CSC) CumulativeColWeights(cols []Index, out []int64) []int64 {
	if cap(out) < len(cols)+1 {
		out = make([]int64, len(cols)+1)
	}
	out = out[:len(cols)+1]
	out[0] = 0
	for k, j := range cols {
		out[k+1] = out[k] + a.ColLen(j)
	}
	return out
}

// Equal reports whether two matrices have identical dimensions and
// entries (exact value comparison; both must have sorted columns).
func (a *CSC) Equal(b *CSC) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.NNZ() != b.NNZ() {
		return false
	}
	for j := Index(0); j <= a.NumCols; j++ {
		if a.ColPtr[j] != b.ColPtr[j] {
			return false
		}
	}
	for k := range a.RowIdx {
		if a.RowIdx[k] != b.RowIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// String summarizes the matrix shape for logs.
func (a *CSC) String() string {
	return fmt.Sprintf("CSC{%d×%d, nnz=%d, nzc=%d}", a.NumRows, a.NumCols, a.NNZ(), a.NZC())
}
