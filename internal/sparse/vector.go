package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// SpVec is a sparse vector in the list format of paper §II-C: a compact
// array of (index, value) pairs, stored as parallel slices for cache
// efficiency ("in contrast to its name, the actual data structure is
// often an array of pairs for maximizing cache performance"). The list
// may be sorted or unsorted; Sorted tracks which, because the paper's
// two algorithm variants differ exactly on this property and the output
// must be produced in the same format as the input.
type SpVec struct {
	N      Index // logical dimension
	Ind    []Index
	Val    []float64
	Sorted bool
}

// NewSpVec returns an empty sparse vector of dimension n with capacity
// for nnzCap entries. An empty vector is considered sorted.
func NewSpVec(n Index, nnzCap int) *SpVec {
	return &SpVec{
		N:      n,
		Ind:    make([]Index, 0, nnzCap),
		Val:    make([]float64, 0, nnzCap),
		Sorted: true,
	}
}

// NNZ returns the number of stored entries.
func (v *SpVec) NNZ() int { return len(v.Ind) }

// Append adds one (index, value) entry, maintaining the Sorted flag.
func (v *SpVec) Append(i Index, val float64) {
	if n := len(v.Ind); n > 0 && v.Ind[n-1] >= i {
		v.Sorted = false
	}
	v.Ind = append(v.Ind, i)
	v.Val = append(v.Val, val)
}

// Reset empties the vector in place, keeping capacity, and sets the
// dimension to n.
func (v *SpVec) Reset(n Index) {
	v.N = n
	v.Ind = v.Ind[:0]
	v.Val = v.Val[:0]
	v.Sorted = true
}

// Clone returns a deep copy.
func (v *SpVec) Clone() *SpVec {
	c := &SpVec{
		N:      v.N,
		Ind:    append([]Index(nil), v.Ind...),
		Val:    append([]float64(nil), v.Val...),
		Sorted: v.Sorted,
	}
	return c
}

// Validate checks index bounds and, when Sorted, strict monotonicity.
func (v *SpVec) Validate() error {
	for k, i := range v.Ind {
		if i < 0 || i >= v.N {
			return fmt.Errorf("sparse: vector index %d out of range [0,%d) at entry %d", i, v.N, k)
		}
		if v.Sorted && k > 0 && v.Ind[k-1] >= i {
			return fmt.Errorf("sparse: vector marked sorted but Ind[%d]=%d ≥ Ind[%d]=%d", k-1, v.Ind[k-1], k, i)
		}
	}
	return nil
}

// Sort orders the entries by index in place and sets Sorted. Duplicate
// indices keep their relative order (stable).
func (v *SpVec) Sort() {
	if v.Sorted {
		return
	}
	sort.Stable(spvecSorter{v})
	v.Sorted = true
}

type spvecSorter struct{ v *SpVec }

func (s spvecSorter) Len() int           { return len(s.v.Ind) }
func (s spvecSorter) Less(a, b int) bool { return s.v.Ind[a] < s.v.Ind[b] }
func (s spvecSorter) Swap(a, b int) {
	v := s.v
	v.Ind[a], v.Ind[b] = v.Ind[b], v.Ind[a]
	v.Val[a], v.Val[b] = v.Val[b], v.Val[a]
}

// ToDense scatters the vector into a fresh dense slice with absent
// entries equal to zero.
func (v *SpVec) ToDense() []float64 {
	d := make([]float64, v.N)
	for k, i := range v.Ind {
		d[i] = v.Val[k]
	}
	return d
}

// FromDense gathers the nonzero entries (≠ zero) of d into sorted list
// format.
func FromDense(d []float64, zero float64) *SpVec {
	v := NewSpVec(Index(len(d)), 0)
	for i, x := range d {
		if x != zero {
			v.Append(Index(i), x)
		}
	}
	v.Sorted = true
	return v
}

// EqualValues reports whether v and o represent the same mathematical
// vector within tol, independent of entry order. Entries whose value is
// within tol of 0 are treated as absent, so an explicit zero equals a
// structural zero.
func (v *SpVec) EqualValues(o *SpVec, tol float64) bool {
	if v.N != o.N {
		return false
	}
	a := map[Index]float64{}
	for k, i := range v.Ind {
		a[i] += v.Val[k]
	}
	for k, i := range o.Ind {
		a[i] -= o.Val[k]
	}
	for _, diff := range a {
		if math.Abs(diff) > tol {
			return false
		}
	}
	return true
}

// String summarizes the vector for logs.
func (v *SpVec) String() string {
	return fmt.Sprintf("SpVec{n=%d, nnz=%d, sorted=%v}", v.N, v.NNZ(), v.Sorted)
}

// BitVec is the bitvector sparse-vector format of GraphMat (paper §II-C,
// ref [14]): an O(n)-length bitmap marking which indices are nonzero,
// paired with the values. The matrix-driven algorithm needs O(1)
// membership tests and value lookups, so values are kept in a dense
// array; the storage is O(n) either way because of the bitmap, and the
// work profile (O(1) probe per column) matches GraphMat's.
//
// A BitVec is reused across SpMSpV calls: ClearFrom erases only the f
// set bits instead of the whole bitmap, keeping per-call overhead O(f).
type BitVec struct {
	N     Index
	Words []uint64
	Val   []float64
	nset  int
}

// NewBitVec returns an all-zero bitvector of dimension n.
func NewBitVec(n Index) *BitVec {
	return &BitVec{
		N:     n,
		Words: make([]uint64, (int(n)+63)/64),
		Val:   make([]float64, n),
	}
}

// SetFrom loads the entries of x into the bitvector in O(nnz(x)).
// Duplicate indices in x overwrite (last one wins), matching an unsorted
// list being scattered.
func (b *BitVec) SetFrom(x *SpVec) {
	for k, i := range x.Ind {
		w, bit := int(i)>>6, uint(i)&63
		if b.Words[w]&(1<<bit) == 0 {
			b.nset++
		}
		b.Words[w] |= 1 << bit
		b.Val[i] = x.Val[k]
	}
}

// SetRangeFrom scatters the (ind[k], val[k]) pairs into the bitvector,
// where every index lies in the half-open row range [lo, hi) that the
// caller owns exclusively — the per-bucket (or per-piece) fill engines
// use to emit an output bitmap natively from inside their parallel
// output step. Words fully interior to the range cannot be touched by
// any other range and are written plainly; the at-most-two words
// straddling a range boundary are set atomically, so adjacent disjoint
// ranges may be filled concurrently regardless of 64-bit alignment.
// Value writes are per-row and inherently race-free.
//
// The set-bit count is NOT maintained (it would need cross-range
// coordination); the caller repairs it afterwards —
// Frontier.FinishOutput does.
func (b *BitVec) SetRangeFrom(ind []Index, val []float64, lo, hi Index) {
	if len(ind) == 0 || hi <= lo {
		return
	}
	loWord := int(lo) >> 6
	hiWord := int(hi-1) >> 6
	for k, i := range ind {
		w, bit := int(i)>>6, uint(i)&63
		if w == loWord || w == hiWord {
			atomic.OrUint64(&b.Words[w], 1<<bit)
		} else {
			b.Words[w] |= 1 << bit
		}
		b.Val[i] = val[k]
	}
}

// setCount overwrites the set-bit tally, repairing it after a
// SetRangeFrom-based fill whose caller knows the exact support size.
func (b *BitVec) setCount(n int) { b.nset = n }

// ClearFrom erases exactly the bits set by a previous SetFrom(x) in
// O(nnz(x)), so the bitvector can be reused without an O(n) wipe.
func (b *BitVec) ClearFrom(x *SpVec) {
	for _, i := range x.Ind {
		w, bit := int(i)>>6, uint(i)&63
		if b.Words[w]&(1<<bit) != 0 {
			b.nset--
		}
		b.Words[w] &^= 1 << bit
	}
}

// Test reports whether index i is present.
func (b *BitVec) Test(i Index) bool {
	return b.Words[int(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Get returns the value at i and whether it is present.
func (b *BitVec) Get(i Index) (float64, bool) {
	if !b.Test(i) {
		return 0, false
	}
	return b.Val[i], true
}

// Count returns the number of set bits.
func (b *BitVec) Count() int { return b.nset }
