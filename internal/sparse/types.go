// Package sparse implements the sparse matrix and vector storage formats
// the paper builds on: coordinate triples, Compressed Sparse Columns
// (CSC), Double-Compressed Sparse Columns (DCSC) with an auxiliary
// column index, row-split matrix partitions, and the list and bitvector
// sparse vector formats. It also provides Matrix Market I/O and the
// graph statistics (degrees, pseudo-diameter) used to validate the
// synthetic stand-ins for the paper's Table IV matrices.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// Index is the row/column index type. int32 keeps matrix storage compact
// (the paper's largest matrix has 16.8M vertices, well within range) and
// halves the memory traffic of the bucketing step relative to int64.
type Index = int32

// Entry pairs a row index with a numerical value. It is the unit stored
// in buckets (Step 1 of Algorithm 1) and in list-format sparse vectors.
type Entry struct {
	Ind Index
	Val float64
}

// Triples is a coordinate-format (COO) sparse matrix under construction.
// It is the interchange format between generators, Matrix Market I/O and
// the compiled CSC/DCSC formats.
type Triples struct {
	NumRows, NumCols Index
	Row, Col         []Index
	Val              []float64
}

// NewTriples returns an empty triple list for an m×n matrix with
// capacity for nnzCap entries.
func NewTriples(m, n Index, nnzCap int) *Triples {
	return &Triples{
		NumRows: m,
		NumCols: n,
		Row:     make([]Index, 0, nnzCap),
		Col:     make([]Index, 0, nnzCap),
		Val:     make([]float64, 0, nnzCap),
	}
}

// Len returns the number of stored triples (duplicates included).
func (t *Triples) Len() int { return len(t.Row) }

// Append adds one (i, j, v) triple. It does not check bounds; call
// Validate before compiling if the source is untrusted.
func (t *Triples) Append(i, j Index, v float64) {
	t.Row = append(t.Row, i)
	t.Col = append(t.Col, j)
	t.Val = append(t.Val, v)
}

// AppendSymmetric adds (i, j, v) and, when i != j, also (j, i, v).
func (t *Triples) AppendSymmetric(i, j Index, v float64) {
	t.Append(i, j, v)
	if i != j {
		t.Append(j, i, v)
	}
}

// Validate checks that every triple is within the matrix dimensions.
func (t *Triples) Validate() error {
	if t.NumRows < 0 || t.NumCols < 0 {
		return fmt.Errorf("sparse: negative dimensions %d×%d", t.NumRows, t.NumCols)
	}
	if len(t.Row) != len(t.Col) || len(t.Row) != len(t.Val) {
		return errors.New("sparse: triple arrays have mismatched lengths")
	}
	for k := range t.Row {
		if t.Row[k] < 0 || t.Row[k] >= t.NumRows {
			return fmt.Errorf("sparse: row index %d out of range [0,%d) at triple %d", t.Row[k], t.NumRows, k)
		}
		if t.Col[k] < 0 || t.Col[k] >= t.NumCols {
			return fmt.Errorf("sparse: col index %d out of range [0,%d) at triple %d", t.Col[k], t.NumCols, k)
		}
	}
	return nil
}

// Sort orders the triples by (column, row).
func (t *Triples) Sort() {
	sort.Sort(tripleSorter{t})
}

// SumDuplicates combines triples with identical (row, column) using add,
// leaving the triples sorted by (column, row). The default addition is
// arithmetic when add is nil.
func (t *Triples) SumDuplicates(add func(a, b float64) float64) {
	if add == nil {
		add = func(a, b float64) float64 { return a + b }
	}
	if t.Len() == 0 {
		return
	}
	t.Sort()
	w := 0
	for k := 1; k < t.Len(); k++ {
		if t.Row[k] == t.Row[w] && t.Col[k] == t.Col[w] {
			t.Val[w] = add(t.Val[w], t.Val[k])
			continue
		}
		w++
		t.Row[w], t.Col[w], t.Val[w] = t.Row[k], t.Col[k], t.Val[k]
	}
	t.Row = t.Row[:w+1]
	t.Col = t.Col[:w+1]
	t.Val = t.Val[:w+1]
}

type tripleSorter struct{ t *Triples }

func (s tripleSorter) Len() int { return s.t.Len() }
func (s tripleSorter) Less(a, b int) bool {
	t := s.t
	if t.Col[a] != t.Col[b] {
		return t.Col[a] < t.Col[b]
	}
	return t.Row[a] < t.Row[b]
}
func (s tripleSorter) Swap(a, b int) {
	t := s.t
	t.Row[a], t.Row[b] = t.Row[b], t.Row[a]
	t.Col[a], t.Col[b] = t.Col[b], t.Col[a]
	t.Val[a], t.Val[b] = t.Val[b], t.Val[a]
}
