package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := NewTriples(37, 23, 100)
	for k := 0; k < 100; k++ {
		tr.Append(Index(rng.Intn(37)), Index(rng.Intn(23)), rng.NormFloat64())
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCSCFromTriples(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetricPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 3
`
	tr, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	// (2,1) expands to (1,0) and (0,1); (3,3) is diagonal → 3 entries.
	if a.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", a.NNZ())
	}
	if a.At(1, 0) != 1 || a.At(0, 1) != 1 || a.At(2, 2) != 1 {
		t.Error("symmetric pattern entries wrong")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad banner":  "%%NotMatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
		"bad format":  "%%MatrixMarket matrix array real general\n1 1\n1\n",
		"bad field":   "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"out of rng":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 5.0\n",
		"wrong count": "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 5.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	v := NewSpVec(100, 3)
	v.Append(3, 1.5)
	v.Append(50, -2.25)
	v.Append(99, 1e-17)

	var buf bytes.Buffer
	if err := WriteVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	w, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w.N != v.N || w.NNZ() != v.NNZ() {
		t.Fatalf("shape mismatch: %v vs %v", w, v)
	}
	for k := range v.Ind {
		if w.Ind[k] != v.Ind[k] || w.Val[k] != v.Val[k] {
			t.Errorf("entry %d mismatch", k)
		}
	}
}
