package sparse

import (
	"sync"
	"sync/atomic"
	"testing"
)

func frontierVec(n Index, inds ...Index) *SpVec {
	v := NewSpVec(n, len(inds))
	for k, i := range inds {
		v.Append(i, float64(k+1))
	}
	return v
}

func TestFrontierLazyBitmap(t *testing.T) {
	x := frontierVec(100, 3, 17, 64)
	f := NewFrontier(x)
	if f.N() != 100 || f.NNZ() != 3 {
		t.Fatalf("dims: n=%d nnz=%d", f.N(), f.NNZ())
	}
	if f.List() != x {
		t.Error("List should return the wrapped vector")
	}
	if f.HasBits() {
		t.Error("bitmap materialized before first demand")
	}

	before, _ := FrontierConversions()
	if !f.Materialize() {
		t.Error("first Materialize should convert")
	}
	if f.Materialize() {
		t.Error("second Materialize should be free")
	}
	after, entries := FrontierConversions()
	if after != before+1 {
		t.Errorf("conversions %d → %d, want one increment", before, after)
	}
	if entries < 3 {
		t.Errorf("converted entries = %d, want ≥ 3", entries)
	}

	bits := f.Bits()
	if bits.Count() != 3 || !bits.Test(17) || bits.Test(16) {
		t.Errorf("bitmap content wrong: count=%d", bits.Count())
	}
	if v, ok := bits.Get(64); !ok || v != 3 {
		t.Errorf("bits[64] = %v,%v want 3,true", v, ok)
	}
}

func TestFrontierSetListInvalidatesBits(t *testing.T) {
	f := NewFrontier(frontierVec(50, 1, 2, 3))
	f.Bits()
	f.SetList(frontierVec(50, 40))
	if f.HasBits() {
		t.Error("SetList should drop the stale bitmap")
	}
	bits := f.Bits()
	if bits.Count() != 1 || !bits.Test(40) || bits.Test(1) {
		t.Error("bitmap not rebuilt for the new list")
	}
}

func TestFrontierPoolReuseAndClearing(t *testing.T) {
	p := NewFrontierPool(64)
	f := p.Wrap(frontierVec(64, 5, 9))
	bits := f.Bits()
	if bits.Count() != 2 {
		t.Fatalf("count = %d", bits.Count())
	}
	f.Release()

	// The recycled frontier must come back with an empty bitmap even
	// though no O(n) wipe ever runs.
	g := p.Wrap(frontierVec(64, 33))
	gb := g.Bits()
	if gb.Test(5) || gb.Test(9) || gb.Count() != 1 || !gb.Test(33) {
		t.Error("recycled bitmap still holds previous frontier's bits")
	}
	g.Release()

	// NewFrontier-built frontiers are pool-less; Release is a no-op.
	h := NewFrontier(frontierVec(64, 1))
	h.Release()
	if h.List() == nil {
		t.Error("Release on an unpooled frontier must not tear it down")
	}

	defer func() {
		if recover() == nil {
			t.Error("Wrap with mismatched dimension should panic")
		}
	}()
	p.Wrap(frontierVec(100, 1))
}

// TestFrontierConcurrentMaterialize shares ONE unmaterialized
// frontier across goroutines (the documented cross-engine sharing
// pattern): exactly one conversion runs and every reader sees the
// complete bitmap. Meaningful under -race.
func TestFrontierConcurrentMaterialize(t *testing.T) {
	x := frontierVec(512, 7, 130, 400)
	f := NewFrontier(x)
	var converted int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if f.Materialize() {
				atomic.AddInt64(&converted, 1)
			}
			bits := f.Bits()
			for _, i := range x.Ind {
				if !bits.Test(i) {
					t.Errorf("bit %d missing after shared materialization", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if converted != 1 {
		t.Errorf("%d goroutines performed the conversion, want exactly 1", converted)
	}
}

func TestFrontierPoolConcurrent(t *testing.T) {
	p := NewFrontierPool(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				x := frontierVec(256, Index(g), Index(g+10), Index((g*37+rep)%256))
				f := p.Wrap(x)
				bits := f.Bits()
				for _, i := range x.Ind {
					if !bits.Test(i) {
						t.Errorf("bit %d missing", i)
						break
					}
				}
				f.Release()
			}
		}(g)
	}
	wg.Wait()
}
