package sparse

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Vector wire encodings — the SPVB frame, the vector analogue of the
// matrix SPMB frame. This is the hot serving format: a multiply
// response is one or more vectors, and profiling attributes ~40% of
// per-request serving cost to JSON float formatting (strconv's ryu) of
// exactly those payloads — a cost coalescing cannot amortize because
// it is paid per response, not per batch. The binary frame writes raw
// little-endian words instead, so encode cost is a memory copy.
//
// One frame carries one vector in one of three payload kinds, chosen
// by the encoder for the representation the value already has:
//
//   - sparse: (index, value) pairs — the list format, 12 bytes/entry.
//   - dense: all n values back to back, 8 bytes/index — smaller than
//     sparse once nnz exceeds 2n/3, and what a dense iteration vector
//     (PageRank ranks) wants anyway.
//   - bitmap: the raw uint64 words of a BitVec plus (only when any
//     set value is nonzero) the set entries' values — a support-only
//     bitmap response never touches floats at all.
//
// DecodeVector sniffs SPVB against the JSON form and the "index
// value" text form, so every vector entry point accepts all three
// encodings without a flag — mirroring DecodeMatrix.

const (
	vectorMagic   = "SPVB"
	vectorVersion = 1

	vecKindSparse = uint8(0)
	vecKindDense  = uint8(1)
	vecKindBitmap = uint8(2)
)

// DefaultMaxBitVecDim is the default decode-side bound on the
// dimension of a bitmap the wire decoders will materialize. The list
// decoders need no such bound — their storage grows only as the stream
// actually delivers bytes — but a decoded BitVec is O(n) dense storage
// (n/64 words plus n values) sized from a header-claimed dimension, so
// without a bound a ~40-byte hostile frame could force a multi-GiB
// allocation. 1<<27 entries (≈1.1 GiB materialized) matches the
// serving layer's default 1 GiB body cap: a matrix large enough to
// make a bigger mask meaningful could not have been uploaded either.
const DefaultMaxBitVecDim = 1 << 27

// maxBitVecDim is the active bound; see SetMaxBitVecDim.
var maxBitVecDim atomic.Int64

func init() { maxBitVecDim.Store(DefaultMaxBitVecDim) }

// SetMaxBitVecDim bounds the dimension the wire decoders (binary and
// JSON alike) will materialize a bitmap for, in entries (default
// DefaultMaxBitVecDim). Deployments genuinely serving larger
// dimensions raise it; values ≤ 0 restore the default.
func SetMaxBitVecDim(n int64) {
	if n <= 0 {
		n = DefaultMaxBitVecDim
	}
	maxBitVecDim.Store(n)
}

// checkBitVecDim rejects a bitmap materialization beyond the decode
// bound before any O(n) allocation happens.
func checkBitVecDim(n int64) error {
	if lim := maxBitVecDim.Load(); n > lim {
		return fmt.Errorf("sparse: bitmap dimension %d exceeds the decode limit %d (raise with SetMaxBitVecDim)", n, lim)
	}
	return nil
}

// encodePooling gates the sync.Pool'd bufio writers the binary
// encoders borrow. It exists so benchmarks can measure the pooled and
// unpooled encode paths as independent dimensions; production callers
// leave it on.
var encodePooling atomic.Bool

func init() { encodePooling.Store(true) }

// SetEncodePooling toggles the pooled encode buffers (on by default).
// It is a measurement knob for benchmarks, not a tuning parameter.
func SetEncodePooling(on bool) { encodePooling.Store(on) }

// encWriterPool recycles the bufio.Writer every binary encoder wraps
// its destination in, so a steady-state serving loop pays zero
// allocations for encoder state.
var encWriterPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 16<<10) },
}

// getEncWriter borrows a bufio.Writer bound to w; putEncWriter
// flushes and returns it. With pooling disabled a fresh writer is
// allocated each call (the unpooled baseline benchmarks measure).
func getEncWriter(w io.Writer) *bufio.Writer {
	if !encodePooling.Load() {
		return bufio.NewWriterSize(w, 16<<10)
	}
	bw := encWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putEncWriter(bw *bufio.Writer) error {
	err := bw.Flush()
	if encodePooling.Load() {
		bw.Reset(nil) // drop the destination so the pool holds no caller state
		encWriterPool.Put(bw)
	}
	return err
}

// EncodeVectorBinary writes v as an SPVB frame, choosing the sparse or
// dense payload by size: dense (8 bytes/index) undercuts sparse
// (12 bytes/entry) once nnz > 2n/3. Dense is only chosen for sorted
// vectors with no explicitly stored zero — an unsorted list may carry
// duplicate indices a scatter would silently collapse, and a stored
// zero is indistinguishable from absence in the dense payload.
func EncodeVectorBinary(w io.Writer, v *SpVec) error {
	bw := getEncWriter(w)
	if err := encodeVector(bw, v); err != nil {
		putEncWriter(bw)
		return err
	}
	return putEncWriter(bw)
}

// BorrowEncWriter hands out a (pooled) buffered writer bound to w, and
// ReturnEncWriter flushes and recycles it — for callers embedding
// several frames in one streamed message (the spmspv binary envelope)
// that want the encoders' buffer pooling without one borrow per frame.
func BorrowEncWriter(w io.Writer) *bufio.Writer { return getEncWriter(w) }

// ReturnEncWriter flushes bw and returns it to the encoder pool.
func ReturnEncWriter(bw *bufio.Writer) error { return putEncWriter(bw) }

// EncodeVectorFrame writes one SPVB frame for v to an already-buffered
// writer (see BorrowEncWriter); EncodeVectorBinary is the one-shot
// form.
func EncodeVectorFrame(bw *bufio.Writer, v *SpVec) error { return encodeVector(bw, v) }

// EncodeBitVecFrame writes one SPVB bitmap frame for b to an
// already-buffered writer; EncodeBitVecBinary is the one-shot form.
func EncodeBitVecFrame(bw *bufio.Writer, b *BitVec) error { return encodeBitVec(bw, b) }

// encodeVector writes one SPVB frame to an already-buffered writer —
// the form envelope encoders embed (they own the buffering).
func encodeVector(bw *bufio.Writer, v *SpVec) error {
	dense := v.Sorted && int64(v.NNZ())*12 > int64(v.N)*8
	if dense {
		// The dense payload encodes absence as 0.0, so an explicitly
		// stored zero (±0, e.g. exact cancellation the semiring kept)
		// cannot ride it — the decoder would drop the entry, changing
		// nnz and support across the wire. Such vectors stay sparse.
		for _, x := range v.Val {
			if x == 0 {
				dense = false
				break
			}
		}
	}
	if _, err := bw.WriteString(vectorMagic); err != nil {
		return err
	}
	var head [13]byte
	binary.LittleEndian.PutUint32(head[0:], vectorVersion)
	if dense {
		head[4] = vecKindDense
		binary.LittleEndian.PutUint64(head[5:], uint64(int64(v.N)))
		if _, err := bw.Write(head[:13]); err != nil {
			return err
		}
		var buf [8]byte
		k := 0
		for i := Index(0); i < v.N; i++ {
			var val float64
			if k < len(v.Ind) && v.Ind[k] == i {
				val = v.Val[k]
				k++
			}
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(val))
			if _, err := bw.Write(buf[:8]); err != nil {
				return err
			}
		}
		return nil
	}
	head[4] = vecKindSparse
	binary.LittleEndian.PutUint64(head[5:], uint64(int64(v.N)))
	if _, err := bw.Write(head[:13]); err != nil {
		return err
	}
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(int64(v.NNZ())))
	if v.Sorted {
		buf[8] = 1
	} else {
		buf[8] = 0
	}
	if _, err := bw.Write(buf[:9]); err != nil {
		return err
	}
	for _, i := range v.Ind {
		binary.LittleEndian.PutUint32(buf[:4], uint32(i))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, x := range v.Val {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(x))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return nil
}

// EncodeBitVecBinary writes b as an SPVB bitmap frame: the raw uint64
// words, plus the set entries' values only when any is nonzero — a
// support-only bitmap (a mask, a reachability result) is pure words
// and its encode never touches a float.
func EncodeBitVecBinary(w io.Writer, b *BitVec) error {
	bw := getEncWriter(w)
	if err := encodeBitVec(bw, b); err != nil {
		putEncWriter(bw)
		return err
	}
	return putEncWriter(bw)
}

func encodeBitVec(bw *bufio.Writer, b *BitVec) error {
	hasVals := false
	for wi, word := range b.Words {
		for word != 0 {
			bit := word & (-word)
			i := Index(wi<<6) + Index(bits.TrailingZeros64(bit))
			if b.Val[i] != 0 {
				hasVals = true
			}
			word &^= bit
		}
		if hasVals {
			break
		}
	}
	if _, err := bw.WriteString(vectorMagic); err != nil {
		return err
	}
	var head [22]byte
	binary.LittleEndian.PutUint32(head[0:], vectorVersion)
	head[4] = vecKindBitmap
	binary.LittleEndian.PutUint64(head[5:], uint64(int64(b.N)))
	binary.LittleEndian.PutUint64(head[13:], uint64(int64(b.Count())))
	if hasVals {
		head[21] = 1
	}
	if _, err := bw.Write(head[:22]); err != nil {
		return err
	}
	var buf [8]byte
	for _, word := range b.Words {
		binary.LittleEndian.PutUint64(buf[:], word)
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	if hasVals {
		for wi, word := range b.Words {
			for word != 0 {
				bit := word & (-word)
				i := Index(wi<<6) + Index(bits.TrailingZeros64(bit))
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b.Val[i]))
				if _, err := bw.Write(buf[:8]); err != nil {
					return err
				}
				word &^= bit
			}
		}
	}
	return nil
}

// vecFrameHeader reads the SPVB magic, version and kind.
func vecFrameHeader(br *bufio.Reader) (kind uint8, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("sparse: reading vector magic: %w", err)
	}
	if string(magic[:]) != vectorMagic {
		return 0, fmt.Errorf("sparse: bad vector magic %q", magic[:])
	}
	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, fmt.Errorf("sparse: reading vector header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(head[0:]); v != vectorVersion {
		return 0, fmt.Errorf("sparse: unsupported vector wire version %d", v)
	}
	return head[4], nil
}

func readInt64(br *bufio.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

// DecodeVectorBinary parses an SPVB frame into list format, validating
// the result; a bitmap payload is gathered into a sorted list. It
// accepts a plain io.Reader and reads exactly one frame (buffered
// internally only when the caller's reader is unbuffered).
func DecodeVectorBinary(r io.Reader) (*SpVec, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	kind, err := vecFrameHeader(br)
	if err != nil {
		return nil, err
	}
	switch kind {
	case vecKindSparse:
		return decodeSparsePayload(br)
	case vecKindDense:
		return decodeDensePayload(br)
	case vecKindBitmap:
		b, err := decodeBitmapPayload(br)
		if err != nil {
			return nil, err
		}
		return bitVecToList(b), nil
	default:
		return nil, fmt.Errorf("sparse: unknown vector payload kind %d", kind)
	}
}

// DecodeBitVecBinary parses an SPVB frame into bitmap format,
// validating the result; sparse and dense payloads are scattered into
// a fresh bitmap (last duplicate wins, as in BitVec.SetFrom).
func DecodeBitVecBinary(r io.Reader) (*BitVec, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	kind, err := vecFrameHeader(br)
	if err != nil {
		return nil, err
	}
	switch kind {
	case vecKindBitmap:
		return decodeBitmapPayload(br)
	case vecKindSparse:
		v, err := decodeSparsePayload(br)
		if err != nil {
			return nil, err
		}
		// The list decode is bounded by delivered bytes, but NewBitVec
		// materializes O(n) from the claimed dimension — a sparse frame
		// with nnz=0 backs that claim with no body bytes at all, so it
		// gets the same decode bound as the bitmap payload.
		if err := checkBitVecDim(int64(v.N)); err != nil {
			return nil, err
		}
		b := NewBitVec(v.N)
		b.SetFrom(v)
		return b, nil
	case vecKindDense:
		v, err := decodeDensePayload(br)
		if err != nil {
			return nil, err
		}
		if err := checkBitVecDim(int64(v.N)); err != nil {
			return nil, err
		}
		b := NewBitVec(v.N)
		b.SetFrom(v)
		return b, nil
	default:
		return nil, fmt.Errorf("sparse: unknown vector payload kind %d", kind)
	}
}

func decodeSparsePayload(br *bufio.Reader) (*SpVec, error) {
	n, err := readInt64(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector dimension: %w", err)
	}
	nnz, err := readInt64(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector nnz: %w", err)
	}
	sorted, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector flags: %w", err)
	}
	if n < 0 || n > maxWireDim || nnz < 0 {
		return nil, fmt.Errorf("sparse: implausible vector header n=%d nnz=%d", n, nnz)
	}
	v := &SpVec{N: Index(n), Sorted: sorted != 0}
	var buf [8]byte
	v.Ind, err = readChunked(make([]Index, 0, min(nnz, sliceChunk)), nnz, func() (Index, error) {
		_, e := io.ReadFull(br, buf[:4])
		return Index(binary.LittleEndian.Uint32(buf[:4])), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector indices: %w", err)
	}
	v.Val, err = readChunked(make([]float64, 0, min(nnz, sliceChunk)), nnz, func() (float64, error) {
		_, e := io.ReadFull(br, buf[:8])
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector values: %w", err)
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

func decodeDensePayload(br *bufio.Reader) (*SpVec, error) {
	n, err := readInt64(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading vector dimension: %w", err)
	}
	if n < 0 || n > maxWireDim {
		return nil, fmt.Errorf("sparse: implausible vector dimension %d", n)
	}
	v := NewSpVec(Index(n), 0)
	var buf [8]byte
	for i := int64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("sparse: reading dense values: %w", err)
		}
		if x := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])); x != 0 {
			v.Append(Index(i), x)
		}
	}
	v.Sorted = true
	return v, nil
}

func decodeBitmapPayload(br *bufio.Reader) (*BitVec, error) {
	n, err := readInt64(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bitmap dimension: %w", err)
	}
	nset, err := readInt64(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bitmap count: %w", err)
	}
	hasVals, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bitmap flags: %w", err)
	}
	if n < 0 || n > maxWireDim || nset < 0 || nset > n {
		return nil, fmt.Errorf("sparse: implausible bitmap header n=%d nset=%d", n, nset)
	}
	if err := checkBitVecDim(n); err != nil {
		return nil, err
	}
	nwords := (n + 63) / 64
	b := &BitVec{N: Index(n)}
	var buf [8]byte
	b.Words, err = readChunked(make([]uint64, 0, min(nwords, sliceChunk)), nwords, func() (uint64, error) {
		_, e := io.ReadFull(br, buf[:8])
		return binary.LittleEndian.Uint64(buf[:8]), e
	})
	if err != nil {
		return nil, fmt.Errorf("sparse: reading bitmap words: %w", err)
	}
	count := 0
	for wi, word := range b.Words {
		if wi == len(b.Words)-1 && n%64 != 0 {
			if word>>(uint(n)%64) != 0 {
				return nil, fmt.Errorf("sparse: bitmap has bits set beyond dimension %d", n)
			}
		}
		count += bits.OnesCount64(word)
	}
	if int64(count) != nset {
		return nil, fmt.Errorf("sparse: bitmap header claims %d set bits, words have %d", nset, count)
	}
	b.setCount(count)
	// The O(n) value array is sized from the header too, so allocate it
	// only now — after the stream actually delivered all n/64 words —
	// never on the strength of the header alone.
	b.Val = make([]float64, n)
	if hasVals != 0 {
		for wi, word := range b.Words {
			for word != 0 {
				bit := word & (-word)
				i := Index(wi<<6) + Index(bits.TrailingZeros64(bit))
				if _, err := io.ReadFull(br, buf[:8]); err != nil {
					return nil, fmt.Errorf("sparse: reading bitmap values: %w", err)
				}
				b.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
				word &^= bit
			}
		}
	}
	return b, nil
}

// bitVecToList gathers a bitmap's set entries into a sorted list.
func bitVecToList(b *BitVec) *SpVec {
	v := NewSpVec(b.N, b.Count())
	for wi, word := range b.Words {
		for word != 0 {
			bit := word & (-word)
			i := Index(wi<<6) + Index(bits.TrailingZeros64(bit))
			v.Append(i, b.Val[i])
			word &^= bit
		}
	}
	v.Sorted = true
	return v
}

// vectorWire is the JSON form of a list vector — SpVec's exported
// fields verbatim, the shape requests already carry inline.
type vectorWire struct {
	N      Index     `json:"N"`
	Ind    []Index   `json:"Ind"`
	Val    []float64 `json:"Val"`
	Sorted bool      `json:"Sorted"`
}

// DecodeVectorJSON parses the JSON wire form of a list vector and
// validates the result.
func DecodeVectorJSON(r io.Reader) (*SpVec, error) {
	var w vectorWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("sparse: decoding vector JSON: %w", err)
	}
	v := &SpVec{N: w.N, Ind: w.Ind, Val: w.Val, Sorted: w.Sorted}
	if len(v.Val) != len(v.Ind) {
		return nil, fmt.Errorf("sparse: vector JSON has %d indices but %d values", len(v.Ind), len(v.Val))
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// DecodeVector sniffs the encoding of r — the SPVB binary magic, a
// JSON object, or the "index value" text form ReadVector accepts — and
// decodes accordingly, mirroring DecodeMatrix: one entry point behind
// every vector-accepting path (CLI -vector files, program seeds), so
// callers need no format flag.
func DecodeVector(r io.Reader) (*SpVec, error) {
	br := bufio.NewReader(r)
	for {
		head, err := br.Peek(4)
		if err != nil && len(head) == 0 {
			return nil, fmt.Errorf("sparse: sniffing vector encoding: %w", err)
		}
		if len(head) > 0 && (head[0] == ' ' || head[0] == '\t' || head[0] == '\n' || head[0] == '\r') {
			br.ReadByte()
			continue
		}
		switch {
		case string(head) == vectorMagic:
			return DecodeVectorBinary(br)
		case head[0] == '{':
			return DecodeVectorJSON(br)
		default:
			return ReadVector(br)
		}
	}
}
