package sparse

import "sort"

// Element-wise sparse vector operations in the GraphBLAS style. Graph
// algorithms built on SpMSpV need a small set of vector combinators —
// union-add of two frontiers, filtering by predicate or mask,
// extraction — and keeping them here lets the algorithms stay purely
// vector-algebraic.

// EwiseAdd returns the element-wise union of a and b, combining
// collisions with add (nil means arithmetic +). Both inputs may be
// unsorted; the result is sorted.
func EwiseAdd(a, b *SpVec, add func(x, y float64) float64) *SpVec {
	out := NewSpVec(a.N, 0)
	EwiseAddInto(out, a, b, add)
	return out
}

// EwiseAddInto computes the element-wise union of a and b into dst,
// reusing dst's storage (the into-variant for iterative callers). dst
// must not alias a or b; collisions combine with add (nil means
// arithmetic +). The result is sorted. When both inputs are sorted the
// union is a linear two-pointer merge that allocates only if dst's
// capacity is outgrown; unsorted inputs take a map-based fallback.
func EwiseAddInto(dst, a, b *SpVec, add func(x, y float64) float64) {
	if a.N != b.N {
		panic("sparse: EwiseAddInto dimension mismatch")
	}
	if add == nil {
		add = func(x, y float64) float64 { return x + y }
	}
	if a.Sorted && b.Sorted {
		ewiseAddSorted(dst, a, b, add)
		return
	}
	acc := make(map[Index]float64, a.NNZ()+b.NNZ())
	for k, i := range a.Ind {
		if old, ok := acc[i]; ok {
			acc[i] = add(old, a.Val[k])
		} else {
			acc[i] = a.Val[k]
		}
	}
	for k, i := range b.Ind {
		if old, ok := acc[i]; ok {
			acc[i] = add(old, b.Val[k])
		} else {
			acc[i] = b.Val[k]
		}
	}
	dst.Reset(a.N)
	if cap(dst.Ind) < len(acc) {
		dst.Ind = make([]Index, 0, len(acc))
		dst.Val = make([]float64, 0, len(acc))
	}
	for i := range acc {
		dst.Ind = append(dst.Ind, i)
	}
	sort.Slice(dst.Ind, func(x, y int) bool { return dst.Ind[x] < dst.Ind[y] })
	for _, i := range dst.Ind {
		dst.Val = append(dst.Val, acc[i])
	}
	dst.Sorted = true
}

// ewiseAddSorted merges two sorted vectors into dst in one linear pass.
// Duplicate indices — across the inputs or (tolerated, though Validate
// rejects it) within one — combine with add via the check against dst's
// last emitted index.
func ewiseAddSorted(dst, a, b *SpVec, add func(x, y float64) float64) {
	dst.Reset(a.N)
	if need := a.NNZ() + b.NNZ(); cap(dst.Ind) < need {
		dst.Ind = make([]Index, 0, need)
		dst.Val = make([]float64, 0, need)
	}
	ind, val := dst.Ind[:0], dst.Val[:0]
	k, l := 0, 0
	for k < len(a.Ind) || l < len(b.Ind) {
		var i Index
		var v float64
		if l >= len(b.Ind) || (k < len(a.Ind) && a.Ind[k] <= b.Ind[l]) {
			i, v = a.Ind[k], a.Val[k]
			k++
		} else {
			i, v = b.Ind[l], b.Val[l]
			l++
		}
		if n := len(ind); n > 0 && ind[n-1] == i {
			val[n-1] = add(val[n-1], v)
		} else {
			ind = append(ind, i)
			val = append(val, v)
		}
	}
	dst.Ind, dst.Val = ind, val
	dst.Sorted = true
}

// EwiseMult returns the element-wise intersection of a and b, combining
// with mul (nil means arithmetic ×). The result is sorted.
func EwiseMult(a, b *SpVec, mul func(x, y float64) float64) *SpVec {
	if a.N != b.N {
		panic("sparse: EwiseMult dimension mismatch")
	}
	if mul == nil {
		mul = func(x, y float64) float64 { return x * y }
	}
	bv := make(map[Index]float64, b.NNZ())
	for k, i := range b.Ind {
		bv[i] = b.Val[k]
	}
	out := NewSpVec(a.N, min(a.NNZ(), b.NNZ()))
	for k, i := range a.Ind {
		if y, ok := bv[i]; ok {
			out.Append(i, mul(a.Val[k], y))
		}
	}
	out.Sort()
	return out
}

// Filter returns the entries of v satisfying the predicate, preserving
// order and sortedness.
func Filter(v *SpVec, keep func(i Index, val float64) bool) *SpVec {
	out := NewSpVec(v.N, v.NNZ())
	for k, i := range v.Ind {
		if keep(i, v.Val[k]) {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, v.Val[k])
		}
	}
	out.Sorted = v.Sorted
	return out
}

// FilterMask returns the entries of v admitted by the mask (or, with
// complement, the entries outside it) — the post-hoc form of the masked
// multiply.
func FilterMask(v *SpVec, mask *BitVec, complement bool) *SpVec {
	return Filter(v, func(i Index, _ float64) bool {
		keep := mask.Test(i)
		if complement {
			keep = !keep
		}
		return keep
	})
}

// FilterMaskInPlace drops the entries of v not admitted by the mask
// (or, with complement, the entries inside it), compacting v's storage
// — the allocation-free form engines use to mask a product after the
// fact.
func FilterMaskInPlace(v *SpVec, mask *BitVec, complement bool) {
	w := 0
	for k, i := range v.Ind {
		keep := mask.Test(i)
		if complement {
			keep = !keep
		}
		if keep {
			v.Ind[w], v.Val[w] = i, v.Val[k]
			w++
		}
	}
	v.Ind = v.Ind[:w]
	v.Val = v.Val[:w]
}

// Reduce folds all values of v with the combiner starting from init.
func Reduce(v *SpVec, init float64, combine func(acc, val float64) float64) float64 {
	acc := init
	for _, val := range v.Val {
		acc = combine(acc, val)
	}
	return acc
}

// Scale multiplies every value in place and returns v.
func Scale(v *SpVec, s float64) *SpVec {
	for k := range v.Val {
		v.Val[k] *= s
	}
	return v
}
