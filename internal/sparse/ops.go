package sparse

import "sort"

// Element-wise sparse vector operations in the GraphBLAS style. Graph
// algorithms built on SpMSpV need a small set of vector combinators —
// union-add of two frontiers, filtering by predicate or mask,
// extraction — and keeping them here lets the algorithms stay purely
// vector-algebraic.

// EwiseAdd returns the element-wise union of a and b, combining
// collisions with add (nil means arithmetic +). Both inputs may be
// unsorted; the result is sorted.
func EwiseAdd(a, b *SpVec, add func(x, y float64) float64) *SpVec {
	if a.N != b.N {
		panic("sparse: EwiseAdd dimension mismatch")
	}
	if add == nil {
		add = func(x, y float64) float64 { return x + y }
	}
	acc := make(map[Index]float64, a.NNZ()+b.NNZ())
	for k, i := range a.Ind {
		if old, ok := acc[i]; ok {
			acc[i] = add(old, a.Val[k])
		} else {
			acc[i] = a.Val[k]
		}
	}
	for k, i := range b.Ind {
		if old, ok := acc[i]; ok {
			acc[i] = add(old, b.Val[k])
		} else {
			acc[i] = b.Val[k]
		}
	}
	out := NewSpVec(a.N, len(acc))
	for i := range acc {
		out.Ind = append(out.Ind, i)
	}
	sort.Slice(out.Ind, func(x, y int) bool { return out.Ind[x] < out.Ind[y] })
	for _, i := range out.Ind {
		out.Val = append(out.Val, acc[i])
	}
	out.Sorted = true
	return out
}

// EwiseMult returns the element-wise intersection of a and b, combining
// with mul (nil means arithmetic ×). The result is sorted.
func EwiseMult(a, b *SpVec, mul func(x, y float64) float64) *SpVec {
	if a.N != b.N {
		panic("sparse: EwiseMult dimension mismatch")
	}
	if mul == nil {
		mul = func(x, y float64) float64 { return x * y }
	}
	bv := make(map[Index]float64, b.NNZ())
	for k, i := range b.Ind {
		bv[i] = b.Val[k]
	}
	out := NewSpVec(a.N, min(a.NNZ(), b.NNZ()))
	for k, i := range a.Ind {
		if y, ok := bv[i]; ok {
			out.Append(i, mul(a.Val[k], y))
		}
	}
	out.Sort()
	return out
}

// Filter returns the entries of v satisfying the predicate, preserving
// order and sortedness.
func Filter(v *SpVec, keep func(i Index, val float64) bool) *SpVec {
	out := NewSpVec(v.N, v.NNZ())
	for k, i := range v.Ind {
		if keep(i, v.Val[k]) {
			out.Ind = append(out.Ind, i)
			out.Val = append(out.Val, v.Val[k])
		}
	}
	out.Sorted = v.Sorted
	return out
}

// FilterMask returns the entries of v admitted by the mask (or, with
// complement, the entries outside it) — the post-hoc form of the masked
// multiply.
func FilterMask(v *SpVec, mask *BitVec, complement bool) *SpVec {
	return Filter(v, func(i Index, _ float64) bool {
		keep := mask.Test(i)
		if complement {
			keep = !keep
		}
		return keep
	})
}

// Reduce folds all values of v with the combiner starting from init.
func Reduce(v *SpVec, init float64, combine func(acc, val float64) float64) float64 {
	acc := init
	for _, val := range v.Val {
		acc = combine(acc, val)
	}
	return acc
}

// Scale multiplies every value in place and returns v.
func Scale(v *SpVec, s float64) *SpVec {
	for k := range v.Val {
		v.Val[k] *= s
	}
	return v
}
