package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForStaticCoversRange(t *testing.T) {
	for _, p := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 5, 100} {
			covered := make([]int32, n)
			ForStatic(p, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, c)
				}
			}
		}
	}
}

func TestForStaticWorkerIDsDistinct(t *testing.T) {
	seen := make([]int32, 8)
	ForStatic(8, 64, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c > 1 {
			t.Errorf("worker %d invoked %d times", w, c)
		}
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, chunk := range []int{1, 3, 100} {
			n := 57
			covered := make([]int32, n)
			ForDynamic(p, n, chunk, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			}, nil)
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("p=%d chunk=%d: index %d covered %d times", p, chunk, i, c)
				}
			}
		}
	}
}

func TestForDynamicSyncEvents(t *testing.T) {
	sync := make([]int64, 4)
	ForDynamic(4, 40, 1, func(_, _, _ int) {}, sync)
	var total int64
	for _, s := range sync {
		total += s
	}
	// Every chunk claim is a sync event; there are at least 40 claims.
	if total < 40 {
		t.Errorf("sync events %d < 40", total)
	}
}

func TestForRanges(t *testing.T) {
	ranges := [][2]int{{0, 3}, {3, 3}, {3, 10}} // middle range empty
	covered := make([]int32, 10)
	workers := make([]int32, 3)
	ForRanges(ranges, func(w, lo, hi int) {
		atomic.AddInt32(&workers[w], 1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	if workers[1] != 0 {
		t.Error("empty range invoked its worker")
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	a := []int64{3, 0, 5, 2}
	total := ExclusivePrefixSum(a)
	want := []int64{0, 3, 3, 8}
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	if got := ExclusivePrefixSum(nil); got != 0 {
		t.Errorf("empty prefix sum = %d", got)
	}
}

func TestInclusivePrefixSum(t *testing.T) {
	a := []int64{3, 0, 5, 2}
	total := InclusivePrefixSum(a)
	want := []int64{3, 3, 8, 10}
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestSplitByWeightProperties(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		p := r.Intn(8) + 1
		cum := make([]int64, n+1)
		for i := 1; i <= n; i++ {
			cum[i] = cum[i-1] + int64(r.Intn(100))
		}
		ranges := SplitByWeight(cum, p)
		if len(ranges) != p {
			return false
		}
		// Ranges are contiguous, ordered, and cover [0, n).
		prev := 0
		for _, rg := range ranges {
			if rg[0] != prev || rg[1] < rg[0] {
				return false
			}
			prev = rg[1]
		}
		return prev == n
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitByWeightBalance(t *testing.T) {
	// Uniform weights must produce a near-even split.
	n, p := 1000, 4
	cum := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		cum[i] = int64(i)
	}
	ranges := SplitByWeight(cum, p)
	for _, rg := range ranges {
		w := cum[rg[1]] - cum[rg[0]]
		if w < 200 || w > 300 {
			t.Errorf("range %v weight %d far from 250", rg, w)
		}
	}
}

func TestSplitByWeightSkew(t *testing.T) {
	// One huge item: it must land alone in some range, and the others
	// must still be covered.
	cum := []int64{0, 1, 2, 1000, 1001}
	ranges := SplitByWeight(cum, 3)
	covered := 0
	for _, rg := range ranges {
		covered += rg[1] - rg[0]
	}
	if covered != 4 {
		t.Errorf("covered %d items, want 4 (%v)", covered, ranges)
	}
}

func TestSplitByWeightZeroWeights(t *testing.T) {
	cum := []int64{0, 0, 0, 0} // three items, all weight zero
	ranges := SplitByWeight(cum, 2)
	covered := 0
	for _, rg := range ranges {
		covered += rg[1] - rg[0]
	}
	if covered != 3 {
		t.Errorf("zero-weight items dropped: %v", ranges)
	}
}

func TestEvenRanges(t *testing.T) {
	ranges := EvenRanges(10, 3)
	if ranges[0] != [2]int{0, 3} || ranges[1] != [2]int{3, 6} || ranges[2] != [2]int{6, 10} {
		t.Errorf("ranges = %v", ranges)
	}
}

func TestThreads(t *testing.T) {
	if Threads(5) != 5 {
		t.Error("explicit thread count not honored")
	}
	if Threads(0) < 1 || Threads(-1) < 1 {
		t.Error("default thread count < 1")
	}
}
