// Package par provides the fork-join data-parallel primitives used by
// every algorithm in this repository: static, dynamic and work-stealing
// parallel loops, weighted range splitting, and prefix sums.
//
// The package plays the role OpenMP plays in the paper's implementation:
// ForStatic corresponds to "#pragma omp parallel for schedule(static)",
// ForDynamic to "schedule(dynamic, chunk)", and ForChunks to the guided
// over-decomposed schedule the paper's 8t bucket split approximates.
// Worker identities are stable integers in [0, p), so callers can keep
// per-worker state (private SPA pieces, counters) without
// synchronization.
//
// All loops execute on a persistent work-stealing Executor (see
// executor.go) instead of spawning goroutines per call; the p == 1 path
// of every primitive runs inline on the caller with no scheduling
// machinery at all.
package par

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Threads resolves a requested thread count: values <= 0 mean "use
// GOMAXPROCS".
func Threads(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// ForStatic executes fn over [0, n) split into at most p contiguous,
// near-equal chunks. fn receives the worker id and its half-open range.
// Workers with an empty range are not spawned. When p == 1 the function
// runs on the calling goroutine with no scheduling overhead.
func ForStatic(p, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p > n {
		p = n
	}
	if p <= 1 {
		fn(0, 0, n)
		return
	}
	Default().Run(p, p, func(_, w int) {
		lo, hi := w*n/p, (w+1)*n/p
		if lo < hi {
			fn(w, lo, hi)
		}
	}, nil)
}

// ForRanges executes fn once per pre-computed range. ranges[w] = {lo, hi}.
// Empty ranges are skipped; worker ids follow the slice index.
func ForRanges(ranges [][2]int, fn func(worker, lo, hi int)) {
	live := 0
	last := -1
	for w, r := range ranges {
		if r[0] < r[1] {
			live++
			last = w
		}
	}
	if live == 0 {
		return
	}
	if live == 1 {
		fn(last, ranges[last][0], ranges[last][1])
		return
	}
	Default().Run(live, len(ranges), func(_, w int) {
		if r := ranges[w]; r[0] < r[1] {
			fn(w, r[0], r[1])
		}
	}, nil)
}

// ForDynamic executes fn over [0, n) in chunks of the given size claimed
// via an atomic counter — the moral equivalent of OpenMP dynamic
// scheduling. syncEvents, when non-nil, receives one increment per
// productive chunk claim per worker (the paper counts these as the
// synchronization cost of dynamic scheduling): claims total exactly
// ⌈n/chunk⌉ across workers — the fetch that discovers the range is
// exhausted is not a chunk claim.
func ForDynamic(p, n, chunk int, fn func(worker, lo, hi int), syncEvents []int64) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	if p > (n+chunk-1)/chunk {
		p = (n + chunk - 1) / chunk
	}
	if p <= 1 {
		fn(0, 0, n)
		return
	}
	var next int64
	body := func(w int) {
		for {
			hi := atomic.AddInt64(&next, int64(chunk))
			lo := hi - int64(chunk)
			if lo >= int64(n) {
				return
			}
			if syncEvents != nil {
				syncEvents[w]++
			}
			if hi > int64(n) {
				hi = int64(n)
			}
			fn(w, int(lo), int(hi))
		}
	}
	Default().Run(p, p, func(_, w int) { body(w) }, nil)
}

// ExclusivePrefixSum converts a in place into its exclusive prefix sum
// and returns the grand total: out[i] = sum(a[0..i)), total = sum(a).
func ExclusivePrefixSum(a []int64) int64 {
	var sum int64
	for i := range a {
		v := a[i]
		a[i] = sum
		sum += v
	}
	return sum
}

// InclusivePrefixSum converts a in place into its inclusive prefix sum
// and returns the grand total.
func InclusivePrefixSum(a []int64) int64 {
	var sum int64
	for i := range a {
		sum += a[i]
		a[i] = sum
	}
	return sum
}

// SplitByWeight partitions the items [0, n) into at most p contiguous
// ranges of near-equal total weight, where cum is the exclusive
// cumulative weight array of length n+1 (cum[0] = 0, cum[n] = total).
// This implements the paper's high-span fix (§III-B): work assignment
// "based on nonzeros, as opposed to [entries], of x".
//
// The returned slice has exactly p entries; trailing ranges may be empty
// when n < p or the weight is concentrated.
func SplitByWeight(cum []int64, p int) [][2]int {
	return SplitByWeightInto(cum, p, nil)
}

// SplitByWeightInto is SplitByWeight reusing dst's capacity, so
// steady-state callers (the SpMSpV inner loop) allocate nothing.
func SplitByWeightInto(cum []int64, p int, dst [][2]int) [][2]int {
	ranges := rangesBuf(dst, p)
	n := len(cum) - 1
	if n <= 0 || p <= 0 {
		return ranges
	}
	total := cum[n]
	if total <= 0 {
		// All weights zero: fall back to an even split by count.
		for w := 0; w < p; w++ {
			ranges[w] = [2]int{w * n / p, (w + 1) * n / p}
		}
		return ranges
	}
	prev := 0
	for w := 0; w < p; w++ {
		target := total * int64(w+1) / int64(p)
		// First index whose cumulative weight reaches the target.
		hi := prev + sort.Search(n-prev, func(i int) bool {
			return cum[prev+i+1] >= target
		}) + 1
		if hi > n {
			hi = n
		}
		if w == p-1 {
			hi = n
		}
		ranges[w] = [2]int{prev, hi}
		prev = hi
	}
	return ranges
}

// EvenRanges splits [0, n) into p contiguous near-equal ranges (the
// unweighted analogue of SplitByWeight).
func EvenRanges(n, p int) [][2]int {
	return EvenRangesInto(n, p, nil)
}

// EvenRangesInto is EvenRanges reusing dst's capacity.
func EvenRangesInto(n, p int, dst [][2]int) [][2]int {
	ranges := rangesBuf(dst, p)
	for w := 0; w < p; w++ {
		ranges[w] = [2]int{w * n / p, (w + 1) * n / p}
	}
	return ranges
}

// rangesBuf returns a zeroed length-p range slice, reusing dst's
// backing array when large enough.
func rangesBuf(dst [][2]int, p int) [][2]int {
	if cap(dst) < p {
		return make([][2]int, p)
	}
	dst = dst[:p]
	for i := range dst {
		dst[i] = [2]int{}
	}
	return dst
}
