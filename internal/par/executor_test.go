package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestExecutorRunCoversEveryTaskOnce(t *testing.T) {
	ex := NewExecutor(3)
	for _, tc := range []struct{ p, n int }{
		{1, 1}, {1, 17}, {2, 2}, {3, 7}, {4, 64}, {8, 5}, {16, 1000},
	} {
		ran := make([]int32, tc.n)
		maxSlot := int32(-1)
		ex.Run(tc.p, tc.n, func(slot, task int) {
			atomic.AddInt32(&ran[task], 1)
			for {
				cur := atomic.LoadInt32(&maxSlot)
				if int32(slot) <= cur || atomic.CompareAndSwapInt32(&maxSlot, cur, int32(slot)) {
					break
				}
			}
		}, nil)
		for task, c := range ran {
			if c != 1 {
				t.Fatalf("p=%d n=%d: task %d ran %d times", tc.p, tc.n, task, c)
			}
		}
		limit := tc.p
		if tc.n < limit {
			limit = tc.n
		}
		if int(maxSlot) >= limit {
			t.Fatalf("p=%d n=%d: slot %d out of range [0,%d)", tc.p, tc.n, maxSlot, limit)
		}
	}
}

func TestForChunksWeightedCoverage(t *testing.T) {
	ex := NewExecutor(2)
	// Heavily skewed weights: chunk 0 carries almost everything.
	weights := []int64{1000, 1, 1, 1, 1, 1, 1, 1}
	cum := make([]int64, len(weights)+1)
	var sum int64
	for i, w := range weights {
		cum[i] = sum
		sum += w
		cum[i+1] = sum
	}
	ran := make([]int32, len(weights))
	var st JobStats
	ex.ForChunks(4, len(weights), cum, func(_, chunk int) {
		atomic.AddInt32(&ran[chunk], 1)
	}, &st)
	for c, n := range ran {
		if n != 1 {
			t.Fatalf("chunk %d ran %d times", c, n)
		}
	}
	var claims, steals int64
	for w := range st.Claims {
		claims += st.Claims[w]
		steals += st.Steals[w]
	}
	// Claims+steals account for every chunk exactly once — the
	// deterministic aggregate the work counters rely on.
	if claims+steals != int64(len(weights)) {
		t.Fatalf("claims %d + steals %d != %d chunks", claims, steals, len(weights))
	}
}

func TestJobStatsAccumulate(t *testing.T) {
	ex := NewExecutor(2)
	var st JobStats
	for i := 0; i < 5; i++ {
		ex.Run(4, 12, func(_, _ int) {}, &st)
	}
	var total int64
	for w := range st.Claims {
		total += st.Claims[w] + st.Steals[w]
	}
	if total != 60 {
		t.Fatalf("claims+steals total = %d, want 60 (5 runs x 12 tasks)", total)
	}
}

// TestForDynamicExactClaims pins the claim count: every productive chunk
// claim is one sync event, and the fetch that discovers the exhausted
// range is not. (Regression: each worker used to record one phantom
// claim for its final empty fetch, inflating the total by up to p.)
func TestForDynamicExactClaims(t *testing.T) {
	for _, tc := range []struct {
		p, n, chunk int
		want        int64
	}{
		{4, 40, 1, 40},
		{4, 40, 7, 6}, // ceil(40/7)
		{8, 3, 1, 3},  // more workers than chunks
		// One chunk clamps to the serial path, which performs no atomic
		// claims at all (matching Threads:1 multiplies reporting zero
		// SyncEvents).
		{2, 100, 100, 0},
	} {
		sync := make([]int64, tc.p)
		var ran int64
		ForDynamic(tc.p, tc.n, tc.chunk, func(_, lo, hi int) {
			atomic.AddInt64(&ran, int64(hi-lo))
		}, sync)
		var total int64
		for _, s := range sync {
			total += s
		}
		if total != tc.want {
			t.Errorf("p=%d n=%d chunk=%d: %d claims, want exactly %d",
				tc.p, tc.n, tc.chunk, total, tc.want)
		}
		if ran != int64(tc.n) {
			t.Errorf("p=%d n=%d chunk=%d: covered %d items, want %d",
				tc.p, tc.n, tc.chunk, ran, tc.n)
		}
	}
}

func TestExecutorNestedRun(t *testing.T) {
	ex := NewExecutor(2)
	var total atomic.Int64
	ex.Run(4, 4, func(_, _ int) {
		ex.Run(4, 8, func(_, _ int) {
			total.Add(1)
		}, nil)
	}, nil)
	if got := total.Load(); got != 32 {
		t.Fatalf("nested runs executed %d inner tasks, want 32", got)
	}
}

func TestExecutorSharedAcrossGoroutines(t *testing.T) {
	ex := NewExecutor(runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ex.Run(4, 16, func(_, _ int) { total.Add(1) }, nil)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*16 {
		t.Fatalf("executed %d tasks, want %d", got, 8*50*16)
	}
}

func TestSlotsAffinityAndOverflow(t *testing.T) {
	built := 0
	s := NewSlots(2, func() *int { built++; v := built; return &v })

	a, sa := s.Get()
	if sa != 0 || *a != 1 {
		t.Fatalf("first Get = (%d, slot %d), want value 1 in slot 0", *a, sa)
	}
	b, sb := s.Get()
	if sb != 1 {
		t.Fatalf("second Get slot = %d, want 1", sb)
	}
	c, sc := s.Get()
	if sc != -1 {
		t.Fatalf("overflow Get slot = %d, want -1 (pool fallback)", sc)
	}
	s.Put(c, sc)
	s.Put(b, sb)
	s.Put(a, sa)

	// A steady caller gets slot 0's warm value back — the affinity that
	// a bare sync.Pool does not guarantee.
	a2, sa2 := s.Get()
	if sa2 != 0 || a2 != a {
		t.Fatalf("re-Get = (%p, slot %d), want slot 0's pinned value %p", a2, sa2, a)
	}
	s.Put(a2, sa2)
}

func TestSlotsConcurrent(t *testing.T) {
	s := NewSlots(4, func() *[256]byte { return new([256]byte) })
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v, slot := s.Get()
				v[0]++ // exclusive ownership: racy only if Get handed the value out twice
				s.Put(v, slot)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDispatch compares fork-join dispatch cost: the persistent
// executor versus the per-call goroutine spawn pattern it replaced. The
// body is empty, so ns/op is pure scheduling overhead. The acceptance
// bar is executor ≥ 5x cheaper at p=4 on a multi-core runner.
func BenchmarkDispatch(b *testing.B) {
	ex := NewExecutor(runtime.GOMAXPROCS(0) - 1)
	nop := func(_, _ int) {}
	b.Run("executor/p=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Run(4, 4, nop, nil)
		}
	})
	b.Run("spawn/p=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 1; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					nop(w, 0)
				}(w)
			}
			nop(0, 0)
			wg.Wait()
		}
	})
	b.Run("executor/p=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.Run(1, 1, nop, nil)
		}
	})
}
