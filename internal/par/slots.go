package par

import (
	"sync"
	"sync/atomic"
)

// Slots pins up to n lazily-created values to stable slot ids, with a
// sync.Pool overflow for bursts. It replaces a bare sync.Pool for
// per-call workspaces: a steady caller reclaims the same slot — and
// therefore the same warm, fully-grown workspace — on every call
// (sync.Pool gives no such affinity and may drop workspaces at GC),
// while more than n concurrent callers spill to the pool instead of
// blocking.
//
// Get scans the slot array front-to-back and CAS-claims the first free
// slot, so slot 0 is the hottest value; the value itself is created on
// the slot's first claim. Put with the slot id returned by Get releases
// the slot (or returns an overflow value to the pool).
type Slots[T any] struct {
	state []slotFlag
	vals  []atomic.Pointer[T]
	fresh func() *T
	pool  sync.Pool
}

// slotFlag is one slot's claim word, padded to its own cache line.
type slotFlag struct {
	v atomic.Int32
	_ [60]byte
}

// NewSlots returns a slot set of size n (at least 1); fresh builds a
// value the first time a slot is claimed and for every overflow miss.
func NewSlots[T any](n int, fresh func() *T) *Slots[T] {
	if n < 1 {
		n = 1
	}
	s := &Slots[T]{
		state: make([]slotFlag, n),
		vals:  make([]atomic.Pointer[T], n),
		fresh: fresh,
	}
	s.pool.New = func() any { return fresh() }
	return s
}

// Get claims a free slot and returns its value with the slot id. When
// every slot is busy — more concurrent callers than slots — it falls
// back to the overflow pool and returns slot id -1.
func (s *Slots[T]) Get() (*T, int) {
	for i := range s.state {
		if s.state[i].v.Load() == 0 && s.state[i].v.CompareAndSwap(0, 1) {
			v := s.vals[i].Load()
			if v == nil {
				v = s.fresh()
				s.vals[i].Store(v)
			}
			return v, i
		}
	}
	return s.pool.Get().(*T), -1
}

// Put releases the slot claimed by Get (pass the value and slot id Get
// returned; -1 routes the value back to the overflow pool).
func (s *Slots[T]) Put(v *T, slot int) {
	if slot < 0 {
		s.pool.Put(v)
		return
	}
	s.state[slot].v.Store(0)
}

// Len reports the number of pinned slots.
func (s *Slots[T]) Len() int { return len(s.state) }
