package par

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Executor is a persistent pool of long-lived worker goroutines that
// execute fork-join parallel loops. It replaces the per-call
// go+WaitGroup pattern: a Run call packages its tasks as one job,
// announces it to the pool over a buffered channel, and participates in
// the work itself, so dispatch costs a few atomics and channel wakes
// instead of p-1 goroutine spawns.
//
// Scheduling is work-stealing over bounded per-slot deques. A job with
// p slots assigns each slot a contiguous share of the task index space
// as its deque (one packed head|tail word per slot — a bounded
// Chase–Lev-style deque specialized to contiguous ranges). Each
// participant claims a dense slot id in [0, p), pops tasks from the
// front of its own deque, and when that runs dry steals from the back
// of sibling deques, so stragglers shed work to idle slots. Every task
// runs exactly once regardless of how many pool workers are free: the
// caller always participates and can drain every deque by itself, which
// also makes nested Run calls deadlock-free.
//
// Worker-id stability contract: the slot id passed to fn is dense,
// unique within the job, and owned by one participant for the whole
// job, so per-worker state indexed by slot id (counters, scratch
// buffers, SPA pieces) needs no synchronization. Slot ids are job-local
// — two consecutive jobs may hand slot 0 to different goroutines — so
// state that must survive across jobs belongs in Slots, not in
// slot-indexed arrays.
type Executor struct {
	nworkers int
	runq     chan *job
	start    sync.Once
}

// NewExecutor returns an executor with the given number of pool
// workers. The goroutines are started lazily on the first parallel Run;
// workers ≤ 0 means no pool workers at all, in which case every Run
// executes inline on the caller (still correct — just serial).
func NewExecutor(workers int) *Executor {
	if workers < 0 {
		workers = 0
	}
	qcap := workers
	if qcap < 1 {
		qcap = 1
	}
	return &Executor{nworkers: workers, runq: make(chan *job, qcap)}
}

// Workers reports the pool size (not counting the calling goroutine,
// which always participates in its own jobs).
func (e *Executor) Workers() int { return e.nworkers }

var defaultExec atomic.Pointer[Executor]

func init() {
	defaultExec.Store(NewExecutor(runtime.GOMAXPROCS(0) - 1))
}

// Default returns the process-wide executor shared by every parallel
// loop in this package. Its pool holds GOMAXPROCS-1 workers, so one
// saturating job plus the caller uses every P, while concurrent jobs
// (a server coalescing many requests) share the same bounded pool
// instead of oversubscribing the machine with spawned goroutines.
func Default() *Executor { return defaultExec.Load() }

// SetDefaultWorkers replaces the process-wide executor with one holding
// n pool workers (n ≤ 0 forces fully inline execution). Call it at
// startup, before parallel work begins: jobs in flight on the old
// executor finish there, but any pool goroutines it already started are
// not reclaimed.
func SetDefaultWorkers(n int) {
	defaultExec.Store(NewExecutor(n))
}

// JobStats accumulates per-slot scheduling statistics across executor
// jobs. All three slices are indexed by slot id and grown by Ensure;
// the same JobStats may be passed to many consecutive jobs (stats
// accumulate) but not to concurrent ones.
//
// Claims[w]+Steals[w] sums to the number of tasks slot w executed, and
// the grand total over slots always equals the number of tasks
// scheduled — a deterministic quantity. The split between Claims and
// Steals, and IdleNs, depend on runtime timing.
type JobStats struct {
	// Claims counts tasks a slot popped from its own deque.
	Claims []int64
	// Steals counts tasks a slot stole from a sibling's deque.
	Steals []int64
	// IdleNs accumulates the nanoseconds between a slot's last task
	// completion and the job's end — time spent waiting at the join
	// barrier while stragglers finished (for a slot that never ran a
	// task, the whole job duration).
	IdleNs []int64
}

// Ensure grows the stat slices to cover p slots, preserving totals.
func (st *JobStats) Ensure(p int) {
	st.Claims = growInt64(st.Claims, p)
	st.Steals = growInt64(st.Steals, p)
	st.IdleNs = growInt64(st.IdleNs, p)
}

// Reset zeroes every accumulated statistic.
func (st *JobStats) Reset() {
	clear(st.Claims)
	clear(st.Steals)
	clear(st.IdleNs)
}

func growInt64(s []int64, n int) []int64 {
	if len(s) >= n {
		return s
	}
	out := make([]int64, n)
	copy(out, s)
	return out
}

// deque is one slot's bounded work queue: a contiguous range [lo, hi)
// of task indices packed into a single atomic word (lo in the high 32
// bits). The owner pops from the front, thieves from the back; both
// sides race through CAS on the one word, and the padding keeps
// neighboring slots' words off each other's cache line.
type deque struct {
	hd atomic.Uint64
	_  [56]byte
}

func packRange(lo, hi int) uint64 {
	return uint64(uint32(lo))<<32 | uint64(uint32(hi))
}

func unpackRange(v uint64) (lo, hi int) {
	return int(v >> 32), int(uint32(v))
}

func (d *deque) popFront() (int, bool) {
	for {
		v := d.hd.Load()
		lo, hi := unpackRange(v)
		if lo >= hi {
			return 0, false
		}
		if d.hd.CompareAndSwap(v, packRange(lo+1, hi)) {
			return lo, true
		}
	}
}

func (d *deque) popBack() (int, bool) {
	for {
		v := d.hd.Load()
		lo, hi := unpackRange(v)
		if lo >= hi {
			return 0, false
		}
		if d.hd.CompareAndSwap(v, packRange(lo, hi-1)) {
			return hi - 1, true
		}
	}
}

// slotState is one slot's private scheduling-stat scratch, padded so
// concurrent participants never share a cache line. Written only by the
// slot's owner; read by the job's caller after the join barrier.
type slotState struct {
	claims  int64
	steals  int64
	lastEnd int64
	_       [40]byte
}

// job is one fork-join parallel loop in flight.
type job struct {
	fn      func(slot, task int)
	deques  []deque
	nslots  int
	slots   atomic.Int32 // dense slot allocator
	pending atomic.Int64 // tasks not yet completed
	done    chan struct{}
	stats   []slotState // non-nil only when the caller asked for stats
}

// participate claims a slot and works until no task remains anywhere.
// Extra participants (pool workers arriving after the job is fully
// crewed or fully drained) leave immediately.
func (j *job) participate() {
	slot := int(j.slots.Add(1)) - 1
	if slot >= j.nslots {
		return
	}
	own := &j.deques[slot]
	for {
		task, ok := own.popFront()
		if !ok {
			break
		}
		if j.stats != nil {
			j.stats[slot].claims++
		}
		j.runTask(slot, task)
	}
	for {
		stole := false
		for i := 1; i < j.nslots; i++ {
			v := &j.deques[(slot+i)%j.nslots]
			task, ok := v.popBack()
			if !ok {
				continue
			}
			if j.stats != nil {
				j.stats[slot].steals++
			}
			j.runTask(slot, task)
			stole = true
			break
		}
		if !stole {
			return
		}
	}
}

func (j *job) runTask(slot, task int) {
	j.fn(slot, task)
	if j.stats != nil {
		j.stats[slot].lastEnd = time.Now().UnixNano()
	}
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

func (e *Executor) startWorkers() {
	for i := 0; i < e.nworkers; i++ {
		go func() {
			for j := range e.runq {
				j.participate()
			}
		}()
	}
}

// Run executes tasks [0, ntasks) on up to p slots, with each slot's
// initial share an even contiguous range of the task space. fn receives
// the executing slot id (dense in [0, min(p, ntasks))) and the task
// index; every task runs exactly once. Run returns after all tasks have
// completed. st, when non-nil, accumulates per-slot scheduling stats.
//
// When p ≤ 1 (or the pool is empty) the loop runs inline on the caller
// with no scheduling machinery at all.
func (e *Executor) Run(p, ntasks int, fn func(slot, task int), st *JobStats) {
	e.run(p, ntasks, nil, fn, st)
}

// ForChunks is Run with weighted initial shares: cum, when non-nil, is
// the exclusive cumulative weight array of the nchunks chunks (length
// nchunks+1, cum[0] = 0), and each slot's initial deque covers a
// contiguous chunk range of near-equal total weight. Stealing then
// corrects whatever imbalance the weights failed to predict — the
// over-decomposition + stealing discipline the paper's 8t bucket split
// approximates with dynamic scheduling.
func (e *Executor) ForChunks(p, nchunks int, cum []int64, fn func(worker, chunk int), st *JobStats) {
	e.run(p, nchunks, cum, fn, st)
}

// ForChunks runs the weighted stealable chunk loop on the default
// executor (see Executor.ForChunks).
func ForChunks(p, nchunks int, cum []int64, fn func(worker, chunk int), st *JobStats) {
	Default().run(p, nchunks, cum, fn, st)
}

func (e *Executor) run(p, ntasks int, cum []int64, fn func(slot, task int), st *JobStats) {
	if ntasks <= 0 {
		return
	}
	if p > ntasks {
		p = ntasks
	}
	if p <= 1 || e.nworkers == 0 {
		for task := 0; task < ntasks; task++ {
			fn(0, task)
		}
		if st != nil {
			st.Ensure(1)
			st.Claims[0] += int64(ntasks)
		}
		return
	}

	j := &job{fn: fn, nslots: p, done: make(chan struct{})}
	j.pending.Store(int64(ntasks))
	j.deques = make([]deque, p)
	assignShares(j.deques, ntasks, cum)
	var begin int64
	if st != nil {
		st.Ensure(p)
		j.stats = make([]slotState, p)
		begin = time.Now().UnixNano()
	}

	e.start.Do(e.startWorkers)
	helpers := p - 1
	if helpers > e.nworkers {
		helpers = e.nworkers
	}
announce:
	for i := 0; i < helpers; i++ {
		select {
		case e.runq <- j:
		default:
			// Every pool worker is busy; whoever we reached (plus the
			// caller, who can drain everything alone) finishes the job.
			break announce
		}
	}
	j.participate()
	<-j.done

	if st != nil {
		end := time.Now().UnixNano()
		for w := 0; w < p; w++ {
			s := &j.stats[w]
			st.Claims[w] += s.claims
			st.Steals[w] += s.steals
			last := s.lastEnd
			if last == 0 {
				last = begin
			}
			st.IdleNs[w] += end - last
		}
	}
}

// assignShares writes each slot's initial contiguous task range into
// its deque: even by count, or balanced by the exclusive cumulative
// weights cum (the same discipline as SplitByWeight).
func assignShares(d []deque, ntasks int, cum []int64) {
	p := len(d)
	if cum == nil || cum[ntasks] <= 0 {
		for w := 0; w < p; w++ {
			d[w].hd.Store(packRange(w*ntasks/p, (w+1)*ntasks/p))
		}
		return
	}
	total := cum[ntasks]
	prev := 0
	for w := 0; w < p; w++ {
		hi := ntasks
		if w < p-1 {
			target := total * int64(w+1) / int64(p)
			hi = prev + sort.Search(ntasks-prev, func(i int) bool {
				return cum[prev+i+1] >= target
			}) + 1
			if hi > ntasks {
				hi = ntasks
			}
		}
		d[w].hd.Store(packRange(prev, hi))
		prev = hi
	}
}
