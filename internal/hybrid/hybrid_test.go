package hybrid

import (
	"math/rand"
	"sync"
	"testing"

	"spmspv/internal/baselines"
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

func opt(threads int) engine.Options {
	return engine.Options{Threads: threads, SortOutput: true}
}

// TestRegistryConstruction verifies the promotion contract: Hybrid is
// in the registry, constructible through engine.New, named, and
// calibrated when no threshold is given.
func TestRegistryConstruction(t *testing.T) {
	found := false
	for _, alg := range engine.Registered() {
		if alg == engine.Hybrid {
			found = true
		}
	}
	if !found {
		t.Fatal("engine.Hybrid not in Registered()")
	}
	if engine.Hybrid.String() != "Hybrid" {
		t.Errorf("name = %q", engine.Hybrid.String())
	}

	rng := rand.New(rand.NewSource(2))
	a := testutil.RandomCSC(rng, 400, 400, 5)
	e, err := engine.New(a, engine.Hybrid, opt(2))
	if err != nil {
		t.Fatal(err)
	}
	h := e.(*Engine)
	if !h.Calibrated() {
		t.Error("zero HybridThreshold should trigger calibration")
	}
	if th := h.Threshold(); !(th > 0 && th <= 1) {
		t.Errorf("calibrated threshold %g outside (0, 1]", th)
	}

	// An explicit threshold is honored verbatim.
	e, err = engine.New(a, engine.Hybrid, engine.Options{Threads: 2, HybridThreshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if h := e.(*Engine); h.Calibrated() || h.Threshold() != 0.25 {
		t.Errorf("explicit threshold: calibrated=%v th=%g", h.Calibrated(), h.Threshold())
	}

	// A negative threshold pins the vector-driven side.
	h = NewWithThreshold(a, opt(2), -1)
	x := testutil.RandomVector(rng, 400, 400, true)
	y := sparse.NewSpVec(0, 0)
	h.Multiply(x, y, semiring.Arithmetic)
	if h.Switches() != 0 {
		t.Error("pinned engine took the matrix-driven path")
	}
}

// TestHybridMatchesOracleAtEveryThreshold is the property test of the
// promotion issue: at thresholds 0 (always matrix-driven), 0.05
// (mixed) and 1 (matrix-driven only when fully dense), plain, masked
// and accumulate multiplies must match the sequential reference oracle
// for every probed input density and semiring.
func TestHybridMatchesOracleAtEveryThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := testutil.RandomCSC(rng, 500, 500, 4)
	n := a.NumCols
	srs := []semiring.Semiring{semiring.Arithmetic, semiring.MinPlus, semiring.MinSelect2nd}

	mask := sparse.NewBitVec(n)
	maskSrc := sparse.NewSpVec(n, int(n)/3)
	for v := sparse.Index(0); v < n; v += 3 {
		maskSrc.Append(v, 1)
	}
	mask.SetFrom(maskSrc)

	for _, th := range []float64{0, 0.05, 1} {
		h := NewWithThreshold(a, opt(3), th)
		for _, f := range []int{0, 1, 7, 60, 250, 500} {
			x := testutil.RandomVector(rng, n, f, true)
			for _, sr := range srs {
				want := baselines.Reference(a, x, sr)
				y := sparse.NewSpVec(0, 0)

				h.Multiply(x, y, sr)
				if !y.EqualValues(want, 1e-9) {
					t.Fatalf("th=%g f=%d sr=%s: plain multiply differs from oracle", th, f, sr.Name)
				}

				h.MultiplyMasked(x, y, sr, mask, false)
				wantMasked := sparse.Filter(want, func(i sparse.Index, _ float64) bool { return mask.Test(i) })
				if !y.EqualValues(wantMasked, 1e-9) {
					t.Fatalf("th=%g f=%d sr=%s: masked multiply differs from oracle", th, f, sr.Name)
				}

				h.MultiplyMasked(x, y, sr, mask, true)
				wantCompl := sparse.Filter(want, func(i sparse.Index, _ float64) bool { return !mask.Test(i) })
				if !y.EqualValues(wantCompl, 1e-9) {
					t.Fatalf("th=%g f=%d sr=%s: complement-masked multiply differs from oracle", th, f, sr.Name)
				}

				// Accumulate: y ← accum ⊕ (A·x), the GraphBLAS pattern the
				// facade builds from Multiply + EwiseAddInto.
				accum := testutil.RandomVector(rng, a.NumRows, 40, true)
				prod := sparse.NewSpVec(0, 0)
				h.Multiply(x, prod, sr)
				got := sparse.EwiseAdd(prod, accum, sr.Add)
				wantAcc := sparse.EwiseAdd(want, accum, sr.Add)
				if !got.EqualValues(wantAcc, 1e-9) {
					t.Fatalf("th=%g f=%d sr=%s: accumulate differs from oracle", th, f, sr.Name)
				}
			}
		}
		// Threshold semantics: 0 routes everything matrix-driven.
		if th == 0 {
			if got := h.Switches(); got == 0 {
				t.Error("threshold 0 never took the matrix-driven path")
			}
		}
	}
}

// TestSwitchAccounting pins the direction-switch bookkeeping: sparse
// inputs stay vector-driven, dense inputs switch, and the count lands
// in Counters().DirectionSwitches and resets.
func TestSwitchAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := testutil.RandomCSC(rng, 1000, 1000, 4)
	h := NewWithThreshold(a, opt(2), 0.1)
	y := sparse.NewSpVec(0, 0)

	sparseX := sparse.NewSpVec(1000, 1)
	sparseX.Append(5, 1)
	h.Multiply(sparseX, y, semiring.Arithmetic)
	if h.Switches() != 0 {
		t.Error("sparse input should use the bucket side")
	}

	denseX := testutil.RandomVector(rng, 1000, 500, true)
	h.Multiply(denseX, y, semiring.Arithmetic)
	if h.Switches() != 1 {
		t.Errorf("switches = %d, want 1", h.Switches())
	}
	if c := h.Counters(); c.DirectionSwitches != 1 {
		t.Errorf("Counters().DirectionSwitches = %d, want 1", c.DirectionSwitches)
	}
	h.ResetCounters()
	if h.Switches() != 0 || h.Counters().Work() != 0 {
		t.Error("reset failed")
	}
	if h.Name() != "Hybrid" {
		t.Error("name")
	}
}

// TestHybridBatchMatchesLoop checks MultiplyBatch with frontiers
// straddling the threshold: the split between the batched bucket path
// and the per-call matrix path must be invisible in the results.
func TestHybridBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := testutil.RandomCSC(rng, 600, 600, 5)
	h := NewWithThreshold(a, opt(2), 0.1)

	xs := make([]*sparse.SpVec, 6)
	ys := make([]*sparse.SpVec, 6)
	for q := range xs {
		f := 5 + q*2
		if q%2 == 1 {
			f = 200 + q*30 // above threshold: matrix-driven
		}
		xs[q] = testutil.RandomVector(rng, 600, f, true)
		ys[q] = sparse.NewSpVec(0, 0)
	}
	h.MultiplyBatch(xs, ys, semiring.MinPlus)
	if h.Switches() != 3 {
		t.Errorf("switches = %d, want 3 (the dense half of the batch)", h.Switches())
	}
	for q := range xs {
		want := baselines.Reference(a, xs[q], semiring.MinPlus)
		if !ys[q].EqualValues(want, 1e-9) {
			t.Errorf("frontier %d differs from oracle", q)
		}
	}
}

// TestConcurrentHybrid hammers one shared hybrid engine from many
// goroutines mixing densities (so both directions race) — the
// engine-layer concurrency contract, meaningful under -race.
func TestConcurrentHybrid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := testutil.RandomCSC(rng, 500, 500, 5)
	h := NewWithThreshold(a, opt(2), 0.1)

	type tc struct {
		x    *sparse.SpVec
		want *sparse.SpVec
	}
	cases := make([]tc, 6)
	for i := range cases {
		f := 10 + i*3
		if i%2 == 0 {
			f = 150 + i*40
		}
		x := testutil.RandomVector(rng, 500, f, true)
		cases[i] = tc{x: x, want: baselines.Reference(a, x, semiring.Arithmetic)}
	}

	var wg sync.WaitGroup
	errs := make([]string, 10)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := sparse.NewSpVec(0, 0)
			for rep := 0; rep < 25; rep++ {
				c := cases[(g+rep)%len(cases)]
				h.Multiply(c.x, y, semiring.Arithmetic)
				if !y.EqualValues(c.want, 1e-9) {
					errs[g] = "result mismatch under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Errorf("goroutine %d: %s", g, e)
		}
	}
}
