package hybrid

import (
	"os"
	"path/filepath"
	"testing"

	"spmspv/internal/engine"
	"spmspv/internal/graphgen"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(8), 1)
	b := graphgen.RMAT(graphgen.DefaultRMAT(8), 1)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical matrices got different fingerprints")
	}
	c := graphgen.RMAT(graphgen.DefaultRMAT(8), 2)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different matrices share a fingerprint")
	}
	d := graphgen.Grid2D(16, 16)
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("structurally different matrices share a fingerprint")
	}
}

func TestCalibrationCacheRoundTrip(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(7), 3)
	cache := filepath.Join(t.TempDir(), "sub", "thresholds.json")
	opt := engine.Options{Threads: 1, CalibrationCache: cache}

	first := New(a, opt)
	if !first.Calibrated() || first.FromCache() {
		t.Fatalf("first construction: calibrated=%v fromCache=%v, want true,false",
			first.Calibrated(), first.FromCache())
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	second := New(a, opt)
	if !second.FromCache() {
		t.Fatal("second construction did not hit the cache")
	}
	if second.Threshold() != first.Threshold() {
		t.Fatalf("cached threshold %g != calibrated %g", second.Threshold(), first.Threshold())
	}

	opt.Recalibrate = true
	third := New(a, opt)
	if third.FromCache() {
		t.Fatal("-recalibrate construction served from cache")
	}
	if !third.Calibrated() {
		t.Fatal("-recalibrate construction not calibrated")
	}
}

func TestCalibrationCacheCorruptFileFallsBack(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(7), 4)
	cache := filepath.Join(t.TempDir(), "thresholds.json")
	if err := os.WriteFile(cache, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := New(a, engine.Options{Threads: 1, CalibrationCache: cache})
	if h.FromCache() {
		t.Fatal("corrupt cache produced a hit")
	}
	if !h.Calibrated() {
		t.Fatal("corrupt cache blocked calibration")
	}
	// The rewritten cache must now serve hits.
	if !New(a, engine.Options{Threads: 1, CalibrationCache: cache}).FromCache() {
		t.Fatal("cache not repaired after corruption")
	}
}

func TestCacheMissOnDifferentMatrix(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "thresholds.json")
	a := graphgen.RMAT(graphgen.DefaultRMAT(7), 5)
	New(a, engine.Options{Threads: 1, CalibrationCache: cache})
	b := graphgen.Grid2D(12, 12)
	if New(b, engine.Options{Threads: 1, CalibrationCache: cache}).FromCache() {
		t.Fatal("different matrix hit the other matrix's cache entry")
	}
}

func TestCachedThresholdBehavesLikeCalibrated(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(7), 6)
	cache := filepath.Join(t.TempDir(), "thresholds.json")
	opt := engine.Options{Threads: 1, SortOutput: true, CalibrationCache: cache}
	fresh := New(a, opt)
	cached := New(a, opt)
	if !cached.FromCache() {
		t.Fatal("expected cache hit")
	}
	x := probeFrontier(a.NumCols, int(a.NumCols)/2)
	y1 := sparse.NewSpVec(0, 0)
	y2 := sparse.NewSpVec(0, 0)
	fresh.Multiply(x, y1, semiring.Arithmetic)
	cached.Multiply(x, y2, semiring.Arithmetic)
	if !y1.EqualValues(y2, 1e-9) {
		t.Fatal("cached-threshold engine diverged from freshly calibrated engine")
	}
}
