// Package hybrid implements the paper's §V direction-switch extension
// as a first-class registered engine: per call it routes the multiply
// to the vector-driven SpMSpV-bucket algorithm (internal/core) or the
// matrix-driven GraphMat algorithm (internal/baselines) depending on
// input density — the SpMSpV analogue of Beamer's direction-optimizing
// BFS ("we will investigate when and if it is beneficial to switch to
// a matrix-driven algorithm", §V).
//
// The switch point is the fraction of columns that must be active
// before the matrix-driven side runs. It comes from
// Options.HybridThreshold, or — when that is zero — from a calibration
// routine that times a few probe multiplies on the bound matrix at
// construction (see calibrate.go), so the engine adapts to the matrix
// and host rather than shipping a magic constant.
//
// Both sides are the registry's own slot-pinned, race-safe engines
// (see par.Slots), so one hybrid engine is safe for concurrent
// Multiply calls; the number of matrix-driven routings is reported
// through perf.Counters.DirectionSwitches.
package hybrid

import (
	"math"
	"sync/atomic"

	"spmspv/internal/baselines"
	"spmspv/internal/core"
	"spmspv/internal/engine"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// The hybrid engine registers itself under engine.Hybrid; importing
// this package is what makes it constructible through the registry.
func init() {
	engine.Register(engine.Hybrid, "Hybrid",
		func(a *sparse.CSC, opt engine.Options) engine.Engine {
			return New(a, opt)
		}, "hybrid")
}

// Engine is the direction-switching SpMSpV engine. Output is always
// sorted (both sides are run in their sorted-output configuration), so
// the direction taken is invisible to callers except in the counters.
type Engine struct {
	bucket *core.Multiplier
	matrix *baselines.GraphMat
	// threshold is the nnz(x)/n fraction at or above which the
	// matrix-driven side runs; +Inf pins the vector-driven side.
	threshold  float64
	calibrated bool
	fromCache  bool
	n          sparse.Index

	switches atomic.Int64
}

// New builds both sides and resolves the switch threshold from opt:
// positive is used as-is, zero asks for calibration from probe
// multiplies, negative pins the vector-driven side. The bucket side is
// forced to sorted output so both directions produce the same format.
func New(a *sparse.CSC, opt engine.Options) *Engine {
	th := opt.HybridThreshold
	if th < 0 {
		th = math.Inf(1)
	}
	bopt := opt
	bopt.SortOutput = true
	h := &Engine{
		bucket:    core.NewMultiplier(a, bopt),
		matrix:    baselines.NewGraphMat(a, opt.Threads),
		threshold: th,
		n:         a.NumCols,
	}
	if opt.HybridThreshold == 0 {
		fp := ""
		if opt.CalibrationCache != "" {
			fp = Fingerprint(a)
			if !opt.Recalibrate {
				if th, ok := loadThreshold(opt.CalibrationCache, fp); ok {
					h.threshold = th
					h.calibrated = true
					h.fromCache = true
					return h
				}
			}
		}
		h.threshold = calibrate(h.bucket, h.matrix, a)
		h.calibrated = true
		// Probe multiplies must not leak into the caller's work
		// accounting.
		h.ResetCounters()
		if fp != "" {
			// Best-effort persistence: a read-only or broken cache
			// location must not fail engine construction.
			_ = storeThreshold(opt.CalibrationCache, fp, h.threshold)
		}
	}
	return h
}

// NewWithThreshold builds a hybrid engine with the given literal
// threshold — including 0, which routes every call to the
// matrix-driven side (the registry constructor treats 0 as "calibrate"
// instead). A negative threshold pins the vector-driven side, the same
// meaning it has on Options.HybridThreshold. Intended for sweeps and
// tests.
func NewWithThreshold(a *sparse.CSC, opt engine.Options, threshold float64) *Engine {
	opt.HybridThreshold = -1 // suppress calibration; overwritten below
	h := New(a, opt)
	if threshold < 0 {
		threshold = math.Inf(1)
	}
	h.threshold = threshold
	h.calibrated = false
	return h
}

// Threshold returns the active switch threshold (nnz(x)/n fraction).
func (h *Engine) Threshold() float64 { return h.threshold }

// Calibrated reports whether the threshold came from construction-time
// probe multiplies (or the calibration cache) rather than
// Options.HybridThreshold.
func (h *Engine) Calibrated() bool { return h.calibrated }

// FromCache reports whether the threshold was served by the on-disk
// calibration cache, skipping the probe multiplies.
func (h *Engine) FromCache() bool { return h.fromCache }

// matrixDriven reports whether an input with f nonzeros takes the
// matrix-driven side.
func (h *Engine) matrixDriven(f int) bool {
	return float64(f) >= h.threshold*float64(h.n)
}

// Multiply computes y ← A·x, dispatching on input density.
func (h *Engine) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	if h.matrixDriven(x.NNZ()) {
		h.switches.Add(1)
		h.matrix.Multiply(x, y, sr)
		return
	}
	h.bucket.Multiply(x, y, sr)
}

// PreferredRep reports the list representation: the hybrid engine
// accepts list input and materializes the bitmap itself only for the
// calls it routes to the matrix-driven side.
func (h *Engine) PreferredRep() engine.Rep { return engine.RepList }

// MultiplyFrontier computes y ← A·x, reading only the representation
// the chosen direction needs: the list for the bucket side, the shared
// bitmap (materialized at most once per frontier) for the matrix side.
func (h *Engine) MultiplyFrontier(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring) {
	if h.matrixDriven(x.NNZ()) {
		h.switches.Add(1)
		h.matrix.MultiplyFrontier(x, y, sr)
		return
	}
	h.bucket.Multiply(x.List(), y, sr)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩. Both sides push the mask
// down: the bucket side into its merge step, the matrix side into
// GraphMat's per-piece touched filtering.
func (h *Engine) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	if h.matrixDriven(x.NNZ()) {
		h.switches.Add(1)
		h.matrix.MultiplyMasked(x, y, sr, mask, complement)
		return
	}
	h.bucket.MultiplyMasked(x, y, sr, mask, complement)
}

// OutputRep reports that both sides emit the output bitmap natively in
// their output pass, so the direction taken never costs a consumer a
// list→bitmap conversion.
func (h *Engine) OutputRep() engine.Rep { return engine.RepBitmap }

// MultiplyInto computes y ← A·x into the output frontier, dispatching
// on input density. Both sides emit list+bitmap in one pass, which is
// what makes a direction-optimized frontier pipeline conversion-free:
// a dense level's output bitmap is exactly what the next dense level's
// matrix-driven input side wants.
func (h *Engine) MultiplyInto(x, y *sparse.Frontier, sr semiring.Semiring) {
	if h.matrixDriven(x.NNZ()) {
		h.switches.Add(1)
		h.matrix.MultiplyInto(x, y, sr)
		return
	}
	h.bucket.MultiplyInto(x, y, sr)
}

// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output
// frontier, dispatching on input density with the mask pushed down on
// both sides.
func (h *Engine) MultiplyIntoMasked(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	if h.matrixDriven(x.NNZ()) {
		h.switches.Add(1)
		h.matrix.MultiplyIntoMasked(x, y, sr, mask, complement)
		return
	}
	h.bucket.MultiplyIntoMasked(x, y, sr, mask, complement)
}

// MultiplyBatch computes ys[q] ← A·xs[q], routing each frontier by its
// own density: the vector-driven frontiers run through the bucket
// engine's batched multiply (one shared Estimate pass), the
// matrix-driven ones through GraphMat individually.
func (h *Engine) MultiplyBatch(xs, ys []*sparse.SpVec, sr semiring.Semiring) {
	var bxs, bys []*sparse.SpVec
	for q := range xs {
		if h.matrixDriven(xs[q].NNZ()) {
			h.switches.Add(1)
			h.matrix.Multiply(xs[q], ys[q], sr)
			continue
		}
		bxs = append(bxs, xs[q])
		bys = append(bys, ys[q])
	}
	if len(bxs) > 0 {
		h.bucket.MultiplyBatch(bxs, bys, sr)
	}
}

// MultiplyBatchInto computes ys[q] ← A·xs[q] into the output frontiers,
// routing each slot by its own density: dense slots run the
// matrix-driven side's native frontier output, the sparse remainder
// runs the bucket engine's batched native-output multiply — every
// slot's bitmap is emitted natively either way, so multi-source
// direction-optimized pipelines stay conversion-free.
func (h *Engine) MultiplyBatchInto(xs, ys []*sparse.Frontier, sr semiring.Semiring) {
	h.multiplyBatchInto(xs, ys, sr, nil, false)
}

// MultiplyBatchIntoMasked is MultiplyBatchInto with one output mask per
// slot (nil slots unmasked) pushed down on whichever side the slot
// takes.
func (h *Engine) MultiplyBatchIntoMasked(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
	h.multiplyBatchInto(xs, ys, sr, masks, complement)
}

func (h *Engine) multiplyBatchInto(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
	var bxs, bys []*sparse.Frontier
	var bmasks []*sparse.BitVec
	anyMask := false
	for q := range xs {
		var mk *sparse.BitVec
		if masks != nil {
			mk = masks[q]
		}
		if h.matrixDriven(xs[q].NNZ()) {
			h.switches.Add(1)
			if mk != nil {
				h.matrix.MultiplyIntoMasked(xs[q], ys[q], sr, mk, complement)
			} else {
				h.matrix.MultiplyInto(xs[q], ys[q], sr)
			}
			continue
		}
		bxs = append(bxs, xs[q])
		bys = append(bys, ys[q])
		bmasks = append(bmasks, mk)
		anyMask = anyMask || mk != nil
	}
	switch {
	case len(bxs) == 0:
	case anyMask:
		h.bucket.MultiplyBatchIntoMasked(bxs, bys, sr, bmasks, complement)
	default:
		h.bucket.MultiplyBatchInto(bxs, bys, sr)
	}
}

// Switches reports how many calls took the matrix-driven path since
// the last ResetCounters.
func (h *Engine) Switches() int64 { return h.switches.Load() }

// Counters merges both sides' work and reports the direction switches.
func (h *Engine) Counters() perf.Counters {
	c := h.bucket.Counters()
	mc := h.matrix.Counters()
	c.Merge(&mc)
	c.DirectionSwitches += h.switches.Load()
	return c
}

// ResetCounters zeroes both sides and the switch count.
func (h *Engine) ResetCounters() {
	h.bucket.ResetCounters()
	h.matrix.ResetCounters()
	h.switches.Store(0)
}

// Name identifies the engine in benchmark tables.
func (h *Engine) Name() string { return "Hybrid" }

// Compile-time checks: the hybrid engine implements every optional
// engine extension.
var (
	_ engine.Engine             = (*Engine)(nil)
	_ engine.MaskedEngine       = (*Engine)(nil)
	_ engine.FrontierEngine     = (*Engine)(nil)
	_ engine.BatchEngine        = (*Engine)(nil)
	_ engine.MaskedOutputEngine = (*Engine)(nil)
	_ engine.BatchOutputEngine  = (*Engine)(nil)
)
