package hybrid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"

	"spmspv/internal/sparse"
)

// On-disk calibration cache: calibrated switch thresholds persisted
// per matrix fingerprint, so repeated runs against the same matrix
// (benchmark sweeps, a service restarting with the same shard) skip
// the construction-time probe multiplies. The cache is a flat JSON map
// fingerprint → entry; writes are whole-file read-modify-write through
// a temp-file rename, and every error is swallowed into "cache miss" —
// a broken cache must never break a multiply.

// fingerprintVersion bumps when the fingerprint recipe changes, so old
// cache entries go stale instead of silently mismatching.
const fingerprintVersion = 1

// Fingerprint summarizes a matrix for calibration caching: dimensions,
// nonzero count and a column-degree sketch (a log2-bucketed histogram
// of column degrees, hashed). Two matrices sharing a fingerprint have
// the same size and a near-identical degree profile — the structural
// properties the bucket/GraphMat crossover depends on — so a threshold
// calibrated for one transfers to the other.
func Fingerprint(a *sparse.CSC) string {
	// Degree sketch: count columns per log2-degree bucket (0, 1, 2-3,
	// 4-7, ...). 32 buckets cover every possible int32 degree.
	var hist [33]int64
	for j := sparse.Index(0); j < a.NumCols; j++ {
		d := a.ColLen(j)
		if d == 0 {
			hist[0]++
			continue
		}
		hist[1+bits.Len64(uint64(d))-1]++
	}
	h := sha256.New()
	fmt.Fprintf(h, "v%d:%dx%d:%d:", fingerprintVersion, a.NumRows, a.NumCols, a.NNZ())
	for _, c := range hist {
		fmt.Fprintf(h, "%d,", c)
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("v%d-%dx%d-%d-%s", fingerprintVersion,
		a.NumRows, a.NumCols, a.NNZ(), hex.EncodeToString(sum[:8]))
}

// cacheEntry is one persisted calibration result.
type cacheEntry struct {
	Threshold float64 `json:"threshold"`
}

// loadThreshold returns the cached threshold for the fingerprint, or
// ok=false on any miss, parse error or unusable value.
func loadThreshold(path, fp string) (float64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var entries map[string]cacheEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return 0, false
	}
	e, ok := entries[fp]
	if !ok || e.Threshold <= 0 {
		return 0, false
	}
	return e.Threshold, true
}

// storeThreshold merges the threshold into the cache file, creating
// the file (and its directory) as needed. Best-effort: every failure
// is reported to the caller but the caller treats the store as
// optional.
func storeThreshold(path, fp string, th float64) error {
	entries := map[string]cacheEntry{}
	if data, err := os.ReadFile(path); err == nil {
		// A corrupt cache is rewritten from scratch rather than kept.
		_ = json.Unmarshal(data, &entries)
	}
	entries[fp] = cacheEntry{Threshold: th}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".thresholds-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), path)
}

// DefaultCachePath returns the conventional location of the
// calibration cache under the user cache directory, or "" when the
// platform reports none (persistence then stays off).
func DefaultCachePath() string {
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(dir, "spmspv", "hybrid-thresholds.json")
}
