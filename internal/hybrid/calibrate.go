package hybrid

import (
	"math"
	"time"

	"spmspv/internal/baselines"
	"spmspv/internal/core"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Calibration: the switch threshold is learned from the bound matrix
// rather than hard-coded. At a handful of input densities, both sides
// run a few probe multiplies; the threshold is placed between the
// densest probe the vector-driven side won and the sparsest probe the
// matrix-driven side won. The cost model this samples is exactly the
// paper's: bucket is O(df) in the input's selected entries, GraphMat
// is pinned at O(nzc) probes plus the selected entries, so their
// crossover depends on the matrix's column structure and the host —
// both captured by measuring instead of guessing.

// probeDensities are the nnz(x)/n fractions sampled, sparsest first.
var probeDensities = []float64{1.0 / 256, 1.0 / 32, 1.0 / 8, 1.0 / 4, 1.0 / 2}

// probeReps is how many timed multiplies each side runs per density
// (the minimum is kept, standard micro-benchmark practice).
const probeReps = 2

// calibrate returns the learned threshold for the matrix bound to both
// engines. When the matrix-driven side never wins a probe the
// threshold is 1 (switch only for a fully dense input); when it wins
// the sparsest probe, half that probe's density.
func calibrate(bucket *core.Multiplier, matrix *baselines.GraphMat, a *sparse.CSC) float64 {
	n := a.NumCols
	if n == 0 || a.NNZ() == 0 {
		return 1
	}
	y := sparse.NewSpVec(0, 0)
	prev := 0.0
	for _, d := range probeDensities {
		f := int(d * float64(n))
		if f < 1 {
			f = 1
		}
		x := probeFrontier(n, f)
		tb := probeTime(func() { bucket.Multiply(x, y, semiring.Arithmetic) })
		tm := probeTime(func() { matrix.Multiply(x, y, semiring.Arithmetic) })
		if tm < tb {
			if prev == 0 {
				return d / 2
			}
			// Geometric midpoint of the bracketing densities.
			return math.Sqrt(prev * d)
		}
		prev = d
	}
	return 1
}

// probeTime runs fn probeReps+1 times (one warmup) and returns the
// fastest timed run.
func probeTime(fn func()) time.Duration {
	fn() // warmup: sizes pooled buffers
	best := time.Duration(1<<63 - 1)
	for r := 0; r < probeReps; r++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// probeFrontier builds a deterministic frontier of f evenly spread
// indices (value 1), the same shape for every calibration so learned
// thresholds are comparable across engines on one matrix.
func probeFrontier(n sparse.Index, f int) *sparse.SpVec {
	x := sparse.NewSpVec(n, f)
	for i := 0; i < f; i++ {
		x.Append(sparse.Index(int64(i)*int64(n)/int64(f)), 1)
	}
	return x
}
