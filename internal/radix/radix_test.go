package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spmspv/internal/sparse"
)

func TestSortIndicesMatchesStdlib(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(2000)
		a := make([]sparse.Index, n)
		limit := []int{2, 100, 1 << 16, 1 << 30}[r.Intn(4)]
		for i := range a {
			a[i] = sparse.Index(r.Intn(limit))
		}
		want := append([]sparse.Index(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortIndices(a, nil)
		for i := range a {
			if a[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSortIndicesEdges(t *testing.T) {
	SortIndices(nil, nil) // must not panic
	one := []sparse.Index{7}
	SortIndices(one, nil)
	if one[0] != 7 {
		t.Error("singleton changed")
	}
	same := []sparse.Index{5, 5, 5, 5}
	SortIndices(same, nil)
	for _, v := range same {
		if v != 5 {
			t.Error("constant slice changed")
		}
	}
}

func TestSortIndicesScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var scratch []sparse.Index
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(500) + 50
		a := make([]sparse.Index, n)
		for i := range a {
			a[i] = sparse.Index(rng.Intn(1 << 20))
		}
		scratch = SortIndices(a, scratch)
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
	}
}

func TestSortEntriesStable(t *testing.T) {
	// Equal keys keep their relative order: tag values with sequence
	// numbers and verify.
	rng := rand.New(rand.NewSource(4))
	n := 5000
	a := make([]sparse.Entry, n)
	for i := range a {
		a[i] = sparse.Entry{Ind: sparse.Index(rng.Intn(50)), Val: float64(i)}
	}
	SortEntries(a, nil)
	for i := 1; i < n; i++ {
		if a[i-1].Ind > a[i].Ind {
			t.Fatalf("not sorted at %d", i)
		}
		if a[i-1].Ind == a[i].Ind && a[i-1].Val > a[i].Val {
			t.Fatalf("not stable at %d", i)
		}
	}
}

func TestParallelSortEntriesMatchesSerial(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20000)
		a := make([]sparse.Entry, n)
		for i := range a {
			a[i] = sparse.Entry{Ind: sparse.Index(r.Intn(1 << 20)), Val: float64(i)}
		}
		b := append([]sparse.Entry(nil), a...)
		SortEntries(a, nil)
		ParallelSortEntries(b, nil, 4)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelSortStability(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 14
	a := make([]sparse.Entry, n)
	for i := range a {
		a[i] = sparse.Entry{Ind: sparse.Index(rng.Intn(8)), Val: float64(i)}
	}
	ParallelSortEntries(a, nil, 8)
	for i := 1; i < n; i++ {
		if a[i-1].Ind == a[i].Ind && a[i-1].Val > a[i].Val {
			t.Fatalf("parallel sort not stable at %d", i)
		}
	}
}
