// Package radix implements least-significant-digit radix sorts for
// int32 keys and (int32, float64) entry pairs.
//
// The paper relies on integer sorting in two places: the optional
// per-bucket sorting of unique indices in the SpMSpV-bucket algorithm
// ("each thread can run a sequential integer sorting function on its
// local indices using efficient sorting algorithms such as the radix
// sort", §III-B), and the SpMSpV-sort baseline of Yang et al. which
// sorts all df scaled entries by row index. Keys are assumed
// non-negative (row indices), enabling unsigned byte digits.
package radix

import "spmspv/internal/sparse"

const (
	digitBits = 8
	buckets   = 1 << digitBits
	digitMask = buckets - 1
)

// SortIndices sorts a in place (ascending) using LSD radix sort with the
// provided scratch slice (grown if too small) and returns the scratch
// for reuse. Passes whose digit is constant across all keys are skipped,
// so sorting keys drawn from a small range costs proportionally less.
func SortIndices(a []sparse.Index, scratch []sparse.Index) []sparse.Index {
	n := len(a)
	if n < 2 {
		return scratch
	}
	if n < 32 {
		insertionSortIndices(a)
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]sparse.Index, n)
	}
	scratch = scratch[:n]

	var or, and sparse.Index
	or, and = 0, -1
	for _, v := range a {
		or |= v
		and &= v
	}
	src, dst := a, scratch
	swapped := false
	for shift := 0; shift < 32; shift += digitBits {
		// Skip passes where every key has the same digit.
		if (or>>shift)&digitMask == (and>>shift)&digitMask {
			continue
		}
		var count [buckets]int32
		for _, v := range src {
			count[(v>>shift)&digitMask]++
		}
		var sum int32
		for d := 0; d < buckets; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & digitMask
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a, src)
	}
	return scratch
}

func insertionSortIndices(a []sparse.Index) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// SortEntries sorts entries in place by ascending Ind using LSD radix
// sort with the provided scratch slice, returning the scratch for reuse.
// The sort is stable, which the segmented-reduce consumers rely on.
func SortEntries(a []sparse.Entry, scratch []sparse.Entry) []sparse.Entry {
	n := len(a)
	if n < 2 {
		return scratch
	}
	if n < 32 {
		insertionSortEntries(a)
		return scratch
	}
	if cap(scratch) < n {
		scratch = make([]sparse.Entry, n)
	}
	scratch = scratch[:n]

	var or, and sparse.Index
	or, and = 0, -1
	for i := range a {
		or |= a[i].Ind
		and &= a[i].Ind
	}
	src, dst := a, scratch
	swapped := false
	for shift := 0; shift < 32; shift += digitBits {
		if (or>>shift)&digitMask == (and>>shift)&digitMask {
			continue
		}
		var count [buckets]int32
		for i := range src {
			count[(src[i].Ind>>shift)&digitMask]++
		}
		var sum int32
		for d := 0; d < buckets; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for i := range src {
			d := (src[i].Ind >> shift) & digitMask
			dst[count[d]] = src[i]
			count[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a, src)
	}
	return scratch
}

func insertionSortEntries(a []sparse.Entry) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j].Ind > v.Ind {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
