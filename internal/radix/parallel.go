package radix

import (
	"spmspv/internal/par"
	"spmspv/internal/sparse"
)

// ParallelSortEntries sorts entries by ascending Ind using p workers.
// Each LSD pass computes per-worker digit histograms over contiguous
// chunks, takes a global (digit-major, worker-minor) exclusive prefix so
// every worker owns disjoint output cursors, then scatters in parallel —
// the same lock-free counting strategy the bucket algorithm uses for its
// Step 1. The sort is stable. scratch is grown as needed and returned
// for reuse.
func ParallelSortEntries(a []sparse.Entry, scratch []sparse.Entry, p int) []sparse.Entry {
	n := len(a)
	if p <= 1 || n < 1<<12 {
		return SortEntries(a, scratch)
	}
	if cap(scratch) < n {
		scratch = make([]sparse.Entry, n)
	}
	scratch = scratch[:n]

	var or, and sparse.Index
	or, and = 0, -1
	for i := range a {
		or |= a[i].Ind
		and &= a[i].Ind
	}

	ranges := par.EvenRanges(n, p)
	counts := make([]int64, p*buckets)
	src, dst := a, scratch
	swapped := false
	for shift := 0; shift < 32; shift += digitBits {
		if (or>>shift)&digitMask == (and>>shift)&digitMask {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		par.ForRanges(ranges, func(w, lo, hi int) {
			c := counts[w*buckets : (w+1)*buckets]
			for i := lo; i < hi; i++ {
				c[(src[i].Ind>>shift)&digitMask]++
			}
		})
		// Exclusive prefix in digit-major, worker-minor order: worker w's
		// cursor for digit d starts after all smaller digits and after
		// digit-d counts of workers < w.
		var sum int64
		for d := 0; d < buckets; d++ {
			for w := 0; w < p; w++ {
				c := counts[w*buckets+d]
				counts[w*buckets+d] = sum
				sum += c
			}
		}
		par.ForRanges(ranges, func(w, lo, hi int) {
			c := counts[w*buckets : (w+1)*buckets]
			for i := lo; i < hi; i++ {
				d := (src[i].Ind >> shift) & digitMask
				dst[c[d]] = src[i]
				c[d]++
			}
		})
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a, src)
	}
	return scratch
}
