package baselines

import (
	"spmspv/internal/sparse"
)

// Masked variants (paper §V's GraphBLAS masked-SpMSpV extension) for
// the Table I baselines. Each pushes the output mask into the layer of
// its own algorithm where rows are cheapest to kill — before any
// sorting, merging or output copying happens — rather than filtering a
// finished product:
//
//   - CombBLAS-SPA and GraphMat drop masked rows from each piece's
//     touched list right after accumulation (filterTouchedMasked), so
//     the per-piece radix sort and the output concatenation only see
//     surviving rows.
//   - CombBLAS-heap tests the mask in the heap-merge emit callback, so
//     masked rows never enter the per-piece output buffers.
//   - SpMSpV-sort tests the mask per duplicate-run during the prune
//     step, skipping the reduction of runs the mask kills.
//
// The semantics match internal/core's mergeMasked: a row survives iff
// mask.Test(row) != complement.

// filterTouchedMasked compacts a piece's touched list (local row
// indices, offset by rowOff globally) to the rows the mask admits.
func filterTouchedMasked(touched []sparse.Index, rowOff sparse.Index, mask *sparse.BitVec, complement bool) []sparse.Index {
	w := 0
	for _, li := range touched {
		if mask.Test(li+rowOff) == complement {
			continue
		}
		touched[w] = li
		w++
	}
	return touched[:w]
}
