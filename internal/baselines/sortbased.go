package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// SortBased reimplements the SpMSpV-sort algorithm of Yang et al.
// (Table I: "concatenate, sort and prune"): all df scaled entries of the
// selected columns are gathered into one array, sorted by row index with
// a parallel radix sort, and adjacent duplicates are reduced. The
// O(df·lg df) sorting work is its handicap; its upside is a naturally
// sorted output and no per-thread matrix partitioning.
//
// The matrix is shared read-only; the gather/sort/prune buffers live in
// a slot-pinned sortState (warm state reuse, pool overflow — see
// par.Slots), so one SortBased is safe for concurrent Multiply calls.
type SortBased struct {
	a *sparse.CSC
	t int

	states *par.Slots[sortState]

	counterAgg
}

// sortState is the per-call scratch of one SortBased multiply.
type sortState struct {
	entries []sparse.Entry
	scratch []sparse.Entry
	xcum    []int64
	bounds  []int64
	outInd  [][]sparse.Index
	outVal  [][]float64
	outOff  []int64
	ctr     []perf.Counters
}

// NewSortBased returns a sort-based multiplier for t threads (≤ 0 means
// GOMAXPROCS).
func NewSortBased(a *sparse.CSC, t int) *SortBased {
	t = par.Threads(t)
	s := &SortBased{a: a, t: t}
	s.states = par.NewSlots(par.Threads(0), func() *sortState {
		return &sortState{
			bounds: make([]int64, t+1),
			outInd: make([][]sparse.Index, t),
			outVal: make([][]float64, t),
			outOff: make([]int64, t+1),
			ctr:    make([]perf.Counters, t),
		}
	})
	return s
}

func (s *SortBased) retire(st *sortState, slot int) {
	s.retireCounters(st.ctr)
	s.states.Put(st, slot)
}

// Multiply computes y ← A·x; the output is sorted.
func (s *SortBased) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	s.run(x, y, sr, nil, false)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩ with the mask tested once
// per duplicate-run during the prune step: runs the mask kills are
// skipped without reducing them (see masked.go).
func (s *SortBased) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	s.run(x, y, sr, mask, complement)
}

func (s *SortBased) run(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	y.Reset(s.a.NumRows)
	f := len(x.Ind)
	if f == 0 {
		return
	}
	st, slot := s.states.Get()
	t := s.t
	if t > f {
		t = f
	}

	// Concatenate: gather all scaled entries, each worker writing a
	// contiguous region sized by the cumulative column weights.
	st.xcum = s.a.CumulativeColWeights(x.Ind, st.xcum)
	total := st.xcum[f]
	ranges := par.SplitByWeight(st.xcum, t)
	if int64(cap(st.entries)) < total {
		st.entries = make([]sparse.Entry, total)
	}
	ents := st.entries[:total]
	mul := sr.Mul
	par.ForRanges(ranges, func(w, lo, hi int) {
		ctr := &st.ctr[w]
		pos := st.xcum[lo]
		for k := lo; k < hi; k++ {
			j, xv := x.Ind[k], x.Val[k]
			rows, vals := s.a.Col(j)
			for e, i := range rows {
				ents[pos] = sparse.Entry{Ind: i, Val: mul(vals[e], xv)}
				pos++
			}
			ctr.MatrixTouched += int64(len(rows))
		}
		ctr.XScanned += int64(hi - lo)
	})

	// Sort by row index.
	st.scratch = radix.ParallelSortEntries(ents, st.scratch, t)
	st.ctr[0].SortedElems += total

	// Prune: segmented reduction over runs of equal row ids. Worker
	// boundaries are pushed forward to run starts so every run belongs
	// to exactly one worker.
	bounds := st.bounds
	for w := 0; w <= t; w++ {
		b := int64(w) * total / int64(t)
		for b > 0 && b < total && ents[b].Ind == ents[b-1].Ind {
			b++
		}
		bounds[w] = b
	}
	par.ForStatic(t, t, func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			ctr := &st.ctr[w]
			outInd := st.outInd[w][:0]
			outVal := st.outVal[w][:0]
			lo, hi := bounds[w], bounds[w+1]
			for k := lo; k < hi; {
				row := ents[k].Ind
				if mask != nil && mask.Test(row) == complement {
					// Masked run: skip it wholesale, no reduction.
					for k++; k < hi && ents[k].Ind == row; k++ {
					}
					continue
				}
				acc := ents[k].Val
				k++
				for k < hi && ents[k].Ind == row {
					acc = sr.Add(acc, ents[k].Val)
					k++
					ctr.SPAUpdates++
				}
				outInd = append(outInd, row)
				outVal = append(outVal, acc)
			}
			st.outInd[w] = outInd
			st.outVal[w] = outVal
		}
	})

	var outTotal int64
	for w := 0; w < t; w++ {
		st.outOff[w] = outTotal
		outTotal += int64(len(st.outInd[w]))
	}
	st.outOff[t] = outTotal
	if int64(cap(y.Ind)) < outTotal {
		y.Ind = make([]sparse.Index, outTotal)
		y.Val = make([]float64, outTotal)
	} else {
		y.Ind = y.Ind[:outTotal]
		y.Val = y.Val[:outTotal]
	}
	par.ForStatic(t, t, func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			off := st.outOff[w]
			copy(y.Ind[off:], st.outInd[w])
			copy(y.Val[off:], st.outVal[w])
			st.ctr[w].OutputWritten += int64(len(st.outInd[w]))
		}
	})
	y.Sorted = true
	s.retire(st, slot)
}

// Name identifies the algorithm in benchmark tables.
func (s *SortBased) Name() string { return "SpMSpV-sort" }
