package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// SortBased reimplements the SpMSpV-sort algorithm of Yang et al.
// (Table I: "concatenate, sort and prune"): all df scaled entries of the
// selected columns are gathered into one array, sorted by row index with
// a parallel radix sort, and adjacent duplicates are reduced. The
// O(df·lg df) sorting work is its handicap; its upside is a naturally
// sorted output and no per-thread matrix partitioning.
type SortBased struct {
	a *sparse.CSC
	t int

	entries []sparse.Entry
	scratch []sparse.Entry
	xcum    []int64
	offs    []int64

	outInd [][]sparse.Index
	outVal [][]float64
	outOff []int64

	// PerWorker holds one work counter per thread.
	PerWorker []perf.Counters
}

// NewSortBased returns a sort-based multiplier for t threads (≤ 0 means
// GOMAXPROCS).
func NewSortBased(a *sparse.CSC, t int) *SortBased {
	t = par.Threads(t)
	return &SortBased{
		a:         a,
		t:         t,
		offs:      make([]int64, t+1),
		outInd:    make([][]sparse.Index, t),
		outVal:    make([][]float64, t),
		outOff:    make([]int64, t+1),
		PerWorker: make([]perf.Counters, t),
	}
}

// Multiply computes y ← A·x; the output is sorted.
func (s *SortBased) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	y.Reset(s.a.NumRows)
	f := len(x.Ind)
	if f == 0 {
		return
	}
	t := s.t
	if t > f {
		t = f
	}

	// Concatenate: gather all scaled entries, each worker writing a
	// contiguous region sized by the cumulative column weights.
	s.xcum = s.a.CumulativeColWeights(x.Ind, s.xcum)
	total := s.xcum[f]
	ranges := par.SplitByWeight(s.xcum, t)
	if int64(cap(s.entries)) < total {
		s.entries = make([]sparse.Entry, total)
	}
	ents := s.entries[:total]
	mul := sr.Mul
	par.ForRanges(ranges, func(w, lo, hi int) {
		ctr := &s.PerWorker[w]
		pos := s.xcum[lo]
		for k := lo; k < hi; k++ {
			j, xv := x.Ind[k], x.Val[k]
			rows, vals := s.a.Col(j)
			for e, i := range rows {
				ents[pos] = sparse.Entry{Ind: i, Val: mul(vals[e], xv)}
				pos++
			}
			ctr.MatrixTouched += int64(len(rows))
		}
		ctr.XScanned += int64(hi - lo)
	})

	// Sort by row index.
	s.scratch = radix.ParallelSortEntries(ents, s.scratch, t)
	s.PerWorker[0].SortedElems += total

	// Prune: segmented reduction over runs of equal row ids. Worker
	// boundaries are pushed forward to run starts so every run belongs
	// to exactly one worker.
	bounds := make([]int64, t+1)
	for w := 0; w <= t; w++ {
		b := int64(w) * total / int64(t)
		for b > 0 && b < total && ents[b].Ind == ents[b-1].Ind {
			b++
		}
		bounds[w] = b
	}
	par.ForStatic(t, t, func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			ctr := &s.PerWorker[w]
			outInd := s.outInd[w][:0]
			outVal := s.outVal[w][:0]
			lo, hi := bounds[w], bounds[w+1]
			for k := lo; k < hi; {
				row := ents[k].Ind
				acc := ents[k].Val
				k++
				for k < hi && ents[k].Ind == row {
					acc = sr.Add(acc, ents[k].Val)
					k++
					ctr.SPAUpdates++
				}
				outInd = append(outInd, row)
				outVal = append(outVal, acc)
			}
			s.outInd[w] = outInd
			s.outVal[w] = outVal
		}
	})

	var outTotal int64
	for w := 0; w < t; w++ {
		s.outOff[w] = outTotal
		outTotal += int64(len(s.outInd[w]))
	}
	s.outOff[t] = outTotal
	if int64(cap(y.Ind)) < outTotal {
		y.Ind = make([]sparse.Index, outTotal)
		y.Val = make([]float64, outTotal)
	} else {
		y.Ind = y.Ind[:outTotal]
		y.Val = y.Val[:outTotal]
	}
	par.ForStatic(t, t, func(_, wlo, whi int) {
		for w := wlo; w < whi; w++ {
			off := s.outOff[w]
			copy(y.Ind[off:], s.outInd[w])
			copy(y.Val[off:], s.outVal[w])
			s.PerWorker[w].OutputWritten += int64(len(s.outInd[w]))
		}
	})
	y.Sorted = true
}

// Counters aggregates per-worker work since the last reset.
func (s *SortBased) Counters() perf.Counters { return perf.MergeAll(s.PerWorker) }

// ResetCounters zeroes the work counters.
func (s *SortBased) ResetCounters() {
	for i := range s.PerWorker {
		s.PerWorker[i].Reset()
	}
}

// Name identifies the algorithm in benchmark tables.
func (s *SortBased) Name() string { return "SpMSpV-sort" }
