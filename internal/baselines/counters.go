package baselines

import (
	"sync"

	"spmspv/internal/perf"
)

// counterAgg is the race-free work-counter aggregate every baseline
// embeds: per-call worker counters are folded into one total as the
// call retires, so Counters/ResetCounters are safe while other
// goroutines multiply.
type counterAgg struct {
	ctrMu sync.Mutex
	total perf.Counters
}

// retireCounters merges and zeroes a pooled state's per-worker
// counters.
func (c *counterAgg) retireCounters(per []perf.Counters) {
	agg := perf.MergeAll(per)
	for i := range per {
		per[i].Reset()
	}
	c.ctrMu.Lock()
	c.total.Merge(&agg)
	c.ctrMu.Unlock()
}

// Counters aggregates work since the last reset.
func (c *counterAgg) Counters() perf.Counters {
	c.ctrMu.Lock()
	defer c.ctrMu.Unlock()
	return c.total
}

// ResetCounters zeroes the work counters.
func (c *counterAgg) ResetCounters() {
	c.ctrMu.Lock()
	defer c.ctrMu.Unlock()
	c.total.Reset()
}
