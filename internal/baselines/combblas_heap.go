package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/spa"
	"spmspv/internal/sparse"
)

// CombBLASHeap reimplements the CombBLAS-heap algorithm of Table I:
// row-split DCSC pieces, with each thread merging the scaled fragments
// of its selected columns through a k-way binary heap. Sequential
// complexity is O(df·lg f); the heap's logarithmic factor is what makes
// it ~3.5× slower than the SPA algorithms once the vector gets dense
// (paper §IV-C), while its lack of any O(m) or O(n) term keeps it
// competitive for very sparse inputs.
type CombBLASHeap struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	mergers []*spa.KWayMerger
	outInd  [][]sparse.Index
	outVal  [][]float64
	outOff  []int64

	// PerWorker holds one work counter per thread.
	PerWorker []perf.Counters
}

// NewCombBLASHeap builds the row-split structure for t threads (≤ 0
// means GOMAXPROCS). Columns within each piece must be sorted by row,
// which sparse.RowSplit guarantees for matrices built by this package.
func NewCombBLASHeap(a *sparse.CSC, t int) *CombBLASHeap {
	t = par.Threads(t)
	c := &CombBLASHeap{
		pieces:    sparse.RowSplit(a, t),
		m:         a.NumRows,
		n:         a.NumCols,
		t:         t,
		mergers:   make([]*spa.KWayMerger, t),
		outInd:    make([][]sparse.Index, t),
		outVal:    make([][]float64, t),
		outOff:    make([]int64, t+1),
		PerWorker: make([]perf.Counters, t),
	}
	for w := range c.mergers {
		c.mergers[w] = spa.NewKWayMerger(64)
	}
	return c
}

// Multiply computes y ← A·x; the output is sorted (heap merging emits
// rows in order).
func (c *CombBLASHeap) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	y.Reset(c.m)
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			c.multiplyPiece(w, x, sr)
		}
	})

	var total int64
	for w := 0; w < c.t; w++ {
		c.outOff[w] = total
		total += int64(len(c.outInd[w]))
	}
	c.outOff[c.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := c.outOff[w]
			copy(y.Ind[off:], c.outInd[w])
			copy(y.Val[off:], c.outVal[w])
			c.PerWorker[w].OutputWritten += int64(len(c.outInd[w]))
		}
	})
	y.Sorted = true
}

func (c *CombBLASHeap) multiplyPiece(w int, x *sparse.SpVec, sr semiring.Semiring) {
	d := c.pieces[w]
	ctr := &c.PerWorker[w]
	merger := c.mergers[w]
	merger.Reset()

	var touched int64
	// Every thread scans the entire input vector, as in CombBLAS-SPA.
	for k, j := range x.Ind {
		pos, ok := d.FindCol(j)
		if !ok {
			continue
		}
		rows, vals := d.ColAt(pos)
		merger.AddSegment(rows, vals, x.Val[k])
		touched += int64(len(rows))
	}
	ctr.XScanned += int64(len(x.Ind))
	ctr.ColumnsProbed += int64(len(x.Ind))
	ctr.MatrixTouched += touched

	rowOff := d.RowOffset
	outInd := c.outInd[w][:0]
	outVal := c.outVal[w][:0]
	merger.Merge(sr, func(row sparse.Index, val float64) {
		outInd = append(outInd, row+rowOff)
		outVal = append(outVal, val)
	})
	ctr.HeapOps += merger.Ops()
	c.outInd[w] = outInd
	c.outVal[w] = outVal
}

// Counters aggregates per-worker work since the last reset.
func (c *CombBLASHeap) Counters() perf.Counters { return perf.MergeAll(c.PerWorker) }

// ResetCounters zeroes the work counters.
func (c *CombBLASHeap) ResetCounters() {
	for i := range c.PerWorker {
		c.PerWorker[i].Reset()
	}
}

// Name identifies the algorithm in benchmark tables.
func (c *CombBLASHeap) Name() string { return "CombBLAS-heap" }
