package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/spa"
	"spmspv/internal/sparse"
)

// CombBLASHeap reimplements the CombBLAS-heap algorithm of Table I:
// row-split DCSC pieces, with each thread merging the scaled fragments
// of its selected columns through a k-way binary heap. Sequential
// complexity is O(df·lg f); the heap's logarithmic factor is what makes
// it ~3.5× slower than the SPA algorithms once the vector gets dense
// (paper §IV-C), while its lack of any O(m) or O(n) term keeps it
// competitive for very sparse inputs.
//
// The row-split pieces are immutable after construction; the per-call
// mergers and output buffers live in a slot-pinned heapState (warm
// state reuse, pool overflow — see par.Slots), so one CombBLASHeap is
// safe for concurrent Multiply calls.
type CombBLASHeap struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	states *par.Slots[heapState]

	counterAgg
}

// heapState is the per-call scratch of one CombBLASHeap multiply.
type heapState struct {
	mergers []*spa.KWayMerger
	outInd  [][]sparse.Index
	outVal  [][]float64
	outOff  []int64
	ctr     []perf.Counters
}

// NewCombBLASHeap builds the row-split structure for t threads (≤ 0
// means GOMAXPROCS). Columns within each piece must be sorted by row,
// which sparse.RowSplit guarantees for matrices built by this package.
func NewCombBLASHeap(a *sparse.CSC, t int) *CombBLASHeap {
	t = par.Threads(t)
	c := &CombBLASHeap{
		pieces: sparse.RowSplit(a, t),
		m:      a.NumRows,
		n:      a.NumCols,
		t:      t,
	}
	c.states = par.NewSlots(par.Threads(0), func() *heapState {
		st := &heapState{
			mergers: make([]*spa.KWayMerger, t),
			outInd:  make([][]sparse.Index, t),
			outVal:  make([][]float64, t),
			outOff:  make([]int64, t+1),
			ctr:     make([]perf.Counters, t),
		}
		for w := range st.mergers {
			st.mergers[w] = spa.NewKWayMerger(64)
		}
		return st
	})
	return c
}

func (c *CombBLASHeap) retire(st *heapState, slot int) {
	c.retireCounters(st.ctr)
	c.states.Put(st, slot)
}

// Multiply computes y ← A·x; the output is sorted (heap merging emits
// rows in order).
func (c *CombBLASHeap) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	c.run(x, y, sr, nil, false)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩ with the mask tested in the
// heap-merge emit callback, so masked rows never enter the per-piece
// output buffers (see masked.go).
func (c *CombBLASHeap) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	c.run(x, y, sr, mask, complement)
}

func (c *CombBLASHeap) run(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	st, slot := c.states.Get()
	y.Reset(c.m)
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			c.multiplyPiece(st, w, x, sr, mask, complement)
		}
	})

	var total int64
	for w := 0; w < c.t; w++ {
		st.outOff[w] = total
		total += int64(len(st.outInd[w]))
	}
	st.outOff[c.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := st.outOff[w]
			copy(y.Ind[off:], st.outInd[w])
			copy(y.Val[off:], st.outVal[w])
			st.ctr[w].OutputWritten += int64(len(st.outInd[w]))
		}
	})
	y.Sorted = true
	c.retire(st, slot)
}

func (c *CombBLASHeap) multiplyPiece(st *heapState, w int, x *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	d := c.pieces[w]
	ctr := &st.ctr[w]
	merger := st.mergers[w]
	merger.Reset()

	var touched int64
	// Every thread scans the entire input vector, as in CombBLAS-SPA.
	for k, j := range x.Ind {
		pos, ok := d.FindCol(j)
		if !ok {
			continue
		}
		rows, vals := d.ColAt(pos)
		merger.AddSegment(rows, vals, x.Val[k])
		touched += int64(len(rows))
	}
	ctr.XScanned += int64(len(x.Ind))
	ctr.ColumnsProbed += int64(len(x.Ind))
	ctr.MatrixTouched += touched

	rowOff := d.RowOffset
	outInd := st.outInd[w][:0]
	outVal := st.outVal[w][:0]
	emit := func(row sparse.Index, val float64) {
		outInd = append(outInd, row+rowOff)
		outVal = append(outVal, val)
	}
	if mask != nil {
		plain := emit
		emit = func(row sparse.Index, val float64) {
			if mask.Test(row+rowOff) == complement {
				return
			}
			plain(row, val)
		}
	}
	merger.Merge(sr, emit)
	ctr.HeapOps += merger.Ops()
	st.outInd[w] = outInd
	st.outVal[w] = outVal
}

// Name identifies the algorithm in benchmark tables.
func (c *CombBLASHeap) Name() string { return "CombBLAS-heap" }
