package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// CombBLASSPA reimplements the CombBLAS-SPA algorithm of Table I: the
// matrix is split row-wise into t DCSC pieces ahead of time; each thread
// scans the entire input vector, pulls its piece's fragment of every
// selected column, and accumulates into a private SPA covering its own
// row range.
//
// Two properties make it work-inefficient, and both are reproduced
// here: every thread reads all f input nonzeros (O(t·f) total — the
// term that kills scalability once t exceeds the average degree d), and
// the SPA is fully initialized on every call (O(m) total — the term
// that dominates for very sparse inputs, paper §IV-C). Set FullInit to
// false for the ablation that removes the second cost.
//
// The row-split pieces are immutable after construction; all per-call
// scratch lives in a slot-pinned spaState (warm state reuse, pool
// overflow — see par.Slots), so one CombBLASSPA is safe for concurrent
// Multiply calls.
type CombBLASSPA struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	states *par.Slots[spaState]

	// FullInit selects the paper-faithful full SPA initialization
	// (default true). Flip it only while no Multiply is in flight.
	FullInit bool

	counterAgg
}

// spaState is the per-call scratch of one CombBLASSPA multiply: the
// per-thread private SPAs, touched lists, sort scratch, output offsets
// and work counters.
type spaState struct {
	spaVal  [][]float64
	spaTag  [][]uint32
	epochs  []uint32
	touched [][]sparse.Index
	scratch [][]sparse.Index
	outOff  []int64
	ctr     []perf.Counters
}

// NewCombBLASSPA builds the row-split structure for t threads (≤ 0
// means GOMAXPROCS).
func NewCombBLASSPA(a *sparse.CSC, t int) *CombBLASSPA {
	t = par.Threads(t)
	c := &CombBLASSPA{
		pieces:   sparse.RowSplit(a, t),
		m:        a.NumRows,
		n:        a.NumCols,
		t:        t,
		FullInit: true,
	}
	c.states = par.NewSlots(par.Threads(0), func() *spaState {
		st := &spaState{
			spaVal:  make([][]float64, t),
			spaTag:  make([][]uint32, t),
			epochs:  make([]uint32, t),
			touched: make([][]sparse.Index, t),
			scratch: make([][]sparse.Index, t),
			outOff:  make([]int64, t+1),
			ctr:     make([]perf.Counters, t),
		}
		for w, d := range c.pieces {
			st.spaVal[w] = make([]float64, d.NumRows)
			st.spaTag[w] = make([]uint32, d.NumRows)
		}
		return st
	})
	return c
}

// retire folds the state's per-worker counters into the aggregate and
// releases the state's slot.
func (c *CombBLASSPA) retire(st *spaState, slot int) {
	c.retireCounters(st.ctr)
	c.states.Put(st, slot)
}

// Multiply computes y ← A·x. The output is sorted (CombBLAS keeps its
// vectors ordered, paper §IV-B).
func (c *CombBLASSPA) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	c.run(x, y, sr, nil, false)
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩ with masked rows dropped
// from each piece's touched list before the per-piece sort and output
// copy (see masked.go).
func (c *CombBLASSPA) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	c.run(x, y, sr, mask, complement)
}

func (c *CombBLASSPA) run(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	st, slot := c.states.Get()
	y.Reset(c.m)
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			c.multiplyPiece(st, w, x, sr, mask, complement)
		}
	})

	var total int64
	for w := 0; w < c.t; w++ {
		st.outOff[w] = total
		total += int64(len(st.touched[w]))
	}
	st.outOff[c.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(c.t, c.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := st.outOff[w]
			rowOff := c.pieces[w].RowOffset
			vals := st.spaVal[w]
			for i, li := range st.touched[w] {
				y.Ind[off+int64(i)] = li + rowOff
				y.Val[off+int64(i)] = vals[li]
			}
			st.ctr[w].OutputWritten += int64(len(st.touched[w]))
		}
	})
	// Pieces cover increasing row ranges and each piece's indices are
	// sorted, so the concatenation is globally sorted.
	y.Sorted = true
	c.retire(st, slot)
}

func (c *CombBLASSPA) multiplyPiece(st *spaState, w int, x *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	d := c.pieces[w]
	ctr := &st.ctr[w]
	vals := st.spaVal[w]
	tags := st.spaTag[w]

	if c.FullInit {
		// The CombBLAS-SPA discipline: wipe the whole private SPA.
		for i := range vals {
			vals[i] = sr.Zero
		}
		for i := range tags {
			tags[i] = 0
		}
		st.epochs[w] = 1
		ctr.SPAInit += int64(len(vals)) * 2
	} else {
		st.epochs[w]++
		if st.epochs[w] == 0 {
			for i := range tags {
				tags[i] = 0
			}
			st.epochs[w] = 1
		}
	}
	acc := spaAccum{
		vals:    vals,
		tags:    tags,
		epoch:   st.epochs[w],
		touched: st.touched[w][:0],
	}

	// Every thread scans the entire input vector — the O(t·f) term. The
	// accumulate body is monomorphized over the semiring tags
	// (accumulate.go).
	for k, j := range x.Ind {
		pos, ok := d.FindCol(j)
		if !ok {
			continue
		}
		rows, mvals := d.ColAt(pos)
		acc.accumulate(sr, rows, mvals, x.Val[k])
		ctr.MatrixTouched += int64(len(rows))
	}
	ctr.XScanned += int64(len(x.Ind))
	ctr.ColumnsProbed += int64(len(x.Ind))
	if !c.FullInit {
		// With full initialization the O(m) wipe above is the init cost;
		// per-slot inits are counted only for the ablation variant.
		ctr.SPAInit += acc.inits
	}
	ctr.SPAUpdates += acc.updates

	if mask != nil {
		acc.touched = filterTouchedMasked(acc.touched, d.RowOffset, mask, complement)
	}
	st.scratch[w] = radix.SortIndices(acc.touched, st.scratch[w])
	ctr.SortedElems += int64(len(acc.touched))
	st.touched[w] = acc.touched
}

// Name identifies the algorithm in benchmark tables.
func (c *CombBLASSPA) Name() string { return "CombBLAS-SPA" }
