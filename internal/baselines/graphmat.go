package baselines

import (
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// GraphMat reimplements GraphMat's matrix-driven SpMSpV (Table I):
// row-split DCSC pieces and a bitvector input vector. Being
// matrix-driven, every thread iterates over all nonzero columns of its
// piece and probes the bitvector — O(nzc) work per call regardless of
// how sparse x is. That flat O(nzc) floor is exactly the plateau
// GraphMat shows for nnz(x) < 50K in Fig. 3, and the reason the paper
// classifies matrix-driven algorithms as unable to attain the lower
// bound.
type GraphMat struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	bits *sparse.BitVec

	spaVal  [][]float64
	spaTag  [][]uint32
	epochs  []uint32
	touched [][]sparse.Index
	scratch [][]sparse.Index
	outOff  []int64

	// PerWorker holds one work counter per thread.
	PerWorker []perf.Counters
}

// NewGraphMat builds the row-split structure and the reusable bitvector
// for t threads (≤ 0 means GOMAXPROCS).
func NewGraphMat(a *sparse.CSC, t int) *GraphMat {
	t = par.Threads(t)
	g := &GraphMat{
		pieces:    sparse.RowSplit(a, t),
		m:         a.NumRows,
		n:         a.NumCols,
		t:         t,
		bits:      sparse.NewBitVec(a.NumCols),
		spaVal:    make([][]float64, t),
		spaTag:    make([][]uint32, t),
		epochs:    make([]uint32, t),
		touched:   make([][]sparse.Index, t),
		scratch:   make([][]sparse.Index, t),
		outOff:    make([]int64, t+1),
		PerWorker: make([]perf.Counters, t),
	}
	for w, d := range g.pieces {
		g.spaVal[w] = make([]float64, d.NumRows)
		g.spaTag[w] = make([]uint32, d.NumRows)
	}
	return g
}

// Multiply computes y ← A·x; the output is sorted.
func (g *GraphMat) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	y.Reset(g.m)
	// Convert the list input to GraphMat's bitvector format: O(f).
	g.bits.SetFrom(x)
	g.PerWorker[0].XScanned += int64(len(x.Ind))

	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			g.multiplyPiece(w, sr)
		}
	})

	var total int64
	for w := 0; w < g.t; w++ {
		g.outOff[w] = total
		total += int64(len(g.touched[w]))
	}
	g.outOff[g.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := g.outOff[w]
			rowOff := g.pieces[w].RowOffset
			vals := g.spaVal[w]
			for i, li := range g.touched[w] {
				y.Ind[off+int64(i)] = li + rowOff
				y.Val[off+int64(i)] = vals[li]
			}
			g.PerWorker[w].OutputWritten += int64(len(g.touched[w]))
		}
	})
	y.Sorted = true
	// Restore the bitvector for the next call: O(f), not O(n).
	g.bits.ClearFrom(x)
	g.PerWorker[0].XScanned += int64(len(x.Ind))
}

func (g *GraphMat) multiplyPiece(w int, sr semiring.Semiring) {
	d := g.pieces[w]
	ctr := &g.PerWorker[w]
	vals := g.spaVal[w]
	tags := g.spaTag[w]
	g.epochs[w]++
	if g.epochs[w] == 0 {
		for i := range tags {
			tags[i] = 0
		}
		g.epochs[w] = 1
	}
	epoch := g.epochs[w]
	touched := g.touched[w][:0]

	add, mul := sr.Add, sr.Mul
	// Matrix-driven: iterate over every nonzero column of the piece and
	// probe the input bitvector. This loop runs nzc times per call no
	// matter how sparse x is.
	for pos, j := range d.JC {
		if !g.bits.Test(j) {
			continue
		}
		xv := g.bits.Val[j]
		rows, mvals := d.ColAt(pos)
		for e, i := range rows {
			v := mul(mvals[e], xv)
			if tags[i] != epoch {
				tags[i] = epoch
				vals[i] = v
				touched = append(touched, i)
				ctr.SPAInit++
			} else {
				vals[i] = add(vals[i], v)
				ctr.SPAUpdates++
			}
		}
		ctr.MatrixTouched += int64(len(rows))
	}
	ctr.ColumnsProbed += int64(len(d.JC))

	g.scratch[w] = radix.SortIndices(touched, g.scratch[w])
	ctr.SortedElems += int64(len(touched))
	g.touched[w] = touched
}

// Counters aggregates per-worker work since the last reset.
func (g *GraphMat) Counters() perf.Counters { return perf.MergeAll(g.PerWorker) }

// ResetCounters zeroes the work counters.
func (g *GraphMat) ResetCounters() {
	for i := range g.PerWorker {
		g.PerWorker[i].Reset()
	}
}

// Name identifies the algorithm in benchmark tables.
func (g *GraphMat) Name() string { return "GraphMat" }
