package baselines

import (
	enginepkg "spmspv/internal/engine"
	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// GraphMat reimplements GraphMat's matrix-driven SpMSpV (Table I):
// row-split DCSC pieces and a bitvector input vector. Being
// matrix-driven, every thread iterates over all nonzero columns of its
// piece and probes the bitvector — O(nzc) work per call regardless of
// how sparse x is. That flat O(nzc) floor is exactly the plateau
// GraphMat shows for nnz(x) < 50K in Fig. 3, and the reason the paper
// classifies matrix-driven algorithms as unable to attain the lower
// bound.
//
// GraphMat is a FrontierEngine whose preferred representation is the
// bitmap: fed a list vector through Multiply, it wraps the input in a
// pooled sparse.Frontier and pays the O(f) list→bitmap conversion
// itself; fed a Frontier whose bitmap is already materialized (a
// hybrid engine or batch caller sharing one frontier across calls),
// the conversion is skipped entirely.
//
// The row-split pieces are immutable after construction; the frontier
// bitmaps live in a pool and the per-thread SPAs in a slot-pinned
// gmState (warm state reuse, pool overflow — see par.Slots), so one
// GraphMat is safe for concurrent Multiply calls.
type GraphMat struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	states *par.Slots[gmState]
	fpool  *sparse.FrontierPool

	counterAgg
}

// gmState is the per-call scratch of one GraphMat multiply.
type gmState struct {
	spaVal  [][]float64
	spaTag  [][]uint32
	epochs  []uint32
	touched [][]sparse.Index
	scratch [][]sparse.Index
	outOff  []int64
	ctr     []perf.Counters
}

// NewGraphMat builds the row-split structure for t threads (≤ 0 means
// GOMAXPROCS).
func NewGraphMat(a *sparse.CSC, t int) *GraphMat {
	t = par.Threads(t)
	g := &GraphMat{
		pieces: sparse.RowSplit(a, t),
		m:      a.NumRows,
		n:      a.NumCols,
		t:      t,
		fpool:  sparse.NewFrontierPool(a.NumCols),
	}
	g.states = par.NewSlots(par.Threads(0), func() *gmState {
		st := &gmState{
			spaVal:  make([][]float64, t),
			spaTag:  make([][]uint32, t),
			epochs:  make([]uint32, t),
			touched: make([][]sparse.Index, t),
			scratch: make([][]sparse.Index, t),
			outOff:  make([]int64, t+1),
			ctr:     make([]perf.Counters, t),
		}
		for w, d := range g.pieces {
			st.spaVal[w] = make([]float64, d.NumRows)
			st.spaTag[w] = make([]uint32, d.NumRows)
		}
		return st
	})
	return g
}

func (g *GraphMat) retire(st *gmState, slot int) {
	g.retireCounters(st.ctr)
	g.states.Put(st, slot)
}

// PreferredRep reports the bitmap input representation GraphMat's
// column-probe loop consumes natively.
func (g *GraphMat) PreferredRep() enginepkg.Rep { return enginepkg.RepBitmap }

// Multiply computes y ← A·x; the output is sorted. The list input is
// converted to the bitvector format through a pooled frontier (O(f)
// set + O(f) clear, never an O(n) wipe).
func (g *GraphMat) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	fr := g.fpool.Wrap(x)
	g.run(fr, y, nil, sr, nil, false)
	fr.Release()
}

// MultiplyMasked computes y ← ⟨A·x, mask⟩ with the mask pushed into
// the per-piece pass: masked rows are dropped from each piece's
// touched list before it is sorted or copied out, so they never reach
// the output step.
func (g *GraphMat) MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	fr := g.fpool.Wrap(x)
	g.run(fr, y, nil, sr, mask, complement)
	fr.Release()
}

// MultiplyFrontier computes y ← A·x reading the frontier's bitmap
// representation, materializing it only when no earlier consumer of
// the same frontier already has.
func (g *GraphMat) MultiplyFrontier(fr *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring) {
	g.run(fr, y, nil, sr, nil, false)
}

// OutputRep reports that MultiplyInto emits the bitmap natively: the
// bitvector is GraphMat's natural vector format, and the per-piece
// output copy scatters its rows into the output bitmap in the same
// pass that writes the list.
func (g *GraphMat) OutputRep() enginepkg.Rep { return enginepkg.RepBitmap }

// MultiplyInto computes y ← A·x into the output frontier, bitmap
// emitted natively — a bitvector-in, bitvector-out multiply, the shape
// GraphMat's own matrix-driven pipeline composes.
func (g *GraphMat) MultiplyInto(x, y *sparse.Frontier, sr semiring.Semiring) {
	list := y.BeginOutput()
	bits := y.OutputBits(g.m)
	g.run(x, list, bits, sr, nil, false)
	y.FinishOutput(true)
}

// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output
// frontier with the mask pushed into the per-piece pass and the
// surviving rows emitted list+bitmap in one pass.
func (g *GraphMat) MultiplyIntoMasked(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	list := y.BeginOutput()
	bits := y.OutputBits(g.m)
	g.run(x, list, bits, sr, mask, complement)
	y.FinishOutput(true)
}

// run is the shared matrix-driven multiply: frontier in, list (and
// optionally native bitmap) out, with an optional output mask applied
// per piece.
func (g *GraphMat) run(fr *sparse.Frontier, y *sparse.SpVec, outBits *sparse.BitVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	st, slot := g.states.Get()
	y.Reset(g.m)
	if fr.Materialize() {
		// The conversion scans the f input entries, the same O(f) cost
		// the original bitvector build paid per call.
		st.ctr[0].XScanned += int64(fr.NNZ())
		st.ctr[0].FrontierConversions++
		if fr.IsOutput() {
			// The upstream engine produced this frontier without a
			// native bitmap — the conversion the output layer is
			// supposed to make unnecessary.
			st.ctr[0].OutputConversions++
		}
	}
	bits := fr.Bits()

	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			g.multiplyPiece(st, bits, w, sr, mask, complement)
		}
	})

	var total int64
	for w := 0; w < g.t; w++ {
		st.outOff[w] = total
		total += int64(len(st.touched[w]))
	}
	st.outOff[g.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := st.outOff[w]
			d := g.pieces[w]
			rowOff := d.RowOffset
			vals := st.spaVal[w]
			for i, li := range st.touched[w] {
				y.Ind[off+int64(i)] = li + rowOff
				y.Val[off+int64(i)] = vals[li]
			}
			if outBits != nil && len(st.touched[w]) > 0 {
				cnt := int64(len(st.touched[w]))
				outBits.SetRangeFrom(y.Ind[off:off+cnt], y.Val[off:off+cnt],
					rowOff, rowOff+d.NumRows)
			}
			st.ctr[w].OutputWritten += int64(len(st.touched[w]))
		}
	})
	y.Sorted = true
	g.retire(st, slot)
}

func (g *GraphMat) multiplyPiece(st *gmState, bits *sparse.BitVec, w int, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	d := g.pieces[w]
	ctr := &st.ctr[w]
	st.epochs[w]++
	if st.epochs[w] == 0 {
		tags := st.spaTag[w]
		for i := range tags {
			tags[i] = 0
		}
		st.epochs[w] = 1
	}
	acc := spaAccum{
		vals:    st.spaVal[w],
		tags:    st.spaTag[w],
		epoch:   st.epochs[w],
		touched: st.touched[w][:0],
	}

	// Matrix-driven: iterate over every nonzero column of the piece and
	// probe the input bitvector. This loop runs nzc times per call no
	// matter how sparse x is. The accumulate body is monomorphized over
	// the semiring tags (accumulate.go).
	for pos, j := range d.JC {
		if !bits.Test(j) {
			continue
		}
		xv := bits.Val[j]
		rows, mvals := d.ColAt(pos)
		acc.accumulate(sr, rows, mvals, xv)
		ctr.MatrixTouched += int64(len(rows))
	}
	ctr.ColumnsProbed += int64(len(d.JC))
	ctr.SPAInit += acc.inits
	ctr.SPAUpdates += acc.updates

	if mask != nil {
		// Mask pushdown: masked rows leave the piece here, before the
		// sort and the output copy ever see them.
		acc.touched = filterTouchedMasked(acc.touched, d.RowOffset, mask, complement)
	}
	st.scratch[w] = radix.SortIndices(acc.touched, st.scratch[w])
	ctr.SortedElems += int64(len(acc.touched))
	st.touched[w] = acc.touched
}

// Name identifies the algorithm in benchmark tables.
func (g *GraphMat) Name() string { return "GraphMat" }
