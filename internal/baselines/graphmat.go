package baselines

import (
	"sync"

	"spmspv/internal/par"
	"spmspv/internal/perf"
	"spmspv/internal/radix"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// GraphMat reimplements GraphMat's matrix-driven SpMSpV (Table I):
// row-split DCSC pieces and a bitvector input vector. Being
// matrix-driven, every thread iterates over all nonzero columns of its
// piece and probes the bitvector — O(nzc) work per call regardless of
// how sparse x is. That flat O(nzc) floor is exactly the plateau
// GraphMat shows for nnz(x) < 50K in Fig. 3, and the reason the paper
// classifies matrix-driven algorithms as unable to attain the lower
// bound.
//
// The row-split pieces are immutable after construction; the input
// bitvector and the per-thread SPAs live in a pooled gmState, so one
// GraphMat is safe for concurrent Multiply calls.
type GraphMat struct {
	pieces []*sparse.DCSC
	m, n   sparse.Index
	t      int

	pool sync.Pool // *gmState

	counterAgg
}

// gmState is the per-call scratch of one GraphMat multiply, including
// the bitvector conversion of the input.
type gmState struct {
	bits    *sparse.BitVec
	spaVal  [][]float64
	spaTag  [][]uint32
	epochs  []uint32
	touched [][]sparse.Index
	scratch [][]sparse.Index
	outOff  []int64
	ctr     []perf.Counters
}

// NewGraphMat builds the row-split structure for t threads (≤ 0 means
// GOMAXPROCS).
func NewGraphMat(a *sparse.CSC, t int) *GraphMat {
	t = par.Threads(t)
	g := &GraphMat{
		pieces: sparse.RowSplit(a, t),
		m:      a.NumRows,
		n:      a.NumCols,
		t:      t,
	}
	n := a.NumCols
	g.pool.New = func() any {
		st := &gmState{
			bits:    sparse.NewBitVec(n),
			spaVal:  make([][]float64, t),
			spaTag:  make([][]uint32, t),
			epochs:  make([]uint32, t),
			touched: make([][]sparse.Index, t),
			scratch: make([][]sparse.Index, t),
			outOff:  make([]int64, t+1),
			ctr:     make([]perf.Counters, t),
		}
		for w, d := range g.pieces {
			st.spaVal[w] = make([]float64, d.NumRows)
			st.spaTag[w] = make([]uint32, d.NumRows)
		}
		return st
	}
	return g
}

func (g *GraphMat) retire(st *gmState) {
	g.retireCounters(st.ctr)
	g.pool.Put(st)
}

// Multiply computes y ← A·x; the output is sorted.
func (g *GraphMat) Multiply(x, y *sparse.SpVec, sr semiring.Semiring) {
	st := g.pool.Get().(*gmState)
	y.Reset(g.m)
	// Convert the list input to GraphMat's bitvector format: O(f).
	st.bits.SetFrom(x)
	st.ctr[0].XScanned += int64(len(x.Ind))

	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			g.multiplyPiece(st, w, sr)
		}
	})

	var total int64
	for w := 0; w < g.t; w++ {
		st.outOff[w] = total
		total += int64(len(st.touched[w]))
	}
	st.outOff[g.t] = total
	if int64(cap(y.Ind)) < total {
		y.Ind = make([]sparse.Index, total)
		y.Val = make([]float64, total)
	} else {
		y.Ind = y.Ind[:total]
		y.Val = y.Val[:total]
	}
	par.ForStatic(g.t, g.t, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			off := st.outOff[w]
			rowOff := g.pieces[w].RowOffset
			vals := st.spaVal[w]
			for i, li := range st.touched[w] {
				y.Ind[off+int64(i)] = li + rowOff
				y.Val[off+int64(i)] = vals[li]
			}
			st.ctr[w].OutputWritten += int64(len(st.touched[w]))
		}
	})
	y.Sorted = true
	// Restore the bitvector for the pool's next borrower: O(f), not O(n).
	st.bits.ClearFrom(x)
	st.ctr[0].XScanned += int64(len(x.Ind))
	g.retire(st)
}

func (g *GraphMat) multiplyPiece(st *gmState, w int, sr semiring.Semiring) {
	d := g.pieces[w]
	ctr := &st.ctr[w]
	vals := st.spaVal[w]
	tags := st.spaTag[w]
	st.epochs[w]++
	if st.epochs[w] == 0 {
		for i := range tags {
			tags[i] = 0
		}
		st.epochs[w] = 1
	}
	epoch := st.epochs[w]
	touched := st.touched[w][:0]

	add, mul := sr.Add, sr.Mul
	// Matrix-driven: iterate over every nonzero column of the piece and
	// probe the input bitvector. This loop runs nzc times per call no
	// matter how sparse x is.
	for pos, j := range d.JC {
		if !st.bits.Test(j) {
			continue
		}
		xv := st.bits.Val[j]
		rows, mvals := d.ColAt(pos)
		for e, i := range rows {
			v := mul(mvals[e], xv)
			if tags[i] != epoch {
				tags[i] = epoch
				vals[i] = v
				touched = append(touched, i)
				ctr.SPAInit++
			} else {
				vals[i] = add(vals[i], v)
				ctr.SPAUpdates++
			}
		}
		ctr.MatrixTouched += int64(len(rows))
	}
	ctr.ColumnsProbed += int64(len(d.JC))

	st.scratch[w] = radix.SortIndices(touched, st.scratch[w])
	ctr.SortedElems += int64(len(touched))
	st.touched[w] = touched
}

// Name identifies the algorithm in benchmark tables.
func (g *GraphMat) Name() string { return "GraphMat" }
