package baselines

import (
	enginepkg "spmspv/internal/engine"
	"spmspv/internal/sparse"
)

// The Table I baselines register themselves with the engine registry;
// importing this package is what makes them constructible. The
// bucket-specific option fields are ignored — each baseline is built
// exactly as its published system does it, from the matrix and the
// thread count.
func init() {
	enginepkg.Register(enginepkg.CombBLASSPA, "CombBLAS-SPA",
		func(a *sparse.CSC, opt enginepkg.Options) enginepkg.Engine {
			return NewCombBLASSPA(a, opt.Threads)
		})
	enginepkg.Register(enginepkg.CombBLASHeap, "CombBLAS-heap",
		func(a *sparse.CSC, opt enginepkg.Options) enginepkg.Engine {
			return NewCombBLASHeap(a, opt.Threads)
		})
	enginepkg.Register(enginepkg.GraphMat, "GraphMat",
		func(a *sparse.CSC, opt enginepkg.Options) enginepkg.Engine {
			return NewGraphMat(a, opt.Threads)
		})
	enginepkg.Register(enginepkg.SortBased, "SpMSpV-sort",
		func(a *sparse.CSC, opt enginepkg.Options) enginepkg.Engine {
			return NewSortBased(a, opt.Threads)
		}, "sort")
}

// Compile-time checks: every baseline supports the masked extension
// (so masked BFS can compare all Table I engines), and GraphMat — the
// bitvector-native algorithm — additionally reads and writes frontiers
// natively.
var (
	_ enginepkg.MaskedEngine       = (*CombBLASSPA)(nil)
	_ enginepkg.MaskedEngine       = (*CombBLASHeap)(nil)
	_ enginepkg.MaskedEngine       = (*GraphMat)(nil)
	_ enginepkg.MaskedEngine       = (*SortBased)(nil)
	_ enginepkg.FrontierEngine     = (*GraphMat)(nil)
	_ enginepkg.MaskedOutputEngine = (*GraphMat)(nil)
)
