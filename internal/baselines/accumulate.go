package baselines

import (
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Specialized SPA accumulate loops shared by the row-split baselines.
//
// CombBLAS-SPA and GraphMat spend their df term in the same inner
// loop: for each selected column fragment, MULT the matrix entry with
// the x value and ADD it into an epoch-tagged private SPA. As with
// internal/core's bucket/merge kernels, calling the semiring's func
// fields costs an indirect call per matrix nonzero, so the loop is
// dispatched once per column on the semiring's AddOp/MulOp tags to a
// hand-monomorphized body with both operations inlined; the seven
// predefined semirings run call-free and user-defined semirings
// (AddCustom/MulCustom) take the func path they always took. The
// dispatch runs per column, not per nonzero, so its switch is
// amortized over the column's fragment.
//
// (Hand-written per combination rather than generic over op types for
// the same reason as core's kernels: gc does not devirtualize
// dictionary-based method calls in non-inlined generic
// instantiations.)

// spaAccum is one worker's epoch-tagged SPA accumulation state. The
// caller seeds the slices/epoch from its pooled per-thread state,
// streams column fragments through accumulate, and reads back touched
// plus the init/update tallies.
type spaAccum struct {
	vals    []float64
	tags    []uint32
	epoch   uint32
	touched []sparse.Index
	inits   int64
	updates int64
}

// accumulate folds one scaled column fragment (rows, mvals, scaled by
// the input value xv) into the SPA, dispatching on the semiring tags.
func (s *spaAccum) accumulate(sr semiring.Semiring, rows []sparse.Index, mvals []float64, xv float64) {
	switch {
	case sr.AddKind == semiring.AddPlus && sr.MulKind == semiring.MulTimes:
		s.plusTimes(rows, mvals, xv)
	case sr.AddKind == semiring.AddMin && sr.MulKind == semiring.MulPlus:
		s.minPlus(rows, mvals, xv)
	case sr.AddKind == semiring.AddMax && sr.MulKind == semiring.MulPlus:
		s.maxPlus(rows, mvals, xv)
	case sr.AddKind == semiring.AddMin && sr.MulKind == semiring.MulSelect2nd:
		s.minSelect2nd(rows, xv)
	case sr.AddKind == semiring.AddMax && sr.MulKind == semiring.MulSelect2nd:
		s.maxSelect2nd(rows, xv)
	case sr.AddKind == semiring.AddMin && sr.MulKind == semiring.MulSelect1st:
		s.minSelect1st(rows, mvals)
	case sr.AddKind == semiring.AddOr && sr.MulKind == semiring.MulAnd:
		s.orAnd(rows, mvals, xv)
	default:
		s.funcOps(sr.Add, sr.Mul, rows, mvals, xv)
	}
}

func (s *spaAccum) plusTimes(rows []sparse.Index, mvals []float64, xv float64) {
	for e, i := range rows {
		v := mvals[e] * xv
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			s.vals[i] += v
			s.updates++
		}
	}
}

func (s *spaAccum) minPlus(rows []sparse.Index, mvals []float64, xv float64) {
	for e, i := range rows {
		v := mvals[e] + xv
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if !(s.vals[i] < v) {
				s.vals[i] = v
			}
			s.updates++
		}
	}
}

func (s *spaAccum) maxPlus(rows []sparse.Index, mvals []float64, xv float64) {
	for e, i := range rows {
		v := mvals[e] + xv
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if !(s.vals[i] > v) {
				s.vals[i] = v
			}
			s.updates++
		}
	}
}

// minSelect2nd propagates xv unchanged, so the column's values are
// never read — BFS's frontier expansion touches only row indices.
func (s *spaAccum) minSelect2nd(rows []sparse.Index, xv float64) {
	for _, i := range rows {
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = xv
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if !(s.vals[i] < xv) {
				s.vals[i] = xv
			}
			s.updates++
		}
	}
}

func (s *spaAccum) maxSelect2nd(rows []sparse.Index, xv float64) {
	for _, i := range rows {
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = xv
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if !(s.vals[i] > xv) {
				s.vals[i] = xv
			}
			s.updates++
		}
	}
}

func (s *spaAccum) minSelect1st(rows []sparse.Index, mvals []float64) {
	for e, i := range rows {
		v := mvals[e]
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if !(s.vals[i] < v) {
				s.vals[i] = v
			}
			s.updates++
		}
	}
}

func (s *spaAccum) orAnd(rows []sparse.Index, mvals []float64, xv float64) {
	for e, i := range rows {
		v := 0.0
		if mvals[e] != 0 && xv != 0 {
			v = 1
		}
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			if s.vals[i] != 0 || v != 0 {
				s.vals[i] = 1
			} else {
				s.vals[i] = 0
			}
			s.updates++
		}
	}
}

func (s *spaAccum) funcOps(add, mul func(a, b float64) float64, rows []sparse.Index, mvals []float64, xv float64) {
	for e, i := range rows {
		v := mul(mvals[e], xv)
		if s.tags[i] != s.epoch {
			s.tags[i] = s.epoch
			s.vals[i] = v
			s.touched = append(s.touched, i)
			s.inits++
		} else {
			s.vals[i] = add(s.vals[i], v)
			s.updates++
		}
	}
}
