// Package baselines implements the competing SpMSpV algorithms the
// paper evaluates against (Table I): CombBLAS-SPA, CombBLAS-heap, the
// matrix-driven GraphMat algorithm, and the sort-based algorithm of
// Yang et al. — plus a trivially-correct sequential reference used as
// the test oracle.
//
// Each baseline is reimplemented faithfully to its published work
// profile (row-split DCSC pieces, full vs partial SPA initialization,
// heap merging, bitvector input), because the paper's comparison is
// about where each algorithm spends work, not about C++ versus Go.
// Constructors take the thread count since row-splitting is per-t
// preprocessing, exactly as in CombBLAS and GraphMat; that setup is
// excluded from multiply timings in the harness, as in the paper.
package baselines

import (
	"sort"

	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Reference computes y ← A·x sequentially with a hash-map accumulator
// and returns a sorted vector. It is deliberately simple — the oracle
// every parallel algorithm is validated against.
func Reference(a *sparse.CSC, x *sparse.SpVec, sr semiring.Semiring) *sparse.SpVec {
	acc := make(map[sparse.Index]float64)
	for k, j := range x.Ind {
		xv := x.Val[k]
		rows, vals := a.Col(j)
		for e, i := range rows {
			v := sr.Mul(vals[e], xv)
			if old, ok := acc[i]; ok {
				acc[i] = sr.Add(old, v)
			} else {
				acc[i] = v
			}
		}
	}
	y := sparse.NewSpVec(a.NumRows, len(acc))
	keys := make([]sparse.Index, 0, len(acc))
	for i := range acc {
		keys = append(keys, i)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	for _, i := range keys {
		y.Append(i, acc[i])
	}
	y.Sorted = true
	return y
}
