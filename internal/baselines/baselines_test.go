package baselines

import (
	"math/rand"
	"testing"

	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
	"spmspv/internal/testutil"
)

// engine is the common shape of all baseline multipliers.
type engine interface {
	Multiply(x, y *sparse.SpVec, sr semiring.Semiring)
	Counters() perf.Counters
	ResetCounters()
	Name() string
}

func engines(a *sparse.CSC, t int) []engine {
	return []engine{
		NewCombBLASSPA(a, t),
		NewCombBLASHeap(a, t),
		NewGraphMat(a, t),
		NewSortBased(a, t),
	}
}

func TestBaselinesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		m, n sparse.Index
		d    float64
	}{
		{1, 1, 1},
		{17, 31, 2.5},
		{500, 500, 4},
		{64, 1024, 2},  // wide
		{1024, 64, 12}, // tall
	}
	for _, sh := range shapes {
		a := testutil.RandomCSC(rng, sh.m, sh.n, sh.d)
		for _, threads := range []int{1, 3, 8} {
			for _, f := range []int{0, 1, int(sh.n) / 2, int(sh.n)} {
				x := testutil.RandomVector(rng, sh.n, f, true)
				want := Reference(a, x, semiring.Arithmetic)
				for _, eng := range engines(a, threads) {
					y := sparse.NewSpVec(0, 0)
					eng.Multiply(x, y, semiring.Arithmetic)
					if !y.EqualValues(want, 1e-9) {
						t.Fatalf("%s: %dx%d t=%d f=%d: mismatch vs reference",
							eng.Name(), sh.m, sh.n, threads, f)
					}
					if err := y.Validate(); err != nil {
						t.Fatalf("%s: invalid output: %v", eng.Name(), err)
					}
					if !y.Sorted {
						t.Fatalf("%s: output not marked sorted", eng.Name())
					}
				}
			}
		}
	}
}

func TestBaselinesReuseAcrossCalls(t *testing.T) {
	// Engines keep internal state (SPAs, bitvectors, buffers); repeated
	// calls with different vectors must not leak state between calls.
	rng := rand.New(rand.NewSource(2))
	a := testutil.RandomCSC(rng, 300, 300, 5)
	engs := engines(a, 4)
	for trial := 0; trial < 25; trial++ {
		x := testutil.RandomVector(rng, 300, rng.Intn(300), true)
		want := Reference(a, x, semiring.Arithmetic)
		for _, eng := range engs {
			y := sparse.NewSpVec(0, 0)
			eng.Multiply(x, y, semiring.Arithmetic)
			if !y.EqualValues(want, 1e-9) {
				t.Fatalf("%s: trial %d: state leaked across calls", eng.Name(), trial)
			}
		}
	}
}

func TestBaselinesSemirings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := testutil.RandomCSC(rng, 200, 200, 4)
	x := testutil.RandomVector(rng, 200, 50, true)
	rings := []semiring.Semiring{
		semiring.MinPlus, semiring.BoolOrAnd, semiring.MinSelect2nd,
	}
	for _, sr := range rings {
		want := Reference(a, x, sr)
		for _, eng := range engines(a, 4) {
			y := sparse.NewSpVec(0, 0)
			eng.Multiply(x, y, sr)
			if !y.EqualValues(want, 0) {
				t.Errorf("%s over %s: mismatch vs reference", eng.Name(), sr.Name)
			}
		}
	}
}

func TestCombBLASSPAWorkGrowsWithThreads(t *testing.T) {
	// Table II: the row-split private-SPA scheme is NOT work-efficient —
	// its x-scan work is t·f and its SPA-init work is O(m) total.
	rng := rand.New(rand.NewSource(4))
	a := testutil.RandomCSC(rng, 5000, 5000, 4)
	x := testutil.RandomVector(rng, 5000, 100, true)
	y := sparse.NewSpVec(0, 0)

	scan := map[int]int64{}
	for _, threads := range []int{1, 4} {
		eng := NewCombBLASSPA(a, threads)
		eng.Multiply(x, y, semiring.Arithmetic)
		scan[threads] = eng.Counters().XScanned
	}
	if scan[4] != 4*scan[1] {
		t.Errorf("x-scan work: t=4 got %d, want exactly 4×%d (the paper's O(t·f) term)",
			scan[4], scan[1])
	}

	eng := NewCombBLASSPA(a, 2)
	eng.Multiply(x, y, semiring.Arithmetic)
	if init := eng.Counters().SPAInit; init < int64(a.NumRows) {
		t.Errorf("full-init SPA initialized %d slots, want ≥ m=%d", init, a.NumRows)
	}
	// The ablation switch removes the O(m) term.
	eng.FullInit = false
	eng.ResetCounters()
	eng.Multiply(x, y, semiring.Arithmetic)
	if init := eng.Counters().SPAInit; init >= int64(a.NumRows) {
		t.Errorf("partial-init SPA initialized %d slots, want < m=%d", init, a.NumRows)
	}
}

func TestGraphMatProbesAllColumns(t *testing.T) {
	// The matrix-driven O(nzc) floor: column probes are independent of
	// nnz(x).
	rng := rand.New(rand.NewSource(5))
	a := testutil.RandomCSC(rng, 3000, 3000, 4)
	y := sparse.NewSpVec(0, 0)

	probes := map[int]int64{}
	for _, f := range []int{1, 1000} {
		eng := NewGraphMat(a, 2)
		x := testutil.RandomVector(rng, 3000, f, true)
		eng.Multiply(x, y, semiring.Arithmetic)
		probes[f] = eng.Counters().ColumnsProbed
	}
	if probes[1] != probes[1000] {
		t.Errorf("matrix-driven probes should not depend on nnz(x): f=1 → %d, f=1000 → %d",
			probes[1], probes[1000])
	}
	if probes[1] < int64(a.NZC()) {
		t.Errorf("probes %d < nzc %d", probes[1], a.NZC())
	}
}

func TestCombBLASHeapUsesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := testutil.RandomCSC(rng, 1000, 1000, 6)
	x := testutil.RandomVector(rng, 1000, 200, true)
	y := sparse.NewSpVec(0, 0)
	eng := NewCombBLASHeap(a, 2)
	eng.Multiply(x, y, semiring.Arithmetic)
	c := eng.Counters()
	if c.HeapOps == 0 {
		t.Error("heap algorithm recorded no heap operations")
	}
	if c.HeapOps < c.MatrixTouched {
		t.Errorf("heap ops %d < matrix entries %d: every merged entry passes the heap",
			c.HeapOps, c.MatrixTouched)
	}
}

func TestSortBasedSortsAllEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := testutil.RandomCSC(rng, 1000, 1000, 6)
	x := testutil.RandomVector(rng, 1000, 200, true)
	y := sparse.NewSpVec(0, 0)
	eng := NewSortBased(a, 2)
	eng.Multiply(x, y, semiring.Arithmetic)
	c := eng.Counters()
	if c.SortedElems != c.MatrixTouched {
		t.Errorf("sort-based sorted %d elements, touched %d matrix entries — should sort all df",
			c.SortedElems, c.MatrixTouched)
	}
}

func TestEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := testutil.RandomCSC(rng, 100, 100, 3)
	x := sparse.NewSpVec(100, 0)
	for _, eng := range engines(a, 4) {
		y := sparse.NewSpVec(0, 0)
		eng.Multiply(x, y, semiring.Arithmetic)
		if y.NNZ() != 0 || y.N != 100 {
			t.Errorf("%s: empty x gave nnz=%d n=%d", eng.Name(), y.NNZ(), y.N)
		}
	}
}
