// Package testutil provides deterministic random inputs shared by the
// test suites of the algorithm packages.
package testutil

import (
	"math/rand"

	"spmspv/internal/sparse"
)

// RandomCSC builds an m×n matrix with approximately avgDeg nonzeros per
// column at uniformly random rows, values in (0, 1].
func RandomCSC(rng *rand.Rand, m, n sparse.Index, avgDeg float64) *sparse.CSC {
	t := sparse.NewTriples(m, n, int(float64(n)*avgDeg))
	for j := sparse.Index(0); j < n; j++ {
		k := int(avgDeg)
		if rng.Float64() < avgDeg-float64(k) {
			k++
		}
		for e := 0; e < k; e++ {
			t.Append(sparse.Index(rng.Intn(int(m))), j, rng.Float64()+0.001)
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic(err)
	}
	return a
}

// RandomVector builds a sparse vector of dimension n with f distinct
// random indices and values in [0.5, 1.5). With sorted set, the indices
// are increasing; otherwise they are left in insertion (random) order.
func RandomVector(rng *rand.Rand, n sparse.Index, f int, sorted bool) *sparse.SpVec {
	if f > int(n) {
		f = int(n)
	}
	perm := rng.Perm(int(n))[:f]
	v := sparse.NewSpVec(n, f)
	for _, i := range perm {
		v.Append(sparse.Index(i), 0.5+rng.Float64())
	}
	v.Sorted = false
	if sorted {
		v.Sort()
	}
	return v
}

// VectorWithIndices builds a sparse vector holding exactly the given
// indices with values 1.
func VectorWithIndices(n sparse.Index, ind ...sparse.Index) *sparse.SpVec {
	v := sparse.NewSpVec(n, len(ind))
	for _, i := range ind {
		v.Append(i, 1)
	}
	return v
}
