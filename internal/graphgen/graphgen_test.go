package graphgen

import (
	"testing"

	"spmspv/internal/sparse"
)

func TestErdosRenyiShape(t *testing.T) {
	n := sparse.Index(2000)
	d := 8.0
	a := ErdosRenyi(n, d, 1)
	if a.NumRows != n || a.NumCols != n {
		t.Fatalf("dims %dx%d", a.NumRows, a.NumCols)
	}
	avg := a.AverageDegree()
	if avg < 0.8*d || avg > 1.2*d {
		t.Errorf("average degree %g far from %g", avg, d)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(500, 4, 7)
	b := ErdosRenyi(500, 4, 7)
	if !a.Equal(b) {
		t.Error("same seed produced different graphs")
	}
	c := ErdosRenyi(500, 4, 8)
	if a.Equal(c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRMATProperties(t *testing.T) {
	a := RMAT(DefaultRMAT(12), 3)
	n := sparse.Index(1 << 12)
	if a.NumRows != n || a.NumCols != n {
		t.Fatalf("dims %dx%d", a.NumRows, a.NumCols)
	}
	// Symmetric: A == Aᵀ.
	if !a.Equal(a.Transpose()) {
		t.Error("symmetric R-MAT is not symmetric")
	}
	// No self loops.
	for j := sparse.Index(0); j < n; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			if i == j {
				t.Fatalf("self loop at %d", i)
			}
		}
	}
	// Unit weights despite duplicate edges.
	for _, v := range a.Val {
		if v != 1 {
			t.Fatalf("edge weight %g, want 1", v)
		}
	}
	// Scale-free skew: max degree far above average.
	s := sparse.ComputeStats("rmat", a, 0)
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Errorf("max degree %d not skewed vs avg %g — not scale-free-like",
			s.MaxDegree, s.AvgDegree)
	}
}

func TestGridDiameterRegimes(t *testing.T) {
	// 32x32 grid: diameter 62; R-MAT at the same size: diameter ≤ ~15.
	grid := Grid2D(32, 32)
	gs := sparse.ComputeStats("grid", grid, 0)
	if gs.PseudoDiameter != 62 {
		t.Errorf("grid pseudo-diameter %d, want 62", gs.PseudoDiameter)
	}
	rmat := RMAT(DefaultRMAT(10), 5)
	rs := sparse.ComputeStats("rmat", rmat, 0)
	if rs.PseudoDiameter >= gs.PseudoDiameter/2 {
		t.Errorf("R-MAT diameter %d not clearly below grid diameter %d",
			rs.PseudoDiameter, gs.PseudoDiameter)
	}
}

func TestGrid2D9DenserThanGrid2D(t *testing.T) {
	g5 := Grid2D(20, 20)
	g9 := Grid2D9(20, 20)
	if g9.NNZ() <= g5.NNZ() {
		t.Errorf("9-point (%d) not denser than 5-point (%d)", g9.NNZ(), g5.NNZ())
	}
	if !g9.Equal(g9.Transpose()) {
		t.Error("9-point grid not symmetric")
	}
}

func TestTriangularMeshDegree(t *testing.T) {
	a := TriangularMesh(30, 30, 0)
	if !a.Equal(a.Transpose()) {
		t.Error("mesh not symmetric")
	}
	// Interior vertices of a triangulated grid have degree 6.
	avg := a.AverageDegree()
	if avg < 4.5 || avg > 6.5 {
		t.Errorf("average degree %g not near 6", avg)
	}
	j := TriangularMesh(30, 30, 99)
	if !j.Equal(j.Transpose()) {
		t.Error("jittered mesh not symmetric")
	}
	if a.Equal(j) {
		t.Error("jitter had no effect")
	}
}

func TestRGGConnectivity(t *testing.T) {
	a := RGG(2000, 0.05, 11)
	if !a.Equal(a.Transpose()) {
		t.Error("rgg not symmetric")
	}
	s := sparse.ComputeStats("rgg", a, 0)
	if s.AvgDegree < 1 {
		t.Errorf("rgg too sparse: avg degree %g", s.AvgDegree)
	}
	// Geometric graphs have high diameter relative to scale-free graphs.
	if s.PseudoDiameter < 10 {
		t.Errorf("rgg pseudo-diameter %d suspiciously small", s.PseudoDiameter)
	}
}

func TestRegistryBuildsAllProblems(t *testing.T) {
	const scale = 10
	seen := map[string]bool{}
	for _, p := range Problems() {
		if seen[p.Name] {
			t.Fatalf("duplicate problem name %s", p.Name)
		}
		seen[p.Name] = true
		a := p.Build(scale)
		if a.NNZ() == 0 {
			t.Errorf("%s: empty matrix", p.Name)
		}
		if a.NumRows != a.NumCols {
			t.Errorf("%s: adjacency matrix not square (%dx%d)", p.Name, a.NumRows, a.NumCols)
		}
		s := sparse.ComputeStats(p.Name, a, 0)
		// Diameter regime must match the declared class.
		if p.Class == HighDiameter && s.PseudoDiameter < 20 {
			t.Errorf("%s: declared high-diameter but pseudo-diameter is %d", p.Name, s.PseudoDiameter)
		}
		if p.Class == LowDiameter && s.PseudoDiameter > 20 {
			t.Errorf("%s: declared low-diameter but pseudo-diameter is %d", p.Name, s.PseudoDiameter)
		}
	}
	if len(seen) != 11 {
		t.Errorf("registry has %d problems, want 11 (Table IV)", len(seen))
	}
	if _, ok := FindProblem("rmat-ljournal"); !ok {
		t.Error("FindProblem failed for known name")
	}
	if _, ok := FindProblem("nope"); ok {
		t.Error("FindProblem found nonexistent name")
	}
}
