package graphgen

import (
	"math/rand"

	"spmspv/internal/sparse"
)

// Grid2D builds the adjacency matrix of a rows×cols lattice with the
// 5-point stencil (von Neumann neighborhood). Its diameter is
// rows+cols−2: the high-diameter regime of the paper's G3_circuit and
// the circuit/FEM problems of Table IV. Weights are 1 and the matrix is
// symmetric.
func Grid2D(rows, cols int) *sparse.CSC {
	n := sparse.Index(rows * cols)
	t := sparse.NewTriples(n, n, 4*int(n))
	id := func(r, c int) sparse.Index { return sparse.Index(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			if c+1 < cols {
				t.AppendSymmetric(v, id(r, c+1), 1)
			}
			if r+1 < rows {
				t.AppendSymmetric(v, id(r+1, c), 1)
			}
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}

// Grid2D9 builds the 9-point-stencil (Moore neighborhood) lattice —
// denser rows at the same diameter, a stand-in for higher-order FEM
// matrices such as dielFilterV3real (which averages ~81 nonzeros/row in
// the paper; a 9-point mesh captures the "high diameter, heavier
// columns" combination at laptop scale).
func Grid2D9(rows, cols int) *sparse.CSC {
	n := sparse.Index(rows * cols)
	t := sparse.NewTriples(n, n, 8*int(n))
	id := func(r, c int) sparse.Index { return sparse.Index(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			if c+1 < cols {
				t.AppendSymmetric(v, id(r, c+1), 1)
			}
			if r+1 < rows {
				t.AppendSymmetric(v, id(r+1, c), 1)
				if c+1 < cols {
					t.AppendSymmetric(v, id(r+1, c+1), 1)
				}
				if c > 0 {
					t.AppendSymmetric(v, id(r+1, c-1), 1)
				}
			}
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}

// TriangularMesh builds a rows×cols lattice where every unit cell gets
// one diagonal, producing the ~degree-6 planar triangulations of the
// paper's hugetric/hugetrace frame graphs. With jitterSeed != 0 the
// diagonal orientation is randomized per cell (a cheap proxy for the
// irregularity of a Delaunay triangulation of random points, standing
// in for delaunay_n24); with jitterSeed == 0 all diagonals lean the
// same way.
func TriangularMesh(rows, cols int, jitterSeed int64) *sparse.CSC {
	n := sparse.Index(rows * cols)
	t := sparse.NewTriples(n, n, 6*int(n))
	var rng *rand.Rand
	if jitterSeed != 0 {
		rng = rand.New(rand.NewSource(jitterSeed))
	}
	id := func(r, c int) sparse.Index { return sparse.Index(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			if c+1 < cols {
				t.AppendSymmetric(v, id(r, c+1), 1)
			}
			if r+1 < rows {
				t.AppendSymmetric(v, id(r+1, c), 1)
			}
			if r+1 < rows && c+1 < cols {
				// One diagonal per cell.
				if rng != nil && rng.Intn(2) == 0 {
					t.AppendSymmetric(id(r, c+1), id(r+1, c), 1)
				} else {
					t.AppendSymmetric(v, id(r+1, c+1), 1)
				}
			}
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}

// RGG builds a random geometric graph: n points uniform in the unit
// square, connected when within the given radius — the model behind
// rgg_n_2_24_s0 in Table IV. Neighbor search uses a uniform grid of
// radius-sized cells, so generation is O(n + edges) in expectation. The
// connectivity threshold is radius ≈ sqrt(ln n / (π n)); the paper's
// rgg has average degree ~10 and pseudo-diameter in the thousands.
func RGG(n sparse.Index, radius float64, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	grid := make([][]sparse.Index, cells*cells)
	for i := sparse.Index(0); i < n; i++ {
		c := cellOf(ys[i])*cells + cellOf(xs[i])
		grid[c] = append(grid[c], i)
	}
	t := sparse.NewTriples(n, n, int(n)*8)
	r2 := radius * radius
	for i := sparse.Index(0); i < n; i++ {
		cx, cy := cellOf(xs[i]), cellOf(ys[i])
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= cells || ny < 0 || ny >= cells {
					continue
				}
				for _, j := range grid[ny*cells+nx] {
					if j <= i {
						continue // handle each unordered pair once
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						t.AppendSymmetric(i, j, 1)
					}
				}
			}
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}
