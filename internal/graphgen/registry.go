package graphgen

import (
	"math"

	"spmspv/internal/sparse"
)

// Class mirrors the two matrix classes of the paper's Table IV.
type Class int

const (
	// LowDiameter marks scale-free graphs whose BFS saturates within a
	// few levels.
	LowDiameter Class = iota
	// HighDiameter marks meshes, circuits and geometric graphs whose
	// BFS runs hundreds to thousands of levels with sparse frontiers.
	HighDiameter
)

func (c Class) String() string {
	if c == LowDiameter {
		return "low-diameter"
	}
	return "high-diameter"
}

// Problem is one Table IV stand-in: a named, deterministic generator
// whose size is controlled by scale ≈ log2(vertex count), so the same
// suite runs at laptop scale for tests and larger for benchmarks.
type Problem struct {
	// Name of the synthetic stand-in.
	Name string
	// PaperName is the University of Florida matrix it stands in for.
	PaperName string
	// Class is the diameter regime.
	Class Class
	// Description explains the correspondence.
	Description string
	// Build generates the adjacency matrix at the given scale.
	Build func(scale int) *sparse.CSC
}

// Problems returns the Table IV stand-in registry, in the paper's
// order. Scale-free graphs use R-MAT with edge factors matched to the
// original's average degree; mesh/geometric graphs match stencil and
// aspect ratio so the pseudo-diameter falls in the intended regime.
func Problems() []Problem {
	square := func(scale int) (rows, cols int) {
		side := 1 << (scale / 2)
		if scale%2 == 1 {
			return side * 2, side
		}
		return side, side
	}
	elongated := func(scale, aspect int) (rows, cols int) {
		n := 1 << scale
		cols = int(math.Sqrt(float64(n / aspect)))
		if cols < 2 {
			cols = 2
		}
		return n / cols, cols
	}
	rmat := func(scale, ef int, seed int64) *sparse.CSC {
		cfg := DefaultRMAT(scale)
		cfg.EdgeFactor = ef
		return RMAT(cfg, seed)
	}
	return []Problem{
		{
			Name: "rmat-amazon", PaperName: "amazon0312", Class: LowDiameter,
			Description: "R-MAT ef=8: product co-purchasing network (d≈8, pseudo-diameter ~21)",
			Build:       func(s int) *sparse.CSC { return rmat(s, 8, 101) },
		},
		{
			Name: "rmat-webgoogle", PaperName: "web-Google", Class: LowDiameter,
			Description: "R-MAT ef=6: web graph (d≈5.6, pseudo-diameter ~16)",
			Build:       func(s int) *sparse.CSC { return rmat(s, 6, 102) },
		},
		{
			Name: "rmat-wikipedia", PaperName: "wikipedia-20070206", Class: LowDiameter,
			Description: "R-MAT ef=13: page-link graph (d≈12.6, pseudo-diameter ~14)",
			Build:       func(s int) *sparse.CSC { return rmat(s, 13, 103) },
		},
		{
			Name: "rmat-ljournal", PaperName: "ljournal-2008", Class: LowDiameter,
			Description: "R-MAT ef=15: social network (d≈14.7, pseudo-diameter ~34)",
			Build:       func(s int) *sparse.CSC { return rmat(s, 15, 104) },
		},
		{
			Name: "rmat-wbedu", PaperName: "wb-edu", Class: LowDiameter,
			Description: "R-MAT ef=6: .edu web crawl (d≈5.8, pseudo-diameter ~38)",
			Build:       func(s int) *sparse.CSC { return rmat(s, 6, 105) },
		},
		{
			Name: "mesh9-dielfilter", PaperName: "dielFilterV3real", Class: HighDiameter,
			Description: "9-point mesh: high-order FEM discretization (heavy rows, pseudo-diameter ~84)",
			Build: func(s int) *sparse.CSC {
				r, c := square(s)
				return Grid2D9(r, c)
			},
		},
		{
			Name: "grid5-g3circuit", PaperName: "G3_circuit", Class: HighDiameter,
			Description: "5-point grid: circuit simulation (d≈4.9, pseudo-diameter ~514)",
			Build: func(s int) *sparse.CSC {
				r, c := square(s)
				return Grid2D(r, c)
			},
		},
		{
			Name: "trimesh-hugetric", PaperName: "hugetric-00020", Class: HighDiameter,
			Description: "triangular mesh, 4:1 aspect (d≈6, pseudo-diameter ~3662)",
			Build: func(s int) *sparse.CSC {
				r, c := elongated(s, 4)
				return TriangularMesh(r, c, 0)
			},
		},
		{
			Name: "trimesh-hugetrace", PaperName: "hugetrace-00020", Class: HighDiameter,
			Description: "triangular mesh, 16:1 aspect (d≈6, pseudo-diameter ~5633)",
			Build: func(s int) *sparse.CSC {
				r, c := elongated(s, 16)
				return TriangularMesh(r, c, 0)
			},
		},
		{
			Name: "trimesh-delaunay", PaperName: "delaunay_n24", Class: HighDiameter,
			Description: "jittered triangulation of random points (d≈6, pseudo-diameter ~1718)",
			Build: func(s int) *sparse.CSC {
				r, c := square(s)
				return TriangularMesh(r, c, 106)
			},
		},
		{
			Name: "rgg", PaperName: "rgg_n_2_24_s0", Class: HighDiameter,
			Description: "random geometric graph at connectivity radius (d≈10, pseudo-diameter ~3069)",
			Build: func(s int) *sparse.CSC {
				n := sparse.Index(1) << s
				radius := math.Sqrt(2.2 * math.Log(float64(n)) / (math.Pi * float64(n)))
				return RGG(n, radius, 107)
			},
		},
	}
}

// FindProblem returns the registry entry with the given stand-in name.
func FindProblem(name string) (Problem, bool) {
	for _, p := range Problems() {
		if p.Name == name {
			return p, true
		}
	}
	return Problem{}, false
}
