// Package graphgen generates the synthetic graph matrices used as
// stand-ins for the paper's Table IV test problems.
//
// The paper distinguishes two matrix classes because they stress
// SpMSpV differently:
//
//   - low-diameter scale-free graphs (amazon0312, web-Google,
//     wikipedia, ljournal-2008, wb-edu): BFS reaches dense frontiers in
//     a handful of steps, so matrix-driven algorithms get to amortize
//     their O(nzc) scans;
//   - high-diameter graphs (dielFilterV3real, G3_circuit, hugetric,
//     hugetrace, delaunay_n24, rgg_n_2_24_s0): BFS runs thousands of
//     levels with tiny frontiers, the regime where only vector-driven,
//     partially-initializing algorithms stay fast.
//
// The generators here are deterministic (caller-supplied seed) and
// reproduce the relevant structural features: degree distribution
// (power-law via R-MAT vs near-uniform via meshes), average degree, and
// diameter regime. Real Matrix Market files can be substituted through
// sparse.ReadMatrixMarket wherever a generated matrix is used.
package graphgen

import (
	"math"
	"math/rand"

	"spmspv/internal/sparse"
)

// ErdosRenyi samples the adjacency matrix of a directed G(n, d/n)
// random graph: every column receives Binomial(n, d/n) ≈ Poisson(d)
// entries with uniformly random rows — the model the paper uses for its
// complexity analysis (§II-A). Duplicate (row, col) pairs are summed by
// the CSC builder; self-loops are allowed, values are 1.
func ErdosRenyi(n sparse.Index, d float64, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	t := sparse.NewTriples(n, n, int(float64(n)*d))
	for j := sparse.Index(0); j < n; j++ {
		k := poisson(rng, d)
		for e := 0; e < k; e++ {
			t.Append(sparse.Index(rng.Intn(int(n))), j, 1)
		}
	}
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}

// poisson samples Poisson(lambda) by inversion for small lambda and a
// normal approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
	if k < 0 {
		k = 0
	}
	return k
}

// RMATConfig parameterizes the recursive matrix generator.
type RMATConfig struct {
	// Scale is log2 of the vertex count.
	Scale int
	// EdgeFactor is the number of (pre-deduplication) edges per vertex;
	// Graph500 uses 16.
	EdgeFactor int
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C).
	// Graph500 uses 0.57, 0.19, 0.19.
	A, B, C float64
	// Symmetric mirrors every edge, producing an undirected graph.
	Symmetric bool
	// DropSelfLoops removes i==j edges.
	DropSelfLoops bool
}

// DefaultRMAT returns the Graph500 parameterization at the given scale:
// a low-diameter scale-free graph comparable to the paper's social/web
// networks.
func DefaultRMAT(scale int) RMATConfig {
	return RMATConfig{Scale: scale, EdgeFactor: 16, A: 0.57, B: 0.19, C: 0.19,
		Symmetric: true, DropSelfLoops: true}
}

// RMAT generates a scale-free graph with the recursive R-MAT process.
// Duplicate edges are summed into a single unit-weight edge by keeping
// the value at 1 (BFS-style semantics); the matrix is returned in CSC
// form with sorted columns.
func RMAT(cfg RMATConfig, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	n := sparse.Index(1) << cfg.Scale
	edges := int(n) * cfg.EdgeFactor
	capHint := edges
	if cfg.Symmetric {
		capHint *= 2
	}
	t := sparse.NewTriples(n, n, capHint)
	for e := 0; e < edges; e++ {
		var i, j sparse.Index
		for bit := cfg.Scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// upper-left quadrant: no bits set
			case r < cfg.A+cfg.B:
				j |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				i |= 1 << bit
			default:
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		if cfg.DropSelfLoops && i == j {
			continue
		}
		if cfg.Symmetric {
			t.AppendSymmetric(i, j, 1)
		} else {
			t.Append(i, j, 1)
		}
	}
	clampValues(t, 1)
	a, err := sparse.NewCSCFromTriples(t)
	if err != nil {
		panic("graphgen: internal bounds error: " + err.Error())
	}
	return a
}

// clampValues sets every triple's value to v so that duplicate summation
// in the CSC builder yields unit weights. It relies on SumDuplicates
// with a "keep" combiner.
func clampValues(t *sparse.Triples, v float64) {
	t.SumDuplicates(func(a, b float64) float64 { return v })
	for k := range t.Val {
		t.Val[k] = v
	}
}
