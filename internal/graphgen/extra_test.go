package graphgen

import (
	"math/rand"
	"testing"

	"spmspv/internal/sparse"
)

func TestRMATAsymmetric(t *testing.T) {
	cfg := DefaultRMAT(10)
	cfg.Symmetric = false
	cfg.DropSelfLoops = false
	a := RMAT(cfg, 9)
	if a.Equal(a.Transpose()) {
		t.Error("asymmetric R-MAT should (almost surely) not be symmetric")
	}
}

func TestRMATSkewParameters(t *testing.T) {
	// Heavier A-quadrant weight concentrates edges near vertex 0.
	skewed := RMATConfig{Scale: 10, EdgeFactor: 8, A: 0.7, B: 0.1, C: 0.1,
		Symmetric: true, DropSelfLoops: true}
	a := RMAT(skewed, 4)
	s := sparse.ComputeStats("skew", a, 0)
	uniform := RMATConfig{Scale: 10, EdgeFactor: 8, A: 0.25, B: 0.25, C: 0.25,
		Symmetric: true, DropSelfLoops: true}
	b := RMAT(uniform, 4)
	sb := sparse.ComputeStats("uniform", b, 0)
	if s.MaxDegree <= sb.MaxDegree {
		t.Errorf("skewed max degree %d not above uniform %d", s.MaxDegree, sb.MaxDegree)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, lambda := range []float64{0.5, 4, 50, 200} { // small and normal-approx branches
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / trials
		if mean < 0.9*lambda || mean > 1.1*lambda {
			t.Errorf("poisson(%g) mean %.2f out of 10%% band", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("nonpositive lambda should give 0")
	}
}

func TestGridDims(t *testing.T) {
	a := Grid2D(3, 5)
	if a.NumCols != 15 {
		t.Errorf("3x5 grid has %d vertices", a.NumCols)
	}
	// Corner vertex (0,0) has degree 2; center vertex has degree 4.
	if a.ColLen(0) != 2 {
		t.Errorf("corner degree %d", a.ColLen(0))
	}
	if a.ColLen(7) != 4 { // (1,2) interior
		t.Errorf("interior degree %d", a.ColLen(7))
	}
}

func TestRGGGridCellsEdgeCases(t *testing.T) {
	// A radius larger than the square collapses to one cell and a
	// complete-ish graph; must not panic and must stay symmetric.
	a := RGG(64, 1.5, 3)
	if !a.Equal(a.Transpose()) {
		t.Error("huge-radius rgg not symmetric")
	}
	if a.NNZ() != int64(64*63) {
		t.Errorf("radius > diagonal should give a complete graph, nnz=%d", a.NNZ())
	}
	// Tiny graph.
	b := RGG(1, 0.1, 4)
	if b.NNZ() != 0 {
		t.Error("single-vertex rgg should have no edges")
	}
}

func TestTriangularMeshDeterminism(t *testing.T) {
	a := TriangularMesh(12, 9, 42)
	b := TriangularMesh(12, 9, 42)
	if !a.Equal(b) {
		t.Error("same jitter seed should reproduce the mesh")
	}
}

func TestProblemsDeterministicAcrossCalls(t *testing.T) {
	for _, p := range Problems()[:3] {
		a := p.Build(9)
		b := p.Build(9)
		if !a.Equal(b) {
			t.Errorf("%s: Build is not deterministic", p.Name)
		}
	}
}
