// Package dataflow is the server-side dataflow IR and interpreter
// behind spmspv's wire programs: a compiled, reference-resolved form of
// the multi-op program grammar (input/mult/indices/union plus the
// scalar ops scale/axpy/ewise_mult/reduce/prune and a bounded loop
// construct), executed against a backend-supplied multiply hook.
//
// The package deliberately knows nothing about matrices or transports:
// a multiply is an opaque MultFunc the caller binds (the in-process
// Store runs its engine; the sharded coordinator scatters the op across
// its shards), and everything else — elementwise vector algebra, scalar
// registers, loop-carried values, exit conditions — executes here, once,
// identically for every backend. This is the CombBLAS leap from "remote
// multiply" to "remote graph-algorithm service": a small algebraic op
// set plus control flow hosts a whole family of graph algorithms
// (BFS, PageRank, k-step walks) as constant-size programs.
//
// Programs arrive here COMPILED: references are resolved to integers,
// op kinds to enum tags, semirings to function values, and every
// structural property (ref scoping and typing, loop bounds, nesting
// depth) has been checked — so Exec performs no per-run validation
// beyond what depends on runtime values (dimension agreement, unbound
// parameters). The spmspv package owns the wire grammar and the
// lowering; the compilation counter here is the cache-effectiveness
// probe pinning that stored procedures compile once, not per invoke.
package dataflow

import (
	"fmt"
	"math"
	"sync/atomic"

	"spmspv/internal/engine"
	"spmspv/internal/sparse"
)

// Kind tags one instruction's operation.
type Kind uint8

const (
	// KInput introduces a vector: a compiled-in literal or an
	// invoke-time argument named by Param.
	KInput Kind = iota
	// KMult is one multiply y ← ⟨op(A)·x, mask⟩, executed by the
	// backend's MultFunc.
	KMult
	// KIndices maps y(i) = i over the input's support.
	KIndices
	// KUnion is the elementwise union (collisions add).
	KUnion
	// KScale is y ← α·x.
	KScale
	// KAxpy is y ← α·x + z (union of the scaled x with z).
	KAxpy
	// KEwiseMult is the elementwise intersection combined with the
	// semiring's multiply (arithmetic × when unset).
	KEwiseMult
	// KReduce folds a vector to a scalar register (sum, max or nnz).
	KReduce
	// KPrune keeps the entries with |value| > α — the convergence
	// filter of data-driven iterations.
	KPrune
	// KLoop runs Body up to MaxIters times with loop-carried values,
	// exiting early on UntilEmpty/UntilBelow.
	KLoop
)

// ReduceOp selects a KReduce folding operation.
type ReduceOp uint8

const (
	// ReduceSum folds with +, from 0.
	ReduceSum ReduceOp = iota
	// ReduceMax folds with max over the stored values, from -Inf.
	ReduceMax
	// ReduceNNZ counts stored entries.
	ReduceNNZ
)

// Execution limits. These bound what a hostile wire program can make
// the interpreter do before any allocation happens: the compiler (in
// package spmspv) rejects programs exceeding them, and Exec re-checks
// the run-time accumulations (total iterations, emitted results).
const (
	// MaxLoopIters bounds one loop's max_iters — generous enough for a
	// full BFS of a 10^6-vertex path graph, small enough that a hostile
	// bound cannot spin a handler forever.
	MaxLoopIters = 1 << 20
	// MaxLoopDepth bounds loop nesting.
	MaxLoopDepth = 4
	// MaxEmits bounds the total emitted results of one execution
	// (per-iteration emits inside a loop multiply fast).
	MaxEmits = 1 << 20
)

// RefNone marks an unset reference slot.
const RefNone = -1

// CarryRef encodes a reference to loop-carry slot i of the innermost
// enclosing loop. Non-negative references name an earlier instruction
// of the same scope.
func CarryRef(i int) int { return -(i + 2) }

// IsCarryRef reports whether r is a carry reference, and which slot.
func IsCarryRef(r int) (int, bool) {
	if r <= -2 {
		return -r - 2, true
	}
	return 0, false
}

// Instr is one compiled instruction. Reference fields hold instruction
// indices of the same scope (≥ 0), CarryRef encodings, or RefNone.
type Instr struct {
	Kind   Kind
	Matrix string // KMult: overrides the program default when nonempty

	X     *sparse.SpVec // KInput: literal vector
	Param string        // KInput: invoke-time argument name (X nil)

	XRef    int
	YRef    int
	MaskRef int
	Desc    engine.Desc

	// Alpha is the scalar parameter of KScale/KAxpy/KPrune; AlphaRef
	// (a scalar-typed reference) or AlphaParam (an invoke-time scalar
	// binding) override it when set.
	Alpha      float64
	AlphaRef   int
	AlphaParam string

	Mul    func(a, b float64) float64 // KEwiseMult combiner (nil = ×)
	Reduce ReduceOp

	Emit bool

	// Loop fields (KLoop). Carry refs resolve in the ENCLOSING scope
	// and initialize the carry slots; Update refs resolve in the body
	// scope and rebind the carries after each iteration; the exits
	// resolve in the body scope. The loop's own value is carry slot 0
	// after the final iteration.
	Body       []Instr
	MaxIters   int
	Carry      []int
	Update     []int
	UntilEmpty int // body ref (vector): exit when empty
	UntilBelow int // body ref (scalar): exit when < Threshold
	Threshold  float64
}

// Program is a compiled program: the default matrix, the top-level
// instruction list, and the legacy StopOnEmpty behavior (stop after a
// top-level mult producing an empty vector).
type Program struct {
	Matrix      string
	Ops         []Instr
	StopOnEmpty bool
}

// Value is one register: a frontier-backed vector or a scalar.
type Value struct {
	F        *sparse.Frontier
	S        float64
	IsScalar bool
}

// MultFunc executes instruction op's multiply against the named matrix
// with the resolved input frontier and descriptor, returning the output
// frontier. It is the single backend-specific step of execution.
type MultFunc func(op int, matrix string, x *sparse.Frontier, d engine.Desc) (*sparse.Frontier, error)

// Env is one execution's bindings: invoke-time vector arguments and
// scalar bindings (both may be nil), the backend multiply, and an
// optional matrix override replacing the program's default.
type Env struct {
	Args    map[string]*sparse.SpVec
	Scalars map[string]float64
	Matrix  string
	Mult    MultFunc
}

// Emit is one emitted result: the top-level op index, the body-op index
// and 1-based iteration for loop-body emissions (BodyOp -1, Iter 0 for
// top-level ops), and the value.
type Emit struct {
	Op     int
	BodyOp int
	Iter   int
	V      Value
}

// Result is one execution's outcome.
type Result struct {
	// Steps is how many top-level ops executed (smaller than len(Ops)
	// when StopOnEmpty fired).
	Steps int
	// Emits are the emitted results in chronological order.
	Emits []Emit
}

// compilations counts program compilations process-wide — the
// stored-procedure analogue of engine.PlanCompilations, pinning in
// tests that warm invoke-by-name traffic recompiles nothing.
var compilations atomic.Int64

// CountCompilation records one program compilation (called by the
// lowering in package spmspv).
func CountCompilation() { compilations.Add(1) }

// Compilations reports the process-wide program compilation count.
func Compilations() int64 { return compilations.Load() }

// exec carries one execution's shared state across scopes.
type exec struct {
	p     *Program
	env   Env
	emits []Emit
}

// scope is one lexical frame: the values of the instructions executed
// so far in this frame, plus the enclosing loop's carries (nil at top
// level).
type scope struct {
	outs    []Value
	carries []Value
}

func (s *scope) resolve(r int) Value {
	if i, ok := IsCarryRef(r); ok {
		return s.carries[i]
	}
	return s.outs[r]
}

// Exec runs the program. Structural errors cannot occur here (the
// compiler rejected them); runtime errors — dimension disagreement,
// unbound parameters, a failing multiply — abort execution.
func (p *Program) Exec(env Env) (*Result, error) {
	if env.Mult == nil {
		return nil, fmt.Errorf("dataflow: Exec without a multiply hook")
	}
	e := &exec{p: p, env: env}
	sc := &scope{outs: make([]Value, len(p.Ops))}
	steps := len(p.Ops)
	for k := range p.Ops {
		in := &p.Ops[k]
		v, err := e.run(k, in, sc, k, -1, 0)
		if err != nil {
			return nil, err
		}
		sc.outs[k] = v
		if p.StopOnEmpty && in.Kind == KMult && v.F.NNZ() == 0 {
			steps = k + 1
			break
		}
	}
	res := &Result{Steps: steps, Emits: e.emits}
	return res, nil
}

// emit records one emitted value, enforcing the global cap.
func (e *exec) emit(op, bodyOp, iter int, v Value) error {
	if len(e.emits) >= MaxEmits {
		return fmt.Errorf("dataflow: more than %d emitted results", MaxEmits)
	}
	e.emits = append(e.emits, Emit{Op: op, BodyOp: bodyOp, Iter: iter, V: v})
	return nil
}

// run executes one instruction in sc. topOp is the enclosing top-level
// op index (for MultFunc attribution and emits); bodyOp/iter locate the
// instruction when inside a loop body (-1/0 at top level).
func (e *exec) run(k int, in *Instr, sc *scope, topOp, bodyOp, iter int) (Value, error) {
	var v Value
	switch in.Kind {
	case KInput:
		x := in.X
		if x == nil {
			bound, ok := e.env.Args[in.Param]
			if !ok || bound == nil {
				return v, fmt.Errorf("op %d: input parameter %q is not bound", topOp, in.Param)
			}
			if err := bound.Validate(); err != nil {
				return v, fmt.Errorf("op %d: argument %q: %v", topOp, in.Param, err)
			}
			x = bound
		}
		v = Value{F: sparse.NewFrontier(x)}

	case KMult:
		name := in.Matrix
		if name == "" {
			name = e.env.Matrix
		}
		if name == "" {
			name = e.p.Matrix
		}
		d := in.Desc
		var xf *sparse.Frontier
		if in.XRef != RefNone {
			xf = sc.resolve(in.XRef).F
		} else {
			xf = sparse.NewFrontier(in.X)
		}
		if in.MaskRef != RefNone {
			d.Mask = sc.resolve(in.MaskRef).F.Bits()
		}
		yf, err := e.env.Mult(topOp, name, xf, d)
		if err != nil {
			return v, err
		}
		v = Value{F: yf}

	case KIndices:
		src := sc.resolve(in.XRef).F.List()
		y := sparse.NewSpVec(src.N, src.NNZ())
		for _, i := range src.Ind {
			y.Append(i, float64(i))
		}
		y.Sorted = src.Sorted
		v = Value{F: sparse.NewFrontier(y)}

	case KUnion:
		ax := sc.resolve(in.XRef).F.List()
		ay := sc.resolve(in.YRef).F.List()
		if ax.N != ay.N {
			return v, fmt.Errorf("op %d: union of dimensions %d and %d", topOp, ax.N, ay.N)
		}
		v = Value{F: sparse.NewFrontier(sparse.EwiseAdd(ax, ay, nil))}

	case KScale:
		alpha, err := e.alpha(in, sc, topOp)
		if err != nil {
			return v, err
		}
		// Scale mutates in place; the source register may be read again,
		// so scale a clone.
		v = Value{F: sparse.NewFrontier(sparse.Scale(sc.resolve(in.XRef).F.List().Clone(), alpha))}

	case KAxpy:
		alpha, err := e.alpha(in, sc, topOp)
		if err != nil {
			return v, err
		}
		ax := sc.resolve(in.XRef).F.List()
		az := sc.resolve(in.YRef).F.List()
		if ax.N != az.N {
			return v, fmt.Errorf("op %d: axpy of dimensions %d and %d", topOp, ax.N, az.N)
		}
		v = Value{F: sparse.NewFrontier(sparse.EwiseAdd(sparse.Scale(ax.Clone(), alpha), az, nil))}

	case KEwiseMult:
		ax := sc.resolve(in.XRef).F.List()
		ay := sc.resolve(in.YRef).F.List()
		if ax.N != ay.N {
			return v, fmt.Errorf("op %d: ewise_mult of dimensions %d and %d", topOp, ax.N, ay.N)
		}
		v = Value{F: sparse.NewFrontier(sparse.EwiseMult(ax, ay, in.Mul))}

	case KReduce:
		src := sc.resolve(in.XRef).F.List()
		var s float64
		switch in.Reduce {
		case ReduceSum:
			s = sparse.Reduce(src, 0, func(acc, val float64) float64 { return acc + val })
		case ReduceMax:
			s = sparse.Reduce(src, math.Inf(-1), math.Max)
		case ReduceNNZ:
			s = float64(src.NNZ())
		}
		v = Value{S: s, IsScalar: true}

	case KPrune:
		alpha, err := e.alpha(in, sc, topOp)
		if err != nil {
			return v, err
		}
		src := sc.resolve(in.XRef).F.List()
		v = Value{F: sparse.NewFrontier(sparse.Filter(src, func(_ sparse.Index, val float64) bool {
			return math.Abs(val) > alpha
		}))}

	case KLoop:
		return e.runLoop(k, in, sc, topOp)

	default:
		return v, fmt.Errorf("op %d: unknown instruction kind %d", topOp, in.Kind)
	}

	if in.Emit {
		if err := e.emit(topOp, bodyOp, iter, v); err != nil {
			return v, err
		}
	}
	return v, nil
}

// runLoop executes one KLoop: carries are initialized from the
// enclosing scope, each iteration runs the body in a fresh frame and
// rebinds the carries from the Update refs, and the exits are checked
// after the body — every loop runs at least once.
func (e *exec) runLoop(k int, in *Instr, sc *scope, topOp int) (Value, error) {
	carries := make([]Value, len(in.Carry))
	for i, r := range in.Carry {
		carries[i] = sc.resolve(r)
	}
	body := &scope{outs: make([]Value, len(in.Body)), carries: carries}
	for iter := 1; ; iter++ {
		for j := range body.outs {
			body.outs[j] = Value{}
		}
		for j := range in.Body {
			bv, err := e.run(j, &in.Body[j], body, topOp, j, iter)
			if err != nil {
				return Value{}, err
			}
			body.outs[j] = bv
		}
		next := make([]Value, len(in.Update))
		for i, r := range in.Update {
			next[i] = body.resolve(r)
		}
		done := iter >= in.MaxIters
		if in.UntilEmpty != RefNone && body.resolve(in.UntilEmpty).F.NNZ() == 0 {
			done = true
		}
		if in.UntilBelow != RefNone && body.resolve(in.UntilBelow).S < in.Threshold {
			done = true
		}
		body.carries = next
		if done {
			break
		}
	}
	v := body.carries[0]
	if in.Emit {
		if err := e.emit(topOp, -1, 0, v); err != nil {
			return v, err
		}
	}
	return v, nil
}

// alpha resolves an instruction's scalar parameter: a scalar register
// reference, an invoke-time binding, or the compiled-in literal.
func (e *exec) alpha(in *Instr, sc *scope, topOp int) (float64, error) {
	if in.AlphaRef != RefNone {
		return sc.resolve(in.AlphaRef).S, nil
	}
	if in.AlphaParam != "" {
		s, ok := e.env.Scalars[in.AlphaParam]
		if !ok {
			return 0, fmt.Errorf("op %d: scalar parameter %q is not bound", topOp, in.AlphaParam)
		}
		return s, nil
	}
	return in.Alpha, nil
}
