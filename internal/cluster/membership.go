// Package cluster is the health-checked membership layer the sharded
// serving coordinator stands on: it tracks a fixed set of members (the
// shard replica backends), drives each through the alive → suspect →
// dead state machine from periodic health probes and request-path
// feedback, and publishes epoch-versioned views so an in-flight
// scatter reads one consistent snapshot of the fleet.
//
// The package is deliberately transport-free. Members are plain
// indices; the owner supplies a Prober that knows how to reach member
// i (an HTTP GET /v1/health for remote workers, a no-op for in-process
// stores), and reads back View/Info. That keeps the state machine unit
// testable with a fake clock and no sockets, and keeps the dependency
// arrow pointing from the serving layer down into cluster, never back.
//
// State machine:
//
//	         failure ×SuspectAfter          failure ×DeadAfter
//	ALIVE ───────────────────────► SUSPECT ───────────────────► DEAD
//	  ▲                               │                           │
//	  └───────────── success ─────────┴───────────────────────────┘
//
// Failures are consecutive: any success resets the count and returns
// the member to ALIVE (bumping the epoch if the state changed). Both
// probe results and request-path outcomes feed the same counters, so a
// coordinator with no active prober (in-process shards, tests) still
// health-flags members from the traffic it serves.
package cluster

import (
	"context"
	"sync"
	"time"
)

// State is one member's health classification.
type State int32

const (
	// Alive: the member's last probe or serving call succeeded.
	Alive State = iota
	// Suspect: at least SuspectAfter consecutive failures. Suspect
	// members are deprioritized for reads but still reachable — a
	// single dropped connection must not eject a healthy worker.
	Suspect
	// Dead: at least DeadAfter consecutive failures. Dead members are
	// ordered last; they are only tried when every healthier replica
	// of a group has already failed.
	Dead
)

// String reports the state in the lowercase form the /v1/shards
// endpoint serves.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// Prober checks member i's health; nil means healthy. The Membership
// calls it under the configured per-probe timeout.
type Prober func(ctx context.Context, member int) error

// Config parameterizes a Membership.
type Config struct {
	// Interval is the period of the background probe loop started by
	// Start. Zero (the default) means passive membership: no probe
	// goroutine, the state machine driven by request-path feedback and
	// explicit ProbeAll calls only.
	Interval time.Duration
	// Timeout bounds each probe (default 2s).
	Timeout time.Duration
	// SuspectAfter is how many consecutive failures flag a member
	// suspect (default 1).
	SuspectAfter int
	// DeadAfter is how many consecutive failures flag a member dead
	// (default 3). Values ≤ SuspectAfter collapse the suspect state.
	DeadAfter int
	// Now is the clock (default time.Now) — injectable so the state
	// machine's transition timestamps are testable without sleeping.
	Now func() time.Time
}

func (c *Config) fill() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.DeadAfter < c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// memberCell is one member's guarded state.
type memberCell struct {
	state    State
	fails    int   // consecutive failures
	failures int64 // total failures ever (probe + request feedback)
	since    time.Time
}

// Membership tracks the health of a fixed set of members. All methods
// are safe for concurrent use.
type Membership struct {
	cfg   Config
	probe Prober

	mu      sync.Mutex
	epoch   uint64
	members []memberCell

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns a membership over n members, all initially Alive at
// epoch 0. probe may be nil when only request-path feedback drives the
// state machine.
func New(n int, probe Prober, cfg Config) *Membership {
	cfg.fill()
	m := &Membership{
		cfg:     cfg,
		probe:   probe,
		members: make([]memberCell, n),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	now := cfg.Now()
	for i := range m.members {
		m.members[i].since = now
	}
	return m
}

// Len reports the member count.
func (m *Membership) Len() int { return len(m.members) }

// View is a consistent snapshot of every member's state: the epoch
// and the states were read under one lock, so a scatter holding a View
// routes all of its shard calls against the same version of the fleet.
type View struct {
	Epoch  uint64
	States []State
}

// Alive reports whether member i is alive in this view.
func (v View) Alive(i int) bool { return v.States[i] == Alive }

// View snapshots the membership. The epoch increments on every state
// transition, so two equal epochs guarantee identical states.
func (m *Membership) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	states := make([]State, len(m.members))
	for i := range m.members {
		states[i] = m.members[i].state
	}
	return View{Epoch: m.epoch, States: states}
}

// Epoch reads the current view version without copying states.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Info is one member's reportable state.
type Info struct {
	State State
	// Failures is the total failed probes and serving calls ever
	// observed against the member (the probe_failures counter).
	Failures int64
	// Since is when the member entered its current state.
	Since time.Time
}

// Info reads member i's state for reporting.
func (m *Membership) Info(i int) Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.members[i]
	return Info{State: c.state, Failures: c.failures, Since: c.since}
}

// ReportSuccess records a successful probe or serving call against
// member i: the failure streak resets and the member returns to Alive.
func (m *Membership) ReportSuccess(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.members[i]
	c.fails = 0
	m.transition(c, Alive)
}

// ReportFailure records a failed probe or serving call against member
// i, advancing it toward Suspect and Dead per the configured
// thresholds.
func (m *Membership) ReportFailure(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.members[i]
	c.fails++
	c.failures++
	switch {
	case c.fails >= m.cfg.DeadAfter:
		m.transition(c, Dead)
	case c.fails >= m.cfg.SuspectAfter:
		m.transition(c, Suspect)
	}
}

// transition moves c to state, bumping the epoch when the state
// actually changes. Callers hold m.mu.
func (m *Membership) transition(c *memberCell, state State) {
	if c.state == state {
		return
	}
	c.state = state
	c.since = m.cfg.Now()
	m.epoch++
}

// ProbeAll runs one synchronous probe round: every member probed in
// parallel under the configured timeout, results fed to the state
// machine. No-op without a prober. Probes are I/O-bound waits on
// remote health endpoints, so plain goroutines — not the compute
// executor — carry them.
func (m *Membership) ProbeAll(ctx context.Context) {
	if m.probe == nil {
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < len(m.members); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.Timeout)
			defer cancel()
			if err := m.probe(pctx, i); err != nil {
				m.ReportFailure(i)
			} else {
				m.ReportSuccess(i)
			}
		}(i)
	}
	wg.Wait()
}

// Start launches the background probe loop at the configured interval;
// it is a no-op when Interval is zero or no prober was supplied. Stop
// terminates the loop. Both are idempotent.
func (m *Membership) Start() {
	m.startOnce.Do(func() {
		if m.cfg.Interval <= 0 || m.probe == nil {
			close(m.done)
			return
		}
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					m.ProbeAll(context.Background())
				}
			}
		}()
	})
}

// Stop terminates the probe loop started by Start and waits for it to
// exit. Safe to call even if Start never ran.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.startOnce.Do(func() { close(m.done) }) // Start never called: unblock the wait
	<-m.done
}
