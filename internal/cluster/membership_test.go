package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is the injectable clock the state-machine tests drive, so
// transition timestamps are exact rather than sleep-approximate.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func newFake() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

// TestStateMachine walks one member through the full alive → suspect →
// dead → alive cycle, pinning the transition thresholds, the epoch
// bumps, and the fake-clock transition timestamps.
func TestStateMachine(t *testing.T) {
	clk := newFake()
	m := New(2, nil, Config{SuspectAfter: 1, DeadAfter: 3, Now: clk.Now})

	if v := m.View(); v.Epoch != 0 || !v.Alive(0) || !v.Alive(1) {
		t.Fatalf("fresh membership: %+v", v)
	}
	t0 := clk.Now()

	// First failure: alive → suspect, epoch 1.
	clk.Advance(time.Second)
	m.ReportFailure(0)
	if v := m.View(); v.Epoch != 1 || v.States[0] != Suspect || v.States[1] != Alive {
		t.Fatalf("after 1 failure: %+v", v)
	}
	if info := m.Info(0); info.Failures != 1 || !info.Since.Equal(t0.Add(time.Second)) {
		t.Fatalf("suspect info: %+v", info)
	}

	// Second failure: still suspect — no state change, no epoch bump.
	m.ReportFailure(0)
	if v := m.View(); v.Epoch != 1 || v.States[0] != Suspect {
		t.Fatalf("after 2 failures: %+v", v)
	}

	// Third consecutive failure: suspect → dead, epoch 2.
	clk.Advance(time.Second)
	m.ReportFailure(0)
	if v := m.View(); v.Epoch != 2 || v.States[0] != Dead {
		t.Fatalf("after 3 failures: %+v", v)
	}
	if info := m.Info(0); info.Failures != 3 || !info.Since.Equal(t0.Add(2*time.Second)) {
		t.Fatalf("dead info: %+v", info)
	}

	// Recovery: one success returns the member straight to alive and
	// resets the consecutive-failure streak (total failures persist).
	clk.Advance(time.Second)
	m.ReportSuccess(0)
	if v := m.View(); v.Epoch != 3 || v.States[0] != Alive {
		t.Fatalf("after recovery: %+v", v)
	}
	if info := m.Info(0); info.Failures != 3 {
		t.Fatalf("recovered info lost total failures: %+v", info)
	}

	// The streak reset means death needs DeadAfter fresh failures.
	m.ReportFailure(0)
	m.ReportFailure(0)
	if v := m.View(); v.States[0] != Suspect {
		t.Fatalf("streak did not reset: %+v", m.View())
	}
	m.ReportFailure(0)
	if v := m.View(); v.States[0] != Dead {
		t.Fatalf("re-death: %+v", v)
	}

	// Member 1 was untouched throughout.
	if info := m.Info(1); info.State != Alive || info.Failures != 0 || !info.Since.Equal(t0) {
		t.Fatalf("bystander member mutated: %+v", info)
	}
}

// TestSuccessKeepsEpoch pins that redundant reports do not version the
// view: an alive member reporting success must not bump the epoch, so
// warm traffic against a healthy fleet never invalidates snapshots.
func TestSuccessKeepsEpoch(t *testing.T) {
	m := New(3, nil, Config{Now: newFake().Now})
	for i := 0; i < 100; i++ {
		m.ReportSuccess(i % 3)
	}
	if e := m.Epoch(); e != 0 {
		t.Fatalf("epoch %d after success-only traffic, want 0", e)
	}
}

// TestViewConsistency pins the contract scatters rely on: a View is
// one locked snapshot, never a torn read, and equal epochs imply equal
// states even while another goroutine flips members.
func TestViewConsistency(t *testing.T) {
	m := New(4, nil, Config{SuspectAfter: 1, DeadAfter: 2, Now: newFake().Now})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				m.ReportFailure(i % 4)
			} else {
				m.ReportSuccess(i % 4)
			}
		}
	}()
	last := View{}
	for i := 0; i < 2000; i++ {
		v := m.View()
		if v.Epoch == last.Epoch && last.States != nil {
			for k := range v.States {
				if v.States[k] != last.States[k] {
					t.Fatalf("same epoch %d, different states: %v vs %v", v.Epoch, v.States, last.States)
				}
			}
		}
		if v.Epoch < last.Epoch {
			t.Fatalf("epoch went backward: %d then %d", last.Epoch, v.Epoch)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}

// TestProbeAll drives the prober path: failing members decay, healthy
// ones stay, and the per-probe context carries the configured timeout.
func TestProbeAll(t *testing.T) {
	var down atomic.Bool
	probe := func(ctx context.Context, member int) error {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("probe context has no deadline")
		}
		if member == 1 && down.Load() {
			return errors.New("injected")
		}
		return nil
	}
	m := New(3, probe, Config{SuspectAfter: 1, DeadAfter: 2, Now: newFake().Now})

	down.Store(true)
	m.ProbeAll(context.Background())
	if v := m.View(); v.States[1] != Suspect || v.States[0] != Alive || v.States[2] != Alive {
		t.Fatalf("after 1 probe round: %+v", v)
	}
	m.ProbeAll(context.Background())
	if v := m.View(); v.States[1] != Dead {
		t.Fatalf("after 2 probe rounds: %+v", v)
	}
	if info := m.Info(1); info.Failures != 2 {
		t.Fatalf("probe failures: %+v", info)
	}

	down.Store(false)
	m.ProbeAll(context.Background())
	if v := m.View(); v.States[1] != Alive {
		t.Fatalf("after recovery probe: %+v", v)
	}
}

// TestStartStop pins the probe-loop lifecycle: a started loop probes,
// Stop terminates it, and Stop without Start (the passive coordinator,
// every in-process test) does not hang.
func TestStartStop(t *testing.T) {
	var probes atomic.Int64
	probe := func(ctx context.Context, member int) error {
		probes.Add(1)
		return nil
	}
	m := New(2, probe, Config{Interval: time.Millisecond})
	m.Start()
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if probes.Load() < 4 {
		t.Fatalf("probe loop made %d probes in 5s, want >= 4", probes.Load())
	}
	m.Stop()
	n := probes.Load()
	time.Sleep(10 * time.Millisecond)
	if probes.Load() != n {
		t.Fatalf("probe loop still running after Stop")
	}

	passive := New(2, nil, Config{})
	passive.Stop() // must not block
}

// TestGroupOrder pins replica read-preference: alive before suspect
// before dead, stable by position inside each class, every replica
// present exactly once.
func TestGroupOrder(t *testing.T) {
	g := ReplicaGroup{Members: []int{3, 4, 5}}
	v := View{States: []State{Alive, Alive, Alive, Dead, Alive, Suspect}}
	got := g.Order(v)
	want := []int{1, 2, 0} // member 4 alive, 5 suspect, 3 dead
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}

	// All-dead group: still fully tried, original priority preserved.
	v = View{States: []State{Alive, Alive, Alive, Dead, Dead, Dead}}
	got = g.Order(v)
	for i, r := range got {
		if r != i {
			t.Fatalf("all-dead order %v, want [0 1 2]", got)
		}
	}
}

// TestPlacements pins the contiguous and ragged member-id layouts.
func TestPlacements(t *testing.T) {
	gs := Groups(3, 2)
	if len(gs) != 3 || gs[1].Members[0] != 2 || gs[1].Members[1] != 3 || gs[2].Members[1] != 5 {
		t.Fatalf("Groups(3,2) = %+v", gs)
	}
	rg := GroupsOf([]int{2, 1, 3})
	if rg[0].Members[1] != 1 || rg[1].Members[0] != 2 || rg[2].Members[2] != 5 {
		t.Fatalf("GroupsOf = %+v", rg)
	}
}
