package cluster

// ReplicaGroup is the placement of one row band: the member ids of the
// backends holding identical copies of the band's piece, in priority
// order (position 0 is the primary — the replica reads prefer while it
// is alive).
type ReplicaGroup struct {
	Members []int
}

// Groups places bands×r members contiguously: band b's replicas are
// members b·r … b·r+r−1. This is the layout of the flat backend lists
// NewShardedStore and the -shards URL list produce.
func Groups(bands, r int) []ReplicaGroup {
	gs := make([]ReplicaGroup, bands)
	for b := range gs {
		ms := make([]int, r)
		for k := range ms {
			ms[k] = b*r + k
		}
		gs[b] = ReplicaGroup{Members: ms}
	}
	return gs
}

// GroupsOf places ragged groups (per-band replica counts may differ,
// as the explicit "a|b,c" CLI form allows), assigning member ids
// sequentially in group order.
func GroupsOf(sizes []int) []ReplicaGroup {
	gs := make([]ReplicaGroup, len(sizes))
	id := 0
	for b, n := range sizes {
		ms := make([]int, n)
		for k := range ms {
			ms[k] = id
			id++
		}
		gs[b] = ReplicaGroup{Members: ms}
	}
	return gs
}

// Order returns the group's replica positions in read-preference order
// under the view: alive replicas first, then suspect, then dead —
// stable by position within each class, so the primary keeps priority
// among equals. Every replica appears exactly once: a fully-dead group
// is still tried (last-resort), it just cannot win over a living one.
func (g ReplicaGroup) Order(v View) []int {
	order := make([]int, 0, len(g.Members))
	for _, class := range [...]State{Alive, Suspect, Dead} {
		for pos, id := range g.Members {
			if v.States[id] == class {
				order = append(order, pos)
			}
		}
	}
	return order
}
