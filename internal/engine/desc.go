package engine

import (
	"encoding/json"
	"fmt"

	"spmspv/internal/sparse"
)

// OutputMode is the output-representation request of a Desc: which
// representations of the result frontier a Mult call asks the engine to
// leave behind.
type OutputMode int

const (
	// OutputAuto (the default) asks for the richest representation the
	// engine emits natively: output-capable engines (bucket, GraphMat,
	// hybrid) populate list and bitmap in one pass, list-only engines
	// leave the bitmap lazy.
	OutputAuto OutputMode = iota
	// OutputList asks for the list only, even from a bitmap-capable
	// engine. Pipelines whose next step shrinks the output's support
	// (BFS's unvisited refine, components' improved-label filter) use
	// this — a natively emitted bitmap would be erased before any
	// consumer could read it.
	OutputList
	// OutputBitmap guarantees the bitmap is materialized on return:
	// natively when the engine can, otherwise by a counted list→bitmap
	// conversion. Consumers that immediately probe the bitmap (a
	// matrix-driven next hop) use this with list-only engines.
	OutputBitmap
)

// String names the mode as it appears on the wire.
func (o OutputMode) String() string {
	switch o {
	case OutputList:
		return "list"
	case OutputBitmap:
		return "bitmap"
	default:
		return "auto"
	}
}

// MarshalJSON encodes the mode as its wire name ("auto" is omitted by
// Desc's omitempty because OutputAuto is the zero value; it still
// round-trips as "auto" when written explicitly).
func (o OutputMode) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// UnmarshalJSON accepts the wire names and, for robustness, the bare
// integers Go's default encoding would have produced.
func (o *OutputMode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		var n int
		if err2 := json.Unmarshal(b, &n); err2 != nil {
			return fmt.Errorf("engine: bad OutputMode %s", b)
		}
		if n < int(OutputAuto) || n > int(OutputBitmap) {
			return fmt.Errorf("engine: OutputMode %d out of range", n)
		}
		*o = OutputMode(n)
		return nil
	}
	switch s {
	case "", "auto":
		*o = OutputAuto
	case "list":
		*o = OutputList
	case "bitmap":
		*o = OutputBitmap
	default:
		return fmt.Errorf("engine: unknown OutputMode %q", s)
	}
	return nil
}

// Desc is the GraphBLAS-style descriptor that parameterizes the single
// Mult/MultBatch entry point — the CombBLAS/GraphBLAS shape in which
// one primitive replaces a method per capability. Every field is
// JSON-serializable, so a Desc doubles as the wire contract of a
// network multiply request: everything the paper's extensions added
// (§V masking, §II-A left multiplication, frontier outputs, batching)
// is a field here instead of a method there.
//
// The zero Desc is a plain multiply: unmasked, overwrite, A (not Aᵀ),
// richest native output representation.
type Desc struct {
	// Mask, when non-nil, is the output mask: only rows the mask admits
	// survive the multiply, and every registered engine pushes the test
	// into its merge/accumulate step (paper §V).
	Mask *sparse.BitVec `json:"mask,omitempty"`
	// Masks, when non-nil, carries one output mask per batch slot for
	// MultBatch (len must equal the batch width; nil slots run
	// unmasked). Single Mult calls must use Mask. When both are set,
	// Masks wins for batches.
	Masks []*sparse.BitVec `json:"masks,omitempty"`
	// Complement inverts the mask test: rows present in the mask are
	// the ones dropped (BFS's "not yet visited" filter).
	Complement bool `json:"complement,omitempty"`
	// Accum switches the output from overwrite to accumulate:
	// y ← y ⊕ (A·x) where ⊕ is the semiring's Add — the GraphBLAS
	// accumulate pattern with the output's prior contents as the
	// accumulator. Accumulated outputs are list-form (the union
	// invalidates any native bitmap).
	Accum bool `json:"accumulate,omitempty"`
	// Transpose multiplies by Aᵀ instead of A, which is the row-vector
	// "left multiplication" yᵀ ← xᵀ·A of paper §II-A. The facade builds
	// and caches the transpose engine on first use.
	Transpose bool `json:"transpose,omitempty"`
	// Output selects the requested output representation (see
	// OutputMode). On the wire this also selects the Response payload:
	// OutputBitmap makes Multiplier.Do answer with the bitmap wire form
	// (Response.YBits / YsBits) and OutputRep "bitmap"; OutputAuto and
	// OutputList both serialize the list form — auto's "richest native
	// representation" is an in-process concept, and building a bitmap
	// the encoder would discard helps no one.
	Output OutputMode `json:"output,omitempty"`
	// BatchWidth, when positive, declares the batch width of a
	// MultBatch request — wire requests state it so servers can
	// validate and size before touching the payload. MultBatch checks
	// it against len(xs) when set; single Mult calls leave it zero.
	BatchWidth int `json:"batch_width,omitempty"`
	// Semiring optionally names the semiring by its registered name
	// ("arithmetic", "minplus", "bfs", ...; see semiring.ByName). Wire
	// requests must use it — function values don't serialize. In-process
	// callers passing a Semiring value may leave it empty; a non-zero
	// explicit Semiring argument always wins.
	Semiring string `json:"semiring,omitempty"`
}

// Shape is the dispatch-relevant projection of a Desc: the part that
// determines which engine capabilities a call needs, and therefore the
// key under which a compiled Plan is cached. Runtime arguments (the
// mask pointers, complement polarity, batch width, semiring) are NOT
// part of the shape — two calls that differ only in those share a plan.
type Shape struct {
	// Masked is set when the call carries an output mask.
	Masked bool
	// Accum is set when the call accumulates into the output.
	Accum bool
	// Output is the requested output representation.
	Output OutputMode
}

// Shape projects the descriptor onto its dispatch-relevant fields.
// Transpose is deliberately absent: the facade resolves it by selecting
// the Aᵀ-bound engine before the plan lookup, so both orientations
// compile against the engine that will actually run.
func (d Desc) Shape() Shape {
	return Shape{
		Masked: d.Mask != nil || d.Masks != nil,
		Accum:  d.Accum,
		Output: d.Output,
	}
}

// Validate checks the descriptor's internal consistency — the checks a
// network server runs on a decoded request before touching the payload.
// It does not (cannot) check agreement with call arguments; Mult and
// MultBatch enforce those at the call.
func (d Desc) Validate() error {
	if d.Complement && d.Mask == nil && d.Masks == nil {
		return fmt.Errorf("engine: Desc.Complement set without a mask")
	}
	if d.Output < OutputAuto || d.Output > OutputBitmap {
		return fmt.Errorf("engine: Desc.Output %d out of range", int(d.Output))
	}
	if d.BatchWidth < 0 {
		return fmt.Errorf("engine: negative Desc.BatchWidth %d", d.BatchWidth)
	}
	if d.Masks != nil && d.BatchWidth > 0 && len(d.Masks) != d.BatchWidth {
		return fmt.Errorf("engine: Desc.Masks has %d entries but BatchWidth is %d", len(d.Masks), d.BatchWidth)
	}
	if d.Mask != nil {
		for _, mk := range d.Masks {
			if mk != nil && mk != d.Mask {
				return fmt.Errorf("engine: Desc.Mask and Desc.Masks both set with different masks")
			}
		}
	}
	return nil
}

// batchMasks resolves the per-slot masks of a width-k batch call: Masks
// when given, otherwise Mask replicated, otherwise nil (unmasked).
func (d Desc) batchMasks(k int) []*sparse.BitVec {
	if d.Masks != nil {
		return d.Masks
	}
	if d.Mask == nil {
		return nil
	}
	masks := make([]*sparse.BitVec, k)
	for q := range masks {
		masks[q] = d.Mask
	}
	return masks
}
