package engine

import "spmspv/internal/par"

// Sched selects how the bucket engine's Step 2 distributes buckets over
// threads.
type Sched int

const (
	// SchedDynamic claims buckets via an atomic counter (OpenMP
	// "schedule(dynamic)"), the paper's choice for load balance on
	// skewed matrices (§III-A).
	SchedDynamic Sched = iota
	// SchedStatic assigns contiguous bucket ranges up front. Exposed for
	// the scheduling ablation benchmark.
	SchedStatic
	// SchedStealing gives each worker a contiguous bucket share weighted
	// by entry count and lets idle workers steal from stragglers' deques
	// — the executor-native schedule (see internal/par's Executor).
	SchedStealing
)

// Options configures engine construction. Threads applies to every
// algorithm; the remaining fields tune the SpMSpV-bucket engine and are
// ignored by the baselines (whose published designs they do not
// appear in). The zero value asks for the paper's defaults: GOMAXPROCS
// threads, 4 buckets per thread, epoch-tag merging, dynamic bucket
// scheduling, and the nonzero-balanced Step-1 split.
type Options struct {
	// Threads is the number of worker threads t; ≤ 0 means GOMAXPROCS.
	// Following the paper's analysis the effective t never exceeds
	// nnz(x).
	Threads int

	// BucketsPerThread sets nb = BucketsPerThread·t. The paper uses 4
	// ("we use 4t buckets when using t threads", §III-A); 0 means 4.
	BucketsPerThread int

	// SortOutput produces y with strictly increasing indices by radix
	// sorting each bucket's unique indices. Because buckets partition
	// the row space in order, per-bucket sorting yields a globally
	// sorted vector (paper Fig. 1, "sorted uind").
	SortOutput bool

	// StagingEntries, when positive, routes Step-1 writes through a
	// small per-(thread,bucket) staging buffer that is flushed to the
	// bucket when full — the paper's cache-locality optimization ("a
	// thread first fills its private buffer … and copies data from the
	// private buffer to buckets when the local buffer is full",
	// §III-A). Zero writes directly.
	StagingEntries int

	// UseInfSentinel switches Step 2 to the paper-faithful two-pass
	// merge that marks first touches with ∞ (Algorithm 1, lines 11-18)
	// instead of the default one-pass epoch-tag merge. The sentinel
	// variant cannot distinguish a stored +Inf from an uninitialized
	// slot, exactly as in the paper; it exists for fidelity comparisons.
	UseInfSentinel bool

	// MergeSched selects dynamic (default), static or work-stealing
	// scheduling of buckets in Step 2.
	MergeSched Sched

	// Executor, when non-nil, runs the engine's parallel regions on a
	// dedicated executor instead of the process-wide par.Default() pool
	// — for isolating one engine's concurrency from the rest of the
	// process (e.g. a tenant with its own thread budget). Nil shares
	// the default pool, which bounds total goroutine fan-out even when
	// a server coalesces many concurrent requests.
	Executor *par.Executor

	// SplitEvenly disables the nonzero-weighted Step-1 work split. By
	// default work is split "based on nonzeros, as opposed to [entries],
	// of x" — the paper's §III-B fix that bounds the span on skewed
	// matrices. Setting SplitEvenly gives each thread an equal count of
	// x entries instead.
	SplitEvenly bool

	// HybridThreshold tunes the Hybrid engine's per-call direction
	// switch: the matrix-driven side runs when nnz(x)/n reaches the
	// threshold. Zero (the default) asks construction to calibrate the
	// threshold from a few probe multiplies on the bound matrix; a
	// negative value pins the vector-driven side (never switch). The
	// other engines ignore this field.
	HybridThreshold float64

	// CalibrationCache, when non-empty, is the path of an on-disk JSON
	// cache of calibrated hybrid thresholds keyed by a matrix
	// fingerprint (dimensions, nonzero count, column-degree sketch).
	// Construction with HybridThreshold == 0 first consults the cache —
	// a hit skips the probe multiplies entirely — and stores a freshly
	// calibrated threshold back on a miss. Empty (the default) disables
	// persistence; the other engines ignore this field.
	CalibrationCache string

	// Recalibrate forces calibration to re-run its probe multiplies
	// even when CalibrationCache holds a threshold for the matrix; the
	// fresh result overwrites the cached entry (the CLIs' -recalibrate
	// knob).
	Recalibrate bool
}

// WithDefaults resolves zero values to the paper's defaults.
func (o Options) WithDefaults() Options {
	o.Threads = par.Threads(o.Threads)
	if o.BucketsPerThread <= 0 {
		o.BucketsPerThread = 4
	}
	return o
}

// Exec resolves the executor the engine's parallel regions run on: the
// configured one, or the process-wide default pool.
func (o Options) Exec() *par.Executor {
	if o.Executor != nil {
		return o.Executor
	}
	return par.Default()
}
