// Package engine defines the uniform SpMSpV engine abstraction: the
// Engine interface every algorithm implements, the Algorithm
// identifiers, the construction Options, and a registry through which
// implementations make themselves constructible.
//
// The registry inverts the dependency the facade used to hard-code: the
// implementing packages (internal/core for SpMSpV-bucket,
// internal/baselines for the Table I competitors) register a
// constructor from init, and every consumer — the public facade,
// internal/algorithms, internal/bench, cmd/ — builds engines through
// New without knowing the concrete types. Importing an implementing
// package (directly or blank) is what populates the registry, the same
// pattern as database/sql drivers.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Engine is the uniform contract of one SpMSpV implementation bound to
// one matrix: compute y ← A·x over a semiring, and report the
// deterministic work counters behind the paper's work-efficiency
// analysis.
//
// Concurrency: every Engine constructed through this registry is safe
// for concurrent Multiply calls from multiple goroutines; per-call
// scratch state is pooled internally and counters are aggregated
// race-free.
type Engine interface {
	// Multiply computes y ← A·x over sr. y is reset and filled.
	Multiply(x, y *sparse.SpVec, sr semiring.Semiring)
	// Counters returns the work performed since the last ResetCounters.
	Counters() perf.Counters
	// ResetCounters zeroes the work counters.
	ResetCounters()
	// Name identifies the algorithm in benchmark tables.
	Name() string
}

// MaskedEngine is the optional extension for engines that push the
// output mask down into the merge step (paper §V future work);
// internal/core's bucket engine implements it.
type MaskedEngine interface {
	Engine
	MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool)
}

// Rep identifies a frontier (input-vector) representation. The paper's
// §II-C names the two in use: the compact list of (index, value) pairs
// that vector-driven algorithms scan, and the O(n) bitvector that
// GraphMat's matrix-driven loop probes.
type Rep int

const (
	// RepList is the list format (sparse.SpVec).
	RepList Rep = iota
	// RepBitmap is the bitvector format (sparse.BitVec).
	RepBitmap
)

// String names the representation.
func (r Rep) String() string {
	if r == RepBitmap {
		return "bitmap"
	}
	return "list"
}

// FrontierEngine is the optional extension for engines that accept a
// dual-representation Frontier directly and declare which
// representation their inner loop natively consumes. Callers holding a
// Frontier should route through MultiplyFrontier so a representation
// materialized once (e.g. the bitmap a hybrid engine builds for its
// matrix-driven side) is reused instead of rebuilt per call; callers
// holding a plain list vector lose nothing by calling Multiply.
type FrontierEngine interface {
	Engine
	// PreferredRep reports the representation the engine consumes
	// natively — the one a caller should keep materialized when it
	// feeds the same frontier to this engine repeatedly.
	PreferredRep() Rep
	// MultiplyFrontier computes y ← A·x over sr, reading whichever
	// representation of x the engine prefers (materializing it at most
	// once on the shared Frontier).
	MultiplyFrontier(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring)
}

// OutputEngine is the optional extension for engines whose result is
// written into a sparse.Frontier rather than a bare list vector —
// outputs made symmetric with inputs. An OutputEngine drives the
// frontier's BeginOutput/FinishOutput protocol itself and, when its
// output pass already visits a bitmap-shaped structure, emits the
// output bitmap natively in the same pass — so a consumer that prefers
// the bitmap (GraphMat's matrix-driven loop, a hybrid engine's dense
// levels) reads it with no list→bitmap conversion ever running.
// Engines that only speak lists are served by the package-level
// MultiplyInto wrapper, which runs the list multiply into the
// frontier and leaves the bitmap lazy.
type OutputEngine interface {
	Engine
	// OutputRep reports the richest representation MultiplyInto
	// populates natively: RepBitmap means the output frontier carries
	// list and bitmap after one pass; RepList means list only (the
	// bitmap, if a consumer demands it, is a counted conversion).
	OutputRep() Rep
	// MultiplyInto computes y ← A·x over sr, writing the result into
	// the output frontier (list authoritative, bitmap populated
	// natively when OutputRep is RepBitmap). x and y must not alias.
	MultiplyInto(x, y *sparse.Frontier, sr semiring.Semiring)
}

// MaskedOutputEngine combines the masked and output extensions: the
// output mask is pushed down into the engine's merge/accumulate step
// (entries the mask kills never reach the output) AND the surviving
// result is emitted in frontier form. This is the §V GraphBLAS
// "masked SpMSpV" primitive in the shape graph algorithms compose:
// BFS's visited filter becomes part of the multiply and the filtered
// output is immediately a valid next frontier.
type MaskedOutputEngine interface {
	OutputEngine
	// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output
	// frontier; complement inverts the mask test.
	MultiplyIntoMasked(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool)
}

// OutputRepOf reports the representation e emits natively into output
// frontiers: RepList for engines served by the fallback wrapper.
func OutputRepOf(e Engine) Rep {
	if oe, ok := e.(OutputEngine); ok {
		return oe.OutputRep()
	}
	return RepList
}

// MultiplyInto computes y ← A·x into the output frontier through e:
// natively when e implements OutputEngine, otherwise via the fallback
// wrapper — the list multiply (frontier-aware when e reads frontiers)
// runs into the frontier's list and the bitmap stays lazy. This is the
// uniform entry point frontier pipelines use so every registered
// engine writes frontier outputs.
func MultiplyInto(e Engine, x, y *sparse.Frontier, sr semiring.Semiring) {
	if oe, ok := e.(OutputEngine); ok {
		oe.MultiplyInto(x, y, sr)
		return
	}
	MultiplyIntoList(e, x, y, sr)
}

// MultiplyIntoList computes y ← A·x into the output frontier through
// the list-only path even when e could emit the bitmap natively: the
// frontier-aware list multiply runs into the frontier's list and the
// bitmap stays lazy. Callers that immediately shrink the output's
// support (plain BFS's unvisited filter, components' improved-label
// filter) use this — a natively emitted bitmap would be erased before
// any consumer could read it, so emitting it would be pure waste.
func MultiplyIntoList(e Engine, x, y *sparse.Frontier, sr semiring.Semiring) {
	list := y.BeginOutput()
	if fe, ok := e.(FrontierEngine); ok {
		fe.MultiplyFrontier(x, list, sr)
	} else {
		e.Multiply(x.List(), list, sr)
	}
	y.FinishOutput(false)
}

// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output frontier
// through e, degrading gracefully with the engine's capabilities:
// native masked-output pushdown, then a masked list multiply, then —
// for engines with no mask support at all — a plain multiply filtered
// after the fact (same results, the work the pushdown avoids).
func MultiplyIntoMasked(e Engine, x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
	if moe, ok := e.(MaskedOutputEngine); ok {
		moe.MultiplyIntoMasked(x, y, sr, mask, complement)
		return
	}
	list := y.BeginOutput()
	if me, ok := e.(MaskedEngine); ok {
		me.MultiplyMasked(x.List(), list, sr, mask, complement)
	} else {
		if fe, ok := e.(FrontierEngine); ok {
			fe.MultiplyFrontier(x, list, sr)
		} else {
			e.Multiply(x.List(), list, sr)
		}
		sparse.FilterMaskInPlace(list, mask, complement)
	}
	y.FinishOutput(false)
}

// MultiplyBatchInto runs a batch of frontier-output multiplies through
// e: the lists go through the engine's native batch path (or the
// Multiply loop) and every output frontier completes its output pass
// with the bitmap lazy — batched callers trade native bitmaps for the
// shared Estimate pass. len(xs) must equal len(ys).
func MultiplyBatchInto(e Engine, xs, ys []*sparse.Frontier, sr semiring.Semiring) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("engine: MultiplyBatchInto with %d inputs but %d outputs", len(xs), len(ys)))
	}
	xl := make([]*sparse.SpVec, len(xs))
	yl := make([]*sparse.SpVec, len(ys))
	for q := range xs {
		xl[q] = xs[q].List()
		yl[q] = ys[q].BeginOutput()
	}
	MultiplyBatch(e, xl, yl, sr)
	for q := range ys {
		ys[q].FinishOutput(false)
	}
}

// BatchEngine is the optional extension for engines that multiply a
// batch of frontiers against the matrix in one pass, amortizing
// per-call setup (the bucket engine's Estimate/bucket-sizing pass,
// workspace checkout, scheduling) across the batch — the SpGEMM-style
// batching that serves multi-source BFS and other multi-frontier
// workloads.
type BatchEngine interface {
	Engine
	// MultiplyBatch computes ys[q] ← A·xs[q] for every q over sr.
	// len(xs) must equal len(ys); the xs must not alias the ys.
	MultiplyBatch(xs, ys []*sparse.SpVec, sr semiring.Semiring)
}

// MultiplyBatch runs a batch of multiplies through e: natively when e
// implements BatchEngine, otherwise as a loop of Multiply calls. This
// is the uniform entry point batch-level callers (multi-source BFS,
// the facade) use so every registered engine accepts batches.
func MultiplyBatch(e Engine, xs, ys []*sparse.SpVec, sr semiring.Semiring) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("engine: MultiplyBatch with %d inputs but %d outputs", len(xs), len(ys)))
	}
	if be, ok := e.(BatchEngine); ok {
		be.MultiplyBatch(xs, ys, sr)
		return
	}
	for q := range xs {
		e.Multiply(xs[q], ys[q], sr)
	}
}

// Algorithm selects an SpMSpV engine.
type Algorithm int

const (
	// Bucket is the paper's SpMSpV-bucket algorithm (default; the only
	// work-efficient, synchronization-avoiding choice).
	Bucket Algorithm = iota
	// CombBLASSPA is the row-split, fully-initialized-SPA baseline.
	CombBLASSPA
	// CombBLASHeap is the row-split heap-merge baseline.
	CombBLASHeap
	// GraphMat is the matrix-driven, bitvector-input baseline.
	GraphMat
	// SortBased is the gather–radix-sort–reduce baseline.
	SortBased
	// Hybrid switches per call between the vector-driven bucket
	// algorithm and the matrix-driven GraphMat algorithm on input
	// density (the paper's §V direction-switch extension).
	Hybrid
)

// String names the algorithm as registered (the paper's Table I names),
// or "unknown" when nothing is registered under it.
func (a Algorithm) String() string {
	regMu.RLock()
	defer regMu.RUnlock()
	if e, ok := registry[a]; ok {
		return e.name
	}
	return "unknown"
}

// Constructor builds an engine bound to a matrix. Construction performs
// the per-matrix preprocessing (row-splitting, workspace sizing) that
// the paper excludes from multiply timings.
type Constructor func(a *sparse.CSC, opt Options) Engine

type regEntry struct {
	name string
	ctor Constructor
}

var (
	regMu    sync.RWMutex
	registry = map[Algorithm]regEntry{}
)

// Register makes an algorithm constructible through New. It is intended
// to be called from the implementing package's init; registering the
// same Algorithm twice panics, as with database/sql drivers.
func Register(alg Algorithm, name string, ctor Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[alg]; dup {
		panic(fmt.Sprintf("engine: Register called twice for %q", name))
	}
	if ctor == nil {
		panic("engine: Register with nil constructor")
	}
	registry[alg] = regEntry{name: name, ctor: ctor}
}

// New constructs the selected algorithm's engine for a. It returns an
// error when nothing is registered under alg — usually a missing import
// of the implementing package.
func New(a *sparse.CSC, alg Algorithm, opt Options) (Engine, error) {
	regMu.RLock()
	e, ok := registry[alg]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: no constructor registered for algorithm %d (missing import of the implementing package?)", int(alg))
	}
	return e.ctor(a, opt), nil
}

// Registered returns the registered algorithm identifiers in ascending
// order.
func Registered() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	algs := make([]Algorithm, 0, len(registry))
	for a := range registry {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	return algs
}
