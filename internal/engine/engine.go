// Package engine defines the uniform SpMSpV engine abstraction: the
// Engine interface every algorithm implements, the Algorithm
// identifiers, the construction Options, and a registry through which
// implementations make themselves constructible.
//
// The registry inverts the dependency the facade used to hard-code: the
// implementing packages (internal/core for SpMSpV-bucket,
// internal/baselines for the Table I competitors) register a
// constructor from init, and every consumer — the public facade,
// internal/algorithms, internal/bench, cmd/ — builds engines through
// New without knowing the concrete types. Importing an implementing
// package (directly or blank) is what populates the registry, the same
// pattern as database/sql drivers.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// Engine is the uniform contract of one SpMSpV implementation bound to
// one matrix: compute y ← A·x over a semiring, and report the
// deterministic work counters behind the paper's work-efficiency
// analysis.
//
// Concurrency: every Engine constructed through this registry is safe
// for concurrent Multiply calls from multiple goroutines; per-call
// scratch state is pooled internally and counters are aggregated
// race-free.
type Engine interface {
	// Multiply computes y ← A·x over sr. y is reset and filled.
	Multiply(x, y *sparse.SpVec, sr semiring.Semiring)
	// Counters returns the work performed since the last ResetCounters.
	Counters() perf.Counters
	// ResetCounters zeroes the work counters.
	ResetCounters()
	// Name identifies the algorithm in benchmark tables.
	Name() string
}

// MaskedEngine is the optional extension for engines that push the
// output mask down into the merge step (paper §V future work);
// internal/core's bucket engine implements it.
type MaskedEngine interface {
	Engine
	MultiplyMasked(x, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool)
}

// Rep identifies a frontier (input-vector) representation. The paper's
// §II-C names the two in use: the compact list of (index, value) pairs
// that vector-driven algorithms scan, and the O(n) bitvector that
// GraphMat's matrix-driven loop probes.
type Rep int

const (
	// RepList is the list format (sparse.SpVec).
	RepList Rep = iota
	// RepBitmap is the bitvector format (sparse.BitVec).
	RepBitmap
)

// String names the representation.
func (r Rep) String() string {
	if r == RepBitmap {
		return "bitmap"
	}
	return "list"
}

// FrontierEngine is the optional extension for engines that accept a
// dual-representation Frontier directly and declare which
// representation their inner loop natively consumes. Callers holding a
// Frontier should route through MultiplyFrontier so a representation
// materialized once (e.g. the bitmap a hybrid engine builds for its
// matrix-driven side) is reused instead of rebuilt per call; callers
// holding a plain list vector lose nothing by calling Multiply.
type FrontierEngine interface {
	Engine
	// PreferredRep reports the representation the engine consumes
	// natively — the one a caller should keep materialized when it
	// feeds the same frontier to this engine repeatedly.
	PreferredRep() Rep
	// MultiplyFrontier computes y ← A·x over sr, reading whichever
	// representation of x the engine prefers (materializing it at most
	// once on the shared Frontier).
	MultiplyFrontier(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring)
}

// OutputEngine is the optional extension for engines whose result is
// written into a sparse.Frontier rather than a bare list vector —
// outputs made symmetric with inputs. An OutputEngine drives the
// frontier's BeginOutput/FinishOutput protocol itself and, when its
// output pass already visits a bitmap-shaped structure, emits the
// output bitmap natively in the same pass — so a consumer that prefers
// the bitmap (GraphMat's matrix-driven loop, a hybrid engine's dense
// levels) reads it with no list→bitmap conversion ever running.
// Engines that only speak lists are served by CompilePlan's list
// fallback, which runs the list multiply into the frontier and leaves
// the bitmap lazy.
type OutputEngine interface {
	Engine
	// OutputRep reports the richest representation MultiplyInto
	// populates natively: RepBitmap means the output frontier carries
	// list and bitmap after one pass; RepList means list only (the
	// bitmap, if a consumer demands it, is a counted conversion).
	OutputRep() Rep
	// MultiplyInto computes y ← A·x over sr, writing the result into
	// the output frontier (list authoritative, bitmap populated
	// natively when OutputRep is RepBitmap). x and y must not alias.
	MultiplyInto(x, y *sparse.Frontier, sr semiring.Semiring)
}

// MaskedOutputEngine combines the masked and output extensions: the
// output mask is pushed down into the engine's merge/accumulate step
// (entries the mask kills never reach the output) AND the surviving
// result is emitted in frontier form. This is the §V GraphBLAS
// "masked SpMSpV" primitive in the shape graph algorithms compose:
// BFS's visited filter becomes part of the multiply and the filtered
// output is immediately a valid next frontier.
type MaskedOutputEngine interface {
	OutputEngine
	// MultiplyIntoMasked computes y ← ⟨A·x, mask⟩ into the output
	// frontier; complement inverts the mask test.
	MultiplyIntoMasked(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool)
}

// OutputRepOf reports the representation e emits natively into output
// frontiers: RepList for engines served by the fallback wrapper.
func OutputRepOf(e Engine) Rep {
	if oe, ok := e.(OutputEngine); ok {
		return oe.OutputRep()
	}
	return RepList
}

// Frontier-output execution — which of the optional interfaces above a
// given engine implements, and how to degrade when it doesn't — is
// compiled once per (engine, shape) by CompilePlan (plan.go); the Plan
// is the uniform entry point frontier pipelines use, so every
// registered engine writes frontier outputs with no per-call type
// assertions.

// BatchOutputEngine is the optional extension for engines whose
// batched multiply writes frontier-form outputs natively: the batched
// Step 3 emits list and bitmap in one pass per slot, and the masked
// variant pushes one output mask per slot into the batched merge. This
// is what makes multi-source direction-optimized pipelines (masked
// MultiBFS) conversion-free: every slot's output bitmap is ready for
// the next level's matrix-driven side without a list→bitmap conversion
// ever running.
type BatchOutputEngine interface {
	Engine
	// MultiplyBatchInto computes ys[q] ← A·xs[q] into the output
	// frontiers, emitting each slot's bitmap natively.
	MultiplyBatchInto(xs, ys []*sparse.Frontier, sr semiring.Semiring)
	// MultiplyBatchIntoMasked computes ys[q] ← ⟨A·xs[q], masks[q]⟩ into
	// the output frontiers (nil slots run unmasked); complement inverts
	// every mask test.
	MultiplyBatchIntoMasked(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool)
}

// BatchEngine is the optional extension for engines that multiply a
// batch of frontiers against the matrix in one pass, amortizing
// per-call setup (the bucket engine's Estimate/bucket-sizing pass,
// workspace checkout, scheduling) across the batch — the SpGEMM-style
// batching that serves multi-source BFS and other multi-frontier
// workloads.
type BatchEngine interface {
	Engine
	// MultiplyBatch computes ys[q] ← A·xs[q] for every q over sr.
	// len(xs) must equal len(ys); the xs must not alias the ys.
	MultiplyBatch(xs, ys []*sparse.SpVec, sr semiring.Semiring)
}

// MultiplyBatch runs a batch of multiplies through e: natively when e
// implements BatchEngine, otherwise as a loop of Multiply calls. This
// is the uniform entry point batch-level callers (multi-source BFS,
// the facade) use so every registered engine accepts batches.
func MultiplyBatch(e Engine, xs, ys []*sparse.SpVec, sr semiring.Semiring) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("engine: MultiplyBatch with %d inputs but %d outputs", len(xs), len(ys)))
	}
	if be, ok := e.(BatchEngine); ok {
		be.MultiplyBatch(xs, ys, sr)
		return
	}
	for q := range xs {
		e.Multiply(xs[q], ys[q], sr)
	}
}

// Algorithm selects an SpMSpV engine.
type Algorithm int

const (
	// Bucket is the paper's SpMSpV-bucket algorithm (default; the only
	// work-efficient, synchronization-avoiding choice).
	Bucket Algorithm = iota
	// CombBLASSPA is the row-split, fully-initialized-SPA baseline.
	CombBLASSPA
	// CombBLASHeap is the row-split heap-merge baseline.
	CombBLASHeap
	// GraphMat is the matrix-driven, bitvector-input baseline.
	GraphMat
	// SortBased is the gather–radix-sort–reduce baseline.
	SortBased
	// Hybrid switches per call between the vector-driven bucket
	// algorithm and the matrix-driven GraphMat algorithm on input
	// density (the paper's §V direction-switch extension).
	Hybrid
)

// String names the algorithm as registered (the paper's Table I names),
// or "unknown" when nothing is registered under it.
func (a Algorithm) String() string {
	regMu.RLock()
	defer regMu.RUnlock()
	if e, ok := registry[a]; ok {
		return e.name
	}
	return "unknown"
}

// Constructor builds an engine bound to a matrix. Construction performs
// the per-matrix preprocessing (row-splitting, workspace sizing) that
// the paper excludes from multiply timings.
type Constructor func(a *sparse.CSC, opt Options) Engine

type regEntry struct {
	name    string
	ctor    Constructor
	aliases []string
}

var (
	regMu    sync.RWMutex
	registry = map[Algorithm]regEntry{}
)

// Register makes an algorithm constructible through New and resolvable
// through Parse. It is intended to be called from the implementing
// package's init; registering the same Algorithm twice panics, as with
// database/sql drivers.
//
// aliases are optional short CLI names ("bucket", "sort") registered
// alongside the canonical Table I name: Parse accepts them and Names
// lists them first, so the one registration call is the single source
// of truth for construction, parsing, and flag help — there is no
// separate alias table to keep in sync.
func Register(alg Algorithm, name string, ctor Constructor, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[alg]; dup {
		panic(fmt.Sprintf("engine: Register called twice for %q", name))
	}
	if ctor == nil {
		panic("engine: Register with nil constructor")
	}
	registry[alg] = regEntry{name: name, ctor: ctor, aliases: aliases}
}

// Parse resolves an engine name — a registered canonical name matched
// case-insensitively ("CombBLAS-SPA", "graphmat", ...) or a registered
// short alias ("bucket", "sort", "hybrid") — to its Algorithm. Anything
// that registers is reachable here without touching this function. An
// unknown name returns (0, false); callers must check ok rather than
// use the zero Algorithm, which happens to be Bucket.
func Parse(name string) (Algorithm, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, alg := range registeredLocked() {
		e := registry[alg]
		if strings.EqualFold(e.name, name) {
			return alg, true
		}
		for _, a := range e.aliases {
			if strings.EqualFold(a, name) {
				return alg, true
			}
		}
	}
	return 0, false
}

// Names returns every name Parse accepts, in a stable order: the
// registered short aliases first (in ascending Algorithm order), then
// the canonical names (lowercased) not already covered by an alias.
// CLIs derive their -engine/-algorithm help from this, so a newly
// registered engine shows up without touching any flag text.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		n = strings.ToLower(n)
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	algs := registeredLocked()
	for _, alg := range algs {
		for _, a := range registry[alg].aliases {
			add(a)
		}
	}
	for _, alg := range algs {
		add(registry[alg].name)
	}
	return names
}

// registeredLocked returns the registered algorithms in ascending
// order; the caller must hold regMu.
func registeredLocked() []Algorithm {
	algs := make([]Algorithm, 0, len(registry))
	for a := range registry {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i] < algs[j] })
	return algs
}

// New constructs the selected algorithm's engine for a. It returns an
// error when nothing is registered under alg — usually a missing import
// of the implementing package.
func New(a *sparse.CSC, alg Algorithm, opt Options) (Engine, error) {
	regMu.RLock()
	e, ok := registry[alg]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: no constructor registered for algorithm %d (missing import of the implementing package?)", int(alg))
	}
	return e.ctor(a, opt), nil
}

// Registered returns the registered algorithm identifiers in ascending
// order.
func Registered() []Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	return registeredLocked()
}
