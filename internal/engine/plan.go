package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// planCompilations counts CompilePlan invocations process-wide. Tests
// (and capacity audits) read it to pin that plan caching actually
// works: a warm Multiplier served from a matrix store must answer
// repeat requests with zero new compilations.
var planCompilations atomic.Int64

// PlanCompilations returns the process-wide count of CompilePlan calls.
func PlanCompilations() int64 { return planCompilations.Load() }

// Plan is a compiled execution strategy for one (engine, Shape) pair:
// the capability negotiation — which of the optional Engine extensions
// (FrontierEngine, MaskedEngine, OutputEngine, MaskedOutputEngine,
// BatchEngine, BatchOutputEngine) the engine implements, and how to
// degrade when it doesn't — resolved ONCE, at compile time, into
// closures the hot path invokes with no per-call type assertions.
//
// Iterative algorithms compile the plan for their loop's shape before
// the loop and call Mult/MultBatch per iteration; the public facade
// caches one plan per shape on the Multiplier so arbitrary Desc-driven
// callers get the same amortization.
//
// A Plan is immutable after compilation and safe for concurrent use
// (its scratch pool is a sync.Pool).
type Plan struct {
	shape Shape
	e     Engine

	// runUnmasked / runMasked are the single-call executors; MultBatch
	// uses runBatch. All three are resolved at compile time.
	runUnmasked func(x, y *sparse.Frontier, sr semiring.Semiring)
	runMasked   func(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool)
	runBatch    func(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool)

	// scratch pools *sparse.SpVec buffers for the accumulate wrapper.
	scratch sync.Pool
}

// Shape returns the shape the plan was compiled for.
func (p *Plan) Shape() Shape { return p.shape }

// Engine returns the engine the plan drives.
func (p *Plan) Engine() Engine { return p.e }

// Mult executes one multiply through the plan: y ← ⟨A·x, d.Mask⟩ over
// sr, accumulated or overwritten and represented per the compiled
// shape. d must project to the plan's shape (Plan dispatch is resolved
// at compile time; a mismatched descriptor is a programming error and
// panics).
func (p *Plan) Mult(x, y *sparse.Frontier, sr semiring.Semiring, d Desc) {
	if s := d.Shape(); s != p.shape {
		panic(fmt.Sprintf("engine: Plan compiled for shape %+v called with descriptor shape %+v", p.shape, s))
	}
	if d.Masks != nil {
		// Silently running unmasked (or picking an arbitrary slot) would
		// hand back an unfiltered product the caller believes is masked.
		panic("engine: Mult with Desc.Masks (per-slot masks are MultBatch-only; use Desc.Mask)")
	}
	if d.Mask != nil {
		p.runMasked(x, y, sr, d.Mask, d.Complement)
		return
	}
	p.runUnmasked(x, y, sr)
}

// MultBatch executes a batched multiply through the plan:
// ys[q] ← ⟨A·xs[q], mask_q⟩ for every q, where mask_q comes from
// d.Masks (per slot) or d.Mask (shared). Results are exactly those of
// the equivalent loop of Mult calls; engines with a native batch path
// amortize their per-call setup across the slots.
func (p *Plan) MultBatch(xs, ys []*sparse.Frontier, sr semiring.Semiring, d Desc) {
	if s := d.Shape(); s != p.shape {
		panic(fmt.Sprintf("engine: Plan compiled for shape %+v called with descriptor shape %+v", p.shape, s))
	}
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("engine: MultBatch with %d inputs but %d outputs", len(xs), len(ys)))
	}
	if d.BatchWidth > 0 && d.BatchWidth != len(xs) {
		panic(fmt.Sprintf("engine: MultBatch with %d inputs but Desc.BatchWidth %d", len(xs), d.BatchWidth))
	}
	masks := d.batchMasks(len(xs))
	if masks != nil && len(masks) != len(xs) {
		panic(fmt.Sprintf("engine: MultBatch with %d inputs but %d masks", len(xs), len(masks)))
	}
	p.runBatch(xs, ys, sr, masks, d.Complement)
}

// getVec / putVec recycle accumulate scratch vectors.
func (p *Plan) getVec() *sparse.SpVec {
	if v, ok := p.scratch.Get().(*sparse.SpVec); ok {
		return v
	}
	return sparse.NewSpVec(0, 0)
}

func (p *Plan) putVec(v *sparse.SpVec) { p.scratch.Put(v) }

// CompilePlan resolves the capability dispatch for e at shape s. The
// returned plan is the shape's entire execution strategy; nothing about
// e is re-discovered per call.
func CompilePlan(e Engine, s Shape) *Plan {
	planCompilations.Add(1)
	p := &Plan{shape: s, e: e}

	// Capability probe — the type assertions that used to run per call,
	// run once here.
	fe, _ := e.(FrontierEngine)
	me, _ := e.(MaskedEngine)
	oe, _ := e.(OutputEngine)
	moe, _ := e.(MaskedOutputEngine)
	be, _ := e.(BatchEngine)
	boe, _ := e.(BatchOutputEngine)

	// listMult: frontier-in, list-out, unmasked — the primitive every
	// degradation path bottoms out in.
	listMult := func(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring) {
		e.Multiply(x.List(), y, sr)
	}
	if fe != nil {
		listMult = fe.MultiplyFrontier
	}
	// maskedListMult: frontier-in, list-out, masked — native pushdown
	// when the engine has it, multiply-then-filter otherwise.
	maskedListMult := func(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
		listMult(x, y, sr)
		sparse.FilterMaskInPlace(y, mask, complement)
	}
	if me != nil {
		maskedListMult = func(x *sparse.Frontier, y *sparse.SpVec, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
			me.MultiplyMasked(x.List(), y, sr, mask, complement)
		}
	}

	// listInto / maskedListInto: the list-only frontier-output paths
	// (bitmap stays lazy).
	listInto := func(x, y *sparse.Frontier, sr semiring.Semiring) {
		list := y.BeginOutput()
		listMult(x, list, sr)
		y.FinishOutput(false)
	}
	maskedListInto := func(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
		list := y.BeginOutput()
		maskedListMult(x, list, sr, mask, complement)
		y.FinishOutput(false)
	}

	// autoInto / maskedAutoInto: richest native representation.
	autoInto := listInto
	if oe != nil {
		autoInto = oe.MultiplyInto
	}
	maskedAutoInto := maskedListInto
	if moe != nil {
		maskedAutoInto = moe.MultiplyIntoMasked
	}

	// Single-call executors by requested representation.
	switch s.Output {
	case OutputList:
		p.runUnmasked = listInto
		p.runMasked = maskedListInto
	case OutputBitmap:
		inner, maskedInner := autoInto, maskedAutoInto
		p.runUnmasked = func(x, y *sparse.Frontier, sr semiring.Semiring) {
			inner(x, y, sr)
			y.Materialize()
		}
		p.runMasked = func(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
			maskedInner(x, y, sr, mask, complement)
			y.Materialize()
		}
	default: // OutputAuto
		p.runUnmasked = autoInto
		p.runMasked = maskedAutoInto
	}

	// Accumulate wraps the executors: product into pooled scratch, then
	// a sorted-merge (or map) union with the output's prior contents.
	// The union invalidates any bitmap, so accumulated outputs are
	// list-form; OutputBitmap still guarantees the bitmap by a counted
	// materialization afterwards.
	if s.Accum {
		accum := func(x, y *sparse.Frontier, sr semiring.Semiring, mask *sparse.BitVec, complement bool) {
			prod := p.getVec()
			if mask != nil {
				maskedListMult(x, prod, sr, mask, complement)
			} else {
				listMult(x, prod, sr)
			}
			acc := p.getVec()
			list := y.BeginOutput()
			// Swap the output's prior contents into the scratch
			// accumulator so the union can be written back in place.
			*acc, *list = *list, *acc
			if acc.NNZ() == 0 {
				acc.Reset(prod.N)
			}
			sparse.EwiseAddInto(list, prod, acc, sr.Add)
			y.FinishOutput(false)
			if s.Output == OutputBitmap {
				y.Materialize()
			}
			p.putVec(prod)
			p.putVec(acc)
		}
		p.runUnmasked = func(x, y *sparse.Frontier, sr semiring.Semiring) {
			accum(x, y, sr, nil, false)
		}
		p.runMasked = accum
	}

	// listBatch: list-in list-out batch through the engine's native
	// batch path (or a Multiply loop).
	listBatch := func(xl, yl []*sparse.SpVec, sr semiring.Semiring) {
		if be != nil {
			be.MultiplyBatch(xl, yl, sr)
			return
		}
		for q := range xl {
			e.Multiply(xl[q], yl[q], sr)
		}
	}
	// listBatchInto runs the whole batch through the list-only frontier
	// path: one native batch call, bitmaps lazy.
	listBatchInto := func(xs, ys []*sparse.Frontier, sr semiring.Semiring) {
		xl := make([]*sparse.SpVec, len(xs))
		yl := make([]*sparse.SpVec, len(ys))
		for q := range xs {
			xl[q] = xs[q].List()
			yl[q] = ys[q].BeginOutput()
		}
		listBatch(xl, yl, sr)
		for q := range ys {
			ys[q].FinishOutput(false)
		}
	}
	// slotLoop degrades a batch to per-slot single executions — the
	// path for shapes (accumulate, forced list with masks) whose batch
	// semantics are exactly the loop.
	slotLoop := func(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
		for q := range xs {
			if masks != nil && masks[q] != nil {
				p.runMasked(xs[q], ys[q], sr, masks[q], complement)
			} else {
				p.runUnmasked(xs[q], ys[q], sr)
			}
		}
	}

	switch {
	case s.Accum:
		p.runBatch = slotLoop
	case s.Output == OutputList:
		p.runBatch = func(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
			if masks == nil {
				listBatchInto(xs, ys, sr)
				return
			}
			slotLoop(xs, ys, sr, masks, complement)
		}
	default: // OutputAuto / OutputBitmap
		inner := func(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
			switch {
			case masks == nil && boe != nil:
				boe.MultiplyBatchInto(xs, ys, sr)
			case masks == nil:
				listBatchInto(xs, ys, sr)
			case boe != nil:
				boe.MultiplyBatchIntoMasked(xs, ys, sr, masks, complement)
			default:
				slotLoop(xs, ys, sr, masks, complement)
			}
		}
		if s.Output == OutputBitmap {
			p.runBatch = func(xs, ys []*sparse.Frontier, sr semiring.Semiring, masks []*sparse.BitVec, complement bool) {
				inner(xs, ys, sr, masks, complement)
				for _, y := range ys {
					y.Materialize()
				}
			}
		} else {
			p.runBatch = inner
		}
	}
	return p
}
