package algorithms

import (
	"math/rand"
	"testing"

	"spmspv/internal/core"
	"spmspv/internal/sparse"
)

// bipartite builds a random nr×nc bipartite adjacency with the given
// edge count (duplicates collapse).
func bipartite(t *testing.T, rng *rand.Rand, nr, nc sparse.Index, edges int) *sparse.CSC {
	t.Helper()
	tr := sparse.NewTriples(nr, nc, edges)
	for e := 0; e < edges; e++ {
		tr.Append(sparse.Index(rng.Intn(int(nr))), sparse.Index(rng.Intn(int(nc))), 1)
	}
	tr.SumDuplicates(func(a, b float64) float64 { return 1 })
	a, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func matchingEngines(a *sparse.CSC) (Multiplier, Multiplier) {
	at := a.Transpose()
	return core.NewMultiplier(a, core.Options{Threads: 4, SortOutput: true}),
		core.NewMultiplier(at, core.Options{Threads: 4, SortOutput: true})
}

func TestMatchingValidAndMaximalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	shapes := []struct {
		nr, nc sparse.Index
		edges  int
	}{
		{50, 50, 120},
		{100, 30, 300},
		{30, 100, 300},
		{200, 200, 200}, // sparse: many isolated vertices
	}
	for _, sh := range shapes {
		a := bipartite(t, rng, sh.nr, sh.nc, sh.edges)
		mult, multT := matchingEngines(a)
		rowMate, colMate := MaximalMatching(mult, multT, sh.nr, sh.nc)
		if msg := ValidateMatching(a, rowMate, colMate); msg != "" {
			t.Errorf("%dx%d: %s", sh.nr, sh.nc, msg)
		}
	}
}

func TestMatchingPerfectOnDiagonal(t *testing.T) {
	// A diagonal bipartite graph has exactly one perfect matching.
	n := sparse.Index(40)
	tr := sparse.NewTriples(n, n, int(n))
	for i := sparse.Index(0); i < n; i++ {
		tr.Append(i, i, 1)
	}
	a, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	mult, multT := matchingEngines(a)
	rowMate, colMate := MaximalMatching(mult, multT, n, n)
	for i := sparse.Index(0); i < n; i++ {
		if rowMate[i] != i || colMate[i] != i {
			t.Fatalf("diagonal matching wrong at %d: row→%d col→%d", i, rowMate[i], colMate[i])
		}
	}
}

func TestMatchingCompleteBipartite(t *testing.T) {
	// K_{5,8}: matching size must be exactly 5.
	nr, nc := sparse.Index(5), sparse.Index(8)
	tr := sparse.NewTriples(nr, nc, int(nr*nc))
	for i := sparse.Index(0); i < nr; i++ {
		for j := sparse.Index(0); j < nc; j++ {
			tr.Append(i, j, 1)
		}
	}
	a, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	mult, multT := matchingEngines(a)
	rowMate, colMate := MaximalMatching(mult, multT, nr, nc)
	if msg := ValidateMatching(a, rowMate, colMate); msg != "" {
		t.Fatal(msg)
	}
	size := 0
	for _, j := range rowMate {
		if j >= 0 {
			size++
		}
	}
	if size != 5 {
		t.Errorf("matching size %d, want 5 (all rows matched in K_{5,8})", size)
	}
}

func TestMatchingEmptyGraph(t *testing.T) {
	a, err := sparse.NewCSCFromTriples(sparse.NewTriples(10, 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	mult, multT := matchingEngines(a)
	rowMate, colMate := MaximalMatching(mult, multT, 10, 10)
	for i := range rowMate {
		if rowMate[i] != -1 || colMate[i] != -1 {
			t.Fatal("empty graph produced matches")
		}
	}
}

func TestValidateMatchingCatchesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := bipartite(t, rng, 30, 30, 90)
	mult, multT := matchingEngines(a)
	rowMate, colMate := MaximalMatching(mult, multT, 30, 30)
	if msg := ValidateMatching(a, rowMate, colMate); msg != "" {
		t.Fatal(msg)
	}
	// Break mutuality.
	for j, i := range colMate {
		if i >= 0 {
			colMate[j] = -1
			if msg := ValidateMatching(a, rowMate, colMate); msg == "" {
				t.Error("validator missed broken mutuality")
			}
			colMate[j] = i
			break
		}
	}
	// Claim a non-edge.
	bad := append([]sparse.Index(nil), colMate...)
	for j := range bad {
		if bad[j] < 0 {
			// Find some row that is NOT adjacent to column j.
			adj := map[sparse.Index]bool{}
			rows, _ := a.Col(sparse.Index(j))
			for _, i := range rows {
				adj[i] = true
			}
			for i := sparse.Index(0); i < 30; i++ {
				if !adj[i] {
					bad[j] = i
					break
				}
			}
			if bad[j] >= 0 {
				if msg := ValidateMatching(a, rowMate, bad); msg == "" {
					t.Error("validator missed a non-edge match")
				}
			}
			break
		}
	}
}
