package algorithms

import (
	"math"

	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// PageRankOptions configures the data-driven PageRank iteration.
type PageRankOptions struct {
	// Damping is the teleport parameter α (default 0.85).
	Damping float64
	// Tol is the per-vertex activity threshold: a vertex whose rank
	// changed by less than Tol drops out of the frontier ("SpMSpV allows
	// marking vertices inactive using the sparsity of the input vector,
	// as soon as its value converges", paper §I). Default 1e-9.
	Tol float64
	// MaxIter bounds the iteration count (default 100).
	MaxIter int
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	return o
}

// NormalizeColumns returns a copy of a with every column scaled to sum
// to one (the column-stochastic matrix PageRank iterates with). Columns
// of dangling vertices stay empty; their rank mass is redistributed
// implicitly by renormalizing at the end.
func NormalizeColumns(a *sparse.CSC) *sparse.CSC {
	out := &sparse.CSC{
		NumRows:    a.NumRows,
		NumCols:    a.NumCols,
		ColPtr:     append([]int64(nil), a.ColPtr...),
		RowIdx:     append([]sparse.Index(nil), a.RowIdx...),
		Val:        append([]float64(nil), a.Val...),
		SortedCols: a.SortedCols,
	}
	for j := sparse.Index(0); j < a.NumCols; j++ {
		lo, hi := out.ColPtr[j], out.ColPtr[j+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += out.Val[k]
		}
		if sum == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			out.Val[k] /= sum
		}
	}
	return out
}

// PageRankResult reports the ranks and per-iteration frontier sizes.
type PageRankResult struct {
	Ranks []float64
	// ActiveCounts[k] is the number of still-active vertices fed into
	// the k-th SpMSpV: the shrinking working set that motivates the
	// data-driven formulation.
	ActiveCounts []int
	Iterations   int
}

// PageRank runs the data-driven ("delta") PageRank iteration: instead
// of multiplying the full rank vector every round (SpMV), only the
// vertices whose rank is still changing are kept in the sparse frontier
// and pushed through SpMSpV. mult must be bound to the column-normalized
// adjacency matrix (see NormalizeColumns); n is the vertex count.
//
// The recurrence is r ← r + Δ with Δ' = α·Â·Δ, starting from
// Δ = (1−α)/n at every vertex; entries of Δ below Tol are dropped,
// deactivating converged vertices. Ranks are L1-normalized on return.
func PageRank(mult Multiplier, n sparse.Index, opt PageRankOptions) *PageRankResult {
	opt = opt.withDefaults()
	res := &PageRankResult{Ranks: make([]float64, n)}
	if n == 0 {
		return res
	}

	delta := sparse.NewSpVec(n, int(n))
	init := (1 - opt.Damping) / float64(n)
	for i := sparse.Index(0); i < n; i++ {
		delta.Append(i, init)
		res.Ranks[i] = init
	}
	// The iteration runs through one compiled list-output plan, the
	// product landing in the output frontier's list. delta is
	// double-buffered: the frontier's stale-bitmap erase (SetList →
	// ClearFrom) walks the list the bitmap was built FROM, so the round
	// that built it must not mutate that list — rebuilding delta in
	// place would leave ghost bits set for every deactivated vertex,
	// which bitmap-consuming engines would keep multiplying forever.
	df := sparse.NewFrontier(delta)
	yf := sparse.NewOutputFrontier(n)
	next := sparse.NewSpVec(n, int(n))
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for iter := 0; iter < opt.MaxIter && delta.NNZ() > 0; iter++ {
		res.ActiveCounts = append(res.ActiveCounts, delta.NNZ())
		res.Iterations++
		df.SetList(delta)
		plan.Mult(df, yf, semiring.Arithmetic, d)
		y := yf.List()
		next.Reset(n)
		for k, i := range y.Ind {
			dv := opt.Damping * y.Val[k]
			res.Ranks[i] += dv
			if math.Abs(dv) > opt.Tol {
				next.Append(i, dv)
			}
		}
		delta, next = next, delta
	}

	var sum float64
	for _, r := range res.Ranks {
		sum += r
	}
	if sum > 0 {
		for i := range res.Ranks {
			res.Ranks[i] /= sum
		}
	}
	return res
}
