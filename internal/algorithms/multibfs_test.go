package algorithms

import (
	"testing"

	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/sparse"
)

// TestMultiBFSMatchesSingleSourceBFS: each source's tree from the
// batched multi-source BFS must be level-identical to a standalone BFS
// from that source, and every parent edge valid.
func TestMultiBFSMatchesSingleSourceBFS(t *testing.T) {
	graphs := map[string]*sparse.CSC{
		"rmat": graphgen.RMAT(graphgen.DefaultRMAT(9), 3),
		"grid": graphgen.Grid2D(24, 24),
	}
	for name, a := range graphs {
		eng := core.NewMultiplier(a, core.Options{Threads: 2, SortOutput: true})
		n := a.NumCols
		sources := []sparse.Index{0, 1, n / 2, n - 1, -1 /* out of range: stays unreached */}
		res := MultiBFS(eng, n, sources, true)

		if len(res.Parents) != len(sources) || len(res.Levels) != len(sources) {
			t.Fatalf("%s: result arity mismatch", name)
		}
		for s, src := range sources {
			if src < 0 {
				for v := sparse.Index(0); v < n; v++ {
					if res.Levels[s][v] != -1 {
						t.Fatalf("%s: out-of-range source reached vertex %d", name, v)
					}
				}
				continue
			}
			single := BFS(eng, n, src, false)
			for v := sparse.Index(0); v < n; v++ {
				if res.Levels[s][v] != single.Levels[v] {
					t.Fatalf("%s source %d: level[%d] = %d, single-source BFS says %d",
						name, src, v, res.Levels[s][v], single.Levels[v])
				}
			}
			if msg := ValidateBFS(a, src, &BFSResult{Parents: res.Parents[s], Levels: res.Levels[s]}); msg != "" {
				t.Fatalf("%s source %d: %s", name, src, msg)
			}
			if len(res.FrontierSizes[s]) != len(single.FrontierSizes) {
				t.Fatalf("%s source %d: %d frontier rounds, want %d",
					name, src, len(res.FrontierSizes[s]), len(single.FrontierSizes))
			}
		}
		// Capture: round 1 has one frontier per in-range source, each nnz 1.
		if len(res.Batches) == 0 || len(res.Batches[0]) != 4 {
			t.Fatalf("%s: captured first batch has %d frontiers, want 4", name, len(res.Batches[0]))
		}
		for _, fr := range res.Batches[0] {
			if fr.NNZ() != 1 {
				t.Errorf("%s: first-level frontier nnz = %d, want 1", name, fr.NNZ())
			}
		}
	}
}

// TestMultiBFSLoopEngine runs the same searches through an engine with
// no native batch path (the loop fallback in engine.MultiplyBatch) via
// an interface-stripped wrapper, checking the fallback's equivalence.
func TestMultiBFSLoopEngine(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(8), 4)
	n := a.NumCols
	eng := core.NewMultiplier(a, core.Options{Threads: 1, SortOutput: true})
	sources := []sparse.Index{0, 3, 9}

	batched := MultiBFS(eng, n, sources, false)
	looped := MultiBFS(stripBatch{eng}, n, sources, false)
	for s := range sources {
		for v := sparse.Index(0); v < n; v++ {
			if batched.Levels[s][v] != looped.Levels[s][v] {
				t.Fatalf("source %d vertex %d: batched level %d, looped level %d",
					sources[s], v, batched.Levels[s][v], looped.Levels[s][v])
			}
		}
	}
}

// stripBatch hides the engine's BatchEngine implementation, forcing
// the generic loop fallback.
type stripBatch struct{ Multiplier }
