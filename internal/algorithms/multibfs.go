package algorithms

import (
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// SpreadSources picks k BFS roots spread evenly across the vertex
// range starting at base — the canonical default-source selection
// shared by the CLI, examples and benchmarks.
func SpreadSources(n, base sparse.Index, k int) []sparse.Index {
	srcs := make([]sparse.Index, k)
	for i := range srcs {
		srcs[i] = (base + sparse.Index(i)*n/sparse.Index(k)) % n
	}
	return srcs
}

// MultiBFSResult carries the output of a batched multi-source BFS: one
// parent/level labeling per source, plus (when capture was requested)
// the per-level frontier batches for benchmark replay.
type MultiBFSResult struct {
	// Sources echoes the BFS roots, in input order.
	Sources []sparse.Index
	// Parents[s][v] is v's BFS parent in source s's tree (itself for
	// the source), or -1 when unreached from that source.
	Parents [][]sparse.Index
	// Levels[s][v] is v's distance from source s, or -1.
	Levels [][]int32
	// FrontierSizes[s] records nnz(x) per level of source s's search.
	FrontierSizes [][]int
	// Batches holds, per multiply round, a clone of every live frontier
	// in that round's batch — the replay workload for the batched
	// multiply benchmark. Populated only with capture set.
	Batches [][]*sparse.SpVec
}

// MultiBFS runs k breadth-first searches — one per source — in
// lockstep, expanding all live frontiers of a level through ONE
// batched SpMSpV call (engine.MultiplyBatch, which uses the engine's
// native batch path when it has one and a loop of Multiply otherwise).
// Each search uses the (min, select2nd) semiring exactly as BFS does;
// the searches are independent — identical trees to running BFS k
// times — but the batch amortizes the engine's per-call setup across
// the sources, which is where the sparse ramp-up levels of a
// multi-source BFS spend their time. Exhausted searches drop out of
// the batch as their frontiers empty.
//
// With capture set, every round's frontier batch is cloned into the
// result for benchmark replay.
//
// The searches run as a batched frontier pipeline: every live search
// owns an (input, output) frontier pair, the whole level expands
// through one Plan.MultBatch call, and each search's output frontier
// is refined in place to its unvisited portion and swapped to become
// the next input — the two-frontier BFS pipeline, k-wide.
func MultiBFS(mult Multiplier, n sparse.Index, sources []sparse.Index, capture bool) *MultiBFSResult {
	k := len(sources)
	res := &MultiBFSResult{
		Sources:       append([]sparse.Index(nil), sources...),
		Parents:       make([][]sparse.Index, k),
		Levels:        make([][]int32, k),
		FrontierSizes: make([][]int, k),
	}
	// live maps batch slot → source index; frontier pairs are dropped
	// (and the mapping compacted) as searches exhaust.
	live := make([]int, 0, k)
	xs := make([]*sparse.Frontier, 0, k)
	ys := make([]*sparse.Frontier, 0, k)
	for s := range sources {
		res.Parents[s] = make([]sparse.Index, n)
		res.Levels[s] = make([]int32, n)
		for v := range res.Parents[s] {
			res.Parents[s][v] = -1
			res.Levels[s][v] = -1
		}
		src := sources[s]
		if src < 0 || src >= n {
			continue
		}
		res.Parents[s][src] = src
		res.Levels[s][src] = 0
		x := sparse.NewSpVec(n, 1)
		x.Append(src, float64(src))
		live = append(live, s)
		xs = append(xs, sparse.NewFrontier(x))
		ys = append(ys, sparse.NewOutputFrontier(n))
	}

	// One batch plan for the whole search: list-output shape, because
	// the per-search refine below shrinks every product's support (a
	// native bitmap would be erased unread — the masked variant is the
	// conversion-free one).
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for level := int32(1); len(xs) > 0; level++ {
		for q, s := range live {
			res.FrontierSizes[s] = append(res.FrontierSizes[s], xs[q].NNZ())
		}
		if capture {
			batch := make([]*sparse.SpVec, len(xs))
			for q := range xs {
				batch[q] = xs[q].List().Clone()
			}
			res.Batches = append(res.Batches, batch)
		}
		plan.MultBatch(xs, ys[:len(xs)], semiring.MinSelect2nd, d)

		// Refine each search's product to its unvisited portion, swap
		// it in as the next frontier, and compact away exhausted
		// searches.
		w := 0
		for q, s := range live {
			levels, parents := res.Levels[s], res.Parents[s]
			ys[q].Refine(func(i sparse.Index, v float64) (float64, bool) {
				if levels[i] >= 0 {
					return 0, false
				}
				levels[i] = level
				parents[i] = sparse.Index(v)
				return float64(i), true
			})
			if ys[q].NNZ() > 0 {
				live[w], xs[w], ys[w] = s, ys[q], xs[q]
				w++
			}
		}
		live, xs, ys = live[:w], xs[:w], ys[:w]
	}
	return res
}
