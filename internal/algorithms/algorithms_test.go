package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spmspv/internal/baselines"
	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/perf"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// allEngines returns every SpMSpV implementation bound to a, so each
// graph algorithm is exercised over each engine.
func allEngines(a *sparse.CSC, threads int) map[string]Multiplier {
	return map[string]Multiplier{
		"bucket":        core.NewMultiplier(a, core.Options{Threads: threads, SortOutput: true}),
		"combblas-spa":  baselines.NewCombBLASSPA(a, threads),
		"combblas-heap": baselines.NewCombBLASHeap(a, threads),
		"graphmat":      baselines.NewGraphMat(a, threads),
		"sort":          baselines.NewSortBased(a, threads),
	}
}

// symmetrize returns A ∨ Aᵀ with unit weights (an undirected version of
// a directed graph).
func symmetrize(t *testing.T, a *sparse.CSC) *sparse.CSC {
	t.Helper()
	tr := sparse.NewTriples(a.NumRows, a.NumCols, int(2*a.NNZ()))
	for j := sparse.Index(0); j < a.NumCols; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			tr.AppendSymmetric(i, j, 1)
		}
	}
	tr.SumDuplicates(func(x, y float64) float64 { return 1 })
	s, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testGraphs(t *testing.T) map[string]*sparse.CSC {
	t.Helper()
	return map[string]*sparse.CSC{
		"rmat":    graphgen.RMAT(graphgen.DefaultRMAT(9), 1),
		"grid":    graphgen.Grid2D(24, 24),
		"trimesh": graphgen.TriangularMesh(20, 30, 5),
		"er":      symmetrize(t, graphgen.ErdosRenyi(400, 3, 2)),
	}
}

func TestBFSAgainstSequentialOracle(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for ename, eng := range allEngines(g, 4) {
			res := BFS(eng, g.NumCols, 0, false)
			if msg := ValidateBFS(g, 0, res); msg != "" {
				t.Errorf("%s/%s: %s", gname, ename, msg)
			}
		}
	}
}

func TestBFSUnreachableSource(t *testing.T) {
	g := graphgen.Grid2D(5, 5)
	eng := core.NewMultiplier(g, core.Options{Threads: 2})
	res := BFS(eng, g.NumCols, -1, false)
	for _, l := range res.Levels {
		if l != -1 {
			t.Fatal("out-of-range source reached vertices")
		}
	}
}

func TestBFSCapturesFrontiers(t *testing.T) {
	g := graphgen.Grid2D(10, 10)
	eng := core.NewMultiplier(g, core.Options{Threads: 2, SortOutput: true})
	res := BFS(eng, g.NumCols, 0, true)
	if len(res.Frontiers) != len(res.FrontierSizes) {
		t.Fatalf("%d frontiers vs %d sizes", len(res.Frontiers), len(res.FrontierSizes))
	}
	var reached int
	for k, fr := range res.Frontiers {
		if fr.NNZ() != res.FrontierSizes[k] {
			t.Errorf("frontier %d: nnz %d vs recorded %d", k, fr.NNZ(), res.FrontierSizes[k])
		}
		reached += fr.NNZ()
	}
	// A connected grid: every vertex appears in exactly one frontier.
	if reached != 100 {
		t.Errorf("frontiers covered %d vertices, want 100", reached)
	}
}

func TestBFSMaskedMatchesPlain(t *testing.T) {
	for gname, g := range testGraphs(t) {
		eng := core.NewMultiplier(g, core.Options{Threads: 4, SortOutput: true})
		plain := BFS(eng, g.NumCols, 0, false)
		masked := BFSMasked(eng, g.NumCols, 0)
		for v := range plain.Levels {
			if plain.Levels[v] != masked.Levels[v] {
				t.Fatalf("%s: level mismatch at %d: %d vs %d",
					gname, v, plain.Levels[v], masked.Levels[v])
			}
		}
		if msg := ValidateBFS(g, 0, masked); msg != "" {
			t.Errorf("%s: masked BFS invalid: %s", gname, msg)
		}
	}
}

// unionFind is the oracle for connected components.
func unionFind(a *sparse.CSC) []sparse.Index {
	n := a.NumCols
	parent := make([]sparse.Index, n)
	for i := range parent {
		parent[i] = sparse.Index(i)
	}
	var find func(x sparse.Index) sparse.Index
	find = func(x sparse.Index) sparse.Index {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for j := sparse.Index(0); j < n; j++ {
		rows, _ := a.Col(j)
		for _, i := range rows {
			ri, rj := find(i), find(j)
			if ri != rj {
				if ri < rj {
					parent[rj] = ri
				} else {
					parent[ri] = rj
				}
			}
		}
	}
	labels := make([]sparse.Index, n)
	for i := range labels {
		labels[i] = find(sparse.Index(i))
	}
	return labels
}

func TestConnectedComponentsAgainstUnionFind(t *testing.T) {
	// Disconnected graph: two grids side by side plus isolated vertices.
	rng := rand.New(rand.NewSource(4))
	tr := sparse.NewTriples(150, 150, 600)
	// Component A: path over vertices 0..49.
	for i := sparse.Index(0); i < 49; i++ {
		tr.AppendSymmetric(i, i+1, 1)
	}
	// Component B: random connected blob over 50..99.
	for k := 0; k < 200; k++ {
		i := sparse.Index(50 + rng.Intn(50))
		j := sparse.Index(50 + rng.Intn(50))
		if i != j {
			tr.AppendSymmetric(i, j, 1)
		}
	}
	// 100..149 isolated.
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}

	want := unionFind(g)
	for ename, eng := range allEngines(g, 3) {
		got := ConnectedComponents(eng, g.NumCols)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: vertex %d labeled %d, union-find says %d", ename, v, got[v], want[v])
			}
		}
	}
	if c := CountComponents(want); c != 52 {
		t.Errorf("component count = %d, want 52", c)
	}
}

func TestMISValidOnAllGraphs(t *testing.T) {
	for gname, g := range testGraphs(t) {
		// Luby's rounds require a simple graph; the symmetrized ER
		// stand-in can carry self-loops (see mis.go's contract).
		simple := sparse.StripSelfLoops(g)
		eng := core.NewMultiplier(simple, core.Options{Threads: 4, SortOutput: true})
		inSet := MaximalIndependentSet(eng, simple.NumCols, 42)
		if msg := ValidateMIS(simple, inSet); msg != "" {
			t.Errorf("%s: %s", gname, msg)
		}
	}
}

func TestMISSelfLoopLivelockRegression(t *testing.T) {
	// Regression: a self-looped candidate's own priority enters its
	// neighbor minimum, so it can never win a Luby round. The stripped
	// copy must terminate and still be a valid MIS of the simple graph.
	tr := sparse.NewTriples(6, 6, 8)
	tr.AppendSymmetric(0, 1, 1)
	tr.AppendSymmetric(1, 2, 1)
	tr.Append(3, 3, 1) // isolated-but-self-looped vertex
	tr.AppendSymmetric(4, 5, 1)
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasSelfLoops() {
		t.Fatal("test graph should have a self loop")
	}
	simple := sparse.StripSelfLoops(g)
	if simple.HasSelfLoops() {
		t.Fatal("StripSelfLoops left a diagonal entry")
	}
	eng := core.NewMultiplier(simple, core.Options{Threads: 2})
	done := make(chan []bool, 1)
	go func() { done <- MaximalIndependentSet(eng, simple.NumCols, 9) }()
	select {
	case inSet := <-done:
		if msg := ValidateMIS(simple, inSet); msg != "" {
			t.Error(msg)
		}
		if !inSet[3] {
			t.Error("vertex 3 is isolated after stripping and must join the MIS")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MIS livelocked")
	}
}

func TestMISIsolatedVertices(t *testing.T) {
	tr := sparse.NewTriples(10, 10, 2)
	tr.AppendSymmetric(0, 1, 1)
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewMultiplier(g, core.Options{Threads: 2})
	inSet := MaximalIndependentSet(eng, 10, 7)
	for v := 2; v < 10; v++ {
		if !inSet[v] {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
	if msg := ValidateMIS(g, inSet); msg != "" {
		t.Error(msg)
	}
}

func TestSSSPAgainstDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Weighted random digraph.
	tr := sparse.NewTriples(300, 300, 1500)
	for k := 0; k < 1500; k++ {
		tr.Append(sparse.Index(rng.Intn(300)), sparse.Index(rng.Intn(300)), rng.Float64()+0.05)
	}
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := Dijkstra(g, 0)
	for ename, eng := range allEngines(g, 4) {
		got := SSSP(eng, g.NumCols, 0)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				t.Fatalf("%s: reachability mismatch at %d", ename, v)
			}
			if !math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9 {
				t.Fatalf("%s: dist[%d] = %g, want %g", ename, v, got[v], want[v])
			}
		}
	}
}

// densePageRank is the oracle: power iteration on dense vectors.
func densePageRank(a *sparse.CSC, damping float64, iters int) []float64 {
	n := int(a.NumCols)
	norm := NormalizeColumns(a)
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = (1 - damping) / float64(n)
		}
		for j := sparse.Index(0); j < a.NumCols; j++ {
			rows, vals := norm.Col(j)
			for k, i := range rows {
				next[i] += damping * vals[k] * r[j]
			}
		}
		r, next = next, r
	}
	var sum float64
	for _, v := range r {
		sum += v
	}
	for i := range r {
		r[i] /= sum
	}
	return r
}

func TestPageRankAgainstPowerIteration(t *testing.T) {
	g := graphgen.RMAT(graphgen.DefaultRMAT(9), 3)
	norm := NormalizeColumns(g)
	eng := core.NewMultiplier(norm, core.Options{Threads: 4, SortOutput: true})
	res := PageRank(eng, g.NumCols, PageRankOptions{Tol: 1e-12, MaxIter: 200})
	want := densePageRank(g, 0.85, 200)
	for v := range want {
		if math.Abs(res.Ranks[v]-want[v]) > 1e-6 {
			t.Fatalf("rank[%d] = %g, want %g", v, res.Ranks[v], want[v])
		}
	}
	if res.Iterations == 0 || len(res.ActiveCounts) != res.Iterations {
		t.Errorf("iteration bookkeeping: %d iters, %d counts", res.Iterations, res.ActiveCounts)
	}
}

func TestPageRankActiveSetShrinks(t *testing.T) {
	// The data-driven property: the active set must shrink as vertices
	// converge (paper §I's motivation for SpMSpV over SpMV).
	g := graphgen.Grid2D(30, 30)
	norm := NormalizeColumns(g)
	eng := core.NewMultiplier(norm, core.Options{Threads: 2})
	res := PageRank(eng, g.NumCols, PageRankOptions{Tol: 1e-8})
	first := res.ActiveCounts[0]
	last := res.ActiveCounts[len(res.ActiveCounts)-1]
	if first != int(g.NumCols) {
		t.Errorf("first round active = %d, want all %d", first, g.NumCols)
	}
	if last >= first {
		t.Errorf("active set did not shrink: first %d, last %d", first, last)
	}
}

func TestNormalizeColumns(t *testing.T) {
	g := graphgen.ErdosRenyi(100, 4, 9)
	norm := NormalizeColumns(g)
	for j := sparse.Index(0); j < norm.NumCols; j++ {
		_, vals := norm.Col(j)
		if len(vals) == 0 {
			continue
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("column %d sums to %g", j, sum)
		}
	}
	// Original untouched (duplicate ER edges sum to 2, so compare
	// against a snapshot rather than assuming unit weights).
	snapshot := append([]float64(nil), g.Val...)
	_ = NormalizeColumns(g)
	for k, v := range g.Val {
		if v != snapshot[k] {
			t.Fatal("NormalizeColumns mutated its input")
		}
	}
}

// Interface conformance checks: every engine satisfies Multiplier and
// the bucket engine additionally satisfies MaskedMultiplier.
var (
	_ Multiplier       = (*core.Multiplier)(nil)
	_ MaskedMultiplier = (*core.Multiplier)(nil)
	_ Multiplier       = (*baselines.CombBLASSPA)(nil)
	_ Multiplier       = (*baselines.CombBLASHeap)(nil)
	_ Multiplier       = (*baselines.GraphMat)(nil)
	_ Multiplier       = (*baselines.SortBased)(nil)
)

// Silence unused-import linting for perf (kept for documentation of the
// counters flowing through engines).
var _ = perf.Counters{}

func TestSemiringExports(t *testing.T) {
	if semiring.MinSelect2nd.Name == "" {
		t.Error("semiring missing name")
	}
}
