package algorithms

import (
	"math"
	"testing"

	"spmspv/internal/core"
	"spmspv/internal/graphgen"
	"spmspv/internal/sparse"
)

// twoCliques builds two k-cliques joined by a single bridge edge — the
// canonical low-conductance structure a local clustering algorithm must
// find.
func twoCliques(t *testing.T, k int) *sparse.CSC {
	t.Helper()
	n := sparse.Index(2 * k)
	tr := sparse.NewTriples(n, n, 2*k*k)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			tr.AppendSymmetric(sparse.Index(a), sparse.Index(b), 1)
			tr.AppendSymmetric(sparse.Index(k+a), sparse.Index(k+b), 1)
		}
	}
	tr.AppendSymmetric(0, sparse.Index(k), 1) // the bridge
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestACLFindsPlantedCluster(t *testing.T) {
	const k = 20
	g := twoCliques(t, k)
	eng := core.NewMultiplier(g, core.Options{Threads: 4, SortOutput: true})
	res := ACL(eng, Degrees(g), 5, ACLOptions{Epsilon: 1e-7})

	if len(res.Cluster) == 0 {
		t.Fatal("no cluster found")
	}
	// The sweep cut must recover (a superset-free portion of) the
	// seed's clique: all members on the seed side, conductance equal to
	// the single bridge edge over the clique volume.
	inFirst := 0
	for _, v := range res.Cluster {
		if v < k {
			inFirst++
		}
	}
	if inFirst != len(res.Cluster) {
		t.Errorf("cluster crossed the bridge: %d of %d members in seed clique",
			inFirst, len(res.Cluster))
	}
	if len(res.Cluster) < k/2 {
		t.Errorf("cluster too small: %d of %d clique members", len(res.Cluster), k)
	}
	if res.Conductance > 0.2 {
		t.Errorf("conductance %.3f too high for a planted clique", res.Conductance)
	}
}

func TestACLMassConservation(t *testing.T) {
	g := graphgen.TriangularMesh(15, 15, 3)
	eng := core.NewMultiplier(g, core.Options{Threads: 2, SortOutput: true})
	res := ACL(eng, Degrees(g), 7, ACLOptions{Epsilon: 1e-9})
	// With a tiny epsilon nearly all mass converts to PPR: the total
	// must approach 1 and never exceed it (residuals are nonnegative).
	var total float64
	for _, mass := range res.PPR {
		if mass < 0 {
			t.Fatal("negative PPR mass")
		}
		total += mass
	}
	if total > 1+1e-9 {
		t.Errorf("PPR mass %g exceeds 1", total)
	}
	if total < 0.95 {
		t.Errorf("PPR mass %g too low for epsilon=1e-9", total)
	}
	if res.Rounds == 0 || len(res.ActiveCounts) != res.Rounds {
		t.Errorf("round bookkeeping: %d rounds, %d counts", res.Rounds, len(res.ActiveCounts))
	}
}

func TestACLSeedOutOfRange(t *testing.T) {
	g := graphgen.Grid2D(4, 4)
	eng := core.NewMultiplier(g, core.Options{})
	res := ACL(eng, Degrees(g), -1, ACLOptions{})
	if len(res.PPR) != 0 || len(res.Cluster) != 0 {
		t.Error("out-of-range seed should produce empty result")
	}
	if !math.IsInf(res.Conductance, 1) {
		t.Error("empty result should have infinite conductance")
	}
}

func TestACLIsolatedSeed(t *testing.T) {
	tr := sparse.NewTriples(5, 5, 2)
	tr.AppendSymmetric(0, 1, 1)
	g, err := sparse.NewCSCFromTriples(tr)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewMultiplier(g, core.Options{})
	// Vertex 4 is isolated: all mass should settle on it as PPR.
	res := ACL(eng, Degrees(g), 4, ACLOptions{})
	if math.Abs(res.PPR[4]-1) > 1e-12 {
		t.Errorf("isolated seed PPR = %g, want 1", res.PPR[4])
	}
}

func TestDegrees(t *testing.T) {
	g := twoCliques(t, 4)
	d := Degrees(g)
	if d[0] != 4 { // 3 clique edges + bridge
		t.Errorf("deg(0) = %d, want 4", d[0])
	}
	if d[1] != 3 {
		t.Errorf("deg(1) = %d, want 3", d[1])
	}
}
