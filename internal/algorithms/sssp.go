package algorithms

import (
	"math"

	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// SSSP computes single-source shortest paths over non-negative edge
// weights by data-driven label correction: the frontier holds the
// vertices whose tentative distance just improved, and one SpMSpV over
// the tropical (min, +) semiring relaxes all their out-edges at once.
// This is Bellman-Ford with frontier sparsity — the same
// active-set-shrinking structure as the paper's other motivating
// applications.
//
// A(i,j) is the weight of edge j→i; absent entries are no edge.
// Unreachable vertices get +Inf.
func SSSP(mult Multiplier, n sparse.Index, source sparse.Index) []float64 {
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if source < 0 || source >= n {
		return dist
	}
	dist[source] = 0

	x := sparse.NewSpVec(n, 1)
	x.Append(source, 0)
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for x.NNZ() > 0 {
		xf.SetList(x)
		plan.Mult(xf, yf, semiring.MinPlus, d)
		y := yf.List()
		x.Reset(n)
		for k, i := range y.Ind {
			if y.Val[k] < dist[i] {
				dist[i] = y.Val[k]
				x.Append(i, dist[i])
			}
		}
	}
	return dist
}

// Dijkstra is the sequential oracle for SSSP: a binary-heap
// implementation over the same column-as-out-neighbors convention.
func Dijkstra(a *sparse.CSC, source sparse.Index) []float64 {
	n := a.NumCols
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if source < 0 || source >= n {
		return dist
	}
	dist[source] = 0

	// Minimal pairing of (distance, vertex) on a binary heap.
	type item struct {
		d float64
		v sparse.Index
	}
	heap := []item{{0, source}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].d < heap[small].d {
				small = l
			}
			if r < len(heap) && heap[r].d < heap[small].d {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}

	for len(heap) > 0 {
		it := pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		rows, vals := a.Col(it.v)
		for k, u := range rows {
			if nd := it.d + vals[k]; nd < dist[u] {
				dist[u] = nd
				push(item{nd, u})
			}
		}
	}
	return dist
}
