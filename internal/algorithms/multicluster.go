package algorithms

import (
	"math"

	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MultiCluster runs the ACL local-clustering push algorithm from k
// seed vertices in lockstep, expanding every live seed's push frontier
// of a round through ONE batched SpMSpV call (engine.MultiplyBatch —
// the engine's native batch path when it has one, a Multiply loop
// otherwise). The per-seed iterations are independent, so the results
// are identical to running ACL once per seed; the batch amortizes the
// engine's per-call setup across the seeds, which dominates exactly in
// the small-frontier push rounds local clustering spends its time in.
// Seeds whose residuals all fall under the push threshold drop out of
// the batch as they converge.
//
// Results are returned in seed order. Out-of-range seeds yield the
// same empty result ACL produces for them.
func MultiCluster(mult Multiplier, degrees []int64, seeds []sparse.Index, opt ACLOptions) []*ACLResult {
	opt = opt.withDefaults()
	n := sparse.Index(len(degrees))
	results := make([]*ACLResult, len(seeds))
	states := make([]*aclState, 0, len(seeds))
	for s, seed := range seeds {
		results[s] = &ACLResult{PPR: map[sparse.Index]float64{}, Conductance: math.Inf(1)}
		if seed < 0 || seed >= n {
			continue
		}
		states = append(states, &aclState{
			p:   map[sparse.Index]float64{},
			r:   map[sparse.Index]float64{seed: 1},
			res: results[s],
		})
	}

	// live maps batch slot → state; converged seeds are compacted away.
	// The push rounds run through one compiled list-output batch plan:
	// each slot's gather rebuilds its input vector in place, so the
	// wrapping frontier is re-pointed (SetList) before every round.
	live := append([]*aclState(nil), states...)
	xs := make([]*sparse.SpVec, len(live))
	xfs := make([]*sparse.Frontier, len(live))
	yfs := make([]*sparse.Frontier, len(live))
	for q := range live {
		xs[q] = sparse.NewSpVec(n, 16)
		xfs[q] = sparse.NewFrontier(xs[q])
		yfs[q] = sparse.NewOutputFrontier(n)
	}
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for round := 0; round < opt.MaxIter && len(live) > 0; round++ {
		// Gather every live seed's active vertices, dropping seeds with
		// nothing to push.
		w := 0
		for q, st := range live {
			xs[q].Reset(n)
			if st.gather(xs[q], degrees, opt) {
				live[w], xs[w] = st, xs[q]
				w++
			}
		}
		live, xs = live[:w], xs[:w]
		if len(live) == 0 {
			break
		}
		for q := range xs {
			xfs[q].SetList(xs[q])
		}
		// One batched SpMSpV spreads every seed's pushes at once.
		plan.MultBatch(xfs[:w], yfs[:w], semiring.Arithmetic, d)
		for q, st := range live {
			st.absorb(yfs[q].List())
		}
	}

	// Sweep cuts per seed (sequential: each probes single columns).
	var totalVol int64
	for _, deg := range degrees {
		totalVol += deg
	}
	x := sparse.NewSpVec(n, 1)
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)
	for _, st := range states {
		st.res.PPR = st.p
		sweepCut(plan, degrees, totalVol, st.p, st.res, x, xf, yf)
	}
	return results
}
