package algorithms

import (
	"math"
	"testing"

	"spmspv/internal/core"
	"spmspv/internal/engine"
	"spmspv/internal/graphgen"
)

// TestMultiClusterMatchesACLPerSeed pins the batched multi-seed
// clustering against running ACL once per seed: identical PPR mass,
// clusters, conductance and round counts, since the per-seed
// iterations are independent.
func TestMultiClusterMatchesACLPerSeed(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(9), 17)
	mult := core.NewMultiplier(a, core.Options{Threads: 2, SortOutput: true})
	degrees := Degrees(a)
	seeds := SpreadSources(a.NumCols, 1, 5)
	opt := ACLOptions{Epsilon: 1e-4}

	batched := MultiCluster(mult, degrees, seeds, opt)
	if len(batched) != len(seeds) {
		t.Fatalf("got %d results for %d seeds", len(batched), len(seeds))
	}
	for s, seed := range seeds {
		// A fresh engine per reference run keeps counters independent;
		// results must not depend on engine state anyway.
		want := ACL(core.NewMultiplier(a, core.Options{Threads: 1, SortOutput: true}), degrees, seed, opt)
		got := batched[s]
		if got.Rounds != want.Rounds {
			t.Fatalf("seed %d: rounds %d != %d", seed, got.Rounds, want.Rounds)
		}
		if len(got.ActiveCounts) != len(want.ActiveCounts) {
			t.Fatalf("seed %d: active counts %v != %v", seed, got.ActiveCounts, want.ActiveCounts)
		}
		for r := range want.ActiveCounts {
			if got.ActiveCounts[r] != want.ActiveCounts[r] {
				t.Fatalf("seed %d round %d: active %d != %d",
					seed, r, got.ActiveCounts[r], want.ActiveCounts[r])
			}
		}
		if len(got.PPR) != len(want.PPR) {
			t.Fatalf("seed %d: PPR support %d != %d", seed, len(got.PPR), len(want.PPR))
		}
		for v, mass := range want.PPR {
			if math.Abs(got.PPR[v]-mass) > 1e-9 {
				t.Fatalf("seed %d: PPR[%d] = %g, want %g", seed, v, got.PPR[v], mass)
			}
		}
		if math.Abs(got.Conductance-want.Conductance) > 1e-12 {
			t.Fatalf("seed %d: conductance %g != %g", seed, got.Conductance, want.Conductance)
		}
		if len(got.Cluster) != len(want.Cluster) {
			t.Fatalf("seed %d: cluster size %d != %d", seed, len(got.Cluster), len(want.Cluster))
		}
	}
}

// TestMultiClusterThroughBatchEngine drives MultiCluster through the
// engine registry's batch path (hybrid routes per density, bucket
// shares one Estimate pass) and checks the seeds' PPR mass invariant
// ‖p‖+‖r‖=1, which after convergence means ‖p‖ ≈ 1 up to the pushed-
// residual tail.
func TestMultiClusterThroughBatchEngine(t *testing.T) {
	a := graphgen.RMAT(graphgen.DefaultRMAT(9), 23)
	eng, err := engine.New(a, engine.Bucket, engine.Options{Threads: 2, SortOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	degrees := Degrees(a)
	seeds := SpreadSources(a.NumCols, 0, 4)
	results := MultiCluster(eng, degrees, seeds, ACLOptions{Epsilon: 1e-5})
	for s, res := range results {
		if res.Rounds == 0 {
			t.Fatalf("seed %d never pushed", seeds[s])
		}
		var mass float64
		for _, m := range res.PPR {
			mass += m
		}
		if mass <= 0 || mass > 1+1e-9 {
			t.Fatalf("seed %d: PPR mass %g outside (0,1]", seeds[s], mass)
		}
	}
}

// TestMultiClusterOutOfRangeSeed matches ACL's empty-result behavior.
func TestMultiClusterOutOfRangeSeed(t *testing.T) {
	a := graphgen.Grid2D(8, 8)
	mult := core.NewMultiplier(a, core.Options{Threads: 1})
	degrees := Degrees(a)
	results := MultiCluster(mult, degrees, []int32{-1, 5, 1 << 20}, ACLOptions{})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, s := range []int{0, 2} {
		if len(results[s].PPR) != 0 || !math.IsInf(results[s].Conductance, 1) {
			t.Fatalf("out-of-range seed %d produced a non-empty result", s)
		}
	}
	if len(results[1].PPR) == 0 {
		t.Fatal("valid seed produced no PPR mass")
	}
}
