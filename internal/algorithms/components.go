package algorithms

import (
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// ConnectedComponents labels the vertices of an undirected graph by
// min-label propagation: every vertex starts with its own id and
// repeatedly adopts the minimum label among its neighbors, with only the
// vertices whose label just changed staying in the frontier. Each
// round is one SpMSpV over (min, select2nd) — the pattern of the
// GPI/LACC linear-algebraic connectivity algorithms the paper cites
// (§I, ref [5]).
//
// The result maps every vertex to the minimum vertex id of its
// component. The iteration count is bounded by the largest component
// diameter.
//
// The rounds run as a frontier pipeline: each round's product is
// written into an output Frontier (list-only — the refine step would
// erase a native bitmap before anything read it), refined in place to
// the vertices whose label improved, and fed back as the next round's
// input while the previous input becomes the next output — no
// per-round allocation, the same two-frontier swap as BFS.
func ConnectedComponents(mult Multiplier, n sparse.Index) []sparse.Index {
	labels := make([]sparse.Index, n)
	x := sparse.NewSpVec(n, int(n))
	for i := sparse.Index(0); i < n; i++ {
		labels[i] = i
		x.Append(i, float64(i))
	}
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)

	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for xf.NNZ() > 0 {
		plan.Mult(xf, yf, semiring.MinSelect2nd, d)
		yf.Refine(func(i sparse.Index, v float64) (float64, bool) {
			if l := sparse.Index(v); l < labels[i] {
				labels[i] = l
				return v, true
			}
			return 0, false
		})
		xf, yf = yf, xf
	}
	return labels
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []sparse.Index) int {
	seen := make(map[sparse.Index]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
