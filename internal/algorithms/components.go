package algorithms

import (
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// ConnectedComponents labels the vertices of an undirected graph by
// min-label propagation: every vertex starts with its own id and
// repeatedly adopts the minimum label among its neighbors, with only the
// vertices whose label just changed staying in the frontier. Each
// round is one SpMSpV over (min, select2nd) — the pattern of the
// GPI/LACC linear-algebraic connectivity algorithms the paper cites
// (§I, ref [5]).
//
// The result maps every vertex to the minimum vertex id of its
// component. The iteration count is bounded by the largest component
// diameter.
func ConnectedComponents(mult Multiplier, n sparse.Index) []sparse.Index {
	labels := make([]sparse.Index, n)
	x := sparse.NewSpVec(n, int(n))
	for i := sparse.Index(0); i < n; i++ {
		labels[i] = i
		x.Append(i, float64(i))
	}
	y := sparse.NewSpVec(n, 0)

	for x.NNZ() > 0 {
		mult.Multiply(x, y, semiring.MinSelect2nd)
		x.Reset(n)
		for k, i := range y.Ind {
			if l := sparse.Index(y.Val[k]); l < labels[i] {
				labels[i] = l
				x.Append(i, float64(l))
			}
		}
	}
	return labels
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []sparse.Index) int {
	seen := make(map[sparse.Index]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
