// Package algorithms implements the graph algorithms the paper cites as
// the consumers of SpMSpV (§I): breadth-first search, connected
// components, maximal independent set, data-driven PageRank, and
// single-source shortest paths. Each is written in the GraphBLAS style
// — a loop of SpMSpV calls over an appropriate semiring — and each is
// validated against a classical sequential implementation in the tests.
//
// All algorithms accept any SpMSpV engine through the Multiplier
// interface, so the benchmark harness can run the same BFS over
// SpMSpV-bucket, CombBLAS-SPA, CombBLAS-heap and GraphMat, exactly as
// the paper's Figs. 4 and 5 do.
package algorithms

import (
	"spmspv/internal/engine"
)

// Multiplier is the uniform engine contract of internal/engine: compute
// y ← A·x over sr, where A was bound at construction time. All
// registered implementations (internal/core.Multiplier and the
// internal/baselines engines) satisfy it, and all of them are safe for
// concurrent Multiply calls.
type Multiplier = engine.Engine

// MaskedMultiplier is the optional extension contract for engines that
// support mask pushdown (paper §V future work); internal/core.Multiplier
// implements it.
type MaskedMultiplier = engine.MaskedEngine
