package algorithms

import (
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MultiBFSMasked is MultiBFS with every search's visited-set filter
// pushed into the batched multiply as a per-slot output mask — the
// multi-source form of BFSMasked. Each level expands ALL live searches
// through one batched masked SpMSpV (engine.Desc.Masks carries one
// complemented visited bitmap per slot), and because a masked product
// needs no refine step, every output frontier is kept intact and fed
// straight back as the slot's next input. With a batch-output engine
// (bucket, hybrid) each slot's output bitmap is emitted natively by the
// batched Step 3, so a direction-optimized multi-source pipeline — the
// hybrid engine routing each slot's dense levels to the matrix-driven
// side — performs ZERO list→bitmap output conversions, exactly like
// single-source BFSMasked.
//
// The trees are identical to running BFSMasked (equivalently BFS) once
// per source.
func MultiBFSMasked(mult Multiplier, n sparse.Index, sources []sparse.Index) *MultiBFSResult {
	k := len(sources)
	res := &MultiBFSResult{
		Sources:       append([]sparse.Index(nil), sources...),
		Parents:       make([][]sparse.Index, k),
		Levels:        make([][]int32, k),
		FrontierSizes: make([][]int, k),
	}
	// live maps batch slot → source index; each slot owns an (input,
	// output) frontier pair plus its visited bitmap, all compacted as
	// searches exhaust.
	live := make([]int, 0, k)
	xs := make([]*sparse.Frontier, 0, k)
	ys := make([]*sparse.Frontier, 0, k)
	visited := make([]*sparse.BitVec, 0, k)
	for s := range sources {
		res.Parents[s] = make([]sparse.Index, n)
		res.Levels[s] = make([]int32, n)
		for v := range res.Parents[s] {
			res.Parents[s][v] = -1
			res.Levels[s][v] = -1
		}
		src := sources[s]
		if src < 0 || src >= n {
			continue
		}
		res.Parents[s][src] = src
		res.Levels[s][src] = 0
		x := sparse.NewSpVec(n, 1)
		x.Append(src, float64(src))
		vis := sparse.NewBitVec(n)
		vis.SetFrom(x)
		live = append(live, s)
		xs = append(xs, sparse.NewFrontier(x))
		ys = append(ys, sparse.NewOutputFrontier(n))
		visited = append(visited, vis)
	}

	// One masked batch plan for the whole search; the per-slot masks
	// are the only per-level runtime arguments.
	shape := engine.Shape{Masked: true}
	plan := engine.CompilePlan(mult, shape)

	for level := int32(1); len(xs) > 0; level++ {
		for q, s := range live {
			res.FrontierSizes[s] = append(res.FrontierSizes[s], xs[q].NNZ())
		}
		plan.MultBatch(xs, ys[:len(xs)], semiring.MinSelect2nd,
			engine.Desc{Masks: visited[:len(xs)], Complement: true})

		// Every entry of every product is unvisited by construction:
		// record it, rewrite the values to the vertices' own ids in
		// place (support unchanged, so a natively emitted bitmap
		// survives), extend the slot's visited set, swap, and compact
		// away exhausted searches.
		w := 0
		for q, s := range live {
			levels, parents := res.Levels[s], res.Parents[s]
			y := ys[q].List()
			for e, i := range y.Ind {
				levels[i] = level
				parents[i] = sparse.Index(y.Val[e])
			}
			ys[q].UpdateValues(func(i sparse.Index, _ float64) float64 {
				return float64(i)
			})
			visited[q].SetFrom(y)
			if ys[q].NNZ() > 0 {
				live[w], xs[w], ys[w], visited[w] = s, ys[q], xs[q], visited[q]
				w++
			}
		}
		live, xs, ys, visited = live[:w], xs[:w], ys[:w], visited[:w]
	}
	return res
}
