package algorithms

import (
	"math"
	"sort"

	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// ACLOptions configures the Andersen–Chung–Lang local clustering
// algorithm (the paper's §I, ref [9]: "local graph clustering methods
// … essentially perform one SpMSpV at each step").
type ACLOptions struct {
	// Alpha is the teleport probability of the personalized PageRank
	// (default 0.15).
	Alpha float64
	// Epsilon is the push threshold: vertices whose residual-per-degree
	// exceeds it remain active (default 1e-6).
	Epsilon float64
	// MaxIter bounds the push rounds (default 1000).
	MaxIter int
}

func (o ACLOptions) withDefaults() ACLOptions {
	if o.Alpha == 0 {
		o.Alpha = 0.15
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-6
	}
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	return o
}

// ACLResult reports the approximate personalized PageRank vector, the
// sweep-cut cluster, and iteration statistics.
type ACLResult struct {
	// PPR holds the approximate personalized PageRank mass per vertex
	// (sparse; only touched vertices appear).
	PPR map[sparse.Index]float64
	// Cluster is the best sweep-cut prefix by conductance.
	Cluster []sparse.Index
	// Conductance of the returned cluster (lower is better).
	Conductance float64
	// ActiveCounts is nnz of the frontier per push round — the shrinking
	// working set served by SpMSpV.
	ActiveCounts []int
	Rounds       int
}

// ACL computes an approximate personalized PageRank from the seed
// vertex with batched push iterations, then extracts a low-conductance
// cluster with a sweep cut. degrees must hold the (out-)degree of every
// vertex of the undirected graph; mult must be bound to the adjacency
// matrix of the same graph.
//
// Each round pushes all active vertices at once: the frontier x holds
// rᵤ/deg(u) for every active u, one SpMSpV spreads it to the neighbors
// ("essentially perform one SpMSpV at each step"), and the residuals
// and PPR estimates are updated from y. The invariant ‖p‖ + ‖r‖ = 1 is
// preserved up to floating-point error.
//
// ACL is the single-seed form of MultiCluster; the per-seed push
// rounds and the sweep cut are shared.
func ACL(mult Multiplier, degrees []int64, seed sparse.Index, opt ACLOptions) *ACLResult {
	return MultiCluster(mult, degrees, []sparse.Index{seed}, opt)[0]
}

// aclState is one seed's push-iteration state inside MultiCluster.
type aclState struct {
	p, r map[sparse.Index]float64
	res  *ACLResult
	// pushed holds the vertices drained this round, reused across
	// rounds.
	pushed []sparse.Index
}

// gather collects the seed's active vertices (residual over threshold)
// into x and commits the α·r share of each pushed vertex to the PPR
// estimate. It reports whether the seed pushed anything this round.
func (st *aclState) gather(x *sparse.SpVec, degrees []int64, opt ACLOptions) bool {
	st.pushed = st.pushed[:0]
	for u, ru := range st.r {
		if degrees[u] == 0 {
			// Dangling vertex: all residual becomes PPR mass.
			st.p[u] += ru
			delete(st.r, u)
			continue
		}
		if ru > opt.Epsilon*float64(degrees[u]) {
			// Push: keep α·r as PPR, spread (1-α)·r/deg to the
			// neighbors, keep nothing in the residual.
			x.Append(u, (1-opt.Alpha)*ru/float64(degrees[u]))
			st.pushed = append(st.pushed, u)
		}
	}
	if x.NNZ() == 0 {
		return false
	}
	st.res.Rounds++
	st.res.ActiveCounts = append(st.res.ActiveCounts, x.NNZ())
	for _, u := range st.pushed {
		st.p[u] += opt.Alpha * st.r[u]
		delete(st.r, u)
	}
	return true
}

// absorb folds one round's product back into the seed's residuals.
func (st *aclState) absorb(y *sparse.SpVec) {
	for k, v := range y.Ind {
		st.r[v] += y.Val[k]
	}
}

// sweepCut orders the touched vertices by p(v)/deg(v) and stores the
// lowest-conductance prefix into res. The per-prefix cut update probes
// each added vertex's neighborhood with one singleton SpMSpV through
// the caller's compiled list-output plan.
func sweepCut(plan *engine.Plan, degrees []int64, totalVol int64, p map[sparse.Index]float64, res *ACLResult, x *sparse.SpVec, xf, yf *sparse.Frontier) {
	n := sparse.Index(len(degrees))
	type pv struct {
		v     sparse.Index
		score float64
	}
	order := make([]pv, 0, len(p))
	for v, mass := range p {
		if degrees[v] > 0 {
			order = append(order, pv{v, mass / float64(degrees[v])})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	res.Conductance = math.Inf(1)
	if len(order) == 0 {
		return
	}

	inSet := map[sparse.Index]bool{}
	var vol, cut int64
	best := 0
	bestCond := math.Inf(1)
	for k, e := range order {
		// Adding e.v: volume grows by deg; cut changes by (external −
		// internal) edges of v, evaluated with one sparse column probe
		// via SpMSpV on a singleton vector.
		x.Reset(n)
		x.Append(e.v, 1)
		xf.SetList(x)
		plan.Mult(xf, yf, semiring.Arithmetic, engine.Desc{Output: engine.OutputList})
		var internal int64
		for _, u := range yf.List().Ind {
			if inSet[u] {
				internal++
			}
		}
		deg := degrees[e.v]
		vol += deg
		cut += deg - 2*internal
		inSet[e.v] = true
		denom := vol
		if totalVol-vol < denom {
			denom = totalVol - vol
		}
		if denom <= 0 {
			continue
		}
		cond := float64(cut) / float64(denom)
		if cond < bestCond {
			bestCond = cond
			best = k + 1
		}
	}
	res.Conductance = bestCond
	res.Cluster = make([]sparse.Index, best)
	for k := 0; k < best; k++ {
		res.Cluster[k] = order[k].v
	}
}

// Degrees returns the column degrees of an adjacency matrix as int64s,
// the shape ACL expects.
func Degrees(a *sparse.CSC) []int64 {
	out := make([]int64, a.NumCols)
	for j := sparse.Index(0); j < a.NumCols; j++ {
		out[j] = a.ColLen(j)
	}
	return out
}
