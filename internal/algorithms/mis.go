package algorithms

import (
	"math"
	"math/rand"

	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MaximalIndependentSet computes a maximal independent set with Luby's
// algorithm expressed in SpMSpV rounds, one of the paper's motivating
// applications (§I, ref [4]). Each round every remaining candidate
// draws a random priority; a candidate whose priority is strictly
// smaller than every remaining neighbor's joins the set, and winners
// plus their neighbors leave the candidate pool. The expected round
// count is O(log n).
//
// The graph must be undirected (symmetric adjacency) and simple: a
// self-looped vertex would appear in its own neighbor minimum and could
// never win a round, livelocking the algorithm. Strip diagonals with
// sparse.StripSelfLoops first (the public facade does this
// automatically).
func MaximalIndependentSet(mult Multiplier, n sparse.Index, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	inSet := make([]bool, n)
	candidate := make([]bool, n)
	for i := range candidate {
		candidate[i] = true
	}
	remaining := int(n)

	prio := make([]float64, n)
	minNbr := make([]float64, n)
	x := sparse.NewSpVec(n, int(n))
	winners := sparse.NewSpVec(n, 0)
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for remaining > 0 {
		// Draw fresh priorities for the candidates; ties are broken by
		// vertex id through the strict comparison plus distinct values.
		x.Reset(n)
		for i := sparse.Index(0); i < n; i++ {
			if candidate[i] {
				prio[i] = rng.Float64()
				x.Append(i, prio[i])
			}
		}

		// y(i) = min priority among candidate neighbors of i.
		xf.SetList(x)
		plan.Mult(xf, yf, semiring.MinSelect2nd, d)
		y := yf.List()
		for i := range minNbr {
			minNbr[i] = math.Inf(1)
		}
		for k, i := range y.Ind {
			minNbr[i] = y.Val[k]
		}

		// Winners: candidates beating every candidate neighbor.
		winners.Reset(n)
		for i := sparse.Index(0); i < n; i++ {
			if candidate[i] && prio[i] < minNbr[i] {
				inSet[i] = true
				candidate[i] = false
				remaining--
				winners.Append(i, 1)
			}
		}
		if winners.NNZ() == 0 {
			continue // extremely unlikely all-ties round; redraw
		}

		// Remove the winners' neighbors from the pool.
		xf.SetList(winners)
		plan.Mult(xf, yf, semiring.BoolOrAnd, d)
		y = yf.List()
		for _, i := range y.Ind {
			if candidate[i] {
				candidate[i] = false
				remaining--
			}
		}
	}
	return inSet
}

// ValidateMIS checks independence (no two set members adjacent) and
// maximality (every non-member has a member neighbor) of a claimed MIS;
// it returns an empty string on success. Isolated vertices must be in
// the set.
func ValidateMIS(a *sparse.CSC, inSet []bool) string {
	n := a.NumCols
	for v := sparse.Index(0); v < n; v++ {
		rows, _ := a.Col(v)
		if inSet[v] {
			for _, u := range rows {
				if u != v && inSet[u] {
					return "two adjacent vertices in set"
				}
			}
			continue
		}
		hasMember := false
		for _, u := range rows {
			if u != v && inSet[u] {
				hasMember = true
				break
			}
		}
		if !hasMember {
			return "non-member with no member neighbor (not maximal)"
		}
	}
	return ""
}
