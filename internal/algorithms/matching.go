package algorithms

import (
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// MaximalMatching computes a maximal matching of a bipartite graph with
// SpMSpV rounds — the Karp–Sipser-flavored propose/accept scheme of the
// distributed bipartite matching work the paper cites as a motivating
// application (§I, ref [6]: "bipartite graph matching").
//
// The graph has nc column vertices and nr row vertices; A(i,j) ≠ 0 is
// an edge between column j and row i (mult must be bound to A, and
// multT to Aᵀ). Each round:
//
//  1. every unmatched column proposes to its unmatched row neighbors —
//     one SpMSpV over (min, select2nd) computes, for every row, the
//     minimum proposing column id;
//  2. rows accept their minimum proposer; acceptances are
//     symmetric-difference-free because a row accepts exactly one
//     column, and a column learns the minimum accepting row with one
//     SpMSpV over Aᵀ;
//  3. matched pairs leave the pool.
//
// The result maps every column to its matched row (or -1), and every
// row to its matched column (or -1). The matching is maximal: no edge
// joins two unmatched vertices on termination.
func MaximalMatching(mult, multT Multiplier, nr, nc sparse.Index) (rowMate, colMate []sparse.Index) {
	rowMate = make([]sparse.Index, nr)
	colMate = make([]sparse.Index, nc)
	for i := range rowMate {
		rowMate[i] = -1
	}
	for j := range colMate {
		colMate[j] = -1
	}

	x := sparse.NewSpVec(nc, int(nc))
	accept := sparse.NewSpVec(nr, 0)
	// Forward (A) and backward (Aᵀ) rounds each run through their own
	// compiled list-output plan.
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())
	planT := engine.CompilePlan(multT, d.Shape())
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(nr)
	acceptf := sparse.NewFrontier(accept)
	backf := sparse.NewOutputFrontier(nc)

	// Candidate columns that may still find a partner.
	active := make([]sparse.Index, 0, nc)
	for j := sparse.Index(0); j < nc; j++ {
		active = append(active, j)
	}

	for len(active) > 0 {
		// Step 1: unmatched columns propose; y(i) = min proposing
		// column for every unmatched row i.
		x.Reset(nc)
		for _, j := range active {
			x.Append(j, float64(j))
		}
		xf.SetList(x)
		plan.Mult(xf, yf, semiring.MinSelect2nd, d)
		y := yf.List()

		// Step 2: unmatched rows accept their minimum proposer.
		accept.Reset(nr)
		progress := false
		for k, i := range y.Ind {
			if rowMate[i] >= 0 {
				continue
			}
			j := sparse.Index(y.Val[k])
			if colMate[j] >= 0 {
				// Column already taken by an earlier row this round?
				// Acceptance conflicts are resolved by the backward
				// pass; skip here only if matched in a prior round.
				continue
			}
			accept.Append(i, float64(i))
		}
		// Backward SpMSpV: for every proposing column, the minimum
		// accepting row among its neighbors; matching (j, back(j)) is
		// conflict-free because each row accepts at most one column and
		// each column takes at most one row.
		acceptf.SetList(accept)
		planT.Mult(acceptf, backf, semiring.MinSelect2nd, d)
		back := backf.List()
		for k, j := range back.Ind {
			if colMate[j] >= 0 {
				continue
			}
			i := sparse.Index(back.Val[k])
			if rowMate[i] >= 0 {
				continue
			}
			// Only bind the pair if the row's chosen column is j, to
			// keep the acceptance single-valued.
			if chosen, ok := lookupMin(y, i); ok && chosen == j {
				rowMate[i] = j
				colMate[j] = i
				progress = true
			}
		}

		// Shrink the pool: drop matched columns and columns with no
		// unmatched neighbors left (detected by absence of progress).
		next := active[:0]
		for _, j := range active {
			if colMate[j] < 0 {
				next = append(next, j)
			}
		}
		active = next
		if !progress {
			// Remaining columns have no unmatched neighbors: maximal.
			break
		}
	}
	return rowMate, colMate
}

// lookupMin finds row i's value in the (sorted or unsorted) proposal
// vector y.
func lookupMin(y *sparse.SpVec, i sparse.Index) (sparse.Index, bool) {
	if y.Sorted {
		lo, hi := 0, len(y.Ind)
		for lo < hi {
			mid := (lo + hi) / 2
			if y.Ind[mid] < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(y.Ind) && y.Ind[lo] == i {
			return sparse.Index(y.Val[lo]), true
		}
		return 0, false
	}
	for k, ind := range y.Ind {
		if ind == i {
			return sparse.Index(y.Val[k]), true
		}
	}
	return 0, false
}

// ValidateMatching checks that the claimed matching is consistent
// (mutual, over existing edges) and maximal (no edge joins two
// unmatched vertices); it returns an empty string on success.
func ValidateMatching(a *sparse.CSC, rowMate, colMate []sparse.Index) string {
	for j := sparse.Index(0); j < a.NumCols; j++ {
		i := colMate[j]
		if i < 0 {
			continue
		}
		if rowMate[i] != j {
			return "matching not mutual"
		}
		if a.At(i, j) == 0 {
			return "matched pair is not an edge"
		}
	}
	for i := sparse.Index(0); i < a.NumRows; i++ {
		j := rowMate[i]
		if j >= 0 && colMate[j] != i {
			return "matching not mutual (row side)"
		}
	}
	// Maximality: every edge must have a matched endpoint.
	for j := sparse.Index(0); j < a.NumCols; j++ {
		if colMate[j] >= 0 {
			continue
		}
		rows, _ := a.Col(j)
		for _, i := range rows {
			if rowMate[i] < 0 {
				return "unmatched edge remains (not maximal)"
			}
		}
	}
	return ""
}
