package algorithms

import (
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// BFSResult carries the output of a matrix-based breadth-first search.
type BFSResult struct {
	// Parents[v] is the BFS parent of v (itself for the source), or -1
	// when v is unreached.
	Parents []sparse.Index
	// Levels[v] is the BFS distance from the source, or -1.
	Levels []int32
	// FrontierSizes records nnz(x) for every SpMSpV call, the quantity
	// Fig. 3 sweeps.
	FrontierSizes []int
	// Frontiers holds a clone of every input frontier when capture was
	// requested — the replay workload for the Fig. 3 benchmark.
	Frontiers []*sparse.SpVec
}

// BFS runs a breadth-first search from source using the
// (min, select2nd) semiring: the frontier vector x holds x(v) = v for
// every frontier vertex v, so y = A·x assigns each newly reached vertex
// its minimum parent id ("the current frontier is represented with the
// input vector x, the graph is represented by the matrix A and the next
// frontier is represented by y", paper §I). A(i,j) ≠ 0 is interpreted
// as an edge j→i, i.e. column j lists the out-neighbors of j.
//
// With capture set, every frontier vector is cloned into the result for
// benchmark replay.
func BFS(mult Multiplier, n sparse.Index, source sparse.Index, capture bool) *BFSResult {
	res := &BFSResult{
		Parents: make([]sparse.Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	if source < 0 || source >= n {
		return res
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	x := sparse.NewSpVec(n, 1)
	x.Append(source, float64(source))
	y := sparse.NewSpVec(n, 0)

	for level := int32(1); x.NNZ() > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, x.NNZ())
		if capture {
			res.Frontiers = append(res.Frontiers, x.Clone())
		}
		mult.Multiply(x, y, semiring.MinSelect2nd)
		// The next frontier is the unvisited portion of y; the frontier
		// values become the vertices' own ids for the next expansion.
		x.Reset(n)
		for k, i := range y.Ind {
			if res.Levels[i] < 0 {
				res.Levels[i] = level
				res.Parents[i] = sparse.Index(y.Val[k])
				x.Append(i, float64(i))
			}
		}
	}
	return res
}

// BFSMasked is BFS with the visited-set filter pushed into the multiply
// (mask complement semantics: visited vertices are excluded during the
// merge step instead of being filtered afterwards). It requires an
// engine with mask support and demonstrates the §V GraphBLAS masking
// extension.
func BFSMasked(mult MaskedMultiplier, n sparse.Index, source sparse.Index) *BFSResult {
	res := &BFSResult{
		Parents: make([]sparse.Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	if source < 0 || source >= n {
		return res
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	visited := sparse.NewBitVec(n)
	x := sparse.NewSpVec(n, 1)
	x.Append(source, float64(source))
	visited.SetFrom(x)
	y := sparse.NewSpVec(n, 0)

	for level := int32(1); x.NNZ() > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, x.NNZ())
		mult.MultiplyMasked(x, y, semiring.MinSelect2nd, visited, true)
		// Every entry of y is unvisited by construction.
		x.Reset(n)
		for k, i := range y.Ind {
			res.Levels[i] = level
			res.Parents[i] = sparse.Index(y.Val[k])
			x.Append(i, float64(i))
		}
		visited.SetFrom(x)
	}
	return res
}

// ValidateBFS checks a BFS result against the graph: parents form a
// tree rooted at source whose edges exist in the graph, levels are
// consistent along tree edges, and the reached set matches reachability.
// It returns a non-nil error description on the first inconsistency.
func ValidateBFS(a *sparse.CSC, source sparse.Index, res *BFSResult) string {
	want, _, _ := sparse.BFSLevels(a, source)
	for v := sparse.Index(0); v < a.NumCols; v++ {
		if want[v] != res.Levels[v] {
			return "level mismatch"
		}
		if res.Levels[v] > 0 {
			p := res.Parents[v]
			if p < 0 {
				return "reached vertex without parent"
			}
			if res.Levels[p] != res.Levels[v]-1 {
				return "parent level not one less"
			}
			if a.At(v, p) == 0 {
				return "parent edge not in graph"
			}
		}
	}
	return ""
}
