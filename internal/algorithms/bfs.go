package algorithms

import (
	"spmspv/internal/engine"
	"spmspv/internal/semiring"
	"spmspv/internal/sparse"
)

// BFSResult carries the output of a matrix-based breadth-first search.
type BFSResult struct {
	// Parents[v] is the BFS parent of v (itself for the source), or -1
	// when v is unreached.
	Parents []sparse.Index
	// Levels[v] is the BFS distance from the source, or -1.
	Levels []int32
	// FrontierSizes records nnz(x) for every SpMSpV call, the quantity
	// Fig. 3 sweeps.
	FrontierSizes []int
	// Frontiers holds a clone of every input frontier when capture was
	// requested — the replay workload for the Fig. 3 benchmark.
	Frontiers []*sparse.SpVec
}

// BFS runs a breadth-first search from source using the
// (min, select2nd) semiring: the frontier vector x holds x(v) = v for
// every frontier vertex v, so y = A·x assigns each newly reached vertex
// its minimum parent id ("the current frontier is represented with the
// input vector x, the graph is represented by the matrix A and the next
// frontier is represented by y", paper §I). A(i,j) ≠ 0 is interpreted
// as an edge j→i, i.e. column j lists the out-neighbors of j.
//
// With capture set, every frontier vector is cloned into the result for
// benchmark replay.
//
// BFS runs as a frontier pipeline: each level's product is written
// into an output Frontier, refined in place to the unvisited portion,
// and fed back as the next level's input while the previous input
// frontier becomes the next output — two frontiers, swapped, for the
// whole search. The refine step shrinks the support, so the output
// goes through the list-only path (a natively emitted bitmap would be
// erased before any consumer saw it); BFSMasked has nothing to filter,
// keeps each output intact, and is the conversion-free variant.
func BFS(mult Multiplier, n sparse.Index, source sparse.Index, capture bool) *BFSResult {
	res := &BFSResult{
		Parents: make([]sparse.Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	if source < 0 || source >= n {
		return res
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	x := sparse.NewSpVec(n, 1)
	x.Append(source, float64(source))
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)

	// One plan for the whole search: the list-output shape (the refine
	// step below would erase a native bitmap), capability dispatch
	// resolved once instead of per level.
	d := engine.Desc{Output: engine.OutputList}
	plan := engine.CompilePlan(mult, d.Shape())

	for level := int32(1); xf.NNZ() > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, xf.NNZ())
		if capture {
			res.Frontiers = append(res.Frontiers, xf.List().Clone())
		}
		plan.Mult(xf, yf, semiring.MinSelect2nd, d)
		// The next frontier is the unvisited portion of the product;
		// the frontier values become the vertices' own ids for the next
		// expansion.
		yf.Refine(func(i sparse.Index, v float64) (float64, bool) {
			if res.Levels[i] >= 0 {
				return 0, false
			}
			res.Levels[i] = level
			res.Parents[i] = sparse.Index(v)
			return float64(i), true
		})
		xf, yf = yf, xf
	}
	return res
}

// BFSMasked is BFS with the visited-set filter pushed into the multiply
// (mask complement semantics: visited vertices are excluded during the
// merge step instead of being filtered afterwards) — the §V GraphBLAS
// masking extension. Every registered engine runs it: engines without
// native mask support fall back to multiply-then-filter inside
// engine.MultiplyIntoMasked.
//
// The masked product needs no refine step — every entry is unvisited
// by construction — so the pipeline keeps each level's output frontier
// intact (values rewritten in place to the vertices' own ids, which
// preserves a natively-emitted bitmap) and feeds it straight back as
// the next input. With an output-capable engine (bucket, GraphMat,
// hybrid) no list→bitmap conversion ever runs, even when a
// direction-optimized hybrid probes the bitmap on every dense level:
// perf.Counters.OutputConversions stays 0.
func BFSMasked(mult Multiplier, n sparse.Index, source sparse.Index) *BFSResult {
	res := &BFSResult{
		Parents: make([]sparse.Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	if source < 0 || source >= n {
		return res
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	visited := sparse.NewBitVec(n)
	x := sparse.NewSpVec(n, 1)
	x.Append(source, float64(source))
	visited.SetFrom(x)
	xf := sparse.NewFrontier(x)
	yf := sparse.NewOutputFrontier(n)

	// One masked plan for the whole search: the complemented visited
	// mask is the only per-level runtime argument; the capability
	// dispatch (masked-output pushdown vs masked list vs filter) is
	// compiled once.
	d := engine.Desc{Mask: visited, Complement: true}
	plan := engine.CompilePlan(mult, d.Shape())

	for level := int32(1); xf.NNZ() > 0; level++ {
		res.FrontierSizes = append(res.FrontierSizes, xf.NNZ())
		plan.Mult(xf, yf, semiring.MinSelect2nd, d)
		// Every entry of the product is unvisited by construction:
		// record it, then rewrite the values to the vertices' own ids
		// in place (support unchanged, so the output bitmap survives).
		y := yf.List()
		for k, i := range y.Ind {
			res.Levels[i] = level
			res.Parents[i] = sparse.Index(y.Val[k])
		}
		yf.UpdateValues(func(i sparse.Index, _ float64) float64 {
			return float64(i)
		})
		visited.SetFrom(y)
		xf, yf = yf, xf
	}
	return res
}

// ValidateBFS checks a BFS result against the graph: parents form a
// tree rooted at source whose edges exist in the graph, levels are
// consistent along tree edges, and the reached set matches reachability.
// It returns a non-nil error description on the first inconsistency.
func ValidateBFS(a *sparse.CSC, source sparse.Index, res *BFSResult) string {
	want, _, _ := sparse.BFSLevels(a, source)
	for v := sparse.Index(0); v < a.NumCols; v++ {
		if want[v] != res.Levels[v] {
			return "level mismatch"
		}
		if res.Levels[v] > 0 {
			p := res.Parents[v]
			if p < 0 {
				return "reached vertex without parent"
			}
			if res.Levels[p] != res.Levels[v]-1 {
				return "parent level not one less"
			}
			if a.At(v, p) == 0 {
				return "parent edge not in graph"
			}
		}
	}
	return ""
}
