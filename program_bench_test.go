// BenchmarkProgramServe compares the three ways a client can run a
// whole iterative computation (a multi-level BFS) against the server:
//
//   - invoke: the program is registered once; every call POSTs only the
//     seed in an SPIV invoke envelope and the server loops.
//   - program: every call POSTs the full loop program (SPPG) to
//     /v1/program — one round trip, but the op list rides every time
//     and the server recompiles per call.
//   - client-loop: the classic chatty form — one /v1/mult round trip
//     per BFS level, with the client doing frontier bookkeeping.
//
// Each op is one complete BFS. Beyond ns/op the benchmark reports
// wirebytes/op (request+response body bytes) and recompiles/op (the
// dataflow compilation counter delta), which together pin the stored-
// procedure contract: warm invokes ship less wire than resending and
// compile nothing. CI uploads BENCH_program.json and cmd/benchcmp
// gates regressions.
package spmspv_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	spmspv "spmspv"
	"spmspv/internal/dataflow"
)

func BenchmarkProgramServe(b *testing.B) {
	a := spmspv.ErdosRenyi(1<<13, 8, 99)
	n := a.NumCols
	st := spmspv.NewStore(spmspv.WithEngineOptions(engineOptions(4)))
	if err := st.Put("g", a); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Load("g"); err != nil {
		b.Fatal(err)
	}
	srv := spmspv.NewServer(st, spmspv.WithBatchWindow(0))

	seed := spmspv.NewVector(n, 1)
	seed.Append(0, 0)
	const maxLevels = 64

	post := func(b *testing.B, path string, body []byte) ([]byte, int) {
		b.Helper()
		r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		r.Header.Set("Accept", spmspv.ContentTypeBinary)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("HTTP %d on %s: %s", w.Code, path, w.Body.String())
		}
		resp := w.Body.Bytes()
		return resp, len(body) + len(resp)
	}

	// Pre-encoded request bodies: the seed-only invoke and the full
	// program with the seed compiled in.
	var invokeBody, programBody bytes.Buffer
	err := spmspv.EncodeInvokeRequestBinary(&invokeBody, &spmspv.InvokeRequest{
		Args: map[string]*spmspv.Vector{"seed": seed},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := spmspv.EncodeProgramBinary(&programBody, spmspv.BFSProgram("g", maxLevels, seed)); err != nil {
		b.Fatal(err)
	}

	report := func(b *testing.B, wire, trips, compiles int64) {
		b.ReportMetric(float64(wire)/float64(b.N), "wirebytes/op")
		b.ReportMetric(float64(trips)/float64(b.N), "roundtrips/op")
		b.ReportMetric(float64(compiles)/float64(b.N), "recompiles/op")
	}

	b.Run("mode=invoke", func(b *testing.B) {
		if _, err := st.PutProgram("bfs", spmspv.BFSProgram("g", maxLevels, nil)); err != nil {
			b.Fatal(err)
		}
		defer st.DeleteProgram("bfs")
		base := dataflow.Compilations()
		var wire, trips int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, nb := post(b, "/v1/programs/bfs/invoke", invokeBody.Bytes())
			wire += int64(nb)
			trips++
		}
		b.StopTimer()
		if d := dataflow.Compilations() - base; d != 0 {
			b.Fatalf("warm invokes compiled %d programs, want 0", d)
		}
		report(b, wire, trips, dataflow.Compilations()-base)
	})

	b.Run("mode=program", func(b *testing.B) {
		base := dataflow.Compilations()
		var wire, trips int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, nb := post(b, "/v1/program", programBody.Bytes())
			wire += int64(nb)
			trips++
		}
		b.StopTimer()
		if d := dataflow.Compilations() - base; d != int64(b.N) {
			b.Fatalf("resent programs compiled %d times over %d calls", d, b.N)
		}
		report(b, wire, trips, dataflow.Compilations()-base)
	})

	b.Run("mode=client-loop", func(b *testing.B) {
		visited := make([]bool, n)
		var wire, trips int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range visited {
				visited[j] = false
			}
			visited[0] = true
			frontier := seed.Clone()
			for level := 0; level < maxLevels && frontier.NNZ() > 0; level++ {
				var body bytes.Buffer
				err := spmspv.EncodeRequestBinary(&body, &spmspv.Request{
					Matrix: "g",
					X:      frontier,
					Desc:   spmspv.Desc{Semiring: "bfs"},
				})
				if err != nil {
					b.Fatal(err)
				}
				respBytes, nb := post(b, "/v1/mult", body.Bytes())
				wire += int64(nb)
				trips++
				resp, err := spmspv.DecodeResponseBinary(bytes.NewReader(respBytes))
				if err != nil {
					b.Fatal(err)
				}
				next := spmspv.NewVector(n, resp.Y.NNZ())
				for k, idx := range resp.Y.Ind {
					if !visited[idx] {
						visited[idx] = true
						next.Append(idx, resp.Y.Val[k])
					}
				}
				frontier = next
			}
		}
		b.StopTimer()
		report(b, wire, trips, 0)
	})
}
