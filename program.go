package spmspv

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"spmspv/internal/sparse"
)

// Executor is the transport-agnostic serving surface: the same
// Do/Run pair is implemented by the in-process Store, and by Client
// over HTTP — so algorithm code written against an Executor (see
// ProgramBFS) runs unchanged locally or remotely, and errors surface
// as the same *WireError values either way.
type Executor interface {
	// Do executes one multiply request.
	Do(req *Request) (*Response, error)
	// Run executes a multi-op program.
	Run(p *Program) (*ProgramResponse, error)
}

// Program is the multi-op wire contract: a short straight-line list of
// ops whose inputs may reference prior ops' outputs ("$0"-style refs),
// so an iterative kernel — a BFS level loop, a k-step random walk, a
// PageRank power iteration — runs server-side without shipping
// frontiers back and forth. Intermediate results live on the server as
// Frontiers (list + lazily shared bitmap), so a mask_ref consumes the
// producing op's bitmap exactly as an in-process pipeline would.
//
// Execution is sequential and stops early when StopOnEmpty is set and
// a mult op produces an empty vector — the standard termination test
// of frontier loops — so an unrolled loop may be issued at its worst-
// case depth and costs only the iterations the input actually needs.
type Program struct {
	// Matrix names the default matrix mult ops run against; an op's own
	// Matrix field overrides it.
	Matrix string `json:"matrix,omitempty"`
	// Ops is the straight-line op list; op k's output is "$k".
	Ops []ProgramOp `json:"ops"`
	// StopOnEmpty halts execution after a mult op whose output has no
	// entries; the response reports how many ops executed.
	StopOnEmpty bool `json:"stop_on_empty,omitempty"`
}

// ProgramOp is one step of a Program. Op selects the kind:
//
//   - "mult" (the default, also implied by ""): y ← ⟨op(A)·x, mask⟩
//     per Desc, exactly one multiply request's worth of work. The
//     input is X (literal) or XRef; MaskRef may name a prior op whose
//     output's support becomes Desc.Mask.
//   - "input": introduces a literal vector (X) as this op's output —
//     the seed of a ref chain.
//   - "indices": y(i) = i for every i in the input's support — the BFS
//     "frontier values become the vertices' own ids" step.
//   - "union": the element-wise union of XRef and YRef (values added
//     where both present) — visited-set maintenance.
type ProgramOp struct {
	// Op is the op kind: "mult" (default), "input", "indices", "union".
	Op string `json:"op,omitempty"`
	// Matrix overrides the program's default matrix (mult only).
	Matrix string `json:"matrix,omitempty"`
	// X is a literal input vector (input ops; mult ops without XRef).
	X *Vector `json:"x,omitempty"`
	// XRef names a prior op's output ("$3") as the input.
	XRef string `json:"x_ref,omitempty"`
	// YRef names the second operand of a union op.
	YRef string `json:"y_ref,omitempty"`
	// MaskRef names a prior op whose output's support is the output
	// mask of this mult (polarity from Desc.Complement). Mutually
	// exclusive with a literal Desc.Mask.
	MaskRef string `json:"mask_ref,omitempty"`
	// Desc parameterizes a mult op exactly as in a Request; wire rules
	// apply (the semiring travels by name).
	Desc Desc `json:"desc"`
	// Emit returns this op's output in the response. Ops without Emit
	// compute server-side state only — the point of the program form.
	Emit bool `json:"emit,omitempty"`
}

// ProgramResult is one emitted op output.
type ProgramResult struct {
	// Op is the index of the op that produced Y.
	Op int     `json:"op"`
	Y  *Vector `json:"y"`
}

// ProgramResponse is the wire form of a program's results: the emitted
// outputs of the ops that executed, in op order, plus how many ops ran
// (less than len(Ops) when StopOnEmpty fired).
type ProgramResponse struct {
	Results []ProgramResult `json:"results,omitempty"`
	Steps   int             `json:"steps"`
	Err     *WireError      `json:"error,omitempty"`
}

// DecodeProgram parses a JSON-encoded Program.
func DecodeProgram(data []byte) (*Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("spmspv: decoding program: %w", err)
	}
	return &p, nil
}

// parseRef parses a "$k" op reference.
func parseRef(s string) (int, bool) {
	if len(s) < 2 || s[0] != '$' {
		return 0, false
	}
	k, err := strconv.Atoi(s[1:])
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}

// checkRef validates that ref names an op strictly before index k.
func checkRef(ref string, k int, what string) error {
	j, ok := parseRef(ref)
	if !ok {
		return fmt.Errorf("spmspv: op %d: bad %s %q (want \"$k\")", k, what, ref)
	}
	if j >= k {
		return fmt.Errorf("spmspv: op %d: %s %q does not name an earlier op", k, what, ref)
	}
	return nil
}

// Validate checks the program's matrix-independent structure: known op
// kinds, refs that point strictly backwards, exactly one input per op
// that needs one, and the wire descriptor rules for every mult op.
// Dimension agreement with the named matrices is checked at execution,
// where the matrices are known.
func (p *Program) Validate() error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("spmspv: program with no ops")
	}
	for k, op := range p.Ops {
		switch op.Op {
		case "", "mult":
			if (op.X == nil) == (op.XRef == "") {
				return fmt.Errorf("spmspv: op %d: mult needs exactly one of x and x_ref", k)
			}
			if op.XRef != "" {
				if err := checkRef(op.XRef, k, "x_ref"); err != nil {
					return err
				}
			}
			if op.MaskRef != "" {
				if op.Desc.Mask != nil {
					return fmt.Errorf("spmspv: op %d: both mask_ref and desc.mask set", k)
				}
				if err := checkRef(op.MaskRef, k, "mask_ref"); err != nil {
					return err
				}
			}
			if op.Desc.Masks != nil {
				return fmt.Errorf("spmspv: op %d: per-slot masks in a program op (ops are single multiplies)", k)
			}
			if op.Desc.Accum {
				return fmt.Errorf("spmspv: op %d: desc.accumulate in a program op (accumulate with a union op instead)", k)
			}
			if op.Desc.Complement && op.Desc.Mask == nil && op.MaskRef == "" {
				return fmt.Errorf("spmspv: op %d: desc.complement without a mask", k)
			}
			if op.Desc.Semiring == "" {
				return fmt.Errorf("spmspv: op %d: mult must name a semiring", k)
			}
			if _, ok := ParseSemiring(op.Desc.Semiring); !ok {
				return fmt.Errorf("spmspv: op %d: unknown semiring %q", k, op.Desc.Semiring)
			}
		case "input":
			if op.X == nil {
				return fmt.Errorf("spmspv: op %d: input without x", k)
			}
			if err := op.X.Validate(); err != nil {
				return fmt.Errorf("spmspv: op %d: %w", k, err)
			}
		case "indices":
			if op.XRef == "" {
				return fmt.Errorf("spmspv: op %d: indices needs x_ref", k)
			}
			if err := checkRef(op.XRef, k, "x_ref"); err != nil {
				return err
			}
		case "union":
			if op.XRef == "" || op.YRef == "" {
				return fmt.Errorf("spmspv: op %d: union needs x_ref and y_ref", k)
			}
			if err := checkRef(op.XRef, k, "x_ref"); err != nil {
				return err
			}
			if err := checkRef(op.YRef, k, "y_ref"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("spmspv: op %d: unknown op kind %q", k, op.Op)
		}
	}
	return nil
}

// progMultFunc executes op k's multiply against the named matrix with
// the resolved input frontier and descriptor (mask refs already bound),
// returning the output frontier. It is the one step of program
// execution that differs between backends: the in-process Store runs
// the engine directly; the ShardedStore scatters the op across its
// shards and gathers the concatenated result.
type progMultFunc func(k int, matrix string, xf *Frontier, d Desc) (*Frontier, error)

// runProgramOps is the program interpreter shared by every backend:
// structural validation, the op loop with "$k" ref resolution (op
// outputs kept as frontiers so a mask_ref shares the producing op's
// bitmap), StopOnEmpty early termination, and the Emit'd-outputs
// response. mult executes the backend-specific multiply ops.
func runProgramOps(p *Program, mult progMultFunc) (*ProgramResponse, error) {
	if p == nil {
		return nil, wireErrorf(CodeBadRequest, "nil program")
	}
	if err := p.Validate(); err != nil {
		return nil, wireErrorf(CodeInvalidRequest, "%v", err)
	}
	outs := make([]*Frontier, len(p.Ops))
	steps := len(p.Ops)

ops:
	for k := range p.Ops {
		op := &p.Ops[k]
		switch op.Op {
		case "input":
			outs[k] = NewFrontier(op.X)
		case "indices":
			j, _ := parseRef(op.XRef)
			src := outs[j].List()
			y := sparse.NewSpVec(src.N, src.NNZ())
			for _, i := range src.Ind {
				y.Append(i, float64(i))
			}
			y.Sorted = src.Sorted
			outs[k] = NewFrontier(y)
		case "union":
			jx, _ := parseRef(op.XRef)
			jy, _ := parseRef(op.YRef)
			ax, ay := outs[jx].List(), outs[jy].List()
			if ax.N != ay.N {
				return nil, wireErrorf(CodeInvalidRequest,
					"op %d: union of dimensions %d and %d", k, ax.N, ay.N)
			}
			outs[k] = NewFrontier(sparse.EwiseAdd(ax, ay, nil))
		default: // mult
			name := op.Matrix
			if name == "" {
				name = p.Matrix
			}
			d := op.Desc
			var xf *Frontier
			if op.XRef != "" {
				j, _ := parseRef(op.XRef)
				xf = outs[j]
			} else {
				xf = NewFrontier(op.X)
			}
			if op.MaskRef != "" {
				j, _ := parseRef(op.MaskRef)
				d.Mask = outs[j].Bits()
			}
			yf, err := mult(k, name, xf, d)
			if err != nil {
				return nil, err
			}
			outs[k] = yf
			if p.StopOnEmpty && yf.NNZ() == 0 {
				steps = k + 1
				break ops
			}
		}
	}

	resp := &ProgramResponse{Steps: steps}
	for k := 0; k < steps; k++ {
		if p.Ops[k].Emit {
			resp.Results = append(resp.Results, ProgramResult{Op: k, Y: outs[k].List()})
		}
	}
	return resp, nil
}

// Run executes a program against the store's matrices — the in-process
// form of POST /v1/program. Structural validation runs first; op
// outputs are kept server-side as frontiers between ops (so a
// mask_ref shares the producing op's bitmap), and only Emit'd outputs
// are copied into the response. Errors come back as *WireError.
func (st *Store) Run(p *Program) (*ProgramResponse, error) {
	return runProgramOps(p, func(k int, name string, xf *Frontier, d Desc) (*Frontier, error) {
		mu, stats, err := st.load(name)
		if err != nil {
			return nil, err
		}
		a := mu.Matrix()
		// Request-level validation pinned to this matrix's
		// dimensions: a valid op cannot make Mult panic.
		r := &Request{X: xf.List(), Desc: d}
		if err := r.Validate(a.NumRows, a.NumCols); err != nil {
			stats.Observe(0, true)
			return nil, wireErrorf(CodeInvalidRequest, "op %d: %v", k, err)
		}
		outDim := a.NumRows
		if d.Transpose {
			outDim = a.NumCols
		}
		yf := NewOutputFrontier(outDim)
		t := time.Now()
		mu.Mult(xf, yf, Semiring{}, d)
		stats.Observe(time.Since(t), false)
		return yf, nil
	})
}

// ProgramBFS builds and runs the unrolled masked-BFS program — the
// multi-level BFS as ONE round trip: level k is a complemented-mask
// (min, select2nd) multiply against the visited set, followed by a
// union op extending the visited set and an indices op forming the
// next frontier, all referencing each other server-side. maxLevels
// bounds the unroll (≤ 0 means n, the worst case — a path graph);
// StopOnEmpty terminates execution at the true BFS depth, so the
// worst-case unroll costs only the levels the graph has.
//
// ex is any Executor — a Client for a remote server, a Store for the
// in-process form — and the result is identical to algorithms.BFS on
// the same matrix.
func ProgramBFS(ex Executor, matrix string, n Index, source Index, maxLevels int) (*BFSResult, error) {
	if source < 0 || source >= n {
		return nil, fmt.Errorf("spmspv: BFS source %d out of range [0,%d)", source, n)
	}
	if maxLevels <= 0 {
		maxLevels = int(n)
	}
	x := NewVector(n, 1)
	x.Append(source, float64(source))

	prog := &Program{Matrix: matrix, StopOnEmpty: true}
	prog.Ops = append(prog.Ops, ProgramOp{Op: "input", X: x}) // $0: frontier = visited = {source}
	frontier, visited := 0, 0
	var multOps []int
	for level := 0; level < maxLevels; level++ {
		prog.Ops = append(prog.Ops, ProgramOp{
			XRef:    ref(frontier),
			MaskRef: ref(visited),
			Desc:    Desc{Complement: true, Semiring: "bfs"},
			Emit:    true,
		})
		y := len(prog.Ops) - 1
		multOps = append(multOps, y)
		prog.Ops = append(prog.Ops, ProgramOp{Op: "union", XRef: ref(visited), YRef: ref(y)})
		visited = len(prog.Ops) - 1
		prog.Ops = append(prog.Ops, ProgramOp{Op: "indices", XRef: ref(y)})
		frontier = len(prog.Ops) - 1
	}

	resp, err := ex.Run(prog)
	if err != nil {
		return nil, err
	}

	res := &BFSResult{
		Parents: make([]Index, n),
		Levels:  make([]int32, n),
	}
	for i := range res.Parents {
		res.Parents[i] = -1
		res.Levels[i] = -1
	}
	res.Parents[source] = source
	res.Levels[source] = 0

	emitted := make(map[int]*Vector, len(resp.Results))
	for _, r := range resp.Results {
		emitted[r.Op] = r.Y
	}
	res.FrontierSizes = append(res.FrontierSizes, 1)
	level := int32(0)
	done := false
	for _, opIdx := range multOps {
		if opIdx >= resp.Steps {
			break
		}
		y, ok := emitted[opIdx]
		if !ok {
			return nil, fmt.Errorf("spmspv: program response missing emitted op %d", opIdx)
		}
		level++
		for k, i := range y.Ind {
			res.Levels[i] = level
			res.Parents[i] = Index(y.Val[k])
		}
		if y.NNZ() == 0 {
			done = true
			break
		}
		res.FrontierSizes = append(res.FrontierSizes, y.NNZ())
	}
	if !done && resp.Steps == len(prog.Ops) {
		return nil, fmt.Errorf("spmspv: BFS did not terminate within %d levels (raise maxLevels)", maxLevels)
	}
	return res, nil
}

// ref formats an op reference.
func ref(k int) string { return "$" + strconv.Itoa(k) }
